package knives

import (
	"knives/internal/partition"
	"knives/internal/replay"
)

// Replay types: the execution-backed validation layer. A replay
// materializes a layout through the storage engine, executes the full
// per-table workload with a parallel worker pool, and reports measured
// seeks, bytes, and simulated time against the cost model's predictions —
// which must agree bit for bit.
type (
	// ReplayConfig parameterizes a replay (device/model name with optional
	// hardware overrides, row cap, worker pool, seed, backend).
	ReplayConfig = replay.Config
	// TableReplay is the report of replaying one table's workload.
	TableReplay = replay.TableReplay
	// QueryReplay is one query's measured execution next to its prediction.
	QueryReplay = replay.QueryReplay
)

// ReplayLayout materializes the table under the given layout and replays
// the workload, comparing every measurement against the cost model.
func ReplayLayout(tw TableWorkload, layout Partitioning, algorithm string, cfg ReplayConfig) (*TableReplay, error) {
	return replay.Layout(tw, layout, algorithm, cfg)
}

// ReplayAlgorithm searches the full-scale workload with the named algorithm
// ("Row" and "Column" name the baseline families) and replays the result.
func ReplayAlgorithm(tw TableWorkload, name string, cfg ReplayConfig) (*TableReplay, error) {
	return replay.Algorithm(tw, name, cfg)
}

// ReplayBenchmark replays every table of a benchmark under the named
// algorithm, fanning tables out concurrently.
func ReplayBenchmark(b *Benchmark, name string, cfg ReplayConfig) ([]*TableReplay, error) {
	return replay.Benchmark(b, name, cfg)
}

// ReplayAdvice replays an advisor recommendation: the advised layout is
// rebound onto the workload's table and replayed under the config.
func ReplayAdvice(tw TableWorkload, advice TableAdvice, cfg ReplayConfig) (*TableReplay, error) {
	layout, err := partition.New(tw.Table, advice.Layout.Parts)
	if err != nil {
		return nil, err
	}
	return replay.Layout(tw, layout, advice.Algorithm, cfg)
}
