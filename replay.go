package knives

import (
	"knives/internal/partition"
	"knives/internal/replay"
)

// Replay types: the execution-backed validation layer. A replay
// materializes a layout through the storage engine, executes the full
// per-table workload with a parallel worker pool, and reports measured
// seeks, bytes, and simulated time against the cost model's predictions —
// which must agree bit for bit.
type (
	// ReplayConfig parameterizes a replay (device/model name with optional
	// hardware overrides, row cap, worker pool, seed, backend).
	ReplayConfig = replay.Config
	// TableReplay is the report of replaying one table's workload.
	TableReplay = replay.TableReplay
	// QueryReplay is one query's measured execution next to its prediction.
	QueryReplay = replay.QueryReplay
	// OperatorReplay is a TableReplay produced by executing every query as
	// a streaming σ/π/⋈ operator pipeline over an epoch snapshot, with
	// per-query plans and per-operator accounting alongside.
	OperatorReplay = replay.OperatorReplay
	// Selection pushes σ(attr < bound) into every pipeline of an
	// operator-backed execution.
	Selection = replay.Selection
)

// ReplayLayout materializes the table under the given layout and replays
// the workload, comparing every measurement against the cost model.
func ReplayLayout(tw TableWorkload, layout Partitioning, algorithm string, cfg ReplayConfig) (*TableReplay, error) {
	return replay.Layout(tw, layout, algorithm, cfg)
}

// ReplayAlgorithm searches the full-scale workload with the named algorithm
// ("Row" and "Column" name the baseline families) and replays the result.
func ReplayAlgorithm(tw TableWorkload, name string, cfg ReplayConfig) (*TableReplay, error) {
	return replay.Algorithm(tw, name, cfg)
}

// ReplayBenchmark replays every table of a benchmark under the named
// algorithm, fanning tables out concurrently.
func ReplayBenchmark(b *Benchmark, name string, cfg ReplayConfig) ([]*TableReplay, error) {
	return replay.Benchmark(b, name, cfg)
}

// ReplayAdvice replays an advisor recommendation: the advised layout is
// rebound onto the workload's table and replayed under the config.
func ReplayAdvice(tw TableWorkload, advice TableAdvice, cfg ReplayConfig) (*TableReplay, error) {
	layout, err := partition.New(tw.Table, advice.Layout.Parts)
	if err != nil {
		return nil, err
	}
	return replay.Layout(tw, layout, advice.Algorithm, cfg)
}

// ExecuteLayout materializes the table under the given layout and EXECUTES
// the workload as σ/π/⋈ operator pipelines over an epoch snapshot — the
// measured totals still equal the cost model bit for bit, now decomposed
// into per-operator terms. A non-nil sel pushes its predicate into every
// query's scans.
func ExecuteLayout(tw TableWorkload, layout Partitioning, algorithm string, cfg ReplayConfig, sel *Selection) (*OperatorReplay, error) {
	return replay.Operators(tw, layout, algorithm, cfg, sel)
}

// ExecuteAlgorithm searches the full-scale workload with the named
// algorithm ("Row"/"Column" name the baseline families) and executes the
// resulting layout through operator pipelines.
func ExecuteAlgorithm(tw TableWorkload, name string, cfg ReplayConfig, sel *Selection) (*OperatorReplay, error) {
	return replay.OperatorsAlgorithm(tw, name, cfg, sel)
}

// ExecuteAdvice executes an advisor recommendation through operator
// pipelines: the advised layout is rebound onto the workload's table.
func ExecuteAdvice(tw TableWorkload, advice TableAdvice, cfg ReplayConfig, sel *Selection) (*OperatorReplay, error) {
	layout, err := partition.New(tw.Table, advice.Layout.Parts)
	if err != nil {
		return nil, err
	}
	return replay.Operators(tw, layout, advice.Algorithm, cfg, sel)
}
