package knives_test

import (
	"math"
	"strings"
	"testing"

	"knives"
)

func TestPublicQuickstart(t *testing.T) {
	bench := knives.TPCH(10)
	model := knives.NewHDDModel(knives.DefaultDisk())
	hc, err := knives.AlgorithmByName("HillClimb")
	if err != nil {
		t.Fatal(err)
	}
	tw := bench.Workload.ForTable(bench.Table("partsupp"))
	res, err := hc.Partition(tw, model)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Partitioning.String()
	// The always-co-accessed keys stay together; the unreferenced comment
	// is isolated (paper, Figure 14(h) and the introduction's P1/P3).
	if !strings.Contains(got, "ps_partkey ps_suppkey") {
		t.Errorf("partsupp layout = %s: keys should share a partition", got)
	}
	if !strings.Contains(got, "| ps_comment") && !strings.HasPrefix(got, "[ps_comment |") {
		t.Errorf("partsupp layout = %s: comment should be isolated", got)
	}
	if res.Cost <= 0 || res.Stats.Candidates <= 0 {
		t.Errorf("degenerate result: %+v", res)
	}
}

func TestPublicBaselinesAndCost(t *testing.T) {
	bench := knives.TPCH(1)
	model := knives.NewHDDModel(knives.DefaultDisk())
	tw := bench.Workload.ForTable(bench.Table("lineitem"))
	row := knives.WorkloadCost(model, tw, knives.RowLayout(tw.Table))
	col := knives.WorkloadCost(model, tw, knives.ColumnLayout(tw.Table))
	if col >= row {
		t.Errorf("column (%v) should beat row (%v) on lineitem", col, row)
	}
}

func TestPublicCustomTable(t *testing.T) {
	tab, err := knives.NewTable("events", 1_000_000, []knives.Column{
		{Name: "id", Kind: knives.KindInt, Size: 4},
		{Name: "ts", Kind: knives.KindDate, Size: 4},
		{Name: "payload", Kind: knives.KindVarchar, Size: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	tw := knives.TableWorkload{Table: tab, Queries: []knives.TableQuery{
		{ID: "recent", Weight: 10, Attrs: knives.Attrs(0, 1)},
		{ID: "full", Weight: 1, Attrs: knives.Attrs(0, 1, 2)},
	}}
	model := knives.NewHDDModel(knives.DefaultDisk())
	for _, a := range knives.Algorithms() {
		res, err := a.Partition(tw, model)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if err := res.Partitioning.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name(), err)
		}
	}
}

func TestAdvise(t *testing.T) {
	bench := knives.TPCH(1)
	model := knives.NewHDDModel(knives.DefaultDisk())
	advice, err := knives.Advise(bench, model)
	if err != nil {
		t.Fatal(err)
	}
	if len(advice) != len(bench.Tables) {
		t.Fatalf("advice for %d tables, want %d", len(advice), len(bench.Tables))
	}
	for _, a := range advice {
		if a.Cost > a.ColumnCost+1e-9 {
			t.Errorf("%s: recommended cost %v worse than column %v", a.Table.Name, a.Cost, a.ColumnCost)
		}
		if a.Cost > a.RowCost+1e-9 {
			t.Errorf("%s: recommended cost %v worse than row %v", a.Table.Name, a.Cost, a.RowCost)
		}
		if a.ImprovementOverRow() < 0 {
			t.Errorf("%s: negative improvement over row", a.Table.Name)
		}
		if len(a.PerAlgorithm) != 6 {
			t.Errorf("%s: PerAlgorithm has %d entries, want 6 heuristics", a.Table.Name, len(a.PerAlgorithm))
		}
	}
	// Lineitem is the table where partitioning matters: the advisor must
	// find an improvement over row of roughly the paper's 80%.
	for _, a := range advice {
		if a.Table.Name != "lineitem" {
			continue
		}
		if imp := a.ImprovementOverRow(); imp < 0.6 {
			t.Errorf("lineitem improvement over row = %v, paper ~0.8", imp)
		}
	}
	if _, err := knives.Advise(nil, model); err == nil {
		t.Error("Advise accepted nil benchmark")
	}
	// Nil model defaults to the paper's HDD model.
	if _, err := knives.Advise(bench, nil); err != nil {
		t.Errorf("Advise with nil model: %v", err)
	}
}

func TestPublicExperimentRegistry(t *testing.T) {
	if got := len(knives.Experiments()); got != 30 {
		t.Errorf("Experiments() has %d entries, want 30", got)
	}
	// Run the cheapest experiment end to end through the public API.
	rep, err := knives.RunExperiment("tab4")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 6 {
		t.Errorf("tab4 rows = %d, want 6", len(rep.Rows))
	}
	if _, err := knives.RunExperiment("nope"); err == nil {
		t.Error("RunExperiment accepted unknown id")
	}
}

func TestPublicEngine(t *testing.T) {
	tab, err := knives.NewTable("t", 5000, []knives.Column{
		{Name: "a", Kind: knives.KindInt, Size: 4},
		{Name: "b", Kind: knives.KindVarchar, Size: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := knives.NewEngine(knives.ColumnLayout(tab), knives.DefaultDisk())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Load(knives.NewGenerator(1), tab.Rows); err != nil {
		t.Fatal(err)
	}
	stats, err := e.Scan(knives.Attrs(0))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tuples != tab.Rows || stats.BytesRead <= 0 {
		t.Errorf("scan stats: %+v", stats)
	}
	if math.IsNaN(stats.SimTime) || stats.SimTime <= 0 {
		t.Errorf("sim time: %v", stats.SimTime)
	}
}

func TestPublicMigrate(t *testing.T) {
	tab, err := knives.NewTable("t", 3000, []knives.Column{
		{Name: "a", Kind: knives.KindInt, Size: 4},
		{Name: "b", Kind: knives.KindVarchar, Size: 32},
		{Name: "c", Kind: knives.KindDecimal, Size: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	tw := knives.TableWorkload{Table: tab, Queries: []knives.TableQuery{
		{ID: "q1", Weight: 5, Attrs: knives.Attrs(0)},
		{ID: "q2", Weight: 1, Attrs: knives.Attrs(1, 2)},
	}}
	m := knives.NewHDDModel(knives.DefaultDisk())
	from := knives.RowLayout(tab)
	to := knives.ColumnLayout(tab)

	breakdown, err := knives.MigrationCost(m, tab, from, to)
	if err != nil {
		t.Fatal(err)
	}
	if breakdown.Seconds <= 0 || breakdown.BytesRead <= 0 {
		t.Errorf("migration breakdown: %+v", breakdown)
	}
	plan, err := knives.MigratePlan(tw, from, to, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Window != knives.MigrationDefaultWindow {
		t.Errorf("plan window = %d, want default %d", plan.Window, knives.MigrationDefaultWindow)
	}
	rep, err := knives.MigrateExecute(tw, plan, knives.MigrationConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Exact() {
		t.Error("façade migration not exact")
	}
	// The engine alias carries Repartition too: a loaded store can be
	// re-laid-out in place through the public surface.
	e, err := knives.NewEngine(from, knives.DefaultDisk())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Load(knives.NewGenerator(1), tab.Rows); err != nil {
		t.Fatal(err)
	}
	stats, err := e.Repartition(to, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BytesRead <= 0 || !e.Layout().Equal(to) {
		t.Errorf("public repartition: %+v, layout %s", stats, e.Layout())
	}
	// Drifted workloads are derivable through the façade as well.
	drifted := knives.DriftWorkload(tw, 0.5, 7)
	if len(drifted.Queries) != len(tw.Queries) {
		t.Errorf("drift changed query count: %d", len(drifted.Queries))
	}
}
