// Command knivesd is the long-running partitioning-advisor service: the
// paper's "run every algorithm, keep the cheapest layout" loop behind an
// HTTP API, with a fingerprint-keyed advice cache and O2P-backed drift
// tracking per table.
//
// Usage:
//
//	knivesd [-addr :7978] [-model hdd|ssd|mm] [-buffer MB]
//	        [-block KB] [-seek-ms MS] [-read-mbps MBPS] [-write-mbps MBPS]
//	        [-cache-line BYTES] [-miss-ns NS]
//	        [-drift-threshold 0.15] [-drift-window N]
//	        [-drift-tracking exact|sketch] [-sketch-capacity N]
//	        [-ingest-shards N] [-ingest-group N]
//	        [-migrate-window N] [-prewarm tpch|ssb] [-sf N]
//	        [-wal-dir DIR] [-snapshot-every N]
//	        [-request-timeout D] [-max-inflight N] [-max-queue N]
//	        [-retry-after D] [-drain-timeout D]
//	        [-pprof] [-slow-request D]
//
// -model resolves a device preset (hdd, ssd, mm, plus aliases like disk,
// flash, ram) the daemon prices with by default; the device flags override
// individual hardware parameters of that preset (0 = keep the preset's
// value). Requests may carry their own "model" spec with the same fields to
// price on a different device per request.
//
// -wal-dir makes the service state durable: every registration, observed
// batch, recompute, and applied-layout advance is journaled to a write-ahead
// log in that directory before it is acknowledged, and a restart replays the
// journal to exactly the state the previous process acknowledged. Without it
// the daemon keeps state in memory only, as before. -snapshot-every bounds
// replay time by compacting the WAL into a snapshot after that many events
// (negative = only the snapshot written at shutdown).
//
// -drift-tracking selects how trackers price drift per observation batch:
// "exact" (the default) prices the full retained observation window,
// "sketch" prices a windowed attribute-set frequency sketch bounded by
// -sketch-capacity counters per epoch — constant memory and per-batch cost
// regardless of stream length, with verdicts equivalent to exact while the
// stream's distinct attribute sets fit the capacity. -ingest-shards and
// -ingest-group tune the sharded observe-ingest stage that group-commits
// concurrent observation batches into shared WAL appends.
//
// The daemon always serves GET /metrics: one Prometheus text-format scrape
// covering request latency histograms, admission wait and shed counts,
// search and cache metrics, ingest group-commit sizes and queue depth,
// drift and migration timings, and — with -wal-dir — WAL append/fsync/
// snapshot durations plus the last recovery's report. -pprof additionally
// mounts net/http/pprof under GET /debug/pprof/ (off by default: heap and
// goroutine dumps are an operator's decision). -slow-request D traces every
// request and logs a span breakdown (admission wait, search-gate waits,
// per-algorithm searches, ingest) for requests that take at least D.
//
// -request-timeout, -max-inflight, and -max-queue bound the POST endpoints:
// past the in-flight and queue limits the daemon sheds with 429 +
// Retry-After instead of queueing unboundedly, and a request that exceeds
// its deadline answers 503. On SIGINT/SIGTERM the daemon stops accepting,
// drains in-flight requests for up to -drain-timeout, then snapshots and
// fsyncs the WAL before exiting.
//
// Endpoints:
//
//	POST /advise   {tables, queries} or {benchmark, sf} -> per-table advice
//	POST /replay   same workload + {max_rows, seed, workers} -> advise,
//	               materialize through the storage engine, replay, and
//	               report measured vs predicted cost (fingerprint-cached)
//	POST /query    same workload + {max_rows, seed, workers, selection} ->
//	               advise, materialize, and EXECUTE every query as a σ/π/⋈
//	               operator pipeline over an epoch snapshot, answering each
//	               plan with its per-operator cost decomposition (cached)
//	POST /observe  {table, queries} -> drift report + current advice;
//	               batched {batches, batch_id} dedups redelivered IDs
//	POST /migrate  {table, window, max_rows, seed, workers} -> plan the
//	               applied->advised re-layout against the observed mix,
//	               execute + verify it on a sampled store, and advance the
//	               applied layout when it proves out (pair-cached)
//	GET  /advice?table=NAME         -> current tracked advice
//	GET  /tables                    -> registered tables
//	GET  /stats                     -> cache, drift, migration, and shed
//	                                   counters (+ recovery report when
//	                                   journaling)
//	GET  /metrics                   -> Prometheus text-format telemetry
//	GET  /healthz                   -> liveness
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"knives/internal/advisor"
	"knives/internal/cost"
	"knives/internal/devflag"
	"knives/internal/migrate"
	"knives/internal/schema"
	"knives/internal/statestore"
	"knives/internal/telemetry"
	"knives/internal/vfs"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// config is everything the flags decide.
type config struct {
	addr           string
	model          cost.Model
	driftThreshold float64
	driftWindow    int
	driftTracking  string
	sketchCapacity int
	ingestShards   int
	ingestGroup    int
	migrateWindow  int64
	prewarm        *schema.Benchmark
	walDir         string
	snapshotEvery  int
	requestTimeout time.Duration
	maxInFlight    int
	maxQueue       int
	retryAfter     time.Duration
	drainTimeout   time.Duration
	pprof          bool
	slowRequest    time.Duration
}

// parseFlags validates the command line into a config.
func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("knivesd", flag.ContinueOnError)
	addr := fs.String("addr", ":7978", "listen address")
	modelName := fs.String("model", "hdd", "cost model: hdd, ssd, or mm")
	devf := devflag.Register(fs)
	driftThreshold := fs.Float64("drift-threshold", advisor.DefaultDriftThreshold,
		"relative cost divergence past which cached advice is recomputed")
	driftWindow := fs.Int("drift-window", advisor.DefaultDriftWindow,
		"observed queries each tracker retains (0 = default, negative = unbounded; offline replays only)")
	driftTracking := fs.String("drift-tracking", advisor.TrackExact,
		"per-batch drift pricing: exact (price the full window) or sketch (bounded frequency sketch)")
	sketchCapacity := fs.Int("sketch-capacity", advisor.DefaultSketchCapacity,
		"attribute-set counters per sketch epoch under -drift-tracking=sketch")
	ingestShards := fs.Int("ingest-shards", advisor.DefaultIngestShards,
		"observe-ingest shards (tables hash to a shard; each shard group-commits its batches)")
	ingestGroup := fs.Int("ingest-group", advisor.DefaultIngestGroup,
		"max observation batches coalesced into one WAL group commit")
	migrateWindow := fs.Int64("migrate-window", migrate.DefaultWindow,
		"default break-even horizon bound for /migrate plans, in queries of the observed mix")
	prewarm := fs.String("prewarm", "", "benchmark to prewarm advice for: tpch or ssb (empty = none)")
	sf := fs.Float64("sf", 10, "scale factor for -prewarm")
	walDir := fs.String("wal-dir", "", "directory for the durable state journal (empty = in-memory state)")
	snapshotEvery := fs.Int("snapshot-every", statestore.DefaultSnapshotEvery,
		"events between automatic WAL snapshots (negative = only at shutdown)")
	requestTimeout := fs.Duration("request-timeout", 0, "per-request deadline for POST endpoints (0 = none)")
	maxInFlight := fs.Int("max-inflight", 0, "max concurrently executing POST requests (0 = unlimited)")
	maxQueue := fs.Int("max-queue", 0, "requests allowed to wait beyond -max-inflight before 429")
	retryAfter := fs.Duration("retry-after", time.Second,
		"Retry-After hint on shed (429) responses, rounded up to whole seconds")
	drainTimeout := fs.Duration("drain-timeout", 5*time.Second,
		"how long shutdown waits for in-flight requests to finish")
	pprofFlag := fs.Bool("pprof", false, "mount net/http/pprof under GET /debug/pprof/")
	slowRequest := fs.Duration("slow-request", 0,
		"trace every request and log a span breakdown for ones at least this slow (0 = off)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return config{}, err
		}
		// ContinueOnError already printed the message and usage.
		return config{}, fmt.Errorf("%w: %v", errFlagReported, err)
	}
	if !(*driftThreshold > 0) { // negated compare also rejects NaN
		// NewService would silently substitute the default; an explicit
		// flag value must not be reinterpreted.
		return config{}, fmt.Errorf("-drift-threshold must be positive (got %v)", *driftThreshold)
	}
	switch *driftTracking {
	case advisor.TrackExact, advisor.TrackSketch:
	default:
		return config{}, fmt.Errorf("-drift-tracking must be %q or %q (got %q)",
			advisor.TrackExact, advisor.TrackSketch, *driftTracking)
	}
	if *sketchCapacity <= 0 {
		return config{}, fmt.Errorf("-sketch-capacity must be positive (got %d)", *sketchCapacity)
	}
	if *ingestShards <= 0 {
		return config{}, fmt.Errorf("-ingest-shards must be positive (got %d)", *ingestShards)
	}
	if *ingestGroup <= 0 {
		return config{}, fmt.Errorf("-ingest-group must be positive (got %d)", *ingestGroup)
	}
	if *migrateWindow <= 0 || *migrateWindow > advisor.MaxMigrateWindow {
		return config{}, fmt.Errorf("-migrate-window must be in (0, %d] (got %v)", advisor.MaxMigrateWindow, *migrateWindow)
	}
	if *requestTimeout < 0 {
		return config{}, fmt.Errorf("-request-timeout must be >= 0 (got %v)", *requestTimeout)
	}
	if *maxInFlight < 0 || *maxQueue < 0 {
		return config{}, fmt.Errorf("-max-inflight and -max-queue must be >= 0")
	}
	if *maxQueue > 0 && *maxInFlight == 0 {
		return config{}, fmt.Errorf("-max-queue needs -max-inflight to bound execution first")
	}
	if *retryAfter <= 0 {
		return config{}, fmt.Errorf("-retry-after must be positive (got %v)", *retryAfter)
	}
	if *drainTimeout <= 0 {
		return config{}, fmt.Errorf("-drain-timeout must be positive (got %v)", *drainTimeout)
	}
	if *slowRequest < 0 {
		return config{}, fmt.Errorf("-slow-request must be >= 0 (got %v)", *slowRequest)
	}
	cfg := config{
		addr:           *addr,
		driftThreshold: *driftThreshold,
		driftWindow:    *driftWindow,
		driftTracking:  *driftTracking,
		sketchCapacity: *sketchCapacity,
		ingestShards:   *ingestShards,
		ingestGroup:    *ingestGroup,
		migrateWindow:  *migrateWindow,
		walDir:         *walDir,
		snapshotEvery:  *snapshotEvery,
		requestTimeout: *requestTimeout,
		maxInFlight:    *maxInFlight,
		maxQueue:       *maxQueue,
		retryAfter:     *retryAfter,
		drainTimeout:   *drainTimeout,
		pprof:          *pprofFlag,
		slowRequest:    *slowRequest,
	}
	override, err := devf()
	if err != nil {
		return config{}, err
	}
	model, err := cost.ModelByName(*modelName, override)
	if err != nil {
		return config{}, err
	}
	cfg.model = model
	if *prewarm != "" {
		b, err := schema.BenchmarkByName(*prewarm, *sf)
		if err != nil {
			return config{}, fmt.Errorf("prewarm: %w", err)
		}
		cfg.prewarm = b
	}
	return cfg, nil
}

// newService builds the advisor service for a config: durable when -wal-dir
// is set (recovering whatever a previous process journaled), in-memory
// otherwise. Prewarm runs after recovery, so recovered tables keep their
// journaled drift state and only missing tables are searched fresh. One
// telemetry registry is shared by the state store (WAL and recovery
// metrics), the service (search, cache, ingest, drift, operator metrics),
// and the HTTP server (request histograms and GET /metrics), so a single
// scrape covers the daemon end to end.
func newService(cfg config) (*advisor.Service, *telemetry.Registry, error) {
	reg := telemetry.NewRegistry()
	acfg := advisor.Config{
		Model:          cfg.model,
		DriftThreshold: cfg.driftThreshold,
		DriftWindow:    cfg.driftWindow,
		DriftTracking:  cfg.driftTracking,
		SketchCapacity: cfg.sketchCapacity,
		IngestShards:   cfg.ingestShards,
		IngestGroup:    cfg.ingestGroup,
		MigrateWindow:  cfg.migrateWindow,
		Telemetry:      reg,
	}
	if cfg.walDir != "" {
		fsys, err := vfs.Dir(cfg.walDir)
		if err != nil {
			return nil, nil, fmt.Errorf("wal dir: %w", err)
		}
		st, err := statestore.Open(fsys, statestore.Options{
			// The store's fold must trim observation logs exactly like the
			// live trackers, so the windows are one flag, not two.
			DriftWindow:   cfg.driftWindow,
			SnapshotEvery: cfg.snapshotEvery,
			Metrics:       reg,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("open state store: %w", err)
		}
		acfg.Store = st
	}
	svc, err := advisor.OpenService(acfg)
	if err != nil {
		return nil, nil, err
	}
	if cfg.prewarm != nil {
		if err := svc.Prewarm(cfg.prewarm); err != nil {
			svc.Close()
			return nil, nil, fmt.Errorf("prewarm: %w", err)
		}
	}
	return svc, reg, nil
}

// serve runs the daemon on ln until ctx is canceled, then drains: stop
// accepting, let in-flight requests finish (bounded by drainTimeout), and
// only then close the service — which snapshots and fsyncs the WAL, so a
// clean shutdown restarts from a snapshot instead of a replay. Returns nil
// on a clean drain.
func serve(ctx context.Context, cfg config, svc *advisor.Service, reg *telemetry.Registry, ln net.Listener) error {
	srv := &http.Server{
		Handler: advisor.NewServerWith(svc, advisor.ServerConfig{
			RequestTimeout: cfg.requestTimeout,
			MaxInFlight:    cfg.maxInFlight,
			MaxQueue:       cfg.maxQueue,
			RetryAfter:     cfg.retryAfter,
			Telemetry:      reg,
			EnablePprof:    cfg.pprof,
			SlowRequest:    cfg.slowRequest,
		}),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		// The listener died on its own; still seal the store so everything
		// acknowledged so far recovers from a snapshot.
		if cerr := svc.Close(); cerr != nil {
			return errors.Join(err, cerr)
		}
		return err
	case <-ctx.Done():
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	drainErr := srv.Shutdown(drainCtx)
	// Close AFTER the drain: in-flight requests journal right up to their
	// last write, and the final snapshot must include them. Close even when
	// the drain timed out — whatever was acknowledged is on disk either way,
	// the snapshot just compacts it.
	if err := svc.Close(); err != nil {
		return errors.Join(drainErr, fmt.Errorf("close state store: %w", err))
	}
	if drainErr != nil {
		return fmt.Errorf("shutdown: %w", drainErr)
	}
	return nil
}

// errFlagReported marks a flag-parse failure the flag package has already
// written to stderr, so run() must not print it a second time.
var errFlagReported = errors.New("flag error already reported")

func run(args []string) int {
	cfg, err := parseFlags(args)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		if !errors.Is(err, errFlagReported) {
			fmt.Fprintf(os.Stderr, "knivesd: %v\n", err)
		}
		return 2
	}
	svc, reg, err := newService(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "knivesd: %v\n", err)
		return 1
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		svc.Close()
		fmt.Fprintf(os.Stderr, "knivesd: %v\n", err)
		return 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	fmt.Fprintf(os.Stderr, "knivesd: listening on %s\n", ln.Addr())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, cfg, svc, reg, ln) }()

	var serveErr error
	select {
	case serveErr = <-done:
		stop()
	case <-ctx.Done():
		// Release the signal capture first, so a second SIGTERM during a
		// stuck drain kills the process instead of being swallowed.
		stop()
		serveErr = <-done
	}
	if serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "knivesd: %v\n", serveErr)
		return 1
	}
	return 0
}
