// Command knivesd is the long-running partitioning-advisor service: the
// paper's "run every algorithm, keep the cheapest layout" loop behind an
// HTTP API, with a fingerprint-keyed advice cache and O2P-backed drift
// tracking per table.
//
// Usage:
//
//	knivesd [-addr :7978] [-model hdd|ssd|mm] [-buffer MB]
//	        [-block KB] [-seek-ms MS] [-read-mbps MBPS] [-write-mbps MBPS]
//	        [-cache-line BYTES] [-miss-ns NS]
//	        [-drift-threshold 0.15] [-drift-window N]
//	        [-migrate-window N] [-prewarm tpch|ssb] [-sf N]
//
// -model resolves a device preset (hdd, ssd, mm, plus aliases like disk,
// flash, ram) the daemon prices with by default; the device flags override
// individual hardware parameters of that preset (0 = keep the preset's
// value). Requests may carry their own "model" spec with the same fields to
// price on a different device per request.
//
// Endpoints:
//
//	POST /advise   {tables, queries} or {benchmark, sf} -> per-table advice
//	POST /replay   same workload + {max_rows, seed, workers} -> advise,
//	               materialize through the storage engine, replay, and
//	               report measured vs predicted cost (fingerprint-cached)
//	POST /observe  {table, queries} -> drift report + current advice
//	POST /migrate  {table, window, max_rows, seed, workers} -> plan the
//	               applied->advised re-layout against the observed mix,
//	               execute + verify it on a sampled store, and advance the
//	               applied layout when it proves out (pair-cached)
//	GET  /advice?table=NAME         -> current tracked advice
//	GET  /tables                    -> registered tables
//	GET  /stats                     -> cache, drift, and migration counters
//	GET  /healthz                   -> liveness
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"knives/internal/advisor"
	"knives/internal/cost"
	"knives/internal/devflag"
	"knives/internal/migrate"
	"knives/internal/schema"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// config is everything the flags decide.
type config struct {
	addr           string
	model          cost.Model
	driftThreshold float64
	driftWindow    int
	migrateWindow  int64
	prewarm        *schema.Benchmark
}

// parseFlags validates the command line into a config.
func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("knivesd", flag.ContinueOnError)
	addr := fs.String("addr", ":7978", "listen address")
	modelName := fs.String("model", "hdd", "cost model: hdd, ssd, or mm")
	devf := devflag.Register(fs)
	driftThreshold := fs.Float64("drift-threshold", advisor.DefaultDriftThreshold,
		"relative cost divergence past which cached advice is recomputed")
	driftWindow := fs.Int("drift-window", advisor.DefaultDriftWindow,
		"observed queries each tracker retains (0 = default, negative = unbounded; offline replays only)")
	migrateWindow := fs.Int64("migrate-window", migrate.DefaultWindow,
		"default break-even horizon bound for /migrate plans, in queries of the observed mix")
	prewarm := fs.String("prewarm", "", "benchmark to prewarm advice for: tpch or ssb (empty = none)")
	sf := fs.Float64("sf", 10, "scale factor for -prewarm")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return config{}, err
		}
		// ContinueOnError already printed the message and usage.
		return config{}, fmt.Errorf("%w: %v", errFlagReported, err)
	}
	if !(*driftThreshold > 0) { // negated compare also rejects NaN
		// NewService would silently substitute the default; an explicit
		// flag value must not be reinterpreted.
		return config{}, fmt.Errorf("-drift-threshold must be positive (got %v)", *driftThreshold)
	}
	if *migrateWindow <= 0 || *migrateWindow > advisor.MaxMigrateWindow {
		return config{}, fmt.Errorf("-migrate-window must be in (0, %d] (got %v)", advisor.MaxMigrateWindow, *migrateWindow)
	}
	cfg := config{
		addr:           *addr,
		driftThreshold: *driftThreshold,
		driftWindow:    *driftWindow,
		migrateWindow:  *migrateWindow,
	}
	override, err := devf()
	if err != nil {
		return config{}, err
	}
	model, err := cost.ModelByName(*modelName, override)
	if err != nil {
		return config{}, err
	}
	cfg.model = model
	if *prewarm != "" {
		b, err := schema.BenchmarkByName(*prewarm, *sf)
		if err != nil {
			return config{}, fmt.Errorf("prewarm: %w", err)
		}
		cfg.prewarm = b
	}
	return cfg, nil
}

// newService builds the advisor service for a config, prewarming if asked.
func newService(cfg config) (*advisor.Service, error) {
	svc := advisor.NewService(advisor.Config{
		Model:          cfg.model,
		DriftThreshold: cfg.driftThreshold,
		DriftWindow:    cfg.driftWindow,
		MigrateWindow:  cfg.migrateWindow,
	})
	if cfg.prewarm != nil {
		if err := svc.Prewarm(cfg.prewarm); err != nil {
			return nil, fmt.Errorf("prewarm: %w", err)
		}
	}
	return svc, nil
}

// errFlagReported marks a flag-parse failure the flag package has already
// written to stderr, so run() must not print it a second time.
var errFlagReported = errors.New("flag error already reported")

func run(args []string) int {
	cfg, err := parseFlags(args)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		if !errors.Is(err, errFlagReported) {
			fmt.Fprintf(os.Stderr, "knivesd: %v\n", err)
		}
		return 2
	}
	svc, err := newService(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "knivesd: %v\n", err)
		return 1
	}
	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           advisor.NewServer(svc),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "knivesd: listening on %s\n", cfg.addr)

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "knivesd: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "knivesd: shutdown: %v\n", err)
		return 1
	}
	return 0
}
