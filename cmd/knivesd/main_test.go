package main

import (
	"context"
	"net/http/httptest"
	"testing"

	"knives/internal/advisor"
	"knives/internal/migrate"
)

func TestParseFlagsDefaults(t *testing.T) {
	cfg, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != ":7978" {
		t.Errorf("addr = %q", cfg.addr)
	}
	if cfg.model.Name() != "HDD" {
		t.Errorf("default model is %s, want HDD", cfg.model.Name())
	}
	if cfg.driftThreshold != advisor.DefaultDriftThreshold {
		t.Errorf("drift threshold = %v", cfg.driftThreshold)
	}
	if cfg.prewarm != nil {
		t.Error("prewarm benchmark set by default")
	}
	if cfg.migrateWindow != migrate.DefaultWindow {
		t.Errorf("migrate window = %d, want %d", cfg.migrateWindow, migrate.DefaultWindow)
	}
}

func TestParseFlagsRejectsBadValues(t *testing.T) {
	for _, args := range [][]string{
		{"-model", "quantum"},
		{"-prewarm", "mystery"},
		{"-buffer", "0"},
		{"-drift-threshold", "0"},
		{"-drift-threshold", "-1"},
		{"-migrate-window", "0"},
		{"-migrate-window", "-5"},
		{"-migrate-window", "2000000000"},
		{"-nosuchflag"},
	} {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("parseFlags(%v) accepted bad input", args)
		}
	}
}

func TestParseFlagsOptions(t *testing.T) {
	cfg, err := parseFlags([]string{"-model", "mm", "-addr", ":0", "-drift-threshold", "0.3", "-drift-window", "32"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.model.Name() != "MM" {
		t.Errorf("model is %s, want MM", cfg.model.Name())
	}
	if cfg.driftThreshold != 0.3 || cfg.driftWindow != 32 {
		t.Errorf("drift config = (%v, %d)", cfg.driftThreshold, cfg.driftWindow)
	}
	cfg, err = parseFlags([]string{"-prewarm", "ssb", "-sf", "0.01"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.prewarm == nil || cfg.prewarm.Name != "SSB" {
		t.Errorf("prewarm benchmark = %+v", cfg.prewarm)
	}
}

func TestRunExitCodes(t *testing.T) {
	if got := run([]string{"-model", "quantum"}); got != 2 {
		t.Errorf("bad flags exit = %d, want 2", got)
	}
	if got := run([]string{"-h"}); got != 0 {
		t.Errorf("-h exit = %d, want 0", got)
	}
}

// The daemon end to end: prewarm a small benchmark, serve, answer from
// cache.
func TestDaemonServesPrewarmedBenchmark(t *testing.T) {
	cfg, err := parseFlags([]string{"-prewarm", "tpch", "-sf", "0.01"})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := newService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(advisor.NewServer(svc))
	defer ts.Close()

	client := advisor.NewClient(ts.URL)
	client.HTTPClient = ts.Client()
	resp, err := client.Advise(context.Background(), advisor.AdviseRequest{Benchmark: "tpch", ScaleFactor: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Advice) != 8 {
		t.Fatalf("advice for %d tables, want 8", len(resp.Advice))
	}
	for _, adv := range resp.Advice {
		if !adv.Cached {
			t.Errorf("%s: prewarmed table not served from cache", adv.Table)
		}
	}
	stats, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Hits != 8 {
		t.Errorf("stats after prewarmed advise: %+v", stats)
	}
}
