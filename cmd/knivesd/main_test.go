package main

import (
	"context"
	"io"
	"net"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"knives/internal/advisor"
	"knives/internal/algo"
	"knives/internal/migrate"
	"knives/internal/statestore"
	"knives/internal/telemetry"
	"knives/internal/vfs"
)

func TestParseFlagsDefaults(t *testing.T) {
	cfg, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != ":7978" {
		t.Errorf("addr = %q", cfg.addr)
	}
	if cfg.model.Name() != "HDD" {
		t.Errorf("default model is %s, want HDD", cfg.model.Name())
	}
	if cfg.driftThreshold != advisor.DefaultDriftThreshold {
		t.Errorf("drift threshold = %v", cfg.driftThreshold)
	}
	if cfg.prewarm != nil {
		t.Error("prewarm benchmark set by default")
	}
	if cfg.migrateWindow != migrate.DefaultWindow {
		t.Errorf("migrate window = %d, want %d", cfg.migrateWindow, migrate.DefaultWindow)
	}
}

func TestParseFlagsRejectsBadValues(t *testing.T) {
	for _, args := range [][]string{
		{"-model", "quantum"},
		{"-prewarm", "mystery"},
		{"-buffer", "0"},
		{"-drift-threshold", "0"},
		{"-drift-threshold", "-1"},
		{"-migrate-window", "0"},
		{"-migrate-window", "-5"},
		{"-migrate-window", "2000000000"},
		{"-nosuchflag"},
	} {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("parseFlags(%v) accepted bad input", args)
		}
	}
}

func TestParseFlagsOptions(t *testing.T) {
	cfg, err := parseFlags([]string{"-model", "mm", "-addr", ":0", "-drift-threshold", "0.3", "-drift-window", "32"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.model.Name() != "MM" {
		t.Errorf("model is %s, want MM", cfg.model.Name())
	}
	if cfg.driftThreshold != 0.3 || cfg.driftWindow != 32 {
		t.Errorf("drift config = (%v, %d)", cfg.driftThreshold, cfg.driftWindow)
	}
	cfg, err = parseFlags([]string{"-prewarm", "ssb", "-sf", "0.01"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.prewarm == nil || cfg.prewarm.Name != "SSB" {
		t.Errorf("prewarm benchmark = %+v", cfg.prewarm)
	}
}

func TestParseFlagsRejectsBadHardening(t *testing.T) {
	for _, args := range [][]string{
		{"-request-timeout", "-1s"},
		{"-max-inflight", "-1"},
		{"-max-queue", "-1"},
		{"-max-queue", "4"}, // queue without an in-flight bound
		{"-retry-after", "0"},
		{"-retry-after", "-1s"},
		{"-drain-timeout", "0"},
	} {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("parseFlags(%v) accepted bad input", args)
		}
	}
}

// The shutdown-drain regression: a request in flight when SIGTERM lands
// must complete with 200, and only afterwards is the WAL sealed with a
// snapshot a restart recovers from.
func TestServeDrainsInFlightThenSealsWAL(t *testing.T) {
	walDir := t.TempDir()
	cfg, err := parseFlags([]string{
		"-wal-dir", walDir, "-snapshot-every", "-1",
		"-drift-window", "16", "-drain-timeout", "10s",
	})
	if err != nil {
		t.Fatal(err)
	}
	svc, reg, err := newService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- serve(ctx, cfg, svc, reg, ln) }()

	// Park the request mid-handler by taking every search slot: the advise
	// is admitted, journal-registered work not yet done, fan-out waiting.
	slots := runtime.GOMAXPROCS(0)
	for i := 0; i < slots; i++ {
		algo.AcquireSearchSlot()
	}
	client := advisor.NewClient("http://" + ln.Addr().String())
	reqDone := make(chan error, 1)
	go func() {
		_, err := client.Advise(context.Background(), advisor.AdviseRequest{
			Tables: []advisor.TableSpec{{Name: "events", Rows: 10_000, Columns: []advisor.ColumnSpec{
				{Name: "a", Kind: "char", Size: 8}, {Name: "b", Kind: "char", Size: 8}, {Name: "c", Kind: "char", Size: 8},
			}}},
			Queries: []advisor.QuerySpec{{Tables: map[string][]string{"events": {"a", "b"}}}},
		})
		reqDone <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().Requests < 1 {
		select {
		case err := <-reqDone:
			t.Fatalf("advise returned before reaching the search fan-out: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("advise request never reached the service")
		}
		time.Sleep(time.Millisecond)
	}

	// SIGTERM arrives (the signal context cancels) while the request is in
	// flight; unpark the search only after shutdown has begun.
	cancel()
	time.Sleep(10 * time.Millisecond)
	for i := 0; i < slots; i++ {
		algo.ReleaseSearchSlot()
	}
	if err := <-reqDone; err != nil {
		t.Fatalf("in-flight advise failed during drain: %v", err)
	}
	if err := <-served; err != nil {
		t.Fatalf("serve returned %v after drain", err)
	}

	// The store was sealed AFTER the drain: the snapshot covers the
	// request's registration, so a restart replays zero journal records.
	fsys, err := vfs.Dir(walDir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := statestore.Open(fsys, statestore.Options{DriftWindow: 16, SnapshotEvery: -1})
	if err != nil {
		t.Fatalf("reopen after drain: %v", err)
	}
	defer st.Close()
	rep := st.Report()
	if rep.SnapshotSeq == 0 {
		t.Error("no snapshot written at shutdown")
	}
	if rep.Records != 0 {
		t.Errorf("restart replayed %d journal records, want 0 (snapshot should cover them)", rep.Records)
	}
	states := st.Recovered()
	if len(states) != 1 || states[0].Table.Name != "events" {
		t.Fatalf("recovered %d tables (%+v), want the drained request's table", len(states), states)
	}
}

func TestRunExitCodes(t *testing.T) {
	if got := run([]string{"-model", "quantum"}); got != 2 {
		t.Errorf("bad flags exit = %d, want 2", got)
	}
	if got := run([]string{"-h"}); got != 0 {
		t.Errorf("-h exit = %d, want 0", got)
	}
}

// The daemon end to end: prewarm a small benchmark, serve, answer from
// cache.
func TestDaemonServesPrewarmedBenchmark(t *testing.T) {
	cfg, err := parseFlags([]string{"-prewarm", "tpch", "-sf", "0.01"})
	if err != nil {
		t.Fatal(err)
	}
	svc, _, err := newService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(advisor.NewServer(svc))
	defer ts.Close()

	client := advisor.NewClient(ts.URL)
	client.HTTPClient = ts.Client()
	resp, err := client.Advise(context.Background(), advisor.AdviseRequest{Benchmark: "tpch", ScaleFactor: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Advice) != 8 {
		t.Fatalf("advice for %d tables, want 8", len(resp.Advice))
	}
	for _, adv := range resp.Advice {
		if !adv.Cached {
			t.Errorf("%s: prewarmed table not served from cache", adv.Table)
		}
	}
	stats, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Hits != 8 {
		t.Errorf("stats after prewarmed advise: %+v", stats)
	}
}

func TestParseFlagsTelemetry(t *testing.T) {
	cfg, err := parseFlags([]string{"-pprof", "-slow-request", "250ms"})
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.pprof {
		t.Error("-pprof not recorded")
	}
	if cfg.slowRequest != 250*time.Millisecond {
		t.Errorf("slowRequest = %v, want 250ms", cfg.slowRequest)
	}
	if _, err := parseFlags([]string{"-slow-request", "-1s"}); err == nil {
		t.Error("negative -slow-request accepted")
	}
}

// The daemon's wiring smoke: newService hands back the registry it shared
// with the state store and service, and a server built on it answers a
// strict-format /metrics scrape with WAL and request metrics after one
// advise round-trip.
func TestDaemonMetricsEndpoint(t *testing.T) {
	cfg, err := parseFlags([]string{"-wal-dir", t.TempDir(), "-drift-window", "16", "-pprof"})
	if err != nil {
		t.Fatal(err)
	}
	svc, reg, err := newService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(advisor.NewServerWith(svc, advisor.ServerConfig{
		Telemetry:   reg,
		EnablePprof: cfg.pprof,
	}))
	defer ts.Close()

	client := advisor.NewClient(ts.URL)
	client.HTTPClient = ts.Client()
	if _, err := client.Advise(context.Background(), advisor.AdviseRequest{Benchmark: "tpch", ScaleFactor: 0.01}); err != nil {
		t.Fatal(err)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.CheckExposition(string(b)); err != nil {
		t.Fatalf("exposition fails strict check: %v", err)
	}
	for _, want := range []string{
		"knives_wal_fsync_seconds_count",
		"knives_requests_total",
		`knives_http_request_seconds_count{path="/advise"}`,
	} {
		if !strings.Contains(string(b), want) {
			t.Errorf("scrape missing %s", want)
		}
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
}
