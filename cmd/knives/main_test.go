package main

import "testing"

func TestPickBenchmark(t *testing.T) {
	for _, name := range []string{"tpch", "TPC-H", "ssb"} {
		b, err := pickBenchmark(name, 1)
		if err != nil {
			t.Errorf("pickBenchmark(%q): %v", name, err)
			continue
		}
		if b == nil || len(b.Tables) == 0 {
			t.Errorf("pickBenchmark(%q) returned empty benchmark", name)
		}
	}
	if _, err := pickBenchmark("mystery", 1); err == nil {
		t.Error("pickBenchmark accepted an unknown benchmark")
	}
}

func TestRunListSucceeds(t *testing.T) {
	if err := runList(); err != nil {
		t.Fatal(err)
	}
}

func TestRunOptimizeRejectsBadFlags(t *testing.T) {
	if err := runOptimize([]string{"-model", "quantum"}); err == nil {
		t.Error("accepted unknown cost model")
	}
	if err := runOptimize([]string{"-benchmark", "mystery"}); err == nil {
		t.Error("accepted unknown benchmark")
	}
	if err := runOptimize([]string{"-algorithm", "Nope", "-table", "region", "-sf", "0.01"}); err == nil {
		t.Error("accepted unknown algorithm")
	}
}

func TestRunOptimizeSmallTable(t *testing.T) {
	// Region at SF 0.01 is tiny; exercises the full code path quickly.
	if err := runOptimize([]string{"-table", "region", "-sf", "0.01", "-algorithm", "HillClimb"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunExperimentValidation(t *testing.T) {
	if err := runExperiment(nil); err == nil {
		t.Error("accepted missing experiment id")
	}
	if err := runExperiment([]string{"fig99"}); err == nil {
		t.Error("accepted unknown experiment id")
	}
}

func TestRunAdvise(t *testing.T) {
	if err := runAdvise([]string{"-sf", "0.01"}); err != nil {
		t.Fatal(err)
	}
	if err := runAdvise([]string{"-benchmark", "mystery"}); err == nil {
		t.Error("accepted unknown benchmark")
	}
}

func TestRunExperimentCheapID(t *testing.T) {
	// tab4 touches only Lineitem prefixes with HillClimb: cheap enough for
	// a smoke test of the full experiment path.
	if err := runExperiment([]string{"tab4", "-reps", "1"}); err != nil {
		t.Fatal(err)
	}
}
