package main

import (
	"net/http/httptest"
	"testing"

	"knives"
	"knives/internal/advisor"
)

// advise -server must round-trip against a live daemon handler, and reject
// nonsense retry flags as usage errors.
func TestRunAdviseServerMode(t *testing.T) {
	svc, err := advisor.OpenService(advisor.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(advisor.NewServer(svc))
	defer ts.Close()

	if got := run([]string{"advise", "-server", ts.URL, "-benchmark", "tpch", "-sf", "0.01"}); got != 0 {
		t.Errorf("advise -server = exit %d, want 0", got)
	}
	if got := run([]string{"advise", "-server", ts.URL, "-retries", "0"}); got != 2 {
		t.Errorf("advise -server -retries 0 = exit %d, want 2", got)
	}
	// A dead server is a command failure, not a usage error.
	ts.Close()
	if got := run([]string{"advise", "-server", ts.URL, "-retries", "1", "-benchmark", "tpch", "-sf", "0.01"}); got != 1 {
		t.Errorf("advise against dead server = exit %d, want 1", got)
	}
}

func TestPickBenchmark(t *testing.T) {
	for _, name := range []string{"tpch", "TPC-H", "ssb"} {
		b, err := knives.BenchmarkByName(name, 1)
		if err != nil {
			t.Errorf("knives.BenchmarkByName(%q): %v", name, err)
			continue
		}
		if b == nil || len(b.Tables) == 0 {
			t.Errorf("knives.BenchmarkByName(%q) returned empty benchmark", name)
		}
	}
	if _, err := knives.BenchmarkByName("mystery", 1); err == nil {
		t.Error("BenchmarkByName accepted an unknown benchmark")
	}
}

func TestRunListSucceeds(t *testing.T) {
	if err := runList(); err != nil {
		t.Fatal(err)
	}
}

func TestRunOptimizeRejectsBadFlags(t *testing.T) {
	if err := runOptimize([]string{"-model", "quantum"}); err == nil {
		t.Error("accepted unknown cost model")
	}
	if err := runOptimize([]string{"-benchmark", "mystery"}); err == nil {
		t.Error("accepted unknown benchmark")
	}
	if err := runOptimize([]string{"-algorithm", "Nope", "-table", "region", "-sf", "0.01"}); err == nil {
		t.Error("accepted unknown algorithm")
	}
}

func TestRunOptimizeSmallTable(t *testing.T) {
	// Region at SF 0.01 is tiny; exercises the full code path quickly.
	if err := runOptimize([]string{"-table", "region", "-sf", "0.01", "-algorithm", "HillClimb"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunExperimentValidation(t *testing.T) {
	if err := runExperiment(nil); err == nil {
		t.Error("accepted missing experiment id")
	}
	if err := runExperiment([]string{"fig99"}); err == nil {
		t.Error("accepted unknown experiment id")
	}
}

// The process must fail loudly on bad input: unknown experiment IDs, table
// names, and algorithms exit 1; usage errors exit 2. run() is main() minus
// os.Exit, so these pins cover the real exit paths.
func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		args []string
		want int
	}{
		{[]string{"experiment", "fig99"}, 1},
		// A missing id is malformed input, classified with the other usage
		// errors.
		{[]string{"experiment"}, 2},
		{[]string{"optimize", "-table", "nonexistent", "-sf", "0.01"}, 1},
		{[]string{"optimize", "-algorithm", "Nope", "-sf", "0.01"}, 1},
		{[]string{"advise", "-benchmark", "mystery"}, 1},
		{[]string{"slice"}, 2},
		{nil, 2},
		{[]string{"help"}, 0},
		{[]string{"list"}, 0},
		// Flag-parse failures must flow back through run(), not os.Exit
		// from inside fs.Parse: the FlagSets use ContinueOnError.
		{[]string{"optimize", "-nosuchflag"}, 2},
		{[]string{"advise", "-sf", "potato"}, 2},
		{[]string{"experiment", "tab4", "-nosuchflag"}, 2},
		{[]string{"optimize", "-h"}, 0},
		{[]string{"experiment", "-h"}, 0},
		{[]string{"experiment", "-reps", "2"}, 2},
		// Flags-then-id order works: the id is taken from the remaining
		// args.
		{[]string{"experiment", "-reps", "1", "tab4"}, 0},
		// Trailing junk is rejected, not silently dropped.
		{[]string{"experiment", "tab4", "junk"}, 2},
		{[]string{"experiment", "-reps", "1", "tab4", "junk"}, 2},
	}
	for _, tc := range cases {
		if got := run(tc.args); got != tc.want {
			t.Errorf("run(%v) = %d, want %d", tc.args, got, tc.want)
		}
	}
}

func TestRunOptimizeRejectsUnknownTable(t *testing.T) {
	if err := runOptimize([]string{"-table", "nonexistent", "-sf", "0.01", "-algorithm", "HillClimb"}); err == nil {
		t.Error("accepted unknown table name")
	}
}

func TestRunAdvise(t *testing.T) {
	if err := runAdvise([]string{"-sf", "0.01"}); err != nil {
		t.Fatal(err)
	}
	if err := runAdvise([]string{"-benchmark", "mystery"}); err == nil {
		t.Error("accepted unknown benchmark")
	}
}

func TestRunReplaySmallTable(t *testing.T) {
	// Region at SF 0.01 with a capped sample: the full advise-materialize-
	// replay-verify path, exact or the command errors (exit 1).
	if err := runReplay([]string{"-table", "region", "-sf", "0.01", "-rows", "500"}); err != nil {
		t.Fatal(err)
	}
	// A named algorithm, the MM model, and the file backend all flow
	// through the same path.
	if err := runReplay([]string{"-table", "region", "-sf", "0.01", "-rows", "500",
		"-algorithm", "HillClimb", "-model", "mm", "-backend", "file"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunReplayRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-model", "quantum"},
		{"-benchmark", "mystery"},
		{"-algorithm", "Nope", "-table", "region", "-sf", "0.01"},
		{"-table", "nonexistent", "-sf", "0.01"},
		{"-backend", "s3", "-table", "region", "-sf", "0.01"},
		{"-rows", "-4", "-table", "region", "-sf", "0.01"},
	}
	for _, args := range cases {
		if err := runReplay(args); err == nil {
			t.Errorf("runReplay(%v) accepted bad input", args)
		}
	}
	if got := run([]string{"replay", "-nosuchflag"}); got != 2 {
		t.Errorf("replay usage error exited %d, want 2", got)
	}
	if got := run([]string{"replay", "-table", "nonexistent", "-sf", "0.01"}); got != 1 {
		t.Errorf("replay unknown table exited %d, want 1", got)
	}
}

func TestRunMigrateSmallTable(t *testing.T) {
	// Partsupp at SF 0.01: the full advise-drift-plan-execute-verify path.
	// The command errors (exit 1) on any measured/predicted divergence, so
	// a nil error IS the zero-tolerance assertion.
	if err := runMigrate([]string{"-table", "partsupp", "-sf", "0.01", "-rows", "500",
		"-drift", "0.5"}); err != nil {
		t.Fatal(err)
	}
	// A named algorithm, the MM model, and the file backend all flow
	// through the same path.
	if err := runMigrate([]string{"-table", "partsupp", "-sf", "0.01", "-rows", "500",
		"-algorithm", "HillClimb", "-model", "mm", "-backend", "file", "-drift", "0.5"}); err != nil {
		t.Fatal(err)
	}
	// Zero drift: identical layouts, a refused identity plan, success.
	if err := runMigrate([]string{"-table", "region", "-sf", "0.01", "-rows", "500",
		"-drift", "0"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMigrateRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-model", "quantum"},
		{"-benchmark", "mystery"},
		{"-algorithm", "Nope", "-table", "region", "-sf", "0.01"},
		{"-table", "nonexistent", "-sf", "0.01"},
		{"-backend", "s3", "-table", "region", "-sf", "0.01"},
		{"-rows", "-4", "-table", "region", "-sf", "0.01"},
		{"-drift", "1.5", "-table", "region", "-sf", "0.01"},
		{"-drift", "-0.1", "-table", "region", "-sf", "0.01"},
	}
	for _, args := range cases {
		if err := runMigrate(args); err == nil {
			t.Errorf("runMigrate(%v) accepted bad input", args)
		}
	}
	if got := run([]string{"migrate", "-nosuchflag"}); got != 2 {
		t.Errorf("migrate usage error exited %d, want 2", got)
	}
	if got := run([]string{"migrate", "-table", "nonexistent", "-sf", "0.01"}); got != 1 {
		t.Errorf("migrate unknown table exited %d, want 1", got)
	}
}

func TestRunExperimentCheapID(t *testing.T) {
	// tab4 touches only Lineitem prefixes with HillClimb: cheap enough for
	// a smoke test of the full experiment path.
	if err := runExperiment([]string{"tab4", "-reps", "1"}); err != nil {
		t.Fatal(err)
	}
}
