// Command knives runs the paper's vertical partitioning algorithms and
// regenerates its evaluation artifacts.
//
// Usage:
//
//	knives list
//	    List the algorithms and the reproducible experiments.
//
//	knives optimize [-benchmark tpch|ssb] [-sf N] [-table NAME|all]
//	                [-algorithm NAME|all] [-buffer MB] [-model hdd|mm]
//	    Compute layouts and report costs, candidates, and opt time.
//
//	knives advise [-benchmark tpch|ssb] [-sf N]
//	    Recommend the cheapest layout per table across all heuristics.
//
//	knives experiment ID|all [-reps N]
//	    Regenerate a paper figure/table (fig1..fig14, tab3..tab7).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"knives"
	"knives/internal/experiments"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = runList()
	case "optimize":
		err = runOptimize(os.Args[2:])
	case "advise":
		err = runAdvise(os.Args[2:])
	case "experiment":
		err = runExperiment(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "knives: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "knives: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: knives <command> [flags]

commands:
  list                      list algorithms and experiments
  optimize [flags]          compute layouts for one or all tables
  advise [flags]            recommend the best layout per table
  experiment <id|all>       regenerate a paper figure or table

run "knives <command> -h" for command flags`)
}

func pickBenchmark(name string, sf float64) (*knives.Benchmark, error) {
	switch strings.ToLower(name) {
	case "tpch", "tpc-h":
		return knives.TPCH(sf), nil
	case "ssb":
		return knives.SSB(sf), nil
	default:
		return nil, fmt.Errorf("unknown benchmark %q (tpch or ssb)", name)
	}
}

func runList() error {
	fmt.Println("algorithms:")
	for _, a := range knives.Algorithms() {
		fmt.Printf("  %s\n", a.Name())
	}
	fmt.Println("\nexperiments:")
	for _, e := range knives.Experiments() {
		fmt.Printf("  %-6s %s\n", e.ID, e.Description)
	}
	return nil
}

func runOptimize(args []string) error {
	fs := flag.NewFlagSet("optimize", flag.ExitOnError)
	benchName := fs.String("benchmark", "tpch", "benchmark: tpch or ssb")
	sf := fs.Float64("sf", 10, "scale factor")
	table := fs.String("table", "all", "table name or all")
	algoName := fs.String("algorithm", "all", "algorithm name or all")
	bufferMB := fs.Float64("buffer", 8, "I/O buffer size in MB")
	modelName := fs.String("model", "hdd", "cost model: hdd or mm")
	if err := fs.Parse(args); err != nil {
		return err
	}

	bench, err := pickBenchmark(*benchName, *sf)
	if err != nil {
		return err
	}
	var model knives.CostModel
	switch strings.ToLower(*modelName) {
	case "hdd":
		disk := knives.DefaultDisk()
		disk.BufferSize = int64(*bufferMB * float64(1<<20))
		model = knives.NewHDDModel(disk)
	case "mm":
		model = knives.NewMMModel()
	default:
		return fmt.Errorf("unknown cost model %q (hdd or mm)", *modelName)
	}

	var algos []knives.Algorithm
	if *algoName == "all" {
		algos = knives.Algorithms()
	} else {
		a, err := knives.AlgorithmByName(*algoName)
		if err != nil {
			return err
		}
		algos = []knives.Algorithm{a}
	}

	for _, tw := range bench.TableWorkloads() {
		if *table != "all" && tw.Table.Name != *table {
			continue
		}
		fmt.Printf("table %s (%d rows, %d attrs, %d queries)\n",
			tw.Table.Name, tw.Table.Rows, tw.Table.NumAttrs(), len(tw.Queries))
		rowC := knives.WorkloadCost(model, tw, knives.RowLayout(tw.Table))
		colC := knives.WorkloadCost(model, tw, knives.ColumnLayout(tw.Table))
		fmt.Printf("  %-10s cost=%12.4f\n", "Row", rowC)
		fmt.Printf("  %-10s cost=%12.4f\n", "Column", colC)
		for _, a := range algos {
			res, err := a.Partition(tw, model)
			if err != nil {
				fmt.Printf("  %-10s error: %v\n", a.Name(), err)
				continue
			}
			fmt.Printf("  %-10s cost=%12.4f  candidates=%-9d opt=%v\n    %s\n",
				a.Name(), res.Cost, res.Stats.Candidates, res.Stats.Duration, res.Partitioning)
		}
		fmt.Println()
	}
	return nil
}

func runAdvise(args []string) error {
	fs := flag.NewFlagSet("advise", flag.ExitOnError)
	benchName := fs.String("benchmark", "tpch", "benchmark: tpch or ssb")
	sf := fs.Float64("sf", 10, "scale factor")
	if err := fs.Parse(args); err != nil {
		return err
	}
	bench, err := pickBenchmark(*benchName, *sf)
	if err != nil {
		return err
	}
	advice, err := knives.Advise(bench, knives.NewHDDModel(knives.DefaultDisk()))
	if err != nil {
		return err
	}
	for _, a := range advice {
		fmt.Printf("%-10s use %-9s cost=%10.3f  vs row %+.1f%%  vs column %+.1f%%\n",
			a.Table.Name, a.Algorithm, a.Cost,
			a.ImprovementOverRow()*100, a.ImprovementOverColumn()*100)
		fmt.Printf("           %s\n", a.Layout)
	}
	return nil
}

func runExperiment(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("experiment needs an id (or all); run \"knives list\"")
	}
	id := args[0]
	fs := flag.NewFlagSet("experiment", flag.ExitOnError)
	reps := fs.Int("reps", 3, "repetitions for timing experiments")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	suite := experiments.NewSuite()
	suite.Reps = *reps

	run := func(e knives.Experiment) error {
		rep, err := e.Run(suite)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Println(rep)
		return nil
	}
	if id == "all" {
		for _, e := range experiments.All() {
			if err := run(e); err != nil {
				return err
			}
		}
		return nil
	}
	e, err := experiments.ByID(id)
	if err != nil {
		return err
	}
	return run(e)
}
