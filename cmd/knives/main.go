// Command knives runs the paper's vertical partitioning algorithms and
// regenerates its evaluation artifacts.
//
// Usage:
//
//	knives list
//	    List the algorithms and the reproducible experiments.
//
//	knives optimize [-benchmark tpch|ssb] [-sf N] [-table NAME|all]
//	                [-algorithm NAME|all] [-model hdd|ssd|mm] [device flags]
//	    Compute layouts and report costs, candidates, and opt time.
//
//	knives advise [-benchmark tpch|ssb] [-sf N]
//	              [-server URL] [-retries N] [-retry-delay D]
//	    Recommend the cheapest layout per table across all heuristics —
//	    locally, or via a running knivesd (-server) with retrying requests
//	    that back off on 429/503 from a daemon under load.
//
//	knives observe -server URL [-benchmark tpch|ssb] [-sf N] [-table NAME|all]
//	               [-rounds N] [-batch N] [-retries N] [-retry-delay D]
//	    Stream the benchmark's workload to a running knivesd as BATCHED
//	    observations — many tables x many queries per POST /observe — and
//	    report each table's drift verdict plus the achieved observations/sec.
//	    Advise the benchmark on the daemon first (knives advise -server ...,
//	    or run knivesd with -prewarm) so the tables are registered.
//
//	knives replay [-benchmark tpch|ssb] [-sf N] [-table NAME|all]
//	              [-algorithm advisor|NAME|Row|Column] [-model hdd|ssd|mm]
//	              [device flags] [-rows N] [-workers N] [-seed N]
//	              [-backend mem|file] [-dir PATH]
//	    Materialize advised layouts through the storage engine, replay the
//	    workload, and verify measured I/O equals the cost model exactly.
//
//	knives exec [-benchmark tpch|ssb] [-sf N] [-table NAME|all]
//	            [-algorithm advisor|NAME|Row|Column] [-model hdd|ssd|mm]
//	            [device flags] [-rows N] [-workers N] [-seed N]
//	            [-select-table NAME -select-column COL [-select-bound N]]
//	            [-server URL] [-retries N] [-retry-delay D]
//	    Run every query as a streaming σ/π/⋈ operator pipeline over an
//	    epoch snapshot of the advised layout, print each plan with its
//	    per-operator accounting, and verify the measured cost equals the
//	    cost model bit for bit. -select-* pushes a σ(column < bound) into
//	    one table's scans. With -server, a running knivesd executes via
//	    POST /query instead.
//
//	knives migrate [-benchmark tpch|ssb] [-sf N] [-table NAME|all]
//	               [-algorithm advisor|NAME] [-model hdd|ssd|mm] [device flags]
//	               [-drift F] [-drift-seed N] [-window N]
//	               [-rows N] [-workers N] [-seed N] [-backend mem|file] [-dir PATH]
//	    Plan and execute the drift-triggered re-layout of each table: the
//	    layout advised for the original workload is materialized, the
//	    workload drifts by fraction F, the layout advised for the drifted
//	    mix becomes the target, and the store is repartitioned in place —
//	    with the measured migration cost checked against the cost model
//	    and the migrated store verified against a fresh materialization,
//	    both at zero tolerance (non-zero exit on any divergence).
//
//	knives experiment ID|all [-reps N]
//	    Regenerate a paper figure/table (fig1..fig14, tab3..tab7).
//
// Every -model flag resolves a device preset (hdd, ssd, mm, plus aliases
// like disk, flash, ram), and the shared device flags override individual
// hardware parameters of that preset: -buffer MB, -block KB, -seek-ms,
// -read-mbps, -write-mbps, -cache-line BYTES, -miss-ns (0 = keep the
// preset's value).
//
// advise, observe, replay, exec, and migrate accept -verbose: a per-step
// timing breakdown (benchmark build, per-table searches, replays, server
// round-trips) printed to stderr, leaving stdout parseable.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"knives"
	"knives/internal/advisor"
	"knives/internal/devflag"
	"knives/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run dispatches a command line and returns the process exit code: 0 on
// success, 1 on command failure (including unknown experiment IDs, table
// names, algorithms...), 2 on usage errors. It exists so that tests can pin
// exit codes without spawning the binary; the subcommand FlagSets therefore
// use ContinueOnError — ExitOnError would os.Exit from inside fs.Parse and
// bypass this return path.
func run(args []string) int {
	if len(args) < 1 {
		usage()
		return 2
	}
	var err error
	switch args[0] {
	case "list":
		err = runList()
	case "optimize":
		err = runOptimize(args[1:])
	case "advise":
		err = runAdvise(args[1:])
	case "observe":
		err = runObserve(args[1:])
	case "replay":
		err = runReplay(args[1:])
	case "exec":
		err = runExec(args[1:])
	case "migrate":
		err = runMigrate(args[1:])
	case "experiment":
		err = runExperiment(args[1:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "knives: unknown command %q\n", args[0])
		usage()
		return 2
	}
	var ue usageError
	switch {
	case err == nil:
		return 0
	case errors.Is(err, flag.ErrHelp):
		return 0
	case errors.As(err, &ue):
		// fs.Parse already printed flag errors (with usage); don't repeat.
		if !ue.reported {
			fmt.Fprintf(os.Stderr, "knives: %v\n", err)
		}
		return 2
	default:
		fmt.Fprintf(os.Stderr, "knives: %v\n", err)
		return 1
	}
}

// usageError marks bad command-line input (exit code 2, like the top-level
// dispatcher's own usage failures). reported means the flag package
// already printed the message to stderr.
type usageError struct {
	err      error
	reported bool
}

func (u usageError) Error() string { return u.err.Error() }
func (u usageError) Unwrap() error { return u.err }

// parseFlags runs fs over args, classifying failures: -h propagates
// flag.ErrHelp (exit 0), anything else is a usageError (exit 2) that
// ContinueOnError has already reported to stderr.
func parseFlags(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return usageError{err: err, reported: true}
	}
	return nil
}

// vtimer prints a per-step timing breakdown to stderr under -verbose: each
// step reports the time since the previous one, total the whole command.
// Timings go to stderr so piped stdout output stays parseable.
type vtimer struct {
	on          bool
	start, last time.Time
}

func newVTimer(on bool) *vtimer {
	now := time.Now()
	return &vtimer{on: on, start: now, last: now}
}

func (v *vtimer) step(name string) {
	if !v.on {
		return
	}
	now := time.Now()
	fmt.Fprintf(os.Stderr, "timing: %-32s %v\n", name, now.Sub(v.last).Round(10*time.Microsecond))
	v.last = now
}

func (v *vtimer) total() {
	if !v.on {
		return
	}
	fmt.Fprintf(os.Stderr, "timing: %-32s %v\n", "total", time.Since(v.start).Round(10*time.Microsecond))
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: knives <command> [flags]

commands:
  list                      list algorithms and experiments
  optimize [flags]          compute layouts for one or all tables
  advise [flags]            recommend the best layout per table
  observe [flags]           stream batched observations to a running knivesd
  replay [flags]            execute advised layouts and verify the cost model
  exec [flags]              run the workload as σ/π/⋈ operator pipelines (optionally via knivesd)
  migrate [flags]           plan + execute a drift-triggered re-layout and verify it
  experiment <id|all>       regenerate a paper figure or table

run "knives <command> -h" for command flags`)
}

func runList() error {
	fmt.Println("algorithms:")
	for _, a := range knives.Algorithms() {
		fmt.Printf("  %s\n", a.Name())
	}
	fmt.Println("\nexperiments:")
	for _, e := range knives.Experiments() {
		fmt.Printf("  %-6s %s\n", e.ID, e.Description)
	}
	return nil
}

func runOptimize(args []string) error {
	fs := flag.NewFlagSet("optimize", flag.ContinueOnError)
	benchName := fs.String("benchmark", "tpch", "benchmark: tpch or ssb")
	sf := fs.Float64("sf", 10, "scale factor (0 = default 10)")
	table := fs.String("table", "all", "table name or all")
	algoName := fs.String("algorithm", "all", "algorithm name or all")
	modelName := fs.String("model", "hdd", "cost model: hdd, ssd, or mm")
	devf := devflag.Register(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	bench, err := knives.BenchmarkByName(*benchName, *sf)
	if err != nil {
		return err
	}
	override, err := devf()
	if err != nil {
		return usageError{err: err}
	}
	model, err := knives.CostModelByName(*modelName, override)
	if err != nil {
		return err
	}

	var algos []knives.Algorithm
	if *algoName == "all" {
		algos = knives.Algorithms()
	} else {
		a, err := knives.AlgorithmByName(*algoName)
		if err != nil {
			return err
		}
		algos = []knives.Algorithm{a}
	}

	matched := false
	for _, tw := range bench.TableWorkloads() {
		if *table != "all" && tw.Table.Name != *table {
			continue
		}
		matched = true
		fmt.Printf("table %s (%d rows, %d attrs, %d queries)\n",
			tw.Table.Name, tw.Table.Rows, tw.Table.NumAttrs(), len(tw.Queries))
		rowC := knives.WorkloadCost(model, tw, knives.RowLayout(tw.Table))
		colC := knives.WorkloadCost(model, tw, knives.ColumnLayout(tw.Table))
		fmt.Printf("  %-10s cost=%12.4f\n", "Row", rowC)
		fmt.Printf("  %-10s cost=%12.4f\n", "Column", colC)
		for _, a := range algos {
			res, err := a.Partition(tw, model)
			if err != nil {
				fmt.Printf("  %-10s error: %v\n", a.Name(), err)
				continue
			}
			fmt.Printf("  %-10s cost=%12.4f  candidates=%-9d opt=%v\n    %s\n",
				a.Name(), res.Cost, res.Stats.Candidates, res.Stats.Duration, res.Partitioning)
		}
		fmt.Println()
	}
	if !matched {
		return fmt.Errorf("benchmark %s has no table %q", bench.Name, *table)
	}
	return nil
}

func runAdvise(args []string) error {
	fs := flag.NewFlagSet("advise", flag.ContinueOnError)
	benchName := fs.String("benchmark", "tpch", "benchmark: tpch or ssb")
	sf := fs.Float64("sf", 10, "scale factor (0 = default 10)")
	server := fs.String("server", "", "ask a running knivesd at this base URL instead of searching locally")
	retries := fs.Int("retries", 3, "total attempts per request in -server mode (429/503/transport errors retry)")
	retryDelay := fs.Duration("retry-delay", 100*time.Millisecond, "base backoff between -server retries (doubles per attempt)")
	verbose := fs.Bool("verbose", false, "print a per-step timing breakdown to stderr")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	vt := newVTimer(*verbose)
	defer vt.total()
	if *server != "" {
		if *retries < 1 {
			return usageError{err: fmt.Errorf("-retries must be >= 1 (got %d)", *retries)}
		}
		err := adviseViaServer(*server, *benchName, *sf, *retries, *retryDelay)
		vt.step("advise via server")
		return err
	}
	bench, err := knives.BenchmarkByName(*benchName, *sf)
	if err != nil {
		return err
	}
	vt.step("build benchmark")
	advice, err := knives.Advise(bench, knives.NewHDDModel(knives.DefaultDisk()))
	if err != nil {
		return err
	}
	vt.step("portfolio search")
	for _, a := range advice {
		fmt.Printf("%-10s use %-9s cost=%10.3f  vs row %+.1f%%  vs column %+.1f%%\n",
			a.Table.Name, a.Algorithm, a.Cost,
			a.ImprovementOverRow()*100, a.ImprovementOverColumn()*100)
		fmt.Printf("           %s\n", a.Layout)
	}
	return nil
}

// adviseViaServer asks a running knivesd for the benchmark's advice instead
// of searching locally — the daemon's fingerprint cache answers a prewarmed
// benchmark without a single search, and the retry policy rides out 429
// shedding and 503 deadlines from a daemon under load.
func adviseViaServer(baseURL, benchName string, sf float64, retries int, retryDelay time.Duration) error {
	client := advisor.NewClient(baseURL)
	client.Retry = advisor.RetryPolicy{MaxAttempts: retries, BaseDelay: retryDelay}
	resp, err := client.Advise(context.Background(), advisor.AdviseRequest{Benchmark: benchName, ScaleFactor: sf})
	if err != nil {
		return err
	}
	for _, a := range resp.Advice {
		from := "searched"
		if a.Cached {
			from = "cached"
		}
		fmt.Printf("%-10s use %-9s cost=%10.3f  vs row %+.1f%%  vs column %+.1f%%  (%s)\n",
			a.Table, a.Algorithm, a.Cost,
			a.ImprovementOverRow*100, a.ImprovementOverColumn*100, from)
		fmt.Printf("           %v\n", a.Layout)
	}
	return nil
}

// runObserve streams a benchmark's workload to a running knivesd as batched
// observations: queries accumulate in an ObserveBuffer and ship as one
// multi-table POST /observe per -batch queries, exercising the daemon's
// sharded group-committing ingest stage instead of one request per query.
func runObserve(args []string) error {
	fs := flag.NewFlagSet("observe", flag.ContinueOnError)
	server := fs.String("server", "", "base URL of a running knivesd (required)")
	benchName := fs.String("benchmark", "tpch", "benchmark: tpch or ssb")
	sf := fs.Float64("sf", 10, "scale factor (0 = default 10)")
	table := fs.String("table", "all", "table name or all")
	rounds := fs.Int("rounds", 1, "times the workload is streamed")
	batch := fs.Int("batch", advisor.DefaultObserveFlushAt, "queries per batched /observe request")
	retries := fs.Int("retries", 3, "total attempts per request (429/503/transport errors retry)")
	retryDelay := fs.Duration("retry-delay", 100*time.Millisecond, "base backoff between retries (doubles per attempt)")
	verbose := fs.Bool("verbose", false, "print a per-step timing breakdown to stderr")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *server == "" {
		return usageError{err: fmt.Errorf("observe needs -server URL (a running knivesd; advise the benchmark there first)")}
	}
	if *rounds < 1 {
		return usageError{err: fmt.Errorf("-rounds must be >= 1 (got %d)", *rounds)}
	}
	if *batch < 1 {
		return usageError{err: fmt.Errorf("-batch must be >= 1 (got %d)", *batch)}
	}
	bench, err := knives.BenchmarkByName(*benchName, *sf)
	if err != nil {
		return err
	}
	vt := newVTimer(*verbose)
	defer vt.total()
	vt.step("build benchmark")
	client := advisor.NewClient(*server)
	client.Retry = advisor.RetryPolicy{MaxAttempts: *retries, BaseDelay: *retryDelay}
	buf := &advisor.ObserveBuffer{Client: client, FlushAt: *batch}

	ctx := context.Background()
	last := make(map[string]advisor.TableObserveVerdict)
	collect := func(vs []advisor.TableObserveVerdict) error {
		for _, v := range vs {
			if v.Error != "" {
				return fmt.Errorf("observe %s: %s (status %d)", v.Table, v.Error, v.Status)
			}
			last[v.Table] = v
		}
		return nil
	}
	matched := false
	total := 0
	start := time.Now()
	for r := 0; r < *rounds; r++ {
		for _, tw := range bench.TableWorkloads() {
			if *table != "all" && tw.Table.Name != *table {
				continue
			}
			matched = true
			for _, q := range tw.Queries {
				vs, err := buf.Add(ctx, tw.Table.Name, advisor.ObservedQry{
					Attrs:  tw.Table.AttrNames(q.Attrs),
					Weight: q.Weight,
				})
				if err != nil {
					return err
				}
				total++
				if err := collect(vs); err != nil {
					return err
				}
			}
		}
	}
	if !matched {
		return fmt.Errorf("benchmark %s has no table %q", bench.Name, *table)
	}
	vt.step("stream observations")
	vs, err := buf.Flush(ctx)
	if err != nil {
		return err
	}
	if err := collect(vs); err != nil {
		return err
	}
	vt.step("final flush")
	elapsed := time.Since(start)

	names := make([]string, 0, len(last))
	for n := range last {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		v := last[n]
		state := "stable"
		if v.Drift.Drifted {
			state = "drifted"
		}
		if v.Drift.Recomputed {
			state = "recomputed"
		}
		fmt.Printf("%-10s %-10s ratio=%7.3f threshold=%.3f observed=%d recomputes=%d\n",
			n, state, v.Drift.Ratio, v.Drift.Threshold, v.Drift.Observed, v.Drift.Recomputes)
	}
	secs := elapsed.Seconds()
	if secs <= 0 {
		secs = 1e-9
	}
	fmt.Printf("observed %d queries in %v (%.0f obs/sec)\n",
		total, elapsed.Round(time.Millisecond), float64(total)/secs)
	return nil
}

func runReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	benchName := fs.String("benchmark", "tpch", "benchmark: tpch or ssb")
	sf := fs.Float64("sf", 10, "scale factor (0 = default 10)")
	table := fs.String("table", "all", "table name or all")
	algoName := fs.String("algorithm", "advisor",
		"layout source: an algorithm name, Row, Column, or advisor (portfolio winner)")
	modelName := fs.String("model", "hdd", "cost model: hdd, ssd, or mm")
	devf := devflag.Register(fs)
	rows := fs.Int64("rows", 0, "max rows materialized per table (0 = default)")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS); never changes the numbers")
	seed := fs.Int64("seed", 1, "data generator seed")
	backend := fs.String("backend", "mem", "partition page store: mem or file")
	dir := fs.String("dir", "", "directory for -backend file (default: a fresh temp dir)")
	verbose := fs.Bool("verbose", false, "print a per-step timing breakdown to stderr")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	vt := newVTimer(*verbose)
	defer vt.total()

	bench, err := knives.BenchmarkByName(*benchName, *sf)
	if err != nil {
		return err
	}
	if *rows < 0 {
		// Reject before any portfolio search runs, not after.
		return usageError{err: fmt.Errorf("-rows %d must be non-negative", *rows)}
	}
	override, err := devf()
	if err != nil {
		return usageError{err: err}
	}
	model, err := knives.CostModelByName(*modelName, override)
	if err != nil {
		return err
	}
	cfg := knives.ReplayConfig{
		Model:   *modelName,
		Disk:    override,
		MaxRows: *rows,
		Workers: *workers,
		Seed:    *seed,
		Backend: *backend,
		Dir:     *dir,
	}
	if *backend == "file" && *dir == "" {
		tmp, err := os.MkdirTemp("", "knives-replay-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		cfg.Dir = tmp
	}

	// The advisor path replays each table's portfolio winner; a named
	// algorithm (or Row/Column) replays that layout family everywhere.
	// Advice is computed per matched table, so -table never searches the
	// rest of the benchmark.
	advisorMode := strings.EqualFold(*algoName, "advisor")
	matched := false
	allExact := true
	for _, tw := range bench.TableWorkloads() {
		if *table != "all" && tw.Table.Name != *table {
			continue
		}
		matched = true
		var rep *knives.TableReplay
		if advisorMode {
			advice, err := knives.AdviseTable(tw, model)
			if err != nil {
				return err
			}
			vt.step("advise " + tw.Table.Name)
			rep, err = knives.ReplayAdvice(tw, advice, cfg)
			if err != nil {
				return err
			}
		} else {
			rep, err = knives.ReplayAlgorithm(tw, *algoName, cfg)
			if err != nil {
				return err
			}
		}
		vt.step("replay " + tw.Table.Name)
		fmt.Print(rep)
		fmt.Println()
		if !rep.Exact() {
			allExact = false
		}
	}
	if !matched {
		return fmt.Errorf("benchmark %s has no table %q", bench.Name, *table)
	}
	if !allExact {
		return fmt.Errorf("measured execution diverged from the cost model (see deltas above)")
	}
	return nil
}

// runExec runs the workload as streaming σ/π/⋈ operator pipelines over
// epoch snapshots — locally, or via a running knivesd's POST /query — and
// verifies the per-operator-decomposed measured cost equals the cost model
// bit for bit.
func runExec(args []string) error {
	fs := flag.NewFlagSet("exec", flag.ContinueOnError)
	benchName := fs.String("benchmark", "tpch", "benchmark: tpch or ssb")
	sf := fs.Float64("sf", 10, "scale factor (0 = default 10)")
	table := fs.String("table", "all", "table name or all")
	algoName := fs.String("algorithm", "advisor",
		"layout source: an algorithm name, Row, Column, or advisor (portfolio winner)")
	modelName := fs.String("model", "hdd", "cost model: hdd, ssd, or mm")
	devf := devflag.Register(fs)
	rows := fs.Int64("rows", 0, "max rows materialized per table (0 = default)")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS); never changes the numbers")
	seed := fs.Int64("seed", 1, "data generator seed")
	execMode := fs.String("exec", "row", "pipeline execution mode: row (oracle) or vector (batch-at-a-time); never changes the numbers")
	batch := fs.Int("batch", 0, "vector-mode rows per batch (0 = default)")
	execWorkers := fs.Int("exec-workers", 0, "vector-mode morsel-parallel leaf scans per pipeline (<= 1 = synchronous)")
	selTable := fs.String("select-table", "", "table whose pipelines gain a pushed-down selection")
	selColumn := fs.String("select-column", "", "u32 column (int or date) the selection filters on")
	selBound := fs.Uint64("select-bound", 0, "keep rows with column value strictly below this bound")
	server := fs.String("server", "", "execute via a running knivesd at this base URL (POST /query)")
	retries := fs.Int("retries", 3, "total attempts per request in -server mode (429/503/transport errors retry)")
	retryDelay := fs.Duration("retry-delay", 100*time.Millisecond, "base backoff between -server retries (doubles per attempt)")
	verbose := fs.Bool("verbose", false, "print a per-step timing breakdown to stderr")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	vt := newVTimer(*verbose)
	defer vt.total()
	if *rows < 0 {
		return usageError{err: fmt.Errorf("-rows %d must be non-negative", *rows)}
	}
	if (*selTable == "") != (*selColumn == "") {
		return usageError{err: fmt.Errorf("-select-table and -select-column go together")}
	}
	if *selBound > 1<<32-1 {
		return usageError{err: fmt.Errorf("-select-bound %d exceeds uint32", *selBound)}
	}

	if *server != "" {
		if *retries < 1 {
			return usageError{err: fmt.Errorf("-retries must be >= 1 (got %d)", *retries)}
		}
		client := advisor.NewClient(*server)
		client.Retry = advisor.RetryPolicy{MaxAttempts: *retries, BaseDelay: *retryDelay}
		req := advisor.QueryRequest{
			Benchmark:   *benchName,
			ScaleFactor: *sf,
			MaxRows:     *rows,
			Seed:        *seed,
			Workers:     *workers,
			Exec:        *execMode,
			BatchSize:   *batch,
			ExecWorkers: *execWorkers,
			Model:       &advisor.ModelSpec{Name: *modelName},
		}
		if *selTable != "" {
			req.Selection = &advisor.SelectionSpec{Table: *selTable, Column: *selColumn, Bound: uint32(*selBound)}
		}
		resp, err := client.Query(context.Background(), req)
		if err != nil {
			return err
		}
		vt.step("query via server")
		allExact := true
		for _, rep := range resp.Reports {
			if *table != "all" && rep.Table != *table {
				continue
			}
			from := "executed"
			if rep.Cached {
				from = "cached"
			}
			fmt.Printf("exec %s: algorithm=%s model=%s rows=%d/%d (%s)\n",
				rep.Table, rep.Algorithm, rep.Model, rep.RowsReplayed, rep.RowsFull, from)
			if rep.Selection != "" {
				fmt.Printf("  selection: %s\n", rep.Selection)
			}
			for _, p := range rep.Pipelines {
				fmt.Printf("  %-8s %s -> %d rows  measured=%.6e predicted=%.6e\n",
					p.ID, p.Plan, p.ResultRows, p.MeasuredSeconds, p.PredictedSeconds)
			}
			fmt.Printf("  total: measured=%.9e predicted=%.9e exact=%v\n",
				rep.MeasuredSeconds, rep.PredictedSeconds, rep.Exact)
			fmt.Println()
			allExact = allExact && rep.Exact
		}
		if !allExact {
			return fmt.Errorf("measured execution diverged from the cost model (see deltas above)")
		}
		return nil
	}

	bench, err := knives.BenchmarkByName(*benchName, *sf)
	if err != nil {
		return err
	}
	override, err := devf()
	if err != nil {
		return usageError{err: err}
	}
	model, err := knives.CostModelByName(*modelName, override)
	if err != nil {
		return err
	}
	cfg := knives.ReplayConfig{
		Model:       *modelName,
		Disk:        override,
		MaxRows:     *rows,
		Workers:     *workers,
		Seed:        *seed,
		ExecMode:    *execMode,
		BatchSize:   *batch,
		ExecWorkers: *execWorkers,
	}

	advisorMode := strings.EqualFold(*algoName, "advisor")
	matched := false
	allExact := true
	for _, tw := range bench.TableWorkloads() {
		if *table != "all" && tw.Table.Name != *table {
			continue
		}
		matched = true
		var sel *knives.Selection
		if *selTable == tw.Table.Name && *selTable != "" {
			attr := tw.Table.AttrIndex(*selColumn)
			if attr < 0 {
				return fmt.Errorf("table %s has no column %q", tw.Table.Name, *selColumn)
			}
			sel = &knives.Selection{Attr: attr, Bound: uint32(*selBound)}
		}
		var rep *knives.OperatorReplay
		if advisorMode {
			advice, err := knives.AdviseTable(tw, model)
			if err != nil {
				return err
			}
			vt.step("advise " + tw.Table.Name)
			rep, err = knives.ExecuteAdvice(tw, advice, cfg, sel)
			if err != nil {
				return err
			}
		} else {
			rep, err = knives.ExecuteAlgorithm(tw, *algoName, cfg, sel)
			if err != nil {
				return err
			}
		}
		vt.step("execute " + tw.Table.Name)
		fmt.Print(rep)
		fmt.Println()
		allExact = allExact && rep.Exact()
	}
	if !matched {
		return fmt.Errorf("benchmark %s has no table %q", bench.Name, *table)
	}
	if !allExact {
		return fmt.Errorf("measured execution diverged from the cost model (see deltas above)")
	}
	return nil
}

func runMigrate(args []string) error {
	fs := flag.NewFlagSet("migrate", flag.ContinueOnError)
	benchName := fs.String("benchmark", "tpch", "benchmark: tpch or ssb")
	sf := fs.Float64("sf", 10, "scale factor (0 = default 10)")
	table := fs.String("table", "all", "table name or all")
	algoName := fs.String("algorithm", "advisor",
		"layout source for both endpoints: an algorithm name or advisor (portfolio winner)")
	modelName := fs.String("model", "hdd", "cost model: hdd, ssd, or mm")
	devf := devflag.Register(fs)
	drift := fs.Float64("drift", 0.5, "fraction of the workload replaced by perturbed queries")
	driftSeed := fs.Int64("drift-seed", 42, "seed for the deterministic workload drift")
	window := fs.Int64("window", 0, "break-even horizon bound in queries (0 = default)")
	rows := fs.Int64("rows", 0, "max rows materialized per table (0 = default)")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS); never changes the numbers")
	seed := fs.Int64("seed", 1, "data generator seed")
	backend := fs.String("backend", "mem", "partition page store: mem or file")
	dir := fs.String("dir", "", "directory for -backend file (default: a fresh temp dir)")
	verbose := fs.Bool("verbose", false, "print a per-step timing breakdown to stderr")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	vt := newVTimer(*verbose)
	defer vt.total()

	bench, err := knives.BenchmarkByName(*benchName, *sf)
	if err != nil {
		return err
	}
	if *rows < 0 {
		return usageError{err: fmt.Errorf("-rows %d must be non-negative", *rows)}
	}
	if *drift < 0 || *drift > 1 {
		return usageError{err: fmt.Errorf("-drift %v outside [0, 1]", *drift)}
	}
	override, err := devf()
	if err != nil {
		return usageError{err: err}
	}
	model, err := knives.CostModelByName(*modelName, override)
	if err != nil {
		return err
	}
	cfg := knives.MigrationConfig{
		Model:   *modelName,
		Disk:    override,
		MaxRows: *rows,
		Workers: *workers,
		Seed:    *seed,
		Backend: *backend,
		Dir:     *dir,
	}
	if *backend == "file" && *dir == "" {
		tmp, err := os.MkdirTemp("", "knives-migrate-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		cfg.Dir = tmp
	}
	// Validate the execution config before any portfolio search runs: an
	// unknown backend must fail fast, not after minutes of optimization
	// (and not never, when every table's plan happens to be an identity).
	if _, _, err := cfg.Normalized(); err != nil {
		return err
	}

	// Per table: the FROM layout is what the source advises for the
	// original workload, the TO layout what it advises after the workload
	// drifts. The advisor path races the portfolio; a named algorithm uses
	// that algorithm on both endpoints.
	layoutFor := func(tw knives.TableWorkload) (knives.Partitioning, string, error) {
		if strings.EqualFold(*algoName, "advisor") {
			advice, err := knives.AdviseTable(tw, model)
			if err != nil {
				return knives.Partitioning{}, "", err
			}
			return advice.Layout, advice.Algorithm, nil
		}
		a, err := knives.AlgorithmByName(*algoName)
		if err != nil {
			return knives.Partitioning{}, "", err
		}
		res, err := a.Partition(tw, model)
		if err != nil {
			return knives.Partitioning{}, "", err
		}
		return res.Partitioning, a.Name(), nil
	}

	matched := false
	allExact := true
	for _, tw := range bench.TableWorkloads() {
		if *table != "all" && tw.Table.Name != *table {
			continue
		}
		matched = true
		drifted := knives.DriftWorkload(tw, *drift, *driftSeed)
		from, fromAlgo, err := layoutFor(tw)
		if err != nil {
			return err
		}
		to, toAlgo, err := layoutFor(drifted)
		if err != nil {
			return err
		}
		vt.step("advise endpoints " + tw.Table.Name)
		plan, err := knives.MigratePlan(drifted, from, to, model, *window)
		if err != nil {
			return err
		}
		plan.FromAlgorithm, plan.ToAlgorithm = fromAlgo, toAlgo
		if plan.From.Equal(plan.To) {
			fmt.Print(plan)
			fmt.Println()
			continue
		}
		rep, err := knives.MigrateExecute(drifted, plan, cfg)
		if err != nil {
			return err
		}
		vt.step("migrate " + tw.Table.Name)
		fmt.Print(rep)
		fmt.Println()
		if !rep.Exact() {
			allExact = false
		}
	}
	if !matched {
		return fmt.Errorf("benchmark %s has no table %q", bench.Name, *table)
	}
	if !allExact {
		return fmt.Errorf("migration diverged: measured cost != predicted, or the migrated store failed verification (see above)")
	}
	return nil
}

func runExperiment(args []string) error {
	if len(args) < 1 {
		return usageError{err: fmt.Errorf("experiment needs an id (or all); run \"knives list\"")}
	}
	id := args[0]
	fs := flag.NewFlagSet("experiment", flag.ContinueOnError)
	reps := fs.Int("reps", 3, "repetitions for timing experiments")
	extras := func() []string { return fs.Args() }
	if strings.HasPrefix(id, "-") {
		// Flags first: let the FlagSet handle them so -h prints this
		// subcommand's help (exit 0), and accept an id after the flags
		// ("experiment -reps 5 fig1").
		if err := parseFlags(fs, args); err != nil {
			return err
		}
		if id = fs.Arg(0); id == "" {
			return usageError{err: fmt.Errorf("experiment needs an id (or all); run \"knives list\"")}
		}
		extras = func() []string { return fs.Args()[1:] } // Arg(0) is the id
	} else if err := parseFlags(fs, args[1:]); err != nil {
		return err
	}
	// Unconsumed trailing arguments are a typo, not something to drop
	// silently ("experiment tab4 junk" must not report success).
	if rest := extras(); len(rest) > 0 {
		return usageError{err: fmt.Errorf("experiment takes one id; extra arguments %v", rest)}
	}
	suite := experiments.NewSuite()
	suite.Reps = *reps

	run := func(e knives.Experiment) error {
		rep, err := e.Run(suite)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Println(rep)
		return nil
	}
	if id == "all" {
		for _, e := range experiments.All() {
			if err := run(e); err != nil {
				return err
			}
		}
		return nil
	}
	e, err := experiments.ByID(id)
	if err != nil {
		return err
	}
	return run(e)
}
