#!/usr/bin/env bash
# Coverage gate for the kernel packages: the partitioning combinatorics and
# the cost model are where a silent regression corrupts every number the
# reproduction claims, so their statement coverage must never drop below
# the level recorded when this gate was added (95.4% / 83.1%; the cost
# floor was raised to 88% when the device layer landed with its own tests).
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
check() {
  local pkg=$1 floor=$2
  local out pct
  # The assignment must survive set -e so a failing test run still prints
  # its output instead of killing the script with the diagnostics captured.
  if ! out=$(go test -count=1 -cover "./$pkg" 2>&1); then
    echo "coverage: go test ./$pkg failed:"
    echo "$out"
    fail=1
    return
  fi
  pct=$(echo "$out" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
  if [ -z "$pct" ]; then
    echo "coverage: could not parse coverage for $pkg:"
    echo "$out"
    fail=1
    return
  fi
  if awk -v p="$pct" -v f="$floor" 'BEGIN { exit !(p < f) }'; then
    echo "coverage: $pkg at ${pct}% dropped below the ${floor}% floor"
    fail=1
  else
    echo "coverage: $pkg at ${pct}% (floor ${floor}%)"
  fi
}

check internal/partition 95.0
check internal/cost 88.0
# The execution-backed validation layer: the storage engine's measurements
# and the replay subsystem's comparisons are what make measured==predicted a
# tested claim rather than an assertion (89.3% / 87.8% when the gate was
# extended).
check internal/storage 88.0
check internal/replay 86.0
# The migration engine: the planner's refusals and the executor's exactness
# verdicts gate what knivesd will do to a store, so a silent hole here
# could green-light an unverified re-layout (85.2% when the gate was
# extended).
check internal/migrate 84.0
# The durability layer: the WAL's framing/recovery code and the fault
# injector that proves it are what make "crash-safe" a tested claim — an
# untested branch here is a recovery path that first runs on a real power
# cut (92.5% / 90.7% when the gate was extended).
check internal/statestore 90.0
check internal/faultinject 88.0
# The operator pipeline: σ/π/⋈ iterators are the execution witness for the
# cost-model terms, and the fuzzed plan-vs-oracle equivalence only means
# something if the operator branches are actually exercised (96.0% when the
# gate was extended).
check internal/operator 85.0
# The drift sketch: TrackSketch's verdict-equivalence contract leans on the
# space-saving bounds this package guarantees, so an untested branch here is
# a drift verdict that silently diverges from the exact tracker (98.7% when
# the gate was added).
check internal/sketch 85.0
# The telemetry layer: the sharded counters, histogram bucket math, and the
# exposition writer are what operators steer by — an untested branch here is
# a dashboard that lies under exactly the load it was built to explain
# (93.1% when the gate was added).
check internal/telemetry 85.0
exit $fail
