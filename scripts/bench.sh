#!/usr/bin/env bash
# bench.sh — run the benchmark suite and record a BENCH_<date>.json baseline.
#
# The committed BENCH_*.json files are the perf trajectory of this repo:
# every performance PR runs this script and compares its numbers against the
# latest committed record (same machine class, or at least same metric
# definitions). Custom metrics (candidates, evals/s, figure headlines) are
# machine-independent; ns/op is not.
#
# Usage:
#   scripts/bench.sh                 # full suite, 1 iteration per bench
#   BENCH=Lineitem scripts/bench.sh  # only benchmarks matching a pattern
#   BENCHTIME=3x scripts/bench.sh    # more iterations for stabler numbers
set -euo pipefail
cd "$(dirname "$0")/.."

pattern="${BENCH:-.}"
benchtime="${BENCHTIME:-1x}"
out="BENCH_$(date -u +%Y-%m-%d).json"
if [ "$pattern" != "." ]; then
  # A filtered run is a spot check, not the day's baseline — don't let it
  # overwrite the full record.
  out="BENCH_$(date -u +%Y-%m-%d)_$(echo "$pattern" | tr -c 'A-Za-z0-9' '-' | sed 's/-*$//').json"
fi
txt="$(mktemp)"
trap 'rm -f "$txt"' EXIT

go test -run '^$' -bench "$pattern" -benchtime "$benchtime" ./... | tee "$txt"
go run ./scripts/benchjson < "$txt" > "$out"
echo "wrote $out"
