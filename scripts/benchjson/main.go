// Command benchjson converts `go test -bench` text output on stdin into the
// BENCH_<date>.json record scripts/bench.sh commits after a benchmark run:
// one entry per benchmark with its wall-clock time per op and every custom
// metric (candidates, evals/s, figure headline numbers), plus the machine
// context needed to compare runs across hardware.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

type entry struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

type record struct {
	Date       string  `json:"date"`
	GoVersion  string  `json:"go_version"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	CPU        string  `json:"cpu,omitempty"`
	NumCPU     int     `json:"num_cpu"`
	Benchmarks []entry `json:"benchmarks"`
}

func main() {
	rec := record{
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	var pkg string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rec.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		// BenchmarkName N 123 ns/op [value unit]...
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		e := entry{Name: fields[0], Package: pkg, Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if fields[i+1] == "ns/op" {
				e.NsPerOp = v
			} else {
				e.Metrics[fields[i+1]] = v
			}
		}
		if len(e.Metrics) == 0 {
			e.Metrics = nil
		}
		rec.Benchmarks = append(rec.Benchmarks, e)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	sort.SliceStable(rec.Benchmarks, func(i, j int) bool {
		if rec.Benchmarks[i].Package != rec.Benchmarks[j].Package {
			return rec.Benchmarks[i].Package < rec.Benchmarks[j].Package
		}
		return rec.Benchmarks[i].Name < rec.Benchmarks[j].Name
	})
	out := json.NewEncoder(os.Stdout)
	out.SetIndent("", "  ")
	if err := out.Encode(rec); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
