// Benchmarks regenerating every table and figure of the paper's evaluation.
// One benchmark per artifact; each reports the headline quantity of its
// figure as a custom metric so `go test -bench` output doubles as the
// reproduction record (see EXPERIMENTS.md). scripts/bench.sh runs the suite
// and commits the numbers as a BENCH_<date>.json baseline.
package knives_test

import (
	"strconv"
	"strings"
	"sync"
	"testing"

	"knives"
	"knives/internal/algo/bruteforce"
	"knives/internal/cost"
	"knives/internal/experiments"
	"knives/internal/schema"
)

// benchSuite is shared so that the expensive default-setting layouts
// (BruteForce enumerates ~4.2M candidates on Lineitem) are computed once.
var (
	benchSuite     *experiments.Suite
	benchSuiteOnce sync.Once
)

func suite() *experiments.Suite {
	benchSuiteOnce.Do(func() {
		benchSuite = experiments.NewSuite()
		benchSuite.Reps = 1
	})
	return benchSuite
}

// timingExperiments memoize optimization timings on their suite, so a
// shared suite would make iterations 2..N of their benchmarks cache hits
// and corrupt ns/op; they get a fresh suite per iteration instead, keeping
// every iteration a real measurement.
var timingExperiments = map[string]bool{"fig1": true, "fig10": true}

// runExperiment drives one registered experiment b.N times and returns the
// last report.
func runExperiment(b *testing.B, id string) *experiments.Report {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		s := suite()
		if timingExperiments[id] {
			s = experiments.NewSuite()
			s.Reps = 1
		}
		rep, err = e.Run(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	return rep
}

// cell parses a numeric report cell ("12.34%", "427", "1.49") as float.
func cell(b *testing.B, rep *experiments.Report, rowKey string, col int) float64 {
	b.Helper()
	for _, row := range rep.Rows {
		if row[0] != rowKey {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[col], "%"), 64)
		if err != nil {
			b.Fatalf("parse %q: %v", row[col], err)
		}
		return v
	}
	b.Fatalf("%s: no row %q", rep.ID, rowKey)
	return 0
}

func BenchmarkFig1OptimizationTime(b *testing.B) {
	rep := runExperiment(b, "fig1")
	b.ReportMetric(cell(b, rep, "HillClimb", 2), "hillclimb-candidates")
	b.ReportMetric(cell(b, rep, "BruteForce", 2), "bruteforce-candidates")
}

func BenchmarkFig2OptTimeVsWorkload(b *testing.B) {
	rep := runExperiment(b, "fig2")
	b.ReportMetric(float64(len(rep.Rows)), "workload-sizes")
}

func BenchmarkFig3WorkloadRuntime(b *testing.B) {
	rep := runExperiment(b, "fig3")
	b.ReportMetric(cell(b, rep, "HillClimb", 1), "hillclimb-seconds")
	b.ReportMetric(cell(b, rep, "Column", 1), "column-seconds")
	b.ReportMetric(cell(b, rep, "Row", 1), "row-seconds")
}

func BenchmarkFig4UnnecessaryData(b *testing.B) {
	rep := runExperiment(b, "fig4")
	b.ReportMetric(cell(b, rep, "Row", 1), "row-unnecessary-pct")
	b.ReportMetric(cell(b, rep, "Navathe", 1), "navathe-unnecessary-pct")
}

func BenchmarkFig5ReconJoins(b *testing.B) {
	rep := runExperiment(b, "fig5")
	b.ReportMetric(cell(b, rep, "Column", 1), "column-joins")
	b.ReportMetric(cell(b, rep, "HillClimb", 1), "hillclimb-joins")
}

func BenchmarkFig6DistanceFromPMV(b *testing.B) {
	rep := runExperiment(b, "fig6")
	b.ReportMetric(cell(b, rep, "HillClimb", 1), "hillclimb-pct")
	b.ReportMetric(cell(b, rep, "Navathe", 1), "navathe-pct")
}

func BenchmarkFig7ImprovementVsK(b *testing.B) {
	rep := runExperiment(b, "fig7")
	b.ReportMetric(cell(b, rep, "1", 1), "hillclimb-k1-pct")
	b.ReportMetric(cell(b, rep, "22", 1), "hillclimb-k22-pct")
	b.ReportMetric(cell(b, rep, "22", 2), "navathe-k22-pct")
}

func BenchmarkTab3UnnecessaryK(b *testing.B) {
	rep := runExperiment(b, "tab3")
	b.ReportMetric(cell(b, rep, "5", 2), "navathe-k5-pct")
}

func BenchmarkTab4ReconJoinsK(b *testing.B) {
	rep := runExperiment(b, "tab4")
	b.ReportMetric(cell(b, rep, "6", 1), "hillclimb-k6-joins")
	b.ReportMetric(cell(b, rep, "6", 2), "column-k6-joins")
}

func BenchmarkFig8FragilityBuffer(b *testing.B) {
	rep := runExperiment(b, "fig8")
	b.ReportMetric(cell(b, rep, "0.08 MB", 3), "column-fragility-tiny-buffer")
}

func BenchmarkFig9SweetspotBuffer(b *testing.B) {
	rep := runExperiment(b, "fig9")
	b.ReportMetric(cell(b, rep, "0.1 MB", 1), "hillclimb-100kb-pct-of-column")
	b.ReportMetric(cell(b, rep, "10000 MB", 1), "hillclimb-10gb-pct-of-column")
}

func BenchmarkTab5Benchmarks(b *testing.B) {
	rep := runExperiment(b, "tab5")
	b.ReportMetric(cell(b, rep, "HillClimb", 1), "tpch-improvement-pct")
	b.ReportMetric(cell(b, rep, "HillClimb", 2), "ssb-improvement-pct")
}

func BenchmarkTab6CostModels(b *testing.B) {
	rep := runExperiment(b, "tab6")
	b.ReportMetric(cell(b, rep, "HillClimb", 2), "mm-improvement-pct")
}

func BenchmarkTab7Engine(b *testing.B) {
	rep := runExperiment(b, "tab7")
	b.ReportMetric(cell(b, rep, "Dictionary", 2), "dict-column-seconds")
	b.ReportMetric(cell(b, rep, "Dictionary", 3), "dict-hillclimb-seconds")
}

func BenchmarkFig10Payoff(b *testing.B) {
	rep := runExperiment(b, "fig10")
	b.ReportMetric(cell(b, rep, "HillClimb", 1), "payoff-over-row-pct")
}

func BenchmarkFig11FragilityParams(b *testing.B) {
	rep := runExperiment(b, "fig11")
	b.ReportMetric(cell(b, rep, "bw 60 MB/s", 1), "hillclimb-bw-fragility")
}

func BenchmarkFig12SweetspotParams(b *testing.B) {
	rep := runExperiment(b, "fig12")
	b.ReportMetric(cell(b, rep, "seek 7 ms", 1), "hillclimb-seek7-seconds")
}

func BenchmarkFig13ScaleSweep(b *testing.B) {
	rep := runExperiment(b, "fig13")
	b.ReportMetric(float64(len(rep.Rows)), "sweep-points")
}

func BenchmarkFig14Layouts(b *testing.B) {
	rep := runExperiment(b, "fig14")
	b.ReportMetric(float64(len(rep.Rows)), "layout-rows")
}

// Extension benches: prose results and restored features (see DESIGN.md).

func BenchmarkExtSelectivity(b *testing.B) {
	rep := runExperiment(b, "ext-selectivity")
	b.ReportMetric(float64(len(rep.Rows)), "selectivity-points")
}

func BenchmarkExtWorkloadDrift(b *testing.B) {
	rep := runExperiment(b, "ext-drift")
	b.ReportMetric(cell(b, rep, "50.00%", 1), "cost-change-50pct-drift")
}

func BenchmarkExtConvergence(b *testing.B) {
	rep := runExperiment(b, "ext-convergence")
	b.ReportMetric(cell(b, rep, "0.00", 1), "hillclimb-candidates-regular")
	b.ReportMetric(cell(b, rep, "1.00", 1), "hillclimb-candidates-fragmented")
}

func BenchmarkExtReplication(b *testing.B) {
	rep := runExperiment(b, "ext-replication")
	b.ReportMetric(cell(b, rep, "100.00%", 2), "storage-overhead-pct")
}

func BenchmarkExtGrouping(b *testing.B) {
	rep := runExperiment(b, "ext-grouping")
	b.ReportMetric(cell(b, rep, "1", 1), "one-replica-seconds")
	b.ReportMetric(cell(b, rep, "3", 1), "three-replica-seconds")
}

func BenchmarkExtReplay(b *testing.B) {
	rep := runExperiment(b, "ext-replay")
	b.ReportMetric(cell(b, rep, "HillClimb", 1), "hillclimb-measured-seconds")
	b.ReportMetric(cell(b, rep, "Row", 1), "row-measured-seconds")
	b.ReportMetric(cell(b, rep, "HillClimb", 3), "hillclimb-max-abs-delta")
}

func BenchmarkExtMigrate(b *testing.B) {
	rep := runExperiment(b, "ext-migrate")
	b.ReportMetric(cell(b, rep, "HillClimb", 1), "hillclimb-migration-seconds")
	b.ReportMetric(cell(b, rep, "HillClimb", 3), "hillclimb-break-even-queries")
	b.ReportMetric(cell(b, rep, "Trojan", 3), "trojan-break-even-queries")
}

func BenchmarkExtRecovery(b *testing.B) {
	rep := runExperiment(b, "ext-recovery")
	b.ReportMetric(cell(b, rep, "kill@write 17 keep 7", 2), "torn-crash-acked-events")
	b.ReportMetric(cell(b, rep, "kill@write 17 keep 7", 4), "torn-crash-replayed-records")
	b.ReportMetric(cell(b, rep, "retry: fail writes 3,11,27", 6), "triple-fault-retries")
}

func BenchmarkExtDevice(b *testing.B) {
	rep := runExperiment(b, "ext-device")
	b.ReportMetric(cell(b, rep, "HillClimb", 1), "hillclimb-hdd-seconds")
	b.ReportMetric(cell(b, rep, "HillClimb", 3), "hillclimb-ssd-seconds")
	b.ReportMetric(cell(b, rep, "Trojan", 4), "trojan-ssd-rank")
	b.ReportMetric(cell(b, rep, "Column", 4), "column-ssd-rank")
}

func BenchmarkExtOperators(b *testing.B) {
	rep := runExperiment(b, "ext-operators")
	b.ReportMetric(cell(b, rep, "hdd", 3), "hillclimb-hdd-executed-seconds")
	b.ReportMetric(cell(b, rep, "hdd", 5), "hillclimb-hdd-max-abs-delta")
	b.ReportMetric(cell(b, rep, "mm", 8), "hillclimb-mm-bytes")
}

func BenchmarkExtVectorized(b *testing.B) {
	rep := runExperiment(b, "ext-vectorized")
	b.ReportMetric(cell(b, rep, "row", 3), "row-oracle-measured-seconds")
	b.ReportMetric(cell(b, rep, "vector", 3), "vector-measured-seconds")
	b.ReportMetric(cell(b, rep, "vector", 6), "vector-rows-out")
}

// Kernel benches: the parallel, incremental search kernel (see DESIGN.md).
// The sequential/parallel pair below is the kernel's headline speedup
// measurement on the paper's biggest exhaustive search — BruteForce over
// Lineitem in fragment mode, ~4.2M candidates. Fine-grained kernel
// benchmarks live next to the code: internal/algo (GreedyMerge evals/s) and
// internal/algo/bruteforce.

func benchBruteForceLineitem(b *testing.B, workers int) {
	bench := schema.TPCH(10)
	tw := bench.Workload.ForTable(bench.Table("lineitem"))
	m := cost.NewHDD(cost.DefaultDisk())
	bf := &bruteforce.BruteForce{Workers: workers}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := bf.Partition(tw, m)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Stats.Candidates), "candidates")
	}
}

func BenchmarkKernelBruteForceLineitemSequential(b *testing.B) { benchBruteForceLineitem(b, 1) }
func BenchmarkKernelBruteForceLineitemParallel(b *testing.B)   { benchBruteForceLineitem(b, 0) }

// The device layer's search leg: the full advisor portfolio over Lineitem
// priced on the SSD device. Same kernel, different constants — pinning that
// the device-parameterized model costs no more to search under than the
// hard-coded HDD struct it replaced.
func BenchmarkSSDSearch(b *testing.B) {
	bench := schema.TPCH(10)
	tw := bench.Workload.ForTable(bench.Table("lineitem"))
	m := cost.NewSSD()
	for i := 0; i < b.N; i++ {
		advice, err := knives.AdviseTable(tw, m)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(advice.Cost, "ssd-advised-cost-seconds")
	}
}
