package knives

import (
	"knives/internal/cost"
	"knives/internal/migrate"
	"knives/internal/storage"
	"knives/internal/workgen"
)

// Migration types: the online layout migration engine. A migration prices
// a layout transition with the migration cost model (read every moved
// partition, write every created one), plans break-even against a recent
// query mix, executes viable transitions on a live storage engine via the
// epoch-swapped Repartition, and verifies the migrated store with the
// replay harness at zero tolerance.
type (
	// MigrationPlan is a priced, break-even-analyzed layout transition.
	MigrationPlan = migrate.Plan
	// MigrationReport is the outcome of executing and verifying a plan.
	MigrationReport = migrate.Report
	// MigrationConfig parameterizes an execution (it is the replay config:
	// model, disk, row cap, workers, seed, backend).
	MigrationConfig = migrate.Config
	// MigrationBreakdown is the migration cost model's per-partition
	// pricing of a transition.
	MigrationBreakdown = cost.Migration
	// RepartitionStats is what the storage engine measured executing one
	// repartition.
	RepartitionStats = storage.RepartitionStats
)

// MigrationCost prices the transition from -> to over the table under the
// given model: every moved partition read, every created partition
// written, untouched column groups free. The breakdown lists each moved
// partition's term in the exact summation order, which the storage
// engine's Repartition reproduces bit for bit.
func MigrationCost(m CostModel, t *Table, from, to Partitioning) (MigrationBreakdown, error) {
	return cost.MigrationCost(m, t, from.Parts, to.Parts)
}

// MigratePlan prices the transition and decides break-even against the
// recent query mix: the number of queries after which migrate+run(to)
// beats stay(from). Plans that never break even — or not within window
// queries (0 = default window) — come back with Viable=false and a Reason.
func MigratePlan(tw TableWorkload, from, to Partitioning, m CostModel, window int64) (*MigrationPlan, error) {
	return migrate.New(tw, from, to, m, window)
}

// MigrateExecute performs a planned migration on a sampled store and
// verifies it: the from-layout is materialized, repartitioned into the
// to-layout without a reload, the measured transition compared against the
// migration cost model, and the migrated store replayed against a fresh
// materialization of the target — all at zero tolerance.
func MigrateExecute(tw TableWorkload, p *MigrationPlan, cfg MigrationConfig) (*MigrationReport, error) {
	return migrate.Execute(tw, p, cfg)
}

// MigrationDefaultWindow is the default break-even horizon bound.
const MigrationDefaultWindow = migrate.DefaultWindow

// DriftWorkload returns a copy of the workload with a fraction of its
// queries replaced by perturbed variants — the paper's Section 6.3
// workload-change model, exported so migration scenarios can generate the
// "after" mix deterministically.
func DriftWorkload(tw TableWorkload, fraction float64, seed int64) TableWorkload {
	return workgen.Drift(tw, fraction, seed)
}
