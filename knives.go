// Package knives is a Go reproduction of "A Comparison of Knives for Bread
// Slicing" (Jindal, Palatinus, Pavlov, Dittrich — VLDB 2013), the
// experimental survey of vertical partitioning algorithms.
//
// The package exposes the paper's whole apparatus behind one façade:
//
//   - Benchmarks: TPCH and SSB build the workloads with the paper's schemas
//     and per-query attribute access sets.
//   - Cost models: one device-parameterized layer (Device) with presets —
//     NewHDDModel prices layouts with the unified disk I/O model of
//     Section 4 (proportional buffer sharing, seek + scan), NewSSDModel is
//     the same block discipline with flash constants, NewMMModel is the
//     main-memory cache-miss model of Table 6, and NewDeviceModel accepts
//     any custom hardware spec.
//   - Algorithms: Algorithms returns AutoPart, HillClimb, HYRISE, Navathe,
//     O2P, Trojan and BruteForce; AlgorithmByName picks one.
//   - Advisor: Advise runs every algorithm on every table and recommends
//     the cheapest layout per table, with Row/Column baselines.
//   - Experiments: Experiments and RunExperiment regenerate every table
//     and figure of the paper's evaluation.
//   - Storage: NewEngine executes real scans over partitioned data on a
//     simulated disk, for validating the cost model's predictions.
//
// Quick start:
//
//	bench := knives.TPCH(10)
//	model := knives.NewHDDModel(knives.DefaultDisk())
//	hc, _ := knives.AlgorithmByName("HillClimb")
//	tw := bench.Workload.ForTable(bench.Table("partsupp"))
//	res, _ := hc.Partition(tw, model)
//	fmt.Println(res.Partitioning) // [ps_partkey ps_suppkey | ps_availqty | ps_supplycost | ps_comment]
package knives

import (
	"knives/internal/algo"
	"knives/internal/algorithms"
	"knives/internal/attrset"
	"knives/internal/cost"
	"knives/internal/experiments"
	"knives/internal/partition"
	"knives/internal/schema"
	"knives/internal/storage"
)

// Core schema and workload types.
type (
	// Benchmark bundles tables with a workload (TPC-H or SSB, or custom).
	Benchmark = schema.Benchmark
	// Table is a logical relation with sized columns and a row count.
	Table = schema.Table
	// Column is one attribute of a Table.
	Column = schema.Column
	// Query is one workload query: per-table referenced attribute sets.
	Query = schema.Query
	// Workload is an ordered list of queries.
	Workload = schema.Workload
	// TableWorkload is a workload projected onto a single table — the unit
	// every partitioning algorithm operates on.
	TableWorkload = schema.TableWorkload
	// TableQuery is one query's references to one table.
	TableQuery = schema.TableQuery
	// AttrSet is a set of column indexes.
	AttrSet = attrset.Set
	// ColumnKind classifies a column's value domain.
	ColumnKind = schema.ColumnKind
)

// Column kinds.
const (
	KindInt     = schema.KindInt
	KindDecimal = schema.KindDecimal
	KindDate    = schema.KindDate
	KindChar    = schema.KindChar
	KindVarchar = schema.KindVarchar
)

// Partitioning types.
type (
	// Partitioning is a complete, disjoint decomposition of a table's
	// attributes into column groups.
	Partitioning = partition.Partitioning
)

// Cost model types.
type (
	// Device is the parameterized hardware spec every cost model prices
	// against: block geometry, buffer, seek, bandwidths, and cache
	// parameters, plus the pricing discipline (block or cache).
	Device = cost.Device
	// Disk is the historical name for Device.
	Disk = cost.Disk
	// CostModel estimates query costs over a partitioned table.
	CostModel = cost.Model
)

// Pricing disciplines a Device can follow.
const (
	PricingBlock = cost.PricingBlock
	PricingCache = cost.PricingCache
)

// Algorithm types.
type (
	// Algorithm computes a vertical partitioning of one table.
	Algorithm = algo.Algorithm
	// Result is an algorithm's output: layout, cost, and search statistics.
	Result = algo.Result
	// Stats records candidate counts and optimization time.
	Stats = algo.Stats
)

// Experiment types.
type (
	// Experiment is one reproduced paper artifact (figure or table).
	Experiment = experiments.Experiment
	// Report is a rendered experiment result.
	Report = experiments.Report
	// Suite is the shared configuration of an experiment run.
	Suite = experiments.Suite
)

// Storage types.
type (
	// Engine executes scans over vertically partitioned data.
	Engine = storage.Engine
	// Generator produces deterministic synthetic rows.
	Generator = storage.Generator
	// ScanStats reports what one scan did.
	ScanStats = storage.ScanStats
)

// TPCH returns the TPC-H benchmark at the given scale factor (the paper
// uses 10).
func TPCH(sf float64) *Benchmark { return schema.TPCH(sf) }

// SSB returns the Star Schema Benchmark at the given scale factor.
func SSB(sf float64) *Benchmark { return schema.SSB(sf) }

// BenchmarkByName returns a built-in benchmark by name ("tpch" or "ssb",
// case-insensitive) at the given scale factor. Zero means "unset" and uses
// the paper's default of 10; negative scale factors are rejected.
func BenchmarkByName(name string, sf float64) (*Benchmark, error) {
	return schema.BenchmarkByName(name, sf)
}

// NewTable builds a validated custom table.
func NewTable(name string, rows int64, cols []Column) (*Table, error) {
	return schema.NewTable(name, rows, cols)
}

// Attrs builds an attribute set from column indexes.
func Attrs(indexes ...int) AttrSet { return attrset.Of(indexes...) }

// DefaultDisk returns the paper's testbed disk characteristics: 8 KB
// blocks, 8 MB buffer, 90.07 MB/s read, 64.37 MB/s write, 4.84 ms seek.
func DefaultDisk() Disk { return cost.DefaultDisk() }

// NewHDDModel returns the unified disk I/O cost model of the paper's
// Section 4.
func NewHDDModel(d Disk) CostModel { return cost.NewHDD(d) }

// NewMMModel returns the main-memory (cache-miss) cost model used by the
// paper's Table 6.
func NewMMModel() CostModel { return cost.NewMM() }

// NewSSDModel returns the flash cost model: the paper's block discipline
// with the SSD preset's near-zero seek and high read bandwidth — the point
// on the hardware spectrum between the paper's two.
func NewSSDModel() CostModel { return cost.NewSSD() }

// NewDeviceModel returns a cost model over a validated custom device spec.
func NewDeviceModel(d Device) (CostModel, error) { return cost.NewDeviceModel(d) }

// DeviceByName returns the named device preset ("hdd", "ssd", "mm",
// case-insensitive, plus aliases like "disk", "flash", "ram"); the
// unknown-name error lists every valid name.
func DeviceByName(name string) (Device, error) { return cost.DeviceByName(name) }

// CostModelByName returns the named cost model ("hdd", "ssd", or "mm",
// case-insensitive, aliases accepted); every non-zero hardware parameter of
// d overrides the named preset's, and the resolved device is validated.
func CostModelByName(name string, d Disk) (CostModel, error) {
	return cost.ModelByName(name, d)
}

// Algorithms returns fresh instances of the seven evaluated algorithms in
// the paper's presentation order.
func Algorithms() []Algorithm { return algorithms.All() }

// AlgorithmByName returns the named algorithm: one of AutoPart, HillClimb,
// HYRISE, Navathe, O2P, Trojan, BruteForce.
func AlgorithmByName(name string) (Algorithm, error) { return algorithms.ByName(name) }

// RowLayout returns the no-partitioning layout of a table.
func RowLayout(t *Table) Partitioning { return partition.Row(t) }

// ColumnLayout returns the fully partitioned layout of a table.
func ColumnLayout(t *Table) Partitioning { return partition.Column(t) }

// WorkloadCost prices a layout against a per-table workload.
func WorkloadCost(m CostModel, tw TableWorkload, p Partitioning) float64 {
	return cost.WorkloadCost(m, tw, p.Parts)
}

// Experiments returns every reproduced paper artifact in paper order.
func Experiments() []Experiment { return experiments.All() }

// NewSuite returns an experiment suite over TPC-H SF 10 with the paper's
// default disk.
func NewSuite() *Suite { return experiments.NewSuite() }

// RunExperiment runs one paper artifact by id ("fig1".."fig14",
// "tab3".."tab7") on a fresh default suite.
func RunExperiment(id string) (*Report, error) {
	e, err := experiments.ByID(id)
	if err != nil {
		return nil, err
	}
	return e.Run(experiments.NewSuite())
}

// NewGenerator returns a deterministic synthetic data generator.
func NewGenerator(seed int64) *Generator { return storage.NewGenerator(seed) }

// NewEngine creates a storage engine executing scans over the layout on a
// simulated disk with in-memory partition files.
func NewEngine(layout Partitioning, d Disk) (*Engine, error) {
	return storage.NewEngine(layout, d, nil)
}
