package algorithms

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"knives/internal/attrset"
	"knives/internal/cost"
	"knives/internal/partition"
	"knives/internal/schema"
)

// Metamorphic relations: the offline algorithms treat a workload as a SET
// of weighted attribute sets, so permuting query order must not change the
// layout they produce, and relabeling columns must only relabel the layout.
// O2P is the deliberate exception — it is an online algorithm and its
// output depends on arrival order; TestO2PIsOrderSensitive pins that
// asymmetry so nobody "fixes" it, and the advisor fingerprints workloads
// order-sensitively because of it.

// offlineNames are the portfolio members contractually insensitive to query
// order.
var offlineNames = []string{"AutoPart", "HillClimb", "HYRISE", "Navathe", "Trojan"}

// permuted returns the workload with queries shuffled by the seeded rng.
func permuted(tw schema.TableWorkload, rng *rand.Rand) schema.TableWorkload {
	qs := append([]schema.TableQuery(nil), tw.Queries...)
	rng.Shuffle(len(qs), func(i, j int) { qs[i], qs[j] = qs[j], qs[i] })
	return schema.TableWorkload{Table: tw.Table, Queries: qs}
}

func TestMetamorphicQueryOrderInvariance(t *testing.T) {
	bench := schema.TPCH(1)
	m := cost.NewHDD(cost.DefaultDisk())
	rng := rand.New(rand.NewSource(61))
	for _, tab := range []string{"lineitem", "partsupp", "orders", "customer"} {
		tw := bench.Workload.ForTable(bench.Table(tab))
		for _, name := range offlineNames {
			a, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			base, err := a.Partition(tw, m)
			if err != nil {
				t.Fatalf("%s on %s: %v", name, tab, err)
			}
			for trial := 0; trial < 3; trial++ {
				got, err := a.Partition(permuted(tw, rng), m)
				if err != nil {
					t.Fatalf("%s on %s (permuted): %v", name, tab, err)
				}
				if !got.Partitioning.Equal(base.Partitioning) {
					t.Errorf("%s on %s: permuted queries changed layout\n  base: %s\n  got:  %s",
						name, tab, base.Partitioning, got.Partitioning)
				}
				// The cost is a float sum in query order; permuting the
				// order may move it by summation jitter but nothing more.
				if !costsAgree(base.Cost, got.Cost) {
					t.Errorf("%s on %s: permuted queries changed cost %v -> %v",
						name, tab, base.Cost, got.Cost)
				}
			}
		}
	}
}

// costsAgree allows last-ulp float summation-order jitter only.
func costsAgree(a, b float64) bool {
	if a == b {
		return true
	}
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := a
	if b > a {
		scale = b
	}
	return diff <= 1e-12*scale
}

// permuteColumns builds the same logical table with columns relabeled by a
// random permutation, and remaps the workload to match. perm[i] is the new
// index of old column i.
func permuteColumns(t *testing.T, tw schema.TableWorkload, rng *rand.Rand) (schema.TableWorkload, []int) {
	t.Helper()
	n := tw.Table.NumAttrs()
	perm := rng.Perm(n)
	cols := make([]schema.Column, n)
	for old, c := range tw.Table.Columns {
		cols[perm[old]] = c
	}
	tab, err := schema.NewTable(tw.Table.Name, tw.Table.Rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	out := schema.TableWorkload{Table: tab}
	for _, q := range tw.Queries {
		var attrs attrset.Set
		q.Attrs.ForEach(func(a int) { attrs = attrs.Add(perm[a]) })
		out.Queries = append(out.Queries, schema.TableQuery{ID: q.ID, Weight: q.Weight, Attrs: attrs})
	}
	return out, perm
}

// namesOfLayout renders a partitioning as a sorted list of sorted column
// name groups — the layout up to renaming/relabeling.
func namesOfLayout(p partition.Partitioning) []string {
	groups := make([]string, 0, p.NumParts())
	for _, part := range p.Parts {
		names := p.Table.AttrNames(part)
		sort.Strings(names)
		groups = append(groups, fmt.Sprintf("%v", names))
	}
	sort.Strings(groups)
	return groups
}

func TestMetamorphicColumnOrderInvariance(t *testing.T) {
	bench := schema.TPCH(1)
	m := cost.NewHDD(cost.DefaultDisk())
	rng := rand.New(rand.NewSource(443))
	for _, tab := range []string{"partsupp", "orders", "part"} {
		tw := bench.Workload.ForTable(bench.Table(tab))
		for _, name := range offlineNames {
			a, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			base, err := a.Partition(tw, m)
			if err != nil {
				t.Fatalf("%s on %s: %v", name, tab, err)
			}
			baseNames := namesOfLayout(base.Partitioning)
			for trial := 0; trial < 2; trial++ {
				ptw, _ := permuteColumns(t, tw, rng)
				got, err := a.Partition(ptw, m)
				if err != nil {
					t.Fatalf("%s on %s (columns permuted): %v", name, tab, err)
				}
				if gotNames := namesOfLayout(got.Partitioning); fmt.Sprintf("%v", gotNames) != fmt.Sprintf("%v", baseNames) {
					t.Errorf("%s on %s: relabeled columns changed the layout\n  base: %v\n  got:  %v",
						name, tab, baseNames, gotNames)
				}
				if !costsAgree(base.Cost, got.Cost) {
					t.Errorf("%s on %s: relabeled columns changed cost %v -> %v",
						name, tab, base.Cost, got.Cost)
				}
			}
		}
	}
}

// O2P is *intentionally* order-sensitive: it folds queries into the
// affinity matrix one at a time and re-clusters incrementally, so arrival
// order leaves fingerprints in the attribute ordering (the paper's Figures
// 3 and 14 show O2P differing from batch Navathe for exactly this reason).
// This test pins a concrete instance so the sensitivity is a documented
// contract, not an accident: reversing Lineitem's TPC-H query stream
// changes the layout O2P maintains.
func TestO2PIsOrderSensitive(t *testing.T) {
	bench := schema.TPCH(1)
	m := cost.NewHDD(cost.DefaultDisk())
	tw := bench.Workload.ForTable(bench.Table("lineitem"))
	a, err := ByName("O2P")
	if err != nil {
		t.Fatal(err)
	}
	forward, err := a.Partition(tw, m)
	if err != nil {
		t.Fatal(err)
	}
	reversed := schema.TableWorkload{Table: tw.Table}
	for i := len(tw.Queries) - 1; i >= 0; i-- {
		reversed.Queries = append(reversed.Queries, tw.Queries[i])
	}
	backward, err := a.Partition(reversed, m)
	if err != nil {
		t.Fatal(err)
	}
	// Both orders must still produce valid covers...
	if err := forward.Partitioning.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := backward.Partitioning.Validate(); err != nil {
		t.Fatal(err)
	}
	// ...but the layouts differ: order sensitivity is part of O2P's design.
	if forward.Partitioning.Equal(backward.Partitioning) {
		t.Errorf("O2P produced the same layout for forward and reversed query order (%s);"+
			" if O2P became order-insensitive, fix this pin AND the advisor fingerprint doc",
			forward.Partitioning)
	}
}
