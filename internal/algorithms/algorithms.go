// Package algorithms registers the vertical partitioning algorithms the
// paper evaluates, in its presentation order, behind one constructor.
package algorithms

import (
	"fmt"

	"knives/internal/algo"
	"knives/internal/algo/autopart"
	"knives/internal/algo/bruteforce"
	"knives/internal/algo/hillclimb"
	"knives/internal/algo/hyrise"
	"knives/internal/algo/navathe"
	"knives/internal/algo/o2p"
	"knives/internal/algo/trojan"
)

// All returns fresh instances of every evaluated algorithm in the paper's
// presentation order: AutoPart, HillClimb, HYRISE, Navathe, O2P, Trojan,
// BruteForce.
func All() []algo.Algorithm {
	return []algo.Algorithm{
		autopart.New(),
		hillclimb.New(),
		hyrise.New(),
		navathe.New(),
		o2p.New(),
		trojan.New(),
		bruteforce.New(),
	}
}

// Heuristics returns every algorithm except BruteForce.
func Heuristics() []algo.Algorithm {
	all := All()
	return all[:len(all)-1]
}

// ByName returns the named algorithm (case-sensitive, as reported by
// Name()), or an error listing the valid names.
func ByName(name string) (algo.Algorithm, error) {
	var names []string
	for _, a := range All() {
		if a.Name() == name {
			return a, nil
		}
		names = append(names, a.Name())
	}
	return nil, fmt.Errorf("algorithms: unknown algorithm %q (have %v)", name, names)
}
