// Package algorithms_test cross-validates all seven algorithms against the
// paper's qualitative results on the real TPC-H and SSB workloads.
package algorithms_test

import (
	"math"
	"math/rand"
	"testing"

	"knives/internal/algo"
	"knives/internal/algo/bruteforce"
	"knives/internal/algo/hillclimb"
	"knives/internal/algo/trojan"
	"knives/internal/algorithms"
	"knives/internal/attrset"
	"knives/internal/cost"
	"knives/internal/partition"
	"knives/internal/schema"
)

func hdd() cost.Model { return cost.NewHDD(cost.DefaultDisk()) }

func TestByName(t *testing.T) {
	for _, want := range []string{"AutoPart", "HillClimb", "HYRISE", "Navathe", "O2P", "Trojan", "BruteForce"} {
		a, err := algorithms.ByName(want)
		if err != nil {
			t.Fatalf("ByName(%s): %v", want, err)
		}
		if a.Name() != want {
			t.Errorf("ByName(%s).Name() = %s", want, a.Name())
		}
	}
	if _, err := algorithms.ByName("nope"); err == nil {
		t.Error("ByName accepted an unknown name")
	}
	if got := len(algorithms.Heuristics()); got != 6 {
		t.Errorf("Heuristics() has %d entries, want 6", got)
	}
}

// Every algorithm must produce a valid partitioning for every TPC-H and SSB
// table, and its reported cost must equal an independent re-evaluation.
func TestAllAlgorithmsProduceValidLayouts(t *testing.T) {
	model := hdd()
	for _, bench := range []*schema.Benchmark{schema.TPCH(1), schema.SSB(1)} {
		for _, tw := range bench.TableWorkloads() {
			for _, a := range algorithms.All() {
				res, err := a.Partition(tw, model)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", bench.Name, tw.Table.Name, a.Name(), err)
				}
				if err := res.Partitioning.Validate(); err != nil {
					t.Errorf("%s/%s/%s: invalid layout: %v", bench.Name, tw.Table.Name, a.Name(), err)
				}
				recheck := cost.WorkloadCost(model, tw, res.Partitioning.Parts)
				if math.Abs(recheck-res.Cost) > 1e-6*math.Max(1, recheck) {
					t.Errorf("%s/%s/%s: reported cost %v != re-evaluated %v",
						bench.Name, tw.Table.Name, a.Name(), res.Cost, recheck)
				}
				if res.Stats.Candidates <= 0 {
					t.Errorf("%s/%s/%s: no candidates counted", bench.Name, tw.Table.Name, a.Name())
				}
			}
		}
	}
}

// Determinism: two runs of the same algorithm must give identical layouts.
func TestAlgorithmsAreDeterministic(t *testing.T) {
	model := hdd()
	tw := schema.TPCH(1).Workload.ForTable(schema.TPCH(1).Table("lineitem"))
	for _, a := range algorithms.All() {
		r1, err1 := a.Partition(tw, model)
		r2, err2 := a.Partition(tw, model)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v / %v", a.Name(), err1, err2)
		}
		if !r1.Partitioning.Equal(r2.Partitioning) {
			t.Errorf("%s: non-deterministic layouts\n%s\n%s", a.Name(), r1.Partitioning, r2.Partitioning)
		}
	}
}

// Paper lesson 1: HillClimb and AutoPart find layouts with the same cost as
// BruteForce on every TPC-H table, while evaluating orders of magnitude
// fewer candidates on the wide tables.
func TestHillClimbAndAutoPartMatchBruteForce(t *testing.T) {
	model := hdd()
	bench := schema.TPCH(10)
	for _, tw := range bench.TableWorkloads() {
		bf, err := algorithms.ByName("BruteForce")
		if err != nil {
			t.Fatal(err)
		}
		optimal, err := bf.Partition(tw, model)
		if err != nil {
			t.Fatalf("BruteForce/%s: %v", tw.Table.Name, err)
		}
		for _, name := range []string{"HillClimb", "AutoPart"} {
			a, _ := algorithms.ByName(name)
			res, err := a.Partition(tw, model)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, tw.Table.Name, err)
			}
			// Greedy search can in principle be beaten, but on TPC-H the
			// paper observes exact ties; allow a 1% band for block-packing
			// rounding asymmetries between the searches.
			if res.Cost > optimal.Cost*1.01+1e-9 {
				t.Errorf("%s on %s: cost %v, BruteForce %v (>1%% off)",
					name, tw.Table.Name, res.Cost, optimal.Cost)
			}
			if res.Cost < optimal.Cost-1e-6 && tw.Table.Name != "lineitem" {
				t.Errorf("%s on %s: cost %v beats BruteForce %v — brute force must be optimal",
					name, tw.Table.Name, res.Cost, optimal.Cost)
			}
		}
		if tw.Table.Name == "lineitem" {
			hc, _ := algorithms.ByName("HillClimb")
			res, err := hc.Partition(tw, model)
			if err != nil {
				t.Fatal(err)
			}
			if optimal.Stats.Candidates < 1000*res.Stats.Candidates {
				t.Errorf("lineitem: BruteForce evaluated %d candidates vs HillClimb %d — expected >=3 orders of magnitude more",
					optimal.Stats.Candidates, res.Stats.Candidates)
			}
		}
	}
}

// The fragment-level reduction must agree with raw-attribute enumeration on
// every table narrow enough to enumerate raw, up to block-packing rounding.
func TestFragmentBruteForceMatchesRaw(t *testing.T) {
	model := hdd()
	bench := schema.TPCH(1)
	for _, name := range []string{"customer", "nation", "orders", "part", "partsupp", "region", "supplier"} {
		tw := bench.Workload.ForTable(bench.Table(name))
		frag, err := bruteforce.New().Partition(tw, model)
		if err != nil {
			t.Fatalf("fragment/%s: %v", name, err)
		}
		raw, err := bruteforce.NewRaw(10).Partition(tw, model)
		if err != nil {
			t.Fatalf("raw/%s: %v", name, err)
		}
		if frag.Cost > raw.Cost*1.005+1e-9 {
			t.Errorf("%s: fragment-mode cost %v exceeds raw-mode %v beyond rounding", name, frag.Cost, raw.Cost)
		}
		if raw.Cost > frag.Cost+1e-6 {
			t.Errorf("%s: raw-mode cost %v worse than fragment-mode %v — raw searches a superset", name, raw.Cost, frag.Cost)
		}
	}
}

// Paper Figure 3: Navathe and O2P trail the bottom-up algorithms on the
// full TPC-H workload; every vertically partitioned layout crushes Row.
func TestQualityOrderingOnTPCH(t *testing.T) {
	model := hdd()
	bench := schema.TPCH(10)

	total := func(name string) float64 {
		var sum float64
		for _, tw := range bench.TableWorkloads() {
			a, err := algorithms.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := a.Partition(tw, model)
			if err != nil {
				t.Fatal(err)
			}
			sum += res.Cost
		}
		return sum
	}
	layoutCost := func(layout func(*schema.Table) partition.Partitioning) float64 {
		var sum float64
		for _, tw := range bench.TableWorkloads() {
			sum += cost.WorkloadCost(model, tw, layout(tw.Table).Parts)
		}
		return sum
	}

	hc := total("HillClimb")
	nav := total("Navathe")
	row := layoutCost(partition.Row)
	col := layoutCost(partition.Column)

	if hc >= nav {
		t.Errorf("HillClimb (%v) should beat Navathe (%v) on full TPC-H", hc, nav)
	}
	if hc >= col {
		t.Errorf("HillClimb (%v) should be at least as good as Column (%v)", hc, col)
	}
	if nav <= col {
		t.Errorf("Navathe (%v) should trail Column (%v) on full TPC-H (paper Fig. 3)", nav, col)
	}
	if row < 3*hc {
		t.Errorf("Row (%v) should be far worse than HillClimb (%v): paper shows ~80%% improvement", row, hc)
	}
	// Paper lesson 4: improvement over Column is single-digit percent.
	if imp := (col - hc) / col; imp < 0 || imp > 0.15 {
		t.Errorf("improvement over Column = %.2f%%, expected small single digits", imp*100)
	}
}

// HillClimb from columns and GreedyMerge must never produce a layout worse
// than column layout (merges are only taken when they improve).
func TestHillClimbNeverWorseThanColumn(t *testing.T) {
	model := hdd()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		nAttrs := 2 + rng.Intn(8)
		cols := make([]schema.Column, nAttrs)
		for i := range cols {
			cols[i] = schema.Column{Name: string(rune('a' + i)), Size: 1 + rng.Intn(100)}
		}
		tab, err := schema.NewTable("t", int64(1000+rng.Intn(2_000_000)), cols)
		if err != nil {
			t.Fatal(err)
		}
		tw := schema.TableWorkload{Table: tab}
		nq := 1 + rng.Intn(8)
		for q := 0; q < nq; q++ {
			var s attrset.Set
			for a := 0; a < nAttrs; a++ {
				if rng.Intn(2) == 0 {
					s = s.Add(a)
				}
			}
			if s.IsEmpty() {
				s = attrset.Single(rng.Intn(nAttrs))
			}
			tw.Queries = append(tw.Queries, schema.TableQuery{ID: "q", Weight: 1, Attrs: s})
		}
		res, err := hillclimb.New().Partition(tw, model)
		if err != nil {
			t.Fatal(err)
		}
		colCost := cost.WorkloadCost(model, tw, partition.Column(tab).Parts)
		if res.Cost > colCost+1e-9 {
			t.Errorf("trial %d: HillClimb cost %v > column %v", trial, res.Cost, colCost)
		}
	}
}

// Under the main-memory cost model nothing beats column layout (paper,
// Table 6): the bottom-up algorithms must return layouts costing the same
// as Column.
func TestMMModelNothingBeatsColumn(t *testing.T) {
	model := cost.NewMM()
	bench := schema.TPCH(1)
	for _, tw := range bench.TableWorkloads() {
		colCost := cost.WorkloadCost(model, tw, partition.Column(tw.Table).Parts)
		for _, name := range []string{"HillClimb", "AutoPart", "BruteForce"} {
			a, _ := algorithms.ByName(name)
			res, err := a.Partition(tw, model)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, tw.Table.Name, err)
			}
			if res.Cost > colCost+1e-9 {
				t.Errorf("%s on %s under MM: cost %v > column %v", name, tw.Table.Name, res.Cost, colCost)
			}
			if res.Cost < colCost*0.999 {
				t.Errorf("%s on %s under MM: cost %v beats column %v — MM model should make column optimal",
					name, tw.Table.Name, res.Cost, colCost)
			}
		}
	}
}

// Navathe and O2P produce order-preserving (contiguous in affinity order)
// layouts; with a single dominant co-access pair they must isolate it.
func TestNavatheIsolatesDominantPair(t *testing.T) {
	tab := schema.MustTable("t", 1_000_000, []schema.Column{
		{Name: "a", Size: 8}, {Name: "b", Size: 8}, {Name: "c", Size: 100}, {Name: "d", Size: 100},
	})
	tw := schema.TableWorkload{Table: tab, Queries: []schema.TableQuery{
		{ID: "q1", Weight: 10, Attrs: attrset.Of(0, 1)},
		{ID: "q2", Weight: 1, Attrs: attrset.Of(2, 3)},
	}}
	for _, name := range []string{"Navathe", "O2P"} {
		a, _ := algorithms.ByName(name)
		res, err := a.Partition(tw, hdd())
		if err != nil {
			t.Fatal(err)
		}
		// {a,b} must be a partition (possibly split, but never mixed with c/d).
		for _, p := range res.Partitioning.Parts {
			if p.Overlaps(attrset.Of(0, 1)) && p.Overlaps(attrset.Of(2, 3)) {
				t.Errorf("%s mixed the two access groups: %s", name, res.Partitioning)
			}
		}
	}
}

// Trojan's threshold controls pruning: with an impossible threshold it
// degenerates to column layout over referenced attributes.
func TestTrojanThresholdExtremes(t *testing.T) {
	bench := schema.TPCH(1)
	tw := bench.Workload.ForTable(bench.Table("partsupp"))
	strict := &trojan.Trojan{Threshold: 1.1}
	res, err := strict.Partition(tw, hdd())
	if err != nil {
		t.Fatal(err)
	}
	// All referenced attrs singled out + one unreferenced group.
	ref := tw.ReferencedAttrs()
	for _, p := range res.Partitioning.Parts {
		if p.Overlaps(ref) && p.Len() != 1 {
			t.Errorf("threshold 1.1 still grouped %v", p)
		}
	}

	loose := &trojan.Trojan{Threshold: 1e-9}
	res2, err := loose.Partition(tw, hdd())
	if err != nil {
		t.Fatal(err)
	}
	// ps_partkey and ps_suppkey are referenced by exactly the same queries:
	// NMI = 1, so any positive threshold keeps them together.
	ps := tw.Table
	pk, sk := ps.AttrIndex("ps_partkey"), ps.AttrIndex("ps_suppkey")
	if res2.Partitioning.PartOf(pk) != res2.Partitioning.PartOf(sk) {
		t.Errorf("loose threshold separated perfectly coupled attrs: %s", res2.Partitioning)
	}
}

// Empty and degenerate workloads must not break any algorithm.
func TestAlgorithmsHandleDegenerateWorkloads(t *testing.T) {
	tab := schema.MustTable("t", 1000, []schema.Column{
		{Name: "a", Size: 4}, {Name: "b", Size: 4},
	})
	cases := []schema.TableWorkload{
		{Table: tab}, // no queries
		{Table: tab, Queries: []schema.TableQuery{{ID: "q", Weight: 1, Attrs: attrset.Of(0, 1)}}},
		{Table: tab, Queries: []schema.TableQuery{{ID: "q", Weight: 1, Attrs: attrset.Of(0)}}},
	}
	for ci, tw := range cases {
		for _, a := range algorithms.All() {
			res, err := a.Partition(tw, hdd())
			if err != nil {
				t.Errorf("case %d, %s: %v", ci, a.Name(), err)
				continue
			}
			if err := res.Partitioning.Validate(); err != nil {
				t.Errorf("case %d, %s: %v", ci, a.Name(), err)
			}
		}
	}
}

// A one-attribute table has exactly one layout; everyone must find it.
func TestSingleAttributeTable(t *testing.T) {
	tab := schema.MustTable("t", 10, []schema.Column{{Name: "a", Size: 4}})
	tw := schema.TableWorkload{Table: tab, Queries: []schema.TableQuery{
		{ID: "q", Weight: 1, Attrs: attrset.Of(0)},
	}}
	for _, a := range algorithms.All() {
		res, err := a.Partition(tw, hdd())
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if res.Partitioning.NumParts() != 1 {
			t.Errorf("%s: %d parts for 1-attr table", a.Name(), res.Partitioning.NumParts())
		}
	}
}

// BruteForce refuses workloads beyond its atom cap instead of hanging.
func TestBruteForceCap(t *testing.T) {
	cols := make([]schema.Column, 20)
	for i := range cols {
		cols[i] = schema.Column{Name: string(rune('a' + i)), Size: 4}
	}
	tab := schema.MustTable("wide", 1000, cols)
	tw := schema.TableWorkload{Table: tab}
	// 20 queries each referencing a unique single attribute -> 20 fragments.
	for i := 0; i < 20; i++ {
		tw.Queries = append(tw.Queries, schema.TableQuery{ID: "q", Weight: 1, Attrs: attrset.Single(i)})
	}
	if _, err := bruteforce.New().Partition(tw, hdd()); err == nil {
		t.Error("BruteForce accepted 20 atoms")
	}
}

// Candidate counters must reflect the search-space hierarchy on Lineitem:
// heuristics << Trojan << BruteForce.
func TestCandidateCountHierarchy(t *testing.T) {
	model := hdd()
	bench := schema.TPCH(10)
	tw := bench.Workload.ForTable(bench.Table("lineitem"))
	counts := map[string]int64{}
	for _, a := range algorithms.All() {
		res, err := a.Partition(tw, model)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		counts[a.Name()] = res.Stats.Candidates
	}
	if !(counts["HillClimb"] < counts["Trojan"] && counts["Trojan"] < counts["BruteForce"]) {
		t.Errorf("candidate hierarchy violated: %v", counts)
	}
	if counts["BruteForce"] < 1_000_000 {
		t.Errorf("BruteForce evaluated only %d candidates on lineitem", counts["BruteForce"])
	}
}

var _ algo.Algorithm = (*bruteforce.BruteForce)(nil)
