package algorithms

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"knives/internal/cost"
	"knives/internal/schema"
	"knives/internal/workgen"
)

// randomTable builds a table with a random number of randomly sized columns.
func randomTable(t *testing.T, rng *rand.Rand, maxAttrs int) *schema.Table {
	t.Helper()
	n := 1 + rng.Intn(maxAttrs)
	cols := make([]schema.Column, n)
	kinds := []schema.ColumnKind{schema.KindInt, schema.KindDecimal, schema.KindDate, schema.KindChar, schema.KindVarchar}
	for i := range cols {
		cols[i] = schema.Column{
			Name: fmt.Sprintf("c%d", i),
			Kind: kinds[rng.Intn(len(kinds))],
			Size: 1 + rng.Intn(200),
		}
	}
	tab, err := schema.NewTable(fmt.Sprintf("t%d", rng.Int63()), int64(1+rng.Intn(1_000_000)), cols)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// randomWorkload draws a workload with a random access pattern shape.
func randomWorkload(t *testing.T, rng *rand.Rand, tab *schema.Table) schema.TableWorkload {
	t.Helper()
	tw, err := workgen.Generate(tab, workgen.Config{
		Queries:       1 + rng.Intn(12),
		Fragmentation: rng.Float64(),
		MeanAttrs:     1 + rng.Intn(tab.NumAttrs()),
		Seed:          rng.Int63(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return tw
}

// Property: on any workload, every algorithm returns a disjoint, complete
// cover of the table's attributes, and the cost it reports prices that
// layout under the model it was given.
//
// The cost check re-prices the canonicalized layout, whose partition order
// may differ from the order the search used internally; since float
// addition is order-sensitive in the last ulp, the comparison uses a tight
// relative tolerance rather than bit equality (the bit-exact claims of the
// search kernel are pinned by the equivalence tests in internal/algo).
func TestPropertyAlgorithmsProduceValidCovers(t *testing.T) {
	const trials = 40
	rng := rand.New(rand.NewSource(2013))
	models := []cost.Model{cost.NewHDD(cost.DefaultDisk()), cost.NewMM()}
	for trial := 0; trial < trials; trial++ {
		// BruteForce enumerates Bell(n) candidates: cap its tables.
		maxAttrs := 12
		tab := randomTable(t, rng, maxAttrs)
		tw := randomWorkload(t, rng, tab)
		m := models[trial%len(models)]
		for _, a := range All() {
			if a.Name() == "BruteForce" && tab.NumAttrs() > 8 {
				continue
			}
			res, err := a.Partition(tw, m)
			if err != nil {
				t.Fatalf("trial %d: %s: %v", trial, a.Name(), err)
			}
			if err := res.Partitioning.Validate(); err != nil {
				t.Fatalf("trial %d: %s returned an invalid cover: %v", trial, a.Name(), err)
			}
			if res.Partitioning.Table != tab {
				t.Fatalf("trial %d: %s partitioned the wrong table", trial, a.Name())
			}
			repriced := cost.WorkloadCost(m, tw, res.Partitioning.Parts)
			if !closeEnough(res.Cost, repriced) {
				t.Fatalf("trial %d: %s reported cost %v, layout prices at %v",
					trial, a.Name(), res.Cost, repriced)
			}
			if res.Stats.Candidates <= 0 {
				t.Fatalf("trial %d: %s evaluated %d candidates", trial, a.Name(), res.Stats.Candidates)
			}
		}
	}
}

// closeEnough compares costs up to float summation-order jitter.
func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}

// Property: an algorithm's result does not depend on what ran before it on
// the same instance — repeated Partition calls agree (determinism, required
// by the algo.Algorithm contract and relied on by the advisor cache).
func TestPropertyAlgorithmsAreDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := cost.NewHDD(cost.DefaultDisk())
	for trial := 0; trial < 10; trial++ {
		tab := randomTable(t, rng, 10)
		tw := randomWorkload(t, rng, tab)
		for _, a := range All() {
			if a.Name() == "BruteForce" && tab.NumAttrs() > 8 {
				continue
			}
			r1, err := a.Partition(tw, m)
			if err != nil {
				t.Fatalf("%s: %v", a.Name(), err)
			}
			r2, err := a.Partition(tw, m)
			if err != nil {
				t.Fatalf("%s: %v", a.Name(), err)
			}
			if r1.Cost != r2.Cost || !r1.Partitioning.Equal(r2.Partitioning) ||
				r1.Stats.Candidates != r2.Stats.Candidates {
				t.Fatalf("trial %d: %s is nondeterministic: (%v, %s, %d) vs (%v, %s, %d)",
					trial, a.Name(), r1.Cost, r1.Partitioning, r1.Stats.Candidates,
					r2.Cost, r2.Partitioning, r2.Stats.Candidates)
			}
		}
	}
}

// Property: no heuristic beats BruteForce — its cost is the global optimum
// of the candidate space, so a cheaper heuristic layout would mean a broken
// cost evaluation somewhere.
func TestPropertyBruteForceIsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := cost.NewHDD(cost.DefaultDisk())
	bf, err := ByName("BruteForce")
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		tab := randomTable(t, rng, 7)
		tw := randomWorkload(t, rng, tab)
		opt, err := bf.Partition(tw, m)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range Heuristics() {
			res, err := a.Partition(tw, m)
			if err != nil {
				t.Fatalf("%s: %v", a.Name(), err)
			}
			if res.Cost < opt.Cost && !closeEnough(res.Cost, opt.Cost) {
				t.Errorf("trial %d: %s cost %v beats BruteForce optimum %v",
					trial, a.Name(), res.Cost, opt.Cost)
			}
		}
	}
}
