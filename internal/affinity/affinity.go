// Package affinity implements the attribute affinity matrix and the bond
// energy algorithm (McCormick, Schweitzer, White 1972) used by Navathe's
// vertical partitioning algorithm and, incrementally, by O2P.
package affinity

import (
	"fmt"

	"knives/internal/attrset"
	"knives/internal/schema"
)

// Matrix is a symmetric attribute affinity matrix: cell (i, j) holds the
// summed weight of queries that reference attributes i and j together
// (the paper's "number of times attribute i co-occurs with attribute j").
// The diagonal holds each attribute's total access frequency.
type Matrix struct {
	n int
	a []float64 // row-major n*n
}

// NewMatrix returns an all-zero affinity matrix over n attributes.
func NewMatrix(n int) *Matrix {
	if n < 0 || n > attrset.MaxAttrs {
		panic(fmt.Sprintf("affinity: NewMatrix(%d) out of range", n))
	}
	return &Matrix{n: n, a: make([]float64, n*n)}
}

// Build constructs the affinity matrix of a per-table workload.
func Build(tw schema.TableWorkload) *Matrix {
	m := NewMatrix(tw.Table.NumAttrs())
	for _, q := range tw.Queries {
		m.AddQuery(q.Attrs, q.Weight)
	}
	return m
}

// N returns the number of attributes.
func (m *Matrix) N() int { return m.n }

// At returns the affinity of attributes i and j.
func (m *Matrix) At(i, j int) float64 { return m.a[i*m.n+j] }

// AddQuery folds one query with the given weight into the matrix. This is
// the online update O2P performs for every incoming query.
func (m *Matrix) AddQuery(attrs attrset.Set, weight float64) {
	if weight == 0 {
		weight = 1
	}
	list := attrs.Attrs()
	for _, i := range list {
		for _, j := range list {
			m.a[i*m.n+j] += weight
		}
	}
}

// bond is the bond energy between two attribute columns: the inner product
// of their affinity vectors. Index -1 denotes the virtual empty column at
// either boundary, whose bond with anything is zero.
func (m *Matrix) bond(i, j int) float64 {
	if i < 0 || j < 0 {
		return 0
	}
	var s float64
	for k := 0; k < m.n; k++ {
		s += m.a[i*m.n+k] * m.a[j*m.n+k]
	}
	return s
}

// contribution is the net bond energy gained by placing attribute x between
// neighbors l and r (either may be -1 at a boundary):
// cont(l, x, r) = 2·bond(l,x) + 2·bond(x,r) − 2·bond(l,r).
func (m *Matrix) contribution(l, x, r int) float64 {
	return 2*m.bond(l, x) + 2*m.bond(x, r) - 2*m.bond(l, r)
}

// Order clusters the matrix with the bond energy algorithm and returns the
// resulting attribute ordering. Following McCormick's original procedure,
// each step selects — among the not-yet-placed attributes — the one whose
// best insertion position yields the largest contribution, and places it
// there. Ties prefer the lower attribute index and the leftmost position,
// which makes the ordering deterministic.
func (m *Matrix) Order() []int {
	if m.n == 0 {
		return nil
	}
	order := []int{0}
	placed := attrset.Single(0)
	for len(order) < m.n {
		bestAttr, bestPos, bestCont := -1, 0, 0.0
		for x := 0; x < m.n; x++ {
			if placed.Has(x) {
				continue
			}
			pos, cont := m.bestPosition(order, x)
			if bestAttr < 0 || cont > bestCont {
				bestAttr, bestPos, bestCont = x, pos, cont
			}
		}
		order = insertAt(order, bestPos, bestAttr)
		placed = placed.Add(bestAttr)
	}
	return order
}

// bestPosition returns the insertion position for x that maximizes its
// contribution, and that contribution.
func (m *Matrix) bestPosition(order []int, x int) (int, float64) {
	bestPos, bestCont := 0, m.contribution(-1, x, order[0])
	for pos := 1; pos <= len(order); pos++ {
		l := order[pos-1]
		r := -1
		if pos < len(order) {
			r = order[pos]
		}
		if c := m.contribution(l, x, r); c > bestCont {
			bestCont, bestPos = c, pos
		}
	}
	return bestPos, bestCont
}

func insertAt(order []int, pos, x int) []int {
	out := make([]int, 0, len(order)+1)
	out = append(out, order[:pos]...)
	out = append(out, x)
	out = append(out, order[pos:]...)
	return out
}

// insert places attribute x into the ordering at its best position.
func (m *Matrix) insert(order []int, x int) []int {
	pos, _ := m.bestPosition(order, x)
	return insertAt(order, pos, x)
}

// Reinsert removes every attribute of attrs from the ordering and re-inserts
// each at its now-best position. This is the incremental clustering step
// O2P performs after folding a query into the matrix: only the attributes
// whose affinities changed are reconsidered.
func (m *Matrix) Reinsert(order []int, attrs attrset.Set) []int {
	out := make([]int, 0, len(order))
	for _, a := range order {
		if !attrs.Has(a) {
			out = append(out, a)
		}
	}
	attrs.ForEach(func(a int) {
		if len(out) == 0 {
			out = append(out, a)
			return
		}
		out = m.insert(out, a)
	})
	return out
}
