package affinity

import (
	"testing"

	"knives/internal/attrset"
	"knives/internal/schema"
)

func tw(t *testing.T, nAttrs int, queries ...attrset.Set) schema.TableWorkload {
	t.Helper()
	cols := make([]schema.Column, nAttrs)
	for i := range cols {
		cols[i] = schema.Column{Name: string(rune('a' + i)), Size: 4}
	}
	tab, err := schema.NewTable("t", 100, cols)
	if err != nil {
		t.Fatal(err)
	}
	w := schema.TableWorkload{Table: tab}
	for i, q := range queries {
		w.Queries = append(w.Queries, schema.TableQuery{ID: string(rune('A' + i)), Weight: 1, Attrs: q})
	}
	return w
}

func TestBuildCounts(t *testing.T) {
	w := tw(t, 3, attrset.Of(0, 1), attrset.Of(0, 1), attrset.Of(1, 2))
	m := Build(w)
	if got := m.At(0, 1); got != 2 {
		t.Errorf("At(0,1) = %v, want 2", got)
	}
	if got := m.At(1, 0); got != 2 {
		t.Errorf("At(1,0) = %v, want 2 (symmetry)", got)
	}
	if got := m.At(1, 1); got != 3 {
		t.Errorf("At(1,1) = %v, want 3 (diagonal = frequency)", got)
	}
	if got := m.At(0, 2); got != 0 {
		t.Errorf("At(0,2) = %v, want 0", got)
	}
}

func TestAddQueryDefaultWeight(t *testing.T) {
	m := NewMatrix(2)
	m.AddQuery(attrset.Of(0, 1), 0) // zero weight treated as 1
	if got := m.At(0, 1); got != 1 {
		t.Errorf("At(0,1) = %v, want 1", got)
	}
}

func TestOrderIsPermutation(t *testing.T) {
	w := tw(t, 6,
		attrset.Of(0, 3), attrset.Of(1, 4), attrset.Of(2, 5),
		attrset.Of(0, 3), attrset.Of(1, 4))
	m := Build(w)
	order := m.Order()
	if len(order) != 6 {
		t.Fatalf("order = %v", order)
	}
	seen := map[int]bool{}
	for _, a := range order {
		if a < 0 || a >= 6 || seen[a] {
			t.Fatalf("order %v is not a permutation", order)
		}
		seen[a] = true
	}
}

// Attributes that always co-occur must end up adjacent: the bond energy of
// any ordering separating them is strictly lower.
func TestOrderClustersCoAccessedAttrs(t *testing.T) {
	// Queries reference {0,5} and {2,3} heavily; {1,4} occasionally.
	w := tw(t, 6,
		attrset.Of(0, 5), attrset.Of(0, 5), attrset.Of(0, 5),
		attrset.Of(2, 3), attrset.Of(2, 3), attrset.Of(2, 3),
		attrset.Of(1, 4))
	order := Build(w).Order()
	pos := make([]int, 6)
	for i, a := range order {
		pos[a] = i
	}
	adjacent := func(a, b int) bool {
		d := pos[a] - pos[b]
		return d == 1 || d == -1
	}
	if !adjacent(0, 5) {
		t.Errorf("0 and 5 not adjacent in %v", order)
	}
	if !adjacent(2, 3) {
		t.Errorf("2 and 3 not adjacent in %v", order)
	}
}

func TestOrderEmptyAndSingle(t *testing.T) {
	if got := NewMatrix(0).Order(); got != nil {
		t.Errorf("Order of empty matrix = %v", got)
	}
	if got := NewMatrix(1).Order(); len(got) != 1 || got[0] != 0 {
		t.Errorf("Order of 1x1 = %v", got)
	}
}

func TestReinsertKeepsPermutation(t *testing.T) {
	w := tw(t, 5, attrset.Of(0, 1), attrset.Of(2, 3, 4))
	m := Build(w)
	order := m.Order()
	// Fold in a new query and reinsert its attributes.
	m.AddQuery(attrset.Of(0, 4), 1)
	order = m.Reinsert(order, attrset.Of(0, 4))
	if len(order) != 5 {
		t.Fatalf("reinsert produced %v", order)
	}
	seen := map[int]bool{}
	for _, a := range order {
		if seen[a] {
			t.Fatalf("duplicate in %v", order)
		}
		seen[a] = true
	}
}

func TestReinsertIntoEmpty(t *testing.T) {
	m := NewMatrix(2)
	m.AddQuery(attrset.Of(0, 1), 1)
	order := m.Reinsert(nil, attrset.Of(0, 1))
	if len(order) != 2 {
		t.Fatalf("Reinsert into empty = %v", order)
	}
}

// Incremental insertion must converge to a clustering equivalent in bond
// energy terms when queries arrive one at a time vs all at once, for a
// simple two-cluster workload.
func TestIncrementalMatchesBatchOnSeparableWorkload(t *testing.T) {
	queries := []attrset.Set{
		attrset.Of(0, 1), attrset.Of(0, 1), attrset.Of(2, 3), attrset.Of(2, 3),
	}
	batch := Build(tw(t, 4, queries...))
	batchOrder := batch.Order()

	inc := NewMatrix(4)
	var order []int
	for i := 0; i < 4; i++ {
		order = append(order, i)
	}
	for _, q := range queries {
		inc.AddQuery(q, 1)
		order = inc.Reinsert(order, q)
	}

	energy := func(m *Matrix, ord []int) float64 {
		var e float64
		for i := 0; i+1 < len(ord); i++ {
			e += m.bond(ord[i], ord[i+1])
		}
		return e
	}
	be, ie := energy(batch, batchOrder), energy(batch, order)
	if ie < be {
		t.Errorf("incremental order %v has energy %v < batch order %v energy %v", order, ie, batchOrder, be)
	}
}
