package operator

import (
	"fmt"

	"knives/internal/attrset"
	"knives/internal/cost"
	"knives/internal/storage"
)

// Vectorized execution: the same σ/π/⋈ plans, batch-at-a-time. Every
// operator moves a Batch — up to BatchSize consecutive rows as per-attribute
// column slices plus a selection vector — instead of one row per interface
// call. The physical accounting is untouched (batches are filled through the
// SAME PartCursor stream, page fetch for page fetch), σ writes a selection
// vector instead of moving rows, ⋈ degenerates to chunk alignment because
// leaves emit consecutive IDs in lockstep chunks, and π digests the
// surviving rows with the identical FNV-64a byte stream the row path feeds —
// so checksums, row counts, and ScanStats are bit-equal to the row oracle.

// DefaultBatchSize is the rows per batch when ExecOptions leaves it zero:
// big enough to amortize per-batch overhead, small enough that a plan's
// batches stay cache-resident.
const DefaultBatchSize = 1024

// MaxBatchSize caps requested batch sizes; beyond it per-batch buffers
// stop paying for themselves and only cost memory.
const MaxBatchSize = 1 << 16

// Batch is one chunk of up to cap consecutive rows flowing through a
// vectorized pipeline. Rows occupy slots 0..n-1; slot i holds row Base+i of
// the stored table, and attribute a's value lives at cols[a][i*w:(i+1)*w].
// A nil selection vector means every slot survives; a non-nil one lists the
// surviving slots in ascending order (σ only ever shrinks it). Leaf batches
// own their column buffers; a join's output batch aliases its children's.
type Batch struct {
	// Base is the table row ID of slot 0; leaves emit consecutive IDs, so
	// slot i is row Base+i.
	Base int64

	n     int
	attrs attrset.Set
	sel   []int32
	cols  [attrset.MaxAttrs][]byte
	width [attrset.MaxAttrs]int

	selBuf []int32 // σ's backing storage, cap == batch capacity
}

// newLeafBatch allocates the reusable buffers for one leaf's column group.
func newLeafBatch(c *storage.PartCursor, size int) *Batch {
	b := &Batch{attrs: c.Attrs(), selBuf: make([]int32, 0, size)}
	for _, a := range c.Attrs().Attrs() {
		_, w := c.ColSpec(a)
		b.width[a] = w
		b.cols[a] = make([]byte, size*w)
	}
	return b
}

// Len returns the number of row slots filled.
func (b *Batch) Len() int { return b.n }

// Sel returns the selection vector: the surviving slots in ascending order,
// or nil when every slot survives.
func (b *Batch) Sel() []int32 { return b.sel }

// Attrs returns the attribute set the batch carries columns for.
func (b *Batch) Attrs() attrset.Set { return b.attrs }

// Col returns slot i's bytes of attribute a (no selection applied).
func (b *Batch) Col(a, i int) []byte {
	w := b.width[a]
	if w == 0 {
		return nil
	}
	return b.cols[a][i*w : (i+1)*w]
}

// live returns how many of the batch's slots survive its selection.
func (b *Batch) live() int {
	if b.sel != nil {
		return len(b.sel)
	}
	return b.n
}

// VecOperator is the batch-at-a-time counterpart of Operator: NextBatch
// returns the stream's next batch, or (nil, nil) at end of stream. Batches
// are owned by the operator that returned them and are valid only until the
// next NextBatch call. Stats and Name report in exactly the terms the row
// operators do, so a vectorized plan's OpStats are comparable (and, by the
// decomposition identities, equal) to the row path's.
type VecOperator interface {
	NextBatch() (*Batch, error)
	Stats() OpStats
	Name() string
}

// VecScan is the vectorized leaf: it fills batches from a storage.PartCursor
// in page-sized runs (NextRows), copying each column into the batch's own
// buffers so rows survive past the cursor's page — the copy is what lets
// batches cross goroutines and outlive page refills. The cursor stream, and
// therefore every physical measurement, is identical to the row scan's.
type VecScan struct {
	c     *storage.PartCursor
	dev   cost.Device
	attrs attrset.Set
	cols  []int
	offs  [attrset.MaxAttrs]int
	width [attrset.MaxAttrs]int
	size  int
	buf   *Batch // sync-mode reusable batch; morsel feeders bring their own
	out   int64
}

// NewVecScan opens a vectorized leaf over cur with the given batch size.
func NewVecScan(cur *storage.PartCursor, dev cost.Device, size int) *VecScan {
	s := &VecScan{c: cur, dev: dev, attrs: cur.Attrs(), cols: cur.Attrs().Attrs(), size: size}
	for _, a := range s.cols {
		s.offs[a], s.width[a] = cur.ColSpec(a)
	}
	return s
}

// FillInto fills b from the cursor: up to the batch size in page-sized runs,
// strided column copies, no per-row calls. b.n == 0 signals end of stream.
func (s *VecScan) FillInto(b *Batch) error {
	b.Base = s.out
	b.sel = nil
	rs := s.c.RowSize()
	filled := 0
	for filled < s.size {
		page, start, n, err := s.c.NextRows(s.size - filled)
		if err != nil {
			return err
		}
		if n == 0 {
			break
		}
		src := page[start*rs:]
		for _, a := range s.cols {
			w, off := s.width[a], s.offs[a]
			dst := b.cols[a][filled*w:]
			switch w {
			case 4: // the u32 int/date columns dominating the benchmarks
				for i := 0; i < n; i++ {
					so, do := i*rs+off, i*4
					dst[do] = src[so]
					dst[do+1] = src[so+1]
					dst[do+2] = src[so+2]
					dst[do+3] = src[so+3]
				}
			default:
				for i := 0; i < n; i++ {
					so := i*rs + off
					copy(dst[i*w:(i+1)*w], src[so:so+w])
				}
			}
		}
		filled += n
	}
	b.n = filled
	s.out += int64(filled)
	return nil
}

// NextBatch fills the scan's own reusable batch.
func (s *VecScan) NextBatch() (*Batch, error) {
	if s.buf == nil {
		s.buf = newLeafBatch(s.c, s.size)
	}
	if err := s.FillInto(s.buf); err != nil {
		return nil, err
	}
	if s.buf.n == 0 {
		return nil, nil
	}
	return s.buf, nil
}

// PartStats returns the leaf's physical accounting in the engine's
// per-partition form.
func (s *VecScan) PartStats() storage.PartScanStats { return s.c.Stats() }

// Stats prices the leaf exactly as the row Scan does.
func (s *VecScan) Stats() OpStats {
	ps := s.c.Stats()
	st := OpStats{
		Op: "scan", Name: "scan" + s.attrs.String(), RowsOut: s.out,
		Seeks: ps.Seeks, BytesRead: ps.BytesRead, CacheLines: ps.CacheLines,
	}
	if s.dev.Pricing == cost.PricingCache {
		st.SimTime = float64(ps.CacheLines) * s.dev.MissLatency
	} else {
		st.SimTime = s.dev.SeekTime*float64(ps.Seeks) + float64(ps.BytesRead)/s.dev.ReadBandwidth
	}
	return st
}

// Name renders the leaf with its column group.
func (s *VecScan) Name() string { return "scan" + s.attrs.String() }

// VecSelect is the vectorized σ: the predicate is evaluated over the batch's
// predicate column into the selection vector — no row movement, no
// per-row pulls. Row counts match the row σ's: every slot that reaches it
// counts in, every surviving slot counts out.
type VecSelect struct {
	child VecOperator
	pred  Pred
	in    int64
	out   int64
}

// NewVecSelect wraps child in the predicate.
func NewVecSelect(child VecOperator, pred Pred) *VecSelect {
	return &VecSelect{child: child, pred: pred}
}

// Apply evaluates the predicate into b's selection vector in place. Exposed
// (within the package) so morsel leaf goroutines can run the σ next to the
// fill.
func (s *VecSelect) Apply(b *Batch) {
	w := b.width[s.pred.Attr]
	col := b.cols[s.pred.Attr]
	sel := b.selBuf[:0]
	if b.sel == nil {
		s.in += int64(b.n)
		for i := 0; i < b.n; i++ {
			if s.pred.Match(col[i*w : (i+1)*w]) {
				sel = append(sel, int32(i))
			}
		}
	} else {
		s.in += int64(len(b.sel))
		for _, i := range b.sel {
			off := int(i) * w
			if s.pred.Match(col[off : off+w]) {
				sel = append(sel, i)
			}
		}
	}
	b.selBuf = sel
	b.sel = sel
	s.out += int64(len(sel))
}

// NextBatch pulls one batch and filters it.
func (s *VecSelect) NextBatch() (*Batch, error) {
	b, err := s.child.NextBatch()
	if b == nil || err != nil {
		return nil, err
	}
	s.Apply(b)
	return b, nil
}

// Stats reports the selection's row flow; σ does no I/O.
func (s *VecSelect) Stats() OpStats {
	return OpStats{Op: "select", Name: s.Name(), RowsIn: s.in, RowsOut: s.out}
}

// Name renders the predicate.
func (s *VecSelect) Name() string { return "σ(" + s.pred.Name + ")" }

// VecReconJoin is the vectorized ⋈. Because every leaf emits consecutive
// row IDs in identically-sized chunks, chunk k of every child covers the
// same ID range — the row path's ID merge collapses into aligning chunk
// selection vectors. The output batch carries no copies at all: its column
// slices alias the children's buffers and only the intersected selection
// vector is new. The common-granularity drain is implicit: every child is
// pulled to end of stream no matter what the selections discard.
type VecReconJoin struct {
	children []VecOperator
	out      Batch
	selBuf   []int32
	in       int64
	emitted  int64
	joins    int64
	done     bool
}

// NewVecReconJoin merges the children's batch streams. Children must carry
// disjoint attribute sets (vertical partitions do by construction).
func NewVecReconJoin(children []VecOperator) *VecReconJoin {
	return &VecReconJoin{children: children}
}

// NextBatch aligns one chunk across every child.
func (j *VecReconJoin) NextBatch() (*Batch, error) {
	if j.done {
		return nil, nil
	}
	var sel []int32 // nil = every slot survives so far
	first := true
	ended := 0
	for _, c := range j.children {
		b, err := c.NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			ended++
			continue
		}
		j.in += int64(b.live())
		if first {
			j.out.Base, j.out.n = b.Base, b.n
			first = false
		} else if b.Base != j.out.Base || b.n != j.out.n {
			return nil, fmt.Errorf("operator: join children out of chunk alignment (base %d/%d rows %d/%d)",
				b.Base, j.out.Base, b.n, j.out.n)
		}
		j.out.attrs = j.out.attrs.Union(b.attrs)
		for _, a := range b.attrs.Attrs() {
			j.out.cols[a] = b.cols[a]
			j.out.width[a] = b.width[a]
		}
		sel = intersectSel(sel, b.sel, &j.selBuf)
	}
	if ended > 0 {
		// Same-sized chunks over the same row count end together; a straggler
		// would mean the alignment invariant broke upstream.
		if ended != len(j.children) {
			return nil, fmt.Errorf("operator: join children ended out of step (%d of %d)", ended, len(j.children))
		}
		j.done = true
		return nil, nil
	}
	j.out.sel = sel
	live := j.out.live()
	j.emitted += int64(live)
	j.joins += int64(live) * int64(len(j.children)-1)
	return &j.out, nil
}

// intersectSel intersects two selection vectors (nil = all slots). buf is
// the join-owned backing storage, grown once and reused per chunk.
func intersectSel(a, b []int32, buf *[]int32) []int32 {
	if b == nil {
		return a
	}
	if a == nil {
		return b
	}
	out := (*buf)[:0]
	i, k := 0, 0
	for i < len(a) && k < len(b) {
		switch {
		case a[i] < b[k]:
			i++
		case a[i] > b[k]:
			k++
		default:
			out = append(out, a[i])
			i++
			k++
		}
	}
	*buf = out
	return out
}

// Stats reports the merge's row flow and reconstruction count.
func (j *VecReconJoin) Stats() OpStats {
	return OpStats{Op: "join", Name: j.Name(), RowsIn: j.in, RowsOut: j.emitted, ReconJoins: j.joins}
}

// Name renders the join.
func (j *VecReconJoin) Name() string { return "⋈" }

// fnv64Offset and fnv64Prime are FNV-64a's constants; VecProject inlines the
// hash state as a bare uint64 (hash/fnv's object costs an interface call and
// a pointer chase per write) — the byte stream, and therefore the digest, is
// identical to the row path's fnv.New64a.
const (
	fnv64Offset uint64 = 14695981039346656037
	fnv64Prime  uint64 = 1099511628211
)

// VecProject is the vectorized π: one loop digests every surviving row's
// query columns in ascending attribute order — the exact byte stream the
// row Project feeds its hash — so the checksum stays layout-, mode-, and
// batch-size-invariant. It also records per-batch fill ratios (surviving
// rows over batch capacity), the serving layer's batching-efficiency signal.
type VecProject struct {
	child VecOperator
	attrs attrset.Set
	cols  []int
	h     uint64
	rows  int64
	cap   int
	fills []float64
}

// NewVecProject projects child onto attrs; cap is the pipeline batch size
// the fill ratios are measured against.
func NewVecProject(child VecOperator, attrs attrset.Set, cap int) *VecProject {
	return &VecProject{child: child, attrs: attrs, cols: attrs.Attrs(), h: fnv64Offset, cap: cap}
}

// NextBatch digests one batch's surviving rows.
func (p *VecProject) NextBatch() (*Batch, error) {
	b, err := p.child.NextBatch()
	if b == nil || err != nil {
		return nil, err
	}
	h := p.h
	if b.sel == nil {
		for i := 0; i < b.n; i++ {
			for _, a := range p.cols {
				w := b.width[a]
				for _, c := range b.cols[a][i*w : (i+1)*w] {
					h = (h ^ uint64(c)) * fnv64Prime
				}
			}
		}
		p.rows += int64(b.n)
	} else {
		for _, s := range b.sel {
			i := int(s)
			for _, a := range p.cols {
				w := b.width[a]
				for _, c := range b.cols[a][i*w : (i+1)*w] {
					h = (h ^ uint64(c)) * fnv64Prime
				}
			}
		}
		p.rows += int64(len(b.sel))
	}
	p.h = h
	p.fills = append(p.fills, float64(b.live())/float64(p.cap))
	return b, nil
}

// Checksum returns the digest of everything projected so far.
func (p *VecProject) Checksum() uint64 { return p.h }

// FillRatios returns the per-batch fill ratios observed so far.
func (p *VecProject) FillRatios() []float64 { return p.fills }

// Stats reports the projection's row flow.
func (p *VecProject) Stats() OpStats {
	return OpStats{Op: "project", Name: p.Name(), RowsIn: p.rows, RowsOut: p.rows}
}

// Name renders the projection with its attribute set.
func (p *VecProject) Name() string { return "π" + p.attrs.String() }
