package operator

import (
	"fmt"
	"strings"

	"knives/internal/attrset"
	"knives/internal/cost"
	"knives/internal/storage"
)

// Pipeline is a built σ/π/⋈ plan over one pinned epoch, ready to run once.
// Build shapes it bottom-up from the layout:
//
//	π(query)                      ← digest + projection, always the root
//	└─ ⋈                          ← only when >1 partition is referenced
//	   ├─ σ(pred) ── scan(part)   ← σ pushed onto the partition holding
//	   ├─ scan(part)                 the predicate's attribute
//	   └─ ...                     ← leaves in canonical layout order
//
// Leaves share the engine's proportional buffer split (each cursor's
// allotment is Buff·rowSize/totalRowSize), so the pipeline's physical
// accounting is the monolithic Scan's, term for term.
type Pipeline struct {
	dev    cost.Device
	query  attrset.Set
	pred   *Pred
	root   Operator
	proj   *Project
	join   *ReconJoin
	leaves []*Scan
	ops    []Operator // bottom-up: leaves (canonical order), σ, ⋈, π
	ran    bool

	// Vector mode (opts.Mode == ExecVector): the same plan shape built from
	// batch-at-a-time operators over the same cursors.
	opts    ExecOptions
	vroot   VecOperator
	vproj   *VecProject
	vjoin   *VecReconJoin
	vleaves []*VecScan
	vsels   []*VecSelect // index-aligned with vleaves; nil where no σ
	vops    []VecOperator
}

// ExecMode selects a pipeline's execution strategy.
type ExecMode string

const (
	// ExecRow is the PR-8 row-at-a-time Volcano path — the oracle every
	// other mode must match bit for bit.
	ExecRow ExecMode = "row"
	// ExecVector is the batch-at-a-time path with optional morsel-parallel
	// leaf scans.
	ExecVector ExecMode = "vector"
)

// ExecOptions tune HOW a pipeline executes; they can never change WHAT it
// computes or measures — every mode shares the cursors, the digest stream,
// and the aggregation order, so results and ScanStats are knob-invariant.
type ExecOptions struct {
	// Mode selects row- or batch-at-a-time execution; empty means row.
	Mode ExecMode
	// BatchSize is the rows per batch in vector mode; 0 uses
	// DefaultBatchSize, bounds are [1, MaxBatchSize].
	BatchSize int
	// Workers bounds how many leaf scans fill concurrently in vector mode;
	// <= 1 runs everything on the calling goroutine, > 1 puts each leaf on
	// its own goroutine behind a Workers-sized fill semaphore.
	Workers int
}

// Normalized validates and defaults exec options. The replay and serving
// layers share it, so a replayed pipeline and the wire-level validation in
// front of it can never disagree about what a legal knob is.
func (o ExecOptions) Normalized() (ExecOptions, error) { return o.normalized() }

// normalized validates and defaults exec options.
func (o ExecOptions) normalized() (ExecOptions, error) {
	switch o.Mode {
	case "", ExecRow:
		o.Mode = ExecRow
	case ExecVector:
	default:
		return o, fmt.Errorf("operator: unknown exec mode %q (%s or %s)", o.Mode, ExecRow, ExecVector)
	}
	if o.BatchSize < 0 || o.BatchSize > MaxBatchSize {
		return o, fmt.Errorf("operator: batch size %d out of range [0, %d]", o.BatchSize, MaxBatchSize)
	}
	if o.BatchSize == 0 {
		o.BatchSize = DefaultBatchSize
	}
	if o.Workers < 0 {
		return o, fmt.Errorf("operator: exec workers %d must be non-negative", o.Workers)
	}
	return o, nil
}

// Result is one pipeline execution's outcome: the rows that flowed out of
// the root, the engine-comparable totals, and the per-operator breakdown.
type Result struct {
	// Rows is the number of result rows the root emitted.
	Rows int64
	// Checksum digests the projected result, layout-independently.
	Checksum uint64
	// Stats aggregates the pipeline in Engine.Scan's terms — for a plan
	// with no predicate it equals the monolithic scan's ScanStats bit for
	// bit (same cursors, same summation order).
	Stats storage.ScanStats
	// Ops breaks the work down per operator, bottom-up (leaves in
	// canonical layout order, then σ, ⋈, π as present).
	Ops []OpStats
	// FillRatios are vector mode's per-batch fill ratios (surviving rows
	// over batch capacity) in stream order; nil in row mode. A telemetry
	// signal only — it never feeds a verdict.
	FillRatios []float64
}

// Build plans query (a projection attribute set) with an optional
// selection predicate over the snapshot, pricing against dev. The device
// must share the snapshot's block geometry; its buffer and mechanical
// constants may differ (what-if execution on one materialized store).
// Attributes outside the table are ignored, like Engine.Scan. A plan
// referencing no attributes is valid and runs to an empty result for
// free. Build executes row-at-a-time; BuildExec selects the mode.
func Build(snap *storage.Snapshot, dev cost.Device, query attrset.Set, pred *Pred) (*Pipeline, error) {
	return BuildExec(snap, dev, query, pred, ExecOptions{})
}

// BuildExec is Build with an execution-mode choice: the same plan shape over
// the same cursors (same proportional buffer split, same canonical leaf
// order), constructed from row or vector operators. The knobs tune only
// wall-clock behavior; every result and every measured quantity is
// mode-, batch-size-, and worker-count-invariant.
func BuildExec(snap *storage.Snapshot, dev cost.Device, query attrset.Set, pred *Pred, opts ExecOptions) (*Pipeline, error) {
	opts, err := opts.normalized()
	if err != nil {
		return nil, err
	}
	if err := dev.Validate(); err != nil {
		return nil, err
	}
	all := snap.Table().AllAttrs()
	query = query.Intersect(all)
	needed := query
	if pred != nil {
		if pred.Match == nil {
			return nil, fmt.Errorf("operator: predicate %q has no Match function", pred.Name)
		}
		if !all.Has(pred.Attr) {
			return nil, fmt.Errorf("operator: predicate attribute %d outside table %s",
				pred.Attr, snap.Table().Name)
		}
		needed = needed.Add(pred.Attr)
	}
	p := &Pipeline{dev: dev, query: query, pred: pred, opts: opts}
	if needed.IsEmpty() {
		return p, nil
	}

	// Referenced partitions in canonical order, and the combined row size
	// that splits the I/O buffer proportionally across their cursors.
	var refs []int
	var totalRowSize int64
	for i := 0; i < snap.NumParts(); i++ {
		if snap.PartAttrs(i).Overlaps(needed) {
			refs = append(refs, i)
			totalRowSize += int64(snap.PartRowSize(i))
		}
	}

	if opts.Mode == ExecVector {
		return buildVector(p, snap, dev, query, pred, refs, totalRowSize)
	}

	children := make([]Operator, 0, len(refs))
	for _, i := range refs {
		cur, err := snap.Cursor(i, dev, totalRowSize)
		if err != nil {
			return nil, err
		}
		leaf := NewScan(cur, dev)
		p.leaves = append(p.leaves, leaf)
		p.ops = append(p.ops, leaf)
		var child Operator = leaf
		if pred != nil && snap.PartAttrs(i).Has(pred.Attr) {
			sel := NewSelect(leaf, *pred)
			p.ops = append(p.ops, sel)
			child = sel
		}
		children = append(children, child)
	}

	root := children[0]
	if len(children) > 1 {
		p.join = NewReconJoin(children)
		p.ops = append(p.ops, p.join)
		root = p.join
	}
	p.proj = NewProject(root, query)
	p.ops = append(p.ops, p.proj)
	p.root = p.proj
	return p, nil
}

// buildVector assembles the batch-at-a-time plan over the same refs and
// cursors the row plan would open: leaves in canonical order, σ directly
// above its leaf, chunk-aligned ⋈, digesting π at the root.
func buildVector(p *Pipeline, snap *storage.Snapshot, dev cost.Device, query attrset.Set, pred *Pred, refs []int, totalRowSize int64) (*Pipeline, error) {
	children := make([]VecOperator, 0, len(refs))
	for _, i := range refs {
		cur, err := snap.Cursor(i, dev, totalRowSize)
		if err != nil {
			return nil, err
		}
		leaf := NewVecScan(cur, dev, p.opts.BatchSize)
		p.vleaves = append(p.vleaves, leaf)
		p.vops = append(p.vops, leaf)
		var child VecOperator = leaf
		var vsel *VecSelect
		if pred != nil && snap.PartAttrs(i).Has(pred.Attr) {
			vsel = NewVecSelect(leaf, *pred)
			p.vops = append(p.vops, vsel)
			child = vsel
		}
		p.vsels = append(p.vsels, vsel)
		children = append(children, child)
	}

	var root VecOperator = children[0]
	if len(children) > 1 {
		p.vjoin = NewVecReconJoin(children)
		p.vops = append(p.vops, p.vjoin)
		root = p.vjoin
	}
	p.vproj = NewVecProject(root, query, p.opts.BatchSize)
	p.vops = append(p.vops, p.vproj)
	p.vroot = p.vproj
	return p, nil
}

// Describe renders the plan bottom-up, one operator per line. The rendering
// is mode-invariant: a vector plan names the same operators in the same
// order as its row twin.
func (p *Pipeline) Describe() string {
	if p.root == nil && p.vroot == nil {
		return "(empty)"
	}
	var names []string
	if p.vroot != nil {
		for _, op := range p.vops {
			names = append(names, op.Name())
		}
	} else {
		for _, op := range p.ops {
			names = append(names, op.Name())
		}
	}
	return strings.Join(names, " → ")
}

// Run drives the pipeline to end of stream and aggregates. Equivalent to
// RunFunc(nil); a pipeline runs once.
func (p *Pipeline) Run() (Result, error) { return p.RunFunc(nil) }

// RunFunc drives the pipeline to end of stream, invoking fn (when
// non-nil) on every result row. Rows passed to fn alias operator-owned
// buffers and are valid only during the call — copy what you keep.
//
// The returned Result aggregates the leaves' physical accounting in the
// engine's own shape: Parts in canonical layout order, simulated time
// summed per partition with the identical seek+scan expression. That
// reuse — not a parallel implementation — is why executed totals equal
// Engine.Scan (and therefore the cost model) bit for bit.
func (p *Pipeline) RunFunc(fn func(r *Row) error) (Result, error) {
	if p.ran {
		return Result{}, fmt.Errorf("operator: pipeline already ran")
	}
	p.ran = true
	if p.opts.Mode == ExecVector {
		return p.runVector(fn)
	}
	var res Result
	if p.root == nil {
		return res, nil
	}
	for {
		r, err := p.root.Next()
		if err != nil {
			return res, err
		}
		if r == nil {
			break
		}
		res.Rows++
		if fn != nil {
			if err := fn(r); err != nil {
				return res, err
			}
		}
	}

	// Aggregate exactly as Engine.Scan does: per-partition measurements in
	// canonical order, simulated time charged with the same per-partition
	// grouping and summation order (floating-point addition is not
	// associative; any other order could differ in the last bit).
	st := &res.Stats
	for _, leaf := range p.leaves {
		ps := leaf.PartStats()
		st.Parts = append(st.Parts, ps)
		st.Seeks += ps.Seeks
		st.BytesRead += ps.BytesRead
		st.CacheLines += ps.CacheLines
		st.SimTime += p.dev.SeekTime*float64(ps.Seeks) +
			float64(ps.BytesRead)/p.dev.ReadBandwidth
	}
	st.Tuples = res.Rows
	if p.join != nil {
		st.ReconJoins = p.join.Stats().ReconJoins
	}
	st.Checksum = p.proj.Checksum()
	res.Checksum = st.Checksum
	for _, op := range p.ops {
		res.Ops = append(res.Ops, op.Stats())
	}
	return res, nil
}

// runVector drives the batch-at-a-time plan to end of stream. With
// opts.Workers > 1 each leaf chain moves onto its own goroutine behind a
// bounded recycled-buffer queue (morsel.go); the consumer tree is re-pointed
// at the feeders, which changes scheduling and nothing else — the same
// cursors are driven through the same stream by exactly one goroutine each.
func (p *Pipeline) runVector(fn func(r *Row) error) (Result, error) {
	var res Result
	if p.vroot == nil {
		return res, nil
	}
	if p.opts.Workers > 1 && len(p.vleaves) > 0 {
		pool := &morselPool{quit: make(chan struct{})}
		sem := make(chan struct{}, p.opts.Workers)
		for i, leaf := range p.vleaves {
			var chain VecOperator = leaf
			if p.vsels[i] != nil {
				chain = p.vsels[i]
			}
			f := &leafFeeder{
				chain: chain,
				out:   make(chan feedMsg, feederRing),
				free:  make(chan *Batch, feederRing),
			}
			for k := 0; k < feederRing; k++ {
				f.free <- newLeafBatch(leaf.c, p.opts.BatchSize)
			}
			pool.start(f, leaf, p.vsels[i], sem)
			if p.vjoin != nil {
				p.vjoin.children[i] = f
			} else {
				p.vproj.child = f
			}
		}
		defer pool.stop()
	}

	var row Row
	row.Attrs = p.query
	qcols := p.query.Attrs()
	for {
		b, err := p.vroot.NextBatch()
		if err != nil {
			return res, err
		}
		if b == nil {
			break
		}
		res.Rows += int64(b.live())
		if fn != nil {
			emit := func(slot int) error {
				row.ID = b.Base + int64(slot)
				for _, a := range qcols {
					row.vals[a] = b.Col(a, slot)
				}
				return fn(&row)
			}
			if b.sel == nil {
				for i := 0; i < b.n; i++ {
					if err := emit(i); err != nil {
						return res, err
					}
				}
			} else {
				for _, s := range b.sel {
					if err := emit(int(s)); err != nil {
						return res, err
					}
				}
			}
		}
	}

	// The identical aggregation the row path performs: per-partition
	// measurements in canonical order, simulated time charged with the same
	// per-partition grouping and summation order.
	st := &res.Stats
	for _, leaf := range p.vleaves {
		ps := leaf.PartStats()
		st.Parts = append(st.Parts, ps)
		st.Seeks += ps.Seeks
		st.BytesRead += ps.BytesRead
		st.CacheLines += ps.CacheLines
		st.SimTime += p.dev.SeekTime*float64(ps.Seeks) +
			float64(ps.BytesRead)/p.dev.ReadBandwidth
	}
	st.Tuples = res.Rows
	if p.vjoin != nil {
		st.ReconJoins = p.vjoin.Stats().ReconJoins
	}
	st.Checksum = p.vproj.Checksum()
	res.Checksum = st.Checksum
	for _, op := range p.vops {
		res.Ops = append(res.Ops, op.Stats())
	}
	res.FillRatios = p.vproj.FillRatios()
	return res, nil
}

// MeasuredSeconds converts executed totals to the seconds dev's pricing
// discipline charges: SimTime (seek+scan, already summed per partition)
// for block devices, cache-line transfers times miss latency — summed in
// the same canonical partition order the cache model sums its terms — for
// cache devices.
func MeasuredSeconds(dev cost.Device, st storage.ScanStats) float64 {
	if dev.Pricing == cost.PricingCache {
		var t float64
		for _, ps := range st.Parts {
			t += float64(ps.CacheLines) * dev.MissLatency
		}
		return t
	}
	return st.SimTime
}
