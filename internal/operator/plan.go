package operator

import (
	"fmt"
	"strings"

	"knives/internal/attrset"
	"knives/internal/cost"
	"knives/internal/storage"
)

// Pipeline is a built σ/π/⋈ plan over one pinned epoch, ready to run once.
// Build shapes it bottom-up from the layout:
//
//	π(query)                      ← digest + projection, always the root
//	└─ ⋈                          ← only when >1 partition is referenced
//	   ├─ σ(pred) ── scan(part)   ← σ pushed onto the partition holding
//	   ├─ scan(part)                 the predicate's attribute
//	   └─ ...                     ← leaves in canonical layout order
//
// Leaves share the engine's proportional buffer split (each cursor's
// allotment is Buff·rowSize/totalRowSize), so the pipeline's physical
// accounting is the monolithic Scan's, term for term.
type Pipeline struct {
	dev    cost.Device
	query  attrset.Set
	pred   *Pred
	root   Operator
	proj   *Project
	join   *ReconJoin
	leaves []*Scan
	ops    []Operator // bottom-up: leaves (canonical order), σ, ⋈, π
	ran    bool
}

// Result is one pipeline execution's outcome: the rows that flowed out of
// the root, the engine-comparable totals, and the per-operator breakdown.
type Result struct {
	// Rows is the number of result rows the root emitted.
	Rows int64
	// Checksum digests the projected result, layout-independently.
	Checksum uint64
	// Stats aggregates the pipeline in Engine.Scan's terms — for a plan
	// with no predicate it equals the monolithic scan's ScanStats bit for
	// bit (same cursors, same summation order).
	Stats storage.ScanStats
	// Ops breaks the work down per operator, bottom-up (leaves in
	// canonical layout order, then σ, ⋈, π as present).
	Ops []OpStats
}

// Build plans query (a projection attribute set) with an optional
// selection predicate over the snapshot, pricing against dev. The device
// must share the snapshot's block geometry; its buffer and mechanical
// constants may differ (what-if execution on one materialized store).
// Attributes outside the table are ignored, like Engine.Scan. A plan
// referencing no attributes is valid and runs to an empty result for
// free.
func Build(snap *storage.Snapshot, dev cost.Device, query attrset.Set, pred *Pred) (*Pipeline, error) {
	if err := dev.Validate(); err != nil {
		return nil, err
	}
	all := snap.Table().AllAttrs()
	query = query.Intersect(all)
	needed := query
	if pred != nil {
		if pred.Match == nil {
			return nil, fmt.Errorf("operator: predicate %q has no Match function", pred.Name)
		}
		if !all.Has(pred.Attr) {
			return nil, fmt.Errorf("operator: predicate attribute %d outside table %s",
				pred.Attr, snap.Table().Name)
		}
		needed = needed.Add(pred.Attr)
	}
	p := &Pipeline{dev: dev, query: query, pred: pred}
	if needed.IsEmpty() {
		return p, nil
	}

	// Referenced partitions in canonical order, and the combined row size
	// that splits the I/O buffer proportionally across their cursors.
	var refs []int
	var totalRowSize int64
	for i := 0; i < snap.NumParts(); i++ {
		if snap.PartAttrs(i).Overlaps(needed) {
			refs = append(refs, i)
			totalRowSize += int64(snap.PartRowSize(i))
		}
	}

	children := make([]Operator, 0, len(refs))
	for _, i := range refs {
		cur, err := snap.Cursor(i, dev, totalRowSize)
		if err != nil {
			return nil, err
		}
		leaf := NewScan(cur, dev)
		p.leaves = append(p.leaves, leaf)
		p.ops = append(p.ops, leaf)
		var child Operator = leaf
		if pred != nil && snap.PartAttrs(i).Has(pred.Attr) {
			sel := NewSelect(leaf, *pred)
			p.ops = append(p.ops, sel)
			child = sel
		}
		children = append(children, child)
	}

	root := children[0]
	if len(children) > 1 {
		p.join = NewReconJoin(children)
		p.ops = append(p.ops, p.join)
		root = p.join
	}
	p.proj = NewProject(root, query)
	p.ops = append(p.ops, p.proj)
	p.root = p.proj
	return p, nil
}

// Describe renders the plan bottom-up, one operator per line.
func (p *Pipeline) Describe() string {
	if p.root == nil {
		return "(empty)"
	}
	names := make([]string, len(p.ops))
	for i, op := range p.ops {
		names[i] = op.Name()
	}
	return strings.Join(names, " → ")
}

// Run drives the pipeline to end of stream and aggregates. Equivalent to
// RunFunc(nil); a pipeline runs once.
func (p *Pipeline) Run() (Result, error) { return p.RunFunc(nil) }

// RunFunc drives the pipeline to end of stream, invoking fn (when
// non-nil) on every result row. Rows passed to fn alias operator-owned
// buffers and are valid only during the call — copy what you keep.
//
// The returned Result aggregates the leaves' physical accounting in the
// engine's own shape: Parts in canonical layout order, simulated time
// summed per partition with the identical seek+scan expression. That
// reuse — not a parallel implementation — is why executed totals equal
// Engine.Scan (and therefore the cost model) bit for bit.
func (p *Pipeline) RunFunc(fn func(r *Row) error) (Result, error) {
	if p.ran {
		return Result{}, fmt.Errorf("operator: pipeline already ran")
	}
	p.ran = true
	var res Result
	if p.root == nil {
		return res, nil
	}
	for {
		r, err := p.root.Next()
		if err != nil {
			return res, err
		}
		if r == nil {
			break
		}
		res.Rows++
		if fn != nil {
			if err := fn(r); err != nil {
				return res, err
			}
		}
	}

	// Aggregate exactly as Engine.Scan does: per-partition measurements in
	// canonical order, simulated time charged with the same per-partition
	// grouping and summation order (floating-point addition is not
	// associative; any other order could differ in the last bit).
	st := &res.Stats
	for _, leaf := range p.leaves {
		ps := leaf.PartStats()
		st.Parts = append(st.Parts, ps)
		st.Seeks += ps.Seeks
		st.BytesRead += ps.BytesRead
		st.CacheLines += ps.CacheLines
		st.SimTime += p.dev.SeekTime*float64(ps.Seeks) +
			float64(ps.BytesRead)/p.dev.ReadBandwidth
	}
	st.Tuples = res.Rows
	if p.join != nil {
		st.ReconJoins = p.join.Stats().ReconJoins
	}
	st.Checksum = p.proj.Checksum()
	res.Checksum = st.Checksum
	for _, op := range p.ops {
		res.Ops = append(res.Ops, op.Stats())
	}
	return res, nil
}

// MeasuredSeconds converts executed totals to the seconds dev's pricing
// discipline charges: SimTime (seek+scan, already summed per partition)
// for block devices, cache-line transfers times miss latency — summed in
// the same canonical partition order the cache model sums its terms — for
// cache devices.
func MeasuredSeconds(dev cost.Device, st storage.ScanStats) float64 {
	if dev.Pricing == cost.PricingCache {
		var t float64
		for _, ps := range st.Parts {
			t += float64(ps.CacheLines) * dev.MissLatency
		}
		return t
	}
	return st.SimTime
}
