package operator

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"knives/internal/attrset"
	"knives/internal/cost"
	"knives/internal/storage"
)

// vecBatchSweep is the batch-size sweep every differential leg runs: a
// degenerate 1-row batch, a prime that never divides the page row count, a
// small power of two, a big batch, and one larger than the whole table.
func vecBatchSweep(rows int64) []int {
	return []int{1, 7, 64, 4096, int(rows) + 1}
}

// resultsEqual compares two pipeline Results at zero tolerance, ignoring
// FillRatios (a vector-only telemetry signal, deliberately absent in row
// mode).
func resultsEqual(t *testing.T, label string, got, want Result) {
	t.Helper()
	if got.Rows != want.Rows || got.Checksum != want.Checksum {
		t.Errorf("%s: rows/checksum %d/%x, want %d/%x", label, got.Rows, got.Checksum, want.Rows, want.Checksum)
	}
	if !reflect.DeepEqual(got.Stats, want.Stats) {
		t.Errorf("%s: stats diverge\n got %+v\nwant %+v", label, got.Stats, want.Stats)
	}
	if !reflect.DeepEqual(got.Ops, want.Ops) {
		t.Errorf("%s: per-operator stats diverge\n got %+v\nwant %+v", label, got.Ops, want.Ops)
	}
}

// TestVectorEqualsRowOracle is the tentpole contract: for every layout x
// device x query x predicate and every swept batch size, the vectorized
// pipeline's Result — rows, checksum, ScanStats including the per-partition
// breakdown and SimTime, and per-operator OpStats — equals the row oracle's
// bit for bit, and (predicate-free) Engine.Scan's.
func TestVectorEqualsRowOracle(t *testing.T) {
	const rows = 533
	queries := []attrset.Set{
		attrset.Of(0, 2),
		attrset.Of(1, 3, 5),
		attrset.All(6),
	}
	preds := []*Pred{nil}
	for _, bound := range []uint32{0, storage.DateDomain / 3, storage.DateDomain * 2} {
		p := U32Less(1, bound)
		preds = append(preds, &p)
	}
	for _, dev := range []cost.Device{testDevice(), testCacheDevice()} {
		for lname, parts := range testLayouts {
			e := loadEngine(t, testTable(t, rows), parts, dev, 7)
			snap := e.Snapshot()
			for qi, q := range queries {
				for pi, pred := range preds {
					t.Run(fmt.Sprintf("%s/%s/q%d/p%d", dev.Name, lname, qi, pi), func(t *testing.T) {
						rowPipe, err := Build(snap, dev, q, pred)
						if err != nil {
							t.Fatal(err)
						}
						want, err := rowPipe.Run()
						if err != nil {
							t.Fatal(err)
						}
						if pred == nil {
							scan, err := e.Scan(q)
							if err != nil {
								t.Fatal(err)
							}
							if !reflect.DeepEqual(want.Stats, scan) {
								t.Fatalf("row oracle itself diverges from Engine.Scan")
							}
						}
						for _, bs := range vecBatchSweep(rows) {
							vec, err := BuildExec(snap, dev, q, pred, ExecOptions{Mode: ExecVector, BatchSize: bs})
							if err != nil {
								t.Fatal(err)
							}
							got, err := vec.Run()
							if err != nil {
								t.Fatal(err)
							}
							resultsEqual(t, fmt.Sprintf("batch=%d", bs), got, want)
							if len(got.FillRatios) == 0 {
								t.Errorf("batch=%d: vector run reported no fill ratios", bs)
							}
							for _, fr := range got.FillRatios {
								if fr < 0 || fr > 1 {
									t.Errorf("batch=%d: fill ratio %g outside [0,1]", bs, fr)
								}
							}
						}
					})
				}
			}
		}
	}
}

// TestVectorMorselWorkerInvariance pins the morsel path's defining property:
// the worker count changes scheduling and nothing else. Every worker count
// (including over-provisioned ones) must reproduce the single-goroutine
// vector run and the row oracle exactly.
func TestVectorMorselWorkerInvariance(t *testing.T) {
	const rows = 533
	pred := U32Less(1, storage.DateDomain/3)
	for lname, parts := range testLayouts {
		t.Run(lname, func(t *testing.T) {
			dev := testDevice()
			e := loadEngine(t, testTable(t, rows), parts, dev, 13)
			snap := e.Snapshot()
			q := attrset.Of(0, 1, 5)

			rowPipe, err := Build(snap, dev, q, &pred)
			if err != nil {
				t.Fatal(err)
			}
			want, err := rowPipe.Run()
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{0, 1, 2, 4, 8, 33} {
				vec, err := BuildExec(snap, dev, q, &pred,
					ExecOptions{Mode: ExecVector, BatchSize: 64, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				got, err := vec.Run()
				if err != nil {
					t.Fatal(err)
				}
				resultsEqual(t, fmt.Sprintf("workers=%d", workers), got, want)
			}
		})
	}
}

// TestVectorRowSynthesis checks RunFunc in vector mode hands fn the same
// row stream — IDs, attribute sets, and column bytes in order — as the row
// oracle.
func TestVectorRowSynthesis(t *testing.T) {
	const rows = 257
	type gotRow struct {
		id   int64
		vals []byte
	}
	collect := func(t *testing.T, pipe *Pipeline, q attrset.Set) []gotRow {
		t.Helper()
		var out []gotRow
		qcols := q.Attrs()
		_, err := pipe.RunFunc(func(r *Row) error {
			g := gotRow{id: r.ID}
			if r.Attrs != q {
				t.Fatalf("row attrs %v, want %v", r.Attrs, q)
			}
			for _, a := range qcols {
				g.vals = append(g.vals, r.Col(a)...)
			}
			out = append(out, g)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	pred := U32Less(1, storage.DateDomain/2)
	for _, workers := range []int{0, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			dev := testDevice()
			e := loadEngine(t, testTable(t, rows), testLayouts["grouped"], dev, 3)
			snap := e.Snapshot()
			q := attrset.Of(0, 1, 3)

			rowPipe, err := Build(snap, dev, q, &pred)
			if err != nil {
				t.Fatal(err)
			}
			want := collect(t, rowPipe, q)

			vec, err := BuildExec(snap, dev, q, &pred,
				ExecOptions{Mode: ExecVector, BatchSize: 31, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			got := collect(t, vec, q)
			if len(got) != len(want) {
				t.Fatalf("vector emitted %d rows, row oracle %d", len(got), len(want))
			}
			for i := range got {
				if got[i].id != want[i].id || !bytes.Equal(got[i].vals, want[i].vals) {
					t.Fatalf("row %d: vector id=%d % x, oracle id=%d % x",
						i, got[i].id, got[i].vals, want[i].id, want[i].vals)
				}
			}
		})
	}
}

// TestExecOptionsValidation pins BuildExec's knob validation.
func TestExecOptionsValidation(t *testing.T) {
	dev := testDevice()
	e := loadEngine(t, testTable(t, 50), testLayouts["row"], dev, 1)
	snap := e.Snapshot()
	q := attrset.Of(0)

	bad := []ExecOptions{
		{Mode: "columnar"},
		{Mode: ExecVector, BatchSize: -1},
		{Mode: ExecVector, BatchSize: MaxBatchSize + 1},
		{Mode: ExecVector, Workers: -1},
	}
	for _, opts := range bad {
		if _, err := BuildExec(snap, dev, q, nil, opts); err == nil {
			t.Errorf("BuildExec accepted %+v", opts)
		}
	}
	// Zero values default instead of erroring.
	pipe, err := BuildExec(snap, dev, q, nil, ExecOptions{Mode: ExecVector})
	if err != nil {
		t.Fatal(err)
	}
	if pipe.opts.BatchSize != DefaultBatchSize {
		t.Errorf("zero batch size became %d, want %d", pipe.opts.BatchSize, DefaultBatchSize)
	}
	if _, err := BuildExec(snap, dev, q, nil, ExecOptions{}); err != nil {
		t.Errorf("empty options rejected: %v", err)
	}
}

// TestVectorLifecycle covers the vector mode's plumbing corners: Describe
// parity with the row plan, the run-once guard, empty plans, and callback
// error propagation through both the sync and morsel paths.
func TestVectorLifecycle(t *testing.T) {
	dev := testDevice()
	e := loadEngine(t, testTable(t, 150), testLayouts["grouped"], dev, 1)
	snap := e.Snapshot()
	q := attrset.Of(0, 1)

	rowPipe, err := Build(snap, dev, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	vec, err := BuildExec(snap, dev, q, nil, ExecOptions{Mode: ExecVector})
	if err != nil {
		t.Fatal(err)
	}
	if rd, vd := rowPipe.Describe(), vec.Describe(); rd != vd {
		t.Errorf("Describe diverges between modes: row %q vector %q", rd, vd)
	}
	if _, err := vec.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := vec.Run(); err == nil {
		t.Error("second vector Run accepted")
	}

	// Empty plan in vector mode: empty result, no ops.
	empty, err := BuildExec(snap, dev, attrset.Of(), nil, ExecOptions{Mode: ExecVector})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := empty.Run(); err != nil || res.Rows != 0 || len(res.Ops) != 0 {
		t.Errorf("empty vector plan: %+v, %v", res, err)
	}

	// A callback error aborts the run — sync and morsel.
	wantErr := fmt.Errorf("stop")
	for _, workers := range []int{0, 4} {
		pipe, err := BuildExec(snap, dev, q, nil, ExecOptions{Mode: ExecVector, BatchSize: 8, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pipe.RunFunc(func(*Row) error { return wantErr }); err != wantErr {
			t.Errorf("workers=%d: callback error not propagated: %v", workers, err)
		}
	}
}

// TestBatchAccessors covers the Batch surface operators outside this
// package see.
func TestBatchAccessors(t *testing.T) {
	b := &Batch{n: 4, attrs: attrset.Of(2)}
	b.width[2] = 2
	b.cols[2] = []byte{0, 1, 2, 3, 4, 5, 6, 7}
	if b.Len() != 4 {
		t.Errorf("Len = %d", b.Len())
	}
	if b.Attrs() != attrset.Of(2) {
		t.Errorf("Attrs = %v", b.Attrs())
	}
	if got := b.Col(2, 1); !bytes.Equal(got, []byte{2, 3}) {
		t.Errorf("Col(2,1) = %v", got)
	}
	if b.Col(3, 0) != nil {
		t.Error("Col on absent attr not nil")
	}
	if b.Sel() != nil || b.live() != 4 {
		t.Errorf("nil-sel batch: sel %v live %d", b.Sel(), b.live())
	}
	b.sel = []int32{1, 3}
	if b.live() != 2 || len(b.Sel()) != 2 {
		t.Errorf("selected batch: sel %v live %d", b.Sel(), b.live())
	}
}

// TestIntersectSel pins the selection-vector intersection (nil = all).
func TestIntersectSel(t *testing.T) {
	var buf []int32
	if got := intersectSel(nil, nil, &buf); got != nil {
		t.Errorf("nil∩nil = %v", got)
	}
	a := []int32{0, 2, 5}
	if got := intersectSel(a, nil, &buf); !reflect.DeepEqual(got, a) {
		t.Errorf("a∩nil = %v", got)
	}
	if got := intersectSel(nil, a, &buf); !reflect.DeepEqual(got, a) {
		t.Errorf("nil∩a = %v", got)
	}
	b := []int32{2, 3, 5, 7}
	if got := intersectSel(a, b, &buf); !reflect.DeepEqual(got, []int32{2, 5}) {
		t.Errorf("a∩b = %v", got)
	}
	if got := intersectSel([]int32{1}, []int32{2}, &buf); len(got) != 0 {
		t.Errorf("disjoint = %v", got)
	}
}
