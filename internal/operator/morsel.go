package operator

import "sync"

// Morsel-style intra-query parallelism: each leaf scan runs on its own
// goroutine, filling batches from its cursor and handing them downstream
// through a bounded queue whose buffers recycle in a small ring — the
// consumer returns each batch before pulling the next, so a pipeline holds
// a constant number of batch buffers no matter how many rows flow. A shared
// semaphore bounds how many leaves fill concurrently (ExecOptions.Workers),
// and the σ runs on the leaf's goroutine, next to the fill it filters.
//
// Parallelism changes NO reported number: every cursor is still driven
// sequentially through all its rows by exactly one goroutine, the join
// consumes chunks in lockstep on the run goroutine, and the aggregation
// reads operator state only after every feeder has exited.

// feederRing is the per-leaf queue depth: one batch in flight downstream,
// one being filled.
const feederRing = 2

// feedMsg is one queue element: a filled batch, or the fill error that
// ended the stream.
type feedMsg struct {
	b   *Batch
	err error
}

// leafFeeder is the consumer-side view of one leaf goroutine: a VecOperator
// whose NextBatch returns the previously consumed batch to the ring and
// pulls the next filled one. Stats and Name delegate to the chain running
// on the producer goroutine — callers read them only after the run
// completes (the closed channel is the happens-before edge).
type leafFeeder struct {
	chain VecOperator
	out   chan feedMsg
	free  chan *Batch
	last  *Batch
	done  bool
}

// NextBatch recycles the last batch and pulls the next.
func (f *leafFeeder) NextBatch() (*Batch, error) {
	if f.done {
		return nil, nil
	}
	if f.last != nil {
		// The ring holds at most feederRing batches and the consumer returns
		// one before pulling the next, so this send never blocks for long —
		// but it must be a blocking send: dropping a buffer would starve the
		// producer forever.
		f.free <- f.last
		f.last = nil
	}
	m, ok := <-f.out
	if !ok {
		f.done = true
		return nil, nil
	}
	if m.err != nil {
		f.done = true
		return nil, m.err
	}
	f.last = m.b
	return m.b, nil
}

// Stats delegates to the leaf chain's tail (σ when present, else the scan).
func (f *leafFeeder) Stats() OpStats { return f.chain.Stats() }

// Name delegates to the leaf chain's tail.
func (f *leafFeeder) Name() string { return f.chain.Name() }

// morselPool runs one goroutine per leaf, bounded by a shared fill
// semaphore, with a quit channel for error teardown.
type morselPool struct {
	quit chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// start launches one producer for scan (+ optional σ) feeding f.
func (mp *morselPool) start(f *leafFeeder, scan *VecScan, sel *VecSelect, sem chan struct{}) {
	mp.wg.Add(1)
	go func() {
		defer mp.wg.Done()
		defer close(f.out)
		for {
			var b *Batch
			select {
			case b = <-f.free:
			case <-mp.quit:
				return
			}
			select {
			case sem <- struct{}{}:
			case <-mp.quit:
				return
			}
			err := scan.FillInto(b)
			if err == nil && b.n > 0 && sel != nil {
				sel.Apply(b)
			}
			<-sem
			if err != nil {
				select {
				case f.out <- feedMsg{err: err}:
				case <-mp.quit:
				}
				return
			}
			if b.n == 0 {
				return
			}
			select {
			case f.out <- feedMsg{b: b}:
			case <-mp.quit:
				return
			}
		}
	}()
}

// stop tears the pool down (idempotent) and waits for every producer to
// exit, establishing the happens-before edge the post-run stats reads need.
func (mp *morselPool) stop() {
	mp.once.Do(func() { close(mp.quit) })
	mp.wg.Wait()
}
