package operator

import (
	"encoding/binary"
	"fmt"
	"reflect"
	"testing"

	"knives/internal/attrset"
	"knives/internal/cost"
	"knives/internal/partition"
	"knives/internal/schema"
	"knives/internal/storage"
)

// testDevice is a tiny block device that forces many pages and buffer
// refills even on small test tables: 64-byte pages, a 256-byte buffer.
func testDevice() cost.Device {
	return cost.Device{
		Name: "tiny", Pricing: cost.PricingBlock,
		BlockSize: 64, BufferSize: 256,
		ReadBandwidth: 1e6, SeekTime: 1e-3,
		CacheLineSize: 16, MissLatency: 1e-7,
	}
}

// testCacheDevice shares the block geometry (so one materialized store
// serves both) but prices cache-line transfers.
func testCacheDevice() cost.Device {
	d := testDevice()
	d.Name = "tinymm"
	d.Pricing = cost.PricingCache
	return d
}

func testTable(t *testing.T, rows int64) *schema.Table {
	t.Helper()
	tbl, err := schema.NewTable("optest", rows, []schema.Column{
		{Name: "a0", Kind: schema.KindInt, Size: 4},
		{Name: "a1", Kind: schema.KindDate, Size: 4},
		{Name: "a2", Kind: schema.KindDecimal, Size: 8},
		{Name: "a3", Kind: schema.KindChar, Size: 6},
		{Name: "a4", Kind: schema.KindInt, Size: 4},
		{Name: "a5", Kind: schema.KindVarchar, Size: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func loadEngine(t *testing.T, tbl *schema.Table, parts []attrset.Set, dev cost.Device, seed int64) *storage.Engine {
	t.Helper()
	layout, err := partition.New(tbl, parts)
	if err != nil {
		t.Fatal(err)
	}
	e, err := storage.NewEngine(layout, dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	if err := e.Load(storage.NewGenerator(seed), tbl.Rows); err != nil {
		t.Fatal(err)
	}
	return e
}

var testLayouts = map[string][]attrset.Set{
	"row":     {attrset.All(6)},
	"column":  {attrset.Of(0), attrset.Of(1), attrset.Of(2), attrset.Of(3), attrset.Of(4), attrset.Of(5)},
	"grouped": {attrset.Of(0, 2), attrset.Of(1, 4), attrset.Of(3, 5)},
}

// TestPipelineEqualsScan is the core contract: a pipeline with no
// predicate must reproduce the monolithic Engine.Scan's ScanStats — every
// field, including the per-partition breakdown, simulated time, and
// checksum — bit for bit, for every layout x query x device.
func TestPipelineEqualsScan(t *testing.T) {
	queries := []attrset.Set{
		attrset.Of(0),
		attrset.Of(0, 2),
		attrset.Of(1, 3, 5),
		attrset.All(6),
		attrset.Of(), // empty: both sides do nothing
	}
	for _, dev := range []cost.Device{testDevice(), testCacheDevice()} {
		for lname, parts := range testLayouts {
			e := loadEngine(t, testTable(t, 533), parts, dev, 7)
			snap := e.Snapshot()
			for qi, q := range queries {
				t.Run(fmt.Sprintf("%s/%s/q%d", dev.Name, lname, qi), func(t *testing.T) {
					want, err := e.Scan(q)
					if err != nil {
						t.Fatal(err)
					}
					pipe, err := Build(snap, dev, q, nil)
					if err != nil {
						t.Fatal(err)
					}
					res, err := pipe.Run()
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(res.Stats, want) {
						t.Errorf("pipeline stats diverge from Engine.Scan\n got %+v\nwant %+v", res.Stats, want)
					}
					if res.Rows != want.Tuples || res.Checksum != want.Checksum {
						t.Errorf("rows/checksum: got %d/%x want %d/%x", res.Rows, res.Checksum, want.Tuples, want.Checksum)
					}
					if len(res.Ops) == 0 && !q.IsEmpty() {
						t.Errorf("no per-operator stats for non-empty query")
					}
					// Leaf SimTime terms must sum to the total (same
					// expression per leaf, same order).
					var leafSum float64
					for _, op := range res.Ops {
						if op.Op == "scan" {
							leafSum += op.SimTime
						}
					}
					if dev.Pricing == cost.PricingBlock && leafSum != res.Stats.SimTime {
						t.Errorf("leaf SimTime sum %g != pipeline SimTime %g", leafSum, res.Stats.SimTime)
					}
					if dev.Pricing == cost.PricingCache && leafSum != MeasuredSeconds(dev, res.Stats) {
						t.Errorf("leaf cache-time sum %g != measured seconds %g", leafSum, MeasuredSeconds(dev, res.Stats))
					}
				})
			}
		}
	}
}

// TestWhatIfDevice pins the one-store-many-devices property: a pipeline
// accounting against a different device (same block geometry) over one
// materialized store must equal a scan on an engine built with that device
// outright.
func TestWhatIfDevice(t *testing.T) {
	tbl := testTable(t, 300)
	parts := testLayouts["grouped"]
	base := testDevice()
	whatif := testDevice()
	whatif.Name = "fast"
	whatif.SeekTime = 1e-5
	whatif.ReadBandwidth = 5e7

	e := loadEngine(t, tbl, parts, base, 3)
	q := attrset.Of(0, 1, 3)
	pipe, err := Build(e.Snapshot(), whatif, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pipe.Run()
	if err != nil {
		t.Fatal(err)
	}

	oracle := loadEngine(t, tbl, parts, whatif, 3)
	want, err := oracle.Scan(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Stats, want) {
		t.Errorf("what-if stats diverge\n got %+v\nwant %+v", res.Stats, want)
	}
}

// selOracle counts and identifies the rows a U32Less predicate keeps,
// straight from the deterministic generator.
func selOracle(tbl *schema.Table, seed int64, attr int, bound uint32) []int64 {
	gen := storage.NewGenerator(seed)
	buf := make([]byte, tbl.Columns[attr].Size)
	var ids []int64
	for r := int64(0); r < tbl.Rows; r++ {
		gen.Value(tbl.Columns[attr], r, buf)
		if len(buf) >= 4 && binary.LittleEndian.Uint32(buf) < bound {
			ids = append(ids, r)
		}
	}
	return ids
}

// TestSelectionPushdown checks σ semantics and the common-granularity
// invariant: the selected rows match a generator oracle, while the
// physical reads equal the FULL scan of (query ∪ {pred attr}) — selections
// change what comes out, never what is read.
func TestSelectionPushdown(t *testing.T) {
	tbl := testTable(t, 533)
	const seed = 11
	for lname, parts := range testLayouts {
		for _, bound := range []uint32{0, storage.DateDomain / 3, storage.DateDomain * 2} {
			t.Run(fmt.Sprintf("%s/bound%d", lname, bound), func(t *testing.T) {
				dev := testDevice()
				e := loadEngine(t, tbl, parts, dev, seed)
				q := attrset.Of(0, 1, 5) // includes the pred attr (a1)
				pred := U32Less(1, bound)
				pipe, err := Build(e.Snapshot(), dev, q, &pred)
				if err != nil {
					t.Fatal(err)
				}
				var gotIDs []int64
				res, err := pipe.RunFunc(func(r *Row) error {
					gotIDs = append(gotIDs, r.ID)
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				wantIDs := selOracle(tbl, seed, 1, bound)
				if len(gotIDs) != len(wantIDs) {
					t.Fatalf("selected %d rows, oracle says %d", len(gotIDs), len(wantIDs))
				}
				for i := range gotIDs {
					if gotIDs[i] != wantIDs[i] {
						t.Fatalf("row %d: selected ID %d, oracle %d", i, gotIDs[i], wantIDs[i])
					}
				}
				// Physical reads equal the full scan of the referenced set.
				want, err := e.Scan(q.Add(1))
				if err != nil {
					t.Fatal(err)
				}
				if res.Stats.Seeks != want.Seeks || res.Stats.BytesRead != want.BytesRead ||
					res.Stats.SimTime != want.SimTime || !reflect.DeepEqual(res.Stats.Parts, want.Parts) {
					t.Errorf("selective plan's physical reads diverge from full scan\n got %+v\nwant %+v", res.Stats, want)
				}
				if bound >= storage.DateDomain {
					// Selects everything: the result digest must equal the
					// monolithic scan's over the same attributes.
					full, err := e.Scan(q)
					if err != nil {
						t.Fatal(err)
					}
					if res.Checksum != full.Checksum || res.Rows != full.Tuples {
						t.Errorf("all-pass selection: checksum/rows %x/%d, scan %x/%d",
							res.Checksum, res.Rows, full.Checksum, full.Tuples)
					}
				}
				if bound == 0 && res.Rows != 0 {
					t.Errorf("none-pass selection returned %d rows", res.Rows)
				}
			})
		}
	}
}

// TestJoinOvershootAlignment drives the merge join's realignment path
// directly: two σ children with disjoint match sets force each side to
// overshoot the other's candidate repeatedly, and the join must still
// terminate having read both partitions in full.
func TestJoinOvershootAlignment(t *testing.T) {
	tbl := testTable(t, 200)
	dev := testDevice()
	e := loadEngine(t, tbl, []attrset.Set{attrset.Of(0, 1), attrset.Of(2, 3, 4, 5)}, dev, 5)
	snap := e.Snapshot()
	total := int64(snap.PartRowSize(0) + snap.PartRowSize(1))
	c0, err := snap.Cursor(0, dev, total)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := snap.Cursor(1, dev, total)
	if err != nil {
		t.Fatal(err)
	}
	// a0 is near-sequential (row + jitter<7): "a0 < 50" keeps roughly the
	// first 50 rows; "a4 >= bound" keeps a different, interleaved set.
	s0 := NewSelect(NewScan(c0, dev), U32Less(0, 50))
	s1 := NewSelect(NewScan(c1, dev), U32GreaterEq(4, 20))
	join := NewReconJoin([]Operator{s0, s1})
	proj := NewProject(join, attrset.Of(0, 4))
	rows := 0
	for {
		r, err := proj.Next()
		if err != nil {
			t.Fatal(err)
		}
		if r == nil {
			break
		}
		if r.Col(0) == nil || r.Col(4) == nil {
			t.Fatalf("joined row missing a side")
		}
		rows++
	}
	// Both partitions must have been drained in full regardless of the
	// predicates (the common-granularity rule).
	for i, c := range []*storage.PartCursor{c0, c1} {
		ps := c.Stats()
		full, err := e.Scan(attrset.All(6))
		if err != nil {
			t.Fatal(err)
		}
		if ps.BytesRead != full.Parts[i].BytesRead {
			t.Errorf("partition %d read %d bytes, full scan reads %d", i, ps.BytesRead, full.Parts[i].BytesRead)
		}
	}
	if js := join.Stats(); js.RowsOut != int64(rows) || js.ReconJoins != int64(rows) {
		t.Errorf("join stats %+v inconsistent with %d emitted rows", js, rows)
	}
	if proj.Stats().RowsIn != int64(rows) {
		t.Errorf("project saw %d rows, want %d", proj.Stats().RowsIn, rows)
	}
}

func TestBuildErrors(t *testing.T) {
	tbl := testTable(t, 50)
	dev := testDevice()
	e := loadEngine(t, tbl, testLayouts["grouped"], dev, 1)
	snap := e.Snapshot()

	if _, err := Build(snap, cost.Device{}, attrset.Of(0), nil); err == nil {
		t.Error("invalid device accepted")
	}
	bad := dev
	bad.BlockSize = 128
	if _, err := Build(snap, bad, attrset.Of(0), nil); err == nil {
		t.Error("mismatched block size accepted")
	}
	noMatch := Pred{Attr: 0, Name: "broken"}
	if _, err := Build(snap, dev, attrset.Of(0), &noMatch); err == nil {
		t.Error("predicate without Match accepted")
	}
	outside := U32Less(63, 1)
	if _, err := Build(snap, dev, attrset.Of(0), &outside); err == nil {
		t.Error("predicate outside the table accepted")
	}
}

func TestPipelineLifecycle(t *testing.T) {
	tbl := testTable(t, 50)
	dev := testDevice()
	e := loadEngine(t, tbl, testLayouts["row"], dev, 1)

	pipe, err := Build(e.Snapshot(), dev, attrset.Of(0, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := pipe.Describe(); d == "" || d == "(empty)" {
		t.Errorf("Describe: %q", d)
	}
	if _, err := pipe.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := pipe.Run(); err == nil {
		t.Error("second Run accepted")
	}

	// Empty plan: runs to an empty result, describes as empty.
	empty, err := Build(e.Snapshot(), dev, attrset.Of(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := empty.Describe(); d != "(empty)" {
		t.Errorf("empty Describe: %q", d)
	}
	res, err := empty.Run()
	if err != nil || res.Rows != 0 || len(res.Ops) != 0 {
		t.Errorf("empty plan: %+v, %v", res, err)
	}

	// A callback error aborts the run.
	pipe2, err := Build(e.Snapshot(), dev, attrset.Of(0), nil)
	if err != nil {
		t.Fatal(err)
	}
	wantErr := fmt.Errorf("stop")
	if _, err := pipe2.RunFunc(func(*Row) error { return wantErr }); err != wantErr {
		t.Errorf("callback error not propagated: %v", err)
	}
}

func TestPreds(t *testing.T) {
	le4 := make([]byte, 4)
	binary.LittleEndian.PutUint32(le4, 100)
	le8 := make([]byte, 8)
	binary.LittleEndian.PutUint64(le8, 5000)

	if p := U32Less(0, 101); !p.Match(le4) {
		t.Error("U32Less(101) rejects 100")
	}
	if p := U32Less(0, 100); p.Match(le4) {
		t.Error("U32Less(100) accepts 100")
	}
	if p := U32GreaterEq(0, 100); !p.Match(le4) {
		t.Error("U32GreaterEq(100) rejects 100")
	}
	if p := U32GreaterEq(0, 101); p.Match(le4) {
		t.Error("U32GreaterEq(101) accepts 100")
	}
	if p := U64Less(0, 5001); !p.Match(le8) {
		t.Error("U64Less(5001) rejects 5000")
	}
	if p := U64Less(0, 5000); p.Match(le8) {
		t.Error("U64Less(5000) accepts 5000")
	}
	// Narrow columns never match numeric predicates.
	if p := U32Less(0, 1 << 30); p.Match([]byte{1}) {
		t.Error("U32Less matched a 1-byte column")
	}
	if p := U64Less(0, 1 << 60); p.Match(le4) {
		t.Error("U64Less matched a 4-byte column")
	}
}

func TestRowCol(t *testing.T) {
	var r Row
	r.Attrs = attrset.Of(2)
	r.vals[2] = []byte{9}
	if got := r.Col(2); len(got) != 1 || got[0] != 9 {
		t.Errorf("Col(2) = %v", got)
	}
	if r.Col(3) != nil {
		t.Error("Col on absent attr not nil")
	}
}

func TestMeasuredSeconds(t *testing.T) {
	st := storage.ScanStats{
		SimTime: 1.5,
		Parts: []storage.PartScanStats{
			{CacheLines: 10}, {CacheLines: 5},
		},
	}
	if got := MeasuredSeconds(testDevice(), st); got != 1.5 {
		t.Errorf("block: %g", got)
	}
	dev := testCacheDevice()
	want := float64(10)*dev.MissLatency + float64(5)*dev.MissLatency
	if got := MeasuredSeconds(dev, st); got != want {
		t.Errorf("cache: %g want %g", got, want)
	}
}
