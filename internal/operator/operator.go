package operator

import (
	"hash"
	"hash/fnv"

	"knives/internal/attrset"
	"knives/internal/cost"
	"knives/internal/storage"
)

// Row is one (possibly partial) tuple flowing through a pipeline: the
// attributes it carries and, per attribute, the raw column bytes. Rows are
// owned by the operator that returned them and their column slices alias
// the leaf cursors' page buffers — both are valid only until the next
// Next call on that operator.
type Row struct {
	// ID is the tuple's row index in the stored table; the reconstruction
	// join aligns partition streams on it.
	ID int64
	// Attrs is the set of attributes this row carries values for.
	Attrs attrset.Set

	vals [attrset.MaxAttrs][]byte
}

// Col returns the row's bytes for attribute a, or nil when the row does
// not carry it.
func (r *Row) Col(a int) []byte {
	if !r.Attrs.Has(a) {
		return nil
	}
	return r.vals[a]
}

// Operator is a pull-based (Volcano-style) row iterator. Next returns the
// stream's next row, or (nil, nil) at end of stream; once it has returned
// nil it keeps returning nil. Stats may be read at any point and reports
// the work the operator has done SO FAR — after the stream is drained it
// is the operator's final accounting.
type Operator interface {
	// Next pulls the next row of the stream; nil means end of stream.
	Next() (*Row, error)
	// Stats reports the operator's own work (not its children's).
	Stats() OpStats
	// Name renders the operator for plan displays, e.g. "σ(a4<1263)".
	Name() string
}

// OpStats is one operator's own share of a pipeline's work. Leaf scans
// carry the physical terms (seeks, bytes, cache lines, seconds); the
// operators above them move slice headers and charge only logical counts.
type OpStats struct {
	// Op is the operator kind: "scan", "select", "join", or "project".
	Op string `json:"op"`
	// Name is the display form, e.g. "scan{0,4}" or "σ(a10<1263)".
	Name string `json:"name"`
	// RowsIn counts rows pulled from children (0 for leaves).
	RowsIn int64 `json:"rows_in"`
	// RowsOut counts rows this operator emitted.
	RowsOut int64 `json:"rows_out"`
	// Seeks, BytesRead, and CacheLines are the leaf's physical reads.
	Seeks      int64 `json:"seeks,omitempty"`
	BytesRead  int64 `json:"bytes_read,omitempty"`
	CacheLines int64 `json:"cache_lines,omitempty"`
	// ReconJoins counts tuple reconstructions (join operators only).
	ReconJoins int64 `json:"recon_joins,omitempty"`
	// SimTime is the seconds the device charges this operator under its
	// pricing discipline — the cost model's per-partition term for leaves,
	// zero above them.
	SimTime float64 `json:"sim_time"`
}

// Scan is the leaf operator: it streams one vertical partition of a
// pinned epoch through a storage.PartCursor, emitting one partial row per
// stored row with consecutive IDs from 0. All physical I/O (and therefore
// all cost) in a pipeline happens here, with the engine's own buffer,
// seek, and page accounting.
type Scan struct {
	c    *storage.PartCursor
	dev  cost.Device
	cols []int
	row  Row
	out  int64
}

// NewScan opens a leaf over cur, pricing its reads against dev.
func NewScan(cur *storage.PartCursor, dev cost.Device) *Scan {
	s := &Scan{c: cur, dev: dev, cols: cur.Attrs().Attrs()}
	s.row.Attrs = cur.Attrs()
	return s
}

// Next advances the cursor one row.
func (s *Scan) Next() (*Row, error) {
	ok, err := s.c.Next()
	if err != nil || !ok {
		return nil, err
	}
	s.row.ID = s.out
	s.out++
	for _, a := range s.cols {
		s.row.vals[a] = s.c.Col(a)
	}
	return &s.row, nil
}

// PartStats returns the leaf's physical accounting in the engine's
// per-partition form.
func (s *Scan) PartStats() storage.PartScanStats { return s.c.Stats() }

// Stats prices the leaf's reads under its device's discipline: seek plus
// scan time for block devices, cache-line transfers times miss latency
// for cache devices — exactly the cost model's per-partition term.
func (s *Scan) Stats() OpStats {
	ps := s.c.Stats()
	st := OpStats{
		Op: "scan", Name: "scan" + s.row.Attrs.String(), RowsOut: s.out,
		Seeks: ps.Seeks, BytesRead: ps.BytesRead, CacheLines: ps.CacheLines,
	}
	if s.dev.Pricing == cost.PricingCache {
		st.SimTime = float64(ps.CacheLines) * s.dev.MissLatency
	} else {
		st.SimTime = s.dev.SeekTime*float64(ps.Seeks) + float64(ps.BytesRead)/s.dev.ReadBandwidth
	}
	return st
}

// Name renders the leaf with its column group.
func (s *Scan) Name() string { return "scan" + s.row.Attrs.String() }

// Select is the σ operator: it pulls from its child and emits only rows
// its predicate matches. Build pushes it directly above the leaf that
// stores the predicate's attribute, below any join — the classic
// selection pushdown — so non-matching rows never cost a reconstruction.
type Select struct {
	child Operator
	pred  Pred
	in    int64
	out   int64
}

// NewSelect wraps child in the predicate.
func NewSelect(child Operator, pred Pred) *Select {
	return &Select{child: child, pred: pred}
}

// Next pulls until a row matches.
func (s *Select) Next() (*Row, error) {
	for {
		r, err := s.child.Next()
		if r == nil || err != nil {
			return nil, err
		}
		s.in++
		if s.pred.Match(r.Col(s.pred.Attr)) {
			s.out++
			return r, nil
		}
	}
}

// Stats reports the selection's row flow; σ does no I/O.
func (s *Select) Stats() OpStats {
	return OpStats{Op: "select", Name: s.Name(), RowsIn: s.in, RowsOut: s.out}
}

// Name renders the predicate.
func (s *Select) Name() string { return "σ(" + s.pred.Name + ")" }

// ReconJoin is the ⋈ operator: the tuple-reconstruction join that stitches
// a query's attributes back together across vertical partitions by merging
// its children's streams on row ID. Children emit IDs in increasing order
// (leaves are sequential scans; σ preserves order), so the join is a pure
// merge: align every child on the largest current ID, emit the stitched
// row, advance.
//
// When any child's stream ends, the join DRAINS every other child to end
// of stream before reporting its own end. This is the common-granularity
// rule made operational: every referenced partition is read in full even
// under a selective plan, so the pipeline's physical cost stays exactly
// the cost model's full-scan charge no matter what σ discards.
type ReconJoin struct {
	children []Operator
	cur      []*Row
	out      Row
	colsOf   [][]int
	in       int64
	emitted  int64
	joins    int64
	done     bool
}

// NewReconJoin merges the children's streams on row ID. Children must
// carry disjoint attribute sets (vertical partitions do by construction).
func NewReconJoin(children []Operator) *ReconJoin {
	return &ReconJoin{children: children, cur: make([]*Row, len(children))}
}

// pull advances child i, counting the row consumed.
func (j *ReconJoin) pull(i int) (*Row, error) {
	r, err := j.children[i].Next()
	if err != nil {
		return nil, err
	}
	if r != nil {
		j.in++
	}
	return r, nil
}

// finish drains every child to end of stream (see the type comment) and
// latches the join closed.
func (j *ReconJoin) finish() error {
	j.done = true
	for i := range j.children {
		for {
			r, err := j.pull(i)
			if err != nil {
				return err
			}
			if r == nil {
				break
			}
		}
	}
	return nil
}

// Next merges one aligned row.
func (j *ReconJoin) Next() (*Row, error) {
	if j.done {
		return nil, nil
	}
	// Advance every child past the previously emitted row (or to its
	// first row on the initial call).
	for i := range j.children {
		r, err := j.pull(i)
		if err != nil {
			return nil, err
		}
		if r == nil {
			return nil, j.finish()
		}
		j.cur[i] = r
	}
	// Align all children on the largest current ID. A child that
	// overshoots (its next matching row is further on) raises the bar and
	// the alignment restarts from the new maximum.
	for {
		max := j.cur[0].ID
		for _, r := range j.cur[1:] {
			if r.ID > max {
				max = r.ID
			}
		}
		aligned := true
		for i := range j.cur {
			for j.cur[i].ID < max {
				r, err := j.pull(i)
				if err != nil {
					return nil, err
				}
				if r == nil {
					return nil, j.finish()
				}
				j.cur[i] = r
			}
			if j.cur[i].ID > max {
				aligned = false
			}
		}
		if aligned {
			break
		}
	}
	// Stitch the aligned partials into one row: one reconstruction join
	// per partition beyond the first, the engine's (and the paper's)
	// counting.
	if j.out.Attrs.IsEmpty() {
		j.colsOf = make([][]int, len(j.cur))
		for i, r := range j.cur {
			j.out.Attrs = j.out.Attrs.Union(r.Attrs)
			j.colsOf[i] = r.Attrs.Attrs()
		}
	}
	j.out.ID = j.cur[0].ID
	for i, r := range j.cur {
		for _, a := range j.colsOf[i] {
			j.out.vals[a] = r.vals[a]
		}
	}
	j.emitted++
	j.joins += int64(len(j.children) - 1)
	return &j.out, nil
}

// Stats reports the merge's row flow and reconstruction count.
func (j *ReconJoin) Stats() OpStats {
	return OpStats{Op: "join", Name: j.Name(), RowsIn: j.in, RowsOut: j.emitted, ReconJoins: j.joins}
}

// Name renders the join with its width.
func (j *ReconJoin) Name() string { return "⋈" }

// Project is the π operator: it restricts rows to the query's attributes
// and folds the projected values into the same layout-independent FNV-64a
// checksum Engine.Scan computes (each row's query columns in ascending
// attribute order), so a pipeline's result digest is directly comparable
// to a monolithic scan's.
type Project struct {
	child Operator
	attrs attrset.Set
	cols  []int
	h     hash.Hash64
	out   Row
	in    int64
}

// NewProject projects child onto attrs.
func NewProject(child Operator, attrs attrset.Set) *Project {
	p := &Project{child: child, attrs: attrs, cols: attrs.Attrs(), h: fnv.New64a()}
	p.out.Attrs = attrs
	return p
}

// Next projects one row and digests it.
func (p *Project) Next() (*Row, error) {
	r, err := p.child.Next()
	if r == nil || err != nil {
		return nil, err
	}
	p.in++
	for _, a := range p.cols {
		b := r.Col(a)
		p.h.Write(b)
		p.out.vals[a] = b
	}
	p.out.ID = r.ID
	return &p.out, nil
}

// Checksum returns the digest of everything projected so far.
func (p *Project) Checksum() uint64 { return p.h.Sum64() }

// Stats reports the projection's row flow.
func (p *Project) Stats() OpStats {
	return OpStats{Op: "project", Name: p.Name(), RowsIn: p.in, RowsOut: p.in}
}

// Name renders the projection with its attribute set.
func (p *Project) Name() string { return "π" + p.attrs.String() }
