// Package operator executes σ/π/⋈ pipelines over pinned storage epochs in
// the Volcano (pull-based iterator) idiom: every operator is a lazy stream
// of reconstructed rows that does no work until pulled, and every operator
// carries its own measurements (rows, seeks, bytes, cache lines,
// reconstruction joins, simulated seconds) so a pipeline's total cost
// decomposes exactly into the cost model's per-partition terms.
//
// The package exists to close the measured==predicted loop ABOVE the scan:
// Engine.Scan already proves a full projection scan costs exactly what the
// model says; this layer proves the same for composed plans — selections
// pushed into partition scans, tuple-reconstruction joins stitching a
// query's attributes back together across vertical partitions, projections
// digesting the result. The accounting survives composition because the
// leaves reuse the engine's own cursor mechanics (storage.PartCursor) and
// the final aggregation reuses the engine's summation order; everything
// above the leaves moves slice headers, never bytes, and charges nothing.
package operator

import (
	"encoding/binary"
	"fmt"
)

// Pred is a selection predicate over one attribute's raw column bytes, as
// materialized by the storage engine (little-endian u32 for ints and
// dates, little-endian u64 for decimals, padded ASCII for chars). Match
// must be pure: the σ operator may evaluate it on every row of a
// partition stream.
type Pred struct {
	// Attr is the attribute index the predicate reads.
	Attr int
	// Name describes the predicate in plans and reports, e.g. "a4<1263".
	Name string
	// Match decides the row given the attribute's column bytes.
	Match func(col []byte) bool
}

// U32Less returns the predicate attr < bound over a little-endian uint32
// column (the engine's int and date encodings).
func U32Less(attr int, bound uint32) Pred {
	return Pred{
		Attr: attr,
		Name: fmt.Sprintf("a%d<%d", attr, bound),
		Match: func(col []byte) bool {
			return len(col) >= 4 && binary.LittleEndian.Uint32(col) < bound
		},
	}
}

// U32GreaterEq returns the predicate attr >= bound over a little-endian
// uint32 column.
func U32GreaterEq(attr int, bound uint32) Pred {
	return Pred{
		Attr: attr,
		Name: fmt.Sprintf("a%d>=%d", attr, bound),
		Match: func(col []byte) bool {
			return len(col) >= 4 && binary.LittleEndian.Uint32(col) >= bound
		},
	}
}

// U64Less returns the predicate attr < bound over a little-endian uint64
// column (the engine's decimal encoding).
func U64Less(attr int, bound uint64) Pred {
	return Pred{
		Attr: attr,
		Name: fmt.Sprintf("a%d<%d", attr, bound),
		Match: func(col []byte) bool {
			return len(col) >= 8 && binary.LittleEndian.Uint64(col) < bound
		},
	}
}
