package sketch

import (
	"math"
	"math/rand"
	"testing"
)

// exactTally mirrors the stream with an unbounded map for comparison.
type exactTally map[uint64]float64

func (e exactTally) add(key uint64, w float64) {
	if w > 0 {
		e[key] += w
	}
}

func TestSpaceSavingExactRegime(t *testing.T) {
	s := NewSpaceSaving(8)
	truth := exactTally{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		key := uint64(rng.Intn(8))
		w := float64(1 + rng.Intn(5))
		s.Add(key, w)
		truth.add(key, w)
	}
	if !s.Exact() {
		t.Fatalf("8 distinct keys in capacity 8 must stay exact")
	}
	items := s.Items()
	if len(items) != len(truth) {
		t.Fatalf("got %d items, want %d", len(items), len(truth))
	}
	for _, it := range items {
		if it.Err != 0 {
			t.Fatalf("exact regime item %d has nonzero err %g", it.Key, it.Err)
		}
		if it.Weight != truth[it.Key] {
			t.Fatalf("key %d: weight %g, want %g", it.Key, it.Weight, truth[it.Key])
		}
	}
	// Deterministic order: sorted by key.
	for i := 1; i < len(items); i++ {
		if items[i-1].Key >= items[i].Key {
			t.Fatalf("items not sorted by key: %d >= %d", items[i-1].Key, items[i].Key)
		}
	}
}

func TestSpaceSavingOverflowGuarantees(t *testing.T) {
	const cap = 16
	s := NewSpaceSaving(cap)
	truth := exactTally{}
	rng := rand.New(rand.NewSource(7))
	var total float64
	// Zipf-ish: many hits on a few hot keys, a long tail of distinct ones.
	for i := 0; i < 5000; i++ {
		var key uint64
		if rng.Intn(4) > 0 {
			key = uint64(rng.Intn(8)) // hot set
		} else {
			key = uint64(100 + rng.Intn(200)) // tail
		}
		w := float64(1 + rng.Intn(3))
		s.Add(key, w)
		truth.add(key, w)
		total += w
	}
	if s.Exact() {
		t.Fatalf("208 distinct keys in capacity %d must have evicted", cap)
	}
	if s.Len() != cap {
		t.Fatalf("Len = %d, want %d", s.Len(), cap)
	}
	var sum float64
	for _, it := range s.Items() {
		sum += it.Weight
		// Classic space-saving bounds: true <= estimate, estimate - err <= true.
		if tw := truth[it.Key]; it.Weight < tw-1e-9 || it.Weight-it.Err > tw+1e-9 {
			t.Fatalf("key %d: estimate %g err %g outside bounds for true %g",
				it.Key, it.Weight, it.Err, tw)
		}
	}
	if math.Abs(sum-total) > 1e-6 {
		t.Fatalf("summed counter weight %g != total added %g", sum, total)
	}
	// The hot keys must have survived: their true weight dwarfs the tail.
	kept := map[uint64]bool{}
	for _, it := range s.Items() {
		kept[it.Key] = true
	}
	for k := uint64(0); k < 8; k++ {
		if !kept[k] {
			t.Fatalf("hot key %d evicted from the summary", k)
		}
	}
}

func TestSpaceSavingIgnoresNonPositive(t *testing.T) {
	s := NewSpaceSaving(4)
	s.Add(1, 0)
	s.Add(2, -3)
	s.Add(3, math.NaN())
	if s.Len() != 0 {
		t.Fatalf("non-positive weights must be ignored, got %d counters", s.Len())
	}
	s.Add(1, 2)
	if got := s.Items(); len(got) != 1 || got[0].Weight != 2 {
		t.Fatalf("unexpected items %v", got)
	}
}

func TestSpaceSavingReset(t *testing.T) {
	s := NewSpaceSaving(2)
	s.Add(1, 1)
	s.Add(2, 1)
	s.Add(3, 1) // forces eviction
	if s.Exact() {
		t.Fatalf("expected eviction")
	}
	s.Reset()
	if s.Len() != 0 || !s.Exact() {
		t.Fatalf("reset must empty the summary and clear the eviction flag")
	}
}

func TestSpaceSavingDefaults(t *testing.T) {
	s := NewSpaceSaving(0)
	if s.cap != DefaultCapacity {
		t.Fatalf("capacity %d, want default %d", s.cap, DefaultCapacity)
	}
}

func TestWindowCumulativeWhenUnbounded(t *testing.T) {
	w := NewWindow(8, 0, 4)
	for i := 0; i < 100; i++ {
		w.Add(uint64(i%4), 1)
	}
	if w.Adds() != 100 {
		t.Fatalf("Adds = %d, want 100", w.Adds())
	}
	items := w.Items()
	if len(items) != 4 {
		t.Fatalf("got %d items, want 4", len(items))
	}
	for _, it := range items {
		if it.Weight != 25 {
			t.Fatalf("cumulative window lost weight: key %d = %g, want 25", it.Key, it.Weight)
		}
	}
	if !w.Exact() {
		t.Fatalf("4 distinct keys in capacity 8 must stay exact")
	}
}

func TestWindowRotationDropsOldEpochs(t *testing.T) {
	// window 8, 4 epochs => span 2: after 8 more additions the first
	// epoch's keys must be gone.
	w := NewWindow(16, 8, 4)
	w.Add(1, 5)
	w.Add(1, 5)
	for i := 0; i < 8; i++ {
		w.Add(2, 1)
	}
	items := w.Items()
	if len(items) != 1 || items[0].Key != 2 {
		t.Fatalf("old epoch not dropped: items %v", items)
	}
	if items[0].Weight != 8 {
		t.Fatalf("key 2 weight %g, want 8", items[0].Weight)
	}
}

func TestWindowCoversRecentAdditions(t *testing.T) {
	// Everything inside the last window-span+1 additions must be present.
	w := NewWindow(32, 16, 4) // span 4: retains between 13 and 16 adds
	truth := exactTally{}
	for i := 0; i < 200; i++ {
		key := uint64(i % 7)
		w.Add(key, 1)
		truth.add(key, 1)
	}
	// The last 13 additions are guaranteed covered; each key appears at
	// least once in any 13-run of i%7, so every key must be present.
	items := w.Items()
	if len(items) != 7 {
		t.Fatalf("recent keys missing from window: got %d of 7", len(items))
	}
	var sum float64
	for _, it := range items {
		sum += it.Weight
	}
	if sum < 13 || sum > 16 {
		t.Fatalf("window retains %g additions, want within [13,16]", sum)
	}
}

func TestWindowMergesErrAcrossEpochs(t *testing.T) {
	w := NewWindow(2, 8, 2) // span 4, tiny capacity: force evictions
	for i := 0; i < 8; i++ {
		w.Add(uint64(i), 1)
	}
	if w.Exact() {
		t.Fatalf("8 distinct keys through capacity-2 epochs must evict")
	}
	items := w.Items()
	if len(items) == 0 || len(items) > 4 {
		t.Fatalf("got %d merged items, want 1..4 (2 epochs x capacity 2)", len(items))
	}
	var anyErr bool
	for _, it := range items {
		if it.Err > 0 {
			anyErr = true
		}
	}
	if !anyErr {
		t.Fatalf("evicting epochs must surface nonzero error bounds")
	}
}

func TestWindowReset(t *testing.T) {
	w := NewWindow(4, 8, 2)
	for i := 0; i < 10; i++ {
		w.Add(uint64(i), 1)
	}
	w.Reset()
	if w.Adds() != 0 || len(w.Items()) != 0 || !w.Exact() {
		t.Fatalf("reset must clear all epochs and counters")
	}
	w.Add(9, 3)
	if got := w.Items(); len(got) != 1 || got[0].Weight != 3 {
		t.Fatalf("window unusable after reset: %v", got)
	}
}

func TestWindowDefaults(t *testing.T) {
	w := NewWindow(0, 100, 0)
	if w.capacity != DefaultCapacity {
		t.Fatalf("capacity %d, want default %d", w.capacity, DefaultCapacity)
	}
	if len(w.ring) != DefaultEpochs {
		t.Fatalf("epochs %d, want default %d", len(w.ring), DefaultEpochs)
	}
	if w.span != 25 {
		t.Fatalf("span %d, want 25", w.span)
	}
	// window smaller than epochs: span clamps to 1.
	if tiny := NewWindow(4, 2, 4); tiny.span != 1 {
		t.Fatalf("tiny window span %d, want 1", tiny.span)
	}
}

func TestWindowDeterministicAcrossRuns(t *testing.T) {
	build := func() []Item {
		w := NewWindow(8, 32, 4)
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 500; i++ {
			w.Add(uint64(rng.Intn(20)), float64(1+rng.Intn(4)))
		}
		return w.Items()
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic item count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic item %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
