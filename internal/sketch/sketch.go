// Package sketch provides bounded-memory frequency summaries of
// attribute-set streams: a weighted space-saving summary (Metwally et al.)
// over uint64 keys, and a rotating-epoch window over it that approximates a
// sliding window of the most recent additions.
//
// The advisor's drift trackers use these to summarize the observed query
// stream by attribute-set bitmask: pricing a layout is linear in query
// weight and additive over attribute sets, so a workload collapsed to
// (attr-set, total weight) pairs prices bit-identically to the full log for
// any fixed layout — the sketch only approximates once the stream's
// distinct attribute sets exceed its capacity, and Exact() reports when it
// never did. Memory is O(capacity x epochs) regardless of stream length.
package sketch

import "sort"

// Item is one summarized key: its accumulated weight and the maximum
// amount by which that weight may overestimate the true total (0 when the
// summary never evicted, i.e. the stream's distinct keys fit in capacity).
type Item struct {
	Key    uint64
	Weight float64
	Err    float64
}

// SpaceSaving is a weighted space-saving summary: at most capacity
// counters. While the stream's distinct keys fit, every counter is exact;
// past capacity, a new key takes over the minimum-weight counter and
// inherits its weight as both estimate floor and error bound — the classic
// guarantees: estimate >= true weight, estimate - Err <= true weight, and
// the summed weight of all counters equals the total weight added.
type SpaceSaving struct {
	cap      int
	counters map[uint64]*ssCounter
	evicted  bool
}

type ssCounter struct {
	weight float64
	err    float64
}

// DefaultCapacity is a sketch size comfortably above the distinct
// attribute-set count of every workload the paper evaluates (TPC-H and SSB
// tables see well under 32 distinct referenced-column sets).
const DefaultCapacity = 64

// NewSpaceSaving returns an empty summary with the given counter capacity
// (<= 0 uses DefaultCapacity).
func NewSpaceSaving(capacity int) *SpaceSaving {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &SpaceSaving{cap: capacity, counters: make(map[uint64]*ssCounter, capacity)}
}

// Add folds weight into key's counter. Non-positive weights are ignored:
// the summary is monotone (space-saving has no deletions), and the
// advisor's observation path normalizes weights to > 0 before ingest.
func (s *SpaceSaving) Add(key uint64, weight float64) {
	if !(weight > 0) { // negated compare also drops NaN
		return
	}
	if c, ok := s.counters[key]; ok {
		c.weight += weight
		return
	}
	if len(s.counters) < s.cap {
		s.counters[key] = &ssCounter{weight: weight}
		return
	}
	// Full: the new key takes over the minimum-weight counter (ties broken
	// by smallest key, so the summary is deterministic for any input order
	// that produced the same counter state).
	var minKey uint64
	var minC *ssCounter
	for k, c := range s.counters {
		if minC == nil || c.weight < minC.weight || (c.weight == minC.weight && k < minKey) {
			minKey, minC = k, c
		}
	}
	delete(s.counters, minKey)
	s.counters[key] = &ssCounter{weight: minC.weight + weight, err: minC.weight}
	s.evicted = true
}

// Len returns the number of live counters.
func (s *SpaceSaving) Len() int { return len(s.counters) }

// Exact reports whether the summary has never evicted a counter — in which
// case every Item's Weight is the key's true accumulated weight and every
// Err is zero.
func (s *SpaceSaving) Exact() bool { return !s.evicted }

// Items returns the live counters sorted by key — a deterministic order
// independent of insertion history, so downstream pricing is reproducible.
func (s *SpaceSaving) Items() []Item {
	out := make([]Item, 0, len(s.counters))
	for k, c := range s.counters {
		out = append(out, Item{Key: k, Weight: c.weight, Err: c.err})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Reset empties the summary, keeping its capacity.
func (s *SpaceSaving) Reset() {
	s.counters = make(map[uint64]*ssCounter, s.cap)
	s.evicted = false
}

// Window approximates a sliding window of the last `window` additions by
// rotating `epochs` space-saving summaries: additions land in the active
// epoch; every ceil(window/epochs) additions the oldest epoch is dropped
// and a fresh one becomes active. Items() merges the retained epochs, so
// the summary covers between window-span+1 and window of the most recent
// additions (granularity span = the epoch length). window <= 0 never
// rotates — one cumulative summary, still memory-bounded by capacity.
type Window struct {
	capacity int
	window   int
	span     int
	ring     []*SpaceSaving // ring[0] is the active epoch
	fill     int            // additions in the active epoch
	adds     uint64         // lifetime additions
}

// DefaultEpochs balances window fidelity against merge cost: the effective
// window slides in steps of window/4.
const DefaultEpochs = 4

// NewWindow returns a windowed summary. capacity <= 0 uses DefaultCapacity
// (per epoch); epochs <= 0 uses DefaultEpochs; window <= 0 disables
// rotation (a cumulative summary).
func NewWindow(capacity, window, epochs int) *Window {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if epochs <= 0 {
		epochs = DefaultEpochs
	}
	w := &Window{capacity: capacity, window: window}
	if window <= 0 {
		w.ring = []*SpaceSaving{NewSpaceSaving(capacity)}
		return w
	}
	w.span = (window + epochs - 1) / epochs
	if w.span < 1 {
		w.span = 1
	}
	w.ring = make([]*SpaceSaving, epochs)
	for i := range w.ring {
		w.ring[i] = NewSpaceSaving(capacity)
	}
	return w
}

// Add folds one addition into the active epoch, rotating first when the
// epoch is full.
func (w *Window) Add(key uint64, weight float64) {
	if w.span > 0 && w.fill >= w.span {
		// Drop the oldest epoch, recycle its summary as the new active one.
		last := w.ring[len(w.ring)-1]
		copy(w.ring[1:], w.ring[:len(w.ring)-1])
		last.Reset()
		w.ring[0] = last
		w.fill = 0
	}
	w.ring[0].Add(key, weight)
	w.fill++
	w.adds++
}

// Adds returns the lifetime addition count.
func (w *Window) Adds() uint64 { return w.adds }

// Exact reports whether every retained epoch is exact.
func (w *Window) Exact() bool {
	for _, s := range w.ring {
		if !s.Exact() {
			return false
		}
	}
	return true
}

// Items merges the retained epochs: weights and error bounds sum per key,
// sorted by key. The result summarizes the window's additions with at most
// capacity x epochs entries.
func (w *Window) Items() []Item {
	if len(w.ring) == 1 {
		return w.ring[0].Items()
	}
	merged := make(map[uint64]*Item)
	for _, s := range w.ring {
		for k, c := range s.counters {
			if it, ok := merged[k]; ok {
				it.Weight += c.weight
				it.Err += c.err
			} else {
				merged[k] = &Item{Key: k, Weight: c.weight, Err: c.err}
			}
		}
	}
	out := make([]Item, 0, len(merged))
	for _, it := range merged {
		out = append(out, *it)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Reset empties every epoch.
func (w *Window) Reset() {
	for _, s := range w.ring {
		s.Reset()
	}
	w.fill = 0
	w.adds = 0
}
