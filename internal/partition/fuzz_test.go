package partition

import (
	"fmt"
	"testing"

	"knives/internal/attrset"
	"knives/internal/schema"
)

// FuzzFragments drives the primary-partition computation with arbitrary
// workload shapes: whatever the queries look like, the fragments must be a
// disjoint, complete cover of the table that no query splits. This is the
// foundation every fragment-based search (AutoPart, HYRISE, fragment-mode
// BruteForce) stands on.
func FuzzFragments(f *testing.F) {
	f.Add(uint8(5), uint8(3), uint64(1))
	f.Add(uint8(1), uint8(0), uint64(2))
	f.Add(uint8(17), uint8(22), uint64(2013))
	f.Add(uint8(64), uint8(9), uint64(7))

	f.Fuzz(func(t *testing.T, nAttrs, nQueries uint8, seed uint64) {
		n := int(nAttrs)
		if n < 1 || n > attrset.MaxAttrs {
			t.Skip()
		}
		q := int(nQueries)
		if q > 128 {
			t.Skip()
		}
		cols := make([]schema.Column, n)
		for i := range cols {
			cols[i] = schema.Column{Name: fmt.Sprintf("c%d", i), Kind: schema.KindInt, Size: 4}
		}
		tab, err := schema.NewTable("f", 1000, cols)
		if err != nil {
			t.Fatal(err)
		}
		// splitmix-style stateless generator: deterministic per seed.
		state := seed
		next := func() uint64 {
			state += 0x9e3779b97f4a7c15
			z := state
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			return z ^ (z >> 31)
		}
		tw := schema.TableWorkload{Table: tab}
		for i := 0; i < q; i++ {
			attrs := attrset.Set(next()) & tab.AllAttrs()
			if attrs.IsEmpty() {
				continue
			}
			tw.Queries = append(tw.Queries, schema.TableQuery{
				ID:     fmt.Sprintf("q%d", i),
				Weight: float64(1 + next()%10),
				Attrs:  attrs,
			})
		}
		frags := Fragments(tw)
		if _, err := New(tab, frags); err != nil {
			t.Fatalf("fragments are not a valid cover: %v", err)
		}
		for _, frag := range frags {
			for _, query := range tw.Queries {
				inter := query.Attrs.Intersect(frag)
				if !inter.IsEmpty() && inter != frag {
					t.Fatalf("query %v splits fragment %v", query.Attrs, frag)
				}
			}
		}
		// Fragments must be maximal: merging any two distinct fragments
		// that are referenced identically would contradict construction, so
		// every pair must be distinguished by some query (or by referenced
		// vs unreferenced status).
		for i := 0; i < len(frags); i++ {
			for j := i + 1; j < len(frags); j++ {
				distinguished := false
				for _, query := range tw.Queries {
					if query.Attrs.Overlaps(frags[i]) != query.Attrs.Overlaps(frags[j]) {
						distinguished = true
						break
					}
				}
				if !distinguished {
					// Both unreferenced is only legal for one trailing
					// fragment; two co-referenced fragments are a missed
					// merge.
					t.Fatalf("fragments %v and %v are never distinguished by any query", frags[i], frags[j])
				}
			}
		}
	})
}
