package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"knives/internal/attrset"
	"knives/internal/schema"
)

// Property: for any random workload, Fragments returns a valid partitioning
// whose parts are never split by any query.
func TestQuickFragmentsInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		tab := testTable(t, n)
		tw := schema.TableWorkload{Table: tab}
		for q := 0; q < rng.Intn(10); q++ {
			var s attrset.Set
			for a := 0; a < n; a++ {
				if rng.Intn(2) == 0 {
					s = s.Add(a)
				}
			}
			if s.IsEmpty() {
				continue
			}
			tw.Queries = append(tw.Queries, schema.TableQuery{ID: "q", Weight: 1, Attrs: s})
		}
		frags := Fragments(tw)
		if _, err := New(tab, frags); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, f := range frags {
			for _, q := range tw.Queries {
				inter := q.Attrs.Intersect(f)
				if !inter.IsEmpty() && inter != f {
					t.Fatalf("trial %d: query %v splits fragment %v", trial, q.Attrs, f)
				}
			}
		}
	}
}

// Property: Merge preserves validity and reduces the part count by one.
func TestQuickMergeInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		cols := make([]schema.Column, n)
		for i := range cols {
			cols[i] = schema.Column{Name: string(rune('a' + i)), Size: 4}
		}
		tab := schema.MustTable("t", 100, cols)
		col := Column(tab)
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			j = (j + 1) % n
		}
		merged := Merge(col.Parts, i, j)
		p, err := New(tab, merged)
		if err != nil {
			return false
		}
		return p.NumParts() == n-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Canonical is idempotent and Equal is order-insensitive.
func TestQuickCanonicalIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(10)
		tab := testTable(t, n)
		// Random partitioning via random group assignment.
		assign := make([]int, n)
		for i := range assign {
			assign[i] = rng.Intn(n)
		}
		groups := map[int]attrset.Set{}
		for i, g := range assign {
			groups[g] = groups[g].Add(i)
		}
		var parts []attrset.Set
		for _, p := range groups {
			parts = append(parts, p)
		}
		p, err := New(tab, parts)
		if err != nil {
			t.Fatal(err)
		}
		c1 := p.Canonical()
		c2 := c1.Canonical()
		if !c1.Equal(c2) || !c1.Equal(p) {
			t.Fatalf("trial %d: canonicalization unstable", trial)
		}
		// Shuffled copy compares equal.
		shuffled := append([]attrset.Set(nil), p.Parts...)
		rng.Shuffle(len(shuffled), func(a, b int) { shuffled[a], shuffled[b] = shuffled[b], shuffled[a] })
		q := Partitioning{Table: tab, Parts: shuffled}
		if !p.Equal(q) {
			t.Fatalf("trial %d: shuffle broke equality", trial)
		}
	}
}
