package partition

import (
	"strings"
	"testing"

	"knives/internal/attrset"
	"knives/internal/schema"
)

func testTable(t *testing.T, n int) *schema.Table {
	t.Helper()
	cols := make([]schema.Column, n)
	for i := range cols {
		cols[i] = schema.Column{Name: string(rune('a' + i)), Size: 4}
	}
	tab, err := schema.NewTable("t", 100, cols)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestNewValidates(t *testing.T) {
	tab := testTable(t, 3)
	if _, err := New(tab, []attrset.Set{attrset.Of(0, 1), attrset.Of(2)}); err != nil {
		t.Errorf("valid partitioning rejected: %v", err)
	}
	bad := [][]attrset.Set{
		{attrset.Of(0, 1)},                               // incomplete
		{attrset.Of(0, 1), attrset.Of(1, 2)},             // overlapping
		{attrset.Of(0, 1, 2), 0},                         // empty part
		{attrset.Of(0, 1, 2, 3)},                         // out of range
		{attrset.Of(0), attrset.Of(1), attrset.Of(2, 3)}, // out of range
	}
	for i, parts := range bad {
		if _, err := New(tab, parts); err == nil {
			t.Errorf("case %d: invalid partitioning accepted: %v", i, parts)
		}
	}
}

func TestRowAndColumn(t *testing.T) {
	tab := testTable(t, 4)
	row := Row(tab)
	if row.NumParts() != 1 || row.Parts[0] != tab.AllAttrs() {
		t.Errorf("Row = %v", row.Parts)
	}
	col := Column(tab)
	if col.NumParts() != 4 {
		t.Errorf("Column has %d parts", col.NumParts())
	}
	if err := row.Validate(); err != nil {
		t.Error(err)
	}
	if err := col.Validate(); err != nil {
		t.Error(err)
	}
}

func TestPartOfAndReferenced(t *testing.T) {
	tab := testTable(t, 4)
	p := Must(tab, []attrset.Set{attrset.Of(0, 2), attrset.Of(1), attrset.Of(3)})
	if got := p.PartOf(2); got != attrset.Of(0, 2) {
		t.Errorf("PartOf(2) = %v", got)
	}
	if got := p.PartOf(63); !got.IsEmpty() {
		t.Errorf("PartOf(out of range) = %v", got)
	}
	refs := p.Referenced(attrset.Of(1, 2))
	if len(refs) != 2 {
		t.Fatalf("Referenced = %v", refs)
	}
}

func TestEqualIgnoresOrder(t *testing.T) {
	tab := testTable(t, 3)
	p := Must(tab, []attrset.Set{attrset.Of(2), attrset.Of(0, 1)})
	q := Must(tab, []attrset.Set{attrset.Of(0, 1), attrset.Of(2)})
	if !p.Equal(q) {
		t.Error("Equal = false for reordered parts")
	}
	r := Must(tab, []attrset.Set{attrset.Of(0), attrset.Of(1), attrset.Of(2)})
	if p.Equal(r) {
		t.Error("Equal = true for different partitionings")
	}
}

func TestString(t *testing.T) {
	tab := testTable(t, 3)
	p := Must(tab, []attrset.Set{attrset.Of(2), attrset.Of(0, 1)})
	got := p.String()
	if got != "[a b | c]" {
		t.Errorf("String = %q", got)
	}
	if !strings.HasPrefix(got, "[") || !strings.HasSuffix(got, "]") {
		t.Errorf("String format: %q", got)
	}
}

func TestMerge(t *testing.T) {
	parts := []attrset.Set{attrset.Of(0), attrset.Of(1), attrset.Of(2)}
	got := Merge(parts, 0, 2)
	if len(got) != 2 || got[0] != attrset.Of(0, 2) || got[1] != attrset.Of(1) {
		t.Errorf("Merge = %v", got)
	}
	// Order of indexes must not matter.
	got2 := Merge(parts, 2, 0)
	if got2[0] != attrset.Of(0, 2) {
		t.Errorf("Merge reversed = %v", got2)
	}
	// Original untouched.
	if parts[0] != attrset.Of(0) {
		t.Error("Merge mutated input")
	}
	defer func() {
		if recover() == nil {
			t.Error("Merge(i,i) did not panic")
		}
	}()
	Merge(parts, 1, 1)
}

func TestFragmentsGroupsByAccessSignature(t *testing.T) {
	tab := testTable(t, 5)
	tw := schema.TableWorkload{Table: tab, Queries: []schema.TableQuery{
		{ID: "q1", Weight: 1, Attrs: attrset.Of(0, 1)},
		{ID: "q2", Weight: 1, Attrs: attrset.Of(0, 1, 2)},
	}}
	frags := Fragments(tw)
	// {0,1} always together; {2} alone; {3,4} unreferenced together.
	want := []attrset.Set{attrset.Of(0, 1), attrset.Of(2), attrset.Of(3, 4)}
	if len(frags) != len(want) {
		t.Fatalf("Fragments = %v, want %v", frags, want)
	}
	for i := range want {
		if frags[i] != want[i] {
			t.Errorf("fragment %d = %v, want %v", i, frags[i], want[i])
		}
	}
}

func TestFragmentsAreAValidPartitioning(t *testing.T) {
	for _, b := range []*schema.Benchmark{schema.TPCH(1), schema.SSB(1)} {
		for _, tw := range b.TableWorkloads() {
			frags := Fragments(tw)
			if _, err := New(tw.Table, frags); err != nil {
				t.Errorf("%s/%s: fragments invalid: %v", b.Name, tw.Table.Name, err)
			}
			// Atomicity: no query references a proper non-empty subset of a
			// referenced fragment.
			for _, f := range frags {
				for _, q := range tw.Queries {
					inter := q.Attrs.Intersect(f)
					if !inter.IsEmpty() && inter != f {
						t.Errorf("%s/%s: query %s splits fragment %v", b.Name, tw.Table.Name, q.ID, f)
					}
				}
			}
		}
	}
}

func TestFragmentsEmptyWorkload(t *testing.T) {
	tab := testTable(t, 3)
	frags := Fragments(schema.TableWorkload{Table: tab})
	if len(frags) != 1 || frags[0] != tab.AllAttrs() {
		t.Errorf("Fragments with no queries = %v, want one group of all attrs", frags)
	}
}

func TestFragmentsManyQueries(t *testing.T) {
	// Exercise the >64-query signature path.
	tab := testTable(t, 3)
	var qs []schema.TableQuery
	for i := 0; i < 130; i++ {
		attr := i % 2 // queries alternate between attr 0 and attr 1
		qs = append(qs, schema.TableQuery{ID: "q", Weight: 1, Attrs: attrset.Single(attr)})
	}
	frags := Fragments(schema.TableWorkload{Table: tab, Queries: qs})
	want := []attrset.Set{attrset.Of(0), attrset.Of(1), attrset.Of(2)}
	if len(frags) != 3 {
		t.Fatalf("Fragments = %v, want %v", frags, want)
	}
	for i := range want {
		if frags[i] != want[i] {
			t.Errorf("fragment %d = %v, want %v", i, frags[i], want[i])
		}
	}
}
