package partition

import (
	"math/big"
	"testing"

	"knives/internal/attrset"
)

func singletonAtoms(n int) []attrset.Set {
	atoms := make([]attrset.Set, n)
	for i := range atoms {
		atoms[i] = attrset.Single(i)
	}
	return atoms
}

func TestBellKnownValues(t *testing.T) {
	// B8 = 4140 is the paper's running example for the TPC-H customer table.
	want := map[int]int64{
		0: 1, 1: 1, 2: 2, 3: 5, 4: 15, 5: 52, 6: 203, 7: 877, 8: 4140,
		9: 21147, 10: 115975, 12: 4213597,
	}
	for n, w := range want {
		if got := Bell(n); got.Cmp(big.NewInt(w)) != 0 {
			t.Errorf("Bell(%d) = %v, want %d", n, got, w)
		}
	}
	// Section 2.1: 16 attributes of Lineitem. Bell(16) = 10480142147.
	if got := Bell(16); got.Cmp(big.NewInt(10480142147)) != 0 {
		t.Errorf("Bell(16) = %v", got)
	}
}

func TestStirlingKnownValues(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {1, 1, 1}, {4, 2, 7}, {5, 3, 25}, {8, 1, 1}, {8, 8, 1},
		{8, 3, 966}, {6, 0, 0}, {3, 5, 0},
	}
	for _, c := range cases {
		if got := Stirling(c.n, c.k); got.Cmp(big.NewInt(c.want)) != 0 {
			t.Errorf("Stirling(%d,%d) = %v, want %d", c.n, c.k, got, c.want)
		}
	}
}

// The identity the paper quotes: Bell(n) = sum over k of Stirling(n, k).
func TestBellIsSumOfStirlings(t *testing.T) {
	for n := 0; n <= 14; n++ {
		sum := big.NewInt(0)
		for k := 0; k <= n; k++ {
			sum.Add(sum, Stirling(n, k))
		}
		if sum.Cmp(Bell(n)) != 0 {
			t.Errorf("n=%d: sum of Stirlings %v != Bell %v", n, sum, Bell(n))
		}
	}
}

func TestSetPartitionsCountMatchesBell(t *testing.T) {
	for n := 1; n <= 9; n++ {
		count := int64(0)
		SetPartitions(singletonAtoms(n), func([]attrset.Set) bool {
			count++
			return true
		})
		if want := Bell(n).Int64(); count != want {
			t.Errorf("n=%d: enumerated %d partitions, want Bell = %d", n, count, want)
		}
	}
}

func TestSetPartitionsAreValidAndUnique(t *testing.T) {
	const n = 6
	tab := testTable(t, n)
	seen := make(map[string]bool)
	SetPartitions(singletonAtoms(n), func(groups []attrset.Set) bool {
		p, err := New(tab, groups)
		if err != nil {
			t.Fatalf("invalid partition %v: %v", groups, err)
		}
		key := p.String()
		if seen[key] {
			t.Fatalf("duplicate partition %s", key)
		}
		seen[key] = true
		return true
	})
	if int64(len(seen)) != Bell(n).Int64() {
		t.Errorf("unique partitions = %d, want %d", len(seen), Bell(n).Int64())
	}
}

func TestSetPartitionsEarlyStop(t *testing.T) {
	count := 0
	SetPartitions(singletonAtoms(8), func([]attrset.Set) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Errorf("early stop after %d yields, want 10", count)
	}
}

func TestSetPartitionsCompositeAtoms(t *testing.T) {
	// Atoms that are multi-attribute fragments: groups must be unions.
	atoms := []attrset.Set{attrset.Of(0, 1), attrset.Of(2), attrset.Of(3, 4)}
	count := 0
	SetPartitions(atoms, func(groups []attrset.Set) bool {
		count++
		var all attrset.Set
		for _, g := range groups {
			all = all.Union(g)
		}
		if all != attrset.Of(0, 1, 2, 3, 4) {
			t.Fatalf("groups %v do not cover atoms", groups)
		}
		return true
	})
	if count != 5 { // Bell(3)
		t.Errorf("count = %d, want 5", count)
	}
}

func TestSetPartitionsEmptyAtoms(t *testing.T) {
	calls := 0
	SetPartitions(nil, func(groups []attrset.Set) bool {
		calls++
		if len(groups) != 0 {
			t.Errorf("groups = %v, want empty", groups)
		}
		return true
	})
	if calls != 1 {
		t.Errorf("yield called %d times, want 1", calls)
	}
}

func TestBellPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Bell(-1) did not panic")
		}
	}()
	Bell(-1)
}
