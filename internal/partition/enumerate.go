package partition

import (
	"math/big"

	"knives/internal/attrset"
)

// SetPartitions enumerates every partition of the atoms slice into
// non-empty groups, where each group is the union of its atoms. It invokes
// yield once per partition with a scratch slice that is reused between
// calls — callers must copy it if they retain it. Enumeration stops early
// if yield returns false.
//
// With atoms = single-attribute sets this enumerates all Bell(n) vertical
// partitionings of a table (the brute-force search space); with atoms =
// atomic fragments it enumerates the reduced space the paper's heuristics
// effectively search.
//
// The implementation walks restricted growth strings: a[i] is the group
// index of atom i, with a[0] = 0 and a[i] <= max(a[0..i-1]) + 1.
func SetPartitions(atoms []attrset.Set, yield func(groups []attrset.Set) bool) {
	n := len(atoms)
	if n == 0 {
		yield(nil)
		return
	}
	a := make([]int, n)    // restricted growth string
	maxP := make([]int, n) // maxP[i] = max(a[0..i]) — group count prefix maxima
	groups := make([]attrset.Set, 0, n)

	emit := func() bool {
		groups = groups[:maxP[n-1]+1]
		for i := range groups {
			groups[i] = 0
		}
		for i, g := range a {
			groups[g] = groups[g].Union(atoms[i])
		}
		return yield(groups)
	}

	for {
		if !emit() {
			return
		}
		// Advance to the next restricted growth string: find the rightmost
		// position that can be incremented (a[i] <= maxP[i-1]), increment
		// it, and reset everything to its right to zero.
		i := n - 1
		for i > 0 && a[i] > maxP[i-1] {
			i--
		}
		if i == 0 {
			return // a[0] is fixed at 0; enumeration complete
		}
		a[i]++
		if a[i] > maxP[i-1] {
			maxP[i] = a[i]
		} else {
			maxP[i] = maxP[i-1]
		}
		for j := i + 1; j < n; j++ {
			a[j] = 0
			maxP[j] = maxP[j-1]
		}
	}
}

// Bell returns the n-th Bell number — the number of partitions of a set of
// n elements. Section 3 of the paper uses B8 = 4140 (the TPC-H customer
// table) as its running example.
func Bell(n int) *big.Int {
	if n < 0 {
		panic("partition: Bell of negative n")
	}
	// Bell triangle: row[0] of each row is the last element of the
	// previous row; row[i] = row[i-1] + prev[i-1].
	row := []*big.Int{big.NewInt(1)}
	for i := 0; i < n; i++ {
		next := make([]*big.Int, len(row)+1)
		next[0] = row[len(row)-1]
		for j := 1; j < len(next); j++ {
			next[j] = new(big.Int).Add(next[j-1], row[j-1])
		}
		row = next
	}
	return new(big.Int).Set(row[0])
}

// Stirling returns the Stirling number of the second kind {n k}: the number
// of ways to partition n elements into exactly k non-empty groups. It
// follows the recurrence the paper quotes: {n k} = {n-1 k-1} + k*{n-1 k}.
func Stirling(n, k int) *big.Int {
	switch {
	case n < 0 || k < 0:
		panic("partition: Stirling of negative argument")
	case n == 0 && k == 0:
		return big.NewInt(1)
	case n == 0 || k == 0 || k > n:
		return big.NewInt(0)
	}
	// Rolling DP over k.
	prev := make([]*big.Int, k+1)
	cur := make([]*big.Int, k+1)
	for i := range prev {
		prev[i] = big.NewInt(0)
		cur[i] = big.NewInt(0)
	}
	prev[0] = big.NewInt(1) // {0 0} = 1
	for i := 1; i <= n; i++ {
		cur[0] = big.NewInt(0)
		for j := 1; j <= k && j <= i; j++ {
			// {i j} = {i-1 j-1} + j * {i-1 j}
			t := new(big.Int).Mul(big.NewInt(int64(j)), prev[j])
			cur[j] = t.Add(t, prev[j-1])
		}
		prev, cur = cur, prev
	}
	return new(big.Int).Set(prev[k])
}
