// Package partition defines vertical partitionings and the combinatorial
// machinery shared by all algorithms: validation, canonical forms, atomic
// fragments (primary partitions), set-partition enumeration, and Bell and
// Stirling numbers.
package partition

import (
	"fmt"
	"sort"
	"strings"

	"knives/internal/attrset"
	"knives/internal/schema"
)

// Partitioning is a complete, disjoint decomposition of a table's attributes
// into column groups. Parts are kept in canonical order (ascending smallest
// attribute index) so that partitionings compare and print deterministically.
type Partitioning struct {
	Table *schema.Table
	Parts []attrset.Set
}

// New builds a Partitioning after validating that parts are non-empty,
// pairwise disjoint, and cover every attribute of the table exactly once.
func New(t *schema.Table, parts []attrset.Set) (Partitioning, error) {
	p := Partitioning{Table: t, Parts: canonical(parts)}
	if err := p.Validate(); err != nil {
		return Partitioning{}, err
	}
	return p, nil
}

// Must is New that panics on invalid input.
func Must(t *schema.Table, parts []attrset.Set) Partitioning {
	p, err := New(t, parts)
	if err != nil {
		panic(err)
	}
	return p
}

// Row returns the no-vertical-partitioning layout: one partition with all
// attributes.
func Row(t *schema.Table) Partitioning {
	return Partitioning{Table: t, Parts: []attrset.Set{t.AllAttrs()}}
}

// Column returns the full vertical partitioning: one partition per attribute.
func Column(t *schema.Table) Partitioning {
	parts := make([]attrset.Set, t.NumAttrs())
	for i := range parts {
		parts[i] = attrset.Single(i)
	}
	return Partitioning{Table: t, Parts: parts}
}

// Validate checks completeness and disjointness.
func (p Partitioning) Validate() error {
	if p.Table == nil {
		return fmt.Errorf("partition: nil table")
	}
	var seen attrset.Set
	for _, part := range p.Parts {
		if part.IsEmpty() {
			return fmt.Errorf("partition: empty part in partitioning of %s", p.Table.Name)
		}
		if seen.Overlaps(part) {
			return fmt.Errorf("partition: overlapping parts in partitioning of %s", p.Table.Name)
		}
		seen = seen.Union(part)
	}
	if seen != p.Table.AllAttrs() {
		return fmt.Errorf("partition: partitioning of %s covers %v, want %v",
			p.Table.Name, seen, p.Table.AllAttrs())
	}
	return nil
}

// NumParts returns the number of column groups.
func (p Partitioning) NumParts() int { return len(p.Parts) }

// PartOf returns the column group containing attribute a, or the empty set.
func (p Partitioning) PartOf(a int) attrset.Set {
	for _, part := range p.Parts {
		if part.Has(a) {
			return part
		}
	}
	return 0
}

// Referenced returns the partitions a query touches.
func (p Partitioning) Referenced(query attrset.Set) []attrset.Set {
	var out []attrset.Set
	for _, part := range p.Parts {
		if part.Overlaps(query) {
			out = append(out, part)
		}
	}
	return out
}

// Equal reports whether two partitionings decompose the same table into the
// same column groups, regardless of part order.
func (p Partitioning) Equal(q Partitioning) bool {
	if p.Table != q.Table || len(p.Parts) != len(q.Parts) {
		return false
	}
	a, b := canonical(p.Parts), canonical(q.Parts)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Canonical returns a copy with parts sorted by smallest attribute index.
func (p Partitioning) Canonical() Partitioning {
	return Partitioning{Table: p.Table, Parts: canonical(p.Parts)}
}

func canonical(parts []attrset.Set) []attrset.Set {
	out := make([]attrset.Set, len(parts))
	copy(out, parts)
	sort.Slice(out, func(i, j int) bool {
		if out[i].IsEmpty() || out[j].IsEmpty() {
			return out[j].IsEmpty() && !out[i].IsEmpty()
		}
		return out[i].Min() < out[j].Min()
	})
	return out
}

// String renders the partitioning with column names, e.g.
// "[ps_partkey ps_suppkey | ps_availqty ps_supplycost | ps_comment]".
func (p Partitioning) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, part := range canonical(p.Parts) {
		if i > 0 {
			b.WriteString(" | ")
		}
		b.WriteString(strings.Join(p.Table.AttrNames(part), " "))
	}
	b.WriteByte(']')
	return b.String()
}

// Fragments computes the atomic fragments (AutoPart) / primary partitions
// (HYRISE) of a table under a workload: the coarsest grouping in which two
// attributes share a fragment iff every query references either both or
// neither. Attributes referenced by no query form a single trailing
// fragment; their placement can never affect any query's cost.
//
// Fragments are returned in canonical order.
func Fragments(tw schema.TableWorkload) []attrset.Set {
	type sig struct {
		words [2]uint64 // supports workloads up to 128 queries
		rest  string    // overflow for even larger workloads
	}
	sigOf := func(a int) sig {
		var s sig
		var overflow []byte
		for qi, q := range tw.Queries {
			if !q.Attrs.Has(a) {
				continue
			}
			switch {
			case qi < 64:
				s.words[0] |= 1 << uint(qi)
			case qi < 128:
				s.words[1] |= 1 << uint(qi-64)
			default:
				overflow = append(overflow, byte(qi>>24), byte(qi>>16), byte(qi>>8), byte(qi))
			}
		}
		s.rest = string(overflow)
		return s
	}
	groups := make(map[sig]attrset.Set)
	var order []sig
	for a := 0; a < tw.Table.NumAttrs(); a++ {
		s := sigOf(a)
		if _, ok := groups[s]; !ok {
			order = append(order, s)
		}
		groups[s] = groups[s].Add(a)
	}
	parts := make([]attrset.Set, 0, len(order))
	for _, s := range order {
		parts = append(parts, groups[s])
	}
	return canonical(parts)
}

// Merge returns a copy of parts with parts[i] and parts[j] replaced by their
// union. It panics if i == j or either index is out of range.
func Merge(parts []attrset.Set, i, j int) []attrset.Set {
	if i == j {
		panic("partition: Merge of a part with itself")
	}
	if j < i {
		i, j = j, i
	}
	out := make([]attrset.Set, 0, len(parts)-1)
	for k, p := range parts {
		switch k {
		case i:
			out = append(out, parts[i].Union(parts[j]))
		case j:
			// dropped
		default:
			out = append(out, p)
		}
	}
	return out
}

// Clone returns a copy of a part slice.
func Clone(parts []attrset.Set) []attrset.Set {
	out := make([]attrset.Set, len(parts))
	copy(out, parts)
	return out
}
