// Package cost implements the paper's unified I/O cost model (Section 4)
// and the HYRISE-style main-memory cost model used in its Table 6.
//
// Both models estimate the cost of answering a scan/projection query over a
// vertically partitioned table: the database reads, in full, every column
// group that contains at least one referenced attribute. The HDD model
// charges seek and scan time against a shared I/O buffer; the main-memory
// model charges cache misses.
package cost

import (
	"fmt"
	"math"
	"strings"

	"knives/internal/attrset"
	"knives/internal/schema"
)

// Disk describes the hardware/software setting the HDD model prices against.
// The defaults reproduce the paper's testbed as measured with Bonnie++
// (Section 4, "Common Hardware") plus its default experiment parameters
// (Section 6.3): 8 KB blocks, 8 MB buffer, 90 MB/s read, 4.84 ms seek.
type Disk struct {
	BlockSize      int64   // b, bytes
	BufferSize     int64   // Buff, bytes
	ReadBandwidth  float64 // BW, bytes/second
	WriteBandwidth float64 // bytes/second, used for layout-creation estimates
	SeekTime       float64 // ts, seconds
}

// DefaultDisk returns the paper's default disk characteristics.
func DefaultDisk() Disk {
	return Disk{
		BlockSize:      8 * 1024,
		BufferSize:     8 * 1024 * 1024,
		ReadBandwidth:  90.07 * 1e6,
		WriteBandwidth: 64.37 * 1e6,
		SeekTime:       4.84e-3,
	}
}

// Validate reports whether the disk parameters are usable.
func (d Disk) Validate() error {
	switch {
	case d.BlockSize <= 0:
		return fmt.Errorf("cost: block size %d must be positive", d.BlockSize)
	case d.BufferSize <= 0:
		return fmt.Errorf("cost: buffer size %d must be positive", d.BufferSize)
	case d.ReadBandwidth <= 0:
		return fmt.Errorf("cost: read bandwidth %v must be positive", d.ReadBandwidth)
	case d.SeekTime < 0:
		return fmt.Errorf("cost: seek time %v must be non-negative", d.SeekTime)
	}
	return nil
}

// WithBuffer returns a copy of d with a different buffer size.
func (d Disk) WithBuffer(bytes int64) Disk { d.BufferSize = bytes; return d }

// WithBlockSize returns a copy of d with a different block size.
func (d Disk) WithBlockSize(bytes int64) Disk { d.BlockSize = bytes; return d }

// WithReadBandwidth returns a copy of d with a different read bandwidth.
func (d Disk) WithReadBandwidth(bytesPerSec float64) Disk {
	d.ReadBandwidth = bytesPerSec
	return d
}

// WithSeekTime returns a copy of d with a different seek time.
func (d Disk) WithSeekTime(seconds float64) Disk { d.SeekTime = seconds; return d }

// Model estimates query costs over a partitioned table. Parts must be a
// complete, disjoint partitioning of the table's attributes; query is the
// set of attributes the query references. The returned unit is seconds for
// the HDD model and abstract cache-miss time for the MM model — the paper
// only ever compares costs under one model at a time.
type Model interface {
	// Name identifies the model in reports ("HDD", "MM").
	Name() string
	// QueryCost returns the cost of one execution of a query referencing
	// the given attributes.
	QueryCost(t *schema.Table, parts []attrset.Set, query attrset.Set) float64
}

// WorkloadCost sums the weighted query costs of a per-table workload.
//
// The weighted product is rounded in its own statement before the running
// sum so no architecture fuses multiply and add: incremental searches cache
// exactly these per-query values and must reproduce this sum bit for bit.
func WorkloadCost(m Model, tw schema.TableWorkload, parts []attrset.Set) float64 {
	var total float64
	for _, q := range tw.Queries {
		wq := q.Weight * m.QueryCost(tw.Table, parts, q.Attrs)
		total += wq
	}
	return total
}

// HDD is the paper's disk I/O cost model. For a query referencing partitions
// P_Q with row sizes s_i (total S):
//
//	buff_i       = floor(Buff * s_i / S)        (proportional buffer split)
//	blocksBuff_i = floor(buff_i / b)            (clamped to >= 1)
//	blocks_i     = ceil(N / floor(b / s_i))     (blocks of partition i on disk)
//	seek_i       = ts * ceil(blocks_i / blocksBuff_i)
//	scan_i       = blocks_i * b / BW
//	cost(Q)      = sum over i in P_Q of seek_i + scan_i
//
// The blocksBuff clamp covers buffers smaller than one block: the system
// then degrades to one seek per block instead of dividing by zero. Rows
// wider than a block (possible only for pathological block sizes) are laid
// out contiguously: blocks_i = ceil(N * s_i / b).
type HDD struct {
	Disk Disk
}

// NewHDD returns an HDD model over the given disk.
func NewHDD(d Disk) *HDD { return &HDD{Disk: d} }

// ModelByName returns the named cost model ("hdd" or "mm",
// case-insensitive) — the one mapping every surface that accepts a model
// name (knives CLI, knivesd flags) resolves through. The disk only applies
// to the HDD model and is validated there, so a degenerate buffer or block
// size fails loudly instead of silently pricing garbage.
func ModelByName(name string, d Disk) (Model, error) {
	switch strings.ToLower(name) {
	case "hdd":
		if err := d.Validate(); err != nil {
			return nil, err
		}
		return NewHDD(d), nil
	case "mm":
		return NewMM(), nil
	default:
		return nil, fmt.Errorf("cost: unknown cost model %q (hdd or mm)", name)
	}
}

// Name implements Model.
func (*HDD) Name() string { return "HDD" }

// QueryCost implements Model.
func (m *HDD) QueryCost(t *schema.Table, parts []attrset.Set, query attrset.Set) float64 {
	var totalRowSize int64
	for _, p := range parts {
		if p.Overlaps(query) {
			totalRowSize += t.SetSize(p)
		}
	}
	if totalRowSize == 0 {
		return 0
	}
	var cost float64
	for _, p := range parts {
		if !p.Overlaps(query) {
			continue
		}
		cost += m.PartitionCost(t, t.SetSize(p), totalRowSize)
	}
	return cost
}

// PartitionCoster is an optional fast path implemented by models whose
// query cost decomposes into a sum over referenced partitions that depends
// only on each partition's row size and the combined row size of all
// referenced partitions. Exhaustive searches use it to price candidates
// without materializing attribute sets.
type PartitionCoster interface {
	// PartitionCost prices reading one partition of row size rowSize when
	// the query's referenced partitions have combined row size
	// totalRowSize.
	PartitionCost(t *schema.Table, rowSize, totalRowSize int64) float64
}

// PartitionCost implements PartitionCoster.
func (m *HDD) PartitionCost(t *schema.Table, rowSize, totalRowSize int64) float64 {
	d := m.Disk
	blocks := PartitionBlocks(t.Rows, rowSize, d.BlockSize)

	buff := d.BufferSize * rowSize / totalRowSize
	blocksBuff := buff / d.BlockSize
	if blocksBuff < 1 {
		blocksBuff = 1
	}

	seeks := ceilDiv(blocks, blocksBuff)
	seekCost := d.SeekTime * float64(seeks)
	scanCost := float64(blocks) * float64(d.BlockSize) / d.ReadBandwidth
	return seekCost + scanCost
}

// PartitionSeeks returns the buffer refills the HDD formulas imply for
// reading one partition of row size rowSize in full, when the query's
// referenced partitions have combined row size totalRowSize:
// ceil(blocks / blocksBuff) under the proportional buffer split. This is
// the seek count inside PartitionCost, exported standalone so the replay
// subsystem predicts integer seeks from the same arithmetic the model
// prices them with; TestPartitionCostDecomposes pins the two in lockstep.
// (PartitionCost keeps its own inlined copy: it is the kernel's hottest
// function and must not compute PartitionBlocks twice.)
func PartitionSeeks(rows, rowSize, totalRowSize int64, d Disk) int64 {
	if rowSize <= 0 || totalRowSize <= 0 {
		return 0
	}
	blocks := PartitionBlocks(rows, rowSize, d.BlockSize)
	blocksBuff := d.BufferSize * rowSize / totalRowSize / d.BlockSize
	if blocksBuff < 1 {
		blocksBuff = 1
	}
	return ceilDiv(blocks, blocksBuff)
}

// PartitionBlocks returns the number of disk blocks a partition with the
// given row size occupies: rows are packed whole into blocks when they fit,
// otherwise stored contiguously.
func PartitionBlocks(rows, rowSize, blockSize int64) int64 {
	if rows == 0 || rowSize == 0 {
		return 0
	}
	rowsPerBlock := blockSize / rowSize
	if rowsPerBlock >= 1 {
		return ceilDiv(rows, rowsPerBlock)
	}
	return ceilDiv(rows*rowSize, blockSize)
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		panic(fmt.Sprintf("cost: ceilDiv by %d", b))
	}
	return (a + b - 1) / b
}

// ScanBytes returns the number of bytes a query reads from disk under the
// common-granularity rule (all blocks of every referenced partition). The
// metrics package uses this for the unnecessary-data-read figure.
func ScanBytes(t *schema.Table, parts []attrset.Set, query attrset.Set, blockSize int64) int64 {
	var total int64
	for _, p := range parts {
		if p.Overlaps(query) {
			total += PartitionBlocks(t.Rows, t.SetSize(p), blockSize) * blockSize
		}
	}
	return total
}

// MM is a main-memory cost model in the spirit of HYRISE: the cost of a
// query is the number of cache lines (of CacheLineSize bytes) transferred
// when scanning every referenced column group in full, times the miss
// latency. Sequential access dominates for scan/projection workloads, so a
// partition of row size s contributes N*s/L misses; there is no seek
// component, which is exactly why column grouping cannot beat column layout
// under this model (paper, Table 6 discussion).
type MM struct {
	CacheLineSize int64
	// MissLatency is the cost of one cache miss, in seconds.
	MissLatency float64
}

// NewMM returns a main-memory model with 64-byte cache lines and a
// 100 ns miss latency, a conventional DRAM figure.
func NewMM() *MM { return &MM{CacheLineSize: 64, MissLatency: 100e-9} }

// Name implements Model.
func (*MM) Name() string { return "MM" }

// QueryCost implements Model.
func (m *MM) QueryCost(t *schema.Table, parts []attrset.Set, query attrset.Set) float64 {
	var total float64
	for _, p := range parts {
		if !p.Overlaps(query) {
			continue
		}
		total += m.PartitionCost(t, t.SetSize(p), 0)
	}
	return total
}

// PartitionCost implements PartitionCoster. The MM model has no buffer
// coupling, so totalRowSize is ignored.
func (m *MM) PartitionCost(t *schema.Table, rowSize, _ int64) float64 {
	line := m.CacheLineSize
	if line <= 0 {
		line = 64
	}
	bytes := float64(t.Rows) * float64(rowSize)
	return math.Ceil(bytes/float64(line)) * m.MissLatency
}

// CreationTime estimates the time to transform a table from row layout into
// the given number of partition files: the table is read once at the read
// bandwidth and written once at the write bandwidth (Section 6.1 reports
// ~420 s for all of TPC-H SF 10).
func CreationTime(t *schema.Table, d Disk) float64 {
	bytes := float64(t.Bytes())
	w := d.WriteBandwidth
	if w <= 0 {
		w = d.ReadBandwidth
	}
	return bytes/d.ReadBandwidth + bytes/w
}

// BenchmarkCreationTime sums CreationTime over all tables of a benchmark.
func BenchmarkCreationTime(b *schema.Benchmark, d Disk) float64 {
	var total float64
	for _, t := range b.Tables {
		total += CreationTime(t, d)
	}
	return total
}
