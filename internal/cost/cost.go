// Package cost implements the paper's unified I/O cost model (Section 4)
// and the HYRISE-style main-memory cost model used in its Table 6 — both as
// instances of one device-parameterized layer (see device.go).
//
// Every model estimates the cost of answering a scan/projection query over
// a vertically partitioned table: the database reads, in full, every column
// group that contains at least one referenced attribute. Block-priced
// devices (HDD, SSD) charge seek and scan time against a shared I/O buffer;
// cache-priced devices (MM) charge cache misses.
package cost

import (
	"fmt"
	"math"

	"knives/internal/attrset"
	"knives/internal/schema"
)

// Disk is the historical name for Device from when the package knew only
// the paper's two hardware points. It survives as an alias so every layer
// that stores "the disk the engine simulates" keeps compiling; new code
// should say Device.
type Disk = Device

// DefaultDisk returns the paper's default disk characteristics — the HDD
// preset.
func DefaultDisk() Disk { return HDDDevice() }

// WithBuffer returns a copy of d with a different buffer size.
func (d Device) WithBuffer(bytes int64) Device { d.BufferSize = bytes; return d }

// WithBlockSize returns a copy of d with a different block size.
func (d Device) WithBlockSize(bytes int64) Device { d.BlockSize = bytes; return d }

// WithReadBandwidth returns a copy of d with a different read bandwidth.
func (d Device) WithReadBandwidth(bytesPerSec float64) Device {
	d.ReadBandwidth = bytesPerSec
	return d
}

// WithSeekTime returns a copy of d with a different seek time.
func (d Device) WithSeekTime(seconds float64) Device { d.SeekTime = seconds; return d }

// Model estimates query costs over a partitioned table. Parts must be a
// complete, disjoint partitioning of the table's attributes; query is the
// set of attributes the query references. The returned unit is seconds —
// the paper only ever compares costs under one model at a time.
type Model interface {
	// Name identifies the model in reports ("HDD", "SSD", "MM").
	Name() string
	// QueryCost returns the cost of one execution of a query referencing
	// the given attributes.
	QueryCost(t *schema.Table, parts []attrset.Set, query attrset.Set) float64
}

// WorkloadCost sums the weighted query costs of a per-table workload.
//
// The weighted product is rounded in its own statement before the running
// sum so no architecture fuses multiply and add: incremental searches cache
// exactly these per-query values and must reproduce this sum bit for bit.
func WorkloadCost(m Model, tw schema.TableWorkload, parts []attrset.Set) float64 {
	var total float64
	for _, q := range tw.Queries {
		wq := q.Weight * m.QueryCost(tw.Table, parts, q.Attrs)
		total += wq
	}
	return total
}

// DeviceModel prices queries on one Device. Block-priced devices follow the
// paper's disk formulas; for a query referencing partitions P_Q with row
// sizes s_i (total S):
//
//	buff_i       = floor(Buff * s_i / S)        (proportional buffer split)
//	blocksBuff_i = floor(buff_i / b)            (clamped to >= 1)
//	blocks_i     = ceil(N / floor(b / s_i))     (blocks of partition i on disk)
//	seek_i       = ts * ceil(blocks_i / blocksBuff_i)
//	scan_i       = blocks_i * b / BW
//	cost(Q)      = sum over i in P_Q of seek_i + scan_i
//
// The blocksBuff clamp covers buffers smaller than one block: the system
// then degrades to one seek per block instead of dividing by zero. Rows
// wider than a block (possible only for pathological block sizes) are laid
// out contiguously: blocks_i = ceil(N * s_i / b).
//
// Cache-priced devices charge each referenced partition its sequential
// stream of cache lines times the miss latency:
//
//	cost(Q) = sum over i in P_Q of ceil(N * s_i / L) * miss
//
// Both disciplines keep each per-partition term in its own statement and
// sum in the parts' order, which is what lets the storage engine's measured
// accounting equal these formulas bit for bit.
type DeviceModel struct {
	dev Device
}

// NewDeviceModel returns a model over a validated device spec.
func NewDeviceModel(dev Device) (*DeviceModel, error) {
	if err := dev.Validate(); err != nil {
		return nil, err
	}
	if dev.Name == "" {
		dev.Name = "custom"
	}
	return &DeviceModel{dev: dev}, nil
}

// NewHDD returns a block-priced model over the given device parameters,
// labeled HDD — the paper's unified disk I/O model. Unset cache parameters
// default so the engine's line accounting always has a granularity.
func NewHDD(d Disk) *DeviceModel {
	d.Name, d.Pricing = "HDD", PricingBlock
	if d.CacheLineSize == 0 {
		d.CacheLineSize = DefaultCacheLineSize
	}
	if d.MissLatency == 0 {
		d.MissLatency = DefaultMissLatency
	}
	return &DeviceModel{dev: d}
}

// NewSSD returns the flash instance of the block discipline: the SSD
// preset's near-zero seek and high read bandwidth.
func NewSSD() *DeviceModel { return &DeviceModel{dev: SSDDevice()} }

// NewMM returns the main-memory model with 64-byte cache lines and a
// 100 ns miss latency, a conventional DRAM figure.
func NewMM() *DeviceModel { return &DeviceModel{dev: MMDevice()} }

// ModelByName returns the named cost model, case-insensitively — the one
// mapping every surface that accepts a model name (knives CLI, knivesd
// flags and wire requests) resolves through. The name picks a device preset
// (see DeviceByName for the alias table); every non-zero hardware parameter
// of d overrides the preset's, and the resolved device is validated, so a
// degenerate buffer or block size fails loudly instead of silently pricing
// garbage.
func ModelByName(name string, d Disk) (Model, error) {
	dev, err := DeviceByName(name)
	if err != nil {
		return nil, err
	}
	return NewDeviceModel(dev.WithOverrides(d))
}

// Device returns the device the model prices.
func (m *DeviceModel) Device() Device { return m.dev }

// Name implements Model.
func (m *DeviceModel) Name() string { return m.dev.Name }

// QueryCost implements Model.
func (m *DeviceModel) QueryCost(t *schema.Table, parts []attrset.Set, query attrset.Set) float64 {
	var totalRowSize int64
	for _, p := range parts {
		if p.Overlaps(query) {
			totalRowSize += t.SetSize(p)
		}
	}
	if totalRowSize == 0 {
		return 0
	}
	var cost float64
	for _, p := range parts {
		if !p.Overlaps(query) {
			continue
		}
		cost += m.PartitionCost(t, t.SetSize(p), totalRowSize)
	}
	return cost
}

// PartitionCoster is an optional fast path implemented by models whose
// query cost decomposes into a sum over referenced partitions that depends
// only on each partition's row size and the combined row size of all
// referenced partitions. Exhaustive searches use it to price candidates
// without materializing attribute sets.
type PartitionCoster interface {
	// PartitionCost prices reading one partition of row size rowSize when
	// the query's referenced partitions have combined row size
	// totalRowSize.
	PartitionCost(t *schema.Table, rowSize, totalRowSize int64) float64
}

// PartitionCost implements PartitionCoster.
func (m *DeviceModel) PartitionCost(t *schema.Table, rowSize, totalRowSize int64) float64 {
	d := &m.dev
	if d.Pricing == PricingCache {
		line := d.CacheLineSize
		if line <= 0 {
			line = DefaultCacheLineSize
		}
		bytes := float64(t.Rows) * float64(rowSize)
		return math.Ceil(bytes/float64(line)) * d.MissLatency
	}
	blocks := PartitionBlocks(t.Rows, rowSize, d.BlockSize)

	buff := d.BufferSize * rowSize / totalRowSize
	blocksBuff := buff / d.BlockSize
	if blocksBuff < 1 {
		blocksBuff = 1
	}

	seeks := ceilDiv(blocks, blocksBuff)
	seekCost := d.SeekTime * float64(seeks)
	scanCost := float64(blocks) * float64(d.BlockSize) / d.ReadBandwidth
	return seekCost + scanCost
}

// PartitionSeeks returns the buffer refills the block-pricing formulas
// imply for reading one partition of row size rowSize in full, when the
// query's referenced partitions have combined row size totalRowSize:
// ceil(blocks / blocksBuff) under the proportional buffer split. This is
// the seek count inside PartitionCost, exported standalone so the replay
// subsystem predicts integer seeks from the same arithmetic the model
// prices them with; TestPartitionCostDecomposes pins the two in lockstep.
// (PartitionCost keeps its own inlined copy: it is the kernel's hottest
// function and must not compute PartitionBlocks twice.)
func PartitionSeeks(rows, rowSize, totalRowSize int64, d Disk) int64 {
	if rowSize <= 0 || totalRowSize <= 0 {
		return 0
	}
	blocks := PartitionBlocks(rows, rowSize, d.BlockSize)
	blocksBuff := d.BufferSize * rowSize / totalRowSize / d.BlockSize
	if blocksBuff < 1 {
		blocksBuff = 1
	}
	return ceilDiv(blocks, blocksBuff)
}

// PartitionBlocks returns the number of disk blocks a partition with the
// given row size occupies: rows are packed whole into blocks when they fit,
// otherwise stored contiguously.
func PartitionBlocks(rows, rowSize, blockSize int64) int64 {
	if rows == 0 || rowSize == 0 {
		return 0
	}
	rowsPerBlock := blockSize / rowSize
	if rowsPerBlock >= 1 {
		return ceilDiv(rows, rowsPerBlock)
	}
	return ceilDiv(rows*rowSize, blockSize)
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		panic(fmt.Sprintf("cost: ceilDiv by %d", b))
	}
	return (a + b - 1) / b
}

// ScanBytes returns the number of bytes a query reads from disk under the
// common-granularity rule (all blocks of every referenced partition). The
// metrics package uses this for the unnecessary-data-read figure.
func ScanBytes(t *schema.Table, parts []attrset.Set, query attrset.Set, blockSize int64) int64 {
	var total int64
	for _, p := range parts {
		if p.Overlaps(query) {
			total += PartitionBlocks(t.Rows, t.SetSize(p), blockSize) * blockSize
		}
	}
	return total
}

// CreationTime estimates the time to transform a table from row layout into
// the given number of partition files: the table is read once at the read
// bandwidth and written once at the write bandwidth (Section 6.1 reports
// ~420 s for all of TPC-H SF 10).
func CreationTime(t *schema.Table, d Disk) float64 {
	bytes := float64(t.Bytes())
	w := d.WriteBandwidth
	if w <= 0 {
		w = d.ReadBandwidth
	}
	return bytes/d.ReadBandwidth + bytes/w
}

// BenchmarkCreationTime sums CreationTime over all tables of a benchmark.
func BenchmarkCreationTime(b *schema.Benchmark, d Disk) float64 {
	var total float64
	for _, t := range b.Tables {
		total += CreationTime(t, d)
	}
	return total
}
