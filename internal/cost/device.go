package cost

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// The device layer: the paper's central result is that the best vertical
// partitioning depends on the hardware cost model (its HDD vs main-memory
// comparison), and this file turns that two-point comparison into a
// parameterized spectrum. A Device is the full hardware spec a cost model
// prices against; HDD, SSD, and MM are presets of it, and every surface
// that accepts a model name (CLIs, the knivesd wire format, replay and
// migration configs) resolves through the one table below.

// Pricing selects the discipline a Device's query cost follows.
type Pricing int

const (
	// PricingBlock charges seek plus scan time for reading whole disk
	// blocks through an I/O buffer shared proportionally across the
	// referenced partitions — the paper's unified model (Section 4). HDD
	// and SSD devices price this way; they differ only in constants.
	PricingBlock Pricing = iota
	// PricingCache charges cache-line transfers times the miss latency —
	// the HYRISE-style main-memory model of the paper's Table 6. There is
	// no seek component, which is why column grouping cannot beat a pure
	// column layout under it.
	PricingCache
)

// String names the pricing discipline.
func (p Pricing) String() string {
	if p == PricingCache {
		return "cache"
	}
	return "block"
}

// Device is the hardware/software setting a cost model prices against: the
// block geometry and buffer the storage engine materializes with, the
// mechanical constants (seek, bandwidths) the block discipline charges, and
// the cache parameters the cache discipline charges. The zero value is not
// usable; start from a preset (HDDDevice, SSDDevice, MMDevice) or validate
// an explicit spec with NewDeviceModel.
type Device struct {
	// Name identifies the device in reports ("HDD", "SSD", "MM").
	Name string
	// Pricing is the discipline queries are priced with.
	Pricing Pricing

	BlockSize      int64   // b, bytes
	BufferSize     int64   // Buff, bytes
	ReadBandwidth  float64 // BW, bytes/second
	WriteBandwidth float64 // bytes/second, for writes; 0 falls back to reads
	SeekTime       float64 // ts, seconds per buffer refill

	// CacheLineSize and MissLatency parameterize the cache discipline (and
	// the engine's cache-line accounting, which runs under every pricing).
	CacheLineSize int64   // bytes
	MissLatency   float64 // seconds per cache miss
}

// DefaultCacheLineSize is the conventional 64-byte cache line every preset
// uses.
const DefaultCacheLineSize = 64

// DefaultMissLatency is the conventional DRAM miss cost every preset uses.
const DefaultMissLatency = 100e-9

// HDDDevice returns the paper's testbed disk as measured with Bonnie++
// (Section 4, "Common Hardware") plus its default experiment parameters
// (Section 6.3): 8 KB blocks, 8 MB buffer, 90 MB/s read, 4.84 ms seek.
func HDDDevice() Device {
	return Device{
		Name:           "HDD",
		Pricing:        PricingBlock,
		BlockSize:      8 * 1024,
		BufferSize:     8 * 1024 * 1024,
		ReadBandwidth:  90.07 * 1e6,
		WriteBandwidth: 64.37 * 1e6,
		SeekTime:       4.84e-3,
		CacheLineSize:  DefaultCacheLineSize,
		MissLatency:    DefaultMissLatency,
	}
}

// SSDDevice returns a flash device in the same block discipline as the
// paper's disk but with the constants that make flash interesting for the
// comparison: near-zero seek (no head to move — 0.1 ms covers the flash
// translation layer) and several times the sequential read bandwidth
// (SATA-era figures, the hardware generation of the paper). Everything else
// — block geometry, buffer, cache line — matches the paper's testbed, so
// an HDD-vs-SSD ranking difference is attributable to the seek/bandwidth
// constants alone.
func SSDDevice() Device {
	return Device{
		Name:           "SSD",
		Pricing:        PricingBlock,
		BlockSize:      8 * 1024,
		BufferSize:     8 * 1024 * 1024,
		ReadBandwidth:  500 * 1e6,
		WriteBandwidth: 450 * 1e6,
		SeekTime:       0.1e-3,
		CacheLineSize:  DefaultCacheLineSize,
		MissLatency:    DefaultMissLatency,
	}
}

// MMDevice returns the main-memory device of the paper's Table 6: 64-byte
// cache lines at a 100 ns miss latency, priced with the cache discipline.
// It keeps the paper's block geometry so the storage engine can still
// materialize pages and count seeks/bytes for it (mechanics the cache
// pricing ignores); the bandwidth is a conventional DDR3 figure and the
// seek time is zero.
func MMDevice() Device {
	return Device{
		Name:          "MM",
		Pricing:       PricingCache,
		BlockSize:     8 * 1024,
		BufferSize:    8 * 1024 * 1024,
		ReadBandwidth: 12.8 * 1e9,
		SeekTime:      0,
		CacheLineSize: DefaultCacheLineSize,
		MissLatency:   DefaultMissLatency,
	}
}

// devicePresets is the one name table every surface resolves device/model
// names through — CLIs, the knivesd wire format, and the façade share it,
// so a name cannot mean different hardware on different paths.
var devicePresets = map[string]func() Device{
	"hdd":    HDDDevice,
	"disk":   HDDDevice,
	"ssd":    SSDDevice,
	"flash":  SSDDevice,
	"mm":     MMDevice,
	"mem":    MMDevice,
	"memory": MMDevice,
	"ram":    MMDevice,
}

// DeviceNames returns every accepted device/model name (canonical names and
// aliases), sorted — the list unknown-name errors print.
func DeviceNames() []string {
	names := make([]string, 0, len(devicePresets))
	for n := range devicePresets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DeviceByName returns the named device preset, case-insensitively. The
// unknown-name error lists every valid name and alias.
func DeviceByName(name string) (Device, error) {
	preset, ok := devicePresets[strings.ToLower(name)]
	if !ok {
		return Device{}, fmt.Errorf("cost: unknown device/model %q (valid: %s)",
			name, strings.Join(DeviceNames(), ", "))
	}
	return preset(), nil
}

// WithOverrides returns d with every non-zero hardware parameter of o
// applied over it. Name and Pricing are the device's identity, not
// parameters, and always stay d's — overlaying a full HDD spec onto the
// SSD preset changes the SSD's constants, never what it is priced as.
func (d Device) WithOverrides(o Device) Device {
	if o.BlockSize != 0 {
		d.BlockSize = o.BlockSize
	}
	if o.BufferSize != 0 {
		d.BufferSize = o.BufferSize
	}
	if o.ReadBandwidth != 0 {
		d.ReadBandwidth = o.ReadBandwidth
	}
	if o.WriteBandwidth != 0 {
		d.WriteBandwidth = o.WriteBandwidth
	}
	if o.SeekTime != 0 {
		d.SeekTime = o.SeekTime
	}
	if o.CacheLineSize != 0 {
		d.CacheLineSize = o.CacheLineSize
	}
	if o.MissLatency != 0 {
		d.MissLatency = o.MissLatency
	}
	return d
}

// Validate reports whether the device parameters are usable. NaN and
// infinite values fail the negated comparisons, so a corrupted override can
// never price garbage silently.
func (d Device) Validate() error {
	switch {
	case d.BlockSize <= 0:
		return fmt.Errorf("cost: block size %d must be positive", d.BlockSize)
	case d.BufferSize <= 0:
		return fmt.Errorf("cost: buffer size %d must be positive", d.BufferSize)
	case !(d.ReadBandwidth > 0) || math.IsInf(d.ReadBandwidth, 0):
		return fmt.Errorf("cost: read bandwidth %v must be positive and finite", d.ReadBandwidth)
	case d.WriteBandwidth != 0 && (!(d.WriteBandwidth > 0) || math.IsInf(d.WriteBandwidth, 0)):
		return fmt.Errorf("cost: write bandwidth %v must be positive and finite (or 0 to reuse reads)", d.WriteBandwidth)
	case !(d.SeekTime >= 0) || math.IsInf(d.SeekTime, 0):
		return fmt.Errorf("cost: seek time %v must be non-negative and finite", d.SeekTime)
	case d.CacheLineSize < 0:
		return fmt.Errorf("cost: cache line size %d must be non-negative", d.CacheLineSize)
	case !(d.MissLatency >= 0) || math.IsInf(d.MissLatency, 0):
		return fmt.Errorf("cost: miss latency %v must be non-negative and finite", d.MissLatency)
	}
	return nil
}

// Key canonically identifies the device for cache keying: two models whose
// devices share a key price every workload bit-identically, because the
// pricing arithmetic reads exactly the fields printed here.
func (d Device) Key() string {
	return fmt.Sprintf("%s/%s b=%d buf=%d r=%b w=%b s=%b l=%d m=%b",
		d.Name, d.Pricing, d.BlockSize, d.BufferSize,
		d.ReadBandwidth, d.WriteBandwidth, d.SeekTime, d.CacheLineSize, d.MissLatency)
}
