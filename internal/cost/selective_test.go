package cost

import (
	"testing"

	"knives/internal/attrset"
)

func TestSelectiveFallsBackWithoutPredicate(t *testing.T) {
	tab := testTable(t, 1_000_000, 4, 8, 100)
	base := NewHDD(DefaultDisk())
	sel := NewSelective(DefaultDisk(), 0, 0.001)
	parts := []attrset.Set{attrset.Of(0), attrset.Of(1), attrset.Of(2)}
	// Query not referencing the selection attribute: identical pricing.
	q := attrset.Of(1, 2)
	if got, want := sel.QueryCost(tab, parts, q), base.QueryCost(tab, parts, q); got != want {
		t.Errorf("fallback cost %v != base %v", got, want)
	}
	// Selectivity 1: everything matches, probing cannot win.
	sel1 := NewSelective(DefaultDisk(), 0, 1)
	q = attrset.Of(0, 1)
	if got, want := sel1.QueryCost(tab, parts, q), base.QueryCost(tab, parts, q); got != want {
		t.Errorf("selectivity-1 cost %v != base %v", got, want)
	}
}

func TestSelectiveProbingWinsForRareMatches(t *testing.T) {
	tab := testTable(t, 10_000_000, 4, 200)
	parts := []attrset.Set{attrset.Of(0), attrset.Of(1)}
	q := attrset.Of(0, 1)
	rare := NewSelective(DefaultDisk(), 0, 1e-6)
	common := NewSelective(DefaultDisk(), 0, 0.5)
	// With one-in-a-million matches, probing the wide partition must be far
	// cheaper than scanning it.
	scanOnly := NewHDD(DefaultDisk()).QueryCost(tab, parts, q)
	if got := rare.QueryCost(tab, parts, q); got >= scanOnly {
		t.Errorf("rare-match cost %v not below full scan %v", got, scanOnly)
	}
	// With half the tuples matching, probing loses and cost equals the
	// two-phase scan (selection partition with full buffer + rest).
	if got := common.QueryCost(tab, parts, q); got > scanOnly*1.5 {
		t.Errorf("common-match cost %v should stay near scan cost %v", got, scanOnly)
	}
}

// Cost is monotone in selectivity: more matches never cost less.
func TestSelectiveMonotoneInSelectivity(t *testing.T) {
	tab := testTable(t, 5_000_000, 4, 50, 100)
	parts := []attrset.Set{attrset.Of(0), attrset.Of(1), attrset.Of(2)}
	q := attrset.Of(0, 1, 2)
	prev := -1.0
	for _, sel := range []float64{1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1} {
		m := NewSelective(DefaultDisk(), 0, sel)
		c := m.QueryCost(tab, parts, q)
		if c < prev-1e-9 {
			t.Errorf("cost decreased from %v to %v at selectivity %v", prev, c, sel)
		}
		prev = c
	}
}

// The paper's Section 7 claim: the layout is only affected when queries
// select fewer than roughly one tuple in 10^4. We check the mechanism that
// drives it: at selectivity 1e-3 probing already loses against scanning for
// TPC-H-like partition widths, so the selective model degenerates to the
// base model and cannot change layout decisions.
func TestSelectiveThresholdMechanism(t *testing.T) {
	tab := testTable(t, 60_000_000, 4, 8, 8, 44) // lineitem-ish widths
	parts := []attrset.Set{attrset.Of(0), attrset.Of(1), attrset.Of(2), attrset.Of(3)}
	q := attrset.Of(0, 1, 2, 3)
	base := NewHDD(DefaultDisk())
	baseCost := base.QueryCost(tab, parts, q)

	atThreshold := NewSelective(DefaultDisk(), 0, 1e-3).QueryCost(tab, parts, q)
	belowThreshold := NewSelective(DefaultDisk(), 0, 1e-6).QueryCost(tab, parts, q)
	if atThreshold < baseCost*0.8 {
		t.Errorf("at selectivity 1e-3 probing should not dominate: %v vs base %v", atThreshold, baseCost)
	}
	if belowThreshold > baseCost*0.5 {
		t.Errorf("at selectivity 1e-6 probing should dominate: %v vs base %v", belowThreshold, baseCost)
	}
}
