package cost

import (
	"fmt"
	"sort"

	"knives/internal/attrset"
	"knives/internal/schema"
)

// Migration pricing: the cost of transforming a table from one vertical
// layout into another on a live store. The paper compares static layouts;
// its Section 6.3 aside (and the advisor's drift trackers) admit that
// workloads shift, which makes "is a re-layout worth it?" a costable
// question: the store must READ every partition that does not survive the
// transition and WRITE every partition that newly appears, while untouched
// column groups cost nothing.
//
// The discipline mirrors the query cost model exactly so the storage
// engine's Repartition can reproduce every number bit for bit (the same
// contract the replay subsystem pins for scans):
//
//   - partitions are priced one at a time, each term computed and added in
//     its own statement (no fused multiply-add),
//   - the read phase shares the I/O buffer proportionally across the moved
//     source partitions, the write phase across the created partitions —
//     the common-granularity rule applied to the migration itself,
//   - the summation order is DECREASING row size, ties broken by canonical
//     (smallest-attribute) order. Per-partition terms depend only on row
//     sizes and the disk, so this order makes the total invariant under
//     column relabeling: a permuted table yields the same multiset of row
//     sizes, hence the identical floating-point sum.

// PartMove prices the movement of one partition (a read of a source
// partition or a write of a target partition).
type PartMove struct {
	// Attrs is the partition's column group.
	Attrs attrset.Set
	// RowSize is the partition's bytes per row.
	RowSize int64
	// Blocks and Bytes are the partition's size on disk.
	Blocks, Bytes int64
	// Seeks is the buffer refills the HDD discipline charges (0 under MM).
	Seeks int64
	// CacheLines is the cache lines of the partition's logical stream
	// (0 under HDD).
	CacheLines int64
	// Seconds is this partition's term of the migration cost.
	Seconds float64
}

// Migration is the priced breakdown of a layout transition: the moved
// source partitions (reads), the created target partitions (writes), and
// the total in the model's unit. Partitions shared by both layouts appear
// in neither list — they are not touched, which is why the cost of an
// identity migration is exactly zero.
type Migration struct {
	Model string
	// Pricing is the discipline the device was priced with; it decides
	// which mechanical dimension (seeks/bytes vs cache lines) a measured
	// repartition must match.
	Pricing Pricing
	// Reads and Writes are ordered by decreasing row size (ties by
	// canonical order) — the summation order of Seconds.
	Reads, Writes []PartMove
	// Integer totals across the moves.
	BytesRead, BytesWritten   int64
	SeeksRead, SeeksWrite     int64
	LinesRead, LinesWritten   int64
	BlocksRead, BlocksWritten int64
	// Seconds is the total migration cost in the model's unit.
	Seconds float64
}

// movedParts returns the partitions of a that are absent from b, i.e. the
// column groups the transition does not preserve.
func movedParts(a, b []attrset.Set) []attrset.Set {
	keep := make(map[attrset.Set]bool, len(b))
	for _, p := range b {
		keep[p] = true
	}
	var out []attrset.Set
	for _, p := range a {
		if !keep[p] {
			out = append(out, p)
		}
	}
	return out
}

// orderMoves sorts partitions by decreasing row size, ties by smallest
// attribute index. Equal row sizes price identically, so tie order can
// never change the floating-point sum — which is what makes the migration
// cost exactly invariant under column relabeling.
func orderMoves(t *schema.Table, parts []attrset.Set) []attrset.Set {
	out := append([]attrset.Set(nil), parts...)
	sort.Slice(out, func(i, j int) bool {
		si, sj := t.SetSize(out[i]), t.SetSize(out[j])
		if si != sj {
			return si > sj
		}
		return out[i].Min() < out[j].Min()
	})
	return out
}

// MigrationCost prices the transition oldParts -> newParts over table t
// under the given model. Both slices must be valid partitionings of t
// (complete, disjoint); callers validate via the partition package. The
// returned breakdown lists every moved partition's term in the exact order
// the total was summed, so the storage engine's measured accounting can be
// compared bit for bit.
func MigrationCost(m Model, t *schema.Table, oldParts, newParts []attrset.Set) (Migration, error) {
	dm, ok := m.(*DeviceModel)
	if !ok {
		return Migration{}, fmt.Errorf("cost: model %s has no migration pricing", m.Name())
	}
	reads := orderMoves(t, movedParts(oldParts, newParts))
	writes := orderMoves(t, movedParts(newParts, oldParts))
	if dm.dev.Pricing == PricingCache {
		return cacheMigration(dm.dev, t, reads, writes), nil
	}
	return blockMigration(dm.dev, t, reads, writes), nil
}

// blockMigration prices a migration on a block-priced device: every moved
// source partition is read in full through the proportionally shared
// buffer, every created partition written in full through the same
// discipline at the write bandwidth (falling back to the read bandwidth
// when unset, like CreationTime).
func blockMigration(d Device, t *schema.Table, reads, writes []attrset.Set) Migration {
	mig := Migration{Model: d.Name, Pricing: PricingBlock}
	var readRowSize, writeRowSize int64
	for _, p := range reads {
		readRowSize += t.SetSize(p)
	}
	for _, p := range writes {
		writeRowSize += t.SetSize(p)
	}
	w := d.WriteBandwidth
	if w <= 0 {
		w = d.ReadBandwidth
	}
	for _, p := range reads {
		s := t.SetSize(p)
		blocks := PartitionBlocks(t.Rows, s, d.BlockSize)
		bytes := blocks * d.BlockSize
		seeks := PartitionSeeks(t.Rows, s, readRowSize, d)
		sec := d.SeekTime*float64(seeks) + float64(bytes)/d.ReadBandwidth
		mig.Reads = append(mig.Reads, PartMove{
			Attrs: p, RowSize: s, Blocks: blocks, Bytes: bytes, Seeks: seeks, Seconds: sec,
		})
		mig.BlocksRead += blocks
		mig.BytesRead += bytes
		mig.SeeksRead += seeks
		mig.Seconds += sec
	}
	for _, p := range writes {
		s := t.SetSize(p)
		blocks := PartitionBlocks(t.Rows, s, d.BlockSize)
		bytes := blocks * d.BlockSize
		seeks := PartitionSeeks(t.Rows, s, writeRowSize, d)
		sec := d.SeekTime*float64(seeks) + float64(bytes)/w
		mig.Writes = append(mig.Writes, PartMove{
			Attrs: p, RowSize: s, Blocks: blocks, Bytes: bytes, Seeks: seeks, Seconds: sec,
		})
		mig.BlocksWritten += blocks
		mig.BytesWritten += bytes
		mig.SeeksWrite += seeks
		mig.Seconds += sec
	}
	return mig
}

// StreamLines returns the cache lines of a partition's logical stream of
// rows*rowSize bytes at the given line granularity — the integer arithmetic
// the storage engine counts transfers with (engine.Scan uses the identical
// formula), exported so the MM migration model and the engine can never
// disagree by a rounding mode.
func StreamLines(rows, rowSize, line int64) int64 {
	if rows <= 0 || rowSize <= 0 || line <= 0 {
		return 0
	}
	return (rows*rowSize-1)/line + 1
}

// cacheMigration prices a migration on a cache-priced device: every moved
// byte enters the cache once on read and once on write, so each moved
// partition charges its stream's cache lines times the miss latency on each
// side.
func cacheMigration(d Device, t *schema.Table, reads, writes []attrset.Set) Migration {
	mig := Migration{Model: d.Name, Pricing: PricingCache}
	line := d.CacheLineSize
	if line <= 0 {
		line = DefaultCacheLineSize
	}
	for _, p := range reads {
		s := t.SetSize(p)
		lines := StreamLines(t.Rows, s, line)
		sec := float64(lines) * d.MissLatency
		mig.Reads = append(mig.Reads, PartMove{
			Attrs: p, RowSize: s, CacheLines: lines, Seconds: sec,
		})
		mig.LinesRead += lines
		mig.Seconds += sec
	}
	for _, p := range writes {
		s := t.SetSize(p)
		lines := StreamLines(t.Rows, s, line)
		sec := float64(lines) * d.MissLatency
		mig.Writes = append(mig.Writes, PartMove{
			Attrs: p, RowSize: s, CacheLines: lines, Seconds: sec,
		})
		mig.LinesWritten += lines
		mig.Seconds += sec
	}
	return mig
}
