package cost

import (
	"math"
	"strings"
	"testing"

	"knives/internal/attrset"
	"knives/internal/schema"
)

func TestDevicePresets(t *testing.T) {
	hdd, ssd, mm := HDDDevice(), SSDDevice(), MMDevice()
	for _, d := range []Device{hdd, ssd, mm} {
		if err := d.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", d.Name, err)
		}
	}
	if hdd.Pricing != PricingBlock || ssd.Pricing != PricingBlock || mm.Pricing != PricingCache {
		t.Error("preset pricing disciplines wrong")
	}
	// The SSD is the point between the paper's endpoints: same block
	// discipline and geometry as the HDD, radically cheaper mechanics.
	if ssd.SeekTime >= hdd.SeekTime/10 {
		t.Errorf("SSD seek %v not near-zero vs HDD %v", ssd.SeekTime, hdd.SeekTime)
	}
	if ssd.ReadBandwidth <= hdd.ReadBandwidth {
		t.Errorf("SSD read bandwidth %v not above HDD %v", ssd.ReadBandwidth, hdd.ReadBandwidth)
	}
	if ssd.BlockSize != hdd.BlockSize || ssd.BufferSize != hdd.BufferSize {
		t.Error("SSD geometry differs from HDD: a ranking difference would not be attributable to mechanics")
	}
	if DefaultDisk() != hdd {
		t.Error("DefaultDisk is not the HDD preset")
	}
}

// The one name table: every surface resolves model/device names through it,
// case-insensitively, with aliases — and the unknown-name error lists every
// valid name.
func TestModelByNameAliases(t *testing.T) {
	cases := []struct {
		name    string
		device  string
		pricing Pricing
	}{
		{"hdd", "HDD", PricingBlock},
		{"HDD", "HDD", PricingBlock},
		{"Disk", "HDD", PricingBlock},
		{"ssd", "SSD", PricingBlock},
		{"SSD", "SSD", PricingBlock},
		{"Flash", "SSD", PricingBlock},
		{"mm", "MM", PricingCache},
		{"MM", "MM", PricingCache},
		{"Mem", "MM", PricingCache},
		{"MEMORY", "MM", PricingCache},
		{"ram", "MM", PricingCache},
	}
	for _, tc := range cases {
		m, err := ModelByName(tc.name, Device{})
		if err != nil {
			t.Errorf("ModelByName(%q): %v", tc.name, err)
			continue
		}
		dm := m.(*DeviceModel)
		if dm.Name() != tc.device || dm.Device().Pricing != tc.pricing {
			t.Errorf("ModelByName(%q) = %s/%v, want %s/%v",
				tc.name, dm.Name(), dm.Device().Pricing, tc.device, tc.pricing)
		}
		// The façade and every CLI resolve through DeviceByName too; the
		// two must agree name for name.
		dev, err := DeviceByName(tc.name)
		if err != nil || dev.Name != tc.device {
			t.Errorf("DeviceByName(%q) = %v, %v; want %s", tc.name, dev.Name, err, tc.device)
		}
	}
	_, err := ModelByName("tape", Device{})
	if err == nil {
		t.Fatal("accepted unknown device name")
	}
	for _, want := range DeviceNames() {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-name error %q does not list %q", err, want)
		}
	}
}

func TestModelByNameOverrides(t *testing.T) {
	// Non-zero override fields replace preset values; zeros keep them.
	m, err := ModelByName("ssd", Device{BufferSize: 1 << 20, SeekTime: 2e-3})
	if err != nil {
		t.Fatal(err)
	}
	dev := m.(*DeviceModel).Device()
	if dev.BufferSize != 1<<20 || dev.SeekTime != 2e-3 {
		t.Errorf("overrides not applied: %+v", dev)
	}
	if dev.ReadBandwidth != SSDDevice().ReadBandwidth || dev.Name != "SSD" {
		t.Errorf("unset fields did not keep the preset: %+v", dev)
	}
	// NaN/Inf overrides must fail validation, never price.
	for _, bad := range []Device{
		{ReadBandwidth: math.NaN()},
		{ReadBandwidth: math.Inf(1)},
		{SeekTime: math.NaN()},
		{MissLatency: math.Inf(1)},
		{WriteBandwidth: -1},
		{BlockSize: -8},
	} {
		if _, err := ModelByName("hdd", bad); err == nil {
			t.Errorf("accepted degenerate override %+v", bad)
		}
	}
}

// The migration pricing must generalize with the device layer: any valid
// block device prices like the HDD discipline, any cache device like MM,
// and an identity transition is exactly zero everywhere.
func TestMigrationCostAnyDevice(t *testing.T) {
	tab := testTable(t, 10_000, 8, 4, 100, 25)
	from := []attrset.Set{attrset.Of(0, 1), attrset.Of(2), attrset.Of(3)}
	to := []attrset.Set{attrset.Of(0), attrset.Of(1, 2), attrset.Of(3)}
	for _, dev := range []Device{HDDDevice(), SSDDevice(), MMDevice()} {
		m, err := NewDeviceModel(dev)
		if err != nil {
			t.Fatal(err)
		}
		mig, err := MigrationCost(m, tab, from, to)
		if err != nil {
			t.Fatalf("%s: %v", dev.Name, err)
		}
		if mig.Model != dev.Name || mig.Pricing != dev.Pricing {
			t.Errorf("%s: migration labeled %s/%v", dev.Name, mig.Model, mig.Pricing)
		}
		if !(mig.Seconds > 0) {
			t.Errorf("%s: non-identity migration priced %v", dev.Name, mig.Seconds)
		}
		id, err := MigrationCost(m, tab, from, from)
		if err != nil {
			t.Fatal(err)
		}
		if id.Seconds != 0 || len(id.Reads) != 0 || len(id.Writes) != 0 {
			t.Errorf("%s: identity migration not exactly zero: %+v", dev.Name, id)
		}
	}
}

// FuzzDeviceCost asserts the device layer's core invariants for ANY valid
// device, not just the presets: WorkloadCost is finite and non-negative,
// and the memoized partition-cost path is bit-identical to the direct one
// (the property every sharded search rests on).
func FuzzDeviceCost(f *testing.F) {
	f.Add(int64(1_000_000), int64(8192), int64(8<<20), 90.07e6, 4.84e-3, int64(64), 100e-9, false, uint64(0b1011))
	f.Add(int64(50_000), int64(8192), int64(8<<20), 500e6, 0.1e-3, int64(64), 100e-9, false, uint64(0b0110))
	f.Add(int64(6_000_000), int64(4096), int64(1<<20), 12.8e9, 0.0, int64(128), 50e-9, true, uint64(0b1111))
	f.Add(int64(1), int64(1), int64(1), 1.0, 0.0, int64(1), 0.0, true, uint64(1))

	f.Fuzz(func(t *testing.T, rows, blockSize, bufferSize int64, readBW, seek float64, line int64, miss float64, cache bool, queryBits uint64) {
		dev := Device{
			BlockSize:     blockSize,
			BufferSize:    bufferSize,
			ReadBandwidth: readBW,
			SeekTime:      seek,
			CacheLineSize: line,
			MissLatency:   miss,
		}
		if cache {
			dev.Pricing = PricingCache
		}
		// Bound the domain to devices Validate accepts and geometry that
		// cannot overflow the integer block arithmetic.
		if dev.Validate() != nil || rows < 0 || rows > 1<<40 ||
			blockSize > 1<<30 || bufferSize > 1<<40 || line > 1<<20 ||
			readBW < 1e-3 || readBW > 1e15 || seek > 1e6 || miss > 1e3 {
			t.Skip()
		}
		m, err := NewDeviceModel(dev)
		if err != nil {
			t.Skip()
		}
		tab := testTable(t, rows, 4, 8, 1, 25, 10, 44)
		parts := []attrset.Set{attrset.Of(0, 1), attrset.Of(2, 3), attrset.Of(4), attrset.Of(5)}
		tw := schema.TableWorkload{Table: tab, Queries: []schema.TableQuery{
			{ID: "q1", Weight: 1, Attrs: attrset.Set(queryBits) & tab.AllAttrs()},
			{ID: "q2", Weight: 2.5, Attrs: attrset.Set(queryBits>>6) & tab.AllAttrs()},
			{ID: "q3", Weight: 0.5, Attrs: tab.AllAttrs()},
		}}
		total := WorkloadCost(m, tw, parts)
		if math.IsNaN(total) || math.IsInf(total, 0) || total < 0 {
			t.Fatalf("WorkloadCost = %v for device %+v", total, dev)
		}
		// Memo == direct, bitwise, for this device's PartitionCost.
		memo := NewPartitionCostMemo(m, tab)
		var rowSize, totalRowSize int64
		for _, p := range parts {
			rowSize = tab.SetSize(p)
			totalRowSize += rowSize
		}
		for _, p := range parts {
			s := tab.SetSize(p)
			direct := m.PartitionCost(tab, s, totalRowSize)
			if got := memo.Cost(s, totalRowSize); got != direct {
				t.Fatalf("memo = %v, direct = %v (device %+v)", got, direct, dev)
			}
			if got := memo.Cost(s, totalRowSize); got != direct {
				t.Fatalf("memo cached = %v, direct = %v (device %+v)", got, direct, dev)
			}
		}
	})
}
