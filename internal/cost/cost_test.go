package cost

import (
	"math"
	"math/rand"
	"testing"

	"knives/internal/attrset"
	"knives/internal/schema"
)

func testTable(t *testing.T, rows int64, sizes ...int) *schema.Table {
	t.Helper()
	cols := make([]schema.Column, len(sizes))
	for i, s := range sizes {
		cols[i] = schema.Column{Name: string(rune('a' + i)), Size: s}
	}
	tab, err := schema.NewTable("t", rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestDefaultDiskMatchesPaper(t *testing.T) {
	d := DefaultDisk()
	if d.BlockSize != 8192 {
		t.Errorf("block size = %d", d.BlockSize)
	}
	if d.BufferSize != 8<<20 {
		t.Errorf("buffer size = %d", d.BufferSize)
	}
	if math.Abs(d.ReadBandwidth-90.07e6) > 1 {
		t.Errorf("read bandwidth = %v", d.ReadBandwidth)
	}
	if math.Abs(d.SeekTime-4.84e-3) > 1e-9 {
		t.Errorf("seek time = %v", d.SeekTime)
	}
	if err := d.Validate(); err != nil {
		t.Error(err)
	}
}

func TestDiskValidate(t *testing.T) {
	bad := []Disk{
		{BlockSize: 0, BufferSize: 1, ReadBandwidth: 1},
		{BlockSize: 1, BufferSize: 0, ReadBandwidth: 1},
		{BlockSize: 1, BufferSize: 1, ReadBandwidth: 0},
		{BlockSize: 1, BufferSize: 1, ReadBandwidth: 1, SeekTime: -1},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, d)
		}
	}
}

func TestDiskWithHelpers(t *testing.T) {
	d := DefaultDisk()
	if got := d.WithBuffer(123).BufferSize; got != 123 {
		t.Errorf("WithBuffer = %d", got)
	}
	if got := d.WithBlockSize(512).BlockSize; got != 512 {
		t.Errorf("WithBlockSize = %d", got)
	}
	if got := d.WithReadBandwidth(5).ReadBandwidth; got != 5 {
		t.Errorf("WithReadBandwidth = %v", got)
	}
	if got := d.WithSeekTime(7).SeekTime; got != 7 {
		t.Errorf("WithSeekTime = %v", got)
	}
	// Original is unchanged (value semantics).
	if d.BufferSize != 8<<20 {
		t.Error("WithBuffer mutated the receiver")
	}
}

func TestPartitionBlocks(t *testing.T) {
	cases := []struct {
		rows, rowSize, block, want int64
	}{
		{0, 10, 100, 0},
		{100, 10, 100, 10}, // 10 rows per block
		{101, 10, 100, 11}, // remainder block
		{100, 33, 100, 34}, // 3 rows per block, ceil(100/3)
		{10, 250, 100, 25}, // row wider than block: contiguous
		{1, 250, 100, 3},   // single wide row
		{1000, 1, 8192, 1}, // all rows fit one block
	}
	for _, c := range cases {
		if got := PartitionBlocks(c.rows, c.rowSize, c.block); got != c.want {
			t.Errorf("PartitionBlocks(%d,%d,%d) = %d, want %d", c.rows, c.rowSize, c.block, got, c.want)
		}
	}
}

// Verify the HDD formulas against a hand-computed example.
func TestHDDQueryCostHandComputed(t *testing.T) {
	// Table: 1000 rows, two columns of 8 and 4 bytes. Disk: 100-byte blocks,
	// 1000-byte buffer, 1000 B/s bandwidth, 0.01 s seek.
	tab := testTable(t, 1000, 8, 4)
	d := Disk{BlockSize: 100, BufferSize: 1000, ReadBandwidth: 1000, SeekTime: 0.01}
	m := NewHDD(d)
	parts := []attrset.Set{attrset.Of(0), attrset.Of(1)}
	q := attrset.Of(0, 1)

	// Partition 0: s=8, S=12. buff = floor(1000*8/12) = 666; blocksBuff =
	// floor(666/100) = 6. rowsPerBlock = floor(100/8) = 12; blocks =
	// ceil(1000/12) = 84. seeks = ceil(84/6) = 14 -> 0.14 s. scan =
	// 84*100/1000 = 8.4 s.
	// Partition 1: s=4. buff = floor(1000*4/12) = 333; blocksBuff = 3.
	// rowsPerBlock = 25; blocks = 40. seeks = ceil(40/3) = 14 -> 0.14 s.
	// scan = 40*100/1000 = 4 s.
	want := (0.14 + 8.4) + (0.14 + 4.0)
	got := m.QueryCost(tab, parts, q)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("QueryCost = %v, want %v", got, want)
	}
}

func TestHDDReadsOnlyReferencedPartitions(t *testing.T) {
	tab := testTable(t, 1000, 8, 4, 100)
	m := NewHDD(DefaultDisk())
	parts := []attrset.Set{attrset.Of(0), attrset.Of(1), attrset.Of(2)}

	only0 := m.QueryCost(tab, parts, attrset.Of(0))
	with2 := m.QueryCost(tab, parts, attrset.Of(0, 2))
	if only0 >= with2 {
		t.Errorf("adding a referenced partition should cost more: %v vs %v", only0, with2)
	}
	if got := m.QueryCost(tab, parts, 0); got != 0 {
		t.Errorf("empty query cost = %v, want 0", got)
	}
}

// Row layout reads everything regardless of the query; column layout reads
// only what is referenced. For a single-attribute query over a wide table,
// column must win under any sane disk.
func TestHDDColumnBeatsRowForNarrowQueries(t *testing.T) {
	tab := testTable(t, 100_000, 4, 8, 25, 100, 150)
	m := NewHDD(DefaultDisk())
	row := []attrset.Set{tab.AllAttrs()}
	col := make([]attrset.Set, tab.NumAttrs())
	for i := range col {
		col[i] = attrset.Single(i)
	}
	q := attrset.Of(0)
	if rc, cc := m.QueryCost(tab, row, q), m.QueryCost(tab, col, q); cc >= rc {
		t.Errorf("column (%v) should beat row (%v) for a 1-attr query", cc, rc)
	}
}

// The clamp: with a buffer far smaller than a block the model degrades to
// one seek per block instead of failing.
func TestHDDTinyBufferClamp(t *testing.T) {
	tab := testTable(t, 10_000, 50)
	d := Disk{BlockSize: 8192, BufferSize: 100, ReadBandwidth: 1e6, SeekTime: 0.001}
	m := NewHDD(d)
	got := m.QueryCost(tab, []attrset.Set{attrset.Of(0)}, attrset.Of(0))
	blocks := PartitionBlocks(10_000, 50, 8192)
	want := 0.001*float64(blocks) + float64(blocks)*8192/1e6
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("tiny-buffer cost = %v, want %v", got, want)
	}
}

// Property (paper Section 1.2, "Random I/O"): merging two partitions that a
// query reads together never increases its cost beyond block-packing waste.
// Proportional buffer sharing makes the merged seek cost at most the sum of
// the split seek costs (mediant inequality); the only way merging can cost
// more is internal fragmentation, because blocks_i = ceil(N/floor(b/s_i))
// wastes the block tail and the merged row size wastes differently. This
// bounded form of the invariant is what justifies the fragment-level
// brute-force reduction.
func TestHDDMergingCoAccessedPartitionsNeverHurts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		nCols := 2 + rng.Intn(6)
		sizes := make([]int, nCols)
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(120)
		}
		tab := testTable(t, int64(1000+rng.Intn(1_000_000)), sizes...)
		d := DefaultDisk().
			WithBuffer(int64(1+rng.Intn(64)) * 1 << 20).
			WithBlockSize([]int64{2048, 4096, 8192, 16384}[rng.Intn(4)])
		m := NewHDD(d)

		// Split: every attribute its own partition. Merged: attributes 0 and
		// 1 together. Query references all attributes, so 0 and 1 are always
		// co-accessed.
		split := make([]attrset.Set, nCols)
		for i := range split {
			split[i] = attrset.Single(i)
		}
		merged := append([]attrset.Set{attrset.Of(0, 1)}, split[2:]...)
		q := tab.AllAttrs()

		cSplit := m.QueryCost(tab, split, q)
		cMerged := m.QueryCost(tab, merged, q)
		// Slack = scan time of the extra blocks lost to packing waste,
		// plus one seek and one block of floor/ceil rounding.
		s0, s1 := int64(sizes[0]), int64(sizes[1])
		waste := PartitionBlocks(tab.Rows, s0+s1, d.BlockSize) -
			PartitionBlocks(tab.Rows, s0, d.BlockSize) -
			PartitionBlocks(tab.Rows, s1, d.BlockSize)
		if waste < 0 {
			waste = 0
		}
		slack := d.SeekTime + float64(waste+1)*float64(d.BlockSize)/d.ReadBandwidth
		if cMerged > cSplit+slack {
			t.Fatalf("trial %d: merged cost %v > split cost %v (sizes %v, rows %d, buffer %d)",
				trial, cMerged, cSplit, sizes, tab.Rows, d.BufferSize)
		}
	}
}

func TestWorkloadCostSumsWeights(t *testing.T) {
	tab := testTable(t, 1000, 4, 4)
	m := NewHDD(DefaultDisk())
	parts := []attrset.Set{attrset.Of(0), attrset.Of(1)}
	tw := schema.TableWorkload{Table: tab, Queries: []schema.TableQuery{
		{ID: "a", Weight: 1, Attrs: attrset.Of(0)},
		{ID: "b", Weight: 3, Attrs: attrset.Of(1)},
	}}
	qa := m.QueryCost(tab, parts, attrset.Of(0))
	qb := m.QueryCost(tab, parts, attrset.Of(1))
	want := qa + 3*qb
	if got := WorkloadCost(m, tw, parts); math.Abs(got-want) > 1e-12 {
		t.Errorf("WorkloadCost = %v, want %v", got, want)
	}
}

func TestMMModelPrefersColumnLayout(t *testing.T) {
	tab := testTable(t, 1_000_000, 4, 8, 100)
	m := NewMM()
	row := []attrset.Set{tab.AllAttrs()}
	col := []attrset.Set{attrset.Of(0), attrset.Of(1), attrset.Of(2)}
	q := attrset.Of(0)
	rc, cc := m.QueryCost(tab, row, q), m.QueryCost(tab, col, q)
	if cc >= rc {
		t.Errorf("MM: column (%v) should beat row (%v)", cc, rc)
	}
	// Under MM there is no seek advantage: a merged group containing only
	// referenced attributes costs the same as separate columns (up to one
	// cache line of rounding).
	grouped := []attrset.Set{attrset.Of(0, 1), attrset.Of(2)}
	g := m.QueryCost(tab, grouped, attrset.Of(0, 1))
	c := m.QueryCost(tab, col, attrset.Of(0, 1))
	if math.Abs(g-c) > 2*m.Device().MissLatency {
		t.Errorf("MM grouped %v vs column %v differ beyond rounding", g, c)
	}
}

func TestMMZeroLineSizeDefaults(t *testing.T) {
	tab := testTable(t, 100, 4)
	m := &DeviceModel{dev: Device{Pricing: PricingCache, MissLatency: 1}}
	if got := m.QueryCost(tab, []attrset.Set{attrset.Of(0)}, attrset.Of(0)); got != math.Ceil(400.0/64) {
		t.Errorf("cost with defaulted line size = %v", got)
	}
}

func TestCreationTime(t *testing.T) {
	tab := testTable(t, 1000, 10) // 10 KB
	d := Disk{BlockSize: 100, BufferSize: 1000, ReadBandwidth: 1000, WriteBandwidth: 500, SeekTime: 0}
	want := 10000.0/1000 + 10000.0/500
	if got := CreationTime(tab, d); math.Abs(got-want) > 1e-9 {
		t.Errorf("CreationTime = %v, want %v", got, want)
	}
	// Missing write bandwidth falls back to read bandwidth.
	d.WriteBandwidth = 0
	if got := CreationTime(tab, d); math.Abs(got-20) > 1e-9 {
		t.Errorf("CreationTime fallback = %v, want 20", got)
	}
}

// The paper reports ~420 s to transform TPC-H SF 10 into a partitioned
// layout. Our estimate should land in the same ballpark (hundreds of
// seconds), since it is pure byte volume over the measured bandwidths.
func TestCreationTimeTPCHBallpark(t *testing.T) {
	b := schema.TPCH(10)
	got := BenchmarkCreationTime(b, DefaultDisk())
	if got < 150 || got > 900 {
		t.Errorf("TPC-H SF10 creation time = %v s, want hundreds of seconds", got)
	}
}

// Property: HDD cost is monotone in the query — referencing more attributes
// can only cost more or equal.
func TestQuickHDDMonotoneInQuery(t *testing.T) {
	tab := testTable(t, 500_000, 4, 8, 1, 25, 10, 44)
	m := NewHDD(DefaultDisk())
	parts := []attrset.Set{attrset.Of(0, 1), attrset.Of(2, 3), attrset.Of(4, 5)}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		q := attrset.Set(rng.Uint64()) & tab.AllAttrs()
		sub := q & attrset.Set(rng.Uint64())
		if m.QueryCost(tab, parts, sub) > m.QueryCost(tab, parts, q)+1e-12 {
			t.Fatalf("subset query %v costs more than %v", sub, q)
		}
	}
}

func TestModelByName(t *testing.T) {
	hdd, err := ModelByName("HDD", DefaultDisk())
	if err != nil {
		t.Fatal(err)
	}
	if dm, ok := hdd.(*DeviceModel); !ok || dm.Device().Pricing != PricingBlock || dm.Name() != "HDD" {
		t.Errorf("ModelByName(HDD) = %T %v", hdd, hdd.Name())
	}
	mm, err := ModelByName("mm", DefaultDisk())
	if err != nil {
		t.Fatal(err)
	}
	if dm, ok := mm.(*DeviceModel); !ok || dm.Device().Pricing != PricingCache || dm.Name() != "MM" {
		t.Errorf("ModelByName(mm) = %T %v", mm, mm.Name())
	}
	if _, err := ModelByName("quantum", DefaultDisk()); err == nil {
		t.Error("accepted unknown model name")
	}
	// Every model validates the resolved device; a degenerate override must
	// fail loudly instead of silently pricing garbage.
	bad := DefaultDisk()
	bad.BufferSize = -1
	for _, name := range []string{"hdd", "ssd", "mm"} {
		if _, err := ModelByName(name, bad); err == nil {
			t.Errorf("%s accepted a negative-buffer override", name)
		}
	}
}
