package cost

import (
	"math/rand"
	"testing"

	"knives/internal/schema"
)

// Memoized partition costs must be the exact floats the model computes —
// the memo sits on the BruteForce hot path, where any drift would change
// the optimum the search returns.
func TestPartitionCostMemoMatchesModel(t *testing.T) {
	tab := schema.MustTable("t", 6_000_000, []schema.Column{
		{Name: "a", Size: 4}, {Name: "b", Size: 25}, {Name: "c", Size: 8},
	})
	for _, m := range []PartitionCoster{NewHDD(DefaultDisk()), NewMM()} {
		memo := NewPartitionCostMemo(m, tab)
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 2000; i++ {
			rowSize := int64(1 + rng.Intn(200))
			totalRowSize := rowSize + int64(rng.Intn(200))
			want := m.PartitionCost(tab, rowSize, totalRowSize)
			if got := memo.Cost(rowSize, totalRowSize); got != want {
				t.Fatalf("memo.Cost(%d, %d) = %v, model computes %v", rowSize, totalRowSize, got, want)
			}
			// Second lookup must hit the cache and return the same float.
			if got := memo.Cost(rowSize, totalRowSize); got != want {
				t.Fatalf("cached memo.Cost(%d, %d) = %v, want %v", rowSize, totalRowSize, got, want)
			}
		}
		if memo.Len() == 0 {
			t.Error("memo cached nothing")
		}
	}
}

// Oversized row widths bypass the packed uint64 key instead of colliding.
func TestPartitionCostMemoOversizeBypass(t *testing.T) {
	tab := schema.MustTable("t", 10, []schema.Column{{Name: "a", Size: 1}})
	m := NewMM()
	memo := NewPartitionCostMemo(m, tab)
	big := int64(1) << 33
	if got, want := memo.Cost(big, big), m.PartitionCost(tab, big, big); got != want {
		t.Errorf("oversize Cost = %v, want %v", got, want)
	}
	if memo.Len() != 0 {
		t.Errorf("oversize pair was cached (%d entries)", memo.Len())
	}
}
