package cost

import (
	"testing"

	"knives/internal/schema"
)

// FuzzPartitionCost asserts the satellite invariant of the memoized search
// kernel: for any table geometry, disk, and (rowSize, totalRowSize) pair,
// the memo path and the direct PartitionCost path return bit-identical
// floats — on first computation AND when served from cache — for both the
// HDD and MM models. Sharded BruteForce results are only reproducible
// because of this.
func FuzzPartitionCost(f *testing.F) {
	f.Add(int64(6_000_000), int64(8), int64(50), int64(8192), int64(8<<20), uint8(0))
	f.Add(int64(1), int64(1), int64(1), int64(1), int64(1), uint8(1))
	f.Add(int64(100), int64(10_000), int64(20_000), int64(512), int64(4096), uint8(0))
	f.Add(int64(1_000_000), int64(158), int64(158), int64(8192), int64(1<<30), uint8(2))

	f.Fuzz(func(t *testing.T, rows, rowSize, totalRowSize, blockSize, bufferSize int64, modelPick uint8) {
		// Constrain to the domain real searches present: positive geometry,
		// a partition no wider than the referenced total.
		if rows < 0 || rows > 1<<40 {
			t.Skip()
		}
		if rowSize < 1 || rowSize > 1<<31 {
			t.Skip()
		}
		if totalRowSize < rowSize || totalRowSize > 1<<32 {
			t.Skip()
		}
		if blockSize < 1 || blockSize > 1<<30 || bufferSize < 1 || bufferSize > 1<<40 {
			t.Skip()
		}
		tab, err := schema.NewTable("f", rows, []schema.Column{{Name: "c", Kind: schema.KindInt, Size: 4}})
		if err != nil {
			t.Skip()
		}
		var pc PartitionCoster
		switch modelPick % 2 {
		case 0:
			d := DefaultDisk()
			d.BlockSize = blockSize
			d.BufferSize = bufferSize
			pc = NewHDD(d)
		default:
			pc = NewMM()
		}
		direct := pc.PartitionCost(tab, rowSize, totalRowSize)
		memo := NewPartitionCostMemo(pc, tab)
		if got := memo.Cost(rowSize, totalRowSize); got != direct {
			t.Fatalf("memo first call = %v, direct = %v", got, direct)
		}
		if got := memo.Cost(rowSize, totalRowSize); got != direct {
			t.Fatalf("memo cached call = %v, direct = %v", got, direct)
		}
		// Re-deriving through the memo after unrelated insertions (forcing
		// probe collisions and growth) must still return the same float.
		for i := int64(1); i <= 64; i++ {
			w := rowSize + i
			if w > totalRowSize {
				break
			}
			memo.Cost(w, totalRowSize)
		}
		if got := memo.Cost(rowSize, totalRowSize); got != direct {
			t.Fatalf("memo after growth = %v, direct = %v", got, direct)
		}
	})
}
