package cost

import (
	"math"
	"testing"

	"knives/internal/attrset"
	"knives/internal/schema"
)

func migTable(t *testing.T) *schema.Table {
	t.Helper()
	tab, err := schema.NewTable("m", 100_000, []schema.Column{
		{Name: "a", Size: 4},
		{Name: "b", Size: 8},
		{Name: "c", Size: 4},
		{Name: "d", Size: 100},
		{Name: "e", Size: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// TestMigrationCostHDDManual recomputes a split transition by hand from
// the published formulas and demands bit equality.
func TestMigrationCostHDDManual(t *testing.T) {
	tab := migTable(t)
	d := DefaultDisk()
	m := NewHDD(d)
	from := []attrset.Set{attrset.Of(0, 1, 2), attrset.Of(3), attrset.Of(4)}
	to := []attrset.Set{attrset.Of(0), attrset.Of(1, 2), attrset.Of(3), attrset.Of(4)}
	mig, err := MigrationCost(m, tab, from, to)
	if err != nil {
		t.Fatal(err)
	}
	// Moved: read {a,b,c} (16 B rows); write {a} (4 B) and {b,c} (12 B).
	// {d} and {e} survive untouched.
	if len(mig.Reads) != 1 || len(mig.Writes) != 2 {
		t.Fatalf("moves: %d reads, %d writes; want 1, 2", len(mig.Reads), len(mig.Writes))
	}
	if mig.Reads[0].Attrs != attrset.Of(0, 1, 2) {
		t.Errorf("read move = %v", mig.Reads[0].Attrs)
	}
	// Writes ordered by DECREASING row size: {b,c} (12) before {a} (4).
	if mig.Writes[0].Attrs != attrset.Of(1, 2) || mig.Writes[1].Attrs != attrset.Of(0) {
		t.Errorf("write order = %v, %v", mig.Writes[0].Attrs, mig.Writes[1].Attrs)
	}

	manualMove := func(rowSize, totalRowSize int64, bw float64) (int64, int64, float64) {
		blocks := PartitionBlocks(tab.Rows, rowSize, d.BlockSize)
		bytes := blocks * d.BlockSize
		seeks := PartitionSeeks(tab.Rows, rowSize, totalRowSize, d)
		return bytes, seeks, d.SeekTime*float64(seeks) + float64(bytes)/bw
	}
	var want float64
	_, _, sec := manualMove(16, 16, d.ReadBandwidth)
	want += sec
	_, _, sec = manualMove(12, 16, d.WriteBandwidth)
	want += sec
	_, _, sec = manualMove(4, 16, d.WriteBandwidth)
	want += sec
	if mig.Seconds != want {
		t.Errorf("total %.18g != manual %.18g", mig.Seconds, want)
	}
	wb, ws, _ := manualMove(12, 16, d.WriteBandwidth)
	if mig.Writes[0].Bytes != wb || mig.Writes[0].Seeks != ws {
		t.Errorf("write[0] bytes/seeks = %d/%d, want %d/%d", mig.Writes[0].Bytes, mig.Writes[0].Seeks, wb, ws)
	}
	if mig.BytesRead != mig.Reads[0].Bytes || mig.BytesWritten != mig.Writes[0].Bytes+mig.Writes[1].Bytes {
		t.Error("integer totals disagree with the breakdown")
	}
}

// TestMigrationCostHDDWriteBandwidthFallback: an unset write bandwidth
// falls back to the read bandwidth, like CreationTime.
func TestMigrationCostHDDWriteBandwidthFallback(t *testing.T) {
	tab := migTable(t)
	d := DefaultDisk()
	d.WriteBandwidth = 0
	from := []attrset.Set{attrset.Of(0, 1, 2, 3, 4)}
	to := []attrset.Set{attrset.Of(0, 1), attrset.Of(2, 3, 4)}
	mig, err := MigrationCost(NewHDD(d), tab, from, to)
	if err != nil {
		t.Fatal(err)
	}
	dRef := d
	dRef.WriteBandwidth = d.ReadBandwidth
	ref, err := MigrationCost(NewHDD(dRef), tab, from, to)
	if err != nil {
		t.Fatal(err)
	}
	if mig.Seconds != ref.Seconds {
		t.Errorf("fallback write bandwidth: %.18g != %.18g", mig.Seconds, ref.Seconds)
	}
}

// TestMigrationCostMM pins the cache-line pricing: every moved byte is
// charged once on read and once on write.
func TestMigrationCostMM(t *testing.T) {
	tab := migTable(t)
	m := NewMM()
	from := []attrset.Set{attrset.Of(0, 1, 2, 3, 4)}
	to := []attrset.Set{attrset.Of(0, 1, 2, 3), attrset.Of(4)}
	mig, err := MigrationCost(m, tab, from, to)
	if err != nil {
		t.Fatal(err)
	}
	lines := func(rowSize int64) int64 { return StreamLines(tab.Rows, rowSize, m.Device().CacheLineSize) }
	if mig.LinesRead != lines(132) {
		t.Errorf("lines read = %d, want %d", mig.LinesRead, lines(132))
	}
	if mig.LinesWritten != lines(116)+lines(16) {
		t.Errorf("lines written = %d, want %d", mig.LinesWritten, lines(116)+lines(16))
	}
	var want float64
	want += float64(lines(132)) * m.Device().MissLatency
	want += float64(lines(116)) * m.Device().MissLatency
	want += float64(lines(16)) * m.Device().MissLatency
	if mig.Seconds != want {
		t.Errorf("MM total %.18g != manual %.18g", mig.Seconds, want)
	}
	if mig.SeeksRead != 0 || mig.BytesRead != 0 {
		t.Error("MM migration charged disk mechanics")
	}
}

// TestMigrationCostIdentityAndDisjoint: identity moves nothing; disjoint
// layouts move everything.
func TestMigrationCostIdentityAndDisjoint(t *testing.T) {
	tab := migTable(t)
	m := NewHDD(DefaultDisk())
	layout := []attrset.Set{attrset.Of(0, 1), attrset.Of(2, 3, 4)}
	mig, err := MigrationCost(m, tab, layout, layout)
	if err != nil {
		t.Fatal(err)
	}
	if mig.Seconds != 0 || len(mig.Reads)+len(mig.Writes) != 0 {
		t.Errorf("identity migration not free: %+v", mig)
	}
	row := []attrset.Set{attrset.Of(0, 1, 2, 3, 4)}
	col := []attrset.Set{attrset.Of(0), attrset.Of(1), attrset.Of(2), attrset.Of(3), attrset.Of(4)}
	mig, err = MigrationCost(m, tab, row, col)
	if err != nil {
		t.Fatal(err)
	}
	if len(mig.Reads) != 1 || len(mig.Writes) != 5 {
		t.Errorf("row->column moves %d/%d, want 1/5", len(mig.Reads), len(mig.Writes))
	}
}

// TestMigrationCostUnknownModel: a model without migration pricing fails
// loudly.
func TestMigrationCostUnknownModel(t *testing.T) {
	tab := migTable(t)
	if _, err := MigrationCost(fakeModel{}, tab, nil, nil); err == nil {
		t.Error("unknown model accepted")
	}
}

type fakeModel struct{}

func (fakeModel) Name() string { return "fake" }
func (fakeModel) QueryCost(*schema.Table, []attrset.Set, attrset.Set) float64 {
	return 0
}

// TestStreamLines pins the integer line arithmetic, including edge cases.
func TestStreamLines(t *testing.T) {
	cases := []struct {
		rows, rowSize, line, want int64
	}{
		{0, 8, 64, 0},
		{1, 8, 64, 1},
		{8, 8, 64, 1},
		{9, 8, 64, 2},
		{100, 0, 64, 0},
		{100, 8, 0, 0},
		{-1, 8, 64, 0},
	}
	for _, c := range cases {
		if got := StreamLines(c.rows, c.rowSize, c.line); got != c.want {
			t.Errorf("StreamLines(%d, %d, %d) = %d, want %d", c.rows, c.rowSize, c.line, got, c.want)
		}
	}
	// The formula is exactly ceil for in-range values.
	if got, want := StreamLines(1000, 12, 64), int64(math.Ceil(1000.0*12/64)); got != want {
		t.Errorf("StreamLines ceil mismatch: %d != %d", got, want)
	}
}

// TestMigrationMoveOrderIsSizeThenCanonical pins the summation order the
// engine mirrors: decreasing row size, ties by smallest attribute.
func TestMigrationMoveOrderIsSizeThenCanonical(t *testing.T) {
	tab, err := schema.NewTable("o", 10, []schema.Column{
		{Name: "a", Size: 4}, {Name: "b", Size: 4}, {Name: "c", Size: 8}, {Name: "d", Size: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	from := []attrset.Set{attrset.Of(0, 1, 2, 3)}
	to := []attrset.Set{attrset.Of(0), attrset.Of(1), attrset.Of(2), attrset.Of(3)}
	mig, err := MigrationCost(NewHDD(DefaultDisk()), tab, from, to)
	if err != nil {
		t.Fatal(err)
	}
	want := []attrset.Set{attrset.Of(2), attrset.Of(0), attrset.Of(1), attrset.Of(3)}
	for i, mv := range mig.Writes {
		if mv.Attrs != want[i] {
			t.Fatalf("write %d = %v, want %v (order: size desc, then canonical)", i, mv.Attrs, want[i])
		}
	}
}
