package cost

import (
	"math/rand"
	"testing"

	"knives/internal/schema"
)

// PartitionCost keeps its own inlined seek arithmetic for kernel speed;
// PartitionSeeks is the exported decomposition the replay subsystem
// predicts integer seeks with. This pin keeps the two in lockstep: for any
// disk and any (rows, rowSize, totalRowSize), the cost must equal
// SeekTime*seeks + blocks*blockSize/bandwidth, bit for bit.
func TestPartitionCostDecomposes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2_000; trial++ {
		d := Disk{
			BlockSize:     int64(64 << rng.Intn(9)), // 64 .. 16384
			BufferSize:    1 + rng.Int63n(1<<24),
			ReadBandwidth: 1 + rng.Float64()*100e6,
			SeekTime:      rng.Float64() * 1e-2,
		}
		rows := rng.Int63n(5_000_000)
		rowSize := 1 + rng.Int63n(500)
		totalRowSize := rowSize + rng.Int63n(1_000)
		tab, err := schema.NewTable("t", rows, []schema.Column{{Name: "a", Size: 1}})
		if err != nil {
			t.Fatal(err)
		}
		m := NewHDD(d)
		seeks := PartitionSeeks(rows, rowSize, totalRowSize, d)
		blocks := PartitionBlocks(rows, rowSize, d.BlockSize)
		want := d.SeekTime*float64(seeks) + float64(blocks)*float64(d.BlockSize)/d.ReadBandwidth
		if got := m.PartitionCost(tab, rowSize, totalRowSize); got != want {
			t.Fatalf("trial %d: PartitionCost = %.18g, decomposition = %.18g (disk %+v rows %d rowSize %d total %d)",
				trial, got, want, d, rows, rowSize, totalRowSize)
		}
	}
	if got := PartitionSeeks(1000, 0, 8, DefaultDisk()); got != 0 {
		t.Errorf("zero row size: %d seeks, want 0", got)
	}
	if got := PartitionSeeks(1000, 8, 0, DefaultDisk()); got != 0 {
		t.Errorf("zero total row size: %d seeks, want 0", got)
	}
}
