package cost

import "knives/internal/schema"

// PartitionCostMemo caches PartitionCoster results for one table by the pair
// (rowSize, totalRowSize). Exhaustive searches hit the same pairs massively
// — group widths are subset sums of a handful of atom widths — so almost
// every lookup is a cache hit after the first few thousand candidates.
//
// The memo returns the cached float unchanged, so memoized searches stay
// bit-identical to unmemoized ones. It is NOT safe for concurrent use: give
// each search worker its own memo.
//
// Internally this is an open-addressed linear-probe table rather than a Go
// map: the lookup sits on the innermost loop of the BruteForce walk, where
// map overhead dominated the whole search (~55% of samples) when profiled.
type PartitionCostMemo struct {
	pc   PartitionCoster
	t    *schema.Table
	keys []uint64 // packed rowSize<<32|totalRowSize; 0 = empty slot
	vals []float64
	n    int    // occupied slots
	mask uint64 // len(keys)-1, len is a power of two
}

const memoInitialSize = 4096 // power of two, sized for TPC-H-scale searches

// NewPartitionCostMemo returns an empty memo over one table. Cacheable pairs
// need 1 <= rowSize < 2^32 and 0 <= totalRowSize < 2^32 — far beyond any
// real table's row width; anything else bypasses the cache and is computed
// directly.
func NewPartitionCostMemo(pc PartitionCoster, t *schema.Table) *PartitionCostMemo {
	return &PartitionCostMemo{
		pc:   pc,
		t:    t,
		keys: make([]uint64, memoInitialSize),
		vals: make([]float64, memoInitialSize),
		mask: memoInitialSize - 1,
	}
}

// Cost returns PartitionCost(t, rowSize, totalRowSize), cached.
func (m *PartitionCostMemo) Cost(rowSize, totalRowSize int64) float64 {
	if uint64(rowSize)-1 >= 1<<32-1 || uint64(totalRowSize) >= 1<<32 {
		// rowSize 0 packs to an all-zero key, the empty-slot sentinel, so it
		// bypasses the cache along with oversized and negative inputs.
		return m.pc.PartitionCost(m.t, rowSize, totalRowSize)
	}
	key := uint64(rowSize)<<32 | uint64(totalRowSize)
	i := m.slot(key)
	for {
		switch m.keys[i] {
		case key:
			return m.vals[i]
		case 0:
			v := m.pc.PartitionCost(m.t, rowSize, totalRowSize)
			m.keys[i], m.vals[i] = key, v
			m.n++
			if 4*m.n > 3*len(m.keys) {
				m.grow()
			}
			return v
		}
		i = (i + 1) & m.mask
	}
}

// slot hashes a key to its home slot (Fibonacci hashing on the high bits).
func (m *PartitionCostMemo) slot(key uint64) uint64 {
	return (key * 0x9e3779b97f4a7c15) >> 32 & m.mask
}

func (m *PartitionCostMemo) grow() {
	oldKeys, oldVals := m.keys, m.vals
	m.keys = make([]uint64, 2*len(oldKeys))
	m.vals = make([]float64, 2*len(oldVals))
	m.mask = uint64(len(m.keys) - 1)
	for i, key := range oldKeys {
		if key == 0 {
			continue
		}
		j := m.slot(key)
		for m.keys[j] != 0 {
			j = (j + 1) & m.mask
		}
		m.keys[j], m.vals[j] = key, oldVals[i]
	}
}

// Len returns the number of cached entries, for tests and diagnostics.
func (m *PartitionCostMemo) Len() int { return m.n }
