package cost

import (
	"math"

	"knives/internal/attrset"
	"knives/internal/schema"
)

// Selective extends the HDD model with selection-predicate awareness, the
// extension the paper's Section 7 sketches: "we did consider putting the
// selection attributes in a different partition. But it turns out that this
// affects the data layouts only when the selectivity is higher than 1e-4
// for uniformly distributed datasets."
//
// The execution model: the partition holding the selection attribute is
// scanned in full (with the full buffer — it is read first and alone);
// every other referenced partition is then either scanned in full (buffer
// shared among those partitions, as in the base model) or probed with one
// random block fetch per matching tuple, whichever the model prices
// cheaper. Matches are assumed uniformly spread (TPC-H-like), so clustered
// match runs are not credited.
type Selective struct {
	hdd DeviceModel // base model; kept unexported so the exhaustive searches do
	// not mistake Selective for a PartitionCoster (its cost is not
	// per-partition decomposable once probing enters the picture).
	// SelAttr is the attribute index carrying the selection predicate.
	// Queries not referencing it are priced by the base model.
	SelAttr int
	// Selectivity is the fraction of tuples matching the predicate, in
	// [0, 1].
	Selectivity float64
}

// NewSelective returns a selection-aware model over the disk.
func NewSelective(d Disk, selAttr int, selectivity float64) *Selective {
	return &Selective{hdd: *NewHDD(d), SelAttr: selAttr, Selectivity: selectivity}
}

// Name implements Model.
func (*Selective) Name() string { return "HDD+selection" }

// QueryCost implements Model.
func (m *Selective) QueryCost(t *schema.Table, parts []attrset.Set, query attrset.Set) float64 {
	if !query.Has(m.SelAttr) || m.Selectivity >= 1 {
		return m.hdd.QueryCost(t, parts, query)
	}
	// Phase 1: scan the selection partition alone with the full buffer.
	var selPart attrset.Set
	for _, p := range parts {
		if p.Has(m.SelAttr) {
			selPart = p
			break
		}
	}
	if selPart.IsEmpty() {
		return m.hdd.QueryCost(t, parts, query)
	}
	selSize := t.SetSize(selPart)
	total := m.hdd.PartitionCost(t, selSize, selSize)

	// Phase 2: remaining referenced partitions — full scan (shared buffer)
	// or per-match random fetches, whichever is cheaper.
	var restRowSize int64
	for _, p := range parts {
		if p != selPart && p.Overlaps(query) {
			restRowSize += t.SetSize(p)
		}
	}
	if restRowSize == 0 {
		return total
	}
	matches := math.Ceil(float64(t.Rows) * m.Selectivity)
	blockTime := float64(m.hdd.dev.BlockSize) / m.hdd.dev.ReadBandwidth
	for _, p := range parts {
		if p == selPart || !p.Overlaps(query) {
			continue
		}
		scan := m.hdd.PartitionCost(t, t.SetSize(p), restRowSize)
		probe := matches * (m.hdd.dev.SeekTime + blockTime)
		total += math.Min(scan, probe)
	}
	return total
}
