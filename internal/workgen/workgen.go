// Package workgen generates synthetic workloads with controllable access
// patterns. The paper's Section 2 predicts how search strategies respond to
// workload shape — top-down algorithms converge faster on highly regular
// access patterns (many queries touching almost the same attributes),
// bottom-up algorithms on highly fragmented ones (queries sharing few
// attributes) — and this package provides the knob that makes those claims
// testable. It also supports the workload-drift experiment of Section 6.3.
package workgen

import (
	"fmt"

	"knives/internal/attrset"
	"knives/internal/schema"
)

// Config controls workload generation.
type Config struct {
	// Queries is the number of queries to generate.
	Queries int
	// Fragmentation in [0, 1] steers the access pattern: 0 is perfectly
	// regular (every query references the same attribute cluster), 1 is
	// perfectly fragmented (queries reference disjoint clusters as far as
	// the attribute count allows).
	Fragmentation float64
	// MeanAttrs is the average number of attributes per query (at least 1).
	MeanAttrs int
	// Seed makes generation deterministic.
	Seed int64
}

// splitmix64 is the same stateless mixer the storage generator uses.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Generate builds a per-table workload over the given table.
func Generate(t *schema.Table, cfg Config) (schema.TableWorkload, error) {
	if cfg.Queries <= 0 {
		return schema.TableWorkload{}, fmt.Errorf("workgen: Queries must be positive")
	}
	if cfg.Fragmentation < 0 || cfg.Fragmentation > 1 {
		return schema.TableWorkload{}, fmt.Errorf("workgen: Fragmentation %v outside [0,1]", cfg.Fragmentation)
	}
	mean := cfg.MeanAttrs
	if mean < 1 {
		mean = 1
	}
	n := t.NumAttrs()
	if mean > n {
		mean = n
	}

	state := uint64(cfg.Seed)*0x9e3779b97f4a7c15 + 1
	next := func(bound int) int {
		state = splitmix64(state)
		return int(state % uint64(bound))
	}

	tw := schema.TableWorkload{Table: t}
	for q := 0; q < cfg.Queries; q++ {
		// Regular component: a shared cluster starting at attribute 0.
		// Fragmented component: a per-query cluster offset.
		width := mean/2 + next(mean+1) // in [mean/2, 3*mean/2]
		if width < 1 {
			width = 1
		}
		if width > n {
			width = n
		}
		offset := 0
		if cfg.Fragmentation > 0 {
			// Queries spread across the attribute range proportionally to
			// the fragmentation knob.
			span := int(cfg.Fragmentation * float64(n))
			if span > 0 {
				offset = next(span + 1)
			}
		}
		var s attrset.Set
		for i := 0; i < width; i++ {
			s = s.Add((offset + i) % n)
		}
		tw.Queries = append(tw.Queries, schema.TableQuery{
			ID:     fmt.Sprintf("g%d", q),
			Weight: 1,
			Attrs:  s,
		})
	}
	return tw, nil
}

// Drift returns a copy of the workload with a fraction of its queries
// replaced by perturbed variants (each replaced query has one random
// attribute toggled, keeping at least one attribute). This models the
// workload change of the paper's Section 6.3 ("up to 50% change in query
// workload").
func Drift(tw schema.TableWorkload, fraction float64, seed int64) schema.TableWorkload {
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	n := tw.Table.NumAttrs()
	state := uint64(seed)*0x9e3779b97f4a7c15 + 7
	next := func(bound int) int {
		state = splitmix64(state)
		return int(state % uint64(bound))
	}
	out := schema.TableWorkload{Table: tw.Table}
	changed := int(fraction * float64(len(tw.Queries)))
	for i, q := range tw.Queries {
		if i < changed {
			attrs := q.Attrs
			toggle := next(n)
			if attrs.Has(toggle) && attrs.Len() > 1 {
				attrs = attrs.Remove(toggle)
			} else {
				attrs = attrs.Add(toggle)
			}
			q = schema.TableQuery{ID: q.ID + "'", Weight: q.Weight, Attrs: attrs}
		}
		out.Queries = append(out.Queries, q)
	}
	return out
}
