package workgen

import (
	"testing"
	"testing/quick"

	"knives/internal/schema"
)

func table(t *testing.T, n int) *schema.Table {
	t.Helper()
	cols := make([]schema.Column, n)
	for i := range cols {
		cols[i] = schema.Column{Name: string(rune('a' + i)), Size: 8}
	}
	tab, err := schema.NewTable("t", 1_000_000, cols)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestGenerateValidates(t *testing.T) {
	tab := table(t, 8)
	if _, err := Generate(tab, Config{Queries: 0}); err == nil {
		t.Error("accepted zero queries")
	}
	if _, err := Generate(tab, Config{Queries: 5, Fragmentation: 1.5}); err == nil {
		t.Error("accepted fragmentation > 1")
	}
}

func TestGenerateDeterministicAndWellFormed(t *testing.T) {
	tab := table(t, 12)
	cfg := Config{Queries: 30, Fragmentation: 0.5, MeanAttrs: 4, Seed: 9}
	a, err := Generate(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Queries) != 30 || len(b.Queries) != 30 {
		t.Fatalf("got %d/%d queries", len(a.Queries), len(b.Queries))
	}
	for i := range a.Queries {
		if a.Queries[i].Attrs != b.Queries[i].Attrs {
			t.Fatalf("query %d differs between runs with the same seed", i)
		}
		if a.Queries[i].Attrs.IsEmpty() {
			t.Fatalf("query %d has no attributes", i)
		}
		if !tab.AllAttrs().ContainsAll(a.Queries[i].Attrs) {
			t.Fatalf("query %d references out-of-range attrs", i)
		}
	}
}

// The fragmentation knob must actually fragment: at 0 every query
// references one shared cluster; at 1 the referenced clusters spread out.
func TestFragmentationKnob(t *testing.T) {
	tab := table(t, 16)
	distinct := func(frag float64) int {
		tw, err := Generate(tab, Config{Queries: 40, Fragmentation: frag, MeanAttrs: 3, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		seen := map[schema.Set]bool{}
		for _, q := range tw.Queries {
			seen[q.Attrs] = true
		}
		return len(seen)
	}
	regular, fragmented := distinct(0), distinct(1)
	if regular >= fragmented {
		t.Errorf("distinct access sets: regular %d >= fragmented %d", regular, fragmented)
	}
}

func TestDriftChangesRequestedFraction(t *testing.T) {
	tab := table(t, 10)
	tw, err := Generate(tab, Config{Queries: 20, Fragmentation: 0.5, MeanAttrs: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	drifted := Drift(tw, 0.5, 11)
	if len(drifted.Queries) != len(tw.Queries) {
		t.Fatalf("drift changed the query count")
	}
	changed := 0
	for i := range tw.Queries {
		if drifted.Queries[i].Attrs != tw.Queries[i].Attrs {
			changed++
			if drifted.Queries[i].Attrs.IsEmpty() {
				t.Errorf("drifted query %d lost all attributes", i)
			}
		}
	}
	if changed == 0 || changed > 10 {
		t.Errorf("drift changed %d queries, want 1..10", changed)
	}
	// Fractions clamp.
	if got := Drift(tw, -1, 1); len(got.Queries) != 20 {
		t.Error("negative fraction broke drift")
	}
	if got := Drift(tw, 2, 1); len(got.Queries) != 20 {
		t.Error("fraction > 1 broke drift")
	}
}

// Property: drifted workloads always stay valid for their table.
func TestQuickDriftStaysValid(t *testing.T) {
	tab := table(t, 14)
	tw, err := Generate(tab, Config{Queries: 25, Fragmentation: 0.7, MeanAttrs: 5, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	f := func(frac float64, seed int64) bool {
		if frac < 0 {
			frac = -frac
		}
		for frac > 1 {
			frac /= 2
		}
		d := Drift(tw, frac, seed)
		for _, q := range d.Queries {
			if q.Attrs.IsEmpty() || !tab.AllAttrs().ContainsAll(q.Attrs) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
