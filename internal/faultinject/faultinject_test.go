package faultinject

import (
	"errors"
	"io"
	"testing"

	"knives/internal/vfs"
)

func newInj(t *testing.T, faults ...Fault) (*Injector, vfs.FS) {
	t.Helper()
	dir := t.TempDir()
	base, err := vfs.Dir(dir)
	if err != nil {
		t.Fatal(err)
	}
	inj := New(base, faults...)
	// A clean view of the same directory, for asserting what really landed.
	clean, err := vfs.Dir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return inj, clean
}

func TestFailNthWrite(t *testing.T) {
	inj, clean := newInj(t, FailNthWrite(2))
	f, err := inj.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("one")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if _, err := f.Write([]byte("two")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write 2: %v, want ErrInjected", err)
	}
	if _, err := f.Write([]byte("three")); err != nil {
		t.Fatalf("write 3: %v", err)
	}
	f.Close()
	b, err := clean.ReadFile("x")
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "onethree" {
		t.Fatalf("file = %q, want the failed write absent", b)
	}
	if inj.Injected() != 1 || inj.Count(OpWrite) != 3 {
		t.Fatalf("injected=%d writes=%d", inj.Injected(), inj.Count(OpWrite))
	}
}

func TestTornWriteLeavesPrefixOnDisk(t *testing.T) {
	inj, clean := newInj(t, TornNthWrite(1, 4))
	f, _ := inj.Create("x")
	n, err := f.Write([]byte("abcdefgh"))
	if !errors.Is(err, ErrInjected) || n != 4 {
		t.Fatalf("write = %d,%v, want 4,ErrInjected", n, err)
	}
	f.Close()
	b, _ := clean.ReadFile("x")
	if string(b) != "abcd" {
		t.Fatalf("file = %q, want the torn prefix %q", b, "abcd")
	}
}

func TestCrashLatchesEverything(t *testing.T) {
	inj, clean := newInj(t, CrashAtWrite(2, 1))
	f, _ := inj.Create("x")
	f.Write([]byte("ok"))
	if _, err := f.Write([]byte("zz")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crashing write: %v", err)
	}
	if !inj.Crashed() {
		t.Fatal("injector not latched")
	}
	// Every operation class is dead now.
	if _, err := f.Write([]byte("post")); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash write: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash sync: %v", err)
	}
	if err := f.Truncate(0); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash truncate: %v", err)
	}
	if _, err := inj.Create("y"); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash create: %v", err)
	}
	if _, err := inj.Open("x"); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash open: %v", err)
	}
	if _, err := inj.ReadFile("x"); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash readfile: %v", err)
	}
	if err := inj.Rename("x", "y"); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash rename: %v", err)
	}
	if err := inj.Remove("x"); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash remove: %v", err)
	}
	if err := inj.SyncDir(); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash syncdir: %v", err)
	}
	// Closing is still allowed — a dead process's descriptors close too.
	if err := f.Close(); err != nil {
		t.Errorf("post-crash close: %v", err)
	}
	// What survives on disk is the pre-crash writes plus the torn byte.
	b, _ := clean.ReadFile("x")
	if string(b) != "okz" {
		t.Fatalf("file = %q, want %q", b, "okz")
	}
}

func TestShortRead(t *testing.T) {
	inj, _ := newInj(t, ShortNthRead(2, 3))
	f, _ := inj.Create("x")
	f.Write([]byte("abcdefgh"))
	f.Close()
	if b, err := inj.ReadFile("x"); err != nil || string(b) != "abcdefgh" {
		t.Fatalf("read 1 = %q,%v", b, err)
	}
	b, err := inj.ReadFile("x")
	if !errors.Is(err, io.ErrUnexpectedEOF) || string(b) != "abc" {
		t.Fatalf("read 2 = %q,%v, want short abc", b, err)
	}
}

func TestShortReadAt(t *testing.T) {
	inj, _ := newInj(t, ShortNthRead(1, 2))
	f, _ := inj.Create("x")
	f.Write([]byte("abcdefgh"))
	buf := make([]byte, 5)
	n, err := f.ReadAt(buf, 0)
	if !errors.Is(err, io.ErrUnexpectedEOF) || n != 2 {
		t.Fatalf("ReadAt = %d,%v, want 2,ErrUnexpectedEOF", n, err)
	}
	f.Close()
}

func TestFailNthSyncCoversFileAndDir(t *testing.T) {
	inj, _ := newInj(t, FailNthSync(2))
	f, _ := inj.Create("x")
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 1: %v", err)
	}
	if err := inj.SyncDir(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync 2 (dir): %v, want ErrInjected — file and dir syncs share the class", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 3: %v", err)
	}
	f.Close()
}

func TestPanicCrashPoint(t *testing.T) {
	inj, _ := newInj(t, PanicAtWrite(1))
	f, err := inj.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	defer func() {
		cp, ok := recover().(*CrashPoint)
		if !ok {
			t.Fatalf("panic value not a *CrashPoint")
		}
		if cp.Op != OpWrite || cp.N != 1 {
			t.Fatalf("crash point = %s %d", cp.Op, cp.N)
		}
		if cp.String() == "" {
			t.Fatal("empty crash point string")
		}
	}()
	f.Write([]byte("boom"))
	t.Fatal("write did not panic")
}

func TestCustomErrAndOpStrings(t *testing.T) {
	custom := errors.New("disk on fire")
	inj, _ := newInj(t, Fault{Op: OpRename, N: 1, Kind: KindFail, Err: custom})
	f, _ := inj.Create("x")
	f.Write([]byte("v"))
	f.Close()
	if err := inj.Rename("x", "y"); !errors.Is(err, custom) {
		t.Fatalf("rename err = %v, want the custom error", err)
	}
	for op, want := range map[Op]string{
		OpWrite: "write", OpRead: "read", OpSync: "sync",
		OpCreate: "create", OpRename: "rename", OpTruncate: "truncate",
	} {
		if op.String() != want {
			t.Errorf("%d.String() = %q", uint8(op), op.String())
		}
	}
}

func TestUnfaultedPassthrough(t *testing.T) {
	inj, _ := newInj(t)
	f, err := inj.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("HE"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if sz, err := f.Size(); err != nil || sz != 4 {
		t.Fatalf("size = %d,%v", sz, err)
	}
	buf := make([]byte, 4)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "HEll" {
		t.Fatalf("read back %q", buf)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	names, err := inj.List()
	if err != nil || len(names) != 1 {
		t.Fatalf("list = %v,%v", names, err)
	}
	if err := inj.Remove("x"); err != nil {
		t.Fatal(err)
	}
	if inj.Injected() != 0 {
		t.Fatalf("injected = %d with an empty schedule", inj.Injected())
	}
}

// Every op class the injector fronts must honor a scheduled fault: the WAL
// exercises writes and syncs constantly, but snapshot rotation also leans on
// create, rename, remove, directory sync, and truncate, and a class that
// silently passes faults through would make those chaos schedules vacuous.
func TestFaultsCoverEveryOpClass(t *testing.T) {
	t.Run("create", func(t *testing.T) {
		inj, _ := newInj(t, Fault{Op: OpCreate, N: 1, Kind: KindFail})
		if _, err := inj.Create("x"); !errors.Is(err, ErrInjected) {
			t.Fatalf("Create = %v, want ErrInjected", err)
		}
	})
	t.Run("open", func(t *testing.T) {
		inj, clean := newInj(t, Fault{Op: OpCreate, N: 2, Kind: KindFail})
		f, err := inj.Create("x")
		if err != nil {
			t.Fatal(err)
		}
		f.Close()
		if _, err := inj.Open("x"); !errors.Is(err, ErrInjected) {
			t.Fatalf("Open = %v, want ErrInjected", err)
		}
		// The file itself is fine: only the faulted handle failed.
		if _, err := clean.Open("x"); err != nil {
			t.Fatalf("clean open: %v", err)
		}
	})
	t.Run("rename", func(t *testing.T) {
		inj, _ := newInj(t, Fault{Op: OpRename, N: 1, Kind: KindFail})
		f, err := inj.Create("x")
		if err != nil {
			t.Fatal(err)
		}
		f.Close()
		if err := inj.Rename("x", "y"); !errors.Is(err, ErrInjected) {
			t.Fatalf("Rename = %v, want ErrInjected", err)
		}
	})
	t.Run("remove", func(t *testing.T) {
		// Removes share the rename class.
		inj, _ := newInj(t, Fault{Op: OpRename, N: 1, Kind: KindFail})
		f, err := inj.Create("x")
		if err != nil {
			t.Fatal(err)
		}
		f.Close()
		if err := inj.Remove("x"); !errors.Is(err, ErrInjected) {
			t.Fatalf("Remove = %v, want ErrInjected", err)
		}
	})
	t.Run("syncdir", func(t *testing.T) {
		inj, _ := newInj(t, Fault{Op: OpSync, N: 1, Kind: KindFail})
		if err := inj.SyncDir(); !errors.Is(err, ErrInjected) {
			t.Fatalf("SyncDir = %v, want ErrInjected", err)
		}
	})
	t.Run("truncate", func(t *testing.T) {
		inj, _ := newInj(t, Fault{Op: OpTruncate, N: 1, Kind: KindFail})
		f, err := inj.Create("x")
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := f.Truncate(0); !errors.Is(err, ErrInjected) {
			t.Fatalf("Truncate = %v, want ErrInjected", err)
		}
	})
	t.Run("readat-fail", func(t *testing.T) {
		inj, _ := newInj(t, Fault{Op: OpRead, N: 1, Kind: KindFail})
		f, err := inj.Create("x")
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if _, err := f.Write([]byte("abcd")); err != nil {
			t.Fatal(err)
		}
		if _, err := f.ReadAt(make([]byte, 4), 0); !errors.Is(err, ErrInjected) {
			t.Fatalf("ReadAt = %v, want ErrInjected", err)
		}
	})
	t.Run("readfile-fail", func(t *testing.T) {
		inj, _ := newInj(t, Fault{Op: OpRead, N: 1, Kind: KindFail})
		f, err := inj.Create("x")
		if err != nil {
			t.Fatal(err)
		}
		f.Close()
		if _, err := inj.ReadFile("x"); !errors.Is(err, ErrInjected) {
			t.Fatalf("ReadFile = %v, want ErrInjected", err)
		}
	})
}

// A custom Err override replaces ErrInjected; op names render for messages.
func TestFaultErrOverrideAndOpNames(t *testing.T) {
	boom := errors.New("boom")
	inj, _ := newInj(t, Fault{Op: OpWrite, N: 1, Kind: KindFail, Err: boom})
	f, err := inj.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("a")); !errors.Is(err, boom) {
		t.Fatalf("Write = %v, want override error", err)
	}
	for op, want := range map[Op]string{
		OpWrite: "write", OpRead: "read", OpSync: "sync",
		OpCreate: "create", OpRename: "rename", OpTruncate: "truncate",
		Op(99): "op(99)",
	} {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
}
