// Package faultinject wraps a vfs.FS with a deterministic fault schedule,
// so crash-recovery and degradation paths can be exercised with real torn
// files and real error returns instead of mocks: the bytes a torn write
// leaves behind land in the underlying filesystem, and reopening the
// directory afterwards sees exactly what a power cut would have left.
//
// Faults fire on the Nth operation of a class (counted across all files of
// the injected FS, in issue order). A Crash fault additionally latches the
// injector: every later operation fails with ErrCrashed, simulating a
// process that is dead from that point on — the test then reopens the
// directory through a clean FS, exactly like a restart.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"knives/internal/vfs"
)

// Op classifies the file operations faults can target.
type Op uint8

const (
	// OpWrite covers File.Write and File.WriteAt.
	OpWrite Op = iota
	// OpRead covers File.ReadAt and FS.ReadFile.
	OpRead
	// OpSync covers File.Sync and FS.SyncDir.
	OpSync
	// OpCreate covers FS.Create and FS.Open.
	OpCreate
	// OpRename covers FS.Rename.
	OpRename
	// OpTruncate covers File.Truncate.
	OpTruncate
)

// String names an op for error messages.
func (o Op) String() string {
	switch o {
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	case OpSync:
		return "sync"
	case OpCreate:
		return "create"
	case OpRename:
		return "rename"
	case OpTruncate:
		return "truncate"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Kind is what happens when a fault fires.
type Kind uint8

const (
	// KindFail returns an error without performing the operation.
	KindFail Kind = iota
	// KindTorn applies only Keep bytes of a write, then fails — the torn
	// tail a power cut leaves mid-write.
	KindTorn
	// KindShort returns only Keep bytes of a read plus
	// io.ErrUnexpectedEOF.
	KindShort
	// KindCrash behaves like KindTorn for the faulted write, then latches
	// the injector: every subsequent operation fails with ErrCrashed.
	KindCrash
	// KindPanic panics with a *CrashPoint — the crash-point hook for code
	// paths that must be panic-safe under a dying process.
	KindPanic
)

// ErrInjected is the default error injected faults return.
var ErrInjected = errors.New("faultinject: injected fault")

// ErrCrashed reports an operation issued after a KindCrash fault fired:
// the simulated process is dead.
var ErrCrashed = errors.New("faultinject: crashed")

// CrashPoint is the panic value of a KindPanic fault.
type CrashPoint struct {
	Op Op
	N  int64
}

func (c *CrashPoint) String() string {
	return fmt.Sprintf("faultinject: crash point at %s %d", c.Op, c.N)
}

// Fault is one scheduled failure.
type Fault struct {
	// Op is the operation class the fault targets.
	Op Op
	// N fires the fault on the Nth operation of that class, 1-based,
	// counted across every file of the FS in issue order.
	N int64
	// Kind is the failure mode.
	Kind Kind
	// Keep is how many bytes a torn write applies (or a short read
	// returns) before failing.
	Keep int
	// Err overrides the returned error (nil = ErrInjected; crashes always
	// latch ErrCrashed for subsequent ops).
	Err error
}

// FailNthWrite schedules the Nth write to fail with nothing written.
func FailNthWrite(n int64) Fault { return Fault{Op: OpWrite, N: n, Kind: KindFail} }

// TornNthWrite schedules the Nth write to apply only keep bytes and fail.
func TornNthWrite(n int64, keep int) Fault {
	return Fault{Op: OpWrite, N: n, Kind: KindTorn, Keep: keep}
}

// CrashAtWrite schedules the Nth write to apply keep bytes, fail, and kill
// every operation after it.
func CrashAtWrite(n int64, keep int) Fault {
	return Fault{Op: OpWrite, N: n, Kind: KindCrash, Keep: keep}
}

// FailNthSync schedules the Nth fsync to fail.
func FailNthSync(n int64) Fault { return Fault{Op: OpSync, N: n, Kind: KindFail} }

// ShortNthRead schedules the Nth read to return only keep bytes.
func ShortNthRead(n int64, keep int) Fault {
	return Fault{Op: OpRead, N: n, Kind: KindShort, Keep: keep}
}

// PanicAtWrite schedules the Nth write to panic with a *CrashPoint.
func PanicAtWrite(n int64) Fault { return Fault{Op: OpWrite, N: n, Kind: KindPanic} }

// Injector is a vfs.FS that injects the scheduled faults into the FS it
// wraps. Safe for concurrent use; operation counting is globally ordered
// by the injector's mutex.
type Injector struct {
	fs vfs.FS

	mu       sync.Mutex
	counts   map[Op]int64
	faults   []Fault
	fired    []bool
	crashed  bool
	injected int64
}

// New wraps fs with a fault schedule.
func New(fs vfs.FS, faults ...Fault) *Injector {
	return &Injector{
		fs:     fs,
		counts: make(map[Op]int64),
		faults: append([]Fault(nil), faults...),
		fired:  make([]bool, len(faults)),
	}
}

// Crashed reports whether a KindCrash fault has fired.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// Injected returns how many faults have fired.
func (in *Injector) Injected() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected
}

// Count returns how many operations of a class have been issued.
func (in *Injector) Count(op Op) int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts[op]
}

// step books one operation and returns the fault to apply, if any. The
// second return is the op's sequence number.
func (in *Injector) step(op Op) (*Fault, int64, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return nil, in.counts[op], ErrCrashed
	}
	in.counts[op]++
	n := in.counts[op]
	for i := range in.faults {
		f := &in.faults[i]
		if in.fired[i] || f.Op != op || f.N != n {
			continue
		}
		in.fired[i] = true
		in.injected++
		if f.Kind == KindCrash {
			in.crashed = true
		}
		if f.Kind == KindPanic {
			panic(&CrashPoint{Op: op, N: n})
		}
		return f, n, nil
	}
	return nil, n, nil
}

// faultErr is the error a fired fault returns.
func faultErr(f *Fault) error {
	if f.Err != nil {
		return f.Err
	}
	if f.Kind == KindCrash {
		return ErrCrashed
	}
	return ErrInjected
}

func (in *Injector) Create(name string) (vfs.File, error) {
	if f, _, err := in.step(OpCreate); err != nil {
		return nil, err
	} else if f != nil {
		return nil, faultErr(f)
	}
	file, err := in.fs.Create(name)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: file}, nil
}

func (in *Injector) Open(name string) (vfs.File, error) {
	if f, _, err := in.step(OpCreate); err != nil {
		return nil, err
	} else if f != nil {
		return nil, faultErr(f)
	}
	file, err := in.fs.Open(name)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: file}, nil
}

func (in *Injector) ReadFile(name string) ([]byte, error) {
	f, _, err := in.step(OpRead)
	if err != nil {
		return nil, err
	}
	b, rerr := in.fs.ReadFile(name)
	if rerr != nil {
		return nil, rerr
	}
	if f != nil {
		if f.Kind == KindShort && f.Keep < len(b) {
			return b[:f.Keep], io.ErrUnexpectedEOF
		}
		return nil, faultErr(f)
	}
	return b, nil
}

func (in *Injector) Rename(oldname, newname string) error {
	if f, _, err := in.step(OpRename); err != nil {
		return err
	} else if f != nil {
		return faultErr(f)
	}
	return in.fs.Rename(oldname, newname)
}

func (in *Injector) Remove(name string) error {
	// Removes share the rename class: both are directory mutations.
	if f, _, err := in.step(OpRename); err != nil {
		return err
	} else if f != nil {
		return faultErr(f)
	}
	return in.fs.Remove(name)
}

func (in *Injector) List() ([]string, error) { return in.fs.List() }

func (in *Injector) SyncDir() error {
	if f, _, err := in.step(OpSync); err != nil {
		return err
	} else if f != nil {
		return faultErr(f)
	}
	return in.fs.SyncDir()
}

// injFile injects faults into one file's operations.
type injFile struct {
	in *Injector
	f  vfs.File
}

// write runs one possibly-faulted write through op-specific apply.
func (jf *injFile) write(p []byte, apply func([]byte) (int, error)) (int, error) {
	f, _, err := jf.in.step(OpWrite)
	if err != nil {
		return 0, err
	}
	if f == nil {
		return apply(p)
	}
	switch f.Kind {
	case KindTorn, KindCrash:
		keep := f.Keep
		if keep > len(p) {
			keep = len(p)
		}
		if keep > 0 {
			// The torn prefix really lands on the underlying file: a
			// recovery test that reopens the directory must see it.
			if n, werr := apply(p[:keep]); werr != nil {
				return n, werr
			}
		}
		return keep, faultErr(f)
	default:
		return 0, faultErr(f)
	}
}

func (jf *injFile) Write(p []byte) (int, error) {
	return jf.write(p, jf.f.Write)
}

func (jf *injFile) WriteAt(p []byte, off int64) (int, error) {
	return jf.write(p, func(b []byte) (int, error) { return jf.f.WriteAt(b, off) })
}

func (jf *injFile) ReadAt(p []byte, off int64) (int, error) {
	f, _, err := jf.in.step(OpRead)
	if err != nil {
		return 0, err
	}
	if f != nil {
		if f.Kind == KindShort && f.Keep < len(p) {
			n, _ := jf.f.ReadAt(p[:f.Keep], off)
			return n, io.ErrUnexpectedEOF
		}
		return 0, faultErr(f)
	}
	return jf.f.ReadAt(p, off)
}

func (jf *injFile) Sync() error {
	if f, _, err := jf.in.step(OpSync); err != nil {
		return err
	} else if f != nil {
		return faultErr(f)
	}
	return jf.f.Sync()
}

func (jf *injFile) Truncate(size int64) error {
	if f, _, err := jf.in.step(OpTruncate); err != nil {
		return err
	} else if f != nil {
		return faultErr(f)
	}
	return jf.f.Truncate(size)
}

func (jf *injFile) Size() (int64, error) { return jf.f.Size() }

func (jf *injFile) Close() error {
	// Closing stays possible after a crash so tests can release handles;
	// the data written after the crash point never existed anyway.
	return jf.f.Close()
}
