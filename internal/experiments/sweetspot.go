package experiments

import (
	"fmt"

	"knives/internal/algorithms"
	"knives/internal/cost"
	"knives/internal/partition"
	"knives/internal/schema"
)

// reoptimizedCost computes an algorithm's total workload cost when the
// layouts are recomputed for the given disk.
func reoptimizedCost(b *schema.Benchmark, name string, disk cost.Disk) (float64, error) {
	a, err := algorithms.ByName(name)
	if err != nil {
		return 0, err
	}
	rs, err := runAll(a, b, cost.NewHDD(disk))
	if err != nil {
		return 0, err
	}
	return totalCost(rs), nil
}

// sweetspotRow renders one parameter point of a Figure 9/12-style sweep:
// HillClimb and Navathe re-optimized for the disk, plus the perfect
// materialized views and Column (and optionally Row), all normalized by
// Column when normalize is true.
func sweetspotRow(b *schema.Benchmark, disk cost.Disk, label string, normalize, includeRow bool) ([]string, error) {
	m := cost.NewHDD(disk)
	col := layoutCost(b, m, partition.Column)
	hc, err := reoptimizedCost(b, "HillClimb", disk)
	if err != nil {
		return nil, err
	}
	nav, err := reoptimizedCost(b, "Navathe", disk)
	if err != nil {
		return nil, err
	}
	pmv := pmvCost(b, m)
	cells := []string{label}
	emit := func(v float64) string {
		if normalize {
			if col == 0 {
				return "n/a"
			}
			return fmtPercent(v / col)
		}
		return fmtSeconds(v)
	}
	cells = append(cells, emit(hc), emit(nav), emit(pmv), emit(col))
	if includeRow {
		cells = append(cells, emit(layoutCost(b, m, partition.Row)))
	}
	return cells, nil
}

// Fig9 reproduces Figure 9: estimated workload runtime normalized by
// Column when re-optimizing the layouts for each buffer size.
func Fig9(s *Suite) (*Report, error) {
	r := &Report{
		ID:     "fig9",
		Title:  "Normalized estimated costs vs Column when re-optimizing per buffer size",
		Header: []string{"buffer", "HillClimb", "Navathe", "PMV", "Column"},
	}
	kb := int64(1 << 10)
	for _, buf := range []struct {
		label string
		bytes int64
	}{
		{"0.01 MB", 10 * kb}, {"0.1 MB", 100 * kb}, {"1 MB", 1 << 20},
		{"10 MB", 10 << 20}, {"100 MB", 100 << 20},
		{"1000 MB", 1000 << 20}, {"10000 MB", 10000 << 20},
	} {
		row, err := sweetspotRow(s.Bench, s.Disk.WithBuffer(buf.bytes), buf.label, true, false)
		if err != nil {
			return nil, err
		}
		r.AddRow(row...)
	}
	r.AddNote("paper: vertical partitioning pays off over Column only below ~100 MB buffers")
	r.AddNote("paper: Navathe beats Column only in a narrow ~30-300 KB band")
	return r, nil
}

// Fig12 reproduces Figure 12 (Appendix A.3): estimated workload runtimes
// when re-optimizing for each block size, disk bandwidth, and seek time.
func Fig12(s *Suite) (*Report, error) {
	r := &Report{
		ID:     "fig12",
		Title:  "Estimated runtimes when re-optimizing per block size / bandwidth / seek time",
		Header: []string{"parameter", "HillClimb", "Navathe", "PMV", "Column", "Row"},
	}
	kb := int64(1 << 10)
	for _, b := range []int64{2 * kb, 4 * kb, 8 * kb, 16 * kb, 32 * kb, 64 * kb, 128 * kb} {
		row, err := sweetspotRow(s.Bench, s.Disk.WithBlockSize(b), fmt.Sprintf("block %d KB", b/kb), false, true)
		if err != nil {
			return nil, err
		}
		r.AddRow(row...)
	}
	for _, mbps := range []float64{70, 90, 110, 130, 150, 170, 190} {
		row, err := sweetspotRow(s.Bench, s.Disk.WithReadBandwidth(mbps*1e6), fmt.Sprintf("bw %.0f MB/s", mbps), false, true)
		if err != nil {
			return nil, err
		}
		r.AddRow(row...)
	}
	for _, ms := range []float64{1, 2, 3, 4, 5, 6, 7} {
		row, err := sweetspotRow(s.Bench, s.Disk.WithSeekTime(ms/1000), fmt.Sprintf("seek %.0f ms", ms), false, true)
		if err != nil {
			return nil, err
		}
		r.AddRow(row...)
	}
	r.AddNote("paper: block size and seek time barely move the results; bandwidth shifts them ~30%% with no interesting regions")
	return r, nil
}

// Fig13 reproduces Figure 13 (Appendix A.4): normalized costs vs Column
// when re-optimizing for every (buffer size, scale factor) combination,
// for HillClimb and Navathe.
func Fig13(s *Suite) (*Report, error) {
	r := &Report{
		ID:     "fig13",
		Title:  "Sweet spots across dataset scale: normalized costs vs Column per (buffer, SF)",
		Header: []string{"algorithm", "SF", "0.01 MB", "0.1 MB", "1 MB", "10 MB", "100 MB", "1000 MB", "10000 MB"},
	}
	kb := int64(1 << 10)
	buffers := []int64{10 * kb, 100 * kb, 1 << 20, 10 << 20, 100 << 20, 1000 << 20, 10000 << 20}
	for _, name := range []string{"HillClimb", "Navathe"} {
		for _, sf := range []float64{0.1, 1, 10, 100, 1000} {
			bench := schema.TPCH(sf)
			row := []string{name, fmt.Sprintf("%g", sf)}
			for _, buf := range buffers {
				disk := s.Disk.WithBuffer(buf)
				m := cost.NewHDD(disk)
				col := layoutCost(bench, m, partition.Column)
				c, err := reoptimizedCost(bench, name, disk)
				if err != nil {
					return nil, err
				}
				if col == 0 {
					row = append(row, "n/a")
				} else {
					row = append(row, fmtPercent(c/col))
				}
			}
			r.AddRow(row...)
		}
	}
	r.AddNote("paper: improvements jump between SF 0.1 and 1 for buffers >1 MB; elsewhere dataset size barely matters")
	return r, nil
}
