package experiments

import (
	"fmt"
	"sort"
	"time"

	"knives/internal/algo"
	"knives/internal/algorithms"
	"knives/internal/cost"
	"knives/internal/schema"
)

// Fig1 reproduces Figure 1: the optimization time of every algorithm for
// the whole TPC-H workload (all tables), alongside the candidate-layout
// counts that make the orders-of-magnitude gaps machine-independent. The
// layout-transformation time the paper quotes (~420 s at SF 10) is noted
// for scale.
func Fig1(s *Suite) (*Report, error) {
	r := &Report{
		ID:     "fig1",
		Title:  "Optimization time for different algorithms (TPC-H SF10, all tables)",
		Header: []string{"algorithm", "opt time (s)", "candidates"},
	}
	times := map[string]float64{}
	for _, name := range evaluatedAlgorithms {
		seconds, candidates, err := s.timedSeconds(name)
		if err != nil {
			return nil, err
		}
		times[name] = seconds
		r.AddRow(name, fmtSeconds(seconds), fmt.Sprintf("%d", candidates))
	}
	if bf, hc := times["BruteForce"], times["HillClimb"]; hc > 0 {
		r.AddNote("BruteForce / HillClimb optimization time = %.0fx", bf/hc)
	}
	r.AddNote("layout transformation time at SF10 ≈ %.0f s (read+write all tables)",
		cost.BenchmarkCreationTime(s.Bench, s.Disk))
	r.AddNote("opt time is parallel wall clock across tables (makespan) on this machine; candidate counts are machine-independent")
	r.AddNote("paper: every heuristic is orders of magnitude faster than BruteForce")
	return r, nil
}

// timeAlgorithm measures the median across reps of the optimization time
// over all tables, returning the last run's layouts so callers can seed
// the results cache instead of searching again. Since runAll fans tables
// out, the measured quantity is the parallel makespan — how long a user
// waits for the whole benchmark on this machine — not the serial sum of
// per-table times; the candidate counts alongside it are the
// machine-independent effort measure.
func timeAlgorithm(s *Suite, name string, reps int) ([]algo.Result, float64, int64, error) {
	var seconds []float64
	var candidates int64
	var rs []algo.Result
	for i := 0; i < reps; i++ {
		a, err := algorithms.ByName(name)
		if err != nil {
			return nil, 0, 0, err
		}
		start := time.Now()
		rs, err = runAll(a, s.Bench, s.model())
		if err != nil {
			return nil, 0, 0, err
		}
		seconds = append(seconds, time.Since(start).Seconds())
		candidates, _ = totalStats(rs)
	}
	sort.Float64s(seconds)
	return rs, seconds[len(seconds)/2], candidates, nil
}

// Fig2 reproduces Figure 2: optimization time over varying workload size
// (the first k TPC-H queries, k = 1..22) for the five fast algorithms.
// Trojan and BruteForce are excluded, as in the paper.
func Fig2(s *Suite) (*Report, error) {
	r := &Report{
		ID:     "fig2",
		Title:  "Optimization time over varying workload size (first k TPC-H queries)",
		Header: append([]string{"k"}, fastAlgorithms...),
	}
	full := s.Bench.Workload
	for k := 1; k <= len(full.Queries); k++ {
		bench := &schema.Benchmark{Name: s.Bench.Name, Tables: s.Bench.Tables, Workload: full.Prefix(k)}
		row := []string{fmt.Sprintf("%d", k)}
		for _, name := range fastAlgorithms {
			var best float64
			for rep := 0; rep < s.reps(); rep++ {
				a, err := algorithms.ByName(name)
				if err != nil {
					return nil, err
				}
				start := time.Now()
				if _, err := runAll(a, bench, s.model()); err != nil {
					return nil, err
				}
				sec := time.Since(start).Seconds()
				if rep == 0 || sec < best {
					best = sec
				}
			}
			row = append(row, fmtSeconds(best))
		}
		r.AddRow(row...)
	}
	r.AddNote("opt time is parallel wall clock across tables (makespan) on this machine")
	r.AddNote("paper: Navathe and AutoPart grow steeper with workload size than HYRISE, HillClimb, O2P")
	return r, nil
}
