package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// sharedSuite caches the expensive default-setting layouts (BruteForce over
// Lineitem enumerates ~4.2M candidates) across all tests in this package.
var sharedSuite = func() *Suite {
	s := NewSuite()
	s.Reps = 1
	return s
}()

// parsePercent turns "12.34%" into 0.1234.
func parsePercent(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("parse percent %q: %v", cell, err)
	}
	return v / 100
}

func parseFloat(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("parse float %q: %v", cell, err)
	}
	return v
}

// findRow returns the first row whose first cell equals key.
func findRow(t *testing.T, r *Report, key string) []string {
	t.Helper()
	for _, row := range r.Rows {
		if row[0] == key {
			return row
		}
	}
	t.Fatalf("%s: no row %q", r.ID, key)
	return nil
}

func TestRegistryCoversEveryPaperArtifact(t *testing.T) {
	want := []string{
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
		"tab3", "tab4", "tab5", "tab6", "tab7",
	}
	have := map[string]bool{}
	for _, e := range All() {
		have[e.ID] = true
		if e.Run == nil || e.Description == "" {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
	if _, err := ByID("fig3"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("ByID accepted unknown id")
	}
}

// Every registered experiment must run and produce a well-formed report.
// fig1 and fig2 are timing-heavy and covered separately by the benches, so
// they run here with the shared suite's single repetition.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep, err := e.Run(sharedSuite)
			if err != nil {
				t.Fatal(err)
			}
			if rep.ID != e.ID {
				t.Errorf("report ID = %s, want %s", rep.ID, e.ID)
			}
			if len(rep.Rows) == 0 {
				t.Error("report has no rows")
			}
			for _, row := range rep.Rows {
				if len(row) != len(rep.Header) {
					t.Errorf("row %v has %d cells, header has %d", row, len(row), len(rep.Header))
				}
			}
			if s := rep.String(); !strings.Contains(s, e.ID) {
				t.Error("String() lacks the experiment id")
			}
		})
	}
}

// Figure 3 shape: HillClimb = BruteForce <= Column < Navathe << Row.
func TestFig3Shape(t *testing.T) {
	rep, err := Fig3(sharedSuite)
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) float64 { return parseFloat(t, findRow(t, rep, name)[1]) }
	hc, bf, col, nav, row := get("HillClimb"), get("BruteForce"), get("Column"), get("Navathe"), get("Row")
	if hc != bf {
		t.Errorf("HillClimb (%v) != BruteForce (%v)", hc, bf)
	}
	if !(hc <= col && col < nav && nav < row) {
		t.Errorf("ordering violated: hc=%v col=%v nav=%v row=%v", hc, col, nav, row)
	}
	if row < 4*hc {
		t.Errorf("Row (%v) should dwarf HillClimb (%v)", row, hc)
	}
}

// Figure 4 shape: Row ~84%, Column 0%, HillClimb small, Navathe ~25%.
func TestFig4Shape(t *testing.T) {
	rep, err := Fig4(sharedSuite)
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) float64 { return parsePercent(t, findRow(t, rep, name)[1]) }
	if v := get("Row"); v < 0.7 || v > 0.95 {
		t.Errorf("Row unnecessary = %v, paper ~0.84", v)
	}
	if v := get("Column"); v != 0 {
		t.Errorf("Column unnecessary = %v, want 0", v)
	}
	if v := get("HillClimb"); v > 0.05 {
		t.Errorf("HillClimb unnecessary = %v, paper ~0.008", v)
	}
	if v := get("Navathe"); v < 0.1 || v > 0.4 {
		t.Errorf("Navathe unnecessary = %v, paper ~0.25", v)
	}
}

// Figure 5 shape: Column joins the most, Row zero, HillClimb performs the
// bulk (>=60%) of Column's joins.
func TestFig5Shape(t *testing.T) {
	rep, err := Fig5(sharedSuite)
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) float64 { return parseFloat(t, findRow(t, rep, name)[1]) }
	col, row, hc := get("Column"), get("Row"), get("HillClimb")
	if row != 0 {
		t.Errorf("Row joins = %v", row)
	}
	if !(hc > 0.6*col && hc <= col) {
		t.Errorf("HillClimb joins %v vs Column %v: want 60-100%%", hc, col)
	}
}

// Figure 6 shape: HillClimb closest to PMV, Navathe far, Row hundreds of
// percent off.
func TestFig6Shape(t *testing.T) {
	rep, err := Fig6(sharedSuite)
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) float64 { return parsePercent(t, findRow(t, rep, name)[1]) }
	hc, nav, row := get("HillClimb"), get("Navathe"), get("Row")
	if hc < 0 || hc > 0.25 {
		t.Errorf("HillClimb distance = %v, paper ~0.18", hc)
	}
	if nav < 0.3 {
		t.Errorf("Navathe distance = %v, paper ~0.49", nav)
	}
	if row < 3 {
		t.Errorf("Row distance = %v, paper ~5.17", row)
	}
}

// Figure 7 shape: HillClimb starts >15% and stays positive; Navathe goes
// negative for larger k.
func TestFig7Shape(t *testing.T) {
	rep, err := Fig7(sharedSuite)
	if err != nil {
		t.Fatal(err)
	}
	first := rep.Rows[0]
	last := rep.Rows[len(rep.Rows)-1]
	if v := parsePercent(t, first[1]); v < 0.15 {
		t.Errorf("HillClimb at k=1 = %v, paper ~0.24", v)
	}
	if v := parsePercent(t, last[1]); v <= 0 || v > 0.1 {
		t.Errorf("HillClimb at k=22 = %v, paper ~0.037", v)
	}
	if v := parsePercent(t, last[2]); v >= 0 {
		t.Errorf("Navathe at k=22 = %v, paper ~-0.21", v)
	}
}

// Table 3 shape: HillClimb reads 0% unnecessary for k <= 6; Navathe jumps
// after k = 3.
func TestTab3Shape(t *testing.T) {
	rep, err := Tab3(sharedSuite)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		if v := parsePercent(t, row[1]); v != 0 {
			t.Errorf("HillClimb unnecessary at k=%s is %v, want 0", row[0], v)
		}
	}
	for _, row := range rep.Rows[:3] {
		if v := parsePercent(t, row[2]); v != 0 {
			t.Errorf("Navathe unnecessary at k=%s is %v, want 0", row[0], v)
		}
	}
	var jumped bool
	for _, row := range rep.Rows[3:] {
		if parsePercent(t, row[2]) > 0.05 {
			jumped = true
		}
	}
	if !jumped {
		t.Error("Navathe never jumped above 5% for k in 4..6 (paper: >30%)")
	}
}

// Table 4 shape: HillClimb joins grow with k; Column joins shrink; exact
// endpoint values match the paper (6.00 at k=1, 3.40 at k=6 for Column).
func TestTab4Shape(t *testing.T) {
	rep, err := Tab4(sharedSuite)
	if err != nil {
		t.Fatal(err)
	}
	if v := parseFloat(t, rep.Rows[0][2]); v != 6.00 {
		t.Errorf("Column joins at k=1 = %v, paper 6.00", v)
	}
	if v := parseFloat(t, rep.Rows[5][2]); v != 3.40 {
		t.Errorf("Column joins at k=6 = %v, paper 3.40", v)
	}
	if v := parseFloat(t, rep.Rows[0][1]); v != 0 {
		t.Errorf("HillClimb joins at k=1 = %v, paper 0.00", v)
	}
	if v := parseFloat(t, rep.Rows[5][1]); v < 1.5 {
		t.Errorf("HillClimb joins at k=6 = %v, paper 2.00", v)
	}
}

// Figure 8 shape: tiny buffers blow runtimes up by large factors; the
// default buffer row is exactly zero; huge buffers help slightly.
func TestFig8Shape(t *testing.T) {
	rep, err := Fig8(sharedSuite)
	if err != nil {
		t.Fatal(err)
	}
	tiny := findRow(t, rep, "0.08 MB")
	for i := 1; i < len(tiny); i++ {
		if v := parseFloat(t, tiny[i]); v < 2 {
			t.Errorf("fragility at 0.08 MB for %s = %v, paper 5-24", rep.Header[i], v)
		}
	}
	def := findRow(t, rep, "8 MB")
	for i := 1; i < len(def); i++ {
		if v := parseFloat(t, def[i]); v != 0 {
			t.Errorf("fragility at default buffer for %s = %v, want 0", rep.Header[i], v)
		}
	}
	huge := findRow(t, rep, "8000 MB")
	for i := 1; i < len(huge); i++ {
		if v := parseFloat(t, huge[i]); v > 0 || v < -0.5 {
			t.Errorf("fragility at 8000 MB for %s = %v, want slightly negative", rep.Header[i], v)
		}
	}
}

// Figure 9 shape: HillClimb never exceeds Column (it can always fall back
// to column layout), beats it clearly around 0.1 MB, and converges to it
// for huge buffers. This is the paper's core "watch the buffer size" lesson.
func TestFig9Shape(t *testing.T) {
	rep, err := Fig9(sharedSuite)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		if v := parsePercent(t, row[1]); v > 1.0001 {
			t.Errorf("HillClimb normalized cost at %s = %v > 100%%", row[0], v)
		}
	}
	if v := parsePercent(t, findRow(t, rep, "0.1 MB")[1]); v > 0.8 {
		t.Errorf("HillClimb at 0.1 MB = %v, expected clear win (paper: best spot ~100 KB)", v)
	}
	if v := parsePercent(t, findRow(t, rep, "10000 MB")[1]); v < 0.97 {
		t.Errorf("HillClimb at 10 GB = %v, expected ~100%% (no benefit)", v)
	}
	// Navathe is worse than Column for big buffers.
	if v := parsePercent(t, findRow(t, rep, "10000 MB")[2]); v <= 1 {
		t.Errorf("Navathe at 10 GB = %v, expected > 100%%", v)
	}
}

// Table 5 shape: the HillClimb class improves a few percent on both
// benchmarks, more on SSB; Navathe/O2P are negative on both.
func TestTab5Shape(t *testing.T) {
	rep, err := Tab5(sharedSuite)
	if err != nil {
		t.Fatal(err)
	}
	hc := findRow(t, rep, "HillClimb")
	tpch, ssb := parsePercent(t, hc[1]), parsePercent(t, hc[2])
	if tpch <= 0 || tpch > 0.1 {
		t.Errorf("HillClimb TPC-H improvement = %v, paper 0.0371", tpch)
	}
	if ssb <= tpch {
		t.Errorf("SSB improvement (%v) should exceed TPC-H (%v)", ssb, tpch)
	}
	nav := findRow(t, rep, "Navathe")
	if parsePercent(t, nav[1]) >= 0 || parsePercent(t, nav[2]) >= 0 {
		t.Errorf("Navathe improvements should be negative: %v", nav)
	}
}

// Table 6 shape: under the MM cost model the HillClimb class has exactly
// 0.00% improvement and Navathe/O2P are clearly negative.
func TestTab6Shape(t *testing.T) {
	rep, err := Tab6(sharedSuite)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"AutoPart", "HillClimb", "HYRISE", "BruteForce"} {
		if v := parsePercent(t, findRow(t, rep, name)[2]); v != 0 {
			t.Errorf("%s MM improvement = %v, paper 0.00%%", name, v)
		}
	}
	if v := parsePercent(t, findRow(t, rep, "Navathe")[2]); v >= 0 {
		t.Errorf("Navathe MM improvement = %v, want negative", v)
	}
}

// Table 7 shape: Column beats HillClimb beats Row under both compression
// schemes, and dictionary compression narrows the Column-HillClimb gap.
func TestTab7Shape(t *testing.T) {
	rep, err := Tab7(sharedSuite)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("tab7 has %d rows", len(rep.Rows))
	}
	var gaps []float64
	for _, row := range rep.Rows {
		rowT, colT, hcT := parseFloat(t, row[1]), parseFloat(t, row[2]), parseFloat(t, row[3])
		if !(colT <= hcT && hcT < rowT) {
			t.Errorf("%s: want Column <= HillClimb < Row, got %v %v %v", row[0], colT, hcT, rowT)
		}
		gaps = append(gaps, (hcT-colT)/colT)
	}
	if gaps[1] > gaps[0] {
		t.Errorf("dictionary gap (%v) should not exceed default gap (%v)", gaps[1], gaps[0])
	}
}

// Figure 10 shape: everything pays off over Row within well under one
// workload execution; Navathe and O2P never pay off over Column.
func TestFig10Shape(t *testing.T) {
	rep, err := Fig10(sharedSuite)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		if v := parsePercent(t, row[1]); v <= 0 || v > 0.6 {
			t.Errorf("%s pay-off over Row = %v, paper ~0.25", row[0], v)
		}
	}
	for _, name := range []string{"Navathe", "O2P"} {
		if cell := findRow(t, rep, name)[2]; cell != "never" {
			t.Errorf("%s pay-off over Column = %q, want never", name, cell)
		}
	}
	if cell := findRow(t, rep, "HillClimb")[2]; cell == "never" {
		t.Error("HillClimb should pay off over Column eventually")
	}
}

// Figure 11 shape: block size fragility is negligible, bandwidth moderate,
// seek time small — the ordering the paper's Appendix A.2 reports.
func TestFig11Shape(t *testing.T) {
	rep, err := Fig11(sharedSuite)
	if err != nil {
		t.Fatal(err)
	}
	maxAbs := map[string]float64{}
	for _, row := range rep.Rows {
		kind := strings.Fields(row[0])[0]
		for i := 1; i < len(row); i++ {
			v := parseFloat(t, row[i])
			if v < 0 {
				v = -v
			}
			if v > maxAbs[kind] {
				maxAbs[kind] = v
			}
		}
	}
	if maxAbs["block"] > 0.25 {
		t.Errorf("block-size fragility up to %v, paper <0.01 (ours allows small-block penalty)", maxAbs["block"])
	}
	if maxAbs["bw"] < 0.2 || maxAbs["bw"] > 0.6 {
		t.Errorf("bandwidth fragility max = %v, paper ~0.42", maxAbs["bw"])
	}
	if maxAbs["seek"] > 0.1 {
		t.Errorf("seek fragility max = %v, paper <0.05", maxAbs["seek"])
	}
	if !(maxAbs["block"] < maxAbs["bw"] && maxAbs["seek"] < maxAbs["bw"]) {
		t.Errorf("bandwidth should dominate block and seek fragility: %v", maxAbs)
	}
}

// Figure 13 shape: for buffers >= 10 MB the normalized cost jumps between
// SF 0.1 and SF 1 and is stable from SF 10 on.
func TestFig13Shape(t *testing.T) {
	rep, err := Fig13(sharedSuite)
	if err != nil {
		t.Fatal(err)
	}
	var hc01, hc1, hc10, hc100 float64
	for _, row := range rep.Rows {
		if row[0] != "HillClimb" {
			continue
		}
		v := parsePercent(t, row[5]) // 10 MB column
		switch row[1] {
		case "0.1":
			hc01 = v
		case "1":
			hc1 = v
		case "10":
			hc10 = v
		case "100":
			hc100 = v
		}
	}
	if !(hc01 < hc1) {
		t.Errorf("expected jump between SF 0.1 (%v) and SF 1 (%v) at 10 MB", hc01, hc1)
	}
	if diff := hc100 - hc10; diff < -0.01 || diff > 0.01 {
		t.Errorf("SF 10 (%v) and SF 100 (%v) should be nearly identical", hc10, hc100)
	}
}

// Figure 14: a layout row exists for every (table, algorithm) pair and the
// HillClimb class agrees on partsupp, where the paper shows one shared
// layout for AutoPart/HillClimb/HYRISE/Trojan/Optimal.
func TestFig14Shape(t *testing.T) {
	rep, err := Fig14(sharedSuite)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(sharedSuite.Bench.Tables) * (len(evaluatedAlgorithms) + 1)
	if len(rep.Rows) != wantRows {
		t.Errorf("fig14 has %d rows, want %d", len(rep.Rows), wantRows)
	}
	layouts := map[string]string{}
	for _, row := range rep.Rows {
		if row[0] == "partsupp" {
			layouts[row[1]] = row[2]
		}
	}
	for _, name := range []string{"AutoPart", "HYRISE", "Trojan", "BruteForce"} {
		if layouts[name] != layouts["HillClimb"] {
			t.Errorf("partsupp: %s layout %q differs from HillClimb %q", name, layouts[name], layouts["HillClimb"])
		}
	}
	if layouts["Navathe"] == layouts["HillClimb"] {
		t.Error("partsupp: Navathe should differ from the HillClimb class (paper, Fig. 14h)")
	}
}

// The suite caches layouts: the second call must return identical results.
func TestSuiteCaching(t *testing.T) {
	s := NewSuite()
	s.Reps = 1
	r1, err := s.results("HillClimb")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.results("HillClimb")
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1 {
		if !r1[i].Partitioning.Equal(r2[i].Partitioning) {
			t.Fatal("cache returned different layouts")
		}
	}
	if _, err := s.results("NoSuchAlgorithm"); err == nil {
		t.Error("results accepted unknown algorithm")
	}
}

// Reports render deterministically and align columns.
func TestReportRendering(t *testing.T) {
	r := &Report{ID: "x", Title: "t", Header: []string{"a", "bb"}}
	r.AddRow("1", "2")
	r.AddRow("333", "4")
	r.AddNote("hello %d", 7)
	s := r.String()
	if !strings.Contains(s, "note: hello 7") {
		t.Errorf("rendered: %q", s)
	}
	// Title, header, separator, two rows, one note.
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 6 {
		t.Errorf("rendered %d lines, want 6", len(lines))
	}
}
