package experiments

import (
	"fmt"
	"sort"
)

// Runner executes one experiment against a suite.
type Runner func(*Suite) (*Report, error)

// Experiment describes a registered paper artifact.
type Experiment struct {
	ID          string
	Description string
	Run         Runner
}

// registry lists every reproduced table and figure in paper order.
var registry = []Experiment{
	{"fig1", "Optimization time for different algorithms", Fig1},
	{"fig2", "Optimization time over varying workload size", Fig2},
	{"fig3", "Estimated workload runtime for different algorithms", Fig3},
	{"fig4", "Fraction of unnecessary data read", Fig4},
	{"fig5", "Average tuple-reconstruction joins", Fig5},
	{"fig6", "Distance from perfect materialized views", Fig6},
	{"fig7", "Improvement over Column when re-optimizing for the first k queries", Fig7},
	{"tab3", "Unnecessary data reads over Lineitem for the first k queries", Tab3},
	{"tab4", "Tuple-reconstruction joins per Lineitem row for the first k queries", Tab4},
	{"fig8", "Fragility: changing the buffer size at query time", Fig8},
	{"fig9", "Sweet spots: re-optimizing per buffer size", Fig9},
	{"tab5", "Improvement over Column with different benchmarks (TPC-H vs SSB)", Tab5},
	{"tab6", "Improvement over Column with different cost models (HDD vs MM)", Tab6},
	{"tab7", "Simulated DBMS-X runtimes per layout and compression scheme", Tab7},
	{"fig10", "Pay-off over Row and Column", Fig10},
	{"fig11", "Fragility: block size, bandwidth, seek time", Fig11},
	{"fig12", "Sweet spots: re-optimizing per block size, bandwidth, seek time", Fig12},
	{"fig13", "Sweet spots across dataset scale (buffer x SF)", Fig13},
	{"fig14", "Computed partitions for the TPC-H workload", Fig14},
	// Extensions: results the paper states in prose, and features its
	// unified setting stripped.
	{"ext-selectivity", "Selection-aware layouts across selectivities (Section 7 claim)", ExtSelectivity},
	{"ext-drift", "Fragility to workload change (Section 6.3 aside)", ExtWorkloadDrift},
	{"ext-convergence", "Search effort vs workload fragmentation (Section 2 claims)", ExtConvergence},
	{"ext-replication", "AutoPart with partial replication (stripped feature restored)", ExtReplication},
	{"ext-grouping", "Trojan query grouping across replicas (stripped feature restored)", ExtGrouping},
	{"ext-replay", "Measured replay of advised layouts vs cost-model predictions (fig3 from execution)", ExtReplay},
	{"ext-operators", "Operator pipelines: executed sigma/pi/join I/O vs predictions across devices", ExtOperators},
	{"ext-vectorized", "Vectorized batch-at-a-time execution vs the row oracle (bit-exact, morsel-parallel)", ExtVectorized},
	{"ext-migrate", "Online migration after workload drift: break-even points and verified transition cost", ExtMigrate},
	{"ext-device", "Algorithm ranking across the device spectrum (HDD -> SSD -> MM)", ExtDevice},
	{"ext-recovery", "Crash-recovery equivalence of the durable state store (kill@write and retry schedules)", ExtRecovery},
}

// All returns every registered experiment in paper order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range registry {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, ids)
}
