package experiments

import (
	"bytes"
	"fmt"
	"os"
	"strings"

	"knives/internal/faultinject"
	"knives/internal/statestore"
	"knives/internal/vfs"
)

// ExtRecovery pins the crash-recovery contract of the durable state store
// as data: a daemon killed at an arbitrary write recovers to EXACTLY the
// state the acknowledged mutations fold to (plus at most the one in-doubt
// event whose frame was complete on disk when the failure was reported),
// and a daemon whose disk fails transiently drains every mutation with
// bounded retries and zero divergence between the live fold and a clean
// restart.
//
// Part 1 (kill@write rows) replays a fixed 64-event mutation stream into a
// store whose filesystem crashes at a scheduled write — some schedules land
// mid-journal-frame (torn tails), some on snapshot writes (losing the
// compaction but never the log). The directory is then reopened through a
// clean filesystem, exactly like a restart, and the recovered state is
// compared bit-for-bit against an uninterrupted fold of the acknowledged
// prefix.
//
// Part 2 (retry rows) schedules transient write/sync faults, retries each
// failed append (at most 3 retries), and requires the final live state, the
// reference fold of the full stream, and a clean restart to agree
// bit-for-bit.
//
// Fault schedules, the event stream, and append ordering are all
// deterministic, so acked counts, replayed records, snapshot sequences, and
// torn-byte lengths are golden-diffed without masking.
func ExtRecovery(_ *Suite) (*Report, error) {
	const (
		nEvents   = 64
		window    = 8  // drift window: small enough that trimming fires
		snapEvery = 10 // snapshots rotate several times inside the stream
	)
	opts := statestore.Options{DriftWindow: window, SnapshotEvery: snapEvery}
	evs := recoveryEvents(nEvents)

	r := &Report{
		ID:     "ext-recovery",
		Title:  "Crash-recovery equivalence of the durable state store (64-event stream, window 8, snapshot every 10)",
		Header: []string{"scenario", "faults", "acked", "snapshot", "replayed", "torn B", "retries", "verdict"},
	}

	// Write numbering: appends 1..10 are writes 1..10, the first snapshot
	// is write 11, and so on — so the schedule below hits journal frames,
	// snapshot payloads, and both torn and complete frames.
	crashes := []struct {
		n    int64
		keep int
	}{
		{4, 0},        // mid-stream, nothing lands: recover the acked prefix
		{9, 1 << 16},  // frame fully on disk, ack lost: the in-doubt event
		{11, 0},       // the first snapshot write: compaction lost, log kept
		{17, 7},       // torn journal frame: truncated at recovery
		{22, 1 << 16}, // complete snapshot.tmp, never renamed: ignored
		{47, 3},       // late torn frame, after several snapshot rotations
	}
	for _, c := range crashes {
		row, err := runCrashScenario(evs, opts, c.n, c.keep)
		if err != nil {
			return nil, err
		}
		r.AddRow(row...)
	}

	retries := []struct {
		name   string
		faults []faultinject.Fault
	}{
		{"fail writes 3,11,27", []faultinject.Fault{
			faultinject.FailNthWrite(3), faultinject.FailNthWrite(11), faultinject.FailNthWrite(27)}},
		{"fail syncs 5,6", []faultinject.Fault{
			faultinject.FailNthSync(5), faultinject.FailNthSync(6)}},
		{"torn write 9 keep 5", []faultinject.Fault{
			faultinject.TornNthWrite(9, 5)}},
		{"fail write 30 + sync 33", []faultinject.Fault{
			faultinject.FailNthWrite(30), faultinject.FailNthSync(33)}},
	}
	for _, c := range retries {
		row, err := runRetryScenario(evs, opts, c.name, c.faults)
		if err != nil {
			return nil, err
		}
		r.AddRow(row...)
	}

	r.AddNote("every kill recovers exactly the acknowledged prefix; the only extra state is the one in-doubt event whose frame was already complete on disk")
	r.AddNote("torn journal frames and orphaned snapshot temporaries are repaired at open, never replayed")
	r.AddNote("transient faults drain with at most one retry per injected failure; live fold, reference fold, and clean restart agree bit-for-bit")
	return r, nil
}

// runCrashScenario appends the stream into a store that dies at the
// scheduled write, reopens the directory through a clean filesystem, and
// verdicts the recovered state against the acked-prefix fold.
func runCrashScenario(evs []statestore.Event, opts statestore.Options, n int64, keep int) ([]string, error) {
	scenario := fmt.Sprintf("kill@write %d keep %d", n, keep)
	dir, err := os.MkdirTemp("", "ext-recovery-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	fsys, err := vfs.Dir(dir)
	if err != nil {
		return nil, err
	}
	inj := faultinject.New(fsys, faultinject.CrashAtWrite(n, keep))
	st, err := statestore.Open(inj, opts)
	if err != nil {
		return nil, fmt.Errorf("%s: open: %w", scenario, err)
	}
	acked := 0
	for _, ev := range evs {
		if err := st.Append(ev); err != nil {
			break
		}
		acked++
	}
	st.Close() // the simulated process is dead; the error is the point
	if !inj.Crashed() {
		return nil, fmt.Errorf("%s: crash never fired (%d writes issued)", scenario, inj.Count(faultinject.OpWrite))
	}

	clean, err := vfs.Dir(dir)
	if err != nil {
		return nil, err
	}
	re, err := statestore.Open(clean, opts)
	if err != nil {
		return nil, fmt.Errorf("%s: reopen after crash: %w", scenario, err)
	}
	defer re.Close()
	rep := re.Report()
	got := statestore.MarshalStates(re.Recovered())

	// The contract: recovered state is the fold of the acked prefix — or of
	// acked+1 when the failing write had already put the complete frame on
	// disk (the ack was lost, not the event: the classic in-doubt write).
	var verdict string
	switch {
	case bytes.Equal(got, statestore.MarshalStates(statestore.Oracle(evs[:acked], opts.DriftWindow))):
		verdict = "exact(acked)"
	case acked < len(evs) &&
		bytes.Equal(got, statestore.MarshalStates(statestore.Oracle(evs[:acked+1], opts.DriftWindow))):
		verdict = "exact(acked+in-doubt)"
	default:
		return nil, fmt.Errorf("%s: recovered state matches neither the %d acked events nor %d (DIVERGED)",
			scenario, acked, acked+1)
	}
	return []string{
		scenario,
		fmt.Sprintf("%d", inj.Injected()),
		fmt.Sprintf("%d", acked),
		fmt.Sprintf("%d", rep.SnapshotSeq),
		fmt.Sprintf("%d", rep.Records),
		fmt.Sprintf("%d", rep.TornBytes),
		"-",
		verdict,
	}, nil
}

// runRetryScenario appends the stream through a transient-fault schedule,
// retrying failed appends like the daemon's clients do, and verdicts both
// the live fold and a clean restart against the full-stream fold.
func runRetryScenario(evs []statestore.Event, opts statestore.Options, name string, faults []faultinject.Fault) ([]string, error) {
	scenario := "retry: " + name
	dir, err := os.MkdirTemp("", "ext-recovery-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	fsys, err := vfs.Dir(dir)
	if err != nil {
		return nil, err
	}
	inj := faultinject.New(fsys, faults...)
	st, err := statestore.Open(inj, opts)
	if err != nil {
		return nil, fmt.Errorf("%s: open: %w", scenario, err)
	}
	retried := 0
	for i, ev := range evs {
		var aerr error
		for attempt := 0; attempt < 4; attempt++ {
			if aerr = st.Append(ev); aerr == nil {
				break
			}
			retried++
		}
		if aerr != nil {
			return nil, fmt.Errorf("%s: event %d failed after retries: %w", scenario, i, aerr)
		}
	}
	oracle := statestore.MarshalStates(statestore.Oracle(evs, opts.DriftWindow))
	if !bytes.Equal(statestore.MarshalStates(st.Export()), oracle) {
		return nil, fmt.Errorf("%s: live state diverged from the reference fold", scenario)
	}
	if err := st.Close(); err != nil {
		return nil, fmt.Errorf("%s: close: %w", scenario, err)
	}

	clean, err := vfs.Dir(dir)
	if err != nil {
		return nil, err
	}
	re, err := statestore.Open(clean, opts)
	if err != nil {
		return nil, fmt.Errorf("%s: reopen: %w", scenario, err)
	}
	defer re.Close()
	rep := re.Report()
	if !bytes.Equal(statestore.MarshalStates(re.Recovered()), oracle) {
		return nil, fmt.Errorf("%s: restarted state diverged from the reference fold", scenario)
	}
	return []string{
		scenario,
		fmt.Sprintf("%d", inj.Injected()),
		fmt.Sprintf("%d", len(evs)),
		fmt.Sprintf("%d", rep.SnapshotSeq),
		fmt.Sprintf("%d", rep.Records),
		fmt.Sprintf("%d", rep.TornBytes),
		fmt.Sprintf("%d", retried),
		"exact(all)",
	}, nil
}

// recoveryEvents builds a deterministic 5-type mutation stream over three
// tables: registrations up front, then observes interleaved with drift
// recomputes, layout-applied CAS attempts (both hits and misses), and one
// eviction/re-registration cycle — the full event vocabulary the fold
// handles, so the equivalence rows cover every apply branch.
func recoveryEvents(n int) []statestore.Event {
	tables := []string{"orders", "lineitem", "events"}
	evs := make([]statestore.Event, 0, n)
	for i, name := range tables {
		evs = append(evs, recoveryCommit(name, i))
	}
	// regFP mirrors the fold's registration fingerprint so CAS hits can be
	// constructed on purpose.
	regFP := make(map[string][statestore.FPSize]byte, len(tables))
	for i, name := range tables {
		regFP[name] = recoveryFP(i)
	}
	for i := len(tables); len(evs) < n; i++ {
		name := tables[i%len(tables)]
		switch {
		case i%31 == 0:
			// Eviction and immediate re-registration: the reset drops the
			// tracker, the commit re-keys it (keeping its Order slot).
			evs = append(evs, statestore.Event{Type: statestore.EvReset, Table: name})
			evs = append(evs, recoveryCommit(name, i))
			regFP[name] = recoveryFP(i)
		case i%13 == 0:
			fp := recoveryFP(i)
			regFP[name] = fp
			evs = append(evs, statestore.Event{
				Type:        statestore.EvRecompute,
				Table:       name,
				Advice:      recoveryAdvice(i),
				FP:          fp,
				AdvObserved: int64(i),
			})
		case i%17 == 0:
			// Alternate CAS hits (current registration fingerprint) with
			// misses (a stale fingerprint the fold must ignore).
			fp := regFP[name]
			if i%2 == 1 {
				fp = recoveryFP(9000 + i)
			}
			evs = append(evs, statestore.Event{Type: statestore.EvApplied, Table: name, FP: fp})
		default:
			evs = append(evs, statestore.Event{
				Type:  statestore.EvObserve,
				Table: name,
				Queries: []statestore.QueryRec{{
					ID:     fmt.Sprintf("q%04d", i),
					Weight: 1 + float64(i%3),
					Attrs:  uint64(1 + i%7),
				}},
			})
		}
	}
	return evs[:n]
}

// recoveryCommit is a deterministic registration event for one table.
func recoveryCommit(name string, i int) statestore.Event {
	cols := make([]statestore.ColumnRec, 0, 3)
	for c := 0; c < 3; c++ {
		cols = append(cols, statestore.ColumnRec{
			Name: fmt.Sprintf("%s_c%d", strings.ToLower(name), c),
			Kind: uint8(c % 2),
			Size: int64(4 + 8*c),
		})
	}
	return statestore.Event{
		Type:  statestore.EvAdviseCommit,
		Table: name,
		Schema: statestore.TableRec{
			Name:    name,
			Rows:    int64(10_000 * (i + 1)),
			Columns: cols,
		},
		ModelKey: "HDD",
		Queries: []statestore.QueryRec{
			{ID: fmt.Sprintf("%s-reg0", name), Weight: 1, Attrs: 3},
			{ID: fmt.Sprintf("%s-reg1", name), Weight: 2, Attrs: 5},
		},
		Advice: recoveryAdvice(i),
		FP:     recoveryFP(i),
	}
}

// recoveryAdvice is a deterministic advice record keyed by i.
func recoveryAdvice(i int) statestore.AdviceRec {
	return statestore.AdviceRec{
		Algorithm:  "AutoPart",
		Parts:      []uint64{uint64(1 + i%7), uint64(8 + i%5)},
		Cost:       float64(100 + i),
		RowCost:    float64(200 + i),
		ColumnCost: float64(150 + i),
		PerAlgorithm: []statestore.AlgoCost{
			{Name: "AutoPart", Cost: float64(100 + i)},
			{Name: "HillClimb", Cost: float64(110 + i)},
		},
	}
}

// recoveryFP is a deterministic fingerprint keyed by i.
func recoveryFP(i int) [statestore.FPSize]byte {
	var fp [statestore.FPSize]byte
	for j := range fp {
		fp[j] = byte(i + j)
	}
	return fp
}
