package experiments

import (
	"fmt"
	"strings"

	"knives/internal/algo/autopart"
	"knives/internal/algo/hillclimb"
	"knives/internal/algo/navathe"
	"knives/internal/algo/trojan"
	"knives/internal/cost"
	"knives/internal/metrics"
	"knives/internal/replay"
	"knives/internal/schema"
	"knives/internal/storage"
	"knives/internal/workgen"
)

// The ext* experiments reproduce results the paper states in prose rather
// than as numbered artifacts, and restore features the unified setting
// stripped. They are registered alongside the figures and tables.

// ExtSelectivity probes the Section 7 claim: "putting the selection
// attributes in a different partition ... affects the data layouts only
// when the selectivity is higher than 1e-4 for uniformly distributed
// datasets." For each selectivity, HillClimb runs on Lineitem under the
// selection-aware cost model (predicate on l_shipdate) and the report says
// whether the layout deviates from the selection-free optimum. The executed
// columns run that selectivity's advised layout as σ/π/⋈ pipelines with the
// date predicate pushed into the scans: the σ scales the rows the root
// emits with the bound, while the common-granularity rule keeps the
// physical I/O — and therefore the zero-tolerance executed cost — identical
// across all selectivities.
func ExtSelectivity(s *Suite) (*Report, error) {
	r := &Report{
		ID:     "ext-selectivity",
		Title:  "Selection-aware layouts: when does the predicate change the layout? (Lineitem)",
		Header: []string{"selectivity", "layout differs?", "estd. cost (s)", "parts", "executed (s)", "rows kept"},
	}
	li := s.Bench.Table("lineitem")
	tw := s.Bench.Workload.ForTable(li)
	selAttr := li.AttrIndex("l_shipdate")

	base, err := hillclimb.New().Partition(tw, cost.NewHDD(s.Disk))
	if err != nil {
		return nil, err
	}
	exact, ioInvariant, ioSeen := true, true, false
	var bytesRead, seeks int64
	for _, sel := range []float64{1, 1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6} {
		m := cost.NewSelective(s.Disk, selAttr, sel)
		res, err := hillclimb.New().Partition(tw, m)
		if err != nil {
			return nil, err
		}
		differs := "no"
		if !res.Partitioning.Equal(base.Partitioning) {
			differs = "yes"
		}
		rep, err := replay.Operators(tw, res.Partitioning, "HillClimb", replay.Config{
			Disk:    s.Disk,
			MaxRows: executedSampleRows,
			Seed:    1,
		}, &replay.Selection{Attr: selAttr, Bound: uint32(sel * storage.DateDomain)})
		if err != nil {
			return nil, err
		}
		exact = exact && rep.Exact()
		// I/O is a function of the layout alone, never the bound: compare
		// the rows sharing the selection-free optimum's layout.
		if differs == "no" {
			if !ioSeen {
				bytesRead, seeks, ioSeen = rep.BytesRead, rep.Seeks, true
			} else {
				ioInvariant = ioInvariant && bytesRead == rep.BytesRead && seeks == rep.Seeks
			}
		}
		r.AddRow(fmt.Sprintf("%.0e", sel), differs, fmtSeconds(res.Cost),
			fmt.Sprintf("%d", res.Partitioning.NumParts()),
			fmtSeconds(rep.MeasuredTotal), fmt.Sprintf("%d", rep.ResultRows[0]))
	}
	r.AddNote("paper (Section 7): selection predicates affect layouts only beyond ~1e-4 selectivity on uniform data")
	r.AddNote("executed: σ(l_shipdate<bound) pushed into pipelines over %d-row samples; measured == predicted for every selectivity: %v", int64(executedSampleRows), exact)
	r.AddNote("common granularity from the execution side: same-layout rows read identical bytes and seeks at every bound (only rows kept changes): %v", ioInvariant)
	return r, nil
}

// ExtWorkloadDrift reproduces the Section 6.3 aside: "query workload costs
// change by only 14% for up to 50% change in query workload." Layouts are
// optimized for the original TPC-H workload; the workload then drifts by a
// fraction, and the report shows (a) the stale layout's cost change and
// (b) its regret against re-optimizing for the drifted workload.
func ExtWorkloadDrift(s *Suite) (*Report, error) {
	r := &Report{
		ID:     "ext-drift",
		Title:  "Fragility to workload change (HillClimb layouts, per-table drift)",
		Header: []string{"drift", "cost change", "regret vs re-optimized"},
	}
	m := s.model()
	rs, err := s.results("HillClimb")
	if err != nil {
		return nil, err
	}
	tws := s.Bench.TableWorkloads()
	baseCost := totalCost(rs)
	for _, frac := range []float64{0.1, 0.25, 0.5} {
		var staleCost, freshCost float64
		for i, tw := range tws {
			drifted := workgen.Drift(tw, frac, 42)
			staleCost += cost.WorkloadCost(m, drifted, rs[i].Partitioning.Parts)
			res, err := hillclimb.New().Partition(drifted, m)
			if err != nil {
				return nil, err
			}
			freshCost += res.Cost
		}
		change := (staleCost - baseCost) / baseCost
		regret := 0.0
		if freshCost > 0 {
			regret = (staleCost - freshCost) / freshCost
		}
		r.AddRow(fmtPercent(frac), fmtPercent(change), fmtPercent(regret))
	}
	r.AddNote("paper (Section 6.3): workload costs change by only ~14%% for up to 50%% workload change")
	return r, nil
}

// ExtConvergence tests the Section 2 convergence claims with generated
// workloads: top-down algorithms converge faster (fewer candidates) on
// highly regular access patterns, bottom-up algorithms on highly
// fragmented ones.
func ExtConvergence(s *Suite) (*Report, error) {
	r := &Report{
		ID:     "ext-convergence",
		Title:  "Search effort vs workload fragmentation (16-attr table, 24 generated queries)",
		Header: []string{"fragmentation", "HillClimb candidates", "Navathe candidates", "HillClimb cost", "Navathe cost"},
	}
	cols := make([]schema.Column, 16)
	for i := range cols {
		cols[i] = schema.Column{Name: fmt.Sprintf("a%02d", i), Size: 8}
	}
	tab, err := schema.NewTable("gen", 10_000_000, cols)
	if err != nil {
		return nil, err
	}
	m := s.model()
	for _, frag := range []float64{0, 0.25, 0.5, 0.75, 1} {
		tw, err := workgen.Generate(tab, workgen.Config{
			Queries: 24, Fragmentation: frag, MeanAttrs: 5, Seed: 2013,
		})
		if err != nil {
			return nil, err
		}
		hc, err := hillclimb.New().Partition(tw, m)
		if err != nil {
			return nil, err
		}
		nv, err := navathe.New().Partition(tw, m)
		if err != nil {
			return nil, err
		}
		r.AddRow(fmt.Sprintf("%.2f", frag),
			fmt.Sprintf("%d", hc.Stats.Candidates),
			fmt.Sprintf("%d", nv.Stats.Candidates),
			fmtSeconds(hc.Cost), fmtSeconds(nv.Cost))
	}
	r.AddNote("paper (Section 2): top-down converges faster on regular patterns, bottom-up on fragmented ones")
	return r, nil
}

// ExtGrouping restores Trojan's query grouping: with R fully replicated
// copies of the data (HDFS-style), the workload is clustered into R query
// groups and each replica carries a layout specialized for its group. The
// report sweeps the replica count on Lineitem and shows how the total cost
// approaches the perfect materialized views as replicas grow.
func ExtGrouping(s *Suite) (*Report, error) {
	r := &Report{
		ID:     "ext-grouping",
		Title:  "Trojan query grouping: one layout per replica (Lineitem)",
		Header: []string{"replicas", "estd. cost (s)", "distance from PMV", "groups"},
	}
	li := s.Bench.Table("lineitem")
	tw := s.Bench.Workload.ForTable(li)
	m := s.model()
	pmv := metrics.PMVCost(tw, m)
	for _, replicas := range []int{1, 2, 3, 4} {
		res, err := trojan.NewGrouped(replicas).Partition(tw, m)
		if err != nil {
			return nil, err
		}
		var sizes []string
		for _, g := range res.Groups {
			sizes = append(sizes, fmt.Sprintf("%d", len(g.QueryIDs)))
		}
		r.AddRow(fmt.Sprintf("%d", replicas), fmtSeconds(res.Cost),
			fmtPercent(metrics.DistanceFromPMV(res.Cost, pmv)),
			strings.Join(sizes, "+"))
	}
	r.AddNote("paper (Section 3): Trojan maps query groups to HDFS replicas; specialization narrows the PMV gap at full-replication storage cost")
	return r, nil
}

// ExtReplication restores AutoPart's partial replication (stripped by the
// unified setting) and sweeps the storage budget on Lineitem, reporting
// the cost against the disjoint optimum and the perfect materialized
// views — the two extremes the paper's Figure 6 frames.
func ExtReplication(s *Suite) (*Report, error) {
	r := &Report{
		ID:     "ext-replication",
		Title:  "AutoPart with partial replication: storage budget vs workload cost (Lineitem)",
		Header: []string{"budget", "estd. cost (s)", "storage overhead", "distance from PMV"},
	}
	li := s.Bench.Table("lineitem")
	tw := s.Bench.Workload.ForTable(li)
	m := s.model()
	pmv := metrics.PMVCost(tw, m)
	for _, budget := range []float64{0, 0.1, 0.25, 0.5, 1.0} {
		res, err := autopart.NewReplicated(budget).Partition(tw, m)
		if err != nil {
			return nil, err
		}
		r.AddRow(fmtPercent(budget), fmtSeconds(res.Cost),
			fmtPercent(res.Layout.ReplicationOverhead()),
			fmtPercent(metrics.DistanceFromPMV(res.Cost, pmv)))
	}
	r.AddNote("paper (Section 4): replication re-opens partition selection; the budget sweep shows how much of the PMV gap replication buys")
	return r, nil
}
