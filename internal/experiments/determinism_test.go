package experiments

import "testing"

// Every non-timing experiment must render byte-identically across fresh
// suites: the reproduction's numbers are claims, and claims must not
// depend on map iteration order, scheduling, or hidden randomness.
// fig1 and fig2 are excluded — they measure wall-clock optimization time —
// and so is fig10, whose pay-off metric embeds the measured optimization
// time by definition. ext-vectorized's table is deterministic but its
// speedup note is measured wall clock (the golden test masks exactly that
// note), so it sits with the timing experiments here.
func TestExperimentsAreDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("builds two full suites")
	}
	timing := map[string]bool{"fig1": true, "fig2": true, "fig10": true, "ext-vectorized": true}
	fresh := func() *Suite {
		s := NewSuite()
		s.Reps = 1
		return s
	}
	s1, s2 := fresh(), fresh()
	for _, e := range All() {
		if timing[e.ID] {
			continue
		}
		e := e
		t.Run(e.ID, func(t *testing.T) {
			r1, err := e.Run(s1)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := e.Run(s2)
			if err != nil {
				t.Fatal(err)
			}
			if r1.String() != r2.String() {
				t.Errorf("non-deterministic report:\n--- run 1:\n%s\n--- run 2:\n%s", r1, r2)
			}
		})
	}
}
