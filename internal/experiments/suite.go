package experiments

import (
	"fmt"
	"sync"

	"knives/internal/algo"
	"knives/internal/algorithms"
	"knives/internal/attrset"
	"knives/internal/cost"
	"knives/internal/metrics"
	"knives/internal/partition"
	"knives/internal/schema"
)

// Suite holds the shared configuration of an experiment run: the benchmark
// (TPC-H at scale factor 10 unless an experiment says otherwise), the
// default disk, and a cache of the expensive default-setting layouts.
type Suite struct {
	Bench *schema.Benchmark
	Disk  cost.Disk
	// Reps is how many times timing experiments repeat each measurement
	// (the paper averages five runs); the median is reported. Zero means 3.
	Reps int
	// SSB optionally supplies the Star Schema Benchmark for Table 5.
	SSB *schema.Benchmark

	mu     sync.Mutex
	cache  map[string]*cacheEntry  // default-disk layouts by algorithm name
	timing map[string]*timingEntry // isolated optimization timings by algorithm name

	opMu    sync.Mutex
	opCache map[string]*executedEntry // operator replays by layout-family name
}

// cacheEntry computes one algorithm's default-setting layouts at most once.
// The suite mutex only guards the map; the expensive computation runs under
// the entry's once, so different algorithms can warm up concurrently.
type cacheEntry struct {
	once sync.Once
	rs   []algo.Result
	err  error
}

// timingEntry measures one algorithm's optimization time at most once, so
// Fig1 and Fig10 share a single measurement instead of repeating the
// expensive searches.
type timingEntry struct {
	once       sync.Once
	seconds    float64
	candidates int64
	err        error
}

// NewSuite returns a Suite over TPC-H SF 10 with the paper's default disk.
func NewSuite() *Suite {
	return &Suite{
		Bench: schema.TPCH(10),
		Disk:  cost.DefaultDisk(),
		SSB:   schema.SSB(10),
	}
}

// reps returns the repetition count.
func (s *Suite) reps() int {
	if s.Reps <= 0 {
		return 3
	}
	return s.Reps
}

// model returns the default HDD cost model.
func (s *Suite) model() cost.Model { return cost.NewHDD(s.Disk) }

// results runs (or returns cached) default-setting layouts for the named
// algorithm over every table of the benchmark.
func (s *Suite) results(name string) ([]algo.Result, error) {
	s.mu.Lock()
	if s.cache == nil {
		s.cache = make(map[string]*cacheEntry)
	}
	e, ok := s.cache[name]
	if !ok {
		e = &cacheEntry{}
		s.cache[name] = e
	}
	s.mu.Unlock()
	e.once.Do(func() {
		a, err := algorithms.ByName(name)
		if err != nil {
			e.err = err
			return
		}
		e.rs, e.err = runAll(a, s.Bench, s.model())
	})
	return e.rs, e.err
}

// timedSeconds measures (once per suite) the named algorithm's optimization
// time over all tables under the shared repetition policy: s.reps() medians
// for the heuristics, a single run for BruteForce, whose one exhaustive
// enumeration is slow and stable enough. The timing runs in isolation — not
// under Prewarm's fan-out — so contention never inflates it.
func (s *Suite) timedSeconds(name string) (float64, int64, error) {
	s.mu.Lock()
	if s.timing == nil {
		s.timing = make(map[string]*timingEntry)
	}
	e, ok := s.timing[name]
	if !ok {
		e = &timingEntry{}
		s.timing[name] = e
	}
	s.mu.Unlock()
	e.once.Do(func() {
		reps := s.reps()
		if name == "BruteForce" {
			reps = 1
		}
		var rs []algo.Result
		rs, e.seconds, e.candidates, e.err = timeAlgorithm(s, name, reps)
		if e.err == nil {
			// The timed searches are deterministic, so their layouts are
			// exactly what results() would compute — seed the cache instead
			// of letting a later caller search all over again.
			s.seedResults(name, rs)
		}
	})
	return e.seconds, e.candidates, e.err
}

// seedResults stores already-computed layouts for an algorithm unless the
// cache already resolved them.
func (s *Suite) seedResults(name string, rs []algo.Result) {
	s.mu.Lock()
	if s.cache == nil {
		s.cache = make(map[string]*cacheEntry)
	}
	e, ok := s.cache[name]
	if !ok {
		e = &cacheEntry{}
		s.cache[name] = e
	}
	s.mu.Unlock()
	e.once.Do(func() { e.rs = rs })
}

// Results returns the cached (or computes the) default-setting layouts of
// the named algorithm over every table of the benchmark, in benchmark table
// order. The advisor service uses this after Prewarm to assemble per-table
// advice without repeating any search.
func (s *Suite) Results(name string) ([]algo.Result, error) { return s.results(name) }

// Prewarm computes the default-setting layouts of the named algorithms
// concurrently. Experiments that report on several algorithms call it first
// so the independent (table x algorithm) partitioning jobs use every core;
// each result lands in the cache exactly once.
func (s *Suite) Prewarm(names ...string) error {
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			_, errs[i] = s.results(name)
		}(i, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runAll partitions every table of a benchmark, tables in parallel (bounded
// by the process-wide algo search gate, which the advisor service draws from
// too). Results keep the benchmark's table order, and the lowest-index error
// wins, so the output is indistinguishable from a serial run (algorithms are
// required to be deterministic and concurrency-safe).
func runAll(a algo.Algorithm, b *schema.Benchmark, m cost.Model) ([]algo.Result, error) {
	tws := b.TableWorkloads()
	rs := make([]algo.Result, len(tws))
	errs := make([]error, len(tws))
	var wg sync.WaitGroup
	for i, tw := range tws {
		wg.Add(1)
		go func(i int, tw schema.TableWorkload) {
			defer wg.Done()
			algo.AcquireSearchSlot()
			r, err := a.Partition(tw, m)
			algo.ReleaseSearchSlot()
			if err != nil {
				errs[i] = fmt.Errorf("experiments: %s on %s: %w", a.Name(), tw.Table.Name, err)
				return
			}
			rs[i] = r
		}(i, tw)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rs, nil
}

// totalCost sums the per-table costs of a result set.
func totalCost(rs []algo.Result) float64 {
	var sum float64
	for _, r := range rs {
		sum += r.Cost
	}
	return sum
}

// totalStats sums candidates and optimization time across tables.
func totalStats(rs []algo.Result) (candidates int64, seconds float64) {
	for _, r := range rs {
		candidates += r.Stats.Candidates
		seconds += r.Stats.Duration.Seconds()
	}
	return
}

// layoutCost prices a fixed layout family (Row or Column) over a benchmark.
func layoutCost(b *schema.Benchmark, m cost.Model, family func(*schema.Table) partition.Partitioning) float64 {
	var sum float64
	for _, tw := range b.TableWorkloads() {
		sum += cost.WorkloadCost(m, tw, family(tw.Table).Parts)
	}
	return sum
}

// pmvCost prices perfect materialized views over a benchmark.
func pmvCost(b *schema.Benchmark, m cost.Model) float64 {
	var sum float64
	for _, tw := range b.TableWorkloads() {
		sum += metrics.PMVCost(tw, m)
	}
	return sum
}

// partsOf extracts the raw attribute-set layouts of a result set.
func partsOf(rs []algo.Result) [][]attrset.Set {
	out := make([][]attrset.Set, len(rs))
	for i, r := range rs {
		out[i] = r.Partitioning.Parts
	}
	return out
}

// evaluatedAlgorithms is the paper's presentation order for per-algorithm
// figures (BruteForce last, then the Row/Column baselines where shown).
var evaluatedAlgorithms = []string{
	"AutoPart", "HillClimb", "HYRISE", "Navathe", "O2P", "Trojan", "BruteForce",
}

// fastAlgorithms excludes Trojan and BruteForce, as the paper's Figure 2
// does ("at least 2 orders of magnitude higher ... distorts the graph").
var fastAlgorithms = []string{"AutoPart", "HillClimb", "HYRISE", "Navathe", "O2P"}
