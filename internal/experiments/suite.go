package experiments

import (
	"fmt"
	"sync"

	"knives/internal/algo"
	"knives/internal/algorithms"
	"knives/internal/attrset"
	"knives/internal/cost"
	"knives/internal/metrics"
	"knives/internal/partition"
	"knives/internal/schema"
)

// Suite holds the shared configuration of an experiment run: the benchmark
// (TPC-H at scale factor 10 unless an experiment says otherwise), the
// default disk, and a cache of the expensive default-setting layouts.
type Suite struct {
	Bench *schema.Benchmark
	Disk  cost.Disk
	// Reps is how many times timing experiments repeat each measurement
	// (the paper averages five runs); the median is reported. Zero means 3.
	Reps int
	// SSB optionally supplies the Star Schema Benchmark for Table 5.
	SSB *schema.Benchmark

	mu    sync.Mutex
	cache map[string][]algo.Result // default-disk layouts by algorithm name
}

// NewSuite returns a Suite over TPC-H SF 10 with the paper's default disk.
func NewSuite() *Suite {
	return &Suite{
		Bench: schema.TPCH(10),
		Disk:  cost.DefaultDisk(),
		SSB:   schema.SSB(10),
	}
}

// reps returns the repetition count.
func (s *Suite) reps() int {
	if s.Reps <= 0 {
		return 3
	}
	return s.Reps
}

// model returns the default HDD cost model.
func (s *Suite) model() cost.Model { return cost.NewHDD(s.Disk) }

// results runs (or returns cached) default-setting layouts for the named
// algorithm over every table of the benchmark.
func (s *Suite) results(name string) ([]algo.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cache == nil {
		s.cache = make(map[string][]algo.Result)
	}
	if rs, ok := s.cache[name]; ok {
		return rs, nil
	}
	a, err := algorithms.ByName(name)
	if err != nil {
		return nil, err
	}
	rs, err := runAll(a, s.Bench, s.model())
	if err != nil {
		return nil, err
	}
	s.cache[name] = rs
	return rs, nil
}

// runAll partitions every table of a benchmark.
func runAll(a algo.Algorithm, b *schema.Benchmark, m cost.Model) ([]algo.Result, error) {
	var rs []algo.Result
	for _, tw := range b.TableWorkloads() {
		r, err := a.Partition(tw, m)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s on %s: %w", a.Name(), tw.Table.Name, err)
		}
		rs = append(rs, r)
	}
	return rs, nil
}

// totalCost sums the per-table costs of a result set.
func totalCost(rs []algo.Result) float64 {
	var sum float64
	for _, r := range rs {
		sum += r.Cost
	}
	return sum
}

// totalStats sums candidates and optimization time across tables.
func totalStats(rs []algo.Result) (candidates int64, seconds float64) {
	for _, r := range rs {
		candidates += r.Stats.Candidates
		seconds += r.Stats.Duration.Seconds()
	}
	return
}

// layoutCost prices a fixed layout family (Row or Column) over a benchmark.
func layoutCost(b *schema.Benchmark, m cost.Model, family func(*schema.Table) partition.Partitioning) float64 {
	var sum float64
	for _, tw := range b.TableWorkloads() {
		sum += cost.WorkloadCost(m, tw, family(tw.Table).Parts)
	}
	return sum
}

// pmvCost prices perfect materialized views over a benchmark.
func pmvCost(b *schema.Benchmark, m cost.Model) float64 {
	var sum float64
	for _, tw := range b.TableWorkloads() {
		sum += metrics.PMVCost(tw, m)
	}
	return sum
}

// partsOf extracts the raw attribute-set layouts of a result set.
func partsOf(rs []algo.Result) [][]attrset.Set {
	out := make([][]attrset.Set, len(rs))
	for i, r := range rs {
		out[i] = r.Partitioning.Parts
	}
	return out
}

// evaluatedAlgorithms is the paper's presentation order for per-algorithm
// figures (BruteForce last, then the Row/Column baselines where shown).
var evaluatedAlgorithms = []string{
	"AutoPart", "HillClimb", "HYRISE", "Navathe", "O2P", "Trojan", "BruteForce",
}

// fastAlgorithms excludes Trojan and BruteForce, as the paper's Figure 2
// does ("at least 2 orders of magnitude higher ... distorts the graph").
var fastAlgorithms = []string{"AutoPart", "HillClimb", "HYRISE", "Navathe", "O2P"}
