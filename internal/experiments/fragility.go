package experiments

import (
	"fmt"

	"knives/internal/attrset"
	"knives/internal/cost"
	"knives/internal/partition"
	"knives/internal/schema"
)

// fragilitySubjects are the layouts the paper's fragility figures track:
// the two representative algorithms plus the baselines.
var fragilitySubjects = []string{"HillClimb", "Navathe", "Column", "Row"}

// subjectLayouts returns the per-table layouts of a fragility subject
// computed under the suite's default disk.
func (s *Suite) subjectLayouts(name string) ([][]attrset.Set, error) {
	switch name {
	case "Column", "Row":
		tws := s.Bench.TableWorkloads()
		out := make([][]attrset.Set, len(tws))
		for i, tw := range tws {
			if name == "Column" {
				out[i] = partition.Column(tw.Table).Parts
			} else {
				out[i] = partition.Row(tw.Table).Parts
			}
		}
		return out, nil
	default:
		rs, err := s.results(name)
		if err != nil {
			return nil, err
		}
		return partsOf(rs), nil
	}
}

// benchCost prices fixed per-table layouts under a model.
func benchCost(b *schema.Benchmark, m cost.Model, layouts [][]attrset.Set) float64 {
	var sum float64
	for i, tw := range b.TableWorkloads() {
		sum += cost.WorkloadCost(m, tw, layouts[i])
	}
	return sum
}

// fragilityReport renders fragility rows for a sequence of modified disks.
func (s *Suite) fragilityReport(id, title, paramHeader string, variants []struct {
	label string
	disk  cost.Disk
}) (*Report, error) {
	r := &Report{
		ID:     id,
		Title:  title,
		Header: append([]string{paramHeader}, fragilitySubjects...),
	}
	base := s.model()
	baseCosts := map[string]float64{}
	layouts := map[string][][]attrset.Set{}
	for _, name := range fragilitySubjects {
		ls, err := s.subjectLayouts(name)
		if err != nil {
			return nil, err
		}
		layouts[name] = ls
		baseCosts[name] = benchCost(s.Bench, base, ls)
	}
	for _, v := range variants {
		m := cost.NewHDD(v.disk)
		row := []string{v.label}
		for _, name := range fragilitySubjects {
			after := benchCost(s.Bench, m, layouts[name])
			frag := 0.0
			if baseCosts[name] > 0 {
				frag = (after - baseCosts[name]) / baseCosts[name]
			}
			row = append(row, fmtFactor(frag))
		}
		r.AddRow(row...)
	}
	return r, nil
}

// Fig8 reproduces Figure 8: fragility (relative cost change) when the
// buffer size changes at query time while layouts stay fixed at the 8 MB
// optimum.
func Fig8(s *Suite) (*Report, error) {
	mb := int64(1 << 20)
	variants := []struct {
		label string
		disk  cost.Disk
	}{
		{"0.08 MB", s.Disk.WithBuffer(mb * 8 / 100)},
		{"0.8 MB", s.Disk.WithBuffer(mb * 8 / 10)},
		{"8 MB", s.Disk.WithBuffer(8 * mb)},
		{"80 MB", s.Disk.WithBuffer(80 * mb)},
		{"800 MB", s.Disk.WithBuffer(800 * mb)},
		{"8000 MB", s.Disk.WithBuffer(8000 * mb)},
	}
	r, err := s.fragilityReport("fig8",
		"Fragility (factor) — changing the buffer size at query time", "buffer", variants)
	if err != nil {
		return nil, err
	}
	r.AddNote("paper: shrinking the buffer to 0.08 MB degrades runtimes by factors of 5-24; growing it helps slightly")
	r.AddNote("buffer size is the dominant fragility parameter (compare fig11)")
	return r, nil
}

// Fig11 reproduces Figure 11 (Appendix A.2): fragility when block size,
// disk bandwidth, or seek time change at query time. It emits the three
// sub-figures as consecutive row groups.
func Fig11(s *Suite) (*Report, error) {
	kb := int64(1 << 10)
	type variant = struct {
		label string
		disk  cost.Disk
	}
	blocks := []variant{
		{"block 0.5 KB", s.Disk.WithBlockSize(kb / 2)},
		{"block 1 KB", s.Disk.WithBlockSize(kb)},
		{"block 2 KB", s.Disk.WithBlockSize(2 * kb)},
		{"block 4 KB", s.Disk.WithBlockSize(4 * kb)},
		{"block 8 KB", s.Disk.WithBlockSize(8 * kb)},
		{"block 16 KB", s.Disk.WithBlockSize(16 * kb)},
		{"block 32 KB", s.Disk.WithBlockSize(32 * kb)},
		{"block 64 KB", s.Disk.WithBlockSize(64 * kb)},
		{"block 128 KB", s.Disk.WithBlockSize(128 * kb)},
	}
	bws := []variant{}
	for _, mbps := range []float64{60, 70, 80, 90, 100, 110, 120} {
		bws = append(bws, variant{fmt.Sprintf("bw %.0f MB/s", mbps), s.Disk.WithReadBandwidth(mbps * 1e6)})
	}
	seeks := []variant{}
	for _, ms := range []float64{3.5, 4, 4.5, 4.84, 5, 5.5, 6} {
		seeks = append(seeks, variant{fmt.Sprintf("seek %.2f ms", ms), s.Disk.WithSeekTime(ms / 1000)})
	}

	r, err := s.fragilityReport("fig11",
		"Fragility (factor) — changing block size / bandwidth / seek time at query time",
		"parameter", append(append(blocks, bws...), seeks...))
	if err != nil {
		return nil, err
	}
	r.AddNote("paper: block size changes matter <1%%; bandwidth up to ~42%%; seek time <5%%")
	return r, nil
}
