// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 6 and Appendices A/B): one runner per artifact, all
// operating on the unified setting of Section 4. Runners return textual
// Reports whose rows correspond to the series the paper plots.
package experiments

import (
	"fmt"
	"strings"
)

// Report is a rendered experiment result: a titled table plus free-form
// notes (the "key message" sentences the paper attaches to each figure).
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of cells.
func (r *Report) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// AddNote appends a note line.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// fmtSeconds renders a duration in seconds with sensible precision.
func fmtSeconds(s float64) string {
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0f", s)
	case s >= 1:
		return fmt.Sprintf("%.1f", s)
	case s >= 0.001:
		return fmt.Sprintf("%.4f", s)
	default:
		return fmt.Sprintf("%.2e", s)
	}
}

// fmtPercent renders a fraction as a percentage.
func fmtPercent(f float64) string { return fmt.Sprintf("%.2f%%", f*100) }

// fmtFactor renders a ratio as a plain factor.
func fmtFactor(f float64) string { return fmt.Sprintf("%.2f", f) }
