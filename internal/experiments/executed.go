package experiments

import (
	"fmt"
	"sync"

	"knives/internal/attrset"
	"knives/internal/partition"
	"knives/internal/replay"
	"knives/internal/schema"
	"knives/internal/storage"
)

// executedSampleRows caps the materialized rows per table for the executed
// columns of fig4/fig5/tab3. The metrics behind those figures are either
// scale-invariant (reconstruction joins) or fractions of like-scaled sums
// (unnecessary read), and executed == predicted holds at any row count, so
// a small sample keeps the quality figures fast.
const executedSampleRows = 5_000

// extOperatorsSampleRows is ext-operators' larger per-table sample; the
// experiment replays only Lineitem, so it can afford more rows.
const extOperatorsSampleRows = 20_000

// executedEntry caches one layout family's operator replays per suite, so
// fig4 and fig5 share a single set of pipeline executions.
type executedEntry struct {
	once    sync.Once
	reps    []*replay.OperatorReplay
	layouts []partition.Partitioning
	err     error
}

// executedReplays materializes the named layout family's advised layouts
// (algorithm names search at full scale through the suite's layout cache;
// "Row"/"Column" are the fixed families) and replays every table's workload
// through σ/π/⋈ operator pipelines at a sampled row count. Replays are
// returned in benchmark table order, next to the layouts they executed.
func (s *Suite) executedReplays(name string) ([]*replay.OperatorReplay, []partition.Partitioning, error) {
	s.opMu.Lock()
	if s.opCache == nil {
		s.opCache = make(map[string]*executedEntry)
	}
	e, ok := s.opCache[name]
	if !ok {
		e = &executedEntry{}
		s.opCache[name] = e
	}
	s.opMu.Unlock()
	e.once.Do(func() {
		tws := s.Bench.TableWorkloads()
		layouts := make([]partition.Partitioning, len(tws))
		switch name {
		case "Row", "Column":
			family := partition.Row
			if name == "Column" {
				family = partition.Column
			}
			for i, tw := range tws {
				layouts[i] = family(tw.Table)
			}
		default:
			rs, err := s.results(name)
			if err != nil {
				e.err = err
				return
			}
			for i, res := range rs {
				layouts[i] = res.Partitioning
			}
		}
		reps := make([]*replay.OperatorReplay, len(tws))
		errs := make([]error, len(tws))
		var wg sync.WaitGroup
		for i := range tws {
			wg.Add(1)
			go func(i int, tw schema.TableWorkload) {
				defer wg.Done()
				reps[i], errs[i] = replay.Operators(tw, layouts[i], name, replay.Config{
					Disk:    s.Disk,
					MaxRows: executedSampleRows,
					Seed:    1,
				}, nil)
			}(i, tws[i])
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				e.err = err
				return
			}
		}
		e.reps, e.layouts = reps, layouts
	})
	return e.reps, e.layouts, e.err
}

// repsExact reports whether every replay measured exactly what the cost
// model predicted.
func repsExact(reps []*replay.OperatorReplay) bool {
	for _, rep := range reps {
		if !rep.Exact() {
			return false
		}
	}
	return true
}

// measuredWidths indexes a query's measured per-leaf row sizes by the
// partition attribute set (partitions are disjoint, so the set is a key).
func measuredWidths(stats []storage.PartScanStats) map[attrset.Set]int {
	w := make(map[attrset.Set]int, len(stats))
	for _, p := range stats {
		w[p.Attrs] = p.RowSize
	}
	return w
}

// executedUnnecessaryRead recomputes metrics.BenchmarkUnnecessaryRead from
// MEASURED quantities: every read partition's row size comes from the
// pipelines' per-leaf scan stats and every row count from what the store
// materialized and the root emitted, not from the schema. The accumulation
// replicates the metric's expressions and iteration order (the raw layout
// part order), so when execution reads exactly what the metric assumes, the
// two values agree bit for bit.
func executedUnnecessaryRead(tws []schema.TableWorkload, layouts []partition.Partitioning, reps []*replay.OperatorReplay) float64 {
	var read, needed float64
	for i, tw := range tws {
		rep := reps[i]
		for qi, q := range tw.Queries {
			measured := rep.Queries[qi].Stats
			width := measuredWidths(measured.Parts)
			for _, p := range layouts[i].Parts {
				if w, ok := width[p]; ok {
					read += q.Weight * float64(w) * float64(rep.RowsReplayed)
				}
			}
			needed += q.Weight * float64(tw.Table.SetSize(q.Attrs)) * float64(measured.Tuples)
		}
	}
	if read == 0 {
		return 0
	}
	return (read - needed) / read
}

// executedUnnecessaryReadTable is the single-table variant, replicating
// metrics.UnnecessaryRead (which scales by the row count once, at the end).
func executedUnnecessaryReadTable(tw schema.TableWorkload, layout partition.Partitioning, rep *replay.OperatorReplay) float64 {
	var read, needed float64
	for qi, q := range tw.Queries {
		measured := rep.Queries[qi].Stats
		width := measuredWidths(measured.Parts)
		for _, p := range layout.Parts {
			if w, ok := width[p]; ok {
				read += q.Weight * float64(w)
			}
		}
		needed += q.Weight * float64(tw.Table.SetSize(q.Attrs))
	}
	read *= float64(rep.RowsReplayed)
	needed *= float64(rep.RowsReplayed)
	if read == 0 {
		return 0
	}
	return (read - needed) / read
}

// executedReconJoins recomputes metrics.BenchmarkReconstructionJoins from
// the replays: the partitions a query touched are the leaves its pipeline
// actually scanned. The metric carries no row-count term, so the executed
// value must equal the full-scale estimate exactly, at any sample size.
func executedReconJoins(tws []schema.TableWorkload, reps []*replay.OperatorReplay) float64 {
	var joins, weight float64
	for i, tw := range tws {
		for qi, q := range tw.Queries {
			touched := len(reps[i].Queries[qi].Stats.Parts)
			if touched > 0 {
				joins += q.Weight * float64(touched-1)
			}
			weight += q.Weight
		}
	}
	if weight == 0 {
		return 0
	}
	return joins / weight
}

// sampledTwins builds same-columns, capped-rows twins of the benchmark
// tables, the tables the replayed metrics and costs are verified against.
func sampledTwins(tws []schema.TableWorkload, rows int64) ([]schema.TableWorkload, error) {
	out := make([]schema.TableWorkload, len(tws))
	for i, tw := range tws {
		st := tw.Table
		if st.Rows > rows {
			var err error
			st, err = schema.NewTable(tw.Table.Name, rows, tw.Table.Columns)
			if err != nil {
				return nil, err
			}
		}
		out[i] = schema.TableWorkload{Table: st, Queries: tw.Queries}
	}
	return out, nil
}

// leafTermsDecompose checks the operator layer's accounting claim on real
// plans: the per-leaf SimTime terms of every pipeline sum EXACTLY to the
// query's measured seconds — the engine's monolithic pricing, decomposed
// per operator with no residue.
func leafTermsDecompose(rep *replay.OperatorReplay) bool {
	for qi := range rep.Queries {
		var sum float64
		for _, op := range rep.Ops[qi] {
			if op.Op == "scan" {
				sum += op.SimTime
			}
		}
		if sum != rep.Queries[qi].MeasuredSeconds {
			return false
		}
	}
	return true
}

// ExtOperators pins the operator pipeline against the cost model across the
// device spectrum: Lineitem's workload is executed as σ/π/⋈ plans over
// layouts advised per device, and every measured total must equal the
// prediction at zero tolerance — on HDD, SSD, and main memory. A σ sweep on
// l_shipdate shows the common-granularity contract from the execution side:
// selectivity changes the rows the root emits, never the physical I/O, so
// selective plans stay exactly predictable too.
func ExtOperators(s *Suite) (*Report, error) {
	r := &Report{
		ID:     "ext-operators",
		Title:  "Operator pipelines: executed σ/π/⋈ I/O vs cost-model predictions across devices (Lineitem)",
		Header: []string{"device", "layout", "σ", "measured (s)", "predicted (s)", "max |delta|", "exact", "seeks", "bytes", "recon joins", "rows out"},
	}
	li := s.Bench.Table("lineitem")
	tw := s.Bench.Workload.ForTable(li)
	cfg := func(model string) replay.Config {
		return replay.Config{Model: model, MaxRows: extOperatorsSampleRows, Seed: 1}
	}
	allExact, decomposed := true, true
	var planNote string
	addRep := func(device string, rep *replay.OperatorReplay) {
		sigma := rep.Selection
		if sigma == "" {
			sigma = "-"
		}
		var rows int64
		if len(rep.ResultRows) > 0 {
			rows = rep.ResultRows[0]
		}
		r.AddRow(device, rep.Algorithm, sigma,
			fmtSeconds(rep.MeasuredTotal), fmtSeconds(rep.PredictedTotal),
			fmt.Sprintf("%g", rep.MaxAbsDelta()), fmt.Sprintf("%v", rep.Exact()),
			fmt.Sprintf("%d", rep.Seeks), fmt.Sprintf("%d", rep.BytesRead),
			fmt.Sprintf("%d", rep.ReconJoins), fmt.Sprintf("%d", rows))
		allExact = allExact && rep.Exact()
		decomposed = decomposed && leafTermsDecompose(rep)
	}
	for _, device := range []string{"hdd", "ssd", "mm"} {
		for _, layout := range []string{"HillClimb", "Column", "Row"} {
			rep, err := replay.OperatorsAlgorithm(tw, layout, cfg(device), nil)
			if err != nil {
				return nil, err
			}
			addRep(device, rep)
			if device == "hdd" && layout == "HillClimb" && len(rep.Plans) > 0 {
				planNote = fmt.Sprintf("plan %s (hdd/HillClimb): %s", tw.Queries[0].ID, rep.Plans[0])
			}
		}
	}
	// The σ sweep: same device, same layout family, two date bounds.
	selAttr := li.AttrIndex("l_shipdate")
	var selReps []*replay.OperatorReplay
	for _, frac := range []float64{0.25, 0.75} {
		sel := &replay.Selection{Attr: selAttr, Bound: uint32(frac * storage.DateDomain)}
		rep, err := replay.OperatorsAlgorithm(tw, "HillClimb", cfg("hdd"), sel)
		if err != nil {
			return nil, err
		}
		addRep("hdd", rep)
		selReps = append(selReps, rep)
	}
	ioInvariant := selReps[0].BytesRead == selReps[1].BytesRead &&
		selReps[0].Seeks == selReps[1].Seeks
	r.AddNote("measured == predicted at zero tolerance for every device, layout, and selectivity: %v", allExact)
	r.AddNote("per-leaf SimTime terms sum to each query's measured seconds bit for bit: %v", decomposed)
	r.AddNote("σ changes rows out, never I/O (common granularity): bytes and seeks identical across bounds: %v", ioInvariant)
	if planNote != "" {
		r.AddNote("%s", planNote)
	}
	r.AddNote("times are simulated (virtual-device) seconds over %d-row samples; deterministic, no wall clock", int64(extOperatorsSampleRows))
	return r, nil
}
