package experiments

import (
	"strings"
	"testing"
)

// The Section 7 claim: the selection predicate changes the layout only for
// selectivities below ~1e-4.
func TestExtSelectivityThreshold(t *testing.T) {
	rep, err := ExtSelectivity(sharedSuite)
	if err != nil {
		t.Fatal(err)
	}
	differs := map[string]string{}
	for _, row := range rep.Rows {
		differs[row[0]] = row[1]
	}
	for _, sel := range []string{"1e+00", "1e-01", "1e-02", "1e-03", "1e-04"} {
		if differs[sel] != "no" {
			t.Errorf("layout differs at selectivity %s; paper says only beyond 1e-4", sel)
		}
	}
	changed := differs["1e-05"] == "yes" || differs["1e-06"] == "yes"
	if !changed {
		t.Error("layout never changed even at 1e-6 selectivity")
	}
}

// The Section 6.3 aside: up to 50% workload change moves costs by roughly
// 14%; re-optimizing buys almost nothing (low regret).
func TestExtWorkloadDriftShape(t *testing.T) {
	rep, err := ExtWorkloadDrift(sharedSuite)
	if err != nil {
		t.Fatal(err)
	}
	last := rep.Rows[len(rep.Rows)-1] // 50% drift
	change := parsePercent(t, last[1])
	if change < 0.02 || change > 0.4 {
		t.Errorf("cost change at 50%% drift = %v, paper ~0.14", change)
	}
	regret := parsePercent(t, last[2])
	if regret < 0 || regret > 0.15 {
		t.Errorf("regret at 50%% drift = %v, expected small", regret)
	}
	// Drift fragility grows with the drift fraction.
	first := parsePercent(t, rep.Rows[0][1])
	if first > change {
		t.Errorf("10%% drift change (%v) exceeds 50%% drift change (%v)", first, change)
	}
}

// The Section 2 claim, bottom-up half: HillClimb needs fewer candidates on
// fragmented workloads than on regular ones ("after a few merge steps the
// costs will not improve any more").
func TestExtConvergenceShape(t *testing.T) {
	rep, err := ExtConvergence(sharedSuite)
	if err != nil {
		t.Fatal(err)
	}
	regular := parseFloat(t, rep.Rows[0][1])
	fragmented := parseFloat(t, rep.Rows[len(rep.Rows)-1][1])
	if fragmented >= regular {
		t.Errorf("HillClimb candidates: fragmented %v >= regular %v", fragmented, regular)
	}
	// Costs stay valid and positive everywhere.
	for _, row := range rep.Rows {
		if parseFloat(t, row[3]) <= 0 || parseFloat(t, row[4]) <= 0 {
			t.Errorf("non-positive cost in row %v", row)
		}
	}
}

// Trojan query grouping: more replicas monotonically approach the PMV
// bound, and the group sizes partition the 17 Lineitem queries.
func TestExtGroupingShape(t *testing.T) {
	rep, err := ExtGrouping(sharedSuite)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, row := range rep.Rows {
		costVal := parseFloat(t, row[1])
		if prev >= 0 && costVal > prev*1.02 {
			t.Errorf("replicas=%s: cost %v worse than fewer replicas (%v)", row[0], costVal, prev)
		}
		prev = costVal
		// Group sizes sum to the Lineitem query count (17).
		sum := 0
		for _, part := range strings.Split(row[3], "+") {
			sum += int(parseFloat(t, part))
		}
		if sum != 17 {
			t.Errorf("replicas=%s: group sizes %s sum to %d, want 17", row[0], row[3], sum)
		}
	}
	// Distance from PMV shrinks from 1 replica to 4.
	first := parsePercent(t, rep.Rows[0][2])
	last := parsePercent(t, rep.Rows[len(rep.Rows)-1][2])
	if last >= first {
		t.Errorf("PMV distance did not shrink with replicas: %v -> %v", first, last)
	}
}

// Replication never hurts, respects the budget, and closes part of the PMV
// gap once any budget is granted.
func TestExtReplicationShape(t *testing.T) {
	rep, err := ExtReplication(sharedSuite)
	if err != nil {
		t.Fatal(err)
	}
	base := parseFloat(t, rep.Rows[0][1]) // zero budget
	for _, row := range rep.Rows {
		budget := parsePercent(t, row[0])
		costVal := parseFloat(t, row[1])
		overhead := parsePercent(t, row[2])
		if costVal > base+1e-6 {
			t.Errorf("budget %v made cost worse: %v > %v", budget, costVal, base)
		}
		if overhead > budget+1e-9 {
			t.Errorf("budget %v exceeded: overhead %v", budget, overhead)
		}
	}
	best := parseFloat(t, rep.Rows[len(rep.Rows)-1][1])
	if best >= base {
		t.Error("full budget bought no improvement on Lineitem")
	}
}
