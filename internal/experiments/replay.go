package experiments

import (
	"fmt"
	"sort"
	"sync"

	"knives/internal/cost"
	"knives/internal/partition"
	"knives/internal/replay"
	"knives/internal/schema"
)

// replaySampleRows caps the materialized rows per table for ext-replay. The
// measured-equals-predicted guarantee holds at any row count; the sample
// only has to be large enough that the measured ranking across layouts is
// not an artifact of tiny tables.
const replaySampleRows = 50_000

// ExtReplay re-derives Figure 3's verdict from EXECUTED I/O instead of
// estimates: every algorithm's full-scale advised layouts (the exact
// layouts fig3 prices) are materialized through the storage engine at a
// sampled row count, the whole TPC-H workload is replayed against the
// pages, and the measured simulated time is reported next to the cost
// model's prediction for the same sampled tables — which it must equal
// bit for bit.
//
// Two rankings frame the result. "rank measured" orders the layouts by
// executed time; it must reproduce the estimated-cost ranking computed
// INDEPENDENTLY (cost.WorkloadCost over the sampled tables — fig3's exact
// methodology at the replayed configuration), which is the claim fig3
// rests on: estimates order layouts the way execution does. "rank @SF10"
// is fig3's full-scale ordering, shown for reference: the leaders and Row
// agree across scales, while midfield positions shift, because at a
// sampled row count the per-partition seek floor weighs more than at SF 10
// — the same configuration sensitivity Figures 8-13 sweep.
//
// All times in this report are simulated (virtual-disk) seconds, a pure
// function of the deterministic data and layouts — no wall clock enters,
// so the report is byte-stable and golden-diffed without masking.
func ExtReplay(s *Suite) (*Report, error) {
	if err := s.Prewarm(evaluatedAlgorithms...); err != nil {
		return nil, err
	}
	r := &Report{
		ID:     "ext-replay",
		Title:  "Measured replay of advised layouts vs cost-model predictions (TPC-H, sampled rows)",
		Header: []string{"layout", "measured (s)", "estimated (s)", "max |delta|", "exact", "rank measured", "rank estimated", "rank @SF10"},
	}
	m := s.model()
	tws := s.Bench.TableWorkloads()

	type line struct {
		name      string
		measured  float64
		estimated float64 // cost.WorkloadCost over the sampled tables (fig3 at this scale)
		maxDelta  float64
		exact     bool
		fullCost  float64 // full-scale estimated cost (fig3's SF10 quantity)
	}

	// The sampled twins of the benchmark tables: same columns, capped rows.
	// Attribute sets are positional, so full-scale layouts transfer.
	sampled := make([]schema.TableWorkload, len(tws))
	for i, tw := range tws {
		st := tw.Table
		if st.Rows > replaySampleRows {
			var err error
			st, err = schema.NewTable(tw.Table.Name, replaySampleRows, tw.Table.Columns)
			if err != nil {
				return nil, err
			}
		}
		sampled[i] = schema.TableWorkload{Table: st, Queries: tw.Queries}
	}
	layoutsFor := func(name string) ([]partition.Partitioning, float64, error) {
		switch name {
		case "Row", "Column":
			family := partition.Row
			if name == "Column" {
				family = partition.Column
			}
			out := make([]partition.Partitioning, len(tws))
			for i, tw := range tws {
				out[i] = family(tw.Table)
			}
			return out, layoutCost(s.Bench, m, family), nil
		}
		rs, err := s.results(name)
		if err != nil {
			return nil, 0, err
		}
		out := make([]partition.Partitioning, len(rs))
		for i, res := range rs {
			out[i] = res.Partitioning
		}
		return out, totalCost(rs), nil
	}

	names := append(append([]string{}, evaluatedAlgorithms...), "Column", "Row")
	lines := make([]line, len(names))
	for li, name := range names {
		layouts, fullCost, err := layoutsFor(name)
		if err != nil {
			return nil, err
		}
		// Fan the per-table replays out; aggregation below runs in table
		// order, so the report is identical at any parallelism.
		reps := make([]*replay.TableReplay, len(tws))
		errs := make([]error, len(tws))
		var wg sync.WaitGroup
		for i := range tws {
			wg.Add(1)
			go func(i int, tw schema.TableWorkload) {
				defer wg.Done()
				reps[i], errs[i] = replay.Layout(tw, layouts[i], name, replay.Config{
					Disk:    s.Disk,
					MaxRows: replaySampleRows,
					Seed:    1,
				})
			}(i, tws[i])
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		l := line{name: name, exact: true, fullCost: fullCost}
		for i, rep := range reps {
			l.measured += rep.MeasuredTotal
			if d := rep.MaxAbsDelta(); d > l.maxDelta {
				l.maxDelta = d
			}
			l.exact = l.exact && rep.Exact()
			// The independent estimate: fig3's pricing (cost.WorkloadCost)
			// over the sampled table and the same layout. Exactness demands
			// this equal the replay's own prediction AND measurement.
			sl, err := partition.New(sampled[i].Table, layouts[i].Parts)
			if err != nil {
				return nil, err
			}
			est := cost.WorkloadCost(m, sampled[i], sl.Canonical().Parts)
			l.estimated += est
			if est != rep.MeasuredTotal {
				l.exact = false
				if d := est - rep.MeasuredTotal; d > l.maxDelta {
					l.maxDelta = d
				} else if -d > l.maxDelta {
					l.maxDelta = -d
				}
			}
		}
		lines[li] = l
	}

	rankBy := func(key func(line) float64) map[string]int {
		order := make([]int, len(lines))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return key(lines[order[a]]) < key(lines[order[b]]) })
		ranks := make(map[string]int, len(lines))
		for pos, idx := range order {
			ranks[lines[idx].name] = pos + 1
		}
		return ranks
	}
	measuredRank := rankBy(func(l line) float64 { return l.measured })
	estimatedRank := rankBy(func(l line) float64 { return l.estimated })
	fig3Rank := rankBy(func(l line) float64 { return l.fullCost })

	agree, exact := true, true
	for _, l := range lines {
		r.AddRow(l.name, fmtSeconds(l.measured), fmtSeconds(l.estimated),
			fmt.Sprintf("%g", l.maxDelta), fmt.Sprintf("%v", l.exact),
			fmt.Sprintf("%d", measuredRank[l.name]), fmt.Sprintf("%d", estimatedRank[l.name]),
			fmt.Sprintf("%d", fig3Rank[l.name]))
		agree = agree && measuredRank[l.name] == estimatedRank[l.name]
		exact = exact && l.exact
	}
	r.AddNote("measured == estimated bit for bit for every layout: %v", exact)
	r.AddNote("measured ranking reproduces the estimated-cost (fig3) ranking at the replayed scale: %v", agree)
	r.AddNote("rank @SF10 is fig3's full-scale ordering; leaders and Row agree, midfield shifts with scale (seek floors, cf. figs 8-13)")
	r.AddNote("times are simulated (virtual-disk) seconds over %d-row samples; deterministic, no wall clock", replaySampleRows)
	return r, nil
}
