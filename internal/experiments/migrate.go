package experiments

import (
	"fmt"

	"knives/internal/algo"
	"knives/internal/algorithms"
	"knives/internal/cost"
	"knives/internal/migrate"
	"knives/internal/partition"
	"knives/internal/schema"
	"knives/internal/workgen"
)

// Drift/migration scenario parameters: the Lineitem workload drifts by
// half (the paper's Section 6.3 "up to 50% change"), modeling a TPC-H
// stream shifting toward an SSB-style mix, and each algorithm's layout for
// the original mix is migrated to its layout for the drifted one.
const (
	migrateDriftFraction = 0.5
	migrateDriftSeed     = 2013
	migrateWindow        = 10_000_000
	migrateSampleRows    = 20_000
)

// ExtMigrate opens the scenario class the static comparison cannot
// express: the workload SHIFTS, and the question is no longer "which
// layout" but "is re-laying-out a loaded store worth its I/O". For every
// algorithm, the layout it advises for the original Lineitem mix is
// migrated to the layout it advises after the drift; the migration engine
// prices the transition (read every moved partition, write every created
// one), computes the break-even horizon over the drifted mix, executes the
// repartition on a sampled store, and verifies — so the table pins, per
// algorithm, both the ECONOMICS (break-even points differ wildly: a knife
// whose layout barely moves amortizes in a handful of queries, one that
// reshuffles everything may never pay off) and the MECHANICS
// (measured == predicted migration cost, migrated == fresh store, both at
// zero tolerance).
//
// All numbers are simulated (virtual-disk) seconds over deterministic
// data, so the report is byte-stable and golden-diffed without masking.
func ExtMigrate(s *Suite) (*Report, error) {
	// The heuristic portfolio — the algorithms the advisor actually races.
	// BruteForce sits this one out: the drifted mix fragments Lineitem
	// into 15 atoms, past its Bell-number cap (Bell(15) ≈ 1.4e9
	// candidates), so it cannot even produce the target layout.
	names := evaluatedAlgorithms[:len(evaluatedAlgorithms)-1]
	if err := s.Prewarm(names...); err != nil {
		return nil, err
	}
	r := &Report{
		ID:     "ext-migrate",
		Title:  "Online migration after 50% workload drift (Lineitem): break-even and verified cost",
		Header: []string{"algorithm", "migration (s)", "gain/query (s)", "break-even", "verdict", "cost==model", "migrated==fresh"},
	}
	m := cost.NewHDD(s.Disk)
	li := s.Bench.Table("lineitem")
	tw := s.Bench.Workload.ForTable(li)
	drifted := workgen.Drift(tw, migrateDriftFraction, migrateDriftSeed)
	liIndex := -1
	for i, t := range s.Bench.TableWorkloads() {
		if t.Table == li {
			liIndex = i
		}
	}
	if liIndex < 0 {
		return nil, fmt.Errorf("experiments: benchmark has no lineitem workload")
	}

	allExact := true
	for _, name := range names {
		rs, err := s.results(name)
		if err != nil {
			return nil, err
		}
		from := rs[liIndex].Partitioning
		to, err := searchDrifted(name, drifted, m)
		if err != nil {
			return nil, err
		}
		plan, err := migrate.New(drifted, from, to, m, migrateWindow)
		if err != nil {
			return nil, err
		}
		plan.FromAlgorithm, plan.ToAlgorithm = name, name

		verdict := "migrate"
		breakEven := fmt.Sprintf("%d", plan.BreakEven)
		if !plan.Viable {
			breakEven = "-"
			switch {
			case plan.From.Equal(plan.To):
				verdict = "no-op"
			case !(plan.Gain > 0):
				verdict = "never"
			default:
				verdict = ">window"
			}
		}
		rep, err := migrate.Execute(drifted, plan, migrate.Config{
			Disk: s.Disk, MaxRows: migrateSampleRows, Seed: 1,
		})
		if err != nil {
			return nil, err
		}
		allExact = allExact && rep.Exact()
		r.AddRow(name, fmtSeconds(plan.Migration.Seconds), fmt.Sprintf("%.3e", plan.Gain),
			breakEven, verdict,
			fmt.Sprintf("%v", rep.CostExact()), fmt.Sprintf("%v", rep.VerifyExact()))
	}
	r.AddNote("workload drift: %.0f%% of Lineitem queries perturbed (seed %d); window %d queries",
		migrateDriftFraction*100, migrateDriftSeed, int64(migrateWindow))
	r.AddNote("migration cost priced at full scale; executed and verified on %d-row samples (seed 1)", int64(migrateSampleRows))
	r.AddNote("measured repartition == migration cost model AND migrated == fresh store for every algorithm: %v", allExact)
	r.AddNote("times are simulated (virtual-disk) seconds; deterministic, no wall clock")
	r.AddNote("BruteForce excluded: the drifted mix has 15 atomic fragments, past its Bell-number cap")
	return r, nil
}

// searchDrifted runs one algorithm on the drifted workload (full scale),
// under a process-wide search slot like every kernel invocation.
func searchDrifted(name string, tw schema.TableWorkload, m cost.Model) (partition.Partitioning, error) {
	a, err := algorithms.ByName(name)
	if err != nil {
		return partition.Partitioning{}, err
	}
	algo.AcquireSearchSlot()
	defer algo.ReleaseSearchSlot()
	res, err := a.Partition(tw, m)
	if err != nil {
		return partition.Partitioning{}, fmt.Errorf("experiments: %s on drifted %s: %w", name, tw.Table.Name, err)
	}
	return res.Partitioning, nil
}
