package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden report files")

// Golden-file tests turn the determinism gate into reviewable artifacts:
// the exact report bodies of Table 4 and Figures 1 and 10 are committed
// under testdata/golden and diffed on every run, so any change to the
// numbers the reproduction claims shows up in a PR as a readable text diff
// instead of a silent drift.
//
// Fig1 and Fig10 embed wall-clock optimization times, which no golden file
// can pin; their timing-dependent cells and notes are masked at the Report
// level (BEFORE rendering, so column widths stay stable) while everything
// machine-independent — candidate counts, creation-time estimate, the
// cost-determined "never" pay-off verdicts — is diffed exactly.
//
// Regenerate after an intentional change with:
//
//	go test ./internal/experiments -run TestGolden -update
func TestGoldenReports(t *testing.T) {
	if testing.Short() {
		t.Skip("fig1/fig10 time every algorithm over the full benchmark")
	}
	s := NewSuite()
	s.Reps = 1
	cases := []struct {
		id   string
		mask func(*Report)
	}{
		{"tab4", nil},
		{"fig1", maskFig1},
		{"fig10", maskFig10},
		// fig4/fig5/tab3 now carry executed columns from operator pipelines
		// next to the paper's estimates — simulated I/O over deterministic
		// samples, so golden without masking, verification verdicts included.
		{"fig4", nil},
		{"fig5", nil},
		{"tab3", nil},
		// ext-operators pins the σ/π/⋈ pipeline against the cost model on
		// all three devices plus a selectivity sweep — all simulated seconds.
		{"ext-operators", nil},
		// ext-vectorized compares vector-mode pipelines to the row oracle:
		// every cell is simulated/deterministic except the wall-clock
		// speedup note, which is masked like fig1's timing ratio.
		{"ext-vectorized", maskExtVectorized},
		// ext-replay's times are simulated (virtual-disk) seconds — fully
		// deterministic, so measured-vs-estimated deltas, exactness
		// verdicts, and all three rankings are golden without masking.
		{"ext-replay", nil},
		// ext-migrate pins, per algorithm, the drift scenario's break-even
		// horizons and the measured==predicted migration cost — simulated
		// seconds again, so golden without masking.
		{"ext-migrate", nil},
		// ext-device pins the per-device algorithm ranking and the flips
		// along the HDD -> SSD -> MM spectrum — estimated costs over
		// deterministic searches, so golden without masking.
		{"ext-device", nil},
		// ext-recovery pins crash-recovery equivalence: acked counts,
		// snapshot sequences, replayed records, torn-byte lengths, and
		// verdicts all come from deterministic fault schedules over a fixed
		// event stream, so golden without masking.
		{"ext-recovery", nil},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.id, func(t *testing.T) {
			e, err := ByID(tc.id)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := e.Run(s)
			if err != nil {
				t.Fatal(err)
			}
			if tc.mask != nil {
				tc.mask(rep)
			}
			got := rep.String()
			path := filepath.Join("testdata", "golden", tc.id+".txt")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if got != string(want) {
				t.Errorf("%s report drifted from golden file %s\n--- want:\n%s\n--- got:\n%s",
					tc.id, path, want, got)
			}
		})
	}
}

const timingMask = "<timing>"

// maskFig1 blanks the opt-time column (cell 1) and the measured
// BruteForce/HillClimb ratio note; candidate counts and the creation-time
// estimate are deterministic and stay.
func maskFig1(r *Report) {
	for _, row := range r.Rows {
		if len(row) > 1 {
			row[1] = timingMask
		}
	}
	ratio := regexp.MustCompile(`optimization time = .*x$`)
	for i, n := range r.Notes {
		r.Notes[i] = ratio.ReplaceAllString(n, "optimization time = "+timingMask+"x")
	}
}

// maskExtVectorized blanks the wall-clock speedup note — the one
// machine-dependent line in an otherwise simulated, deterministic report.
func maskExtVectorized(r *Report) {
	ratio := regexp.MustCompile(`in .*x the row oracle's time$`)
	for i, n := range r.Notes {
		r.Notes[i] = ratio.ReplaceAllString(n, "in "+timingMask+"x the row oracle's time")
	}
}

// maskFig10 blanks numeric pay-off cells, which embed measured optimization
// time. The "never" verdicts depend only on estimated costs (a layout that
// never beats the baseline never pays off, however fast the search was), so
// they are part of the golden contract.
func maskFig10(r *Report) {
	for _, row := range r.Rows {
		for i := 1; i < len(row); i++ {
			if row[i] != "never" {
				row[i] = timingMask
			}
		}
	}
}
