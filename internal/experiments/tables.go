package experiments

import (
	"knives/internal/algorithms"
	"knives/internal/cost"
	"knives/internal/metrics"
	"knives/internal/partition"
	"knives/internal/schema"
	"knives/internal/storage"
)

// Tab5 reproduces Table 5: estimated improvement over column layout on
// TPC-H vs the Star Schema Benchmark for every algorithm.
func Tab5(s *Suite) (*Report, error) {
	if err := s.Prewarm(evaluatedAlgorithms...); err != nil {
		return nil, err
	}
	r := &Report{
		ID:     "tab5",
		Title:  "Estimated improvement over Column with different benchmarks",
		Header: []string{"algorithm", "TPC-H", "SSB"},
	}
	ssb := s.SSB
	if ssb == nil {
		ssb = schema.SSB(10)
	}
	m := s.model()
	colTPCH := layoutCost(s.Bench, m, partition.Column)
	colSSB := layoutCost(ssb, m, partition.Column)
	for _, name := range evaluatedAlgorithms {
		tpchRS, err := s.results(name)
		if err != nil {
			return nil, err
		}
		a, err := algorithms.ByName(name)
		if err != nil {
			return nil, err
		}
		ssbRS, err := runAll(a, ssb, m)
		if err != nil {
			return nil, err
		}
		r.AddRow(name,
			fmtPercent(metrics.Improvement(colTPCH, totalCost(tpchRS))),
			fmtPercent(metrics.Improvement(colSSB, totalCost(ssbRS))))
	}
	r.AddNote("paper: SSB's less fragmented access patterns allow ~5%% improvement vs ~3.7%% on TPC-H — still not dramatic")
	return r, nil
}

// Tab6 reproduces Table 6: estimated improvement over column layout under
// the disk (HDD) vs the main-memory (MM) cost model.
func Tab6(s *Suite) (*Report, error) {
	if err := s.Prewarm(evaluatedAlgorithms...); err != nil {
		return nil, err
	}
	r := &Report{
		ID:     "tab6",
		Title:  "Estimated improvement over Column with different cost models",
		Header: []string{"algorithm", "HDD cost model", "MM cost model"},
	}
	hdd := s.model()
	mm := cost.NewMM()
	colHDD := layoutCost(s.Bench, hdd, partition.Column)
	colMM := layoutCost(s.Bench, mm, partition.Column)
	for _, name := range evaluatedAlgorithms {
		hddRS, err := s.results(name)
		if err != nil {
			return nil, err
		}
		a, err := algorithms.ByName(name)
		if err != nil {
			return nil, err
		}
		mmRS, err := runAll(a, s.Bench, mm)
		if err != nil {
			return nil, err
		}
		r.AddRow(name,
			fmtPercent(metrics.Improvement(colHDD, totalCost(hddRS))),
			fmtPercent(metrics.Improvement(colMM, totalCost(mmRS))))
	}
	r.AddNote("paper: in main memory no algorithm beats column layout; Navathe/O2P are clearly worse")
	return r, nil
}

// Tab7 reproduces Table 7: TPC-H workload runtimes in a column store with
// column grouping (the paper's DBMS-X) for Row, Column, and the HillClimb
// layout, under the default (LZ/delta) and dictionary compression schemes.
//
// The commercial system is simulated: per-column compression ratios are
// measured on generated data with the corresponding codecs, I/O time is
// charged on the compressed byte volumes by the unified cost model, and
// variable-length encodings pay a per-tuple reconstruction CPU penalty
// inside multi-column groups (the effect the paper identifies as the cause
// of the Column-vs-HillClimb gap).
func Tab7(s *Suite) (*Report, error) {
	r := &Report{
		ID:     "tab7",
		Title:  "Simulated DBMS-X workload runtimes (s) per layout and compression scheme",
		Header: []string{"compression", "Row", "Column", "HillClimb"},
	}
	const (
		sampleRows = 4096
		joinCPU    = 20e-9 // seconds per variable-length column boundary per tuple
	)
	gen := storage.NewGenerator(2013)
	hcRS, err := s.results("HillClimb")
	if err != nil {
		return nil, err
	}
	tws := s.Bench.TableWorkloads()

	for _, scheme := range []storage.CompressionScheme{storage.SchemeDefault, storage.SchemeDictionary} {
		totals := map[string]float64{}
		for i, tw := range tws {
			ratios, err := storage.CompressionRatios(tw.Table, gen, sampleRows, scheme)
			if err != nil {
				return nil, err
			}
			layouts := map[string][]schema.Set{
				"Row":       partition.Row(tw.Table).Parts,
				"Column":    partition.Column(tw.Table).Parts,
				"HillClimb": hcRS[i].Partitioning.Parts,
			}
			for name, parts := range layouts {
				totals[name] += storage.CompressedScanSeconds(tw, parts, s.Disk, ratios, scheme, joinCPU)
			}
		}
		r.AddRow(scheme.String(), fmtSeconds(totals["Row"]), fmtSeconds(totals["Column"]), fmtSeconds(totals["HillClimb"]))
	}
	r.AddNote("paper (measured on DBMS-X): default 1652/377/450 s, dictionary 1265/511/532 s — Column wins, dictionary narrows the gap")
	r.AddNote("substitution: flate/delta/dictionary codecs on synthetic data; see DESIGN.md")
	return r, nil
}
