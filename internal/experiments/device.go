package experiments

import (
	"fmt"

	"knives/internal/algo"
	"knives/internal/algorithms"
	"knives/internal/cost"
	"knives/internal/partition"
)

// ExtDevice extends the paper's two-point hardware comparison (Table 6's
// HDD vs MM) into a spectrum: every algorithm searches the TPC-H workload
// UNDER each device's cost model (HDD -> SSD -> MM), and the resulting
// layouts are ranked per device by total estimated workload cost. The
// paper's central claim — the best knife depends on the hardware — shows up
// as ranking flips along the spectrum: a pair of layouts whose order
// inverts between two devices. The SSD sits between the paper's endpoints
// (block discipline, but near-zero seek), so the flips localize WHERE on
// the seek-cost axis each algorithm's advantage evaporates.
//
// All costs are estimated seconds over deterministic searches — no wall
// clock enters — so the full report is golden-diffed without masking.
func ExtDevice(s *Suite) (*Report, error) {
	if err := s.Prewarm(evaluatedAlgorithms...); err != nil {
		return nil, err
	}
	devices := []cost.Device{cost.HDDDevice(), cost.SSDDevice(), cost.MMDevice()}
	names := append(append([]string{}, evaluatedAlgorithms...), "Column", "Row")

	header := []string{"layout"}
	for _, dev := range devices {
		header = append(header, dev.Name+" cost (s)", "rank")
	}
	r := &Report{
		ID:     "ext-device",
		Title:  "Algorithm ranking across the device spectrum (TPC-H, searched per device)",
		Header: header,
	}

	// costs[d][name] is the total benchmark cost of the layouts the named
	// algorithm finds when searching under device d's model.
	costs := make([]map[string]float64, len(devices))
	for di, dev := range devices {
		m, err := cost.NewDeviceModel(dev)
		if err != nil {
			return nil, err
		}
		costs[di] = make(map[string]float64, len(names))
		for _, name := range names {
			switch name {
			case "Row":
				costs[di][name] = layoutCost(s.Bench, m, partition.Row)
			case "Column":
				costs[di][name] = layoutCost(s.Bench, m, partition.Column)
			default:
				rs, err := s.deviceResults(name, dev, m)
				if err != nil {
					return nil, err
				}
				costs[di][name] = totalCost(rs)
			}
		}
	}

	// Rank per device: cheapest first, ties kept in presentation order
	// (equal costs price identically, so tie order carries no claim).
	ranks := make([]map[string]int, len(devices))
	for di := range devices {
		ranks[di] = rankNames(names, costs[di])
	}
	for _, name := range names {
		row := []string{name}
		for di := range devices {
			row = append(row, fmtSeconds(costs[di][name]), fmt.Sprintf("%d", ranks[di][name]))
		}
		r.AddRow(row...)
	}

	// Ranking flips: pairs whose order inverts between two devices — the
	// hardware-dependence claim, stated as data.
	totalFlips := 0
	for ai := 0; ai < len(devices); ai++ {
		for bi := ai + 1; bi < len(devices); bi++ {
			flips := flippedPairs(names, costs[ai], costs[bi])
			totalFlips += len(flips)
			if len(flips) == 0 {
				r.AddNote("%s -> %s: no ranking flips", devices[ai].Name, devices[bi].Name)
				continue
			}
			r.AddNote("%s -> %s: %d ranking flip(s), e.g. %s", devices[ai].Name, devices[bi].Name,
				len(flips), flips[0])
		}
	}
	r.AddNote("the best algorithm is hardware-dependent: %d pairwise ranking flips across HDD -> SSD -> MM", totalFlips)
	r.AddNote("as seeks approach zero, grouping loses its advantage over pure columns (paper, Table 6 discussion)")
	return r, nil
}

// deviceResults runs (or fetches from the suite cache, for the suite's own
// disk) the named algorithm's layouts under a device's model.
func (s *Suite) deviceResults(name string, dev cost.Device, m cost.Model) ([]algo.Result, error) {
	if dev == s.Disk {
		// The suite's cache already holds the default-device layouts.
		return s.results(name)
	}
	a, err := algorithms.ByName(name)
	if err != nil {
		return nil, err
	}
	return runAll(a, s.Bench, m)
}

// rankNames orders names by ascending cost (stable: equal costs keep the
// presentation order) and returns each name's 1-based rank.
func rankNames(names []string, cost map[string]float64) map[string]int {
	order := append([]string(nil), names...)
	// Insertion sort keeps the tie order stable without an import.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && cost[order[j]] < cost[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	ranks := make(map[string]int, len(order))
	for pos, n := range order {
		ranks[n] = pos + 1
	}
	return ranks
}

// flippedPairs lists the layout pairs whose strict cost order inverts
// between two devices, each rendered "X over Y becomes Y over X".
func flippedPairs(names []string, a, b map[string]float64) []string {
	var out []string
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			x, y := names[i], names[j]
			if a[x] < a[y] && b[x] > b[y] {
				out = append(out, fmt.Sprintf("%s beats %s, then %s beats %s", x, y, y, x))
			} else if a[y] < a[x] && b[y] > b[x] {
				out = append(out, fmt.Sprintf("%s beats %s, then %s beats %s", y, x, x, y))
			}
		}
	}
	return out
}
