package experiments

import "knives/internal/partition"

// Fig14 reproduces Figure 14 (Appendix B): the computed vertical layouts
// for every TPC-H table under every algorithm. Partitions print as
// pipe-separated attribute groups.
func Fig14(s *Suite) (*Report, error) {
	r := &Report{
		ID:     "fig14",
		Title:  "Computed partitions for the TPC-H workload",
		Header: []string{"table", "algorithm", "layout"},
	}
	tws := s.Bench.TableWorkloads()
	for i, tw := range tws {
		for _, name := range evaluatedAlgorithms {
			rs, err := s.results(name)
			if err != nil {
				return nil, err
			}
			r.AddRow(tw.Table.Name, name, rs[i].Partitioning.String())
		}
		r.AddRow(tw.Table.Name, "Column", partition.Column(tw.Table).String())
	}
	r.AddNote("paper: AutoPart/HillClimb/HYRISE/Trojan/BruteForce form one layout class; Navathe and O2P a clearly different second class")
	r.AddNote("paper: Nation and Region fit in one block, so their partitioning does not influence I/O cost")
	return r, nil
}
