package experiments

import (
	"fmt"

	"knives/internal/algorithms"
	"knives/internal/cost"
	"knives/internal/metrics"
	"knives/internal/partition"
	"knives/internal/replay"
	"knives/internal/schema"
)

// Fig3 reproduces Figure 3: the estimated workload runtime of the layouts
// every algorithm produces, with Row and Column as baselines.
func Fig3(s *Suite) (*Report, error) {
	if err := s.Prewarm(evaluatedAlgorithms...); err != nil {
		return nil, err
	}
	r := &Report{
		ID:     "fig3",
		Title:  "Estimated workload runtime for different algorithms (TPC-H SF10)",
		Header: []string{"layout", "estd. runtime (s)"},
	}
	for _, name := range evaluatedAlgorithms {
		rs, err := s.results(name)
		if err != nil {
			return nil, err
		}
		r.AddRow(name, fmtSeconds(totalCost(rs)))
	}
	m := s.model()
	col := layoutCost(s.Bench, m, partition.Column)
	row := layoutCost(s.Bench, m, partition.Row)
	r.AddRow("Column", fmtSeconds(col))
	r.AddRow("Row", fmtSeconds(row))
	hc, err := s.results("HillClimb")
	if err != nil {
		return nil, err
	}
	r.AddNote("HillClimb improvement over Row: %s", fmtPercent(metrics.Improvement(row, totalCost(hc))))
	r.AddNote("HillClimb improvement over Column: %s", fmtPercent(metrics.Improvement(col, totalCost(hc))))
	r.AddNote("paper: ~80%% improvement over Row, <5%% over Column")
	return r, nil
}

// Fig4 reproduces Figure 4: the fraction of data read that is unnecessary.
// Next to the paper's estimated fraction, an EXECUTED column recomputes the
// metric from σ/π/⋈ pipelines run over sampled materializations of the same
// layouts — every read byte measured at the page level, and verified
// against the metric recomputed over the sampled twins at zero tolerance.
func Fig4(s *Suite) (*Report, error) {
	if err := s.Prewarm(evaluatedAlgorithms...); err != nil {
		return nil, err
	}
	r := &Report{
		ID:     "fig4",
		Title:  "Fraction of unnecessary data read (TPC-H SF10)",
		Header: []string{"layout", "unnecessary read", "executed (sampled)"},
	}
	tws := s.Bench.TableWorkloads()
	sampled, err := sampledTwins(tws, executedSampleRows)
	if err != nil {
		return nil, err
	}
	verified := true
	executedCell := func(name string) (string, error) {
		reps, layouts, err := s.executedReplays(name)
		if err != nil {
			return "", err
		}
		executed := executedUnnecessaryRead(tws, layouts, reps)
		parts := make([][]schema.Set, len(layouts))
		for i, l := range layouts {
			parts[i] = l.Parts
		}
		verified = verified &&
			executed == metrics.BenchmarkUnnecessaryRead(sampled, parts) &&
			repsExact(reps)
		return fmtPercent(executed), nil
	}
	for _, name := range evaluatedAlgorithms {
		rs, err := s.results(name)
		if err != nil {
			return nil, err
		}
		executed, err := executedCell(name)
		if err != nil {
			return nil, err
		}
		r.AddRow(name, fmtPercent(metrics.BenchmarkUnnecessaryRead(tws, partsOf(rs))), executed)
	}
	colLayouts := make([][]schema.Set, len(tws))
	rowLayouts := make([][]schema.Set, len(tws))
	for i, tw := range tws {
		colLayouts[i] = partition.Column(tw.Table).Parts
		rowLayouts[i] = partition.Row(tw.Table).Parts
	}
	colExecuted, err := executedCell("Column")
	if err != nil {
		return nil, err
	}
	rowExecuted, err := executedCell("Row")
	if err != nil {
		return nil, err
	}
	r.AddRow("Column", fmtPercent(metrics.BenchmarkUnnecessaryRead(tws, colLayouts)), colExecuted)
	r.AddRow("Row", fmtPercent(metrics.BenchmarkUnnecessaryRead(tws, rowLayouts)), rowExecuted)
	r.AddNote("paper: Row reads ~84%% unnecessary data; vertically partitioned layouts read ~0-25%%")
	r.AddNote("executed column: operator pipelines over %d-row samples; equals the metric over the sampled twins bit for bit, all replays exact: %v", int64(executedSampleRows), verified)
	return r, nil
}

// Fig5 reproduces Figure 5: the average number of tuple-reconstruction
// joins per tuple and query.
func Fig5(s *Suite) (*Report, error) {
	if err := s.Prewarm(evaluatedAlgorithms...); err != nil {
		return nil, err
	}
	r := &Report{
		ID:     "fig5",
		Title:  "Average tuple-reconstruction joins (TPC-H SF10)",
		Header: []string{"layout", "avg joins", "executed"},
	}
	tws := s.Bench.TableWorkloads()
	// The joins metric carries no row-count term, so the executed value
	// (recomputed from the leaves every pipeline actually merged) must equal
	// the full-scale estimate EXACTLY, at any sample size.
	verified := true
	executedCell := func(name string, estimated float64) (string, error) {
		reps, _, err := s.executedReplays(name)
		if err != nil {
			return "", err
		}
		executed := executedReconJoins(tws, reps)
		verified = verified && executed == estimated && repsExact(reps)
		return fmtFactor(executed), nil
	}
	var colJoins float64
	for _, name := range evaluatedAlgorithms {
		rs, err := s.results(name)
		if err != nil {
			return nil, err
		}
		estimated := metrics.BenchmarkReconstructionJoins(tws, partsOf(rs))
		executed, err := executedCell(name, estimated)
		if err != nil {
			return nil, err
		}
		r.AddRow(name, fmtFactor(estimated), executed)
	}
	colLayouts := make([][]schema.Set, len(tws))
	rowLayouts := make([][]schema.Set, len(tws))
	for i, tw := range tws {
		colLayouts[i] = partition.Column(tw.Table).Parts
		rowLayouts[i] = partition.Row(tw.Table).Parts
	}
	colJoins = metrics.BenchmarkReconstructionJoins(tws, colLayouts)
	colExecuted, err := executedCell("Column", colJoins)
	if err != nil {
		return nil, err
	}
	rowJoins := metrics.BenchmarkReconstructionJoins(tws, rowLayouts)
	rowExecuted, err := executedCell("Row", rowJoins)
	if err != nil {
		return nil, err
	}
	r.AddRow("Column", fmtFactor(colJoins), colExecuted)
	r.AddRow("Row", fmtFactor(rowJoins), rowExecuted)
	r.AddNote("executed column equals the full-scale estimate bit for bit (the metric is scale-free), all replays exact: %v", verified)
	hc, err := s.results("HillClimb")
	if err != nil {
		return nil, err
	}
	hcJoins := metrics.BenchmarkReconstructionJoins(tws, partsOf(hc))
	if colJoins > 0 {
		r.AddNote("HillClimb still performs %.0f%% of Column's joins (paper: at least 72%%)", hcJoins/colJoins*100)
	}
	return r, nil
}

// Fig6 reproduces Figure 6: how far each layout's cost is from perfect
// materialized views.
func Fig6(s *Suite) (*Report, error) {
	if err := s.Prewarm(evaluatedAlgorithms...); err != nil {
		return nil, err
	}
	r := &Report{
		ID:     "fig6",
		Title:  "Distance from perfect materialized views (TPC-H SF10)",
		Header: []string{"layout", "distance from PMV"},
	}
	m := s.model()
	pmv := pmvCost(s.Bench, m)
	for _, name := range evaluatedAlgorithms {
		rs, err := s.results(name)
		if err != nil {
			return nil, err
		}
		r.AddRow(name, fmtPercent(metrics.DistanceFromPMV(totalCost(rs), pmv)))
	}
	r.AddRow("Column", fmtPercent(metrics.DistanceFromPMV(layoutCost(s.Bench, m, partition.Column), pmv)))
	r.AddRow("Row", fmtPercent(metrics.DistanceFromPMV(layoutCost(s.Bench, m, partition.Row), pmv)))
	r.AddNote("paper: HillClimb/AutoPart within ~18%% of PMV; Navathe/O2P ~49-56%% off; Row ~517%% off")
	return r, nil
}

// Fig7 reproduces Figure 7: the estimated workload runtime improvement over
// Column when re-optimizing for the first k queries, for HillClimb and
// Navathe.
func Fig7(s *Suite) (*Report, error) {
	r := &Report{
		ID:     "fig7",
		Title:  "Improvement over Column when re-optimizing for the first k queries",
		Header: []string{"k", "HillClimb", "Navathe"},
	}
	m := s.model()
	for k := 1; k <= len(s.Bench.Workload.Queries); k++ {
		bench := &schema.Benchmark{Name: s.Bench.Name, Tables: s.Bench.Tables, Workload: s.Bench.Workload.Prefix(k)}
		col := layoutCost(bench, m, partition.Column)
		row := []string{fmt.Sprintf("%d", k)}
		for _, name := range []string{"HillClimb", "Navathe"} {
			a, err := algorithms.ByName(name)
			if err != nil {
				return nil, err
			}
			rs, err := runAll(a, bench, m)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtPercent(metrics.Improvement(col, totalCost(rs))))
		}
		r.AddRow(row...)
	}
	r.AddNote("paper: HillClimb starts at ~24%% and settles at ~6.5%%; Navathe goes negative from k=4")
	return r, nil
}

// Tab3 reproduces Table 3: the fraction of unnecessary data read over the
// Lineitem table for the first k queries (k = 1..6), HillClimb vs Navathe.
// The executed columns rerun each prefix workload as operator pipelines
// over a sampled materialization of the advised layout and recompute the
// fraction from measured page reads, verified against the metric over the
// sampled twin at zero tolerance.
func Tab3(s *Suite) (*Report, error) {
	r := &Report{
		ID:     "tab3",
		Title:  "Unnecessary data reads over Lineitem for the first k queries",
		Header: []string{"k", "HillClimb", "Navathe", "HillClimb (executed)", "Navathe (executed)"},
	}
	m := s.model()
	li := s.Bench.Table("lineitem")
	verified := true
	for k := 1; k <= 6; k++ {
		tw := s.Bench.Workload.Prefix(k).ForTable(li)
		stw, err := sampledTwins([]schema.TableWorkload{tw}, executedSampleRows)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%d", k)}
		var executedCells []string
		for _, name := range []string{"HillClimb", "Navathe"} {
			a, err := algorithms.ByName(name)
			if err != nil {
				return nil, err
			}
			res, err := a.Partition(tw, m)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtPercent(metrics.UnnecessaryRead(tw, res.Partitioning.Parts)))
			rep, err := replay.Operators(tw, res.Partitioning, name, replay.Config{
				Disk:    s.Disk,
				MaxRows: executedSampleRows,
				Seed:    1,
			}, nil)
			if err != nil {
				return nil, err
			}
			executed := executedUnnecessaryReadTable(tw, res.Partitioning, rep)
			verified = verified &&
				executed == metrics.UnnecessaryRead(stw[0], res.Partitioning.Parts) &&
				rep.Exact()
			executedCells = append(executedCells, fmtPercent(executed))
		}
		r.AddRow(append(row, executedCells...)...)
	}
	r.AddNote("paper: HillClimb stays at 0%%; Navathe jumps above 30%% from k=4")
	r.AddNote("executed columns: operator pipelines over %d-row samples; equal the metric over the sampled twin bit for bit, all replays exact: %v", int64(executedSampleRows), verified)
	return r, nil
}

// Tab4 reproduces Table 4: the average number of tuple-reconstruction
// joins per row of Lineitem for the first k queries, HillClimb vs Column.
func Tab4(s *Suite) (*Report, error) {
	r := &Report{
		ID:     "tab4",
		Title:  "Average tuple-reconstruction joins per Lineitem row for the first k queries",
		Header: []string{"k", "HillClimb", "Column"},
	}
	m := s.model()
	li := s.Bench.Table("lineitem")
	for k := 1; k <= 6; k++ {
		tw := s.Bench.Workload.Prefix(k).ForTable(li)
		a, err := algorithms.ByName("HillClimb")
		if err != nil {
			return nil, err
		}
		res, err := a.Partition(tw, m)
		if err != nil {
			return nil, err
		}
		r.AddRow(fmt.Sprintf("%d", k),
			fmtFactor(metrics.ReconstructionJoins(tw, res.Partitioning.Parts)),
			fmtFactor(metrics.ReconstructionJoins(tw, partition.Column(li).Parts)))
	}
	r.AddNote("paper: HillClimb grows 0.00 → 2.00 while Column shrinks 6.00 → 3.40 as k grows")
	return r, nil
}

// Fig10 reproduces Figure 10 (Appendix A.1): the pay-off of every
// algorithm's optimization + layout-creation investment over Row (a) and
// over Column (b).
func Fig10(s *Suite) (*Report, error) {
	r := &Report{
		ID:     "fig10",
		Title:  "Pay-off of optimization + creation time over Row and Column",
		Header: []string{"algorithm", "pay-off over Row (% of workload)", "pay-off over Column (workload runs)"},
	}
	m := s.model()
	rowC := layoutCost(s.Bench, m, partition.Row)
	colC := layoutCost(s.Bench, m, partition.Column)
	creation := cost.BenchmarkCreationTime(s.Bench, s.Disk)
	for _, name := range evaluatedAlgorithms {
		// Time each algorithm in isolation, sharing Fig1's measurement (a
		// Prewarm'd fan-out would fold scheduler contention into the
		// pay-off). Timing runs first: it seeds the layout cache, so the
		// results call below never triggers a second search.
		opt, _, err := s.timedSeconds(name)
		if err != nil {
			return nil, err
		}
		rs, err := s.results(name)
		if err != nil {
			return nil, err
		}
		lc := totalCost(rs)
		overRow := metrics.Payoff(opt, creation, rowC, lc)
		overCol := metrics.Payoff(opt, creation, colC, lc)
		rowCell := fmtPercent(overRow)
		colCell := fmtFactor(overCol)
		if overRow < 0 {
			rowCell = "never"
		}
		if overCol < 0 {
			colCell = "never"
		}
		r.AddRow(name, rowCell, colCell)
	}
	r.AddNote("paper: all algorithms pay off over Row after ~25%% of one workload execution")
	r.AddNote("paper: over Column the earliest pay-off needs ~44 workload executions; Navathe/O2P never pay off")
	return r, nil
}
