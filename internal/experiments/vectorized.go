package experiments

import (
	"fmt"
	"reflect"

	"knives/internal/replay"
	"knives/internal/storage"
)

// ExtVectorized pins the vectorized execution mode against the row-at-a-time
// oracle on a real advised layout: Lineitem's workload runs as batch-at-a-time
// σ/π/⋈ pipelines (morsel-parallel leaf scans included) over the HillClimb
// layout, across a batch-size and worker sweep. Every vector run must
// reproduce the oracle bit for bit — checksums, I/O accounting, simulated
// seconds — because batching changes WHEN bytes move, never WHICH bytes or
// what they cost. The wall-clock speedup is reported as a note; it is the
// only non-deterministic cell and is masked in the golden file.
func ExtVectorized(s *Suite) (*Report, error) {
	r := &Report{
		ID:     "ext-vectorized",
		Title:  "Vectorized σ/π/⋈ execution vs the row oracle (Lineitem, HillClimb layout)",
		Header: []string{"mode", "batch", "workers", "measured (s)", "exact", "== row oracle", "rows out", "mean fill"},
	}
	li := s.Bench.Table("lineitem")
	tw := s.Bench.Workload.ForTable(li)
	sel := &replay.Selection{Attr: li.AttrIndex("l_shipdate"), Bound: uint32(storage.DateDomain / 2)}
	base := replay.Config{Disk: s.Disk, MaxRows: extOperatorsSampleRows, Seed: 1}

	row, err := replay.OperatorsAlgorithm(tw, "HillClimb", base, sel)
	if err != nil {
		return nil, err
	}
	var rowRows int64
	for _, n := range row.ResultRows {
		rowRows += n
	}
	r.AddRow("row", "-", "-", fmtSeconds(row.MeasuredTotal),
		fmt.Sprintf("%v", row.Exact()), "oracle", fmt.Sprintf("%d", rowRows), "-")

	// matchesOracle demands bit-equality per query: the projected checksum,
	// the full measured scan stats, and the rows the root emitted.
	matchesOracle := func(rep *replay.OperatorReplay) bool {
		if len(rep.Queries) != len(row.Queries) {
			return false
		}
		for i := range rep.Queries {
			if rep.Queries[i].Stats.Checksum != row.Queries[i].Stats.Checksum ||
				!reflect.DeepEqual(rep.Queries[i].Stats, row.Queries[i].Stats) ||
				rep.ResultRows[i] != row.ResultRows[i] ||
				rep.Queries[i].MeasuredSeconds != row.Queries[i].MeasuredSeconds {
				return false
			}
		}
		return rep.MeasuredTotal == row.MeasuredTotal
	}

	wall := func(rep *replay.OperatorReplay) float64 {
		var t float64
		for _, s := range rep.ExecSeconds {
			t += s
		}
		return t
	}

	allMatch, allExact := true, true
	bestWall, rowWall := 0.0, wall(row)
	for _, c := range []struct{ batch, workers int }{
		{64, 0}, {1024, 0}, {1024, 4}, {4096, 8},
	} {
		cfg := base
		cfg.ExecMode = "vector"
		cfg.BatchSize = c.batch
		cfg.ExecWorkers = c.workers
		rep, err := replay.OperatorsAlgorithm(tw, "HillClimb", cfg, sel)
		if err != nil {
			return nil, err
		}
		var rows int64
		for _, n := range rep.ResultRows {
			rows += n
		}
		var fills float64
		var nf int
		for _, ratios := range rep.FillRatios {
			for _, f := range ratios {
				fills += f
				nf++
			}
		}
		meanFill := "-"
		if nf > 0 {
			meanFill = fmt.Sprintf("%.3f", fills/float64(nf))
		}
		same := matchesOracle(rep)
		allMatch = allMatch && same
		allExact = allExact && rep.Exact()
		if w := wall(rep); bestWall == 0 || w < bestWall {
			bestWall = w
		}
		r.AddRow("vector", fmt.Sprintf("%d", c.batch), fmt.Sprintf("%d", c.workers),
			fmtSeconds(rep.MeasuredTotal), fmt.Sprintf("%v", rep.Exact()),
			fmt.Sprintf("%v", same), fmt.Sprintf("%d", rows), meanFill)
	}

	r.AddNote("every vector run reproduces the row oracle bit for bit (checksums, stats, simulated seconds): %v", allMatch)
	r.AddNote("measured == predicted at zero tolerance in every mode: %v", allExact)
	r.AddNote("σ l_shipdate < domain/2 keeps about half the rows; fill ratios reflect the surviving fraction")
	if bestWall > 0 {
		r.AddNote("wall-clock: best vector config ran the pipelines in %.1fx the row oracle's time", bestWall/rowWall)
	}
	r.AddNote("times are simulated (virtual-device) seconds over %d-row samples; deterministic, no wall clock", int64(extOperatorsSampleRows))
	return r, nil
}
