package statestore

import (
	"strings"
	"testing"

	"knives/internal/telemetry"
)

// TestDurableMetrics checks that a metrics-bound store fills the WAL timing
// histograms on append/fsync/snapshot and exposes the recovery report.
func TestDurableMetrics(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	d, err := Open(mustDir(t, dir), Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Append(Event{Type: EvAdviseCommit, Table: "t",
		Schema: TableRec{Name: "t", Rows: 1000, Columns: []ColumnRec{{Name: "a", Size: 4}}}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		ev := Event{Type: EvObserve, Table: "t",
			Queries: []QueryRec{{ID: "q", Weight: 1, Attrs: uint64(1 + i%7)}}}
		if err := d.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	out := reg.String()
	if err := telemetry.CheckExposition(out); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, out)
	}
	for _, want := range []string{
		"knives_wal_append_seconds_count 10",
		"knives_wal_fsync_seconds_count 10", // SyncEvery 0 -> fsync per append
		"knives_wal_snapshot_seconds_count 1",
		"knives_wal_snapshots_total 1",
		"knives_wal_last_seq 10",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in exposition:\n%s", want, out)
		}
	}

	// Reopen: recovery gauges must reflect the snapshot coverage.
	reg2 := telemetry.NewRegistry()
	d2, err := Open(mustDir(t, dir), Options{Metrics: reg2})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	rep := d2.Report()
	if rep.SnapshotSeq != 10 || rep.Tables != 1 {
		t.Fatalf("unexpected recovery report: %+v", rep)
	}
	out2 := reg2.String()
	for _, want := range []string{
		"knives_recovery_snapshot_seq 10",
		"knives_recovery_tables 1",
	} {
		if !strings.Contains(out2, want) {
			t.Errorf("missing %q in exposition:\n%s", want, out2)
		}
	}
}

// TestMemReport pins the in-memory store's zero-value recovery report.
func TestMemReport(t *testing.T) {
	if got := NewMem().Report(); got != (RecoveryReport{}) {
		t.Fatalf("Mem.Report() = %+v, want zero value", got)
	}
}
