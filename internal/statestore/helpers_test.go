package statestore

import "math/rand"

// testSchema is a small deterministic schema for one table name.
func testSchema(name string) TableRec {
	return TableRec{Name: name, Rows: 6_000_000, Columns: []ColumnRec{
		{Name: "a", Kind: 1, Size: 4},
		{Name: "b", Kind: 2, Size: 8},
		{Name: "c", Kind: 3, Size: 16},
	}}
}

// testAdvice is a full advice record, varied by tag so streams differ.
func testAdvice(tag int) AdviceRec {
	return AdviceRec{
		Algorithm:  "autopart",
		Parts:      []uint64{uint64(1 + tag%7), uint64(8 + tag%5)},
		Cost:       100 + float64(tag),
		RowCost:    400 + float64(tag),
		ColumnCost: 90 + float64(tag),
		PerAlgorithm: []AlgoCost{
			{Name: "navathe", Cost: 120 + float64(tag)},
			{Name: "o2p", Cost: 110 + float64(tag)},
		},
	}
}

func testFP(tag int) (fp [FPSize]byte) {
	fp[0], fp[1], fp[31] = byte(tag), byte(tag>>8), 0xAB
	return
}

func testQueries(rng *rand.Rand, n int) []QueryRec {
	qs := make([]QueryRec, n)
	for i := range qs {
		qs[i] = QueryRec{
			ID:     "q" + string(rune('a'+rng.Intn(26))),
			Weight: 1 + float64(rng.Intn(8)),
			Attrs:  uint64(rng.Int63()),
		}
	}
	return qs
}

// testEvents generates a deterministic, plausible event stream: a few
// tables being registered, observed, drift-recomputed, applied, evicted,
// and re-registered — the daemon's life, compressed.
func testEvents(n int) []Event {
	rng := rand.New(rand.NewSource(1))
	names := []string{"lineitem", "orders", "customer"}
	regFP := map[string][FPSize]byte{}
	evs := make([]Event, 0, n)
	for i := 0; len(evs) < n; i++ {
		name := names[rng.Intn(len(names))]
		_, registered := regFP[name]
		roll := rng.Intn(20)
		switch {
		case !registered || roll == 0:
			fp := testFP(i)
			evs = append(evs, Event{
				Type: EvAdviseCommit, Table: name, Schema: testSchema(name),
				ModelKey: "hdd:v1", Queries: testQueries(rng, 1+rng.Intn(4)),
				Advice: testAdvice(i), FP: fp,
			})
			regFP[name] = fp
		case roll == 1:
			fp := testFP(i)
			evs = append(evs, Event{
				Type: EvRecompute, Table: name, Advice: testAdvice(i),
				FP: fp, AdvObserved: int64(rng.Intn(500)),
			})
			regFP[name] = fp
		case roll == 2:
			// Half the time CAS against the live fingerprint (succeeds),
			// half against a stale one (no-op) — both paths matter.
			fp := regFP[name]
			if rng.Intn(2) == 0 {
				fp = testFP(i)
			}
			evs = append(evs, Event{Type: EvApplied, Table: name, FP: fp})
		case roll == 3:
			evs = append(evs, Event{Type: EvReset, Table: name})
			delete(regFP, name)
		default:
			evs = append(evs, Event{
				Type: EvObserve, Table: name,
				Queries: testQueries(rng, 1+rng.Intn(6)),
			})
		}
	}
	return evs
}
