package statestore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Snapshot file format (snapshot.db):
//
//	magic "KNSNAP01"  — 8 bytes, versioned
//	u64 lastSeq       — every WAL record with seq <= lastSeq is covered
//	i64 window        — the drift window the logs were trimmed under
//	i64 nextOrder     — registration-order counter
//	u64 ntables, then each TableState
//	u32 crc           — CRC-32C over everything above
//
// Snapshots are written to snapshot.tmp, fsynced, renamed over snapshot.db,
// and the directory fsynced — so the live name either holds the previous
// complete snapshot or the new complete one, never a partial.

const snapMagic = "KNSNAP01"

// snapshotData is a decoded snapshot.
type snapshotData struct {
	lastSeq   uint64
	window    int64
	nextOrder int64
	tables    []TableState
}

func encodeSnapshot(s snapshotData) []byte {
	e := &enc{b: make([]byte, 0, 1024)}
	e.b = append(e.b, snapMagic...)
	e.u64(s.lastSeq)
	e.i64(s.window)
	e.i64(s.nextOrder)
	e.u64(uint64(len(s.tables)))
	for _, ts := range s.tables {
		encodeState(e, ts)
	}
	crc := crc32.Checksum(e.b, crcTable)
	e.b = binary.LittleEndian.AppendUint32(e.b, crc)
	return e.b
}

func decodeSnapshot(b []byte) (snapshotData, error) {
	var s snapshotData
	if len(b) < len(snapMagic)+4 {
		return s, fmt.Errorf("%w: %d bytes is too short", ErrCorruptSnapshot, len(b))
	}
	if string(b[:len(snapMagic)]) != snapMagic {
		return s, fmt.Errorf("%w: bad magic", ErrCorruptSnapshot)
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(tail) {
		return s, fmt.Errorf("%w: checksum mismatch", ErrCorruptSnapshot)
	}
	d := &dec{b: body, off: len(snapMagic)}
	s.lastSeq = d.u64()
	s.window = d.i64()
	s.nextOrder = d.i64()
	n := d.count(1<<20, "tables")
	for i := 0; i < n && d.err == nil; i++ {
		s.tables = append(s.tables, decodeState(d))
	}
	if d.err != nil {
		return snapshotData{}, fmt.Errorf("%w: %v", ErrCorruptSnapshot, d.err)
	}
	if d.off != len(body) {
		return snapshotData{}, fmt.Errorf("%w: %d trailing bytes", ErrCorruptSnapshot, len(body)-d.off)
	}
	return s, nil
}
