package statestore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"
)

// WAL record framing:
//
//	u32 length   — bytes of (seq + payload)
//	u64 seq      — strictly increasing, 1-based across the store's life
//	payload      — one encoded event
//	u32 crc      — CRC-32C over (length + seq + payload)
//
// Each record is written with a single Write call, so a torn write (power
// cut, injected fault) tears exactly one record — the tail — and recovery
// truncates back to the last frame whose CRC verifies.

// crcTable is Castagnoli — hardware-accelerated on every platform Go
// supports, and the polynomial every storage system uses for exactly this.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

const (
	recHeaderSize = 4 + 8 // length + seq
	recCRCSize    = 4
	// maxRecordLen bounds a frame so a corrupted length field cannot make
	// the reader allocate gigabytes before the CRC check catches it.
	maxRecordLen = 16 << 20
)

// appendRecord frames one payload into buf.
func appendRecord(buf []byte, seq uint64, payload []byte) []byte {
	start := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(8+len(payload)))
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = append(buf, payload...)
	crc := crc32.Checksum(buf[start:], crcTable)
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// walRecord is one parsed frame.
type walRecord struct {
	seq     uint64
	payload []byte
}

// segmentScan is the result of parsing one WAL segment: the longest valid
// record prefix, plus what (if anything) trails it.
type segmentScan struct {
	records []walRecord
	// validLen is the byte offset just past the last valid record; torn
	// reports whether bytes trail it (a crashed append's partial frame).
	validLen int64
	torn     bool
}

// scanSegment parses records until the data ends or a frame fails to
// verify. It never errors: whether trailing damage is a legal torn tail or
// corruption depends on whether this is the store's last segment, which is
// the caller's call.
func scanSegment(data []byte) segmentScan {
	var s segmentScan
	off := 0
	for {
		if off == len(data) {
			break // clean end at a record boundary
		}
		if off+recHeaderSize > len(data) {
			s.torn = true
			break
		}
		length := binary.LittleEndian.Uint32(data[off:])
		if length < 8 || length > maxRecordLen {
			s.torn = true
			break
		}
		end := off + 4 + int(length) + recCRCSize
		if end > len(data) || end < off {
			s.torn = true
			break
		}
		want := binary.LittleEndian.Uint32(data[end-recCRCSize:])
		if crc32.Checksum(data[off:end-recCRCSize], crcTable) != want {
			s.torn = true
			break
		}
		seq := binary.LittleEndian.Uint64(data[off+4:])
		s.records = append(s.records, walRecord{seq: seq, payload: data[off+12 : end-recCRCSize]})
		off = end
	}
	s.validLen = int64(off)
	return s
}

// segment file naming: wal-<base seq, hex>.log, ordered by base.
func segmentName(base uint64) string { return fmt.Sprintf("wal-%016x.log", base) }

// parseSegmentName extracts the base seq; ok=false for non-segment files.
func parseSegmentName(name string) (uint64, bool) {
	const pre, suf = "wal-", ".log"
	if !strings.HasPrefix(name, pre) || !strings.HasSuffix(name, suf) {
		return 0, false
	}
	base, err := strconv.ParseUint(name[len(pre):len(name)-len(suf)], 16, 64)
	if err != nil || segmentName(base) != name {
		return 0, false
	}
	return base, true
}
