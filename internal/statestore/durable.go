package statestore

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"knives/internal/telemetry"
	"knives/internal/vfs"
)

// DefaultSnapshotEvery is how many appended events trigger an automatic
// snapshot + WAL truncation when Options does not say.
const DefaultSnapshotEvery = 1024

// Options parameterize a durable store.
type Options struct {
	// DriftWindow trims observation logs in the fold; it must match the
	// service's drift window or recovered logs will differ from live ones.
	// 0 uses the advisor's default (256); negative keeps everything.
	DriftWindow int
	// SnapshotEvery triggers an automatic snapshot after that many
	// appends (0 = DefaultSnapshotEvery, negative = only explicit
	// Snapshot calls).
	SnapshotEvery int
	// SyncEvery fsyncs the WAL after every Nth append. 0 or 1 fsyncs
	// every append — the only setting under which an acknowledged event
	// is guaranteed to survive a crash; larger values trade the last
	// SyncEvery-1 events for throughput.
	SyncEvery int
	// Metrics, when set, receives WAL timing histograms
	// (knives_wal_append_seconds, knives_wal_fsync_seconds,
	// knives_wal_snapshot_seconds) and recovery/snapshot gauges. Nil
	// disables instrumentation at zero cost — the histogram handles stay
	// nil and their methods no-op.
	Metrics *telemetry.Registry
}

// snapshot file names.
const (
	snapName    = "snapshot.db"
	snapTmpName = "snapshot.tmp"
)

// RecoveryReport describes what Open found and replayed.
type RecoveryReport struct {
	// SnapshotSeq is the last WAL sequence the loaded snapshot covered
	// (0 = no snapshot).
	SnapshotSeq uint64
	// Segments is how many WAL segment files were scanned.
	Segments int
	// Records is how many journal records were replayed into state.
	Records int64
	// SkippedOld counts records at or below the snapshot sequence
	// (legal overlap from a crash between snapshot and truncation).
	SkippedOld int64
	// SkippedUnknown counts decoded events naming tables the fold does
	// not know — the journal image of the eviction race, where the live
	// mutation landed on an orphaned tracker too.
	SkippedUnknown int64
	// TornBytes is the length of the torn tail truncated from the last
	// segment (0 = the WAL ended cleanly).
	TornBytes int64
	// Tables is how many tables were recovered.
	Tables int
}

// Durable is the WAL-backed store: Append journals events with CRC-framed
// records before the service applies them, Snapshot compacts the journal,
// and Open replays snapshot + WAL back into the state the daemon died
// with. All methods are safe for concurrent use; appends are serialized,
// so journal order is apply order.
type Durable struct {
	fs  vfs.FS
	opt Options

	mu        sync.Mutex
	st        *state
	recovered []TableState
	report    RecoveryReport

	seg        vfs.File // active segment (nil after a failed rotation)
	segName    string
	segEnd     int64 // length of the valid record prefix
	lastSeq    uint64
	snapSeq    uint64
	sinceSnap  int
	unsynced   int
	needRepair bool // a failed append may have left torn bytes
	closed     bool

	snapshots    int64
	snapshotErrs int64

	// WAL timing histograms; nil (and therefore free) without Options.Metrics.
	appendHist *telemetry.Histogram
	fsyncHist  *telemetry.Histogram
	snapHist   *telemetry.Histogram
}

// Open replays the directory's snapshot and WAL segments and returns a
// store ready to append. Torn tails on the last segment are truncated;
// any other damage is a typed error (ErrCorrupt / ErrCorruptSnapshot).
func Open(fsys vfs.FS, opt Options) (*Durable, error) {
	if opt.DriftWindow == 0 {
		opt.DriftWindow = 256
	}
	if opt.SnapshotEvery == 0 {
		opt.SnapshotEvery = DefaultSnapshotEvery
	}
	d := &Durable{fs: fsys, opt: opt, st: newState(opt.DriftWindow)}

	names, err := fsys.List()
	if err != nil {
		return nil, err
	}
	var segs []uint64
	haveSnap := false
	for _, name := range names {
		if base, ok := parseSegmentName(name); ok {
			segs = append(segs, base)
		}
		if name == snapName {
			haveSnap = true
		}
		if name == snapTmpName {
			// A snapshot that never completed; the rename never happened,
			// so it covers nothing. Clean it up, best effort.
			_ = fsys.Remove(name)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })

	if haveSnap {
		b, err := fsys.ReadFile(snapName)
		if err != nil {
			return nil, err
		}
		snap, err := decodeSnapshot(b)
		if err != nil {
			return nil, err
		}
		// A restart may shrink the drift window; re-trim so recovered
		// logs obey the window the trackers will run under.
		for i := range snap.tables {
			snap.tables[i].Log = trimLog(snap.tables[i].Log, opt.DriftWindow)
		}
		d.st.seed(snap.tables, snap.nextOrder)
		d.snapSeq = snap.lastSeq
		d.report.SnapshotSeq = snap.lastSeq
	}
	d.lastSeq = d.snapSeq

	expected := d.snapSeq + 1
	skippedBefore := d.st.skipped
	for i, base := range segs {
		name := segmentName(base)
		data, err := fsys.ReadFile(name)
		if err != nil {
			return nil, err
		}
		scan := scanSegment(data)
		last := i == len(segs)-1
		if scan.torn && !last {
			return nil, fmt.Errorf("%w: segment %s has %d trailing bytes but is not the last segment",
				ErrCorrupt, name, int64(len(data))-scan.validLen)
		}
		for _, rec := range scan.records {
			switch {
			case rec.seq < expected:
				d.report.SkippedOld++
				continue
			case rec.seq > expected:
				return nil, fmt.Errorf("%w: segment %s skips from seq %d to %d",
					ErrCorrupt, name, expected-1, rec.seq)
			}
			ev, err := decodeEvent(rec.payload)
			if err != nil {
				return nil, fmt.Errorf("seq %d: %w", rec.seq, err)
			}
			d.st.apply(ev)
			d.report.Records++
			d.lastSeq = rec.seq
			expected++
		}
		d.report.Segments++
		if last {
			d.report.TornBytes = int64(len(data)) - scan.validLen
			// Reopen the tail segment for appending, repairing the torn
			// tail so the next record starts at a clean boundary.
			f, err := fsys.Open(name)
			if err != nil {
				return nil, err
			}
			if scan.torn {
				if err := f.Truncate(scan.validLen); err != nil {
					f.Close()
					return nil, err
				}
			}
			d.seg, d.segName, d.segEnd = f, name, scan.validLen
		}
	}
	d.report.SkippedUnknown = d.st.skipped - skippedBefore
	d.recovered = d.st.export()
	d.report.Tables = len(d.recovered)
	d.bindMetrics(opt.Metrics)
	return d, nil
}

// bindMetrics registers the store's histograms and gauges on reg; a nil reg
// leaves every handle nil, and the nil-safe metric methods make the
// instrumentation points free.
func (d *Durable) bindMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.SetHelp("knives_wal_append_seconds", "WAL group-commit latency: frame build through fold, including any fsync.")
	reg.SetHelp("knives_wal_fsync_seconds", "WAL fsync latency (only appends that actually synced per SyncEvery).")
	reg.SetHelp("knives_wal_snapshot_seconds", "Snapshot + WAL truncation latency.")
	d.appendHist = reg.Histogram("knives_wal_append_seconds")
	d.fsyncHist = reg.Histogram("knives_wal_fsync_seconds")
	d.snapHist = reg.Histogram("knives_wal_snapshot_seconds")
	reg.GaugeFunc("knives_wal_last_seq", func() float64 { return float64(d.LastSeq()) })
	reg.CounterFunc("knives_wal_snapshots_total", func() int64 { n, _ := d.Snapshots(); return n })
	reg.CounterFunc("knives_wal_snapshot_errors_total", func() int64 { _, e := d.Snapshots(); return e })
	rep := d.report
	reg.GaugeFunc("knives_recovery_snapshot_seq", func() float64 { return float64(rep.SnapshotSeq) })
	reg.GaugeFunc("knives_recovery_segments", func() float64 { return float64(rep.Segments) })
	reg.GaugeFunc("knives_recovery_records", func() float64 { return float64(rep.Records) })
	reg.GaugeFunc("knives_recovery_torn_bytes", func() float64 { return float64(rep.TornBytes) })
	reg.GaugeFunc("knives_recovery_skipped_old", func() float64 { return float64(rep.SkippedOld) })
	reg.GaugeFunc("knives_recovery_skipped_unknown", func() float64 { return float64(rep.SkippedUnknown) })
	reg.GaugeFunc("knives_recovery_tables", func() float64 { return float64(rep.Tables) })
}

func (d *Durable) Journaling() bool { return true }

// Recovered returns the state replayed at open (read-only).
func (d *Durable) Recovered() []TableState { return d.recovered }

// Report returns what Open found.
func (d *Durable) Report() RecoveryReport { return d.report }

// LastSeq returns the last durably appended sequence number.
func (d *Durable) LastSeq() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lastSeq
}

// Snapshots returns (taken, failed) automatic+explicit snapshot counts.
func (d *Durable) Snapshots() (int64, int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.snapshots, d.snapshotErrs
}

// Export returns the current folded state — what a crash right now would
// recover to, given every acknowledged append.
func (d *Durable) Export() []TableState {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.st.export()
}

// ensureSegmentLocked makes the active segment appendable: recreates it
// after a failed rotation, truncates torn bytes a failed append left.
func (d *Durable) ensureSegmentLocked() error {
	if d.seg == nil {
		name := segmentName(d.lastSeq + 1)
		f, err := d.fs.Create(name)
		if err != nil {
			return err
		}
		if err := d.fs.SyncDir(); err != nil {
			f.Close()
			return err
		}
		d.seg, d.segName, d.segEnd = f, name, 0
		d.needRepair = false
		return nil
	}
	if d.needRepair {
		if err := d.seg.Truncate(d.segEnd); err != nil {
			return err
		}
		d.needRepair = false
	}
	return nil
}

// Append journals one event: framed, written in a single call, fsynced
// (per SyncEvery), then folded into the store's state. On any failure the
// event is NOT applied and the WAL is repaired before the next attempt —
// so a caller that journals before mutating can simply retry.
func (d *Durable) Append(ev Event) error {
	return d.appendGroup([]Event{ev})
}

// AppendBatch journals a group of events as one commit: every frame lands
// in a single write and the group costs at most one fsync, however many
// events it carries. On any failure none of the events are applied and
// the WAL is repaired to the last valid boundary before the next attempt,
// so a prefix of the group never leaks into the folded state — though it
// may survive on disk and replay after a crash, exactly like a single
// unacknowledged Append.
func (d *Durable) AppendBatch(evs []Event) error {
	if len(evs) == 0 {
		return nil
	}
	return d.appendGroup(evs)
}

func (d *Durable) appendGroup(evs []Event) error {
	t0 := time.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if err := d.ensureSegmentLocked(); err != nil {
		return err
	}
	first := d.lastSeq + 1
	var frame []byte
	for i, ev := range evs {
		frame = appendRecord(frame, first+uint64(i), ev.encode())
	}
	if _, err := d.seg.Write(frame); err != nil {
		// The write may have torn: repair to the last valid boundary
		// before anything else lands.
		d.needRepair = true
		return fmt.Errorf("statestore: append seq %d..%d: %w", first, first+uint64(len(evs))-1, err)
	}
	d.unsynced += len(evs)
	if d.opt.SyncEvery <= 1 || d.unsynced >= d.opt.SyncEvery {
		tSync := time.Now()
		err := d.seg.Sync()
		d.fsyncHist.Since(tSync)
		if err != nil {
			// Not durable: discard the records (truncate on next attempt)
			// and report failure; the caller retries.
			d.needRepair = true
			return fmt.Errorf("statestore: sync seq %d..%d: %w", first, first+uint64(len(evs))-1, err)
		}
		d.unsynced = 0
	}
	d.segEnd += int64(len(frame))
	d.lastSeq = first + uint64(len(evs)) - 1
	for _, ev := range evs {
		d.st.apply(ev)
	}
	d.sinceSnap += len(evs)
	if d.opt.SnapshotEvery > 0 && d.sinceSnap >= d.opt.SnapshotEvery {
		// The records are durable; a failed automatic snapshot must not
		// fail the append. It is retried at the next cadence.
		if err := d.snapshotLocked(); err != nil {
			d.snapshotErrs++
		}
		d.sinceSnap = 0
	}
	d.appendHist.Since(t0)
	return nil
}

// Snapshot persists the current folded state and truncates the WAL.
func (d *Durable) Snapshot() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if err := d.snapshotLocked(); err != nil {
		d.snapshotErrs++
		return err
	}
	d.sinceSnap = 0
	return nil
}

// snapshotLocked: rotate the WAL, write the snapshot atomically, drop the
// segments it covers. Every crash window leaves a recoverable directory:
// before the rename the old snapshot + all segments replay; after it the
// new snapshot skips old records by sequence.
func (d *Durable) snapshotLocked() error {
	t0 := time.Now()
	defer d.snapHist.Since(t0)
	data := encodeSnapshot(snapshotData{
		lastSeq:   d.lastSeq,
		window:    int64(d.opt.DriftWindow),
		nextOrder: d.st.nextOrder,
		tables:    d.st.export(),
	})
	// Rotate so the active segment holds only post-snapshot records and
	// older segments become droppable. An empty active segment already is
	// the rotation.
	if d.seg != nil && d.segEnd > 0 {
		syncErr := d.seg.Sync()
		closeErr := d.seg.Close()
		d.seg = nil
		if syncErr != nil {
			return syncErr
		}
		if closeErr != nil {
			return closeErr
		}
	}
	if err := d.ensureSegmentLocked(); err != nil {
		return err
	}

	tmp, err := d.fs.Create(snapTmpName)
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := d.fs.Rename(snapTmpName, snapName); err != nil {
		return err
	}
	if err := d.fs.SyncDir(); err != nil {
		return err
	}
	d.snapSeq = d.lastSeq
	d.snapshots++

	// The snapshot is live; every non-active segment's records are at or
	// below snapSeq. Removal is cleanup, not correctness — a failure here
	// is retried by the next snapshot.
	names, err := d.fs.List()
	if err != nil {
		return nil
	}
	for _, name := range names {
		if _, ok := parseSegmentName(name); ok && name != d.segName {
			_ = d.fs.Remove(name)
		}
	}
	_ = d.fs.SyncDir()
	return nil
}

// Close fsyncs and releases the WAL. The store is unusable afterwards.
func (d *Durable) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	if d.seg == nil {
		return nil
	}
	syncErr := d.seg.Sync()
	closeErr := d.seg.Close()
	d.seg = nil
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
