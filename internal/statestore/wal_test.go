package statestore

import (
	"bytes"
	"errors"
	"testing"

	"knives/internal/vfs"
)

// buildSegment frames events into one segment image, seq starting at base.
func buildSegment(base uint64, evs []Event) []byte {
	var buf []byte
	for i, ev := range evs {
		buf = appendRecord(buf, base+uint64(i), ev.encode())
	}
	return buf
}

func TestScanSegmentRoundTrip(t *testing.T) {
	evs := testEvents(20)
	data := buildSegment(1, evs)
	scan := scanSegment(data)
	if scan.torn || scan.validLen != int64(len(data)) {
		t.Fatalf("clean segment reported torn=%v validLen=%d (len %d)", scan.torn, scan.validLen, len(data))
	}
	if len(scan.records) != len(evs) {
		t.Fatalf("records = %d, want %d", len(scan.records), len(evs))
	}
	for i, rec := range scan.records {
		if rec.seq != uint64(i+1) {
			t.Fatalf("record %d seq = %d", i, rec.seq)
		}
		if !bytes.Equal(rec.payload, evs[i].encode()) {
			t.Fatalf("record %d payload mismatch", i)
		}
	}
}

// TestScanSegmentTornTail truncates a segment at EVERY byte offset: the
// scan must recover exactly the records whose frames fit, and report the
// remainder torn.
func TestScanSegmentTornTail(t *testing.T) {
	evs := testEvents(8)
	data := buildSegment(1, evs)
	// Frame boundaries, for deciding how many records survive a cut.
	bounds := []int{0}
	for i := range evs {
		bounds = append(bounds, len(buildSegment(1, evs[:i+1])))
	}
	for cut := 0; cut <= len(data); cut++ {
		scan := scanSegment(data[:cut])
		wantRecords := 0
		for _, b := range bounds {
			if b <= cut {
				wantRecords++
			}
		}
		wantRecords-- // bounds[0]=0 always fits
		if len(scan.records) != wantRecords {
			t.Fatalf("cut %d: records = %d, want %d", cut, len(scan.records), wantRecords)
		}
		if scan.validLen != int64(bounds[wantRecords]) {
			t.Fatalf("cut %d: validLen = %d, want %d", cut, scan.validLen, bounds[wantRecords])
		}
		atBoundary := cut == bounds[wantRecords]
		if scan.torn == atBoundary {
			t.Fatalf("cut %d: torn = %v at boundary=%v", cut, scan.torn, atBoundary)
		}
	}
}

// TestScanSegmentBitFlips flips each byte of a record mid-segment: the CRC
// must stop the scan at the damaged frame, keeping the clean prefix.
func TestScanSegmentBitFlips(t *testing.T) {
	evs := testEvents(5)
	data := buildSegment(1, evs)
	prefix := len(buildSegment(1, evs[:2]))
	frameEnd := len(buildSegment(1, evs[:3]))
	for off := prefix; off < frameEnd; off++ {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x01
		scan := scanSegment(mut)
		// The two intact leading records always survive; the damaged third
		// must not be returned as valid with its original content.
		if len(scan.records) < 2 {
			t.Fatalf("flip at %d lost intact records (%d)", off, len(scan.records))
		}
		if len(scan.records) > 2 && bytes.Equal(scan.records[2].payload, evs[2].encode()) &&
			scan.records[2].seq == 3 {
			// A flip that leaves the frame CRC-consistent AND the payload
			// identical is impossible for a single-bit flip.
			t.Fatalf("flip at %d silently kept the damaged record", off)
		}
	}
}

func TestSegmentNameRoundTrip(t *testing.T) {
	for _, base := range []uint64{1, 255, 1 << 40, ^uint64(0)} {
		name := segmentName(base)
		got, ok := parseSegmentName(name)
		if !ok || got != base {
			t.Errorf("parse(%q) = %d,%v", name, got, ok)
		}
	}
	for _, bad := range []string{
		"", "wal-.log", "wal-xyz.log", "wal-0001.log", "snapshot.db",
		"wal-00000000000000001.log", "wal-000000000000000g.log",
		"wal-0000000000000001.log.tmp",
	} {
		if _, ok := parseSegmentName(bad); ok {
			t.Errorf("parse(%q) accepted a non-segment name", bad)
		}
	}
}

// FuzzWALReplay: an arbitrary byte string as the store's only WAL segment
// must either open cleanly — recovering exactly the fold of the valid
// record prefix — or fail with a typed error. Never a panic, never silently
// wrong state.
func FuzzWALReplay(f *testing.F) {
	evs := testEvents(10)
	clean := buildSegment(1, evs)
	f.Add(clean)
	f.Add(clean[:len(clean)-3])
	f.Add([]byte{})
	mut := append([]byte(nil), clean...)
	mut[len(mut)/2] ^= 0x40
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		fsys, err := vfs.Dir(dir)
		if err != nil {
			t.Fatal(err)
		}
		seg, err := fsys.Create(segmentName(1))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := seg.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := seg.Close(); err != nil {
			t.Fatal(err)
		}

		d, err := Open(fsys, Options{DriftWindow: 16})
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrCorruptSnapshot) {
				t.Fatalf("untyped recovery error: %v", err)
			}
			return
		}
		defer d.Close()
		// Recovery must equal the fold of the decodable valid prefix,
		// mirroring Open's sequence rules (sub-snapshot seqs skip, gaps
		// would have failed the open).
		var prefix []Event
		expected := uint64(1)
		for _, rec := range scanSegment(data).records {
			if rec.seq < expected {
				continue
			}
			if rec.seq > expected {
				break
			}
			ev, err := decodeEvent(rec.payload)
			if err != nil {
				break
			}
			prefix = append(prefix, ev)
			expected++
		}
		got := MarshalStates(d.Recovered())
		want := MarshalStates(Oracle(prefix, 16))
		if !bytes.Equal(got, want) {
			t.Fatalf("recovered state diverges from the valid-prefix fold")
		}
	})
}
