package statestore

import (
	"encoding/binary"
	"fmt"
	"math"
)

// EventType enumerates the journaled state mutations.
type EventType uint8

const (
	// EvAdviseCommit registers a table (or re-registers it with a new
	// workload/model): the tracker's advice, applied layout, and
	// observation log all reset to the committed registration.
	EvAdviseCommit EventType = 1
	// EvObserve appends a validated observation batch to a table's log.
	EvObserve EventType = 2
	// EvRecompute installs drift-recomputed advice: the tracked advice
	// moves, the registration fingerprint re-keys to the observed
	// snapshot, and the recompute counter advances. The applied layout is
	// untouched — drift changes what the service advises, not what the
	// store physically holds.
	EvRecompute EventType = 3
	// EvApplied marks the tracked advice as physically applied (a
	// verified migration): compare-and-set against the registration
	// fingerprint, exactly like the tracker's MarkApplied.
	EvApplied EventType = 4
	// EvReset removes a table's tracker state (capacity eviction).
	EvReset EventType = 5
)

// String names an event type.
func (t EventType) String() string {
	switch t {
	case EvAdviseCommit:
		return "advise-commit"
	case EvObserve:
		return "observe"
	case EvRecompute:
		return "recompute"
	case EvApplied:
		return "layout-applied"
	case EvReset:
		return "tracker-reset"
	}
	return fmt.Sprintf("event(%d)", uint8(t))
}

// FPSize is the byte width of a workload fingerprint (sha256).
const FPSize = 32

// ColumnRec is one column of a journaled table schema.
type ColumnRec struct {
	Name string
	Kind uint8
	Size int64
}

// TableRec is a journaled table schema: everything needed to rebuild the
// schema.Table a tracker prices against.
type TableRec struct {
	Name    string
	Rows    int64
	Columns []ColumnRec
}

// QueryRec is one journaled query: weight and attribute bitmask (IDs ride
// along so a rebuilt log is bit-equal to the live one).
type QueryRec struct {
	ID     string
	Weight float64
	Attrs  uint64
}

// AlgoCost is one algorithm's cost in an advice record, kept as a sorted
// slice so encoding is deterministic.
type AlgoCost struct {
	Name string
	Cost float64
}

// AdviceRec is a journaled layout recommendation.
type AdviceRec struct {
	Algorithm    string
	Parts        []uint64 // layout partitions as attribute bitmasks
	Cost         float64
	RowCost      float64
	ColumnCost   float64
	PerAlgorithm []AlgoCost // sorted by name
}

// Event is one journaled state mutation. Which fields are meaningful
// depends on Type; the encoder writes only those.
type Event struct {
	Type  EventType
	Table string

	// EvAdviseCommit:
	Schema   TableRec
	ModelKey string
	// EvAdviseCommit (registration workload) and EvObserve (batch):
	Queries []QueryRec
	// EvAdviseCommit and EvRecompute:
	Advice AdviceRec
	// EvAdviseCommit (registration fingerprint), EvRecompute (the
	// observed snapshot's fingerprint the tracker re-keys to), EvApplied
	// (the CAS expectation).
	FP [FPSize]byte
	// EvRecompute: the tracker's observed count at install time.
	AdvObserved int64
}

// Decode limits: a CRC-valid frame with an absurd count must fail typed,
// not allocate unbounded memory.
const (
	maxStrLen  = 1 << 16
	maxQueries = 1 << 20
	maxColumns = 1 << 10
	maxParts   = 1 << 10
	maxAlgos   = 1 << 10
)

// enc is a little-endian append-only encoder.
type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }
func (e *enc) f64(v float64) {
	e.u64(math.Float64bits(v))
}
func (e *enc) str(s string) {
	e.u64(uint64(len(s)))
	e.b = append(e.b, s...)
}

// dec is a bounds-checked little-endian decoder; the first failure latches.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
	}
}

func (d *dec) u8() uint8 {
	if d.err != nil {
		return 0
	}
	if d.off+1 > len(d.b) {
		d.fail("truncated byte at %d", d.off)
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.b) {
		d.fail("truncated u64 at %d", d.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) i64() int64   { return int64(d.u64()) }
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *dec) str() string {
	n := d.u64()
	if d.err != nil {
		return ""
	}
	if n > maxStrLen {
		d.fail("string of %d bytes exceeds limit", n)
		return ""
	}
	if d.off+int(n) > len(d.b) {
		d.fail("truncated string at %d", d.off)
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// count reads a length prefix with a limit.
func (d *dec) count(limit uint64, what string) int {
	n := d.u64()
	if d.err != nil {
		return 0
	}
	if n > limit {
		d.fail("%d %s exceeds limit %d", n, what, limit)
		return 0
	}
	return int(n)
}

func encodeQueries(e *enc, qs []QueryRec) {
	e.u64(uint64(len(qs)))
	for _, q := range qs {
		e.str(q.ID)
		e.f64(q.Weight)
		e.u64(q.Attrs)
	}
}

func decodeQueries(d *dec) []QueryRec {
	n := d.count(maxQueries, "queries")
	if d.err != nil || n == 0 {
		return nil
	}
	qs := make([]QueryRec, 0, min(n, 4096))
	for i := 0; i < n && d.err == nil; i++ {
		qs = append(qs, QueryRec{ID: d.str(), Weight: d.f64(), Attrs: d.u64()})
	}
	return qs
}

func encodeTable(e *enc, t TableRec) {
	e.str(t.Name)
	e.i64(t.Rows)
	e.u64(uint64(len(t.Columns)))
	for _, c := range t.Columns {
		e.str(c.Name)
		e.u8(c.Kind)
		e.i64(c.Size)
	}
}

func decodeTable(d *dec) TableRec {
	t := TableRec{Name: d.str(), Rows: d.i64()}
	n := d.count(maxColumns, "columns")
	for i := 0; i < n && d.err == nil; i++ {
		t.Columns = append(t.Columns, ColumnRec{Name: d.str(), Kind: d.u8(), Size: d.i64()})
	}
	return t
}

func encodeAdvice(e *enc, a AdviceRec) {
	e.str(a.Algorithm)
	e.u64(uint64(len(a.Parts)))
	for _, p := range a.Parts {
		e.u64(p)
	}
	e.f64(a.Cost)
	e.f64(a.RowCost)
	e.f64(a.ColumnCost)
	e.u64(uint64(len(a.PerAlgorithm)))
	for _, ac := range a.PerAlgorithm {
		e.str(ac.Name)
		e.f64(ac.Cost)
	}
}

func decodeAdvice(d *dec) AdviceRec {
	a := AdviceRec{Algorithm: d.str()}
	n := d.count(maxParts, "parts")
	for i := 0; i < n && d.err == nil; i++ {
		a.Parts = append(a.Parts, d.u64())
	}
	a.Cost, a.RowCost, a.ColumnCost = d.f64(), d.f64(), d.f64()
	n = d.count(maxAlgos, "algorithms")
	for i := 0; i < n && d.err == nil; i++ {
		a.PerAlgorithm = append(a.PerAlgorithm, AlgoCost{Name: d.str(), Cost: d.f64()})
	}
	return a
}

// encode renders an event payload (type byte first, self-contained).
func (ev Event) encode() []byte {
	e := &enc{b: make([]byte, 0, 128)}
	e.u8(uint8(ev.Type))
	e.str(ev.Table)
	switch ev.Type {
	case EvAdviseCommit:
		encodeTable(e, ev.Schema)
		e.str(ev.ModelKey)
		encodeQueries(e, ev.Queries)
		encodeAdvice(e, ev.Advice)
		e.b = append(e.b, ev.FP[:]...)
	case EvObserve:
		encodeQueries(e, ev.Queries)
	case EvRecompute:
		encodeAdvice(e, ev.Advice)
		e.b = append(e.b, ev.FP[:]...)
		e.i64(ev.AdvObserved)
	case EvApplied:
		e.b = append(e.b, ev.FP[:]...)
	case EvReset:
		// Table name only.
	}
	return e.b
}

// decodeEvent parses an event payload. Trailing garbage after a valid
// event body is corruption: a CRC-matched frame must decode exactly.
func decodeEvent(payload []byte) (Event, error) {
	d := &dec{b: payload}
	ev := Event{Type: EventType(d.u8()), Table: d.str()}
	switch ev.Type {
	case EvAdviseCommit:
		ev.Schema = decodeTable(d)
		ev.ModelKey = d.str()
		ev.Queries = decodeQueries(d)
		ev.Advice = decodeAdvice(d)
		d.fp(&ev.FP)
	case EvObserve:
		ev.Queries = decodeQueries(d)
	case EvRecompute:
		ev.Advice = decodeAdvice(d)
		d.fp(&ev.FP)
		ev.AdvObserved = d.i64()
	case EvApplied:
		d.fp(&ev.FP)
	case EvReset:
	default:
		d.fail("unknown event type %d", uint8(ev.Type))
	}
	if d.err != nil {
		return Event{}, d.err
	}
	if d.off != len(payload) {
		return Event{}, fmt.Errorf("%w: %d trailing bytes after %s event",
			ErrCorrupt, len(payload)-d.off, ev.Type)
	}
	return ev, nil
}

// fp reads a fingerprint.
func (d *dec) fp(out *[FPSize]byte) {
	if d.err != nil {
		return
	}
	if d.off+FPSize > len(d.b) {
		d.fail("truncated fingerprint at %d", d.off)
		return
	}
	copy(out[:], d.b[d.off:])
	d.off += FPSize
}
