package statestore

import (
	"bytes"
	"testing"
)

func TestFoldAdviseCommitRegistersAndResets(t *testing.T) {
	st := newState(16)
	st.apply(Event{Type: EvAdviseCommit, Table: "t", Schema: testSchema("t"),
		ModelKey: "hdd", Queries: []QueryRec{{ID: "q1", Weight: 2, Attrs: 3}},
		Advice: testAdvice(1), FP: testFP(1)})
	st.apply(Event{Type: EvObserve, Table: "t", Queries: []QueryRec{{ID: "q2", Weight: 1, Attrs: 5}}})
	st.apply(Event{Type: EvRecompute, Table: "t", Advice: testAdvice(2), FP: testFP(2), AdvObserved: 1})

	out := st.export()
	if len(out) != 1 {
		t.Fatalf("tables = %d, want 1", len(out))
	}
	ts := out[0]
	if ts.Observed != 1 || ts.Recomputes != 1 || ts.AdvObserved != 1 {
		t.Errorf("counters = %d/%d/%d, want 1/1/1", ts.Observed, ts.Recomputes, ts.AdvObserved)
	}
	if ts.RegFP != testFP(2) || ts.AppliedFP != testFP(1) {
		t.Errorf("fingerprints did not track the recompute")
	}
	if len(ts.Log) != 2 {
		t.Errorf("log = %d entries, want 2", len(ts.Log))
	}

	// Re-registration wipes everything back to the new commit.
	st.apply(Event{Type: EvAdviseCommit, Table: "t", Schema: testSchema("t"),
		ModelKey: "ssd", Queries: []QueryRec{{ID: "q9", Weight: 1, Attrs: 1}},
		Advice: testAdvice(3), FP: testFP(3)})
	ts = st.export()[0]
	if ts.Observed != 0 || ts.Recomputes != 0 || ts.AdvObserved != 0 {
		t.Errorf("re-registration kept counters %d/%d/%d", ts.Observed, ts.Recomputes, ts.AdvObserved)
	}
	if ts.ModelKey != "ssd" || len(ts.Log) != 1 || ts.RegFP != testFP(3) || ts.AppliedFP != testFP(3) {
		t.Errorf("re-registration did not reset to the new commit: %+v", ts)
	}
	if ts.Order != 0 {
		t.Errorf("re-registration moved the order slot to %d", ts.Order)
	}
}

func TestFoldResetThenReRegisterGetsNewOrder(t *testing.T) {
	st := newState(16)
	commit := func(name string, tag int) {
		st.apply(Event{Type: EvAdviseCommit, Table: name, Schema: testSchema(name),
			ModelKey: "hdd", Advice: testAdvice(tag), FP: testFP(tag)})
	}
	commit("a", 1)
	commit("b", 2)
	st.apply(Event{Type: EvReset, Table: "a"})
	commit("a", 3)
	out := st.export()
	if len(out) != 2 {
		t.Fatalf("tables = %d, want 2", len(out))
	}
	// "b" kept slot 1; re-registered "a" got a fresh, later slot — the
	// FIFO eviction order the service preserves.
	if out[0].Table.Name != "b" || out[1].Table.Name != "a" {
		t.Errorf("order = [%s %s], want [b a]", out[0].Table.Name, out[1].Table.Name)
	}
	if out[1].Order <= out[0].Order {
		t.Errorf("re-registered table order %d not after survivor %d", out[1].Order, out[0].Order)
	}
}

func TestFoldObserveTrimsToWindow(t *testing.T) {
	st := newState(3)
	st.apply(Event{Type: EvAdviseCommit, Table: "t", Schema: testSchema("t"),
		Queries: []QueryRec{{ID: "q0", Weight: 1}}, Advice: testAdvice(0), FP: testFP(0)})
	for i := 1; i <= 5; i++ {
		st.apply(Event{Type: EvObserve, Table: "t",
			Queries: []QueryRec{{ID: "q" + string(rune('0'+i)), Weight: 1}}})
	}
	ts := st.export()[0]
	if len(ts.Log) != 3 {
		t.Fatalf("log = %d entries, want window 3", len(ts.Log))
	}
	if ts.Log[0].ID != "q3" || ts.Log[2].ID != "q5" {
		t.Errorf("log kept %s..%s, want the newest window q3..q5", ts.Log[0].ID, ts.Log[2].ID)
	}
	if ts.Observed != 5 {
		t.Errorf("observed = %d, want 5 (trim must not reduce the counter)", ts.Observed)
	}
}

func TestFoldUnknownTableSkips(t *testing.T) {
	st := newState(16)
	st.apply(Event{Type: EvObserve, Table: "ghost", Queries: []QueryRec{{ID: "q", Weight: 1}}})
	st.apply(Event{Type: EvRecompute, Table: "ghost", Advice: testAdvice(1), FP: testFP(1)})
	st.apply(Event{Type: EvApplied, Table: "ghost", FP: testFP(1)})
	if len(st.tables) != 0 {
		t.Fatalf("unknown-table events created state")
	}
	if st.skipped != 3 {
		t.Errorf("skipped = %d, want 3", st.skipped)
	}
}

func TestFoldAppliedCAS(t *testing.T) {
	st := newState(16)
	st.apply(Event{Type: EvAdviseCommit, Table: "t", Schema: testSchema("t"),
		Advice: testAdvice(1), FP: testFP(1)})
	st.apply(Event{Type: EvRecompute, Table: "t", Advice: testAdvice(2), FP: testFP(2), AdvObserved: 0})

	// Stale fingerprint: the CAS must not move the applied layout.
	st.apply(Event{Type: EvApplied, Table: "t", FP: testFP(1)})
	ts := st.export()[0]
	if ts.AppliedFP != testFP(1) || ts.Applied.Cost == ts.Advice.Cost {
		t.Fatalf("stale EvApplied moved the applied layout")
	}
	// Live fingerprint: applied catches up to the advice.
	st.apply(Event{Type: EvApplied, Table: "t", FP: testFP(2)})
	ts = st.export()[0]
	if ts.AppliedFP != testFP(2) || ts.Applied.Cost != ts.Advice.Cost {
		t.Fatalf("live EvApplied did not install the advice")
	}
}

func TestOracleDeterministicAndSensitive(t *testing.T) {
	evs := testEvents(200)
	a := MarshalStates(Oracle(evs, 32))
	b := MarshalStates(Oracle(evs, 32))
	if !bytes.Equal(a, b) {
		t.Fatalf("same stream folded to different bytes")
	}
	extra := Event{Type: EvAdviseCommit, Table: "fresh", Schema: testSchema("fresh"),
		Advice: testAdvice(999), FP: testFP(999)}
	if bytes.Equal(a, MarshalStates(Oracle(append(append([]Event{}, evs...), extra), 32))) {
		t.Fatalf("appending a registration did not change the fold")
	}
	if bytes.Equal(a, MarshalStates(Oracle(evs, 8))) {
		t.Fatalf("changing the window did not change the fold")
	}
}

func TestExportDeepCopies(t *testing.T) {
	st := newState(16)
	st.apply(Event{Type: EvAdviseCommit, Table: "t", Schema: testSchema("t"),
		Queries: []QueryRec{{ID: "q", Weight: 1}}, Advice: testAdvice(1), FP: testFP(1)})
	out := st.export()
	out[0].Log[0].ID = "mutated"
	out[0].Advice.Parts[0] = 0xFFFF
	out[0].Table.Columns[0].Name = "mutated"
	again := st.export()[0]
	if again.Log[0].ID == "mutated" || again.Advice.Parts[0] == 0xFFFF || again.Table.Columns[0].Name == "mutated" {
		t.Fatalf("export aliases internal state")
	}
}
