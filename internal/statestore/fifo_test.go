package statestore

import (
	"reflect"
	"testing"
)

func TestFIFOEvictsOldestFirst(t *testing.T) {
	f := NewFIFO[string, int](3)
	for i, k := range []string{"a", "b", "c"} {
		if ev := f.Insert(k, i); ev != nil {
			t.Fatalf("insert %s evicted %v under capacity", k, ev)
		}
	}
	if ev := f.Insert("d", 3); !reflect.DeepEqual(ev, []string{"a"}) {
		t.Fatalf("evicted %v, want [a]", ev)
	}
	if _, ok := f.Get("a"); ok {
		t.Fatal("evicted key still live")
	}
	if v, ok := f.Get("d"); !ok || v != 3 {
		t.Fatalf("Get(d) = %d,%v", v, ok)
	}
	if got := f.Keys(); !reflect.DeepEqual(got, []string{"b", "c", "d"}) {
		t.Fatalf("keys = %v", got)
	}
}

func TestFIFOReinsertKeepsOrderSlot(t *testing.T) {
	f := NewFIFO[string, int](3)
	f.Insert("a", 0)
	f.Insert("b", 1)
	f.Insert("a", 99) // refresh, not re-append
	f.Insert("c", 2)
	if ev := f.Insert("d", 3); !reflect.DeepEqual(ev, []string{"a"}) {
		t.Fatalf("evicted %v, want [a] — the refreshed key kept its old slot", ev)
	}
	if v, _ := f.Get("b"); v != 1 {
		t.Fatalf("b = %d", v)
	}
}

func TestFIFONeverEvictsJustInserted(t *testing.T) {
	f := NewFIFO[string, int](1)
	f.Insert("a", 0)
	if ev := f.Insert("b", 1); !reflect.DeepEqual(ev, []string{"a"}) {
		t.Fatalf("evicted %v", ev)
	}
	if f.Len() != 1 {
		t.Fatalf("len = %d", f.Len())
	}
	if _, ok := f.Get("b"); !ok {
		t.Fatal("just-inserted key was evicted")
	}
}

func TestFIFODropAndDropFunc(t *testing.T) {
	f := NewFIFO[int, string](0) // unbounded
	for i := 0; i < 6; i++ {
		f.Insert(i, "v")
	}
	f.Drop(2)
	f.Drop(42) // absent: no-op
	f.DropFunc(func(k int) bool { return k%2 == 1 })
	if got := f.Keys(); !reflect.DeepEqual(got, []int{0, 4}) {
		t.Fatalf("keys = %v, want [0 4]", got)
	}
	if f.Len() != 2 {
		t.Fatalf("len = %d", f.Len())
	}
	// The invariant survived: a new insert + evictions behave.
	f2 := NewFIFO[int, string](2)
	f2.Insert(1, "a")
	f2.Insert(2, "b")
	f2.Drop(1)
	f2.Insert(3, "c")
	if ev := f2.Insert(4, "d"); !reflect.DeepEqual(ev, []int{2}) {
		t.Fatalf("evicted %v, want [2]", ev)
	}
}
