package statestore

import "sort"

// TableState is the durable state of one tracked table: what EvAdviseCommit
// through EvReset fold to, and what a restarted daemon rebuilds its drift
// tracker from. Field-for-field it mirrors the tracker's own durable
// fields; the caches and the pricing-model object are rebuilt, not stored.
type TableState struct {
	Table    TableRec
	ModelKey string
	// Log is the observation window (registration queries plus observed
	// batches, trimmed to the drift window).
	Log []QueryRec
	// Advice is what the service currently advises (moved by recomputes);
	// Applied is what the client's store physically holds (moved only by
	// verified migrations).
	Advice  AdviceRec
	Applied AdviceRec
	// RegFP keys the workload the tracker covers; AppliedFP the workload
	// the applied layout was advised for.
	RegFP     [FPSize]byte
	AppliedFP [FPSize]byte
	// Observed, Recomputes, AdvObserved are the tracker's counters.
	Observed    int64
	Recomputes  int64
	AdvObserved int64
	// Order is the registration order, oldest first — the FIFO eviction
	// order the service preserves across restarts.
	Order int64
}

// state folds an event stream into per-table durable state. It is the
// single implementation behind both the live append path (Durable folds
// every appended event so snapshots need no help from the advisor) and
// recovery (Open replays the snapshot + WAL through the same fold).
type state struct {
	window    int // drift window: max retained log length; <= 0 keeps all
	tables    map[string]*TableState
	nextOrder int64
	// skipped counts events for tables the fold does not know — legal
	// only in the eviction race (an observe journaled just after its
	// tracker's reset), where the live mutation landed on an orphaned,
	// unreachable tracker, so dropping it preserves equivalence.
	skipped int64
}

func newState(window int) *state {
	return &state{window: window, tables: make(map[string]*TableState)}
}

// trim drops the oldest log entries beyond the window — the tracker's rule,
// verbatim.
func trimLog(log []QueryRec, window int) []QueryRec {
	if window > 0 && len(log) > window {
		return append([]QueryRec(nil), log[len(log)-window:]...)
	}
	return log
}

// apply folds one event. It mirrors the tracker mutations exactly: see
// advisor's newTracker/setAdvice (EvAdviseCommit), observeLocked
// (EvObserve), the recompute install (EvRecompute), and MarkApplied
// (EvApplied).
func (st *state) apply(ev Event) {
	switch ev.Type {
	case EvAdviseCommit:
		ts, ok := st.tables[ev.Table]
		if !ok {
			ts = &TableState{Order: st.nextOrder}
			st.nextOrder++
			st.tables[ev.Table] = ts
		}
		// Re-registration keeps the original Order slot, like the
		// service's trackerOrder.
		ts.Table = ev.Schema
		ts.ModelKey = ev.ModelKey
		ts.Log = trimLog(append([]QueryRec(nil), ev.Queries...), st.window)
		ts.Advice = ev.Advice
		ts.Applied = ev.Advice
		ts.RegFP = ev.FP
		ts.AppliedFP = ev.FP
		ts.Observed = 0
		ts.Recomputes = 0
		ts.AdvObserved = 0
	case EvObserve:
		ts, ok := st.tables[ev.Table]
		if !ok {
			st.skipped++
			return
		}
		ts.Log = trimLog(append(ts.Log, ev.Queries...), st.window)
		ts.Observed += int64(len(ev.Queries))
	case EvRecompute:
		ts, ok := st.tables[ev.Table]
		if !ok {
			st.skipped++
			return
		}
		ts.Advice = ev.Advice
		ts.RegFP = ev.FP
		ts.AdvObserved = ev.AdvObserved
		ts.Recomputes++
	case EvApplied:
		ts, ok := st.tables[ev.Table]
		if !ok {
			st.skipped++
			return
		}
		if ts.RegFP == ev.FP {
			ts.Applied = ts.Advice
			ts.AppliedFP = ts.RegFP
		}
	case EvReset:
		delete(st.tables, ev.Table)
	}
}

// export returns deep copies of every table's state, registration order
// first — the shape trackers are rebuilt in, and the shape equivalence
// tests compare bit-for-bit.
func (st *state) export() []TableState {
	out := make([]TableState, 0, len(st.tables))
	for _, ts := range st.tables {
		cp := *ts
		cp.Log = append([]QueryRec(nil), ts.Log...)
		cp.Advice = copyAdvice(ts.Advice)
		cp.Applied = copyAdvice(ts.Applied)
		cp.Table = copyTable(ts.Table)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Order < out[j].Order })
	return out
}

func copyAdvice(a AdviceRec) AdviceRec {
	a.Parts = append([]uint64(nil), a.Parts...)
	a.PerAlgorithm = append([]AlgoCost(nil), a.PerAlgorithm...)
	return a
}

func copyTable(t TableRec) TableRec {
	t.Columns = append([]ColumnRec(nil), t.Columns...)
	return t
}

// seed loads a snapshot's exported state back into the fold.
func (st *state) seed(tables []TableState, nextOrder int64) {
	for i := range tables {
		ts := tables[i]
		cp := ts
		st.tables[ts.Table.Name] = &cp
	}
	st.nextOrder = nextOrder
}

// Oracle folds an event stream from scratch under the given drift window —
// the uninterrupted reference a crash-recovery run must match bit-for-bit.
func Oracle(events []Event, window int) []TableState {
	st := newState(window)
	for _, ev := range events {
		st.apply(ev)
	}
	return st.export()
}

// encodeState serializes one table's state (used by snapshots and by the
// bit-equality comparisons in tests).
func encodeState(e *enc, ts TableState) {
	encodeTable(e, ts.Table)
	e.str(ts.ModelKey)
	encodeQueries(e, ts.Log)
	encodeAdvice(e, ts.Advice)
	encodeAdvice(e, ts.Applied)
	e.b = append(e.b, ts.RegFP[:]...)
	e.b = append(e.b, ts.AppliedFP[:]...)
	e.i64(ts.Observed)
	e.i64(ts.Recomputes)
	e.i64(ts.AdvObserved)
	e.i64(ts.Order)
}

func decodeState(d *dec) TableState {
	ts := TableState{Table: decodeTable(d)}
	ts.ModelKey = d.str()
	ts.Log = decodeQueries(d)
	ts.Advice = decodeAdvice(d)
	ts.Applied = decodeAdvice(d)
	d.fp(&ts.RegFP)
	d.fp(&ts.AppliedFP)
	ts.Observed = d.i64()
	ts.Recomputes = d.i64()
	ts.AdvObserved = d.i64()
	ts.Order = d.i64()
	return ts
}

// MarshalStates serializes table states deterministically — the byte
// string two states must share to count as bit-equal.
func MarshalStates(tables []TableState) []byte {
	e := &enc{}
	e.u64(uint64(len(tables)))
	for _, ts := range tables {
		encodeState(e, ts)
	}
	return e.b
}
