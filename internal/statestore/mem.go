package statestore

// Mem is the in-memory reference store: the advisor's state lives only in
// its own maps and trackers, nothing is journaled, and a restart starts
// empty — exactly the daemon's behavior before durability existed. The
// service checks Journaling() and skips event construction entirely, so
// the hot path is byte-identical to the pre-statestore code.
type Mem struct{}

// NewMem returns the in-memory reference store.
func NewMem() *Mem { return &Mem{} }

func (*Mem) Journaling() bool          { return false }
func (*Mem) Append(Event) error        { return nil }
func (*Mem) AppendBatch([]Event) error { return nil }
func (*Mem) Recovered() []TableState   { return nil }
func (*Mem) Report() RecoveryReport    { return RecoveryReport{} }
func (*Mem) Snapshot() error           { return nil }
func (*Mem) Close() error              { return nil }
