// Package statestore owns the advisor service's mutable state: the bounded
// FIFO caches (advice, replay, migration outcomes) and the durable per-table
// tracker state (observation windows, current and applied layouts).
//
// Two implementations share one contract. Mem is the reference: pure
// in-memory maps, no journal, byte-identical to the service the daemon ran
// before durability existed. Durable adds a write-ahead log of state EVENTS
// — observe, advise-commit, layout-applied, tracker-reset — with CRC-framed
// records, periodic snapshot + truncation, and replay-on-restart that
// reconstructs the tracker state bit-equal to an uninterrupted run.
//
// Caches are deliberately NOT journaled: every cached answer is a pure
// function of a workload fingerprint and a device key, so a restart
// recomputes them on demand; journaling them would multiply WAL volume for
// state the daemon can rebuild from its own search kernel.
//
// The fold that turns an event stream into per-table state (fold.go) is the
// single source of truth for both the live append path and recovery, so the
// two cannot diverge: what Append applied yesterday is exactly what Open
// replays tomorrow.
package statestore

import "errors"

// Typed recovery errors. Torn WAL tails are NOT errors — they are what a
// crash mid-append leaves behind, and recovery truncates them to the last
// valid record. These errors report states a crash cannot legally produce.
var (
	// ErrCorrupt reports WAL damage beyond a torn tail: a framing or CRC
	// failure in a finalized (non-last) segment, a sequence gap, or a
	// CRC-valid record whose payload does not decode.
	ErrCorrupt = errors.New("statestore: corrupt WAL")
	// ErrCorruptSnapshot reports a snapshot file whose checksum or
	// structure is invalid. Snapshots are written to a temp file and
	// renamed into place, so a half-written snapshot never carries the
	// live name; a corrupt one means real damage.
	ErrCorruptSnapshot = errors.New("statestore: corrupt snapshot")
	// ErrClosed reports an operation on a closed store.
	ErrClosed = errors.New("statestore: store is closed")
)

// Store is the advisor's state persistence contract. All methods are safe
// for concurrent use.
//
// Append is called journal-first: the service appends the event BEFORE
// applying the mutation it describes, under the same lock that orders the
// mutation, so journal order equals apply order and a failed append leaves
// the in-memory state untouched (the client retries; nothing was lost).
type Store interface {
	// Journaling reports whether Append does anything. The service skips
	// building events entirely when it returns false, keeping the
	// in-memory hot path identical to the pre-durability daemon.
	Journaling() bool
	// Append journals one state event durably.
	Append(ev Event) error
	// AppendBatch journals many events as one group commit: all frames go
	// out in a single write and (subject to SyncEvery) a single fsync, so
	// an ingest group amortizes the durability cost that Append pays per
	// event. All-or-nothing at the caller's level: on error NONE of the
	// events count as journaled and none may be applied. A crash between
	// write and acknowledgment can still persist a prefix of the group —
	// the same in-doubt window a single unacknowledged Append has, and
	// legal under the service's at-least-once observe contract.
	AppendBatch(evs []Event) error
	// Recovered returns the per-table state replayed at open, in
	// registration order. Empty for a fresh or in-memory store.
	Recovered() []TableState
	// Report describes what recovery found at open — snapshot coverage,
	// segments scanned, records replayed, what was skipped or truncated.
	// The zero value for a fresh or in-memory store.
	Report() RecoveryReport
	// Snapshot compacts the journal: persists the current folded state
	// and truncates the WAL to the records after it.
	Snapshot() error
	// Close releases resources, fsyncing anything pending.
	Close() error
}
