package statestore

import (
	"bytes"
	"testing"

	"knives/internal/faultinject"
)

// chunk splits evs into batches of at most n.
func chunk(evs []Event, n int) [][]Event {
	var out [][]Event
	for len(evs) > 0 {
		k := n
		if k > len(evs) {
			k = len(evs)
		}
		out = append(out, evs[:k])
		evs = evs[k:]
	}
	return out
}

func TestAppendBatchRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opt := Options{DriftWindow: 16, SnapshotEvery: 25}
	d := mustOpen(t, mustDir(t, dir), opt)
	evs := testEvents(120)
	for i, group := range chunk(evs, 7) {
		if err := d.AppendBatch(group); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	if got := d.LastSeq(); got != 120 {
		t.Fatalf("lastSeq = %d, want 120 (one seq per event, not per batch)", got)
	}
	// Group commits fold event-by-event: the live state and a reopen must
	// both equal the oracle over the flat stream.
	if !bytes.Equal(MarshalStates(d.Export()), MarshalStates(Oracle(evs, 16))) {
		t.Fatalf("live fold diverges from oracle after batched appends")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	reopenEqual(t, dir, opt, evs).Close()
}

func TestAppendBatchEmptyIsNoop(t *testing.T) {
	d := mustOpen(t, mustDir(t, t.TempDir()), Options{DriftWindow: 16, SnapshotEvery: -1})
	defer d.Close()
	if err := d.AppendBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := d.AppendBatch([]Event{}); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if got := d.LastSeq(); got != 0 {
		t.Fatalf("empty batches must not consume sequences, lastSeq = %d", got)
	}
}

// TestAppendBatchGroupCommitCosts pins the point of group commit: a batch
// of N events costs exactly one file write and at most one fsync, where N
// single appends cost N of each.
func TestAppendBatchGroupCommitCosts(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.New(mustDir(t, dir))
	d := mustOpen(t, inj, Options{DriftWindow: 16, SnapshotEvery: -1})
	defer d.Close()
	evs := testEvents(64)

	// Warm up: segment creation does a dir sync; take baselines after.
	if err := d.Append(evs[0]); err != nil {
		t.Fatal(err)
	}
	w0, s0 := inj.Count(faultinject.OpWrite), inj.Count(faultinject.OpSync)

	if err := d.AppendBatch(evs[1:33]); err != nil {
		t.Fatal(err)
	}
	if dw := inj.Count(faultinject.OpWrite) - w0; dw != 1 {
		t.Fatalf("32-event batch used %d writes, want 1", dw)
	}
	if ds := inj.Count(faultinject.OpSync) - s0; ds != 1 {
		t.Fatalf("32-event batch used %d syncs, want 1", ds)
	}

	w1, s1 := inj.Count(faultinject.OpWrite), inj.Count(faultinject.OpSync)
	for _, ev := range evs[33:] {
		if err := d.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	n := int64(len(evs[33:]))
	if dw := inj.Count(faultinject.OpWrite) - w1; dw != n {
		t.Fatalf("%d single appends used %d writes, want %d", n, dw, n)
	}
	if ds := inj.Count(faultinject.OpSync) - s1; ds != n {
		t.Fatalf("%d single appends used %d syncs, want %d", n, ds, n)
	}
}

// TestAppendBatchSyncEveryAmortizes verifies SyncEvery counts events, not
// batches: groups keep accumulating until the threshold, then one sync.
func TestAppendBatchSyncEveryAmortizes(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.New(mustDir(t, dir))
	d := mustOpen(t, inj, Options{DriftWindow: 16, SnapshotEvery: -1, SyncEvery: 10})
	defer d.Close()
	evs := testEvents(12)
	if err := d.Append(evs[0]); err != nil { // warm up segment + dir sync
		t.Fatal(err)
	}
	s0 := inj.Count(faultinject.OpSync)
	if err := d.AppendBatch(evs[1:5]); err != nil { // unsynced: 5 of 10
		t.Fatal(err)
	}
	if ds := inj.Count(faultinject.OpSync) - s0; ds != 0 {
		t.Fatalf("below SyncEvery threshold, got %d syncs", ds)
	}
	if err := d.AppendBatch(evs[5:12]); err != nil { // unsynced: 12 >= 10
		t.Fatal(err)
	}
	if ds := inj.Count(faultinject.OpSync) - s0; ds != 1 {
		t.Fatalf("crossing SyncEvery threshold must sync once, got %d", ds)
	}
}

// TestAppendBatchFailureAppliesNothing: a failed group applies none of its
// events — all-or-nothing at the caller level — and a retry succeeds with
// no burned sequences.
func TestAppendBatchFailureAppliesNothing(t *testing.T) {
	cases := []struct {
		name   string
		faults []faultinject.Fault
	}{
		// The first batch costs one write (+ the dir sync and record sync);
		// fault the second batch's write or sync.
		{"fail-write", []faultinject.Fault{faultinject.FailNthWrite(2)}},
		{"torn-write", []faultinject.Fault{faultinject.TornNthWrite(2, 9)}},
		{"fail-sync", []faultinject.Fault{faultinject.FailNthSync(3)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			inj := faultinject.New(mustDir(t, dir), tc.faults...)
			opt := Options{DriftWindow: 16, SnapshotEvery: -1}
			d := mustOpen(t, inj, opt)
			evs := testEvents(20)
			if err := d.AppendBatch(evs[:8]); err != nil {
				t.Fatalf("first batch: %v", err)
			}
			if err := d.AppendBatch(evs[8:20]); err == nil {
				t.Fatalf("fault did not fire")
			}
			// Nothing from the failed group may be visible.
			if got := d.LastSeq(); got != 8 {
				t.Fatalf("lastSeq = %d after failed batch, want 8", got)
			}
			if !bytes.Equal(MarshalStates(d.Export()), MarshalStates(Oracle(evs[:8], 16))) {
				t.Fatalf("failed batch leaked into the folded state")
			}
			// Retry the whole group; the WAL is repaired first.
			if err := d.AppendBatch(evs[8:20]); err != nil {
				t.Fatalf("retry: %v", err)
			}
			if got := d.LastSeq(); got != 20 {
				t.Fatalf("lastSeq = %d after retry, want 20 (retries must not burn seqs)", got)
			}
			d.Close()
			reopenEqual(t, dir, opt, evs).Close()
		})
	}
}

// TestAppendBatchTornGroupRecovery crashes mid-group-write: recovery must
// land on a clean per-record boundary — the acked events plus some prefix
// of the unacknowledged group, never a suffix or a partial record. That is
// the same in-doubt window a single unacked Append has, and legal under
// the service's at-least-once observe ingestion.
func TestAppendBatchTornGroupRecovery(t *testing.T) {
	for _, keep := range []int{0, 1, 13, 40, 200, 1 << 14} {
		dir := t.TempDir()
		opt := Options{DriftWindow: 16, SnapshotEvery: -1}
		inj := faultinject.New(mustDir(t, dir), faultinject.CrashAtWrite(2, keep))
		d := mustOpen(t, inj, opt)
		evs := testEvents(24)
		if err := d.AppendBatch(evs[:8]); err != nil {
			t.Fatalf("keep=%d: first batch: %v", keep, err)
		}
		if err := d.AppendBatch(evs[8:24]); err == nil {
			t.Fatalf("keep=%d: crash did not fire", keep)
		}
		if !inj.Crashed() {
			t.Fatalf("keep=%d: injector did not crash", keep)
		}
		// "Reboot": reopen the directory fresh and require the recovered
		// state to be the oracle over acked events plus SOME prefix of the
		// torn group.
		d2 := mustOpen(t, mustDir(t, dir), opt)
		got := MarshalStates(d2.Recovered())
		matched := -1
		for p := 0; p <= 16; p++ {
			if bytes.Equal(got, MarshalStates(Oracle(evs[:8+p], 16))) {
				matched = p
				break
			}
		}
		if matched < 0 {
			t.Fatalf("keep=%d: recovered state is not acked+prefix for any prefix length", keep)
		}
		// The store must be appendable after the repair.
		if err := d2.Append(evs[0]); err != nil {
			t.Fatalf("keep=%d: append after torn-group recovery: %v", keep, err)
		}
		d2.Close()
	}
}

// TestAppendBatchTriggersAutoSnapshot: SnapshotEvery counts events across
// batches, so a large group can cross the threshold in one commit.
func TestAppendBatchTriggersAutoSnapshot(t *testing.T) {
	d := mustOpen(t, mustDir(t, t.TempDir()), Options{DriftWindow: 16, SnapshotEvery: 10})
	defer d.Close()
	if err := d.AppendBatch(testEvents(25)); err != nil {
		t.Fatal(err)
	}
	if snaps, fails := d.Snapshots(); snaps != 1 || fails != 0 {
		t.Fatalf("snapshots = %d (failed %d), want exactly 1 automatic", snaps, fails)
	}
}

func TestAppendBatchClosed(t *testing.T) {
	d := mustOpen(t, mustDir(t, t.TempDir()), Options{DriftWindow: 16})
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.AppendBatch(testEvents(2)); err != ErrClosed {
		t.Fatalf("AppendBatch on closed store: %v, want ErrClosed", err)
	}
}
