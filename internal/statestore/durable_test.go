package statestore

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"knives/internal/faultinject"
	"knives/internal/vfs"
)

func mustDir(t *testing.T, dir string) vfs.FS {
	t.Helper()
	fsys, err := vfs.Dir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return fsys
}

func mustOpen(t *testing.T, fsys vfs.FS, opt Options) *Durable {
	t.Helper()
	d, err := Open(fsys, opt)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return d
}

// reopenEqual reopens the directory fresh and asserts the recovered state
// is bit-equal to the oracle fold of the given event stream.
func reopenEqual(t *testing.T, dir string, opt Options, acked []Event) *Durable {
	t.Helper()
	d := mustOpen(t, mustDir(t, dir), opt)
	got := MarshalStates(d.Recovered())
	want := MarshalStates(Oracle(acked, opt.DriftWindow))
	if !bytes.Equal(got, want) {
		d.Close()
		t.Fatalf("recovered state diverges from oracle (%d acked events):\n got %d bytes\nwant %d bytes",
			len(acked), len(got), len(want))
	}
	return d
}

func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opt := Options{DriftWindow: 16, SnapshotEvery: 25}
	d := mustOpen(t, mustDir(t, dir), opt)
	evs := testEvents(120)
	for i, ev := range evs {
		if err := d.Append(ev); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if got := d.LastSeq(); got != 120 {
		t.Fatalf("lastSeq = %d, want 120", got)
	}
	if snaps, fails := d.Snapshots(); snaps < 4 || fails != 0 {
		t.Fatalf("snapshots = %d (failed %d), want >= 4 automatic, 0 failed", snaps, fails)
	}
	// The live fold already equals the oracle — Export is the crash image.
	if !bytes.Equal(MarshalStates(d.Export()), MarshalStates(Oracle(evs, 16))) {
		t.Fatalf("live fold diverges from oracle")
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	d2 := reopenEqual(t, dir, opt, evs)
	defer d2.Close()
	rep := d2.Report()
	if rep.SnapshotSeq == 0 {
		t.Errorf("no snapshot was loaded: %+v", rep)
	}
	if rep.SnapshotSeq+uint64(rep.Records) != 120 {
		t.Errorf("snapshot %d + replayed %d != 120", rep.SnapshotSeq, rep.Records)
	}
	// Appending must continue the sequence, not restart it.
	if err := d2.Append(evs[0]); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
	if got := d2.LastSeq(); got != 121 {
		t.Errorf("lastSeq after reopen append = %d, want 121", got)
	}
}

func TestDurableSnapshotCompactsSegments(t *testing.T) {
	dir := t.TempDir()
	fsys := mustDir(t, dir)
	opt := Options{DriftWindow: 16, SnapshotEvery: -1}
	d := mustOpen(t, fsys, opt)
	evs := testEvents(40)
	for _, ev := range evs[:30] {
		if err := d.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Snapshot(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	for _, ev := range evs[30:] {
		if err := d.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	names, err := fsys.List()
	if err != nil {
		t.Fatal(err)
	}
	var segs int
	var haveSnap bool
	for _, n := range names {
		if _, ok := parseSegmentName(n); ok {
			segs++
		}
		if n == snapName {
			haveSnap = true
		}
	}
	if segs != 1 || !haveSnap {
		t.Fatalf("after snapshot: %v (want exactly 1 segment + %s)", names, snapName)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	reopenEqual(t, dir, opt, evs).Close()
}

func TestDurableWindowShrinkOnReopen(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, mustDir(t, dir), Options{DriftWindow: 64, SnapshotEvery: 20})
	evs := testEvents(100)
	for _, ev := range evs {
		if err := d.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	d.Close()
	// Restarting with a smaller window must re-trim: the recovered logs
	// are what a daemon running window 8 all along would hold.
	reopenEqual(t, dir, Options{DriftWindow: 8, SnapshotEvery: 20}, evs).Close()
}

func TestDurableCorruptionIsTyped(t *testing.T) {
	newStore := func(t *testing.T) (string, vfs.FS, []Event) {
		dir := t.TempDir()
		fsys := mustDir(t, dir)
		d := mustOpen(t, fsys, Options{DriftWindow: 16, SnapshotEvery: 10})
		evs := testEvents(35)
		for _, ev := range evs {
			if err := d.Append(ev); err != nil {
				t.Fatal(err)
			}
		}
		d.Close()
		return dir, fsys, evs
	}

	t.Run("snapshot damage", func(t *testing.T) {
		_, fsys, _ := newStore(t)
		b, err := fsys.ReadFile(snapName)
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)/2] ^= 0x10
		f, err := fsys.Create(snapName)
		if err != nil {
			t.Fatal(err)
		}
		f.Write(b)
		f.Close()
		if _, err := Open(fsys, Options{DriftWindow: 16}); !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("err = %v, want ErrCorruptSnapshot", err)
		}
	})

	t.Run("sequence gap", func(t *testing.T) {
		fsys := mustDir(t, t.TempDir())
		evs := testEvents(4)
		var buf []byte
		buf = appendRecord(buf, 1, evs[0].encode())
		buf = appendRecord(buf, 3, evs[1].encode()) // seq 2 missing
		f, _ := fsys.Create(segmentName(1))
		f.Write(buf)
		f.Close()
		if _, err := Open(fsys, Options{DriftWindow: 16}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})

	t.Run("torn non-last segment", func(t *testing.T) {
		fsys := mustDir(t, t.TempDir())
		evs := testEvents(4)
		f, _ := fsys.Create(segmentName(1))
		f.Write(append(buildSegment(1, evs[:2]), 0xDE, 0xAD))
		f.Close()
		f, _ = fsys.Create(segmentName(3))
		f.Write(buildSegment(3, evs[2:]))
		f.Close()
		if _, err := Open(fsys, Options{DriftWindow: 16}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})

	t.Run("undecodable CRC-valid payload", func(t *testing.T) {
		fsys := mustDir(t, t.TempDir())
		f, _ := fsys.Create(segmentName(1))
		f.Write(appendRecord(nil, 1, []byte{99, 1, 2, 3}))
		f.Close()
		if _, err := Open(fsys, Options{DriftWindow: 16}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
}

func TestDurableTornTailRecovers(t *testing.T) {
	evs := testEvents(30)
	full := buildSegment(1, evs)
	boundary := len(buildSegment(1, evs[:20]))
	// Cut mid-record 21 and also mid-header.
	for _, cut := range []int{boundary + 1, boundary + recHeaderSize - 2, len(full) - 1} {
		dir := t.TempDir()
		fsys := mustDir(t, dir)
		f, _ := fsys.Create(segmentName(1))
		f.Write(full[:cut])
		f.Close()

		opt := Options{DriftWindow: 16, SnapshotEvery: -1}
		d := mustOpen(t, fsys, opt)
		rep := d.Report()
		if rep.TornBytes == 0 {
			t.Fatalf("cut %d: no torn bytes reported", cut)
		}
		wantEvents := evs[:rep.Records]
		if !bytes.Equal(MarshalStates(d.Recovered()), MarshalStates(Oracle(wantEvents, 16))) {
			t.Fatalf("cut %d: recovered state diverges", cut)
		}
		// The tail was repaired: appending must produce a clean store that
		// reopens to the full prefix + the new event.
		extra := testEvents(1)[0]
		if err := d.Append(extra); err != nil {
			t.Fatalf("cut %d: append after repair: %v", cut, err)
		}
		d.Close()
		reopenEqual(t, dir, opt, append(append([]Event{}, wantEvents...), extra)).Close()
	}
}

func TestDurableStaleTmpSnapshotIgnored(t *testing.T) {
	dir := t.TempDir()
	fsys := mustDir(t, dir)
	f, _ := fsys.Create(snapTmpName)
	f.Write([]byte("half-written garbage"))
	f.Close()
	d := mustOpen(t, fsys, Options{DriftWindow: 16})
	d.Close()
	names, _ := fsys.List()
	for _, n := range names {
		if n == snapTmpName {
			t.Fatalf("stale %s survived open: %v", snapTmpName, names)
		}
	}
}

// TestDurableFailedAppendRetries: a failed or torn append must leave the
// store self-healing — the caller retries, and the WAL ends up exactly as
// if the fault never happened. This is the property that lets a retrying
// client see zero failed requests under injected write faults.
func TestDurableFailedAppendRetries(t *testing.T) {
	cases := []struct {
		name   string
		faults []faultinject.Fault
	}{
		{"fail-nth-write", []faultinject.Fault{faultinject.FailNthWrite(5)}},
		{"torn-write", []faultinject.Fault{faultinject.TornNthWrite(5, 7)}},
		{"fail-nth-sync", []faultinject.Fault{faultinject.FailNthSync(6)}},
		{"double-fault", []faultinject.Fault{faultinject.FailNthWrite(4), faultinject.TornNthWrite(6, 3)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			inj := faultinject.New(mustDir(t, dir), tc.faults...)
			opt := Options{DriftWindow: 16, SnapshotEvery: -1}
			d := mustOpen(t, inj, opt)
			evs := testEvents(12)
			retries := 0
			for i, ev := range evs {
				for attempt := 0; ; attempt++ {
					err := d.Append(ev)
					if err == nil {
						break
					}
					retries++
					if attempt > 3 {
						t.Fatalf("append %d still failing after retries: %v", i, err)
					}
				}
			}
			if retries == 0 {
				t.Fatalf("no fault fired (schedule dead)")
			}
			if got := d.LastSeq(); got != uint64(len(evs)) {
				t.Fatalf("lastSeq = %d, want %d (retries must not burn seqs)", got, len(evs))
			}
			d.Close()
			reopenEqual(t, dir, opt, evs).Close()
		})
	}
}

// TestDurableObserveDuringSnapshot hammers Append from several goroutines
// while snapshots run concurrently — the -race leg for the store, plus a
// per-table equivalence check (cross-table interleaving is scheduler
// chosen, but each table's own event order is fixed).
func TestDurableObserveDuringSnapshot(t *testing.T) {
	dir := t.TempDir()
	opt := Options{DriftWindow: 8, SnapshotEvery: 16}
	d := mustOpen(t, mustDir(t, dir), opt)
	const workers, perWorker = 4, 60
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			table := fmt.Sprintf("t%d", w)
			if err := d.Append(Event{Type: EvAdviseCommit, Table: table,
				Schema: testSchema(table), Advice: testAdvice(w), FP: testFP(w)}); err != nil {
				t.Errorf("worker %d: commit: %v", w, err)
				return
			}
			for i := 0; i < perWorker; i++ {
				if err := d.Append(Event{Type: EvObserve, Table: table,
					Queries: []QueryRec{{ID: "q", Weight: 1, Attrs: uint64(i)}}}); err != nil {
					t.Errorf("worker %d: observe %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			if err := d.Snapshot(); err != nil {
				t.Errorf("snapshot: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := mustOpen(t, mustDir(t, dir), opt)
	defer d2.Close()
	rec := d2.Recovered()
	if len(rec) != workers {
		t.Fatalf("recovered %d tables, want %d", len(rec), workers)
	}
	for _, ts := range rec {
		if ts.Observed != perWorker {
			t.Errorf("%s: observed = %d, want %d", ts.Table.Name, ts.Observed, perWorker)
		}
		if len(ts.Log) != opt.DriftWindow {
			t.Errorf("%s: log = %d, want window %d", ts.Table.Name, len(ts.Log), opt.DriftWindow)
		}
		// The window must hold the LAST batches, in order.
		for i, q := range ts.Log {
			if want := uint64(perWorker - opt.DriftWindow + i); q.Attrs != want {
				t.Errorf("%s: log[%d].Attrs = %d, want %d", ts.Table.Name, i, q.Attrs, want)
				break
			}
		}
	}
}

func TestDurableClosed(t *testing.T) {
	d := mustOpen(t, mustDir(t, t.TempDir()), Options{DriftWindow: 16})
	if err := d.Append(testEvents(1)[0]); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Append(testEvents(1)[0]); !errors.Is(err, ErrClosed) {
		t.Errorf("append after close: %v, want ErrClosed", err)
	}
	if err := d.Snapshot(); !errors.Is(err, ErrClosed) {
		t.Errorf("snapshot after close: %v, want ErrClosed", err)
	}
	if err := d.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestMemStoreIsInert(t *testing.T) {
	m := NewMem()
	if m.Journaling() {
		t.Fatal("Mem claims to journal")
	}
	if err := m.Append(testEvents(1)[0]); err != nil {
		t.Fatal(err)
	}
	if got := m.Recovered(); got != nil {
		t.Fatalf("Mem recovered %d tables", len(got))
	}
	if err := m.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

// Observes racing an explicit snapshot must neither tear the fold nor the
// journal: per-table state depends only on that table's own subsequence, so
// whatever interleaving the scheduler picks, the live fold, a serialized
// oracle, and a clean restart must all agree bit-for-bit. Run under -race
// this is the locking proof for the observe-during-snapshot window.
func TestDurableConcurrentObserveDuringSnapshot(t *testing.T) {
	dir := t.TempDir()
	opt := Options{DriftWindow: 8, SnapshotEvery: -1}
	d := mustOpen(t, mustDir(t, dir), opt)

	tables := []string{"t0", "t1", "t2"}
	serial := make([]Event, 0, 3+3*40)
	for i, name := range tables {
		ev := Event{Type: EvAdviseCommit, Table: name,
			Schema: TableRec{Name: name, Rows: 1000, Columns: []ColumnRec{{Name: "a", Size: 4}}},
			FP:     [FPSize]byte{byte(i)}}
		if err := d.Append(ev); err != nil {
			t.Fatal(err)
		}
		serial = append(serial, ev)
	}
	perTable := make([][]Event, len(tables))
	for ti, name := range tables {
		for k := 0; k < 40; k++ {
			perTable[ti] = append(perTable[ti], Event{Type: EvObserve, Table: name,
				Queries: []QueryRec{{ID: fmt.Sprintf("%s-q%d", name, k), Weight: 1, Attrs: uint64(1 + k%7)}}})
		}
		serial = append(serial, perTable[ti]...)
	}

	var wg sync.WaitGroup
	errc := make(chan error, len(tables)+1)
	for ti := range tables {
		wg.Add(1)
		go func(evs []Event) {
			defer wg.Done()
			for _, ev := range evs {
				if err := d.Append(ev); err != nil {
					errc <- err
					return
				}
			}
		}(perTable[ti])
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := d.Snapshot(); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	want := MarshalStates(Oracle(serial, opt.DriftWindow))
	if !bytes.Equal(MarshalStates(d.Export()), want) {
		t.Fatal("live fold diverges from the serialized oracle")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2 := mustOpen(t, mustDir(t, dir), opt)
	defer d2.Close()
	if !bytes.Equal(MarshalStates(d2.Recovered()), want) {
		t.Fatal("restart diverges from the serialized oracle")
	}
}
