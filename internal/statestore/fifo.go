package statestore

// FIFO is a bounded map that evicts its oldest insertions first. It is the
// one implementation of the order-slice invariant the advisor's caches each
// used to carry a copy of: order lists exactly the map's live keys, oldest
// first, each once. Re-inserting a live key overwrites the value in place
// and keeps the original order slot — without that, a duplicated key in
// order would make eviction delete a FRESH entry when it pops the stale
// occurrence.
//
// FIFO does no locking; callers serialize access (the advisor holds its
// service mutex).
type FIFO[K comparable, V any] struct {
	m     map[K]V
	order []K
	// capacity <= 0 disables eviction.
	capacity int
}

// NewFIFO returns an empty bounded map. capacity <= 0 disables eviction.
func NewFIFO[K comparable, V any](capacity int) *FIFO[K, V] {
	return &FIFO[K, V]{m: make(map[K]V), capacity: capacity}
}

// Get looks a key up.
func (f *FIFO[K, V]) Get(k K) (V, bool) {
	v, ok := f.m[k]
	return v, ok
}

// Len returns the number of live keys.
func (f *FIFO[K, V]) Len() int { return len(f.m) }

// Insert stores a value and evicts the oldest keys past capacity — never
// the just-inserted one. It returns the evicted keys, oldest first, so the
// caller can journal or release what went away.
func (f *FIFO[K, V]) Insert(k K, v V) []K {
	if _, live := f.m[k]; live {
		f.m[k] = v
		return nil
	}
	f.m[k] = v
	f.order = append(f.order, k)
	if f.capacity <= 0 {
		return nil
	}
	var evicted []K
	for len(f.m) > f.capacity && len(f.order) > 1 {
		oldest := f.order[0]
		if oldest == k {
			break
		}
		f.order = f.order[1:]
		delete(f.m, oldest)
		evicted = append(evicted, oldest)
	}
	return evicted
}

// Evictions returns the keys Insert(k, ...) WOULD evict, oldest first,
// without mutating anything. A journaling caller appends the eviction
// events before the Insert applies them, keeping journal order equal to
// apply order.
func (f *FIFO[K, V]) Evictions(k K) []K {
	if f.capacity <= 0 {
		return nil
	}
	if _, live := f.m[k]; live {
		return nil
	}
	var out []K
	n := len(f.m) + 1
	for i := 0; n > f.capacity && i < len(f.order); i++ {
		out = append(out, f.order[i])
		n--
	}
	return out
}

// Drop removes a key and its order slot; absent keys are a no-op.
func (f *FIFO[K, V]) Drop(k K) {
	if _, live := f.m[k]; !live {
		return
	}
	delete(f.m, k)
	for i, o := range f.order {
		if o == k {
			f.order = append(f.order[:i], f.order[i+1:]...)
			return
		}
	}
}

// DropFunc removes every key the predicate selects, preserving the order of
// the survivors.
func (f *FIFO[K, V]) DropFunc(pred func(K) bool) {
	kept := f.order[:0]
	for _, k := range f.order {
		if pred(k) {
			delete(f.m, k)
			continue
		}
		kept = append(kept, k)
	}
	f.order = kept
}

// Keys returns the live keys, oldest insertion first.
func (f *FIFO[K, V]) Keys() []K {
	return append([]K(nil), f.order...)
}
