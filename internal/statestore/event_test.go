package statestore

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func roundTripEvents() []Event {
	return []Event{
		{Type: EvAdviseCommit, Table: "lineitem", Schema: testSchema("lineitem"),
			ModelKey: "hdd:v1", Queries: []QueryRec{{ID: "q1", Weight: 2.5, Attrs: 0b1011}},
			Advice: testAdvice(7), FP: testFP(7)},
		{Type: EvObserve, Table: "orders",
			Queries: []QueryRec{{ID: "q2", Weight: 1, Attrs: 1}, {ID: "q3", Weight: 0.25, Attrs: 6}}},
		{Type: EvRecompute, Table: "lineitem", Advice: testAdvice(9), FP: testFP(9), AdvObserved: 42},
		{Type: EvApplied, Table: "orders", FP: testFP(3)},
		{Type: EvReset, Table: "customer"},
		// Degenerate but legal shapes.
		{Type: EvObserve, Table: ""},
		{Type: EvAdviseCommit, Table: "empty"},
	}
}

func TestEventRoundTrip(t *testing.T) {
	for _, ev := range roundTripEvents() {
		got, err := decodeEvent(ev.encode())
		if err != nil {
			t.Fatalf("%s: decode: %v", ev.Type, err)
		}
		if !reflect.DeepEqual(got, ev) {
			t.Errorf("%s: round trip mismatch\n got %+v\nwant %+v", ev.Type, got, ev)
		}
	}
}

func TestEventDecodeRejects(t *testing.T) {
	valid := Event{Type: EvApplied, Table: "t", FP: testFP(1)}.encode()
	cases := map[string][]byte{
		"empty":          {},
		"unknown type":   {99, 0, 0, 0, 0, 0, 0, 0, 0},
		"truncated":      valid[:len(valid)-5],
		"trailing bytes": append(append([]byte{}, valid...), 0xEE),
	}
	for name, payload := range cases {
		if _, err := decodeEvent(payload); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestEventDecodeBoundsAbsurdCounts(t *testing.T) {
	// A frame claiming 2^40 queries must fail typed without allocating them.
	e := &enc{}
	e.u8(uint8(EvObserve))
	e.str("t")
	e.u64(1 << 40)
	if _, err := decodeEvent(e.b); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestEventTypeString(t *testing.T) {
	want := map[EventType]string{
		EvAdviseCommit: "advise-commit",
		EvObserve:      "observe",
		EvRecompute:    "recompute",
		EvApplied:      "layout-applied",
		EvReset:        "tracker-reset",
		EventType(77):  "event(77)",
	}
	for ty, s := range want {
		if ty.String() != s {
			t.Errorf("%d.String() = %q, want %q", uint8(ty), ty.String(), s)
		}
	}
}

// FuzzEventDecode: arbitrary payloads must decode cleanly or fail typed —
// never panic — and every successful decode must re-encode to bytes that
// decode back equal (the WAL's replay depends on it).
func FuzzEventDecode(f *testing.F) {
	for _, ev := range roundTripEvents() {
		f.Add(ev.encode())
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, payload []byte) {
		ev, err := decodeEvent(payload)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		enc := ev.encode()
		again, err := decodeEvent(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		// Compare encodings, not structs: reflect.DeepEqual reports NaN
		// float fields as unequal even when the bytes round-trip exactly.
		if !bytes.Equal(again.encode(), enc) {
			t.Fatalf("re-encode changed the event:\n got %+v\nwant %+v", again, ev)
		}
	})
}
