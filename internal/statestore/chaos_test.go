package statestore

import (
	"bytes"
	"fmt"
	"testing"

	"knives/internal/faultinject"
)

// runToCrash drives the event stream into a store whose filesystem dies on
// the injected schedule. It returns the acknowledged prefix and, when an
// append failed mid-flight, that in-doubt event.
func runToCrash(t *testing.T, dir string, opt Options, evs []Event, faults ...faultinject.Fault) (acked []Event, inDoubt *Event) {
	t.Helper()
	inj := faultinject.New(mustDir(t, dir), faults...)
	d, err := Open(inj, opt)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer d.Close()
	for i := range evs {
		if err := d.Append(evs[i]); err != nil {
			return evs[:i], &evs[i]
		}
	}
	return evs, nil
}

// assertCrashRecovery reopens the directory through a clean filesystem (the
// restart) and asserts the recovered state is bit-equal to the oracle fold
// of the acknowledged events — or, when an append died mid-flight, of the
// acknowledged events plus the in-doubt one. That one event is genuinely
// indeterminate: its record may or may not have reached the disk before
// the crash, exactly like a power cut during any database commit. Nothing
// else may differ.
func assertCrashRecovery(t *testing.T, label, dir string, opt Options, acked []Event, inDoubt *Event) {
	t.Helper()
	d, err := Open(mustDir(t, dir), opt)
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", label, err)
	}
	defer d.Close()
	got := MarshalStates(d.Recovered())
	if bytes.Equal(got, MarshalStates(Oracle(acked, opt.DriftWindow))) {
		return
	}
	if inDoubt != nil {
		withDoubt := append(append([]Event{}, acked...), *inDoubt)
		if bytes.Equal(got, MarshalStates(Oracle(withDoubt, opt.DriftWindow))) {
			return
		}
	}
	t.Errorf("%s: recovered state matches neither oracle (acked %d, in-doubt %v)",
		label, len(acked), inDoubt != nil)
}

// TestChaosCrashAtWrite kills the store at a sweep of write counts and torn
// offsets — mid-record, mid-header, clean boundaries — restarts it, and
// requires bit-equal recovery every time.
func TestChaosCrashAtWrite(t *testing.T) {
	evs := testEvents(150)
	opt := Options{DriftWindow: 16, SnapshotEvery: 20}
	crashPoints := []int64{1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 120, 144, 170}
	keeps := []int{0, 1, 5, 11, 24, 1 << 20}
	for _, n := range crashPoints {
		for _, keep := range keeps {
			dir := t.TempDir()
			acked, inDoubt := runToCrash(t, dir, opt, evs, faultinject.CrashAtWrite(n, keep))
			assertCrashRecovery(t, fmt.Sprintf("crash@write%d keep%d", n, keep), dir, opt, acked, inDoubt)
		}
	}
}

// TestChaosCrashAtMetadataOps kills the store on sync, rename, and create
// operations — the crash windows inside snapshot rotation and compaction.
func TestChaosCrashAtMetadataOps(t *testing.T) {
	evs := testEvents(150)
	opt := Options{DriftWindow: 16, SnapshotEvery: 20}
	schedules := []faultinject.Fault{}
	for _, n := range []int64{1, 2, 3, 5, 9, 17, 33, 65, 129} {
		schedules = append(schedules,
			faultinject.Fault{Op: faultinject.OpSync, N: n, Kind: faultinject.KindCrash},
			faultinject.Fault{Op: faultinject.OpCreate, N: n, Kind: faultinject.KindCrash},
		)
	}
	for _, n := range []int64{1, 2, 3, 5, 9} {
		schedules = append(schedules,
			faultinject.Fault{Op: faultinject.OpRename, N: n, Kind: faultinject.KindCrash},
		)
	}
	for _, f := range schedules {
		dir := t.TempDir()
		acked, inDoubt := runToCrash(t, dir, opt, evs, f)
		assertCrashRecovery(t, f.Op.String(), dir, opt, acked, inDoubt)
	}
}

// TestChaosCrashThenContinue crashes, recovers, appends more, crashes
// again — the double-restart path, including a crash before the first
// snapshot and one after several.
func TestChaosCrashThenContinue(t *testing.T) {
	evs := testEvents(200)
	opt := Options{DriftWindow: 16, SnapshotEvery: 15}
	dir := t.TempDir()

	acked1, _ := runToCrash(t, dir, opt, evs[:80], faultinject.CrashAtWrite(37, 9))
	d, err := Open(mustDir(t, dir), opt)
	if err != nil {
		t.Fatalf("first recovery: %v", err)
	}
	// The first recovery is the new oracle baseline; whatever the in-doubt
	// event's fate was, it is now settled state.
	settled := append([]Event{}, acked1...)
	if int(d.Report().Records)+int(d.Report().SnapshotSeq) > len(acked1) {
		settled = append(settled, evs[len(acked1)])
	}
	for _, ev := range evs[80:] {
		if err := d.Append(ev); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		settled = append(settled, ev)
	}
	d.Close()
	assertCrashRecovery(t, "second restart", dir, opt, settled, nil)
}

// TestChaosPanicSafety drives appends against a panicking crash point and
// requires the panic to surface as *CrashPoint (no torn internal state
// corrupting a recover()ing caller) and the directory to stay recoverable.
func TestChaosPanicSafety(t *testing.T) {
	evs := testEvents(30)
	opt := Options{DriftWindow: 16, SnapshotEvery: -1}
	dir := t.TempDir()
	inj := faultinject.New(mustDir(t, dir), faultinject.PanicAtWrite(9))
	d, err := Open(inj, opt)
	if err != nil {
		t.Fatal(err)
	}
	var acked []Event
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatalf("panic crash point never fired")
			} else if _, ok := r.(*faultinject.CrashPoint); !ok {
				t.Fatalf("panic value = %v, want *CrashPoint", r)
			}
		}()
		for i := range evs {
			if err := d.Append(evs[i]); err != nil {
				t.Fatalf("append %d: %v", i, err)
			}
			acked = append(acked, evs[i])
		}
	}()
	// The panicking append is the in-doubt one (its write never ran, but
	// the contract only promises acked-or-acked+1).
	assertCrashRecovery(t, "after panic", dir, opt, acked, &evs[len(acked)])
}
