package storage

import (
	"sync"
	"testing"

	"knives/internal/attrset"
	"knives/internal/cost"
	"knives/internal/partition"
)

// loadEngine materializes a small engine for repartition tests.
func loadEngine(t *testing.T, layout partition.Partitioning, disk cost.Disk, rows int64, newBackend func(string, int) (Backend, error)) *Engine {
	t.Helper()
	e, err := NewEngine(layout, disk, newBackend)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	if err := e.Load(NewGenerator(7), rows); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestRepartitionPreservesData pins the point of the epoch swap: after a
// split AND a merge, every query's checksum and measured stats equal a
// fresh materialization of the target layout.
func TestRepartitionPreservesData(t *testing.T) {
	tab := testTable(t, 500)
	disk := smallDisk()
	from := partition.Must(tab, []attrset.Set{attrset.Of(0, 1, 2), attrset.Of(3, 4)})
	to := partition.Must(tab, []attrset.Set{attrset.Of(0), attrset.Of(1, 2, 3), attrset.Of(4)})

	e := loadEngine(t, from, disk, 500, nil)
	if _, err := e.Repartition(to, 0); err != nil {
		t.Fatal(err)
	}
	if !e.Layout().Equal(to) {
		t.Fatalf("layout after repartition = %s, want %s", e.Layout(), to)
	}

	fresh := loadEngine(t, to, disk, 500, nil)
	queries := []attrset.Set{
		attrset.Of(0), attrset.Of(1), attrset.Of(2, 3), attrset.Of(0, 4), tab.AllAttrs(),
	}
	for _, q := range queries {
		got, err := e.Scan(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Scan(q)
		if err != nil {
			t.Fatal(err)
		}
		if got.Checksum != want.Checksum {
			t.Errorf("query %v: migrated checksum %x != fresh %x", q, got.Checksum, want.Checksum)
		}
		if got.Seeks != want.Seeks || got.BytesRead != want.BytesRead || got.SimTime != want.SimTime {
			t.Errorf("query %v: migrated stats %+v != fresh %+v", q, got, want)
		}
	}
}

// TestRepartitionMatchesMigrationCostModel is the bit-for-bit contract:
// measured bytes, seeks, cache lines, and simulated time equal
// cost.MigrationCost exactly, on both backends.
func TestRepartitionMatchesMigrationCostModel(t *testing.T) {
	tab := testTable(t, 700)
	disk := smallDisk()
	disk.WriteBandwidth = 0.7e6
	from := partition.Row(tab)
	to := partition.Must(tab, []attrset.Set{attrset.Of(0, 2), attrset.Of(1), attrset.Of(3, 4)})

	backends := map[string]func(string, int) (Backend, error){
		"mem": nil,
		"file": func(name string, pageSize int) (Backend, error) {
			return NewFileBackend(t.TempDir(), name, pageSize)
		},
	}
	for name, nb := range backends {
		t.Run(name, func(t *testing.T) {
			e := loadEngine(t, from, disk, 700, nb)
			stats, err := e.Repartition(to, 0)
			if err != nil {
				t.Fatal(err)
			}
			want, err := cost.MigrationCost(cost.NewHDD(disk), tab, from.Parts, to.Parts)
			if err != nil {
				t.Fatal(err)
			}
			if stats.BytesRead != want.BytesRead || stats.BytesWritten != want.BytesWritten {
				t.Errorf("bytes read/written %d/%d, model %d/%d",
					stats.BytesRead, stats.BytesWritten, want.BytesRead, want.BytesWritten)
			}
			if stats.SeeksRead != want.SeeksRead || stats.SeeksWrite != want.SeeksWrite {
				t.Errorf("seeks read/write %d/%d, model %d/%d",
					stats.SeeksRead, stats.SeeksWrite, want.SeeksRead, want.SeeksWrite)
			}
			if stats.SimTime != want.Seconds {
				t.Errorf("measured SimTime %.18g != model %.18g", stats.SimTime, want.Seconds)
			}
			if stats.LinesRead != want.LinesRead && want.Model == "MM" {
				t.Errorf("cache lines read %d != model %d", stats.LinesRead, want.LinesRead)
			}
		})
	}
}

// TestRepartitionIdentityIsFree: migrating to the current layout moves
// nothing and costs exactly zero — the planner's identity property holds at
// the engine too.
func TestRepartitionIdentityIsFree(t *testing.T) {
	tab := testTable(t, 200)
	layout := partition.Must(tab, []attrset.Set{attrset.Of(0, 1), attrset.Of(2, 3, 4)})
	e := loadEngine(t, layout, smallDisk(), 200, nil)
	before, err := e.Scan(tab.AllAttrs())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := e.Repartition(layout, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BytesRead != 0 || stats.BytesWritten != 0 || stats.SimTime != 0 || stats.RowsMoved != 0 {
		t.Errorf("identity repartition moved data: %+v", stats)
	}
	if stats.PartsKept != 2 {
		t.Errorf("identity repartition kept %d parts, want 2", stats.PartsKept)
	}
	after, err := e.Scan(tab.AllAttrs())
	if err != nil {
		t.Fatal(err)
	}
	if after.Checksum != before.Checksum {
		t.Error("identity repartition changed data")
	}
}

// TestRepartitionKeepsSharedParts: a partition present in both layouts is
// neither read nor written.
func TestRepartitionKeepsSharedParts(t *testing.T) {
	tab := testTable(t, 300)
	shared := attrset.Of(3, 4)
	from := partition.Must(tab, []attrset.Set{attrset.Of(0, 1, 2), shared})
	to := partition.Must(tab, []attrset.Set{attrset.Of(0), attrset.Of(1, 2), shared})
	e := loadEngine(t, from, smallDisk(), 300, nil)
	stats, err := e.Repartition(to, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PartsKept != 1 {
		t.Errorf("kept %d parts, want 1", stats.PartsKept)
	}
	for _, mv := range append(stats.Reads, stats.Writes...) {
		if mv.Attrs == shared {
			t.Errorf("shared partition %v was moved", shared)
		}
	}
}

// TestRepartitionWorkerCountInvariance: any worker count produces identical
// stats and identical data.
func TestRepartitionWorkerCountInvariance(t *testing.T) {
	tab := testTable(t, 400)
	from := partition.Row(tab)
	to := partition.Column(tab)
	var base RepartitionStats
	var baseSum uint64
	for i, workers := range []int{1, 2, 0} {
		e := loadEngine(t, from, smallDisk(), 400, nil)
		stats, err := e.Repartition(to, workers)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := e.Scan(tab.AllAttrs())
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base, baseSum = stats, sc.Checksum
			continue
		}
		if stats.SimTime != base.SimTime || stats.BytesRead != base.BytesRead ||
			stats.SeeksRead != base.SeeksRead || stats.SeeksWrite != base.SeeksWrite {
			t.Errorf("workers=%d changed stats: %+v vs %+v", workers, stats, base)
		}
		if sc.Checksum != baseSum {
			t.Errorf("workers=%d changed data", workers)
		}
	}
}

// TestScanConcurrentWithRepartition drives scans while the store migrates
// under them (the race detector guards the epoch swap): every scan must see
// a fully materialized layout — the checksum is layout-independent, so any
// torn epoch would corrupt it or crash on missing pages.
func TestScanConcurrentWithRepartition(t *testing.T) {
	tab := testTable(t, 300)
	from := partition.Row(tab)
	to := partition.Column(tab)
	e := loadEngine(t, from, smallDisk(), 300, nil)
	want, err := e.Scan(tab.AllAttrs())
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make([]error, 8)
	sums := make([]uint64, 8)
	start := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			for j := 0; j < 5; j++ {
				sc, err := e.Scan(tab.AllAttrs())
				if err != nil {
					errs[i] = err
					return
				}
				sums[i] = sc.Checksum
				if sc.Checksum != want.Checksum {
					return // recorded; checked below
				}
			}
		}(i)
	}
	close(start)
	if _, err := e.Repartition(to, 0); err != nil {
		t.Fatal(err)
	}
	layouts := []partition.Partitioning{from, to}
	for k := 0; k < 3; k++ {
		if _, err := e.Repartition(layouts[k%2], 0); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Errorf("scan %d: %v", i, errs[i])
		}
		if sums[i] != want.Checksum {
			t.Errorf("scan %d saw checksum %x, want %x (torn epoch?)", i, sums[i], want.Checksum)
		}
	}
}

// countingBackend tracks closes so tests can pin the created-backend
// cleanup on failed repartitions.
type countingBackend struct {
	Backend
	closed    *int
	failWrite bool
}

func (c *countingBackend) WritePage(p []byte) error {
	if c.failWrite {
		return errInjected
	}
	return c.Backend.WritePage(p)
}

func (c *countingBackend) Close() error {
	*c.closed++
	return c.Backend.Close()
}

// TestRepartitionFailureClosesCreatedBackends: a repartition that fails
// mid-write keeps the old epoch AND closes the backends it created for
// the aborted one — a file-backed retry loop must not leak open files.
func TestRepartitionFailureClosesCreatedBackends(t *testing.T) {
	tab := testTable(t, 200)
	closed := 0
	made := 0
	e, err := NewEngine(partition.Row(tab), smallDisk(), func(string, int) (Backend, error) {
		made++
		// Backends created after the initial epoch (the repartition's) fail
		// their writes.
		return &countingBackend{Backend: NewMemBackend(512), closed: &closed, failWrite: made > 1}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Load(NewGenerator(1), 200); err != nil {
		t.Fatal(err)
	}
	madeBefore := made
	if _, err := e.Repartition(partition.Column(tab), 0); err == nil {
		t.Fatal("failing write did not abort the repartition")
	}
	created := made - madeBefore
	if created == 0 {
		t.Fatal("repartition created no backends; fixture broken")
	}
	if closed != created {
		t.Errorf("failed repartition closed %d of %d created backends", closed, created)
	}
	// The old epoch survives intact.
	if got := e.Layout(); !got.Equal(partition.Row(tab)) {
		t.Errorf("failed repartition moved the layout to %s", got)
	}
	if _, err := e.Scan(tab.AllAttrs()); err != nil {
		t.Errorf("scan after failed repartition: %v", err)
	}
}

// TestRepartitionRejectsBadInput covers the validation path.
func TestRepartitionRejectsBadInput(t *testing.T) {
	tab := testTable(t, 50)
	other := testTable(t, 50)
	e := loadEngine(t, partition.Row(tab), smallDisk(), 50, nil)
	if _, err := e.Repartition(partition.Row(other), 0); err == nil {
		t.Error("repartition onto another table's layout succeeded")
	}
	bad := partition.Partitioning{Table: tab, Parts: []attrset.Set{attrset.Of(0)}}
	if _, err := e.Repartition(bad, 0); err == nil {
		t.Error("repartition onto an incomplete layout succeeded")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Repartition(partition.Column(tab), 0); err == nil {
		t.Error("repartition on a closed engine succeeded")
	}
}

// TestRepartitionMMLinesMatchModel pins the cache-line accounting against
// the MM migration pricing.
func TestRepartitionMMLinesMatchModel(t *testing.T) {
	tab := testTable(t, 600)
	from := partition.Row(tab)
	to := partition.Must(tab, []attrset.Set{attrset.Of(0, 1), attrset.Of(2, 3, 4)})
	mm := cost.NewMM()
	e := loadEngine(t, from, smallDisk(), 600, nil)
	if err := e.SetCacheLine(mm.Device().CacheLineSize); err != nil {
		t.Fatal(err)
	}
	stats, err := e.Repartition(to, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cost.MigrationCost(mm, tab, from.Parts, to.Parts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.LinesRead != want.LinesRead || stats.LinesWritten != want.LinesWritten {
		t.Errorf("cache lines %d/%d, model %d/%d",
			stats.LinesRead, stats.LinesWritten, want.LinesRead, want.LinesWritten)
	}
}
