package storage

import (
	"math"
	"testing"

	"knives/internal/attrset"
	"knives/internal/cost"
	"knives/internal/partition"
	"knives/internal/schema"
)

func testTable(t *testing.T, rows int64) *schema.Table {
	t.Helper()
	tab, err := schema.NewTable("t", rows, []schema.Column{
		{Name: "id", Kind: schema.KindInt, Size: 4},
		{Name: "price", Kind: schema.KindDecimal, Size: 8},
		{Name: "ship", Kind: schema.KindDate, Size: 4},
		{Name: "mode", Kind: schema.KindChar, Size: 10},
		{Name: "note", Kind: schema.KindVarchar, Size: 44},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func smallDisk() cost.Disk {
	return cost.Disk{
		BlockSize:     512,
		BufferSize:    4 * 1024,
		ReadBandwidth: 1e6,
		SeekTime:      1e-3,
	}
}

func TestGeneratorIsDeterministic(t *testing.T) {
	tab := testTable(t, 10)
	g1, g2 := NewGenerator(42), NewGenerator(42)
	a := make([]byte, tab.RowSize())
	b := make([]byte, tab.RowSize())
	for r := int64(0); r < 10; r++ {
		g1.Row(tab, r, a)
		g2.Row(tab, r, b)
		if string(a) != string(b) {
			t.Fatalf("row %d differs between generators with the same seed", r)
		}
	}
	g3 := NewGenerator(43)
	g3.Row(tab, 0, b)
	g1.Row(tab, 0, a)
	if string(a) == string(b) {
		t.Error("different seeds produced identical rows")
	}
}

func TestGeneratorValueSizePanics(t *testing.T) {
	g := NewGenerator(1)
	defer func() {
		if recover() == nil {
			t.Error("Value with wrong dst size did not panic")
		}
	}()
	g.Value(schema.Column{Name: "x", Kind: schema.KindInt, Size: 4}, 0, make([]byte, 3))
}

// The core correctness property: scanning the same query over any layout
// must produce the same tuples (same checksum, same count).
func TestScanChecksumIsLayoutIndependent(t *testing.T) {
	tab := testTable(t, 1_000)
	gen := NewGenerator(7)
	layouts := []partition.Partitioning{
		partition.Row(tab),
		partition.Column(tab),
		partition.Must(tab, []attrset.Set{attrset.Of(0, 2), attrset.Of(1), attrset.Of(3, 4)}),
	}
	queries := []attrset.Set{
		attrset.Of(0),
		attrset.Of(1, 3),
		attrset.Of(0, 1, 2, 3, 4),
	}
	for qi, q := range queries {
		var want ScanStats
		for li, layout := range layouts {
			e, err := NewEngine(layout, smallDisk(), nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := e.Load(gen, tab.Rows); err != nil {
				t.Fatal(err)
			}
			got, err := e.Scan(q)
			if err != nil {
				t.Fatal(err)
			}
			if got.Tuples != tab.Rows {
				t.Errorf("query %d layout %d: %d tuples, want %d", qi, li, got.Tuples, tab.Rows)
			}
			if li == 0 {
				want = got
			} else if got.Checksum != want.Checksum {
				t.Errorf("query %d: checksum differs between layouts 0 and %d", qi, li)
			}
			if err := e.Close(); err != nil {
				t.Error(err)
			}
		}
	}
}

// Bytes read must follow the common-granularity rule: all pages of every
// referenced partition, nothing else.
func TestScanBytesMatchCostModelAccounting(t *testing.T) {
	tab := testTable(t, 5_000)
	gen := NewGenerator(3)
	d := smallDisk()
	layout := partition.Must(tab, []attrset.Set{attrset.Of(0, 1), attrset.Of(2), attrset.Of(3, 4)})
	e, err := NewEngine(layout, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Load(gen, tab.Rows); err != nil {
		t.Fatal(err)
	}
	stats, err := e.Scan(attrset.Of(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := (cost.PartitionBlocks(tab.Rows, 12, d.BlockSize) +
		cost.PartitionBlocks(tab.Rows, 4, d.BlockSize)) * d.BlockSize
	if stats.BytesRead != wantBytes {
		t.Errorf("BytesRead = %d, want %d", stats.BytesRead, wantBytes)
	}
	if stats.ReconJoins != tab.Rows {
		t.Errorf("ReconJoins = %d, want %d (two partitions touched)", stats.ReconJoins, tab.Rows)
	}
	if stats.SimTime <= 0 {
		t.Error("SimTime not charged")
	}
}

// The engine's measured behavior must reproduce the cost model's ordering:
// for a narrow query, column layout reads less and costs less sim-time than
// row layout; and a smaller buffer causes more seeks.
func TestEngineReproducesCostModelOrdering(t *testing.T) {
	tab := testTable(t, 20_000)
	gen := NewGenerator(11)
	d := smallDisk()
	q := attrset.Of(0)

	scan := func(layout partition.Partitioning, disk cost.Disk) ScanStats {
		e, err := NewEngine(layout, disk, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		if err := e.Load(gen, tab.Rows); err != nil {
			t.Fatal(err)
		}
		s, err := e.Scan(q)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	rowStats := scan(partition.Row(tab), d)
	colStats := scan(partition.Column(tab), d)
	if colStats.BytesRead >= rowStats.BytesRead {
		t.Errorf("column read %d bytes, row %d — column must read less", colStats.BytesRead, rowStats.BytesRead)
	}
	if colStats.SimTime >= rowStats.SimTime {
		t.Errorf("column sim time %v, row %v", colStats.SimTime, rowStats.SimTime)
	}

	wide := scan(partition.Column(tab), d)
	narrow := scan(partition.Column(tab), d.WithBuffer(d.BlockSize)) // one page per refill
	if narrow.Seeks <= wide.Seeks {
		t.Errorf("tiny buffer seeks = %d, default = %d — expected more", narrow.Seeks, wide.Seeks)
	}
}

func TestEngineFileBackend(t *testing.T) {
	tab := testTable(t, 2_000)
	gen := NewGenerator(5)
	dir := t.TempDir()
	newBackend := func(name string, pageSize int) (Backend, error) {
		return NewFileBackend(dir, name, pageSize)
	}
	e, err := NewEngine(partition.Column(tab), smallDisk(), newBackend)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Load(gen, tab.Rows); err != nil {
		t.Fatal(err)
	}
	fileStats, err := e.Scan(attrset.Of(1, 4))
	if err != nil {
		t.Fatal(err)
	}

	em, err := NewEngine(partition.Column(tab), smallDisk(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer em.Close()
	if err := em.Load(gen, tab.Rows); err != nil {
		t.Fatal(err)
	}
	memStats, err := em.Scan(attrset.Of(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	if fileStats.Checksum != memStats.Checksum || fileStats.BytesRead != memStats.BytesRead {
		t.Errorf("file backend stats %+v differ from memory backend %+v", fileStats, memStats)
	}
}

func TestEngineRejectsOversizedRows(t *testing.T) {
	tab := schema.MustTable("wide", 10, []schema.Column{
		{Name: "huge", Kind: schema.KindVarchar, Size: 1000},
	})
	d := smallDisk() // 512-byte blocks cannot hold a 1000-byte row
	if _, err := NewEngine(partition.Row(tab), d, nil); err == nil {
		t.Error("NewEngine accepted a row wider than a block")
	}
}

func TestCodecsRoundTrip(t *testing.T) {
	tab := testTable(t, 500)
	gen := NewGenerator(9)
	for _, col := range tab.Columns {
		raw := make([]byte, 500*col.Size)
		for r := int64(0); r < 500; r++ {
			gen.Value(col, r, raw[int(r)*col.Size:int(r+1)*col.Size])
		}
		codecs := []Codec{FlateCodec{}, DictCodec{}}
		if col.Size == 4 {
			codecs = append(codecs, DeltaCodec{})
		}
		for _, c := range codecs {
			comp, err := c.Compress(raw, col.Size)
			if err != nil {
				t.Fatalf("%s/%s compress: %v", col.Name, c.Name(), err)
			}
			back, err := c.Decompress(comp, col.Size, len(raw))
			if err != nil {
				t.Fatalf("%s/%s decompress: %v", col.Name, c.Name(), err)
			}
			if string(back) != string(raw) {
				t.Errorf("%s/%s: round trip mismatch", col.Name, c.Name())
			}
		}
	}
}

func TestDeltaCodecRejectsBadInput(t *testing.T) {
	if _, err := (DeltaCodec{}).Compress(make([]byte, 8), 8); err == nil {
		t.Error("delta accepted 8-byte values")
	}
	if _, err := (DeltaCodec{}).Compress(make([]byte, 7), 4); err == nil {
		t.Error("delta accepted non-multiple length")
	}
}

func TestCompressionRatiosAreSane(t *testing.T) {
	tab := testTable(t, 10_000)
	gen := NewGenerator(13)
	for _, scheme := range []CompressionScheme{SchemeDefault, SchemeDictionary} {
		ratios, err := CompressionRatios(tab, gen, 5_000, scheme)
		if err != nil {
			t.Fatal(err)
		}
		for name, r := range ratios {
			if r <= 0 || r > 1.6 {
				t.Errorf("%v %s ratio = %v, out of sane range", scheme, name, r)
			}
		}
		// Integer keys delta-compress well; repetitive text flate-compresses.
		if scheme == SchemeDefault {
			if ratios["id"] > 0.6 {
				t.Errorf("delta ratio for sequential ints = %v, expected < 0.6", ratios["id"])
			}
			if ratios["note"] > 0.9 {
				t.Errorf("flate ratio for text = %v, expected < 0.9", ratios["note"])
			}
		}
	}
	if _, err := CompressionRatios(tab, gen, 0, SchemeDefault); err == nil {
		t.Error("accepted zero sample rows")
	}
}

// Table 7's mechanism: under default (variable-length) compression a
// grouped layout pays a reconstruction CPU penalty that the column layout
// avoids; dictionary compression narrows the gap.
func TestCompressedScanTable7Mechanism(t *testing.T) {
	tab := testTable(t, 1_000_000)
	gen := NewGenerator(17)
	tw := schema.TableWorkload{Table: tab, Queries: []schema.TableQuery{
		{ID: "q", Weight: 1, Attrs: attrset.Of(0, 1)},
	}}
	d := cost.DefaultDisk()
	grouped := []attrset.Set{attrset.Of(0, 1), attrset.Of(2), attrset.Of(3), attrset.Of(4)}
	col := partition.Column(tab).Parts
	const joinCPU = 50e-9

	for _, scheme := range []CompressionScheme{SchemeDefault, SchemeDictionary} {
		ratios, err := CompressionRatios(tab, gen, 5_000, scheme)
		if err != nil {
			t.Fatal(err)
		}
		g := CompressedScanSeconds(tw, grouped, d, ratios, scheme, joinCPU)
		c := CompressedScanSeconds(tw, col, d, ratios, scheme, joinCPU)
		if g <= 0 || c <= 0 {
			t.Fatalf("%v: non-positive scan seconds", scheme)
		}
		if scheme == SchemeDefault && g <= c {
			t.Errorf("default compression: grouped (%v) should cost more than column (%v)", g, c)
		}
		if scheme == SchemeDictionary {
			gap := math.Abs(g-c) / c
			if gap > 0.3 {
				t.Errorf("dictionary compression: gap %.0f%% too large", gap*100)
			}
		}
	}
}
