package storage

import (
	"bytes"
	"testing"

	"knives/internal/schema"
)

// FuzzCompressRoundTrip pins the compression contract every replay and
// Table 7 estimate rests on: whatever bytes go into a codec come back out
// bit-identical. A silent corruption here would skew compressed byte
// volumes (and therefore every DBMS-X runtime claim) without any test
// noticing.
func FuzzCompressRoundTrip(f *testing.F) {
	f.Add([]byte("quick silent bread knife"), 4, byte(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, 4, byte(1))
	f.Add([]byte{0, 0, 0, 0}, 4, byte(2))
	f.Add([]byte{}, 1, byte(1))
	f.Fuzz(func(t *testing.T, data []byte, valueSize int, codecSel byte) {
		var codec Codec
		switch codecSel % 3 {
		case 0:
			codec = FlateCodec{}
		case 1:
			codec = DictCodec{}
		case 2:
			// Delta only accepts 4-byte values; steer instead of skipping so
			// the codec still sees arbitrary payloads.
			codec = DeltaCodec{}
			valueSize = 4
		}
		if valueSize < 1 {
			valueSize = 1
		}
		if valueSize > 64 {
			valueSize = valueSize%64 + 1
		}
		data = data[:len(data)-len(data)%valueSize]
		comp, err := codec.Compress(data, valueSize)
		if err != nil {
			t.Fatalf("%s: compress rejected %d bytes of %d-byte values: %v",
				codec.Name(), len(data), valueSize, err)
		}
		back, err := codec.Decompress(comp, valueSize, len(data))
		if err != nil {
			t.Fatalf("%s: decompress: %v", codec.Name(), err)
		}
		if !bytes.Equal(back, data) {
			t.Errorf("%s: round trip of %d bytes not bit-identical", codec.Name(), len(data))
		}
	})
}

// FuzzDatagen pins the generator contract the whole validation story rests
// on: values are a pure function of (seed, column, row) — so any partition
// of any layout regenerates identical bytes — and Value fills its
// destination completely, never leaving stale bytes that would desync
// checksums between layouts. The benchmark is rebuilt per case so the
// determinism claim covers (seed, sf), not just a fixed schema.
func FuzzDatagen(f *testing.F) {
	f.Add(int64(1), uint16(10), uint32(0), byte(0))
	f.Add(int64(-7), uint16(1), uint32(99), byte(3))
	f.Add(int64(0), uint16(1000), uint32(1<<20), byte(200))
	f.Fuzz(func(t *testing.T, seed int64, sfMilli uint16, row uint32, colSel byte) {
		if sfMilli == 0 {
			sfMilli = 1
		}
		sf := float64(sfMilli) / 1000
		li := schema.TPCH(sf).Table("lineitem")
		li2 := schema.TPCH(sf).Table("lineitem")
		if li.Rows != li2.Rows {
			t.Fatalf("TPCH(%v) row counts differ between builds: %d vs %d", sf, li.Rows, li2.Rows)
		}
		col := li.Columns[int(colSel)%len(li.Columns)]
		r := int64(row)
		if li.Rows > 0 {
			r %= li.Rows
		}
		// Two fresh generators with the same seed must agree; two fill
		// patterns must end identical, proving every dst byte was written.
		a := make([]byte, col.Size)
		b := make([]byte, col.Size)
		for i := range b {
			b[i] = 0xAA
		}
		NewGenerator(seed).Value(col, r, a)
		NewGenerator(seed).Value(li2.Columns[int(colSel)%len(li2.Columns)], r, b)
		if !bytes.Equal(a, b) {
			t.Errorf("seed %d sf %v %s row %d: value depends on dst contents or generator state",
				seed, sf, col.Name, r)
		}
	})
}
