// Package storage implements the storage substrate the experiments run on:
// a deterministic synthetic data generator, page-structured column-group
// files behind in-memory or on-disk backends, a scan engine with
// proportional buffer sharing and tuple reconstruction, and the compression
// codecs used to stand in for the paper's commercial column store DBMS-X
// (Table 7).
//
// The paper's headline numbers come from its I/O cost model, not from
// wall-clock runs, so this engine's job is validation: demonstrating that
// real scans over vertically partitioned data reproduce the cost model's
// orderings (bytes read, seek counts, layout rankings) and exercising the
// compression trade-offs of Table 7.
package storage

import (
	"encoding/binary"
	"fmt"

	"knives/internal/schema"
)

// DateDomain is the number of distinct day values date columns draw from
// (~7 years, like TPC-H's order dates). Generated dates are near-uniform
// over [0, DateDomain), so a predicate date < frac·DateDomain selects
// close to fraction frac of the rows — the knob the selectivity
// experiments turn.
const DateDomain = 2526

// Generator produces deterministic synthetic rows for a table. Values are
// derived from a seed, the column name, and the row number, so any
// partition of any layout regenerates identical bytes — which is what lets
// scan checksums validate tuple reconstruction across layouts.
type Generator struct {
	seed  uint64
	vocab []string
}

// NewGenerator returns a generator for the given seed.
func NewGenerator(seed int64) *Generator {
	return &Generator{seed: uint64(seed), vocab: buildVocab()}
}

// buildVocab returns a small word list used for string columns; the small
// domain keeps dictionary compression effective, like TPC-H's generated
// comments built from a fixed grammar.
func buildVocab() []string {
	base := []string{
		"quick", "silent", "bread", "knife", "slice", "crumb", "crust",
		"oven", "flour", "yeast", "baker", "sharp", "dull", "serrated",
		"blade", "table", "query", "index", "scan", "page", "buffer",
		"disk", "seek", "block", "tuple", "joins", "group", "layout",
	}
	return base
}

// splitmix64 advances a 64-bit state and returns a well-mixed value; it is
// the standard SplitMix64 generator, chosen because it is stateless per
// call and therefore trivially deterministic per (seed, column, row).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (g *Generator) rnd(col string, row int64) uint64 {
	h := g.seed
	for _, b := range []byte(col) {
		h = splitmix64(h ^ uint64(b))
	}
	return splitmix64(h ^ uint64(row))
}

// Value writes the value of the given column at the given row into dst,
// which must be exactly col.Size bytes long.
func (g *Generator) Value(col schema.Column, row int64, dst []byte) {
	if len(dst) != col.Size {
		panic(fmt.Sprintf("storage: Value dst has %d bytes, column %s needs %d", len(dst), col.Name, col.Size))
	}
	r := g.rnd(col.Name, row)
	switch col.Kind {
	case schema.KindInt:
		// Key-like: mostly sequential with occasional jitter, giving delta
		// encoding something to work with.
		v := uint32(row) + uint32(r%7)
		binary.LittleEndian.PutUint32(pad4(dst), v)
	case schema.KindDate:
		v := uint32(r % DateDomain)
		binary.LittleEndian.PutUint32(pad4(dst), v)
	case schema.KindDecimal:
		// Prices with two decimals from a bounded domain.
		v := uint64(r%9_000_00) + 100_00
		if col.Size >= 8 {
			binary.LittleEndian.PutUint64(dst[:8], v)
			zero(dst[8:])
		} else {
			binary.LittleEndian.PutUint32(pad4(dst), uint32(v))
		}
	case schema.KindChar, schema.KindVarchar:
		g.fillText(dst, r)
	default:
		g.fillText(dst, r)
	}
}

// pad4 returns a 4-byte window of dst, zeroing any tail beyond it.
func pad4(dst []byte) []byte {
	if len(dst) >= 4 {
		zero(dst[4:])
		return dst[:4]
	}
	// Narrower than 4 bytes: use what is there (value truncates).
	return dst
}

func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// fillText fills dst with space-separated vocabulary words. Text is
// moderately repetitive, so LZ-family codecs compress it well — mirroring
// TPC-H comments.
func (g *Generator) fillText(dst []byte, r uint64) {
	pos := 0
	for pos < len(dst) {
		w := g.vocab[r%uint64(len(g.vocab))]
		r = splitmix64(r)
		for i := 0; i < len(w) && pos < len(dst); i++ {
			dst[pos] = w[i]
			pos++
		}
		if pos < len(dst) {
			dst[pos] = ' '
			pos++
		}
	}
}

// Row writes one full row (all columns of the table, in column order) into
// dst, which must be t.RowSize() bytes long.
func (g *Generator) Row(t *schema.Table, row int64, dst []byte) {
	if int64(len(dst)) != t.RowSize() {
		panic(fmt.Sprintf("storage: Row dst has %d bytes, table %s needs %d", len(dst), t.Name, t.RowSize()))
	}
	off := 0
	for _, col := range t.Columns {
		g.Value(col, row, dst[off:off+col.Size])
		off += col.Size
	}
}
