package storage

import (
	"fmt"
	"hash/fnv"

	"knives/internal/attrset"
	"knives/internal/cost"
	"knives/internal/partition"
	"knives/internal/schema"
)

// ScanStats reports what one query scan did.
type ScanStats struct {
	Tuples     int64   // tuples reconstructed
	BytesRead  int64   // page bytes fetched from the backends
	Seeks      int64   // buffer refills (one seek each, as in the cost model)
	SimTime    float64 // seconds charged by the virtual disk
	ReconJoins int64   // tuple-reconstruction joins performed
	Checksum   uint64  // layout-independent digest of the projected values
}

// Engine executes scan/projection queries over one table stored in a
// vertical layout, following the paper's common-granularity rule: every
// partition containing a referenced attribute is read in full, through an
// I/O buffer shared proportionally to the partitions' row sizes.
type Engine struct {
	table  *schema.Table
	layout partition.Partitioning
	disk   cost.Disk
	gen    *Generator

	parts      []enginePart
	loadedRows int64
}

type enginePart struct {
	attrs       attrset.Set
	cols        []int // column indexes in attribute order
	offsets     []int // byte offset of each column within the partition row
	rowSize     int
	rowsPerPage int
	backend     Backend
}

// NewEngine creates an engine for the table with the given layout and disk
// parameters. newBackend is invoked once per partition; pass nil to use
// in-memory backends.
func NewEngine(layout partition.Partitioning, disk cost.Disk, newBackend func(name string, pageSize int) (Backend, error)) (*Engine, error) {
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	if err := disk.Validate(); err != nil {
		return nil, err
	}
	if newBackend == nil {
		newBackend = func(_ string, pageSize int) (Backend, error) {
			return NewMemBackend(pageSize), nil
		}
	}
	t := layout.Table
	e := &Engine{table: t, layout: layout.Canonical(), disk: disk}
	for i, p := range e.layout.Parts {
		ep := enginePart{attrs: p}
		off := 0
		p.ForEach(func(a int) {
			ep.cols = append(ep.cols, a)
			ep.offsets = append(ep.offsets, off)
			off += t.Columns[a].Size
		})
		ep.rowSize = off
		ep.rowsPerPage = int(disk.BlockSize) / off
		if ep.rowsPerPage < 1 {
			return nil, fmt.Errorf("storage: partition %v row size %d exceeds block size %d",
				p, off, disk.BlockSize)
		}
		b, err := newBackend(fmt.Sprintf("%s_p%d", t.Name, i), int(disk.BlockSize))
		if err != nil {
			return nil, err
		}
		ep.backend = b
		e.parts = append(e.parts, ep)
	}
	return e, nil
}

// Close releases all partition backends.
func (e *Engine) Close() error {
	var first error
	for _, p := range e.parts {
		if err := p.backend.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Load generates rows rows with gen and writes every partition's pages.
func (e *Engine) Load(gen *Generator, rows int64) error {
	e.gen = gen
	for pi := range e.parts {
		p := &e.parts[pi]
		page := make([]byte, e.disk.BlockSize)
		inPage := 0
		for r := int64(0); r < rows; r++ {
			base := inPage * p.rowSize
			for ci, col := range p.cols {
				c := e.table.Columns[col]
				e.gen.Value(c, r, page[base+p.offsets[ci]:base+p.offsets[ci]+c.Size])
			}
			inPage++
			if inPage == p.rowsPerPage {
				if err := p.backend.WritePage(page); err != nil {
					return err
				}
				zero(page)
				inPage = 0
			}
		}
		if inPage > 0 {
			if err := p.backend.WritePage(page); err != nil {
				return err
			}
		}
	}
	e.loadedRows = rows
	return nil
}

// Scan executes a projection query: it reads every partition containing a
// referenced attribute in full, reconstructs tuples, and digests the
// projected attribute values into a layout-independent checksum.
func (e *Engine) Scan(query attrset.Set) (ScanStats, error) {
	var stats ScanStats
	query = query.Intersect(e.table.AllAttrs())
	if query.IsEmpty() {
		return stats, nil
	}

	// Referenced partitions and the proportional buffer split.
	var refs []*enginePart
	var totalRowSize int64
	for pi := range e.parts {
		p := &e.parts[pi]
		if p.attrs.Overlaps(query) {
			refs = append(refs, p)
			totalRowSize += int64(p.rowSize)
		}
	}

	type cursor struct {
		p         *enginePart
		pagesBuff int64  // pages per buffer refill
		page      []byte // current page
		buffered  int64  // pages remaining in the buffer
		nextPage  int64  // next page index to fetch
		inPage    int    // row index within the current page
	}
	cursors := make([]*cursor, len(refs))
	for i, p := range refs {
		buff := e.disk.BufferSize * int64(p.rowSize) / totalRowSize
		pagesBuff := buff / e.disk.BlockSize
		if pagesBuff < 1 {
			pagesBuff = 1
		}
		cursors[i] = &cursor{p: p, pagesBuff: pagesBuff, page: make([]byte, e.disk.BlockSize)}
	}

	// fetch loads the cursor's next page, charging a seek whenever its
	// buffer allotment is exhausted (the cost model's refill rule).
	fetch := func(c *cursor) error {
		if c.buffered == 0 {
			stats.Seeks++
			c.buffered = c.pagesBuff
		}
		if err := c.p.backend.ReadPage(c.nextPage, c.page); err != nil {
			return err
		}
		stats.BytesRead += e.disk.BlockSize
		c.nextPage++
		c.buffered--
		c.inPage = 0
		return nil
	}

	h := fnv.New64a()
	queryCols := query.Attrs()
	// Map each referenced column to (cursor, offset) for reconstruction.
	type colRef struct {
		c    *cursor
		off  int
		size int
	}
	colRefs := make([]colRef, 0, len(queryCols))
	for _, col := range queryCols {
		for _, c := range cursors {
			if !c.p.attrs.Has(col) {
				continue
			}
			for ci, pc := range c.p.cols {
				if pc == col {
					colRefs = append(colRefs, colRef{c: c, off: c.p.offsets[ci], size: e.table.Columns[col].Size})
				}
			}
		}
	}

	for r := int64(0); r < e.loadedRows; r++ {
		for _, c := range cursors {
			if c.nextPage == 0 || c.inPage == c.p.rowsPerPage {
				if err := fetch(c); err != nil {
					return stats, err
				}
			}
		}
		for _, cr := range colRefs {
			base := cr.c.inPage * cr.c.p.rowSize
			h.Write(cr.c.page[base+cr.off : base+cr.off+cr.size])
		}
		for _, c := range cursors {
			c.inPage++
		}
		stats.Tuples++
		stats.ReconJoins += int64(len(refs) - 1)
	}

	stats.SimTime = float64(stats.Seeks)*e.disk.SeekTime +
		float64(stats.BytesRead)/e.disk.ReadBandwidth
	stats.Checksum = h.Sum64()
	return stats, nil
}
