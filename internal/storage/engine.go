package storage

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"knives/internal/attrset"
	"knives/internal/cost"
	"knives/internal/partition"
	"knives/internal/schema"
)

// ScanStats reports what one query scan did.
type ScanStats struct {
	Tuples     int64   // tuples reconstructed
	BytesRead  int64   // page bytes fetched from the backends
	Seeks      int64   // buffer refills (one seek each, as in the cost model)
	SimTime    float64 // seconds charged by the virtual disk
	ReconJoins int64   // tuple-reconstruction joins performed
	Checksum   uint64  // layout-independent digest of the projected values
	CacheLines int64   // cache lines touched walking the referenced column-group streams
	// Parts breaks the totals down per referenced partition, in the
	// layout's canonical order — the same order the cost model sums its
	// per-partition terms in, which is what lets replayed measurements
	// equal model predictions bit for bit.
	Parts []PartScanStats
}

// PartScanStats is one referenced partition's share of a scan.
type PartScanStats struct {
	Attrs      attrset.Set // the partition's column group
	RowSize    int         // bytes per partition row
	BytesRead  int64       // page bytes fetched for this partition
	Seeks      int64       // buffer refills charged to this partition
	CacheLines int64       // cache lines of the partition's logical stream touched
}

// Engine executes scan/projection queries over one table stored in a
// vertical layout, following the paper's common-granularity rule: every
// partition containing a referenced attribute is read in full, through an
// I/O buffer shared proportionally to the partitions' row sizes.
//
// The physical layout lives in an EPOCH the engine swaps atomically:
// Repartition builds the next epoch's partition files off to the side and
// publishes them in one pointer store, so any number of concurrent Scans
// keep streaming the epoch they started on while the store migrates
// underneath them. Superseded partition files stay open (retired) until
// Close, bounding what an in-flight scan can ever observe to a fully
// materialized layout.
type Engine struct {
	table      *schema.Table
	disk       cost.Disk
	gen        *Generator
	cacheLine  int64
	newBackend func(name string, pageSize int) (Backend, error)

	epoch atomic.Pointer[engineEpoch]

	// mu serializes the structural operations (Repartition, Close) against
	// each other; Scan never takes it.
	mu       sync.Mutex
	retired  []Backend
	epochSeq int
	closed   bool
}

// engineEpoch is one immutable-after-publish physical layout: the partition
// files and the row count they hold. Scans snapshot the epoch pointer once
// on entry and never look back at the engine.
type engineEpoch struct {
	layout partition.Partitioning
	parts  []enginePart
	rows   int64
}

// DefaultCacheLine is the fallback cache-line granularity Scan counts
// logical-stream transfers at when the engine's device does not set one; it
// matches cost.DefaultCacheLineSize.
const DefaultCacheLine = 64

type enginePart struct {
	attrs       attrset.Set
	cols        []int // column indexes in attribute order
	offsets     []int // byte offset of each column within the partition row
	rowSize     int
	rowsPerPage int
	backend     Backend
}

// buildPart lays one partition's row format out over the table's columns.
func buildPart(t *schema.Table, p attrset.Set, blockSize int64) (enginePart, error) {
	ep := enginePart{attrs: p}
	off := 0
	p.ForEach(func(a int) {
		ep.cols = append(ep.cols, a)
		ep.offsets = append(ep.offsets, off)
		off += t.Columns[a].Size
	})
	ep.rowSize = off
	ep.rowsPerPage = int(blockSize) / off
	if ep.rowsPerPage < 1 {
		return enginePart{}, fmt.Errorf("storage: partition %v row size %d exceeds block size %d",
			p, off, blockSize)
	}
	return ep, nil
}

// NewEngine creates an engine for the table with the given layout and disk
// parameters. newBackend is invoked once per partition file (and again for
// every partition a later Repartition creates); pass nil to use in-memory
// backends.
func NewEngine(layout partition.Partitioning, disk cost.Disk, newBackend func(name string, pageSize int) (Backend, error)) (*Engine, error) {
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	if err := disk.Validate(); err != nil {
		return nil, err
	}
	if newBackend == nil {
		newBackend = func(_ string, pageSize int) (Backend, error) {
			return NewMemBackend(pageSize), nil
		}
	}
	t := layout.Table
	// The device's own cache-line granularity drives the engine's line
	// accounting, so a cache-priced device measures with the lines it is
	// priced in without any caller having to call SetCacheLine.
	cacheLine := disk.CacheLineSize
	if cacheLine <= 0 {
		cacheLine = DefaultCacheLine
	}
	e := &Engine{table: t, disk: disk, cacheLine: cacheLine, newBackend: newBackend}
	ep := &engineEpoch{layout: layout.Canonical()}
	for i, p := range ep.layout.Parts {
		part, err := buildPart(t, p, disk.BlockSize)
		if err != nil {
			return nil, err
		}
		b, err := newBackend(fmt.Sprintf("%s_p%d", t.Name, i), int(disk.BlockSize))
		if err != nil {
			return nil, err
		}
		part.backend = b
		ep.parts = append(ep.parts, part)
	}
	e.epoch.Store(ep)
	return e, nil
}

// Table returns the logical table the engine stores.
func (e *Engine) Table() *schema.Table { return e.table }

// Layout returns the current epoch's partitioning (canonical order).
func (e *Engine) Layout() partition.Partitioning { return e.epoch.Load().layout }

// Rows returns the number of rows the current epoch holds.
func (e *Engine) Rows() int64 { return e.epoch.Load().rows }

// Close releases all partition backends, current and retired.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	var first error
	for _, p := range e.epoch.Load().parts {
		if err := p.backend.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, b := range e.retired {
		if err := b.Close(); err != nil && first == nil {
			first = err
		}
	}
	e.retired = nil
	return first
}

// SetCacheLine changes the granularity Scan counts cache-line transfers at.
// The engine initializes it from its device's CacheLineSize (64-byte
// default); replay.OnEngine re-syncs it to the model a caller-built engine
// is validated against. Must be called before Scan, not concurrently with
// it.
func (e *Engine) SetCacheLine(bytes int64) error {
	if bytes <= 0 {
		return fmt.Errorf("storage: cache line size %d must be positive", bytes)
	}
	e.cacheLine = bytes
	return nil
}

// Load generates rows rows with gen and writes every partition's pages.
func (e *Engine) Load(gen *Generator, rows int64) error {
	return e.LoadParallel(gen, rows, 1)
}

// LoadParallel is Load with a partition-parallel worker pool: each partition
// file is generated and written by one worker, workers at a time. Partitions
// share nothing during materialization — the generator derives every value
// from (seed, column, row) statelessly and each partition owns its backend —
// so any worker count produces byte-identical files. workers <= 0 uses one
// worker per partition. Load must complete before the first Scan (the same
// happens-before the engine has always required).
func (e *Engine) LoadParallel(gen *Generator, rows int64, workers int) error {
	e.gen = gen
	ep := e.epoch.Load()
	if workers <= 0 || workers > len(ep.parts) {
		workers = len(ep.parts)
	}
	sem := make(chan struct{}, workers)
	errs := make([]error, len(ep.parts))
	var wg sync.WaitGroup
	for pi := range ep.parts {
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[pi] = e.loadPart(&ep.parts[pi], rows)
		}(pi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	ep.rows = rows
	return nil
}

// loadPart generates and writes one partition's pages.
func (e *Engine) loadPart(p *enginePart, rows int64) error {
	page := make([]byte, e.disk.BlockSize)
	inPage := 0
	for r := int64(0); r < rows; r++ {
		base := inPage * p.rowSize
		for ci, col := range p.cols {
			c := e.table.Columns[col]
			e.gen.Value(c, r, page[base+p.offsets[ci]:base+p.offsets[ci]+c.Size])
		}
		inPage++
		if inPage == p.rowsPerPage {
			if err := p.backend.WritePage(page); err != nil {
				return err
			}
			zero(page)
			inPage = 0
		}
	}
	if inPage > 0 {
		if err := p.backend.WritePage(page); err != nil {
			return err
		}
	}
	return nil
}

// Scan executes a projection query: it reads every partition containing a
// referenced attribute in full, reconstructs tuples, and digests the
// projected attribute values into a layout-independent checksum.
//
// Scan snapshots the current epoch once and keeps all of its state in local
// cursors, so after Load has returned, any number of Scans may run
// concurrently over the same engine — including concurrently with a
// Repartition, which publishes a new epoch without disturbing the one an
// in-flight scan is streaming.
func (e *Engine) Scan(query attrset.Set) (ScanStats, error) {
	ep := e.epoch.Load()
	var stats ScanStats
	query = query.Intersect(e.table.AllAttrs())
	if query.IsEmpty() {
		return stats, nil
	}

	// Referenced partitions and the proportional buffer split.
	var refs []*enginePart
	var totalRowSize int64
	for pi := range ep.parts {
		p := &ep.parts[pi]
		if p.attrs.Overlaps(query) {
			refs = append(refs, p)
			totalRowSize += int64(p.rowSize)
		}
	}

	type cursor struct {
		p         *enginePart
		pagesBuff int64  // pages per buffer refill
		page      []byte // current page
		buffered  int64  // pages remaining in the buffer
		nextPage  int64  // next page index to fetch
		inPage    int    // row index within the current page
		seeks     int64  // buffer refills charged to this partition
		bytes     int64  // page bytes fetched for this partition
	}
	cursors := make([]*cursor, len(refs))
	for i, p := range refs {
		buff := e.disk.BufferSize * int64(p.rowSize) / totalRowSize
		pagesBuff := buff / e.disk.BlockSize
		if pagesBuff < 1 {
			pagesBuff = 1
		}
		cursors[i] = &cursor{p: p, pagesBuff: pagesBuff, page: make([]byte, e.disk.BlockSize)}
	}

	// fetch loads the cursor's next page, charging a seek whenever its
	// buffer allotment is exhausted (the cost model's refill rule).
	fetch := func(c *cursor) error {
		if c.buffered == 0 {
			c.seeks++
			c.buffered = c.pagesBuff
		}
		if err := c.p.backend.ReadPage(c.nextPage, c.page); err != nil {
			return err
		}
		c.bytes += e.disk.BlockSize
		c.nextPage++
		c.buffered--
		c.inPage = 0
		return nil
	}

	h := fnv.New64a()
	queryCols := query.Attrs()
	// Map each referenced column to (cursor, offset) for reconstruction.
	type colRef struct {
		c    *cursor
		off  int
		size int
	}
	colRefs := make([]colRef, 0, len(queryCols))
	for _, col := range queryCols {
		for _, c := range cursors {
			if !c.p.attrs.Has(col) {
				continue
			}
			for ci, pc := range c.p.cols {
				if pc == col {
					colRefs = append(colRefs, colRef{c: c, off: c.p.offsets[ci], size: e.table.Columns[col].Size})
				}
			}
		}
	}

	for r := int64(0); r < ep.rows; r++ {
		for _, c := range cursors {
			if c.nextPage == 0 || c.inPage == c.p.rowsPerPage {
				if err := fetch(c); err != nil {
					return stats, err
				}
			}
		}
		for _, cr := range colRefs {
			base := cr.c.inPage * cr.c.p.rowSize
			h.Write(cr.c.page[base+cr.off : base+cr.off+cr.size])
		}
		for _, c := range cursors {
			c.inPage++
		}
		stats.Tuples++
		stats.ReconJoins += int64(len(refs) - 1)
	}

	// Aggregate per-partition measurements in cursor (canonical layout)
	// order, charging simulated time with the SAME per-partition grouping
	// and summation order as the block-pricing QueryCost — floating-point addition
	// is not associative, so any other order could differ in the last bit.
	for _, c := range cursors {
		// Cache lines of the partition's logical stream entered by the row
		// walk above: the walk is sequential and reads the partition in
		// full, so the distinct lines touched are exactly the lines of
		// [0, rows*rowSize) — counting them per row would recompute this
		// constant in the hot loop.
		lines := cost.StreamLines(ep.rows, int64(c.p.rowSize), e.cacheLine)
		ps := PartScanStats{
			Attrs:      c.p.attrs,
			RowSize:    c.p.rowSize,
			BytesRead:  c.bytes,
			Seeks:      c.seeks,
			CacheLines: lines,
		}
		stats.Parts = append(stats.Parts, ps)
		stats.Seeks += ps.Seeks
		stats.BytesRead += ps.BytesRead
		stats.CacheLines += ps.CacheLines
		stats.SimTime += e.disk.SeekTime*float64(ps.Seeks) +
			float64(ps.BytesRead)/e.disk.ReadBandwidth
	}
	stats.Checksum = h.Sum64()
	return stats, nil
}
