package storage

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"knives/internal/attrset"
	"knives/internal/cost"
	"knives/internal/faultinject"
	"knives/internal/partition"
	"knives/internal/schema"
	"knives/internal/vfs"
)

// failingBackend injects failures at configurable points to verify that
// the engine surfaces I/O errors instead of corrupting results.
type failingBackend struct {
	inner      Backend
	failWrite  int // fail the n-th write (1-based); 0 = never
	failRead   int // fail the n-th read (1-based); 0 = never
	writes     int
	reads      int
	closeError error
}

var errInjected = errors.New("injected I/O failure")

func (f *failingBackend) WritePage(p []byte) error {
	f.writes++
	if f.failWrite > 0 && f.writes == f.failWrite {
		return errInjected
	}
	return f.inner.WritePage(p)
}

func (f *failingBackend) ReadPage(idx int64, dst []byte) error {
	f.reads++
	if f.failRead > 0 && f.reads == f.failRead {
		return errInjected
	}
	return f.inner.ReadPage(idx, dst)
}

func (f *failingBackend) Pages() int64 { return f.inner.Pages() }
func (f *failingBackend) Close() error {
	if f.closeError != nil {
		return f.closeError
	}
	return f.inner.Close()
}

func failureFixture(t *testing.T, fb func() *failingBackend) (*Engine, *schema.Table) {
	t.Helper()
	tab := schema.MustTable("t", 3_000, []schema.Column{
		{Name: "a", Kind: schema.KindInt, Size: 4},
		{Name: "b", Kind: schema.KindVarchar, Size: 24},
	})
	e, err := NewEngine(partition.Column(tab), smallDisk(), func(string, int) (Backend, error) {
		b := fb()
		b.inner = NewMemBackend(512)
		return b, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, tab
}

func TestLoadPropagatesWriteFailure(t *testing.T) {
	e, tab := failureFixture(t, func() *failingBackend { return &failingBackend{failWrite: 3} })
	defer e.Close()
	err := e.Load(NewGenerator(1), tab.Rows)
	if !errors.Is(err, errInjected) {
		t.Errorf("Load error = %v, want injected failure", err)
	}
}

func TestScanPropagatesReadFailure(t *testing.T) {
	e, tab := failureFixture(t, func() *failingBackend { return &failingBackend{failRead: 2} })
	defer e.Close()
	if err := e.Load(NewGenerator(1), tab.Rows); err != nil {
		t.Fatal(err)
	}
	_, err := e.Scan(attrset.Of(0))
	if !errors.Is(err, errInjected) {
		t.Errorf("Scan error = %v, want injected failure", err)
	}
}

func TestClosePropagatesBackendError(t *testing.T) {
	closeErr := errors.New("close failed")
	e, _ := failureFixture(t, func() *failingBackend { return &failingBackend{closeError: closeErr} })
	if err := e.Close(); !errors.Is(err, closeErr) {
		t.Errorf("Close error = %v, want %v", err, closeErr)
	}
}

func TestNewEngineRejectsBadInputs(t *testing.T) {
	tab := schema.MustTable("t", 10, []schema.Column{{Name: "a", Size: 4}})
	// Invalid disk.
	if _, err := NewEngine(partition.Row(tab), cost.Disk{}, nil); err == nil {
		t.Error("accepted zero disk")
	}
	// Invalid layout (wrong table coverage).
	bad := partition.Partitioning{Table: tab, Parts: nil}
	if _, err := NewEngine(bad, smallDisk(), nil); err == nil {
		t.Error("accepted invalid layout")
	}
	// Backend constructor failure propagates.
	boom := errors.New("no space")
	_, err := NewEngine(partition.Row(tab), smallDisk(), func(string, int) (Backend, error) {
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Errorf("constructor error = %v", err)
	}
}

func TestMemBackendBounds(t *testing.T) {
	b := NewMemBackend(64)
	if err := b.WritePage(make([]byte, 32)); err == nil {
		t.Error("accepted short page")
	}
	if err := b.WritePage(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 64)
	if err := b.ReadPage(1, dst); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("out-of-range read error = %v", err)
	}
	if err := b.ReadPage(-1, dst); err == nil {
		t.Error("accepted negative page index")
	}
}

func TestFileBackendBounds(t *testing.T) {
	b, err := NewFileBackend(t.TempDir(), "x", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.WritePage(make([]byte, 10)); err == nil {
		t.Error("accepted short page")
	}
	if err := b.WritePage(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if err := b.ReadPage(5, make([]byte, 64)); err == nil {
		t.Error("accepted out-of-range read")
	}
	if got := b.Pages(); got != 1 {
		t.Errorf("Pages = %d", got)
	}
}

func TestFileBackendCreateFailure(t *testing.T) {
	// A directory whose parent is a regular file cannot be created.
	plain := filepath.Join(t.TempDir(), "plain")
	if err := os.WriteFile(plain, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFileBackend(filepath.Join(plain, "sub"), "x", 64); err == nil {
		t.Error("accepted uncreatable directory")
	}
}

// injectedEngine builds an engine whose partition files live behind a
// fault-injecting filesystem: unlike failingBackend above, the scheduled
// errors come back through the whole real I/O path.
func injectedEngine(t *testing.T, faults ...faultinject.Fault) (*Engine, *schema.Table, *faultinject.Injector) {
	t.Helper()
	tab := schema.MustTable("t", 3_000, []schema.Column{
		{Name: "a", Kind: schema.KindInt, Size: 4},
		{Name: "b", Kind: schema.KindVarchar, Size: 24},
	})
	fsys, err := vfs.Dir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(fsys, faults...)
	e, err := NewEngine(partition.Column(tab), smallDisk(), func(name string, pageSize int) (Backend, error) {
		return NewFileBackendFS(inj, name, pageSize)
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, tab, inj
}

func TestFileBackendInjectedWriteFault(t *testing.T) {
	e, tab, inj := injectedEngine(t, faultinject.FailNthWrite(3))
	defer e.Close()
	if err := e.Load(NewGenerator(1), tab.Rows); !errors.Is(err, faultinject.ErrInjected) {
		t.Errorf("Load error = %v, want injected fault", err)
	}
	if inj.Injected() != 1 {
		t.Errorf("injected = %d, want 1", inj.Injected())
	}
}

func TestFileBackendInjectedShortRead(t *testing.T) {
	e, tab, _ := injectedEngine(t, faultinject.ShortNthRead(2, 7))
	defer e.Close()
	if err := e.Load(NewGenerator(1), tab.Rows); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Scan(attrset.Of(0)); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("Scan error = %v, want short-read failure", err)
	}
}

func TestFileBackendInjectedCrashLatches(t *testing.T) {
	fsys, err := vfs.Dir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(fsys, faultinject.CrashAtWrite(1, 0))
	b, err := NewFileBackendFS(inj, "x", 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.WritePage(make([]byte, 64)); err == nil {
		t.Fatal("crash-scheduled write succeeded")
	}
	// The simulated process is dead: every later operation must fail too.
	if err := b.WritePage(make([]byte, 64)); !errors.Is(err, faultinject.ErrCrashed) {
		t.Errorf("post-crash write error = %v, want ErrCrashed", err)
	}
}
