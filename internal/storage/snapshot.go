package storage

import (
	"fmt"

	"knives/internal/attrset"
	"knives/internal/cost"
	"knives/internal/partition"
	"knives/internal/schema"
)

// Snapshot pins one engine epoch for operator-level access: the physical
// layout, the row count, and per-partition page streams, all immutable
// after the snapshot is taken. Any number of snapshots (and the cursors
// opened on them) may be used concurrently with Scans and with a
// Repartition publishing a new epoch — the pinned epoch's backends stay
// open (retired, at worst) until the engine is closed, exactly the
// guarantee concurrent Scans already rely on.
//
// Snapshot is the seam the operator layer (internal/operator) builds its
// σ/π/⋈ pipeline on: where Engine.Scan is one monolithic "read every
// referenced partition and reconstruct" loop, a snapshot hands out one
// PartCursor per partition and lets the caller compose the reads — while
// keeping the accounting (proportional buffer split, seek-per-refill,
// whole-page reads) in this package, bit-identical to Scan's, so composed
// pipelines measure exactly what the cost model predicts.
type Snapshot struct {
	table     *schema.Table
	disk      cost.Disk
	cacheLine int64
	ep        *engineEpoch
}

// Snapshot pins the engine's current epoch. Like Scan, it must not be
// called before Load has completed.
func (e *Engine) Snapshot() *Snapshot {
	return &Snapshot{table: e.table, disk: e.disk, cacheLine: e.cacheLine, ep: e.epoch.Load()}
}

// Table returns the logical table the snapshot stores.
func (s *Snapshot) Table() *schema.Table { return s.table }

// Rows returns the number of rows the pinned epoch holds.
func (s *Snapshot) Rows() int64 { return s.ep.rows }

// Layout returns the pinned epoch's partitioning (canonical order).
func (s *Snapshot) Layout() partition.Partitioning { return s.ep.layout }

// NumParts returns the number of partitions in the pinned layout.
func (s *Snapshot) NumParts() int { return len(s.ep.parts) }

// PartAttrs returns the column group of partition i (canonical order).
func (s *Snapshot) PartAttrs(i int) attrset.Set { return s.ep.parts[i].attrs }

// PartRowSize returns the bytes one row of partition i occupies.
func (s *Snapshot) PartRowSize(i int) int { return s.ep.parts[i].rowSize }

// CacheLine returns the granularity the engine counts cache-line
// transfers at (initialized from its device, see SetCacheLine).
func (s *Snapshot) CacheLine() int64 { return s.cacheLine }

// PartCursor streams one partition of a pinned epoch row by row, with the
// SAME accounting Engine.Scan keeps per referenced partition: whole pages
// fetched in order, one seek charged per buffer refill under the
// proportional split, BlockSize bytes per page. After a cursor has been
// advanced through every row, its Stats equal the PartScanStats the same
// partition would contribute to a full Scan — which is what lets an
// operator pipeline's per-leaf totals decompose into the cost model's
// per-partition terms bit for bit.
//
// A cursor keeps all state local; cursors over one snapshot (or many) may
// be used from different goroutines as long as each individual cursor
// stays on one.
type PartCursor struct {
	p   *enginePart
	dev cost.Device

	pagesBuff int64
	page      []byte
	buffered  int64
	nextPage  int64
	inPage    int
	row       int64 // rows advanced so far (row index of current row + 1)
	rows      int64 // total rows in the epoch
	seeks     int64
	bytes     int64
	cacheLine int64

	// offsets[a] is the byte offset of attribute a within the partition
	// row, or -1 when the partition does not hold a.
	offsets [attrset.MaxAttrs]int
}

// Cursor opens a cursor over partition i, accounting against dev. The
// device's block size must equal the page size the epoch was materialized
// with (its geometry IS the file format); buffer size and the mechanical
// constants may differ from the engine's own device, which is how one
// materialized store serves measurements for several what-if devices.
//
// totalRowSize is the combined row size of every partition the surrounding
// query references — the denominator of the cost model's proportional
// buffer split. A cursor reading a partition on its own passes the
// partition's own row size.
func (s *Snapshot) Cursor(i int, dev cost.Device, totalRowSize int64) (*PartCursor, error) {
	if i < 0 || i >= len(s.ep.parts) {
		return nil, fmt.Errorf("storage: cursor over partition %d of %d", i, len(s.ep.parts))
	}
	p := &s.ep.parts[i]
	if dev.BlockSize != s.disk.BlockSize {
		return nil, fmt.Errorf("storage: cursor device block size %d does not match the %d-byte pages the store was materialized with",
			dev.BlockSize, s.disk.BlockSize)
	}
	if totalRowSize < int64(p.rowSize) {
		return nil, fmt.Errorf("storage: cursor totalRowSize %d below partition row size %d",
			totalRowSize, p.rowSize)
	}
	// The proportional buffer split, exactly as Scan computes it.
	buff := dev.BufferSize * int64(p.rowSize) / totalRowSize
	pagesBuff := buff / dev.BlockSize
	if pagesBuff < 1 {
		pagesBuff = 1
	}
	line := dev.CacheLineSize
	if line <= 0 {
		line = s.cacheLine
	}
	c := &PartCursor{
		p: p, dev: dev, pagesBuff: pagesBuff,
		page: make([]byte, dev.BlockSize),
		rows: s.ep.rows, cacheLine: line,
	}
	for a := range c.offsets {
		c.offsets[a] = -1
	}
	for ci, col := range p.cols {
		c.offsets[col] = p.offsets[ci]
	}
	return c, nil
}

// Attrs returns the cursor's partition column group.
func (c *PartCursor) Attrs() attrset.Set { return c.p.attrs }

// RowSize returns the bytes one partition row occupies.
func (c *PartCursor) RowSize() int { return c.p.rowSize }

// Next advances to the next row, fetching (and accounting) pages as the
// row walk crosses page boundaries. It returns false at end of stream.
func (c *PartCursor) Next() (bool, error) {
	if c.row >= c.rows {
		return false, nil
	}
	if c.nextPage != 0 {
		c.inPage++
	}
	if c.nextPage == 0 || c.inPage == c.p.rowsPerPage {
		if c.buffered == 0 {
			c.seeks++
			c.buffered = c.pagesBuff
		}
		if err := c.p.backend.ReadPage(c.nextPage, c.page); err != nil {
			return false, err
		}
		c.bytes += c.dev.BlockSize
		c.nextPage++
		c.buffered--
		c.inPage = 0
	}
	c.row++
	return true, nil
}

// NextRows advances through up to max rows that share one page, returning
// the page buffer, the index of the first row within it, and the row count.
// It is accounting-equivalent to calling Next that many times: the page
// fetch, seek charge, and byte count land at exactly the same points in the
// stream, and Stats afterwards are bit-identical — which is what lets the
// vectorized scan batch rows without perturbing a single measured number.
// n == 0 means end of stream. The page aliases cursor-owned memory and is
// valid only until the next Next/NextRows call; callers copy what they keep.
func (c *PartCursor) NextRows(max int) (page []byte, start, n int, err error) {
	if c.row >= c.rows || max <= 0 {
		return nil, 0, 0, nil
	}
	// Step onto the next row exactly as Next does, fetching (and charging)
	// on the page boundary.
	if c.nextPage != 0 {
		c.inPage++
	}
	if c.nextPage == 0 || c.inPage == c.p.rowsPerPage {
		if c.buffered == 0 {
			c.seeks++
			c.buffered = c.pagesBuff
		}
		if err := c.p.backend.ReadPage(c.nextPage, c.page); err != nil {
			return nil, 0, 0, err
		}
		c.bytes += c.dev.BlockSize
		c.nextPage++
		c.buffered--
		c.inPage = 0
	}
	start = c.inPage
	// The run ends at the page boundary, the stream end, or max — whichever
	// comes first. The n-1 follow-up rows stay in-page, so sequential Next
	// calls would have advanced inPage and row with no further fetches.
	avail := int64(c.p.rowsPerPage - c.inPage)
	if rem := c.rows - c.row; avail > rem {
		avail = rem
	}
	if avail > int64(max) {
		avail = int64(max)
	}
	n = int(avail)
	c.inPage += n - 1
	c.row += int64(n)
	return c.page, start, n, nil
}

// ColSpec returns the byte offset and width of attribute a within one
// partition row, or (-1, 0) when the partition does not hold a. Together
// with NextRows it lets a batch reader address page[ (start+i)*RowSize()+off
// : ... +off+width ] without per-row calls.
func (c *PartCursor) ColSpec(a int) (off, width int) {
	off = c.offsets[a]
	if off < 0 {
		return -1, 0
	}
	return off, c.p.colSize(a)
}

// Col returns the current row's bytes of attribute a, valid until the next
// Next call. It returns nil when the partition does not hold a.
func (c *PartCursor) Col(a int) []byte {
	off := c.offsets[a]
	if off < 0 {
		return nil
	}
	base := c.inPage * c.p.rowSize
	return c.page[base+off : base+off+c.p.colSize(a)]
}

// colSize returns the byte width of attribute a within the partition row.
func (p *enginePart) colSize(a int) int {
	for ci, col := range p.cols {
		if col == a {
			if ci+1 < len(p.offsets) {
				return p.offsets[ci+1] - p.offsets[ci]
			}
			return p.rowSize - p.offsets[ci]
		}
	}
	return 0
}

// Stats returns the cursor's accounting so far. Cache lines are counted
// over the logical stream the row walk has entered — StreamLines of the
// rows advanced — matching Scan's per-partition accounting once the
// cursor has been driven through every row.
func (c *PartCursor) Stats() PartScanStats {
	return PartScanStats{
		Attrs:      c.p.attrs,
		RowSize:    c.p.rowSize,
		BytesRead:  c.bytes,
		Seeks:      c.seeks,
		CacheLines: cost.StreamLines(c.row, int64(c.p.rowSize), c.cacheLine),
	}
}
