package storage

import (
	"fmt"
	"sort"
	"sync"

	"knives/internal/attrset"
	"knives/internal/cost"
	"knives/internal/partition"
)

// PartMoveStats is what moving one partition (reading a source, or writing
// a target) actually did.
type PartMoveStats struct {
	Attrs      attrset.Set // the partition's column group
	RowSize    int         // bytes per partition row
	Pages      int64       // pages read or written
	Bytes      int64       // page bytes moved
	Seeks      int64       // buffer refills charged to this partition
	CacheLines int64       // cache lines of the partition's logical stream
}

// RepartitionStats reports what one Repartition did, with the same
// per-partition accounting discipline the cost model's migration pricing
// uses: Reads and Writes are ordered by decreasing row size (ties by
// canonical order) and SimTime is accumulated one partition term at a time
// in exactly that order, so the measured numbers can be compared against
// cost.MigrationCost bit for bit.
type RepartitionStats struct {
	RowsMoved               int64
	Reads, Writes           []PartMoveStats
	BytesRead, BytesWritten int64
	SeeksRead, SeeksWrite   int64
	LinesRead, LinesWritten int64
	PagesRead, PagesWritten int64
	SimTime                 float64
	PartsKept               int // partitions shared by both layouts (untouched)
}

// Repartition transforms the store from its current layout into newLayout
// without a reload: every source partition that does not survive the
// transition is read in full (through the proportionally shared buffer),
// its columns staged, and every partition that newly appears is written in
// full; column groups present in both layouts keep their files untouched.
// The new layout is published as a fresh epoch in one atomic swap, so
// concurrent Scans are never disturbed — a scan streams the epoch it
// started on, and superseded partition files stay open (retired) until
// Close. Repartitions serialize against each other.
//
// workers bounds the partition-parallel read and write pools; <= 0 uses one
// worker per moved partition. The worker count never changes a reported
// number, only how fast it is produced.
func (e *Engine) Repartition(newLayout partition.Partitioning, workers int) (RepartitionStats, error) {
	var stats RepartitionStats
	if newLayout.Table != e.table {
		return stats, fmt.Errorf("storage: repartition layout is over %v, engine stores %s",
			newLayout.Table, e.table.Name)
	}
	if err := newLayout.Validate(); err != nil {
		return stats, err
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return stats, fmt.Errorf("storage: repartition on closed engine")
	}
	old := e.epoch.Load()
	rows := old.rows

	// Classify: partitions shared by both layouts survive untouched with
	// their backends; the rest are moved.
	next := &engineEpoch{layout: newLayout.Canonical(), rows: rows}
	oldByAttrs := make(map[attrset.Set]*enginePart, len(old.parts))
	for pi := range old.parts {
		oldByAttrs[old.parts[pi].attrs] = &old.parts[pi]
	}
	newByAttrs := make(map[attrset.Set]bool, len(next.layout.Parts))
	e.epochSeq++
	var writeIdx []int // indexes into next.parts that must be written
	// A failed repartition keeps the old epoch, so the backends created for
	// the aborted one must be closed on the way out — otherwise every retry
	// of a file-backed migration would leak open partition files.
	var created []Backend
	failed := true
	defer func() {
		if failed {
			for _, b := range created {
				b.Close()
			}
		}
	}()
	for i, p := range next.layout.Parts {
		newByAttrs[p] = true
		part, err := buildPart(e.table, p, e.disk.BlockSize)
		if err != nil {
			return stats, err
		}
		if keep, ok := oldByAttrs[p]; ok {
			part.backend = keep.backend
			stats.PartsKept++
		} else {
			b, err := e.newBackend(fmt.Sprintf("%s_e%d_p%d", e.table.Name, e.epochSeq, i), int(e.disk.BlockSize))
			if err != nil {
				return stats, err
			}
			part.backend = b
			created = append(created, b)
			writeIdx = append(writeIdx, i)
		}
		next.parts = append(next.parts, part)
	}
	var readParts []*enginePart
	for pi := range old.parts {
		if !newByAttrs[old.parts[pi].attrs] {
			readParts = append(readParts, &old.parts[pi])
		}
	}

	// Order both move lists the way the migration cost model sums its
	// terms: decreasing row size, ties by smallest attribute. Equal row
	// sizes price identically, so tie order never changes the sum.
	byMoveOrder := func(a, b *enginePart) bool {
		if a.rowSize != b.rowSize {
			return a.rowSize > b.rowSize
		}
		return a.attrs.Min() < b.attrs.Min()
	}
	sort.Slice(readParts, func(i, j int) bool { return byMoveOrder(readParts[i], readParts[j]) })
	sort.Slice(writeIdx, func(i, j int) bool {
		return byMoveOrder(&next.parts[writeIdx[i]], &next.parts[writeIdx[j]])
	})

	var readRowSize, writeRowSize int64
	for _, p := range readParts {
		readRowSize += int64(p.rowSize)
	}
	for _, i := range writeIdx {
		writeRowSize += int64(next.parts[i].rowSize)
	}

	// Read phase: stage every moved source partition's columns
	// column-contiguously in memory. Every column of a moved source
	// partition lands in some moved target partition (a surviving target
	// partition is identical to a surviving source partition, so its
	// columns were never in a moved one), which is what lets the write
	// phase assemble rows from the staging area alone.
	staged := make(map[int][]byte, 8)
	for _, p := range readParts {
		for _, col := range p.cols {
			staged[col] = make([]byte, rows*int64(e.table.Columns[col].Size))
		}
	}
	readStats := make([]PartMoveStats, len(readParts))
	if err := runMovers(len(readParts), workers, func(i int) error {
		var err error
		readStats[i], err = e.readMovedPart(readParts[i], rows, readRowSize, staged)
		return err
	}); err != nil {
		return stats, err
	}

	// Write phase: assemble and write every created partition's pages.
	writeStats := make([]PartMoveStats, len(writeIdx))
	if err := runMovers(len(writeIdx), workers, func(i int) error {
		var err error
		writeStats[i], err = e.writeMovedPart(&next.parts[writeIdx[i]], rows, writeRowSize, staged)
		return err
	}); err != nil {
		return stats, err
	}

	// Aggregate in the model's summation order (the slices are already
	// move-ordered), each partition's simulated-time term computed and
	// added in its own statement — mirroring cost.MigrationCost exactly.
	if len(readParts) > 0 {
		stats.RowsMoved = rows
	}
	writeBW := e.disk.WriteBandwidth
	if writeBW <= 0 {
		writeBW = e.disk.ReadBandwidth
	}
	for _, ps := range readStats {
		stats.Reads = append(stats.Reads, ps)
		stats.PagesRead += ps.Pages
		stats.BytesRead += ps.Bytes
		stats.SeeksRead += ps.Seeks
		stats.LinesRead += ps.CacheLines
		sec := e.disk.SeekTime*float64(ps.Seeks) + float64(ps.Bytes)/e.disk.ReadBandwidth
		stats.SimTime += sec
	}
	for _, ps := range writeStats {
		stats.Writes = append(stats.Writes, ps)
		stats.PagesWritten += ps.Pages
		stats.BytesWritten += ps.Bytes
		stats.SeeksWrite += ps.Seeks
		stats.LinesWritten += ps.CacheLines
		sec := e.disk.SeekTime*float64(ps.Seeks) + float64(ps.Bytes)/writeBW
		stats.SimTime += sec
	}

	// Publish the new epoch; retire the superseded partition files so any
	// in-flight scan of the old epoch keeps working until Close.
	for _, p := range readParts {
		e.retired = append(e.retired, p.backend)
	}
	e.epoch.Store(next)
	failed = false
	return stats, nil
}

// runMovers runs f(0..n-1) on a bounded worker pool and returns the
// lowest-index error, like every fan-out in this codebase.
func runMovers(n, workers int, f func(i int) error) error {
	if workers <= 0 || workers > n {
		workers = n
	}
	if workers == 0 {
		return nil
	}
	sem := make(chan struct{}, workers)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[i] = f(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// readMovedPart streams one moved source partition in full through its
// buffer share, staging every column's values contiguously. The buffer
// refill accounting is the cost model's: pagesBuff pages per seek under the
// proportional split across ALL moved source partitions.
func (e *Engine) readMovedPart(p *enginePart, rows, totalRowSize int64, staged map[int][]byte) (PartMoveStats, error) {
	ps := PartMoveStats{Attrs: p.attrs, RowSize: p.rowSize}
	ps.CacheLines = cost.StreamLines(rows, int64(p.rowSize), e.cacheLine)
	if rows == 0 {
		return ps, nil
	}
	buff := e.disk.BufferSize * int64(p.rowSize) / totalRowSize
	pagesBuff := buff / e.disk.BlockSize
	if pagesBuff < 1 {
		pagesBuff = 1
	}
	page := make([]byte, e.disk.BlockSize)
	var buffered int64
	inPage := p.rowsPerPage // force an initial fetch
	var nextPage int64
	for r := int64(0); r < rows; r++ {
		if inPage == p.rowsPerPage {
			if buffered == 0 {
				ps.Seeks++
				buffered = pagesBuff
			}
			if err := p.backend.ReadPage(nextPage, page); err != nil {
				return ps, fmt.Errorf("storage: repartition read %v: %w", p.attrs, err)
			}
			ps.Bytes += e.disk.BlockSize
			ps.Pages++
			nextPage++
			buffered--
			inPage = 0
		}
		base := inPage * p.rowSize
		for ci, col := range p.cols {
			size := e.table.Columns[col].Size
			copy(staged[col][r*int64(size):(r+1)*int64(size)], page[base+p.offsets[ci]:base+p.offsets[ci]+size])
		}
		inPage++
	}
	return ps, nil
}

// writeMovedPart assembles one created partition's pages from the staged
// columns and writes them, charging buffer refills under the proportional
// split across ALL created partitions.
func (e *Engine) writeMovedPart(p *enginePart, rows, totalRowSize int64, staged map[int][]byte) (PartMoveStats, error) {
	ps := PartMoveStats{Attrs: p.attrs, RowSize: p.rowSize}
	ps.CacheLines = cost.StreamLines(rows, int64(p.rowSize), e.cacheLine)
	if rows == 0 {
		return ps, nil
	}
	buff := e.disk.BufferSize * int64(p.rowSize) / totalRowSize
	pagesBuff := buff / e.disk.BlockSize
	if pagesBuff < 1 {
		pagesBuff = 1
	}
	page := make([]byte, e.disk.BlockSize)
	var buffered int64
	inPage := 0
	flush := func() error {
		if buffered == 0 {
			ps.Seeks++
			buffered = pagesBuff
		}
		if err := p.backend.WritePage(page); err != nil {
			return err
		}
		ps.Bytes += e.disk.BlockSize
		ps.Pages++
		buffered--
		zero(page)
		inPage = 0
		return nil
	}
	for r := int64(0); r < rows; r++ {
		base := inPage * p.rowSize
		for ci, col := range p.cols {
			size := e.table.Columns[col].Size
			src, ok := staged[col]
			if !ok {
				return ps, fmt.Errorf("storage: repartition target %v needs column %s, which no moved source partition holds",
					p.attrs, e.table.Columns[col].Name)
			}
			copy(page[base+p.offsets[ci]:base+p.offsets[ci]+size], src[r*int64(size):(r+1)*int64(size)])
		}
		inPage++
		if inPage == p.rowsPerPage {
			if err := flush(); err != nil {
				return ps, err
			}
		}
	}
	if inPage > 0 {
		if err := flush(); err != nil {
			return ps, err
		}
	}
	return ps, nil
}
