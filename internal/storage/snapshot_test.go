package storage

import (
	"bytes"
	"reflect"
	"testing"

	"knives/internal/attrset"
	"knives/internal/cost"
	"knives/internal/partition"
	"knives/internal/schema"
)

func snapTestEngine(t *testing.T, rows int64, parts []attrset.Set, dev cost.Device) (*Engine, *schema.Table) {
	t.Helper()
	tbl, err := schema.NewTable("snap", rows, []schema.Column{
		{Name: "s0", Kind: schema.KindInt, Size: 4},
		{Name: "s1", Kind: schema.KindDate, Size: 4},
		{Name: "s2", Kind: schema.KindDecimal, Size: 8},
		{Name: "s3", Kind: schema.KindChar, Size: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	layout, err := partition.New(tbl, parts)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(layout, dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	if err := e.Load(NewGenerator(9), rows); err != nil {
		t.Fatal(err)
	}
	return e, tbl
}

func snapDev() cost.Device {
	return cost.Device{
		Name: "tiny", Pricing: cost.PricingBlock,
		BlockSize: 64, BufferSize: 192,
		ReadBandwidth: 1e6, SeekTime: 1e-3,
		CacheLineSize: 16, MissLatency: 1e-7,
	}
}

// TestCursorMatchesScan drains one cursor per referenced partition under
// the proportional buffer split and requires each cursor's stats to equal
// the PartScanStats the monolithic Scan reports for the same partition.
func TestCursorMatchesScan(t *testing.T) {
	parts := []attrset.Set{attrset.Of(0, 2), attrset.Of(1), attrset.Of(3)}
	dev := snapDev()
	e, _ := snapTestEngine(t, 301, parts, dev)
	query := attrset.Of(0, 1) // references partitions 0 and 1, not 2
	want, err := e.Scan(query)
	if err != nil {
		t.Fatal(err)
	}

	snap := e.Snapshot()
	if snap.Rows() != 301 || snap.NumParts() != 3 || snap.Table().Name != "snap" {
		t.Fatalf("snapshot accessors: rows=%d parts=%d table=%s", snap.Rows(), snap.NumParts(), snap.Table().Name)
	}
	if snap.CacheLine() != dev.CacheLineSize {
		t.Fatalf("cache line %d, want %d", snap.CacheLine(), dev.CacheLineSize)
	}
	if got := snap.Layout().Parts; len(got) != 3 {
		t.Fatalf("layout parts: %v", got)
	}

	var total int64
	for i := 0; i < snap.NumParts(); i++ {
		if snap.PartAttrs(i).Overlaps(query) {
			total += int64(snap.PartRowSize(i))
		}
	}
	wi := 0
	for i := 0; i < snap.NumParts(); i++ {
		if !snap.PartAttrs(i).Overlaps(query) {
			continue
		}
		c, err := snap.Cursor(i, dev, total)
		if err != nil {
			t.Fatal(err)
		}
		if c.Attrs() != snap.PartAttrs(i) || c.RowSize() != snap.PartRowSize(i) {
			t.Fatalf("cursor identity mismatch on partition %d", i)
		}
		rows := 0
		for {
			ok, err := c.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			// Every attribute of the partition must be readable; others nil.
			snap.PartAttrs(i).ForEach(func(a int) {
				if c.Col(a) == nil {
					t.Fatalf("partition %d: Col(%d) nil", i, a)
				}
			})
			if c.Col(63) != nil {
				t.Fatal("Col outside the partition not nil")
			}
			rows++
		}
		if int64(rows) != snap.Rows() {
			t.Fatalf("partition %d: %d rows, want %d", i, rows, snap.Rows())
		}
		if got := c.Stats(); !reflect.DeepEqual(got, want.Parts[wi]) {
			t.Errorf("partition %d stats\n got %+v\nwant %+v", i, got, want.Parts[wi])
		}
		wi++
	}
}

func TestCursorErrors(t *testing.T) {
	dev := snapDev()
	e, _ := snapTestEngine(t, 40, []attrset.Set{attrset.All(4)}, dev)
	snap := e.Snapshot()
	if _, err := snap.Cursor(-1, dev, 22); err == nil {
		t.Error("negative partition index accepted")
	}
	if _, err := snap.Cursor(5, dev, 22); err == nil {
		t.Error("out-of-range partition index accepted")
	}
	bad := dev
	bad.BlockSize = 4096
	if _, err := snap.Cursor(0, bad, 22); err == nil {
		t.Error("mismatched block size accepted")
	}
	if _, err := snap.Cursor(0, dev, 1); err == nil {
		t.Error("totalRowSize below the partition's row size accepted")
	}
}

// TestCursorSnapshotSurvivesRepartition pins the epoch-pinning guarantee:
// a cursor opened before a Repartition keeps streaming the old epoch.
func TestCursorSnapshotSurvivesRepartition(t *testing.T) {
	dev := snapDev()
	e, tbl := snapTestEngine(t, 64, []attrset.Set{attrset.All(4)}, dev)
	snap := e.Snapshot()
	c, err := snap.Cursor(0, dev, int64(snap.PartRowSize(0)))
	if err != nil {
		t.Fatal(err)
	}
	next, err := partition.New(tbl, []attrset.Set{attrset.Of(0), attrset.Of(1, 2, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Repartition(next, 1); err != nil {
		t.Fatal(err)
	}
	rows := 0
	for {
		ok, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		rows++
	}
	if rows != 64 {
		t.Fatalf("pinned cursor saw %d rows, want 64", rows)
	}
	if got := len(e.Snapshot().Layout().Parts); got != 2 {
		t.Fatalf("new snapshot has %d parts, want 2", got)
	}
}

// TestNextRowsMatchesNext drives two cursors over the same partition — one
// row by row through Next/Col, one in runs through NextRows/ColSpec with a
// rotating run length — and requires the same bytes in the same order AND
// bit-identical accounting (seeks, bytes, cache lines) at end of stream.
// This is the contract the vectorized scan's batching rests on.
func TestNextRowsMatchesNext(t *testing.T) {
	parts := []attrset.Set{attrset.Of(0, 2), attrset.Of(1), attrset.Of(3)}
	dev := snapDev()
	e, _ := snapTestEngine(t, 301, parts, dev)
	snap := e.Snapshot()
	total := int64(snap.PartRowSize(0) + snap.PartRowSize(1))

	for _, maxes := range [][]int{{1}, {3}, {64}, {1000}, {1, 5, 2, 17, 3}} {
		for pi := 0; pi < 2; pi++ {
			rowCur, err := snap.Cursor(pi, dev, total)
			if err != nil {
				t.Fatal(err)
			}
			runCur, err := snap.Cursor(pi, dev, total)
			if err != nil {
				t.Fatal(err)
			}
			rs := runCur.RowSize()
			attrs := runCur.Attrs().Attrs()

			// Collect the oracle stream row by row.
			var want []byte
			for {
				ok, err := rowCur.Next()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				for _, a := range attrs {
					want = append(want, rowCur.Col(a)...)
				}
			}

			var got []byte
			mi := 0
			for {
				page, start, n, err := runCur.NextRows(maxes[mi%len(maxes)])
				mi++
				if err != nil {
					t.Fatal(err)
				}
				if n == 0 {
					break
				}
				for i := 0; i < n; i++ {
					base := (start + i) * rs
					for _, a := range attrs {
						off, w := runCur.ColSpec(a)
						got = append(got, page[base+off:base+off+w]...)
					}
				}
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("part %d maxes %v: NextRows stream diverges (%d vs %d bytes)", pi, maxes, len(got), len(want))
			}
			if gs, ws := runCur.Stats(), rowCur.Stats(); !reflect.DeepEqual(gs, ws) {
				t.Fatalf("part %d maxes %v: stats diverge\n got %+v\nwant %+v", pi, maxes, gs, ws)
			}
		}
	}

	// ColSpec on an attribute the partition does not hold.
	c, err := snap.Cursor(0, dev, total)
	if err != nil {
		t.Fatal(err)
	}
	if off, w := c.ColSpec(1); off != -1 || w != 0 {
		t.Fatalf("ColSpec(absent) = %d,%d", off, w)
	}
	// NextRows with a non-positive max reads nothing and charges nothing.
	if _, _, n, err := c.NextRows(0); n != 0 || err != nil {
		t.Fatalf("NextRows(0) = %d,%v", n, err)
	}
	if st := c.Stats(); st.BytesRead != 0 || st.Seeks != 0 {
		t.Fatalf("NextRows(0) charged %+v", st)
	}
}
