package storage

import (
	"math"
	"math/rand"
	"testing"

	"knives/internal/attrset"
	"knives/internal/cost"
	"knives/internal/partition"
	"knives/internal/schema"
)

// The strongest validation in the repository: the engine executes scans
// with real page I/O and its measured seeks, bytes, and simulated time
// must equal what the paper's cost model predicts for the same disk,
// layout, and query. The two implementations share no code beyond the
// block-count helper, so agreement here means the cost model's formulas
// and the engine's buffer-sharing mechanics describe the same system.
func TestEngineMatchesCostModelExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 15; trial++ {
		nCols := 2 + rng.Intn(5)
		cols := make([]schema.Column, nCols)
		for i := range cols {
			cols[i] = schema.Column{
				Name: string(rune('a' + i)),
				Kind: schema.KindVarchar,
				Size: 1 + rng.Intn(40),
			}
		}
		tab, err := schema.NewTable("t", int64(2_000+rng.Intn(20_000)), cols)
		if err != nil {
			t.Fatal(err)
		}
		d := cost.Disk{
			BlockSize:     int64(256 << rng.Intn(3)), // 256, 512, 1024
			BufferSize:    int64(2048 + rng.Intn(16384)),
			ReadBandwidth: 1e6,
			SeekTime:      1e-3,
		}
		// Random valid layout.
		assign := make([]int, nCols)
		for i := range assign {
			assign[i] = rng.Intn(nCols)
		}
		groups := map[int]attrset.Set{}
		for i, g := range assign {
			groups[g] = groups[g].Add(i)
		}
		var parts []attrset.Set
		for _, p := range groups {
			parts = append(parts, p)
		}
		layout, err := partition.New(tab, parts)
		if err != nil {
			t.Fatal(err)
		}
		// Random non-empty query.
		var q attrset.Set
		for a := 0; a < nCols; a++ {
			if rng.Intn(2) == 0 {
				q = q.Add(a)
			}
		}
		if q.IsEmpty() {
			q = attrset.Single(rng.Intn(nCols))
		}

		e, err := NewEngine(layout, d, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Load(NewGenerator(int64(trial)), tab.Rows); err != nil {
			t.Fatal(err)
		}
		stats, err := e.Scan(q)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}

		predicted := cost.NewHDD(d).QueryCost(tab, layout.Parts, q)
		if math.Abs(stats.SimTime-predicted) > 1e-9 {
			t.Errorf("trial %d: engine sim time %.9f != cost model %.9f (layout %s, query %v, disk %+v)",
				trial, stats.SimTime, predicted, layout, q, d)
		}
		wantBytes := cost.ScanBytes(tab, layout.Parts, q, d.BlockSize)
		if stats.BytesRead != wantBytes {
			t.Errorf("trial %d: engine read %d bytes, model says %d", trial, stats.BytesRead, wantBytes)
		}
	}
}

// Same agreement over an actual TPC-H workload (sampled row count) and the
// layouts the algorithms produce.
func TestEngineMatchesCostModelOnTPCHSample(t *testing.T) {
	bench := schema.TPCH(10)
	liFull := bench.Table("lineitem")
	li, err := schema.NewTable("lineitem", 50_000, liFull.Columns)
	if err != nil {
		t.Fatal(err)
	}
	tw := bench.Workload.ForTable(liFull)
	tw.Table = li
	d := cost.Disk{BlockSize: 4096, BufferSize: 64 * 1024, ReadBandwidth: 50e6, SeekTime: 2e-3}
	m := cost.NewHDD(d)

	for _, layout := range []partition.Partitioning{
		partition.Row(li),
		partition.Column(li),
		partition.Must(li, partition.Fragments(tw)),
	} {
		e, err := NewEngine(layout, d, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Load(NewGenerator(1), li.Rows); err != nil {
			t.Fatal(err)
		}
		var measured, predicted float64
		for _, q := range tw.Queries {
			stats, err := e.Scan(q.Attrs)
			if err != nil {
				t.Fatal(err)
			}
			measured += q.Weight * stats.SimTime
			predicted += q.Weight * m.QueryCost(li, layout.Parts, q.Attrs)
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		if math.Abs(measured-predicted) > 1e-6*predicted {
			t.Errorf("layout %d parts: measured workload time %v != predicted %v",
				layout.NumParts(), measured, predicted)
		}
	}
}
