package storage

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"knives/internal/attrset"
	"knives/internal/cost"
	"knives/internal/schema"
)

// Codec compresses a column's values (concatenated fixed-width encoding).
// The Table 7 experiment uses codecs to estimate how a column store's
// compression changes the byte volumes the cost model prices.
type Codec interface {
	Name() string
	// Compress returns the compressed form of data, where data is n
	// concatenated values of width valueSize.
	Compress(data []byte, valueSize int) ([]byte, error)
	// Decompress inverts Compress given the original length.
	Decompress(data []byte, valueSize, originalLen int) ([]byte, error)
	// FixedWidth reports whether decoded values keep a fixed width, which
	// decides the tuple-reconstruction CPU penalty inside column groups.
	FixedWidth() bool
}

// FlateCodec is an LZ-family codec standing in for DBMS-X's default LZO
// compression of strings and floats. Variable-length output makes intra-
// group tuple reconstruction expensive, which is the mechanism the paper
// blames for the column-vs-HillClimb gap under default compression.
type FlateCodec struct{}

// Name implements Codec.
func (FlateCodec) Name() string { return "flate" }

// FixedWidth implements Codec.
func (FlateCodec) FixedWidth() bool { return false }

// Compress implements Codec.
func (FlateCodec) Compress(data []byte, _ int) ([]byte, error) {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.DefaultCompression)
	if err != nil {
		return nil, fmt.Errorf("storage: flate writer: %w", err)
	}
	if _, err := w.Write(data); err != nil {
		return nil, fmt.Errorf("storage: flate write: %w", err)
	}
	if err := w.Close(); err != nil {
		return nil, fmt.Errorf("storage: flate close: %w", err)
	}
	return buf.Bytes(), nil
}

// Decompress implements Codec.
func (FlateCodec) Decompress(data []byte, _, originalLen int) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(data))
	defer r.Close()
	out := make([]byte, 0, originalLen)
	buf := make([]byte, 32*1024)
	for {
		n, err := r.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("storage: flate read: %w", err)
		}
	}
	return out, nil
}

// DeltaCodec delta-encodes 4-byte little-endian integers with varint
// residuals, standing in for DBMS-X's default delta encoding of integer
// and date columns. Output is variable-length.
type DeltaCodec struct{}

// Name implements Codec.
func (DeltaCodec) Name() string { return "delta" }

// FixedWidth implements Codec.
func (DeltaCodec) FixedWidth() bool { return false }

// Compress implements Codec.
func (DeltaCodec) Compress(data []byte, valueSize int) ([]byte, error) {
	if valueSize != 4 {
		return nil, fmt.Errorf("storage: delta codec needs 4-byte values, got %d", valueSize)
	}
	if len(data)%4 != 0 {
		return nil, fmt.Errorf("storage: delta codec input not a multiple of 4")
	}
	out := make([]byte, 0, len(data)/2)
	var prev int64
	tmp := make([]byte, binary.MaxVarintLen64)
	for i := 0; i < len(data); i += 4 {
		v := int64(binary.LittleEndian.Uint32(data[i:]))
		n := binary.PutVarint(tmp, v-prev)
		out = append(out, tmp[:n]...)
		prev = v
	}
	return out, nil
}

// Decompress implements Codec.
func (DeltaCodec) Decompress(data []byte, valueSize, originalLen int) ([]byte, error) {
	if valueSize != 4 {
		return nil, fmt.Errorf("storage: delta codec needs 4-byte values, got %d", valueSize)
	}
	out := make([]byte, 0, originalLen)
	var prev int64
	for pos := 0; pos < len(data); {
		d, n := binary.Varint(data[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("storage: corrupt delta stream at %d", pos)
		}
		pos += n
		prev += d
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(prev))
		out = append(out, b[:]...)
	}
	if len(out) != originalLen {
		return nil, fmt.Errorf("storage: delta decompressed %d bytes, want %d", len(out), originalLen)
	}
	return out, nil
}

// DictCodec dictionary-encodes values into fixed-width codes, standing in
// for DBMS-X's dictionary compression. Fixed-size codes keep tuple
// reconstruction within column groups cheap (the paper's second Table 7
// configuration).
type DictCodec struct{}

// Name implements Codec.
func (DictCodec) Name() string { return "dict" }

// FixedWidth implements Codec.
func (DictCodec) FixedWidth() bool { return true }

// codeWidth returns the byte width needed for n distinct values.
func codeWidth(n int) int {
	switch {
	case n <= 1<<8:
		return 1
	case n <= 1<<16:
		return 2
	default:
		return 4
	}
}

// Compress implements Codec. Layout: [numEntries uint32][entries...][codes...].
func (DictCodec) Compress(data []byte, valueSize int) ([]byte, error) {
	if valueSize <= 0 || len(data)%valueSize != 0 {
		return nil, fmt.Errorf("storage: dict codec: %d bytes not divisible by value size %d", len(data), valueSize)
	}
	n := len(data) / valueSize
	index := make(map[string]int)
	var entries []string
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		v := string(data[i*valueSize : (i+1)*valueSize])
		id, ok := index[v]
		if !ok {
			id = len(entries)
			index[v] = id
			entries = append(entries, v)
		}
		codes[i] = id
	}
	// Re-number entries in sorted order for deterministic output.
	sorted := append([]string(nil), entries...)
	sort.Strings(sorted)
	rank := make(map[string]int, len(sorted))
	for i, v := range sorted {
		rank[v] = i
	}
	w := codeWidth(len(sorted))
	out := make([]byte, 0, 4+len(sorted)*valueSize+n*w)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(sorted)))
	out = append(out, hdr[:]...)
	for _, v := range sorted {
		out = append(out, v...)
	}
	var tmp [4]byte
	for i := 0; i < n; i++ {
		code := rank[entries[codes[i]]]
		binary.LittleEndian.PutUint32(tmp[:], uint32(code))
		out = append(out, tmp[:w]...)
	}
	return out, nil
}

// Decompress implements Codec.
func (DictCodec) Decompress(data []byte, valueSize, originalLen int) ([]byte, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("storage: dict stream too short")
	}
	nEntries := int(binary.LittleEndian.Uint32(data))
	pos := 4
	if len(data) < pos+nEntries*valueSize {
		return nil, fmt.Errorf("storage: dict stream truncated in dictionary")
	}
	dict := make([][]byte, nEntries)
	for i := range dict {
		dict[i] = data[pos : pos+valueSize]
		pos += valueSize
	}
	w := codeWidth(nEntries)
	out := make([]byte, 0, originalLen)
	var tmp [4]byte
	for ; pos+w <= len(data); pos += w {
		copy(tmp[:], []byte{0, 0, 0, 0})
		copy(tmp[:w], data[pos:pos+w])
		code := int(binary.LittleEndian.Uint32(tmp[:]))
		if code >= nEntries {
			return nil, fmt.Errorf("storage: dict code %d out of range", code)
		}
		out = append(out, dict[code]...)
	}
	if len(out) != originalLen {
		return nil, fmt.Errorf("storage: dict decompressed %d bytes, want %d", len(out), originalLen)
	}
	return out, nil
}

// CompressionScheme selects per-column codecs like DBMS-X's two Table 7
// configurations.
type CompressionScheme int

const (
	// SchemeDefault mirrors DBMS-X defaults: delta encoding for integers
	// and dates, LZ (flate) for strings and decimals. Variable-length.
	SchemeDefault CompressionScheme = iota
	// SchemeDictionary forces fixed-width dictionary encoding everywhere.
	SchemeDictionary
)

func (s CompressionScheme) String() string {
	if s == SchemeDictionary {
		return "Dictionary"
	}
	return "Default (LZ or Delta)"
}

// codecFor returns the codec the scheme assigns to a column.
func (s CompressionScheme) codecFor(col schema.Column) Codec {
	if s == SchemeDictionary {
		return DictCodec{}
	}
	switch col.Kind {
	case schema.KindInt, schema.KindDate:
		return DeltaCodec{}
	default:
		return FlateCodec{}
	}
}

// CompressionRatios measures, on a generated sample of the table, the
// compressed-bytes-per-value of every column under the scheme. Ratios are
// in (0, 1+ε] relative to the uncompressed width.
func CompressionRatios(t *schema.Table, gen *Generator, sampleRows int64, scheme CompressionScheme) (map[string]float64, error) {
	if sampleRows <= 0 {
		return nil, fmt.Errorf("storage: sampleRows must be positive")
	}
	if sampleRows > t.Rows && t.Rows > 0 {
		sampleRows = t.Rows
	}
	ratios := make(map[string]float64, len(t.Columns))
	for _, col := range t.Columns {
		raw := make([]byte, int(sampleRows)*col.Size)
		for r := int64(0); r < sampleRows; r++ {
			gen.Value(col, r, raw[int(r)*col.Size:int(r+1)*col.Size])
		}
		codec := scheme.codecFor(col)
		comp, err := codec.Compress(raw, col.Size)
		if err != nil {
			return nil, fmt.Errorf("storage: compress %s.%s: %w", t.Name, col.Name, err)
		}
		ratios[col.Name] = float64(len(comp)) / float64(len(raw))
	}
	return ratios, nil
}

// CompressedScanSeconds estimates the workload runtime of a layout under a
// compression scheme: I/O time on the compressed byte volumes via the HDD
// cost formulas, plus a per-tuple CPU charge for reconstructing tuples out
// of variable-length-encoded multi-column partitions (the paper's Table 7
// explanation for why HillClimb trails Column under default compression).
func CompressedScanSeconds(
	tw schema.TableWorkload, parts []attrset.Set, disk cost.Disk,
	ratios map[string]float64, scheme CompressionScheme,
	varLenJoinCPU float64,
) float64 {
	t := tw.Table
	hdd := cost.NewHDD(disk)
	var total float64
	for _, q := range tw.Queries {
		// Compressed row size per referenced partition.
		var S int64
		var refs []attrset.Set
		var compSizes []int64
		for _, p := range parts {
			if !p.Overlaps(q.Attrs) {
				continue
			}
			var csize float64
			p.ForEach(func(a int) {
				col := t.Columns[a]
				csize += float64(col.Size) * ratios[col.Name]
			})
			cs := int64(csize)
			if cs < 1 {
				cs = 1
			}
			refs = append(refs, p)
			compSizes = append(compSizes, cs)
			S += cs
		}
		if S == 0 {
			continue
		}
		var qc float64
		for i, p := range refs {
			qc += hdd.PartitionCost(t, compSizes[i], S)
			// CPU penalty: stitching a tuple out of a variable-length
			// encoded multi-column partition costs per column boundary.
			if scheme == SchemeDefault && p.Len() > 1 {
				qc += varLenJoinCPU * float64(t.Rows) * float64(p.Len()-1)
			}
		}
		total += q.Weight * qc
	}
	return total
}
