package storage

import (
	"fmt"

	"knives/internal/vfs"
)

// Backend stores the pages of one partition file. Pages are fixed-size
// blocks written once during load and read back during scans.
type Backend interface {
	// WritePage appends a page; pages are written in order.
	WritePage(page []byte) error
	// ReadPage reads page idx into dst (len(dst) = page size).
	ReadPage(idx int64, dst []byte) error
	// Pages returns the number of pages written.
	Pages() int64
	// Close releases resources.
	Close() error
}

// memBackend keeps pages in memory; the default for tests and experiments.
type memBackend struct {
	pages    [][]byte
	pageSize int
}

// NewMemBackend returns an in-memory page store.
func NewMemBackend(pageSize int) Backend {
	return &memBackend{pageSize: pageSize}
}

func (m *memBackend) WritePage(page []byte) error {
	if len(page) != m.pageSize {
		return fmt.Errorf("storage: page of %d bytes, want %d", len(page), m.pageSize)
	}
	cp := make([]byte, len(page))
	copy(cp, page)
	m.pages = append(m.pages, cp)
	return nil
}

func (m *memBackend) ReadPage(idx int64, dst []byte) error {
	if idx < 0 || idx >= int64(len(m.pages)) {
		return fmt.Errorf("storage: page %d out of range (%d pages)", idx, len(m.pages))
	}
	copy(dst, m.pages[idx])
	return nil
}

func (m *memBackend) Pages() int64 { return int64(len(m.pages)) }
func (m *memBackend) Close() error { return nil }

// fileBackend stores pages in one file of a vfs.FS; used by integration
// tests to exercise the real I/O path and by fault-injection tests to
// exercise the failing one.
type fileBackend struct {
	f        vfs.File
	pageSize int
	n        int64
}

// NewFileBackend creates a page store backed by a file in dir.
func NewFileBackend(dir, name string, pageSize int) (Backend, error) {
	fsys, err := vfs.Dir(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: create partition file: %w", err)
	}
	return NewFileBackendFS(fsys, name, pageSize)
}

// NewFileBackendFS creates a page store backed by a file of fsys — the
// injection point for degraded-disk tests: wrap the FS in a faultinject
// schedule and the engine's loads and scans hit real error returns.
func NewFileBackendFS(fsys vfs.FS, name string, pageSize int) (Backend, error) {
	f, err := fsys.Create(name + ".part")
	if err != nil {
		return nil, fmt.Errorf("storage: create partition file: %w", err)
	}
	return &fileBackend{f: f, pageSize: pageSize}, nil
}

func (b *fileBackend) WritePage(page []byte) error {
	if len(page) != b.pageSize {
		return fmt.Errorf("storage: page of %d bytes, want %d", len(page), b.pageSize)
	}
	if _, err := b.f.WriteAt(page, b.n*int64(b.pageSize)); err != nil {
		return fmt.Errorf("storage: write page %d: %w", b.n, err)
	}
	b.n++
	return nil
}

func (b *fileBackend) ReadPage(idx int64, dst []byte) error {
	if idx < 0 || idx >= b.n {
		return fmt.Errorf("storage: page %d out of range (%d pages)", idx, b.n)
	}
	if _, err := b.f.ReadAt(dst[:b.pageSize], idx*int64(b.pageSize)); err != nil {
		return fmt.Errorf("storage: read page %d: %w", idx, err)
	}
	return nil
}

func (b *fileBackend) Pages() int64 { return b.n }
func (b *fileBackend) Close() error { return b.f.Close() }
