package attrset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOfAndHas(t *testing.T) {
	s := Of(0, 3, 5)
	for _, a := range []int{0, 3, 5} {
		if !s.Has(a) {
			t.Errorf("Has(%d) = false, want true", a)
		}
	}
	for _, a := range []int{1, 2, 4, 6, 63} {
		if s.Has(a) {
			t.Errorf("Has(%d) = true, want false", a)
		}
	}
	if s.Has(-1) || s.Has(64) {
		t.Error("Has out-of-range should be false")
	}
}

func TestAll(t *testing.T) {
	if got := All(0); got != 0 {
		t.Errorf("All(0) = %v, want empty", got)
	}
	if got := All(3); got != Of(0, 1, 2) {
		t.Errorf("All(3) = %v", got)
	}
	if got := All(64).Len(); got != 64 {
		t.Errorf("All(64).Len() = %d, want 64", got)
	}
}

func TestAllPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("All(65) did not panic")
		}
	}()
	All(65)
}

func TestAddRemove(t *testing.T) {
	s := Set(0).Add(7).Add(7).Add(2)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	s = s.Remove(7)
	if s != Single(2) {
		t.Errorf("after Remove: %v, want {2}", s)
	}
	s = s.Remove(7) // removing absent attr is a no-op
	if s != Single(2) {
		t.Errorf("double Remove changed set: %v", s)
	}
}

func TestSetAlgebra(t *testing.T) {
	a, b := Of(0, 1, 2), Of(2, 3)
	if got := a.Union(b); got != Of(0, 1, 2, 3) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); got != Of(2) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Minus(b); got != Of(0, 1) {
		t.Errorf("Minus = %v", got)
	}
	if !a.Overlaps(b) {
		t.Error("Overlaps = false, want true")
	}
	if a.Overlaps(Of(5)) {
		t.Error("Overlaps with disjoint = true")
	}
	if !a.ContainsAll(Of(0, 2)) {
		t.Error("ContainsAll subset = false")
	}
	if a.ContainsAll(b) {
		t.Error("ContainsAll non-subset = true")
	}
}

func TestMin(t *testing.T) {
	if got := Of(5, 9, 63).Min(); got != 5 {
		t.Errorf("Min = %d, want 5", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Min of empty set did not panic")
		}
	}()
	Set(0).Min()
}

func TestAttrsRoundTrip(t *testing.T) {
	want := []int{1, 4, 40, 63}
	s := Of(want...)
	got := s.Attrs()
	if len(got) != len(want) {
		t.Fatalf("Attrs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Attrs[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSubsetsCount(t *testing.T) {
	s := Of(0, 2, 5)
	n := 0
	s.Subsets(func(sub Set) bool {
		if !s.ContainsAll(sub) {
			t.Errorf("subset %v not contained in %v", sub, s)
		}
		if sub.IsEmpty() {
			t.Error("Subsets yielded the empty set")
		}
		n++
		return true
	})
	if n != 7 { // 2^3 - 1 non-empty subsets
		t.Errorf("got %d subsets, want 7", n)
	}
}

func TestSubsetsEarlyStop(t *testing.T) {
	n := 0
	All(10).Subsets(func(Set) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("early stop after %d iterations, want 5", n)
	}
}

func TestString(t *testing.T) {
	if got := Of(1, 3).String(); got != "{1,3}" {
		t.Errorf("String = %q", got)
	}
	if got := Set(0).String(); got != "{}" {
		t.Errorf("String = %q", got)
	}
}

// Property: union is commutative and associative; Minus then Union restores.
func TestQuickAlgebraLaws(t *testing.T) {
	f := func(a, b, c uint64) bool {
		x, y, z := Set(a), Set(b), Set(c)
		if x.Union(y) != y.Union(x) {
			return false
		}
		if x.Union(y).Union(z) != x.Union(y.Union(z)) {
			return false
		}
		if x.Minus(y).Union(x.Intersect(y)) != x {
			return false
		}
		return x.Intersect(y).Len() <= min(x.Len(), y.Len())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Attrs is sorted and ForEach visits the same elements.
func TestQuickAttrsSorted(t *testing.T) {
	f := func(a uint64) bool {
		s := Set(a)
		attrs := s.Attrs()
		var visited []int
		s.ForEach(func(i int) { visited = append(visited, i) })
		if len(attrs) != s.Len() || len(visited) != s.Len() {
			return false
		}
		for i := range attrs {
			if attrs[i] != visited[i] {
				return false
			}
			if i > 0 && attrs[i] <= attrs[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every submask yielded by Subsets is unique and the count is
// 2^len - 1 (for small sets).
func TestQuickSubsetsComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		var s Set
		for i := 0; i < 8; i++ {
			s = s.Add(rng.Intn(20))
		}
		seen := map[Set]bool{}
		s.Subsets(func(sub Set) bool {
			if seen[sub] {
				t.Fatalf("duplicate subset %v of %v", sub, s)
			}
			seen[sub] = true
			return true
		})
		want := (1 << s.Len()) - 1
		if len(seen) != want {
			t.Fatalf("set %v: %d subsets, want %d", s, len(seen), want)
		}
	}
}
