// Package attrset implements compact sets of attribute (column) indexes.
//
// Vertical partitioning algorithms spend almost all of their time asking set
// questions — "which attributes does this query touch?", "do these two column
// groups overlap?" — so the set representation is a single uint64 bitmask.
// This bounds tables to 64 attributes, far above the 17 attributes of the
// widest table in the TPC-H and SSB benchmarks used by the paper.
package attrset

import (
	"fmt"
	"math/bits"
	"strings"
)

// MaxAttrs is the largest number of attributes a Set can hold.
const MaxAttrs = 64

// Set is a set of attribute indexes in [0, MaxAttrs).
// The zero value is the empty set and is ready to use.
type Set uint64

// Of returns a Set containing exactly the given attribute indexes.
func Of(attrs ...int) Set {
	var s Set
	for _, a := range attrs {
		s = s.Add(a)
	}
	return s
}

// All returns the set {0, 1, ..., n-1}.
func All(n int) Set {
	if n < 0 || n > MaxAttrs {
		panic(fmt.Sprintf("attrset: All(%d) out of range", n))
	}
	if n == MaxAttrs {
		return ^Set(0)
	}
	return Set(1)<<uint(n) - 1
}

// Single returns the set {a}.
func Single(a int) Set {
	checkIndex(a)
	return Set(1) << uint(a)
}

func checkIndex(a int) {
	if a < 0 || a >= MaxAttrs {
		panic(fmt.Sprintf("attrset: index %d out of range", a))
	}
}

// Add returns s with attribute a added.
func (s Set) Add(a int) Set {
	checkIndex(a)
	return s | Set(1)<<uint(a)
}

// Remove returns s with attribute a removed.
func (s Set) Remove(a int) Set {
	checkIndex(a)
	return s &^ (Set(1) << uint(a))
}

// Has reports whether attribute a is in s.
func (s Set) Has(a int) bool {
	if a < 0 || a >= MaxAttrs {
		return false
	}
	return s&(Set(1)<<uint(a)) != 0
}

// Union returns the union of s and t.
func (s Set) Union(t Set) Set { return s | t }

// Intersect returns the intersection of s and t.
func (s Set) Intersect(t Set) Set { return s & t }

// Minus returns the attributes of s that are not in t.
func (s Set) Minus(t Set) Set { return s &^ t }

// Overlaps reports whether s and t share any attribute.
func (s Set) Overlaps(t Set) bool { return s&t != 0 }

// ContainsAll reports whether every attribute of t is in s.
func (s Set) ContainsAll(t Set) bool { return s&t == t }

// IsEmpty reports whether s has no attributes.
func (s Set) IsEmpty() bool { return s == 0 }

// Len returns the number of attributes in s.
func (s Set) Len() int { return bits.OnesCount64(uint64(s)) }

// Min returns the smallest attribute index in s.
// It panics if s is empty.
func (s Set) Min() int {
	if s == 0 {
		panic("attrset: Min of empty set")
	}
	return bits.TrailingZeros64(uint64(s))
}

// Attrs returns the attribute indexes of s in increasing order.
func (s Set) Attrs() []int {
	out := make([]int, 0, s.Len())
	for t := s; t != 0; t &= t - 1 {
		out = append(out, bits.TrailingZeros64(uint64(t)))
	}
	return out
}

// ForEach calls fn for every attribute of s in increasing order.
func (s Set) ForEach(fn func(a int)) {
	for t := s; t != 0; t &= t - 1 {
		fn(bits.TrailingZeros64(uint64(t)))
	}
}

// Subsets calls fn for every non-empty subset of s, in an arbitrary but
// deterministic order. If fn returns false, iteration stops early.
func (s Set) Subsets(fn func(sub Set) bool) {
	// Standard sub-mask enumeration: sub = (sub-1) & s walks all submasks.
	for sub := s; sub != 0; sub = (sub - 1) & Set(s) {
		if !fn(sub) {
			return
		}
	}
}

// String renders s like "{0,3,5}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(a int) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%d", a)
	})
	b.WriteByte('}')
	return b.String()
}
