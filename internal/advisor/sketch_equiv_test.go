package advisor

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"knives/internal/attrset"
	"knives/internal/schema"
)

var update = flag.Bool("update", false, "rewrite golden files")

// equivStream is the recorded observation stream the differential test
// replays: deterministic, index-derived, three phases — stable co-access
// traffic, a hard shift to single-column reads (drift), then the drifted
// mix sustained (stable again under the recomputed advice). Batch sizes and
// weights vary so the exact log and the sketch see non-uniform mass.
func equivStream() [][]schema.TableQuery {
	var batches [][]schema.TableQuery
	id := 0
	add := func(n int, attrs func(j int) attrset.Set) {
		batch := make([]schema.TableQuery, n)
		for j := range batch {
			id++
			batch[j] = schema.TableQuery{
				ID:     fmt.Sprintf("e%d", id),
				Weight: float64(1 + id%3),
				Attrs:  attrs(j),
			}
		}
		batches = append(batches, batch)
	}
	coAccess := func(j int) attrset.Set {
		if j%3 == 2 {
			return attrset.Of(2, 3)
		}
		return attrset.Of(0, 1)
	}
	single := func(j int) attrset.Set { return attrset.Of(j % 2) }
	for i := 0; i < 8; i++ {
		add(2+i%3, coAccess)
	}
	for i := 0; i < 8; i++ {
		add(3+i%2, single)
	}
	for i := 0; i < 8; i++ {
		add(2+i%4, single)
	}
	return batches
}

// replayVerdicts streams equivStream through a fresh service in the given
// drift-tracking mode and renders one verdict line per batch.
func replayVerdicts(t *testing.T, mode string) []string {
	t.Helper()
	svc := NewService(Config{
		DriftThreshold: 0.15,
		DriftWindow:    16,
		DriftTracking:  mode,
	})
	register(t, svc)
	var lines []string
	for i, batch := range equivStream() {
		rep, err := svc.Observe("events", batch)
		if err != nil {
			t.Fatalf("%s mode, batch %d: %v", mode, i, err)
		}
		lines = append(lines, fmt.Sprintf("batch=%02d drifted=%t recomputed=%t observed=%d recomputes=%d",
			i, rep.Drifted, rep.Recomputed, rep.Observed, rep.Recomputes))
	}
	return lines
}

// The sketch-equivalence pin: on the recorded stream, the windowed
// space-saving sketch produces batch-for-batch the SAME drift verdicts as
// the exact full-log pricer, and both match the committed golden file. The
// stream's distinct attribute sets (4) fit any reasonable capacity, so the
// aggregated workload prices every fixed layout identically to the log —
// this test is the evidence behind TrackSketch's contract. Regenerate with
// go test ./internal/advisor -run TestSketchDriftVerdictsMatchExact -update
func TestSketchDriftVerdictsMatchExact(t *testing.T) {
	exact := replayVerdicts(t, TrackExact)
	sk := replayVerdicts(t, TrackSketch)
	for i := range exact {
		if i >= len(sk) || exact[i] != sk[i] {
			t.Fatalf("verdicts diverge at batch %d:\n  exact:  %s\n  sketch: %s", i, exact[i], sk[i])
		}
	}

	got := strings.Join(exact, "\n") + "\n"
	golden := filepath.Join("testdata", "observe_verdicts.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to record)", err)
	}
	if got != string(want) {
		t.Errorf("verdict stream diverged from golden:\ngot:\n%swant:\n%s", got, want)
	}

	// The drifted phase must actually have fired — a golden full of
	// drifted=false would pin nothing.
	if !strings.Contains(got, "recomputed=true") {
		t.Error("stream never recomputed; the equivalence pin is vacuous")
	}
}
