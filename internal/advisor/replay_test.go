package advisor

import (
	"context"
	"net/http"
	"strings"
	"sync"
	"testing"

	"knives/internal/cost"
)

func replayEventsRequest() ReplayRequest {
	adv := eventsRequest()
	return ReplayRequest{Tables: adv.Tables, Queries: adv.Queries, MaxRows: 2_000}
}

// Service-level: the advise-materialize-replay chain must be exact, cached
// by (fingerprint, rows, seed), and indifferent to the worker count.
func TestServiceReplayTable(t *testing.T) {
	svc := NewService(Config{})
	b, err := eventsRequest().Materialize()
	if err != nil {
		t.Fatal(err)
	}
	tw := b.TableWorkloads()[0]

	rep, fp, cached, err := svc.ReplayTable(tw, ReplayOptions{MaxRows: 2_000})
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("first replay claims cached")
	}
	if !rep.Exact() {
		t.Errorf("replay not exact (max |delta| %g)", rep.MaxAbsDelta())
	}
	if rep.RowsReplayed != 2_000 || rep.RowsFull != 1_000_000 {
		t.Errorf("rows %d/%d, want 2000/1000000", rep.RowsReplayed, rep.RowsFull)
	}
	// The layout replayed must be the advised one.
	advice, _, err := svc.AdviseTable(tw)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Algorithm != advice.Algorithm || rep.Layout.NumParts() != advice.Layout.NumParts() {
		t.Errorf("replayed %s/%d parts, advice %s/%d parts",
			rep.Algorithm, rep.Layout.NumParts(), advice.Algorithm, advice.Layout.NumParts())
	}

	// Identical request: cache hit, same report pointer.
	rep2, fp2, cached2, err := svc.ReplayTable(tw, ReplayOptions{MaxRows: 2_000})
	if err != nil {
		t.Fatal(err)
	}
	if !cached2 || rep2 != rep || fp2 != fp {
		t.Error("repeat replay not served from cache")
	}
	// Workers are not part of the key; rows and seed are.
	if _, _, cached, _ := svc.ReplayTable(tw, ReplayOptions{MaxRows: 2_000, Workers: 4}); !cached {
		t.Error("worker count changed the cache key")
	}
	if _, _, cached, _ := svc.ReplayTable(tw, ReplayOptions{MaxRows: 1_000}); cached {
		t.Error("row cap did not change the cache key")
	}
	if _, _, cached, _ := svc.ReplayTable(tw, ReplayOptions{MaxRows: 2_000, Seed: 9}); cached {
		t.Error("seed did not change the cache key")
	}

	st := svc.Stats()
	if st.Replays != 5 || st.ReplayHits != 2 || st.CachedReplays != 3 {
		t.Errorf("stats: %+v", st)
	}
}

// The service must replay under its own cost model, including MM.
func TestServiceReplayMMModel(t *testing.T) {
	svc := NewService(Config{Model: cost.NewMM()})
	b, err := eventsRequest().Materialize()
	if err != nil {
		t.Fatal(err)
	}
	rep, _, _, err := svc.ReplayTable(b.TableWorkloads()[0], ReplayOptions{MaxRows: 1_000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Model != "MM" || !rep.Exact() {
		t.Errorf("MM replay: model=%s exact=%v", rep.Model, rep.Exact())
	}
}

func TestServiceReplayRejectsBadOptions(t *testing.T) {
	svc := NewService(Config{})
	b, err := eventsRequest().Materialize()
	if err != nil {
		t.Fatal(err)
	}
	tw := b.TableWorkloads()[0]
	for _, opt := range []ReplayOptions{
		{MaxRows: -1},
		{MaxRows: MaxReplayRows + 1},
		{Workers: -2},
		{Workers: MaxReplayWorkers + 1},
	} {
		if _, _, _, err := svc.ReplayTable(tw, opt); err == nil {
			t.Errorf("options %+v accepted", opt)
		}
	}
}

// End to end over HTTP: advise -> /replay -> report, with the benchmark
// shorthand and the caching contract visible on the wire.
func TestServerReplayEndToEnd(t *testing.T) {
	_, _, client := newTestServer(t, Config{})
	ctx := context.Background()

	if _, err := client.Advise(ctx, eventsRequest()); err != nil {
		t.Fatal(err)
	}
	resp, err := client.Replay(ctx, replayEventsRequest())
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Reports) != 1 {
		t.Fatalf("%d reports, want 1", len(resp.Reports))
	}
	rep := resp.Reports[0]
	if rep.Table != "events" || rep.Cached {
		t.Errorf("first report: %+v", rep)
	}
	if !rep.Exact || rep.MaxAbsDelta != 0 {
		t.Errorf("measured != predicted on the wire: exact=%v maxDelta=%g", rep.Exact, rep.MaxAbsDelta)
	}
	if rep.MeasuredSeconds != rep.PredictedSeconds {
		t.Errorf("totals differ: %v vs %v", rep.MeasuredSeconds, rep.PredictedSeconds)
	}
	if len(rep.Queries) != 3 {
		t.Errorf("%d query replays, want 3", len(rep.Queries))
	}
	for _, q := range rep.Queries {
		if q.MeasuredSeconds != q.PredictedSeconds || len(q.Checksum) != 16 {
			t.Errorf("query %s: %+v", q.ID, q)
		}
	}
	if len(rep.Fingerprint) != 64 {
		t.Errorf("fingerprint %q is not 32 hex bytes", rep.Fingerprint)
	}

	again, err := client.Replay(ctx, replayEventsRequest())
	if err != nil {
		t.Fatal(err)
	}
	if !again.Reports[0].Cached {
		t.Error("repeated replay not served from cache")
	}
	if again.Reports[0].MeasuredSeconds != rep.MeasuredSeconds {
		t.Error("cached replay differs from first answer")
	}

	// Benchmark shorthand replays every table.
	tpch, err := client.Replay(ctx, ReplayRequest{Benchmark: "tpch", ScaleFactor: 0.01, MaxRows: 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(tpch.Reports) != 8 {
		t.Errorf("TPC-H replay has %d reports, want 8", len(tpch.Reports))
	}
	for _, r := range tpch.Reports {
		if !r.Exact {
			t.Errorf("table %s: not exact", r.Table)
		}
	}
}

// The acceptance load test: 8 parallel clients hammering /replay (mixed
// with /advise and /stats) against one service. Under -race this is the
// replay path's data-race gate.
func TestServerConcurrentReplayLoad(t *testing.T) {
	_, svc, client := newTestServer(t, Config{})

	reqs := make([]ReplayRequest, 3)
	for i := range reqs {
		reqs[i] = replayEventsRequest()
		reqs[i].Seed = int64(i) // three distinct cache keys
	}

	const clients = 8
	const perClient = 4
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ctx := context.Background()
			for r := 0; r < perClient; r++ {
				resp, err := client.Replay(ctx, reqs[(c+r)%len(reqs)])
				if err != nil {
					errs[c] = err
					return
				}
				if len(resp.Reports) != 1 || !resp.Reports[0].Exact {
					errs[c] = context.DeadlineExceeded // any sentinel: report content broke
					return
				}
				if _, err := client.Stats(ctx); err != nil {
					errs[c] = err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}

	st := svc.Stats()
	if st.Replays != clients*perClient {
		t.Errorf("replays = %d, want %d", st.Replays, clients*perClient)
	}
	// Identical concurrent requests must collapse: only the three distinct
	// keys may have executed a replay.
	if executed := st.Replays - st.ReplayHits; executed != int64(len(reqs)) {
		t.Errorf("executed %d replays, want %d (cache must absorb repeats)", executed, len(reqs))
	}
	if st.CachedReplays != len(reqs) {
		t.Errorf("cached replays = %d, want %d", st.CachedReplays, len(reqs))
	}
}

// Wire validation: malformed or abusive replay requests fail with 400; an
// oversized body fails with 413.
func TestServerReplayRejectsBadRequests(t *testing.T) {
	ts, _, _ := newTestServer(t, Config{})

	post := func(body string) int {
		resp, err := ts.Client().Post(ts.URL+"/replay", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	badRequests := []string{
		"{not json",
		`{"benchmark":"tpch"}{"benchmark":"ssb"}`,
		`{"tables":[]}`,
		`{"benchmark":"oracle"}`,
		`{"unknown_field":1}`,
		`{"benchmark":"tpch","max_rows":-5}`,
		`{"benchmark":"tpch","max_rows":2000000}`,
		`{"benchmark":"tpch","workers":-1}`,
		`{"benchmark":"tpch","workers":100000}`,
	}
	for _, body := range badRequests {
		if got := post(body); got != http.StatusBadRequest {
			t.Errorf("body %.40q: status %d, want 400", body, got)
		}
	}

	// An over-limit body is 413: splitting the request can succeed, so the
	// client must be told this is a size problem, not a syntax one.
	huge := `{"benchmark":"` + strings.Repeat("a", maxBodyBytes+1) + `"}`
	if got := post(huge); got != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", got)
	}
}

// A replay of a workload the advisor has already answered must reuse the
// cached advice (no second portfolio search) and register the same
// fingerprint.
func TestServerReplaySharesAdviceCache(t *testing.T) {
	_, svc, client := newTestServer(t, Config{})
	ctx := context.Background()
	adv, err := client.Advise(ctx, eventsRequest())
	if err != nil {
		t.Fatal(err)
	}
	before := svc.Stats().Searches
	rep, err := client.Replay(ctx, replayEventsRequest())
	if err != nil {
		t.Fatal(err)
	}
	if got := svc.Stats().Searches; got != before {
		t.Errorf("replay ran %d extra portfolio searches", got-before)
	}
	if rep.Reports[0].Fingerprint != adv.Advice[0].Fingerprint {
		t.Error("replay fingerprint differs from advice fingerprint")
	}
	if rep.Reports[0].Algorithm != adv.Advice[0].Algorithm {
		t.Error("replayed layout is not the advised one")
	}
}

// Replay reports must be byte-stable across backends and match a direct
// service call, pinning that the HTTP layer adds no nondeterminism.
func TestServerReplayDeterministic(t *testing.T) {
	_, _, c1 := newTestServer(t, Config{})
	_, _, c2 := newTestServer(t, Config{})
	ctx := context.Background()
	r1, err := c1.Replay(ctx, replayEventsRequest())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c2.Replay(ctx, replayEventsRequest())
	if err != nil {
		t.Fatal(err)
	}
	a, b := r1.Reports[0], r2.Reports[0]
	if a.MeasuredSeconds != b.MeasuredSeconds || a.Seeks != b.Seeks || a.BytesRead != b.BytesRead {
		t.Errorf("fresh services replayed different numbers: %+v vs %+v", a, b)
	}
	for i := range a.Queries {
		if a.Queries[i].Checksum != b.Queries[i].Checksum {
			t.Errorf("query %s: checksums differ across services", a.Queries[i].ID)
		}
	}
}
