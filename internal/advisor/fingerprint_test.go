package advisor

import (
	"testing"

	"knives/internal/attrset"
	"knives/internal/schema"
)

func fpTable(t *testing.T) *schema.Table {
	t.Helper()
	tab, err := schema.NewTable("t", 1000, []schema.Column{
		{Name: "a", Kind: schema.KindInt, Size: 4},
		{Name: "b", Kind: schema.KindInt, Size: 8},
		{Name: "c", Kind: schema.KindVarchar, Size: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestFingerprintIsStable(t *testing.T) {
	tab := fpTable(t)
	tw := schema.TableWorkload{Table: tab, Queries: []schema.TableQuery{
		{ID: "q1", Weight: 1, Attrs: attrset.Of(0, 1)},
		{ID: "q2", Weight: 2, Attrs: attrset.Of(2)},
	}}
	if FingerprintOf(tw) != FingerprintOf(tw) {
		t.Error("same workload fingerprinted differently")
	}
}

func TestFingerprintIgnoresQueryIDs(t *testing.T) {
	tab := fpTable(t)
	a := schema.TableWorkload{Table: tab, Queries: []schema.TableQuery{
		{ID: "q1", Weight: 1, Attrs: attrset.Of(0, 1)},
	}}
	b := schema.TableWorkload{Table: tab, Queries: []schema.TableQuery{
		{ID: "renamed", Weight: 1, Attrs: attrset.Of(0, 1)},
	}}
	if FingerprintOf(a) != FingerprintOf(b) {
		t.Error("query IDs changed the fingerprint; they never affect cost")
	}
}

func TestFingerprintNormalizesZeroWeight(t *testing.T) {
	tab := fpTable(t)
	zero := schema.TableWorkload{Table: tab, Queries: []schema.TableQuery{
		{ID: "q", Weight: 0, Attrs: attrset.Of(0)},
	}}
	one := schema.TableWorkload{Table: tab, Queries: []schema.TableQuery{
		{ID: "q", Weight: 1, Attrs: attrset.Of(0)},
	}}
	if FingerprintOf(zero) != FingerprintOf(one) {
		t.Error("weight 0 and weight 1 price identically but fingerprint differently")
	}
}

// Query order is part of the fingerprint: O2P is in the portfolio and is
// intentionally order-sensitive, so workloads differing only in arrival
// order may not share a cache entry.
func TestFingerprintPreservesQueryOrder(t *testing.T) {
	tab := fpTable(t)
	ab := schema.TableWorkload{Table: tab, Queries: []schema.TableQuery{
		{ID: "q1", Weight: 1, Attrs: attrset.Of(0, 1)},
		{ID: "q2", Weight: 1, Attrs: attrset.Of(2)},
	}}
	ba := schema.TableWorkload{Table: tab, Queries: []schema.TableQuery{
		{ID: "q2", Weight: 1, Attrs: attrset.Of(2)},
		{ID: "q1", Weight: 1, Attrs: attrset.Of(0, 1)},
	}}
	if FingerprintOf(ab) == FingerprintOf(ba) {
		t.Error("permuted query order kept the fingerprint; O2P is order-sensitive")
	}
}

func TestFingerprintCoversSchema(t *testing.T) {
	base := fpTable(t)
	queries := []schema.TableQuery{{ID: "q", Weight: 1, Attrs: attrset.Of(0, 1)}}
	fp := FingerprintOf(schema.TableWorkload{Table: base, Queries: queries})

	mutations := []struct {
		name string
		tab  func(t *testing.T) *schema.Table
	}{
		{"row count", func(t *testing.T) *schema.Table {
			return schema.MustTable("t", 2000, base.Columns)
		}},
		{"column width", func(t *testing.T) *schema.Table {
			cols := append([]schema.Column(nil), base.Columns...)
			cols[1].Size = 16
			return schema.MustTable("t", 1000, cols)
		}},
		{"column kind", func(t *testing.T) *schema.Table {
			cols := append([]schema.Column(nil), base.Columns...)
			cols[0].Kind = schema.KindDate
			return schema.MustTable("t", 1000, cols)
		}},
		{"table name", func(t *testing.T) *schema.Table {
			return schema.MustTable("u", 1000, base.Columns)
		}},
	}
	for _, mut := range mutations {
		got := FingerprintOf(schema.TableWorkload{Table: mut.tab(t), Queries: queries})
		if got == fp {
			t.Errorf("changing the %s did not change the fingerprint", mut.name)
		}
	}
}
