package advisor

import (
	"fmt"
	"strings"

	"knives/internal/attrset"
	"knives/internal/operator"
	"knives/internal/replay"
	"knives/internal/schema"
)

// Wire types: the JSON workload format knivesd ingests. Tables and queries
// mirror schema.Table / schema.Query with columns referenced by name, plus
// a benchmark shorthand so clients can ask about TPC-H/SSB without
// restating the paper's schemas.

// ColumnSpec describes one column of a table.
type ColumnSpec struct {
	Name string `json:"name"`
	Kind string `json:"kind,omitempty"` // int, decimal, date, char, varchar
	Size int    `json:"size"`
}

// TableSpec describes one table.
type TableSpec struct {
	Name    string       `json:"name"`
	Rows    int64        `json:"rows"`
	Columns []ColumnSpec `json:"columns"`
}

// QuerySpec is one workload query: per-table referenced column names.
type QuerySpec struct {
	ID     string              `json:"id,omitempty"`
	Weight float64             `json:"weight,omitempty"`
	Tables map[string][]string `json:"tables"`
}

// AdviseRequest is the body of POST /advise.
type AdviseRequest struct {
	// Benchmark optionally names a built-in benchmark ("tpch" or "ssb") at
	// ScaleFactor (default 10); Tables/Queries must then be empty.
	Benchmark   string  `json:"benchmark,omitempty"`
	ScaleFactor float64 `json:"sf,omitempty"`

	Tables  []TableSpec `json:"tables,omitempty"`
	Queries []QuerySpec `json:"queries,omitempty"`

	// Model optionally names the device this request prices on, with
	// optional hardware overrides; absent means the daemon's configured
	// model. Advice is cached per (workload, device).
	Model *ModelSpec `json:"model,omitempty"`
}

// TableAdviceWire is one table's advice as served over HTTP.
type TableAdviceWire struct {
	Table                 string             `json:"table"`
	Algorithm             string             `json:"algorithm"`
	Layout                [][]string         `json:"layout"`
	Cost                  float64            `json:"cost"`
	RowCost               float64            `json:"row_cost"`
	ColumnCost            float64            `json:"column_cost"`
	ImprovementOverRow    float64            `json:"improvement_over_row"`
	ImprovementOverColumn float64            `json:"improvement_over_column"`
	PerAlgorithm          map[string]float64 `json:"per_algorithm"`
	Fingerprint           string             `json:"fingerprint"`
	Cached                bool               `json:"cached"`
}

// AdviseResponse is the body answering POST /advise.
type AdviseResponse struct {
	Advice []TableAdviceWire `json:"advice"`
}

// ReplayRequest is the body of POST /replay: the same workload forms as
// /advise (benchmark shorthand or explicit tables/queries) plus the replay
// knobs. The server advises the workload (from the fingerprint cache),
// materializes every advised layout through the storage engine, replays the
// full per-table workload, and reports measured execution against the cost
// model's predictions.
type ReplayRequest struct {
	Benchmark   string  `json:"benchmark,omitempty"`
	ScaleFactor float64 `json:"sf,omitempty"`

	Tables  []TableSpec `json:"tables,omitempty"`
	Queries []QuerySpec `json:"queries,omitempty"`

	// MaxRows caps the materialized rows per table (0 = server default,
	// bounded by MaxReplayRows). Seed feeds the deterministic generator.
	// Workers bounds the worker pool and never changes a reported number.
	MaxRows int64 `json:"max_rows,omitempty"`
	Seed    int64 `json:"seed,omitempty"`
	Workers int   `json:"workers,omitempty"`

	// Model optionally names the device the replay materializes, measures,
	// and prices on (with optional hardware overrides); absent means the
	// daemon's configured model.
	Model *ModelSpec `json:"model,omitempty"`
}

// advise returns the request's workload as an AdviseRequest.
func (r ReplayRequest) advise() AdviseRequest {
	return AdviseRequest{
		Benchmark:   r.Benchmark,
		ScaleFactor: r.ScaleFactor,
		Tables:      r.Tables,
		Queries:     r.Queries,
		Model:       r.Model,
	}
}

// QueryReplayWire is one query's measured execution on the wire.
type QueryReplayWire struct {
	ID               string  `json:"id"`
	Weight           float64 `json:"weight"`
	Seeks            int64   `json:"seeks"`
	BytesRead        int64   `json:"bytes_read"`
	CacheLines       int64   `json:"cache_lines"`
	ReconJoins       int64   `json:"recon_joins"`
	Checksum         string  `json:"checksum"`
	MeasuredSeconds  float64 `json:"measured_seconds"`
	PredictedSeconds float64 `json:"predicted_seconds"`
}

// TableReplayWire is one table's replay report as served over HTTP.
type TableReplayWire struct {
	Table            string            `json:"table"`
	Algorithm        string            `json:"algorithm"`
	Layout           [][]string        `json:"layout"`
	Model            string            `json:"model"`
	RowsReplayed     int64             `json:"rows_replayed"`
	RowsFull         int64             `json:"rows_full"`
	MeasuredSeconds  float64           `json:"measured_seconds"`
	PredictedSeconds float64           `json:"predicted_seconds"`
	Exact            bool              `json:"exact"`
	MaxAbsDelta      float64           `json:"max_abs_delta"`
	BytesRead        int64             `json:"bytes_read"`
	Seeks            int64             `json:"seeks"`
	ReconJoins       int64             `json:"recon_joins"`
	Queries          []QueryReplayWire `json:"queries"`
	Fingerprint      string            `json:"fingerprint"`
	Cached           bool              `json:"cached"`
}

// ReplayResponse is the body answering POST /replay.
type ReplayResponse struct {
	Reports []TableReplayWire `json:"reports"`
}

// SelectionSpec names a σ pushed into one table's pipelines: keep rows
// whose u32 column (int or date) is strictly below Bound.
type SelectionSpec struct {
	Table  string `json:"table"`
	Column string `json:"column"`
	Bound  uint32 `json:"bound"`
}

// QueryRequest is the body of POST /query: the same workload forms as
// /replay, but the server EXECUTES every query as a streaming σ/π/⋈
// operator pipeline over an epoch snapshot of the advised layout, and the
// response decomposes each query's measured cost into per-operator terms —
// still equal to the cost model's predictions at zero tolerance.
type QueryRequest struct {
	Benchmark   string  `json:"benchmark,omitempty"`
	ScaleFactor float64 `json:"sf,omitempty"`

	Tables  []TableSpec `json:"tables,omitempty"`
	Queries []QuerySpec `json:"queries,omitempty"`

	// MaxRows, Seed, and Workers behave exactly as on /replay.
	MaxRows int64 `json:"max_rows,omitempty"`
	Seed    int64 `json:"seed,omitempty"`
	Workers int   `json:"workers,omitempty"`

	// Exec selects pipeline execution: "" or "row" (oracle) or "vector".
	// BatchSize and ExecWorkers tune the vector path (0 = defaults). All
	// three change wall-clock only, never a result, so — like Workers —
	// they are deliberately NOT part of the exec cache key: a row-mode and
	// a vector-mode request for the same workload share one cached
	// execution.
	Exec        string `json:"exec,omitempty"`
	BatchSize   int    `json:"batch_size,omitempty"`
	ExecWorkers int    `json:"exec_workers,omitempty"`

	// Selection optionally pushes a σ into the named table's pipelines.
	Selection *SelectionSpec `json:"selection,omitempty"`

	// Model optionally names the device to execute and price on.
	Model *ModelSpec `json:"model,omitempty"`
}

// advise returns the request's workload as an AdviseRequest.
func (r QueryRequest) advise() AdviseRequest {
	return AdviseRequest{
		Benchmark:   r.Benchmark,
		ScaleFactor: r.ScaleFactor,
		Tables:      r.Tables,
		Queries:     r.Queries,
		Model:       r.Model,
	}
}

// PipelineWire is one query's executed pipeline on the wire: the measured
// totals plus the plan and its per-operator decomposition (operator.OpStats
// serializes itself).
type PipelineWire struct {
	QueryReplayWire
	Plan       string             `json:"plan"`
	ResultRows int64              `json:"result_rows"`
	Operators  []operator.OpStats `json:"operators"`
}

// TableExecWire is one table's executed workload as served over HTTP.
type TableExecWire struct {
	Table            string         `json:"table"`
	Algorithm        string         `json:"algorithm"`
	Layout           [][]string     `json:"layout"`
	Model            string         `json:"model"`
	Selection        string         `json:"selection,omitempty"`
	ExecMode         string         `json:"exec_mode,omitempty"`
	RowsReplayed     int64          `json:"rows_replayed"`
	RowsFull         int64          `json:"rows_full"`
	MeasuredSeconds  float64        `json:"measured_seconds"`
	PredictedSeconds float64        `json:"predicted_seconds"`
	Exact            bool           `json:"exact"`
	MaxAbsDelta      float64        `json:"max_abs_delta"`
	BytesRead        int64          `json:"bytes_read"`
	Seeks            int64          `json:"seeks"`
	ReconJoins       int64          `json:"recon_joins"`
	Pipelines        []PipelineWire `json:"pipelines"`
	Fingerprint      string         `json:"fingerprint"`
	Cached           bool           `json:"cached"`
}

// QueryResponse is the body answering POST /query.
type QueryResponse struct {
	Reports []TableExecWire `json:"reports"`
}

// MigrateRequest is the body of POST /migrate: plan (and, when the layouts
// differ, execute-and-verify on a sampled store) the migration of a
// registered table from the layout its store holds to the service's
// current — possibly drift-recomputed — advice, amortized over the
// tracker's observed query mix.
type MigrateRequest struct {
	Table string `json:"table"`
	// Window bounds the acceptable break-even horizon in queries of the
	// observed mix (0 = server default). Plans beyond it are refused.
	Window int64 `json:"window,omitempty"`
	// MaxRows, Seed, Workers parameterize the sampled verification
	// execution, exactly like /replay's knobs.
	MaxRows int64 `json:"max_rows,omitempty"`
	Seed    int64 `json:"seed,omitempty"`
	Workers int   `json:"workers,omitempty"`
}

// MigrationWire is one migration outcome as served over HTTP.
type MigrationWire struct {
	Table         string     `json:"table"`
	FromAlgorithm string     `json:"from_algorithm"`
	ToAlgorithm   string     `json:"to_algorithm"`
	FromLayout    [][]string `json:"from_layout"`
	ToLayout      [][]string `json:"to_layout"`
	Model         string     `json:"model"`
	// The plan: full-scale migration cost, per-query gain on the observed
	// mix, and the break-even verdict.
	MigrationSeconds float64 `json:"migration_seconds"`
	PerQueryFrom     float64 `json:"per_query_from"`
	PerQueryTo       float64 `json:"per_query_to"`
	BreakEven        int64   `json:"break_even,omitempty"`
	Window           int64   `json:"window"`
	Viable           bool    `json:"viable"`
	Reason           string  `json:"reason,omitempty"`
	// The sampled execute-and-verify run (absent when nothing moved).
	Executed         bool    `json:"executed"`
	RowsExecuted     int64   `json:"rows_executed,omitempty"`
	MeasuredSeconds  float64 `json:"measured_seconds,omitempty"`
	PredictedSeconds float64 `json:"predicted_seconds,omitempty"`
	CostExact        bool    `json:"cost_exact"`
	VerifyExact      bool    `json:"verify_exact"`
	// AppliedUpdated reports whether the tracker now considers the store
	// migrated to the advised layout.
	AppliedUpdated bool   `json:"applied_updated"`
	FromFP         string `json:"from_fingerprint"`
	ToFP           string `json:"to_fingerprint"`
	Cached         bool   `json:"cached"`
}

// toMigrationWire renders a migration outcome for the wire.
func toMigrationWire(o *MigrationOutcome, cached bool) MigrationWire {
	p := o.Plan
	t := p.Table
	layoutNames := func(pg [][]string, parts []schema.Set) [][]string {
		for _, part := range parts {
			pg = append(pg, t.AttrNames(part))
		}
		return pg
	}
	w := MigrationWire{
		Table:            o.Table,
		FromAlgorithm:    p.FromAlgorithm,
		ToAlgorithm:      p.ToAlgorithm,
		FromLayout:       layoutNames(nil, p.From.Parts),
		ToLayout:         layoutNames(nil, p.To.Parts),
		Model:            p.Model,
		MigrationSeconds: p.Migration.Seconds,
		PerQueryFrom:     p.PerQueryFrom,
		PerQueryTo:       p.PerQueryTo,
		BreakEven:        p.BreakEven,
		Window:           p.Window,
		Viable:           p.Viable,
		Reason:           p.Reason,
		AppliedUpdated:   o.AppliedUpdated,
		FromFP:           o.FromFP.String(),
		ToFP:             o.ToFP.String(),
		Cached:           cached,
	}
	if r := o.Report; r != nil {
		w.Executed = true
		w.RowsExecuted = r.RowsExecuted
		w.MeasuredSeconds = r.MeasuredSeconds
		w.PredictedSeconds = r.PredictedSeconds
		w.CostExact = r.CostExact()
		w.VerifyExact = r.VerifyExact()
	} else {
		// Nothing moved; trivially exact.
		w.CostExact = true
		w.VerifyExact = true
	}
	return w
}

// ObserveRequest is the body of POST /observe. Two shapes share the
// endpoint:
//
//   - Single-table (legacy): Table + Queries, answered with the top-level
//     Drift/Advice pair — byte-compatible with every earlier release.
//   - Batched: Batches carries many tables × many queries in one request,
//     answered with one TableObserveVerdict per entry, in order. Entries
//     fail independently: an unknown table or bad query in one batch never
//     blocks its neighbors. The batched shape excludes the legacy fields.
//
// Batches for the same table are applied in slice order; batches for
// different tables may interleave with other requests.
type ObserveRequest struct {
	Table   string        `json:"table,omitempty"`
	Queries []ObservedQry `json:"queries,omitempty"`

	Batches []TableObservation `json:"batches,omitempty"`

	// BatchID optionally identifies this batched request for redelivery
	// dedup: a retry re-sending the same ID after a lost response answers
	// from the server's dedup window instead of re-ingesting (and
	// double-counting) the applied batches. IDs must be unique per LOGICAL
	// batch — reusing one for different content answers the first
	// content's verdicts. Single-table requests ignore it.
	BatchID string `json:"batch_id,omitempty"`
}

// TableObservation is one table's slice of a batched observe request.
type TableObservation struct {
	Table   string        `json:"table"`
	Queries []ObservedQry `json:"queries"`
}

// ObservedQry is one observed query: referenced column names and weight.
// A weight of 0 — the JSON default for an omitted field — is coerced to 1,
// the same convention /advise applies to workload queries; negative or NaN
// weights are rejected.
type ObservedQry struct {
	Attrs  []string `json:"attrs"`
	Weight float64  `json:"weight,omitempty"`
}

// ObserveResponse reports the drift state after an observation request.
// Single-table requests fill Drift/Advice; batched requests fill Verdicts,
// one per submitted TableObservation, in submission order.
type ObserveResponse struct {
	Drift  DriftReport     `json:"drift"`
	Advice TableAdviceWire `json:"advice"`

	Verdicts []TableObserveVerdict `json:"verdicts,omitempty"`

	// Duplicate reports that the request's BatchID was already applied and
	// the verdicts above are the original ingest's, replayed from the
	// dedup window — nothing was re-ingested.
	Duplicate bool `json:"duplicate,omitempty"`
}

// TableObserveVerdict is one batch entry's outcome in a batched observe
// response. Status mirrors the HTTP code the same failure would earn on the
// single-table path (200, 400, 404, 409, 503, 500); Error is empty on
// success, in which case Drift/Advice carry the post-ingest state.
type TableObserveVerdict struct {
	Table  string          `json:"table"`
	Status int             `json:"status"`
	Error  string          `json:"error,omitempty"`
	Drift  DriftReport     `json:"drift"`
	Advice TableAdviceWire `json:"advice"`
}

// parseKind maps a wire kind to a schema.ColumnKind; empty defaults to int
// (the kind only matters to the storage engine, not the cost model).
func parseKind(k string) (schema.ColumnKind, error) {
	switch strings.ToLower(k) {
	case "", "int":
		return schema.KindInt, nil
	case "decimal":
		return schema.KindDecimal, nil
	case "date":
		return schema.KindDate, nil
	case "char":
		return schema.KindChar, nil
	case "varchar":
		return schema.KindVarchar, nil
	default:
		return 0, fmt.Errorf("advisor: unknown column kind %q", k)
	}
}

// Materialize turns the request into a validated schema.Benchmark.
func (r AdviseRequest) Materialize() (*schema.Benchmark, error) {
	if r.Benchmark != "" {
		if len(r.Tables) > 0 || len(r.Queries) > 0 {
			return nil, fmt.Errorf("advisor: benchmark shorthand excludes explicit tables/queries")
		}
		b, err := schema.BenchmarkByName(r.Benchmark, r.ScaleFactor)
		if err != nil {
			return nil, fmt.Errorf("advisor: %w", err)
		}
		return b, nil
	}
	if len(r.Tables) == 0 {
		return nil, fmt.Errorf("advisor: request has no tables")
	}
	if r.ScaleFactor != 0 {
		// sf only scales the built-in benchmarks; silently ignoring it on
		// explicit tables would advise a different workload than the
		// client thinks they described.
		return nil, fmt.Errorf("advisor: sf applies only to the benchmark shorthand, not explicit tables")
	}
	b := &schema.Benchmark{Name: "custom"}
	for _, ts := range r.Tables {
		cols := make([]schema.Column, len(ts.Columns))
		for i, cs := range ts.Columns {
			kind, err := parseKind(cs.Kind)
			if err != nil {
				return nil, fmt.Errorf("%w (table %s column %s)", err, ts.Name, cs.Name)
			}
			cols[i] = schema.Column{Name: cs.Name, Kind: kind, Size: cs.Size}
		}
		t, err := schema.NewTable(ts.Name, ts.Rows, cols)
		if err != nil {
			return nil, err
		}
		if b.Table(ts.Name) != nil {
			return nil, fmt.Errorf("advisor: duplicate table %q", ts.Name)
		}
		b.Tables = append(b.Tables, t)
	}
	for i, qs := range r.Queries {
		id := qs.ID
		if id == "" {
			id = fmt.Sprintf("q%d", i+1)
		}
		if !(qs.Weight >= 0) { // negated compare also rejects NaN
			return nil, fmt.Errorf("advisor: query %s has invalid weight %v", id, qs.Weight)
		}
		q := schema.Query{ID: id, Weight: qs.Weight, Refs: make(map[string]attrset.Set, len(qs.Tables))}
		for tname, colNames := range qs.Tables {
			t := b.Table(tname)
			if t == nil {
				return nil, fmt.Errorf("advisor: query %s references unknown table %q", id, tname)
			}
			attrs, err := resolveAttrs(t, colNames)
			if err != nil {
				return nil, fmt.Errorf("advisor: query %s: %w", id, err)
			}
			q.Refs[tname] = attrs
		}
		b.Workload.Queries = append(b.Workload.Queries, q)
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}

// resolveAttrs maps column names to an attribute set.
func resolveAttrs(t *schema.Table, names []string) (attrset.Set, error) {
	var s attrset.Set
	if len(names) == 0 {
		return 0, fmt.Errorf("references no columns of %s", t.Name)
	}
	for _, n := range names {
		i := t.AttrIndex(n)
		if i < 0 {
			return 0, fmt.Errorf("table %s has no column %q", t.Name, n)
		}
		s = s.Add(i)
	}
	return s, nil
}

// toReplayWire renders a replay report for the wire.
func toReplayWire(r *replay.TableReplay, fp Fingerprint, cached bool) TableReplayWire {
	t := r.Layout.Table
	layout := make([][]string, 0, r.Layout.NumParts())
	for _, part := range r.Layout.Canonical().Parts {
		layout = append(layout, t.AttrNames(part))
	}
	qs := make([]QueryReplayWire, len(r.Queries))
	for i, q := range r.Queries {
		qs[i] = QueryReplayWire{
			ID:               q.ID,
			Weight:           q.Weight,
			Seeks:            q.Stats.Seeks,
			BytesRead:        q.Stats.BytesRead,
			CacheLines:       q.Stats.CacheLines,
			ReconJoins:       q.Stats.ReconJoins,
			Checksum:         fmt.Sprintf("%016x", q.Stats.Checksum),
			MeasuredSeconds:  q.MeasuredSeconds,
			PredictedSeconds: q.PredictedSeconds,
		}
	}
	return TableReplayWire{
		Table:            r.Table,
		Algorithm:        r.Algorithm,
		Layout:           layout,
		Model:            r.Model,
		RowsReplayed:     r.RowsReplayed,
		RowsFull:         r.RowsFull,
		MeasuredSeconds:  r.MeasuredTotal,
		PredictedSeconds: r.PredictedTotal,
		Exact:            r.Exact(),
		MaxAbsDelta:      r.MaxAbsDelta(),
		BytesRead:        r.BytesRead,
		Seeks:            r.Seeks,
		ReconJoins:       r.ReconJoins,
		Queries:          qs,
		Fingerprint:      fp.String(),
		Cached:           cached,
	}
}

// toExecWire renders an executed-pipeline report for the wire.
func toExecWire(r *replay.OperatorReplay, fp Fingerprint, cached bool) TableExecWire {
	t := r.Layout.Table
	layout := make([][]string, 0, r.Layout.NumParts())
	for _, part := range r.Layout.Canonical().Parts {
		layout = append(layout, t.AttrNames(part))
	}
	ps := make([]PipelineWire, len(r.Queries))
	for i, q := range r.Queries {
		ps[i] = PipelineWire{
			QueryReplayWire: QueryReplayWire{
				ID:               q.ID,
				Weight:           q.Weight,
				Seeks:            q.Stats.Seeks,
				BytesRead:        q.Stats.BytesRead,
				CacheLines:       q.Stats.CacheLines,
				ReconJoins:       q.Stats.ReconJoins,
				Checksum:         fmt.Sprintf("%016x", q.Stats.Checksum),
				MeasuredSeconds:  q.MeasuredSeconds,
				PredictedSeconds: q.PredictedSeconds,
			},
			Plan:       r.Plans[i],
			ResultRows: r.ResultRows[i],
			Operators:  r.Ops[i],
		}
	}
	return TableExecWire{
		Table:            r.Table,
		Algorithm:        r.Algorithm,
		Layout:           layout,
		Model:            r.Model,
		Selection:        r.Selection,
		ExecMode:         r.ExecMode,
		RowsReplayed:     r.RowsReplayed,
		RowsFull:         r.RowsFull,
		MeasuredSeconds:  r.MeasuredTotal,
		PredictedSeconds: r.PredictedTotal,
		Exact:            r.Exact(),
		MaxAbsDelta:      r.MaxAbsDelta(),
		BytesRead:        r.BytesRead,
		Seeks:            r.Seeks,
		ReconJoins:       r.ReconJoins,
		Pipelines:        ps,
		Fingerprint:      fp.String(),
		Cached:           cached,
	}
}

// toWire renders advice for the wire.
func toWire(a TableAdvice, fp Fingerprint, cached bool) TableAdviceWire {
	layout := make([][]string, 0, a.Layout.NumParts())
	for _, part := range a.Layout.Canonical().Parts {
		layout = append(layout, a.Table.AttrNames(part))
	}
	return TableAdviceWire{
		Table:                 a.Table.Name,
		Algorithm:             a.Algorithm,
		Layout:                layout,
		Cost:                  a.Cost,
		RowCost:               a.RowCost,
		ColumnCost:            a.ColumnCost,
		ImprovementOverRow:    a.ImprovementOverRow(),
		ImprovementOverColumn: a.ImprovementOverColumn(),
		PerAlgorithm:          a.PerAlgorithm,
		Fingerprint:           fp.String(),
		Cached:                cached,
	}
}
