package advisor

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrShed reports a request refused at the door: every execution slot is
// busy and the waiting room is full. The server answers 429 with a
// Retry-After hint; a well-behaved client backs off and retries — nothing
// about the request itself was wrong.
var ErrShed = errors.New("advisor: server overloaded")

// admission is a two-stage bounded gate for the expensive endpoints: up to
// cap(slots) requests execute, up to cap(queue) more wait for a slot (under
// their own deadlines), and everyone past that is shed immediately. The
// queue bound is what makes overload fail FAST: without it, a burst parks
// unbounded handler goroutines on the slot channel and the daemon turns
// slow instead of honest.
type admission struct {
	slots chan struct{}
	queue chan struct{}
	shed  atomic.Int64
}

// newAdmission sizes the gate; maxInFlight <= 0 disables admission control
// entirely (returns nil, and a nil *admission admits everything).
func newAdmission(maxInFlight, maxQueue int) *admission {
	if maxInFlight <= 0 {
		return nil
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{
		slots: make(chan struct{}, maxInFlight),
		queue: make(chan struct{}, maxQueue),
	}
}

// acquire takes an execution slot, waiting in the bounded queue when all
// slots are busy. It returns ErrShed when the queue is full too, or
// ctx.Err() when the caller's deadline expires while waiting. A nil
// receiver admits immediately.
func (a *admission) acquire(ctx context.Context) error {
	if a == nil {
		return nil
	}
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	select {
	case a.queue <- struct{}{}:
	default:
		a.shed.Add(1)
		return ErrShed
	}
	defer func() { <-a.queue }()
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns a slot taken by a successful acquire.
func (a *admission) release() {
	if a != nil {
		<-a.slots
	}
}

// shedCount returns how many requests were refused with ErrShed.
func (a *admission) shedCount() int64 {
	if a == nil {
		return 0
	}
	return a.shed.Load()
}
