package advisor

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"knives/internal/attrset"
	"knives/internal/faultinject"
	"knives/internal/schema"
	"knives/internal/statestore"
	"knives/internal/vfs"
)

// register advises the wideTable co-access workload so "events" is tracked.
func register(t *testing.T, svc *Service) *schema.Table {
	t.Helper()
	tab := wideTable(t)
	if _, _, err := svc.AdviseTable(coAccessWorkload(tab)); err != nil {
		t.Fatal(err)
	}
	return tab
}

// trackerLog copies the tracker's observation log under its lock.
func trackerLog(t *testing.T, svc *Service, table string) []schema.TableQuery {
	t.Helper()
	tr, err := svc.tracker(table)
	if err != nil {
		t.Fatal(err)
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]schema.TableQuery(nil), tr.log...)
}

// Weight-0 unification (the bugfix this PR pins): BOTH observation
// endpoints coerce a zero weight — the JSON default for an omitted field —
// to 1 during validation, and both reject negative weights. Before the fix
// the named endpoint coerced and the numeric endpoint silently accepted 0,
// so the same observation priced differently depending on the entry point.
func TestObserveWeightZeroUnifiedAcrossEndpoints(t *testing.T) {
	svc := NewService(Config{DriftWindow: 16})
	register(t, svc)

	if _, err := svc.Observe("events", []schema.TableQuery{
		{ID: "z", Weight: 0, Attrs: attrset.Of(0, 1)},
	}); err != nil {
		t.Fatalf("numeric observe with weight 0: %v", err)
	}
	if _, err := svc.ObserveNamed("events", []ObservedQry{
		{Attrs: []string{"a", "b"}}, // weight omitted = 0 on the wire
	}); err != nil {
		t.Fatalf("named observe with weight 0: %v", err)
	}
	log := trackerLog(t, svc, "events")
	if len(log) < 2 {
		t.Fatalf("log has %d entries, want the 2 observed queries", len(log))
	}
	for _, q := range log[len(log)-2:] {
		if q.Weight != 1 {
			t.Errorf("query %s logged with weight %v, want 0 coerced to 1", q.ID, q.Weight)
		}
	}

	if _, err := svc.Observe("events", []schema.TableQuery{
		{ID: "n", Weight: -1, Attrs: attrset.Of(0)},
	}); !errors.Is(err, ErrBadObservation) {
		t.Errorf("numeric observe with weight -1: err=%v, want ErrBadObservation", err)
	}
	if _, err := svc.ObserveNamed("events", []ObservedQry{
		{Attrs: []string{"a"}, Weight: -1},
	}); !errors.Is(err, ErrBadObservation) {
		t.Errorf("named observe with weight -1: err=%v, want ErrBadObservation", err)
	}
}

// Empty observation batches short-circuit: the tracker's counters come back
// unchanged and NOTHING is journaled — the WAL's last sequence number must
// not move. Before the fix every empty batch appended a no-op EvObserve.
func TestObserveEmptyBatchJournalsNothing(t *testing.T) {
	dir := t.TempDir()
	d := durableStore(t, dir, 16)
	svc, err := OpenService(Config{DriftWindow: 16, Store: d})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	register(t, svc)

	if _, err := svc.Observe("events", singleColumnBatch()); err != nil {
		t.Fatal(err)
	}
	before := d.LastSeq()
	repN, err := svc.Observe("events", nil)
	if err != nil {
		t.Fatal(err)
	}
	repM, err := svc.ObserveNamed("events", []ObservedQry{})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.LastSeq(); got != before {
		t.Errorf("empty batches moved the WAL from seq %d to %d", before, got)
	}
	if repN.Observed != 2 || repM.Observed != 2 {
		t.Errorf("empty-batch reports observed %d/%d, want 2 (unchanged)", repN.Observed, repM.Observed)
	}
	st := svc.Stats()
	if st.ObservedQueries != 2 || st.ObserveBatches != 1 {
		t.Errorf("stats after empty batches: queries=%d batches=%d, want 2/1",
			st.ObservedQueries, st.ObserveBatches)
	}
}

// The /stats observation counters are batch-accurate: they count QUERIES
// ingested, not HTTP requests, and stay exact under concurrent batching.
// Run with -race; the counters are the regression surface.
func TestStatsObservationCountersBatchAccurate(t *testing.T) {
	svc := NewService(Config{DriftThreshold: 100, DriftWindow: 64}) // threshold high: no recompute noise
	register(t, svc)

	const workers = 8
	const batches = 5
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < batches; i++ {
				// Batch sizes 1..5 so request count != query count.
				batch := make([]schema.TableQuery, i+1)
				for j := range batch {
					batch[j] = schema.TableQuery{
						ID: fmt.Sprintf("w%db%dq%d", w, i, j), Weight: 1, Attrs: attrset.Of(0, 1),
					}
				}
				if _, err := svc.Observe("events", batch); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := svc.Stats()
	wantQueries := int64(workers * (1 + 2 + 3 + 4 + 5))
	if st.ObservedQueries != wantQueries {
		t.Errorf("ObservedQueries = %d, want %d", st.ObservedQueries, wantQueries)
	}
	if st.ObserveBatches != workers*batches {
		t.Errorf("ObserveBatches = %d, want %d", st.ObserveBatches, workers*batches)
	}
	if st.IngestGroups < 1 || st.IngestGroups > st.ObserveBatches {
		t.Errorf("IngestGroups = %d outside [1, %d]", st.IngestGroups, st.ObserveBatches)
	}
}

// One bad batch in an ingest group fails alone: groupmates for the same and
// other tables commit and report normally.
func TestIngestBadBatchFailsAlone(t *testing.T) {
	svc := NewService(Config{DriftThreshold: 100, DriftWindow: 64})
	register(t, svc)

	const good = 6
	errs := make([]error, good+1)
	var wg sync.WaitGroup
	for i := 0; i < good; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = svc.Observe("events", []schema.TableQuery{
				{ID: fmt.Sprintf("g%d", i), Weight: 1, Attrs: attrset.Of(0)},
			})
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Attr index 9 is outside the 4-column schema: ErrStaleSchema.
		_, errs[good] = svc.Observe("events", []schema.TableQuery{
			{ID: "bad", Weight: 1, Attrs: attrset.Of(9)},
		})
	}()
	wg.Wait()
	for i := 0; i < good; i++ {
		if errs[i] != nil {
			t.Errorf("good batch %d: %v", i, errs[i])
		}
	}
	if !errors.Is(errs[good], ErrStaleSchema) {
		t.Errorf("bad batch: err=%v, want ErrStaleSchema", errs[good])
	}
	if st := svc.Stats(); st.ObservedQueries != good {
		t.Errorf("ObservedQueries = %d, want %d (bad batch must not count)", st.ObservedQueries, good)
	}
}

// A failed group commit applies NOTHING: every batch in the group reports
// the retryable ErrJournal, the counters do not move, and the next observe
// (over the self-healed WAL) succeeds.
func TestIngestJournalFailureAppliesNothing(t *testing.T) {
	dir := t.TempDir()
	base, err := vfs.Dir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Write 1 is the registration's commit; write 2 — the first observe
	// group — fails.
	inj := faultinject.New(base, faultinject.FailNthWrite(2))
	st, err := statestore.Open(inj, statestore.Options{DriftWindow: 16})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := OpenService(Config{DriftThreshold: 100, DriftWindow: 16, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	register(t, svc)

	_, err = svc.Observe("events", singleColumnBatch())
	if !errors.Is(err, ErrJournal) {
		t.Fatalf("observe over failing WAL: err=%v, want ErrJournal", err)
	}
	if got := svc.Stats().ObservedQueries; got != 0 {
		t.Errorf("failed group counted %d observed queries, want 0", got)
	}
	// The log still holds exactly the registration workload's 3 queries:
	// nothing from the failed batch was applied.
	if log := trackerLog(t, svc, "events"); len(log) != 3 {
		t.Errorf("failed group left %d queries in the tracker log, want the 3 registered", len(log))
	}
	if _, err := svc.Observe("events", singleColumnBatch()); err != nil {
		t.Fatalf("retry after journal failure: %v", err)
	}
	if got := svc.Stats().ObservedQueries; got != 2 {
		t.Errorf("after retry ObservedQueries = %d, want 2", got)
	}
}

// ObserveBatch applies repeated entries for the SAME table in slice order
// (the wire contract), while entries fail independently.
func TestObserveBatchSameTableOrderAndIsolation(t *testing.T) {
	svc := NewService(Config{DriftThreshold: 100, DriftWindow: 64})
	register(t, svc)

	outs := svc.ObserveBatch(context.Background(), []TableObservation{
		{Table: "events", Queries: []ObservedQry{{Attrs: []string{"a"}}, {Attrs: []string{"b"}}}},
		{Table: "ghost", Queries: []ObservedQry{{Attrs: []string{"x"}}}},
		{Table: "events", Queries: []ObservedQry{{Attrs: []string{"c"}}}},
	})
	if len(outs) != 3 {
		t.Fatalf("%d outcomes for 3 batches", len(outs))
	}
	if outs[0].Err != nil || outs[2].Err != nil {
		t.Fatalf("events batches errored: %v / %v", outs[0].Err, outs[2].Err)
	}
	if !errors.Is(outs[1].Err, ErrNotRegistered) {
		t.Errorf("ghost batch: err=%v, want ErrNotRegistered", outs[1].Err)
	}
	if outs[0].Rep.Observed != 2 || outs[2].Rep.Observed != 3 {
		t.Errorf("per-batch observed counts %d/%d, want 2 then 3 (slice order)",
			outs[0].Rep.Observed, outs[2].Rep.Observed)
	}
	// The log ends with the 3 observed queries in slice order (after the 3
	// the registration seeded).
	log := trackerLog(t, svc, "events")
	if len(log) != 6 {
		t.Fatalf("log has %d entries, want 3 registered + 3 observed", len(log))
	}
	want := []attrset.Set{attrset.Of(0), attrset.Of(1), attrset.Of(2)}
	for i, q := range log[3:] {
		if q.Attrs != want[i] {
			t.Errorf("observed log[%d].Attrs = %v, want %v (apply order broken)", i, q.Attrs, want[i])
		}
	}
}

// Concurrent duplicate drifted batches: both may recompute, the later
// install wins, and the damage is bounded — at worst ONE redundant
// portfolio search, never stale advice paired under a fresh fingerprint.
func TestObserveConcurrentDuplicateRecompute(t *testing.T) {
	svc := NewService(Config{DriftThreshold: 0.15, DriftWindow: 8})
	register(t, svc)
	searchesBefore := svc.Stats().Searches

	// Eight single-column queries per batch: past the 0.15 threshold on
	// their own, so either batch alone triggers a recompute.
	batch := make([]schema.TableQuery, 8)
	for i := range batch {
		batch[i] = schema.TableQuery{ID: fmt.Sprintf("d%d", i), Weight: 1, Attrs: attrset.Of(i % 2)}
	}
	var wg sync.WaitGroup
	reps := make([]DriftReport, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reps[i], errs[i] = svc.Observe("events", batch)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("observe %d: %v", i, err)
		}
	}
	recomputed := 0
	for _, rep := range reps {
		if rep.Recomputed {
			recomputed++
		}
	}
	if recomputed == 0 {
		t.Fatal("neither duplicate batch recomputed")
	}
	st := svc.Stats()
	if st.Recomputes < 1 || st.Recomputes > 2 {
		t.Errorf("Recomputes = %d, want 1 or 2 (at worst one redundant recompute)", st.Recomputes)
	}
	if extra := st.Searches - searchesBefore; extra > 2 {
		t.Errorf("duplicates ran %d searches, want <= 2 (at worst one redundant)", extra)
	}
	// The surviving pairing must be self-consistent: the fingerprint the
	// tracker serves is the fingerprint of the workload it covers, and the
	// cached advice under it answers without a fresh search.
	advice, fp, err := svc.CurrentState("events")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := svc.tracker("events")
	if err != nil {
		t.Fatal(err)
	}
	_, tw := tr.State()
	if FingerprintOf(tw) != fp {
		t.Error("tracked fingerprint does not cover the tracker's own workload")
	}
	searches := svc.Stats().Searches
	cached, hit, err := svc.AdviseTable(tw)
	if err != nil {
		t.Fatal(err)
	}
	if !hit || svc.Stats().Searches != searches {
		t.Error("recomputed advice was not cached under its snapshot fingerprint")
	}
	if cached.Cost != advice.Cost || !cached.Layout.Equal(advice.Layout) {
		t.Error("cached advice disagrees with the tracked advice")
	}
}

// mergeContexts cancels only when EVERY member is done, and stop releases
// the watchers.
func TestMergeContexts(t *testing.T) {
	a, cancelA := context.WithCancel(context.Background())
	b, cancelB := context.WithCancel(context.Background())
	merged, stop := mergeContexts([]context.Context{a, b})
	defer stop()
	cancelA()
	select {
	case <-merged.Done():
		t.Fatal("merged context canceled with one member still live")
	default:
	}
	cancelB()
	<-merged.Done() // must complete: all members are done

	// Single-member merge is the member itself.
	c, cancelC := context.WithCancel(context.Background())
	m, stop1 := mergeContexts([]context.Context{c})
	defer stop1()
	if m != c {
		t.Error("single-member merge should return the member")
	}
	cancelC()
}
