package advisor

import (
	"errors"
	"fmt"
	"sort"

	"knives/internal/attrset"
	"knives/internal/partition"
	"knives/internal/schema"
	"knives/internal/statestore"
)

// journal is the service's journal-before-apply hook: every durable tracker
// mutation appends its event through here BEFORE applying, under the same
// lock that orders the mutation, so the WAL's event order is exactly the
// apply order and a failed append leaves the in-memory state untouched (the
// client retries; nothing was half-done). A nil *journal means the store
// does not journal, and the mutation paths skip event construction
// entirely — the hot path is byte-identical to the pre-durability service.
type journal struct{ store statestore.Store }

func newJournal(st statestore.Store) *journal {
	if st == nil || !st.Journaling() {
		return nil
	}
	return &journal{store: st}
}

// ErrJournal marks a failed journal append. The failed mutation was NOT
// applied — journal and memory still agree on everything acknowledged — so
// retrying the request is always safe, and the WAL self-heals its tail on
// the next append. The HTTP layer maps this to 503 so retrying clients
// ride out transient disk faults.
var ErrJournal = errors.New("advisor: journal write failed")

func (j *journal) append(ev statestore.Event) error {
	if err := j.store.Append(ev); err != nil {
		return fmt.Errorf("%w: %w", ErrJournal, err)
	}
	return nil
}

// appendBatch journals a whole ingest group as one commit (one write, one
// fsync). All-or-nothing for the caller: on error none of the events were
// acknowledged and none may be applied.
func (j *journal) appendBatch(evs []statestore.Event) error {
	if err := j.store.AppendBatch(evs); err != nil {
		return fmt.Errorf("%w: %w", ErrJournal, err)
	}
	return nil
}

// toTableRec flattens a schema for the journal.
func toTableRec(t *schema.Table) statestore.TableRec {
	rec := statestore.TableRec{Name: t.Name, Rows: t.Rows,
		Columns: make([]statestore.ColumnRec, len(t.Columns))}
	for i, c := range t.Columns {
		rec.Columns[i] = statestore.ColumnRec{Name: c.Name, Kind: uint8(c.Kind), Size: int64(c.Size)}
	}
	return rec
}

// fromTableRec rebuilds the schema a recovered tracker prices against,
// through the validating constructor — a journal that decodes cleanly but
// describes an impossible table must fail recovery, not panic later.
func fromTableRec(rec statestore.TableRec) (*schema.Table, error) {
	cols := make([]schema.Column, len(rec.Columns))
	for i, c := range rec.Columns {
		cols[i] = schema.Column{Name: c.Name, Kind: schema.ColumnKind(c.Kind), Size: int(c.Size)}
	}
	return schema.NewTable(rec.Name, rec.Rows, cols)
}

func toQueryRecs(qs []schema.TableQuery) []statestore.QueryRec {
	if len(qs) == 0 {
		return nil
	}
	out := make([]statestore.QueryRec, len(qs))
	for i, q := range qs {
		out[i] = statestore.QueryRec{ID: q.ID, Weight: q.Weight, Attrs: uint64(q.Attrs)}
	}
	return out
}

func fromQueryRecs(rs []statestore.QueryRec) []schema.TableQuery {
	if len(rs) == 0 {
		return nil
	}
	out := make([]schema.TableQuery, len(rs))
	for i, r := range rs {
		out[i] = schema.TableQuery{ID: r.ID, Weight: r.Weight, Attrs: attrset.Set(r.Attrs)}
	}
	return out
}

func toAdviceRec(a TableAdvice) statestore.AdviceRec {
	rec := statestore.AdviceRec{
		Algorithm: a.Algorithm, Cost: a.Cost, RowCost: a.RowCost, ColumnCost: a.ColumnCost,
	}
	if len(a.Layout.Parts) > 0 {
		rec.Parts = make([]uint64, len(a.Layout.Parts))
		for i, p := range a.Layout.Parts {
			rec.Parts[i] = uint64(p)
		}
	}
	for name, c := range a.PerAlgorithm {
		rec.PerAlgorithm = append(rec.PerAlgorithm, statestore.AlgoCost{Name: name, Cost: c})
	}
	sort.Slice(rec.PerAlgorithm, func(i, j int) bool {
		return rec.PerAlgorithm[i].Name < rec.PerAlgorithm[j].Name
	})
	return rec
}

func fromAdviceRec(rec statestore.AdviceRec, t *schema.Table) TableAdvice {
	a := TableAdvice{
		Table: t, Algorithm: rec.Algorithm,
		Cost: rec.Cost, RowCost: rec.RowCost, ColumnCost: rec.ColumnCost,
		Layout: partition.Partitioning{Table: t},
	}
	if len(rec.Parts) > 0 {
		a.Layout.Parts = make([]attrset.Set, len(rec.Parts))
		for i, p := range rec.Parts {
			a.Layout.Parts[i] = attrset.Set(p)
		}
	}
	if len(rec.PerAlgorithm) > 0 {
		a.PerAlgorithm = make(map[string]float64, len(rec.PerAlgorithm))
		for _, ac := range rec.PerAlgorithm {
			a.PerAlgorithm[ac.Name] = ac.Cost
		}
	}
	return a
}

// commitEvent is the EvAdviseCommit for one registration: everything
// needed to rebuild the tracker from scratch.
func commitEvent(tw schema.TableWorkload, advice TableAdvice, fp Fingerprint, mkey string) statestore.Event {
	return statestore.Event{
		Type:     statestore.EvAdviseCommit,
		Table:    tw.Table.Name,
		Schema:   toTableRec(tw.Table),
		ModelKey: mkey,
		Queries:  toQueryRecs(tw.Queries),
		Advice:   toAdviceRec(advice),
		FP:       [statestore.FPSize]byte(fp),
	}
}

// recoverTracker rebuilds one live tracker from the state a store replayed.
// The caller has already checked the model key matches the service's model.
func (s *Service) recoverTracker(ts statestore.TableState) (*Tracker, error) {
	table, err := fromTableRec(ts.Table)
	if err != nil {
		return nil, fmt.Errorf("advisor: recover %s: %w", ts.Table.Name, err)
	}
	t := &Tracker{
		table:       table,
		model:       s.model,
		modelKey:    ts.ModelKey,
		threshold:   s.cfg.DriftThreshold,
		window:      s.cfg.DriftWindow,
		log:         fromQueryRecs(ts.Log),
		advice:      fromAdviceRec(ts.Advice, table),
		observed:    ts.Observed,
		recomputes:  ts.Recomputes,
		advObserved: ts.AdvObserved,
		regFP:       Fingerprint(ts.RegFP),
		applied:     fromAdviceRec(ts.Applied, table),
		appliedFP:   Fingerprint(ts.AppliedFP),
		jn:          s.jn,
		pricer:      s.cfg.newPricer(),
	}
	// The store already trimmed the log to ITS window; re-trim covers a
	// service configured with a smaller one than the store it opened.
	t.trim()
	// Seed the pricer from the recovered log: the sketch's epoch positions
	// are not journaled, so a sketch tracker restarts with the window's
	// retained queries in one epoch — the same approximation a fresh
	// registration gets, converging within one window of traffic.
	t.pricer.reset(t.table, t.log)
	return t, nil
}

// exportState renders the tracker's durable fields in the statestore's
// shape, under the tracker lock.
func (t *Tracker) exportState(order int64) statestore.TableState {
	t.mu.Lock()
	defer t.mu.Unlock()
	return statestore.TableState{
		Table:       toTableRec(t.table),
		ModelKey:    t.modelKey,
		Log:         toQueryRecs(t.log),
		Advice:      toAdviceRec(t.advice),
		Applied:     toAdviceRec(t.applied),
		RegFP:       [statestore.FPSize]byte(t.regFP),
		AppliedFP:   [statestore.FPSize]byte(t.appliedFP),
		Observed:    t.observed,
		Recomputes:  t.recomputes,
		AdvObserved: t.advObserved,
		Order:       order,
	}
}

// ExportState snapshots every tracker's durable state, registration order
// first, with order indices normalized to 0..n-1. This is the live image a
// crash-recovery equivalence test compares (via statestore.MarshalStates)
// against what a restarted store recovers.
func (s *Service) ExportState() []statestore.TableState {
	s.mu.Lock()
	names := s.trackers.Keys()
	live := make([]*Tracker, 0, len(names))
	for _, n := range names {
		t, _ := s.trackers.Get(n)
		live = append(live, t)
	}
	s.mu.Unlock()
	out := make([]statestore.TableState, len(live))
	for i, t := range live {
		out[i] = t.exportState(int64(i))
	}
	return out
}
