package advisor

import (
	"time"

	"knives/internal/algo"
	"knives/internal/operator"
	"knives/internal/replay"
	"knives/internal/telemetry"
)

// svcMetrics holds the service's telemetry handles. The zero value (no
// registry configured) leaves every handle nil, and the telemetry types are
// nil-receiver safe, so instrumentation points never branch on "is
// telemetry enabled" — an unbound service pays a nil check per point and
// nothing else.
type svcMetrics struct {
	// Request-path latency, split by cache outcome so the flat hit path
	// and the search-dominated miss path never share a distribution.
	adviseHit  *telemetry.Histogram
	adviseMiss *telemetry.Histogram
	// search times the portfolio fan-out alone (the miss path minus
	// caching and registration).
	search *telemetry.Histogram

	// Ingest stage: submit-to-done wait per batch, group-commit sizes in
	// batches and queries, and the coalesced drift check (recompute is the
	// subset that actually moved advice).
	ingestWait     *telemetry.Histogram
	groupBatches   *telemetry.Histogram
	groupQueries   *telemetry.Histogram
	driftCheck     *telemetry.Histogram
	driftRecompute *telemetry.Histogram

	// migrateExec times migrateOnce: plan + sampled execute-and-verify.
	migrateExec *telemetry.Histogram

	// Per-operator accounting from /query executions, keyed by operator
	// kind ("scan", "select", "join", "project").
	opRows map[string]*telemetry.Counter
	opSim  map[string]*telemetry.Histogram

	// Per-query execution telemetry from /query: result rows, wall-clock
	// pipeline execution time, and (vector mode) batch fill ratios.
	queryRows *telemetry.Counter
	queryExec *telemetry.Histogram
	batchFill *telemetry.Histogram
}

// operatorKinds is the closed set of operator labels bound at registration;
// OpStats.Op values outside it (there are none today) would be dropped
// rather than minting unbounded label values.
var operatorKinds = []string{"scan", "select", "join", "project"}

// bind registers the service's metrics on reg: the histograms above, plus
// read-at-scrape bindings for the counters the Service already maintains
// atomically (no hot-path double-writes) and the cache/tracker/queue-depth
// gauges. It also installs the process-wide search-gate wait observer —
// last service bound wins, matching the gate's own process-wide scope.
func (m *svcMetrics) bind(reg *telemetry.Registry, s *Service) {
	reg.SetHelp("knives_advise_hit_seconds", "Advise latency answered from the fingerprint cache.")
	reg.SetHelp("knives_advise_miss_seconds", "Advise latency that ran the portfolio search.")
	reg.SetHelp("knives_search_seconds", "Portfolio fan-out time per search.")
	reg.SetHelp("knives_gate_wait_seconds", "Contended waits for a process-wide search slot.")
	reg.SetHelp("knives_ingest_wait_seconds", "Observe batch wait: submit to group-commit + drift verdict.")
	reg.SetHelp("knives_ingest_group_batches", "Observation batches coalesced per group commit.")
	reg.SetHelp("knives_ingest_group_queries", "Queries carried per group commit.")
	reg.SetHelp("knives_drift_check_seconds", "Coalesced drift check time per table (shadow pricing).")
	reg.SetHelp("knives_drift_recompute_seconds", "Drift checks that recomputed advice (portfolio rerun included).")
	reg.SetHelp("knives_migrate_exec_seconds", "Migration plan + sampled execute-and-verify time.")
	m.adviseHit = reg.Histogram("knives_advise_hit_seconds")
	m.adviseMiss = reg.Histogram("knives_advise_miss_seconds")
	m.search = reg.Histogram("knives_search_seconds")
	m.ingestWait = reg.Histogram("knives_ingest_wait_seconds")
	m.groupBatches = reg.Histogram("knives_ingest_group_batches")
	m.groupQueries = reg.Histogram("knives_ingest_group_queries")
	m.driftCheck = reg.Histogram("knives_drift_check_seconds")
	m.driftRecompute = reg.Histogram("knives_drift_recompute_seconds")
	m.migrateExec = reg.Histogram("knives_migrate_exec_seconds")

	m.opRows = make(map[string]*telemetry.Counter, len(operatorKinds))
	m.opSim = make(map[string]*telemetry.Histogram, len(operatorKinds))
	reg.SetHelp("knives_operator_rows_total", "Rows emitted by executed plan operators, by operator kind.")
	reg.SetHelp("knives_operator_sim_seconds", "Simulated execution time per operator, by operator kind.")
	for _, op := range operatorKinds {
		m.opRows[op] = reg.Counter(`knives_operator_rows_total{op="` + op + `"}`)
		m.opSim[op] = reg.Histogram(`knives_operator_sim_seconds{op="` + op + `"}`)
	}

	reg.SetHelp("knives_query_rows_total", "Result rows emitted by /query pipeline executions.")
	reg.SetHelp("knives_query_exec_seconds", "Wall-clock pipeline execution time per /query query.")
	reg.SetHelp("knives_query_batch_fill_ratio", "Vector-mode batch fill ratios (surviving rows over batch capacity).")
	m.queryRows = reg.Counter("knives_query_rows_total")
	m.queryExec = reg.Histogram("knives_query_exec_seconds")
	m.batchFill = reg.Histogram("knives_query_batch_fill_ratio")

	gateWait := reg.Histogram("knives_gate_wait_seconds")
	algo.SetGateWaitObserver(func(d time.Duration) { gateWait.Observe(d.Seconds()) })

	// The service's own monotonic counters, read at scrape time.
	reg.SetHelp("knives_requests_total", "Table advice requests answered.")
	reg.CounterFunc("knives_requests_total", s.requests.Load)
	reg.CounterFunc("knives_advice_hits_total", s.hits.Load)
	reg.CounterFunc("knives_searches_total", s.searches.Load)
	reg.CounterFunc("knives_recomputes_total", s.recomputes.Load)
	reg.CounterFunc("knives_replays_total", s.replays.Load)
	reg.CounterFunc("knives_replay_hits_total", s.replayHits.Load)
	reg.CounterFunc("knives_migrations_total", s.migrations.Load)
	reg.CounterFunc("knives_migrate_hits_total", s.migrateHits.Load)
	reg.CounterFunc("knives_observed_queries_total", s.observedQueries.Load)
	reg.CounterFunc("knives_observe_batches_total", s.observeBatches.Load)
	reg.CounterFunc("knives_ingest_groups_total", s.ingestGroups.Load)
	reg.CounterFunc("knives_duplicate_batches_total", s.observeDups.Load)

	reg.SetHelp("knives_ingest_queue_depth", "Observation batches pending across all ingest shards.")
	reg.GaugeFunc("knives_ingest_queue_depth", func() float64 { return float64(s.ing.queueDepth()) })
	reg.GaugeFunc("knives_cached_entries", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.entries.Len())
	})
	reg.GaugeFunc("knives_tracked_tables", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.trackers.Len())
	})
}

// recordOpStats folds one execution's per-operator accounting into the
// operator counters. Unknown kinds are dropped (bounded label set).
func (m *svcMetrics) recordOpStats(ops [][]operator.OpStats) {
	if m.opRows == nil {
		return
	}
	for _, plan := range ops {
		for _, st := range plan {
			m.opRows[st.Op].Add(st.RowsOut)
			m.opSim[st.Op].Observe(st.SimTime)
		}
	}
}

// recordExec folds one /query execution's per-query telemetry in: result
// rows, wall-clock execution seconds, and (vector runs) batch fill ratios.
// Nil-receiver safe like every instrumentation point — an unbound service
// pays one nil check.
func (m *svcMetrics) recordExec(rep *replay.OperatorReplay) {
	if m.queryRows == nil {
		return
	}
	for i := range rep.ResultRows {
		m.queryRows.Add(rep.ResultRows[i])
	}
	for _, s := range rep.ExecSeconds {
		m.queryExec.Observe(s)
	}
	for _, ratios := range rep.FillRatios {
		for _, r := range ratios {
			m.batchFill.Observe(r)
		}
	}
}

// queueDepth sums the pending batches across every ingest shard — read only
// at scrape time, so the shard mutexes are taken briefly and never on the
// ingest hot path.
func (in *ingester) queueDepth() int {
	n := 0
	for _, sh := range in.shards {
		sh.mu.Lock()
		n += len(sh.pending)
		sh.mu.Unlock()
	}
	return n
}
