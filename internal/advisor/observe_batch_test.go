package advisor

import (
	"context"
	"net/http"
	"strings"
	"testing"
)

// adviseEvents registers the events table on a test server.
func adviseEvents(t *testing.T, client *Client) {
	t.Helper()
	if _, err := client.Advise(context.Background(), eventsRequest()); err != nil {
		t.Fatal(err)
	}
}

// The batched /observe shape end to end: many tables per request, one
// verdict per entry in submission order, entries failing independently with
// the status the single-table path would answer.
func TestServerObserveBatched(t *testing.T) {
	_, svc, client := newTestServer(t, Config{DriftThreshold: 100, DriftWindow: 64})
	adviseEvents(t, client)

	verdicts, err := client.ObserveBatch(context.Background(), []TableObservation{
		{Table: "events", Queries: []ObservedQry{{Attrs: []string{"a", "b"}}, {Attrs: []string{"c"}}}},
		{Table: "ghost", Queries: []ObservedQry{{Attrs: []string{"x"}}}},
		{Table: "events", Queries: []ObservedQry{{Attrs: []string{"d"}, Weight: 2}}},
		{Table: "events", Queries: []ObservedQry{{Attrs: []string{"nope"}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != 4 {
		t.Fatalf("%d verdicts for 4 batches", len(verdicts))
	}
	if v := verdicts[0]; v.Status != http.StatusOK || v.Error != "" || v.Drift.Observed != 2 {
		t.Errorf("verdict 0: %+v", v)
	}
	if v := verdicts[1]; v.Status != http.StatusNotFound || v.Error == "" {
		t.Errorf("ghost verdict: status=%d error=%q, want 404", v.Status, v.Error)
	}
	if v := verdicts[2]; v.Status != http.StatusOK || v.Drift.Observed != 3 {
		t.Errorf("verdict 2: %+v", v)
	}
	// Unknown column: resolved inside the tracker against the CURRENT
	// schema, so it reads as a stale-schema conflict (re-advise to fix).
	if v := verdicts[3]; v.Status != http.StatusConflict || v.Error == "" {
		t.Errorf("bad-column verdict: status=%d error=%q, want 409", v.Status, v.Error)
	}
	if v := verdicts[0]; v.Advice.Table != "events" || v.Advice.Fingerprint == "" {
		t.Errorf("success verdict carries no advice: %+v", v.Advice)
	}
	// Counters: 3 queries landed (the bad-column batch did not).
	st := svc.Stats()
	if st.ObservedQueries != 3 || st.ObserveBatches != 2 {
		t.Errorf("stats: queries=%d batches=%d, want 3/2", st.ObservedQueries, st.ObserveBatches)
	}
}

// The batched shape excludes the legacy single-table fields, and the legacy
// shape keeps answering exactly as before.
func TestServerObserveBatchedExcludesLegacyFields(t *testing.T) {
	ts, _, client := newTestServer(t, Config{DriftThreshold: 100})
	adviseEvents(t, client)

	body := `{"table":"events","queries":[{"attrs":["a"]}],"batches":[{"table":"events","queries":[{"attrs":["a"]}]}]}`
	resp, err := ts.Client().Post(ts.URL+"/observe", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("mixed legacy+batched request: status %d, want 400", resp.StatusCode)
	}

	// Legacy single-table request still answers with the top-level pair.
	or, err := client.Observe(context.Background(), ObserveRequest{
		Table:   "events",
		Queries: []ObservedQry{{Attrs: []string{"a", "b"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if or.Drift.Table != "events" || or.Drift.Observed != 1 || len(or.Verdicts) != 0 {
		t.Errorf("legacy observe response: %+v", or)
	}
	if or.Advice.Table != "events" {
		t.Errorf("legacy observe advice: %+v", or.Advice)
	}
}

// ObserveBuffer accumulates per table, flushes at the threshold as one
// batched request, and preserves the buffer on flush errors for a retry.
func TestObserveBufferFlushAt(t *testing.T) {
	_, svc, client := newTestServer(t, Config{DriftThreshold: 100, DriftWindow: 64})
	adviseEvents(t, client)

	buf := &ObserveBuffer{Client: client, FlushAt: 4}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		vs, err := buf.Add(ctx, "events", ObservedQry{Attrs: []string{"a"}})
		if err != nil {
			t.Fatal(err)
		}
		if vs != nil {
			t.Fatalf("add %d flushed below the threshold", i)
		}
	}
	if buf.Pending() != 3 {
		t.Fatalf("Pending = %d, want 3", buf.Pending())
	}
	vs, err := buf.Add(ctx, "events", ObservedQry{Attrs: []string{"b"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || vs[0].Status != http.StatusOK {
		t.Fatalf("threshold flush verdicts: %+v", vs)
	}
	if buf.Pending() != 0 {
		t.Errorf("Pending = %d after flush, want 0", buf.Pending())
	}
	if st := svc.Stats(); st.ObservedQueries != 4 || st.ObserveBatches != 1 {
		t.Errorf("stats after one buffered flush: queries=%d batches=%d, want 4/1",
			st.ObservedQueries, st.ObserveBatches)
	}

	// A flush against a dead server keeps the buffer for retry.
	dead := NewClient("http://127.0.0.1:1")
	buf2 := &ObserveBuffer{Client: dead, FlushAt: 100}
	if _, err := buf2.Add(ctx, "events", ObservedQry{Attrs: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := buf2.Flush(ctx); err == nil {
		t.Fatal("flush to a dead server succeeded")
	}
	if buf2.Pending() != 1 {
		t.Errorf("failed flush dropped the buffer: Pending = %d, want 1", buf2.Pending())
	}
	buf2.Client = client
	vs, err = buf2.Flush(ctx)
	if err != nil || len(vs) != 1 {
		t.Fatalf("retried flush: vs=%v err=%v", vs, err)
	}
}
