package advisor

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Service, *Client) {
	t.Helper()
	svc := NewService(cfg)
	ts := httptest.NewServer(NewServer(svc))
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL)
	c.HTTPClient = ts.Client()
	return ts, svc, c
}

// eventsRequest is the wire form of the wideTable co-access workload.
func eventsRequest() AdviseRequest {
	return AdviseRequest{
		Tables: []TableSpec{{
			Name: "events",
			Rows: 1_000_000,
			Columns: []ColumnSpec{
				{Name: "a", Kind: "char", Size: 100},
				{Name: "b", Kind: "char", Size: 100},
				{Name: "c", Kind: "char", Size: 100},
				{Name: "d", Kind: "char", Size: 100},
			},
		}},
		Queries: []QuerySpec{
			{ID: "q1", Tables: map[string][]string{"events": {"a", "b"}}},
			{ID: "q2", Tables: map[string][]string{"events": {"a", "b"}}},
			{ID: "q3", Tables: map[string][]string{"events": {"c", "d"}}},
		},
	}
}

func TestServerAdviseEndToEnd(t *testing.T) {
	_, _, client := newTestServer(t, Config{})
	resp, err := client.Advise(context.Background(), eventsRequest())
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Advice) != 1 {
		t.Fatalf("advice for %d tables, want 1", len(resp.Advice))
	}
	adv := resp.Advice[0]
	if adv.Table != "events" || adv.Cached {
		t.Errorf("first advice: %+v", adv)
	}
	if adv.Cost > adv.RowCost || adv.Cost > adv.ColumnCost {
		t.Errorf("advice cost %v worse than baselines (row %v, column %v)", adv.Cost, adv.RowCost, adv.ColumnCost)
	}
	if len(adv.PerAlgorithm) != len(PortfolioNames()) {
		t.Errorf("PerAlgorithm has %d entries, want %d", len(adv.PerAlgorithm), len(PortfolioNames()))
	}
	if len(adv.Fingerprint) != 64 {
		t.Errorf("fingerprint %q is not 32 hex bytes", adv.Fingerprint)
	}

	again, err := client.Advise(context.Background(), eventsRequest())
	if err != nil {
		t.Fatal(err)
	}
	if !again.Advice[0].Cached {
		t.Error("repeated request not served from cache")
	}
	if again.Advice[0].Cost != adv.Cost || again.Advice[0].Fingerprint != adv.Fingerprint {
		t.Error("cached advice differs from first answer")
	}
}

func TestServerBenchmarkShorthand(t *testing.T) {
	_, _, client := newTestServer(t, Config{})
	resp, err := client.Advise(context.Background(), AdviseRequest{Benchmark: "tpch", ScaleFactor: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Advice) != 8 {
		t.Errorf("TPC-H advice for %d tables, want 8", len(resp.Advice))
	}
}

// The acceptance load test: >= 8 parallel clients hammering /advise with a
// mix of fingerprints, plus /observe and /stats traffic, all against one
// service. Run under -race this doubles as the data-race gate.
func TestServerConcurrentAdviseLoad(t *testing.T) {
	_, svc, client := newTestServer(t, Config{DriftWindow: 16})

	// Three distinct workloads: same table, different query streams.
	reqs := make([]AdviseRequest, 3)
	for i := range reqs {
		reqs[i] = eventsRequest()
		for j := 0; j <= i; j++ {
			reqs[i].Queries = append(reqs[i].Queries, QuerySpec{
				Tables: map[string][]string{"events": {"a", "c"}},
			})
		}
	}

	const clients = 10
	const perClient = 6
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ctx := context.Background()
			for r := 0; r < perClient; r++ {
				resp, err := client.Advise(ctx, reqs[(c+r)%len(reqs)])
				if err != nil {
					errs[c] = err
					return
				}
				if len(resp.Advice) != 1 {
					continue
				}
				if _, err := client.Observe(ctx, ObserveRequest{
					Table:   "events",
					Queries: []ObservedQry{{Attrs: []string{"a", "b"}}},
				}); err != nil {
					errs[c] = err
					return
				}
				if _, err := client.Stats(ctx); err != nil {
					errs[c] = err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}

	st := svc.Stats()
	if st.Requests != clients*perClient {
		t.Errorf("requests = %d, want %d", st.Requests, clients*perClient)
	}
	// Only the three distinct fingerprints (plus any drift recomputes) may
	// have searched; everything else must be cache hits.
	maxSearches := int64(len(reqs)) + st.Recomputes
	if st.Searches > maxSearches {
		t.Errorf("searches = %d, want <= %d (cache must absorb repeats)", st.Searches, maxSearches)
	}
	if st.Hits != st.Requests-int64(len(reqs)) {
		t.Errorf("hits = %d, want %d", st.Hits, st.Requests-int64(len(reqs)))
	}
}

// Drift over HTTP: the Section 6.3 scenario end to end.
func TestServerObserveDriftRecomputes(t *testing.T) {
	_, svc, client := newTestServer(t, Config{DriftThreshold: 0.15, DriftWindow: 8})
	ctx := context.Background()
	if _, err := client.Advise(ctx, eventsRequest()); err != nil {
		t.Fatal(err)
	}
	var recomputed bool
	for batch := 0; batch < 8 && !recomputed; batch++ {
		resp, err := client.Observe(ctx, ObserveRequest{
			Table: "events",
			Queries: []ObservedQry{
				{Attrs: []string{"a"}},
				{Attrs: []string{"b"}},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		recomputed = resp.Drift.Recomputed
	}
	if !recomputed {
		t.Fatal("drifted stream never recomputed the advice")
	}
	if st := svc.Stats(); st.Recomputes < 1 {
		t.Errorf("stats: %+v", st)
	}
	adv, err := client.Advice(ctx, "events")
	if err != nil {
		t.Fatal(err)
	}
	for _, part := range adv.Layout {
		if len(part) > 1 && strings.Contains(strings.Join(part, " "), "a") && strings.Contains(strings.Join(part, " "), "b") {
			t.Errorf("layout %v still co-locates a and b after drift", adv.Layout)
		}
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	ts, _, client := newTestServer(t, Config{})
	ctx := context.Background()

	post := func(path, body string) int {
		resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := post("/advise", "{not json"); got != http.StatusBadRequest {
		t.Errorf("malformed body: status %d", got)
	}
	if got := post("/advise", `{"benchmark":"tpch","sf":0.01}{"benchmark":"ssb"}`); got != http.StatusBadRequest {
		t.Errorf("trailing JSON document: status %d", got)
	}
	if got := post("/advise", `{"tables":[]}`); got != http.StatusBadRequest {
		t.Errorf("empty tables: status %d", got)
	}
	if got := post("/advise", `{"benchmark":"oracle"}`); got != http.StatusBadRequest {
		t.Errorf("unknown benchmark: status %d", got)
	}
	if got := post("/advise", `{"unknown_field":1}`); got != http.StatusBadRequest {
		t.Errorf("unknown field: status %d", got)
	}
	if got := post("/observe", `{"table":"ghost","queries":[]}`); got != http.StatusNotFound {
		t.Errorf("observe unknown table: status %d", got)
	}

	if _, err := client.Advice(ctx, "ghost"); err == nil {
		t.Error("advice for unknown table succeeded")
	}
	resp, err := ts.Client().Get(ts.URL + "/advice")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing table param: status %d", resp.StatusCode)
	}

	// Queries referencing unknown columns or tables fail validation.
	bad := eventsRequest()
	bad.Queries[0].Tables["events"] = []string{"nope"}
	if _, err := client.Advise(ctx, bad); err == nil {
		t.Error("unknown column accepted")
	}

	// Negative weights would invert the cost arithmetic; the trust
	// boundary must reject them on both ingestion paths.
	negative := eventsRequest()
	negative.Queries[0].Weight = -5
	if _, err := client.Advise(ctx, negative); err == nil {
		t.Error("negative query weight accepted by /advise")
	}
	if _, err := client.Advise(ctx, eventsRequest()); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Observe(ctx, ObserveRequest{
		Table:   "events",
		Queries: []ObservedQry{{Attrs: []string{"a"}, Weight: -1}},
	}); err == nil {
		t.Error("negative query weight accepted by /observe")
	}
}

func TestServerHealthAndTables(t *testing.T) {
	ts, _, client := newTestServer(t, Config{})
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: status %d", resp.StatusCode)
	}
	if _, err := client.Advise(context.Background(), eventsRequest()); err != nil {
		t.Fatal(err)
	}
	resp, err = ts.Client().Get(ts.URL + "/tables")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("tables: status %d", resp.StatusCode)
	}
}
