package advisor

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"knives/internal/algo"
	"knives/internal/algo/o2p"
	"knives/internal/cost"
	"knives/internal/schema"
	"knives/internal/statestore"
)

// ErrStaleSchema reports that an observation referenced attributes outside
// the table's current schema — typically because the table was re-advised
// with a different shape after the client resolved its column names. The
// client's remedy is to re-advise, not to retry.
var ErrStaleSchema = errors.New("advisor: observed attrs outside current table schema")

// ErrBadObservation reports a malformed observed query (no attributes, or
// a negative weight) — a client bug no amount of re-advising fixes.
var ErrBadObservation = errors.New("advisor: malformed observed query")

// Tracker watches the live query stream of one registered table and decides
// when the advice served for it has gone stale — the paper's Section 6.3
// drift scenario made operational. It keeps the observed query log and an
// O2P shadow layout over it: O2P is the portfolio's online algorithm, cheap
// enough to re-run per observation batch, and it tracks the stream the way
// an online system would. When the layout the service advised prices the
// observed workload more than Threshold worse (relatively) than the O2P
// shadow layout does, the advice has drifted and must be recomputed.
type Tracker struct {
	mu sync.Mutex

	table *schema.Table
	model cost.Model
	// modelKey is the cache key of model, so recomputed advice lands in
	// the service cache under the device that priced it.
	modelKey  string
	threshold float64
	window    int // max retained log length; <= 0 keeps everything

	log    []schema.TableQuery
	advice TableAdvice
	// pricer supplies the workload the per-batch drift check prices: the
	// exact log (reference) or a windowed attr-set sketch of the stream.
	// The log itself is ALWAYS kept — it is window-bounded, and it feeds
	// fingerprints, durability export, migration mixes, and recomputes.
	pricer driftPricer

	observed    int64 // queries observed since registration
	recomputes  int64 // drift-triggered advice recomputations
	gen         int64 // bumped by setAdvice; guards recompute installs
	advObserved int64 // observed count the installed advice was computed at
	// regFP fingerprints the workload the tracker was registered with, so
	// re-advising the identical workload can be recognized and preserve
	// the accumulated observation state instead of resetting it.
	regFP Fingerprint
	// applied is the layout the client's STORE is assumed to hold: the
	// advice of the registration, untouched by drift recomputes (drift
	// changes what the service would advise, not what the store physically
	// is) until a migration verifies and marks the new layout applied.
	applied   TableAdvice
	appliedFP Fingerprint

	// jn journals every durable mutation before it applies, under the same
	// t.mu that orders it; nil when the service's store does not journal.
	// gen is deliberately NOT journaled: it guards in-flight recompute
	// installs, and a restart has no in-flight recomputes.
	jn *journal
}

// DefaultDriftThreshold is the relative cost divergence that invalidates
// cached advice: the advised layout pricing the live workload 15% worse
// than the O2P shadow layout.
const DefaultDriftThreshold = 0.15

// DefaultDriftWindow is how many observed queries a tracker retains when
// the config does not say. It must be finite: a daemon under steady
// /observe traffic with an unbounded log would grow memory without limit
// and re-price an ever-longer workload on every batch.
const DefaultDriftWindow = 256

// newTracker seeds a tracker with the workload the advice was computed for.
func newTracker(tw schema.TableWorkload, advice TableAdvice, m cost.Model, mkey string, threshold float64, window int, fp Fingerprint, jn *journal, pricer driftPricer) *Tracker {
	if !(threshold > 0) { // negated compare also catches NaN
		threshold = DefaultDriftThreshold
	}
	if pricer == nil {
		pricer = exactPricer{}
	}
	t := &Tracker{
		table:     tw.Table,
		model:     m,
		modelKey:  mkey,
		threshold: threshold,
		window:    window,
		log:       append([]schema.TableQuery(nil), tw.Queries...),
		advice:    advice,
		pricer:    pricer,
		regFP:     fp,
		applied:   advice,
		appliedFP: fp,
		jn:        jn,
	}
	t.trim()
	t.pricer.reset(t.table, t.log)
	return t
}

// trim drops the oldest log entries beyond the window. Caller holds mu.
func (t *Tracker) trim() {
	if t.window > 0 && len(t.log) > t.window {
		t.log = append([]schema.TableQuery(nil), t.log[len(t.log)-t.window:]...)
	}
}

// recomputedAdvice is what a drift-triggered recompute hands back to the
// service for caching: the fresh advice PAIRED with the log snapshot it was
// computed from, the fingerprint the tracker covered before the install
// (whose replay reports the recompute invalidated), and the cache key of
// the model that priced it — all captured under the install's critical
// section, so a concurrent re-registration with a different model can never
// mispair them.
type recomputedAdvice struct {
	advice   TableAdvice
	snapshot schema.TableWorkload
	prevFP   Fingerprint
	modelKey string
}

// DriftReport describes the tracker's state after an observation batch.
type DriftReport struct {
	Table string `json:"table"`
	// Ratio is the relative excess cost of the advised layout over the O2P
	// shadow layout on the observed workload. Negative means the advised
	// layout still wins.
	Ratio float64 `json:"ratio"`
	// Threshold is the ratio beyond which advice is recomputed.
	Threshold float64 `json:"threshold"`
	// Drifted reports whether this batch pushed the ratio past the
	// threshold.
	Drifted bool `json:"drifted"`
	// Recomputed reports whether the advice was recomputed (drift implies
	// recompute unless the recomputation itself failed).
	Recomputed bool `json:"recomputed"`
	// Observed is the number of queries observed since registration.
	Observed int64 `json:"observed"`
	// Recomputes counts drift-triggered recomputations since registration.
	Recomputes int64 `json:"recomputes"`
}

// Observe folds a batch of queries into the log, re-runs the O2P shadow
// over the pricer's snapshot, and recomputes the advice if it drifted past
// the threshold. On recomputation it returns the fresh advice PAIRED with
// the log snapshot it was computed from (taken under one critical
// section), so the service caches exactly that workload's fingerprint —
// never a newer advice under an older workload's key. The Fingerprint in
// the recomputedAdvice is the one the tracker covered BEFORE the recompute
// re-keyed it: the service evicts that key's replay reports, which were
// computed for advice the drift just invalidated.
//
// The shadow run and the portfolio recompute execute outside the tracker
// lock: a drift-triggered search on a big table must not stall concurrent
// /advice and /observe traffic for that table. Concurrent Observe batches
// may therefore both recompute; each installs the advice for its own
// snapshot and the later install wins, which is at worst one redundant
// search, never a stale pairing.
//
// Ingestion is at-least-once: the batch joins the log before the searches
// run, so a client retrying after a search error re-ingests it. Searches
// on validated input do not realistically fail (errors require an invalid
// layout, which validated queries cannot produce), so this trade is taken
// over the extra locking a staged commit would need.
//
// Weight semantics are uniform across every observation endpoint: weight 0
// (the JSON default for an omitted field) is coerced to 1 during
// validation, so an unweighted observed query counts as one execution —
// the same convention /advise applies to its workloads. Negative and NaN
// weights are ErrBadObservation.
func (t *Tracker) Observe(ctx context.Context, queries []schema.TableQuery) (DriftReport, *recomputedAdvice, error) {
	t.mu.Lock()
	valid, err := t.validateLocked(queries)
	if err != nil {
		t.mu.Unlock()
		return DriftReport{}, nil, err
	}
	return t.observeValidatedLocked(ctx, valid)
}

// ObserveNamed is Observe for queries carrying column NAMES: the names are
// resolved against the tracker's current table under the same lock that
// appends them, so a concurrent re-registration can neither rebind a name
// to a different column index nor slip an out-of-range bitmask through.
// Unknown names map to ErrStaleSchema — with name-based observation, an
// unknown column almost always means the schema moved under the client.
func (t *Tracker) ObserveNamed(ctx context.Context, named []ObservedQry) (DriftReport, *recomputedAdvice, error) {
	t.mu.Lock()
	queries, err := t.resolveNamedLocked(named)
	if err != nil {
		t.mu.Unlock()
		return DriftReport{}, nil, err
	}
	return t.observeValidatedLocked(ctx, queries)
}

// observeValidatedLocked journals and applies one validated batch, then
// releases t.mu and runs the drift check. The context bounds the searches'
// slot waits, never the ingestion: by the time the shadow runs, the batch
// is journaled and logged, and a deadline expiring mid-search reports an
// error whose retry re-ingests (at-least-once).
func (t *Tracker) observeValidatedLocked(ctx context.Context, queries []schema.TableQuery) (DriftReport, *recomputedAdvice, error) {
	// Journal the batch before it joins the log (empty batches fold to
	// nothing and are not journaled). A failed append returns the error
	// with the log untouched; the client's retry re-sends the batch.
	// Ingestion is at-least-once either way (see Observe), and the fold
	// ingests the journaled copy exactly as ingestLocked does.
	if t.jn != nil && len(queries) > 0 {
		ev := statestore.Event{Type: statestore.EvObserve, Table: t.table.Name, Queries: toQueryRecs(queries)}
		if err := t.jn.append(ev); err != nil {
			t.mu.Unlock()
			return DriftReport{}, nil, err
		}
	}
	t.ingestLocked(queries)
	in := t.driftInputLocked()
	t.mu.Unlock()

	// Nothing new observed: skip the shadow search — an empty poll must
	// not burn a process-wide search slot re-pricing an unchanged stream.
	if len(queries) == 0 {
		return in.report(), nil, nil
	}
	return t.priceDrift(ctx, in)
}

// validateLocked checks a numeric observation batch against the CURRENT
// table and returns a normalized copy (weight 0 coerced to 1). Validation
// runs inside the lock: the caller may have built attr bitmasks against a
// schema snapshot that a concurrent re-registration has since replaced
// (setAdvice swaps t.table). Out-of-range attrs would price garbage; fail
// cleanly and let the client re-advise instead. Caller holds t.mu.
func (t *Tracker) validateLocked(queries []schema.TableQuery) ([]schema.TableQuery, error) {
	all := t.table.AllAttrs()
	out := make([]schema.TableQuery, 0, len(queries))
	for _, q := range queries {
		if q.Attrs.IsEmpty() {
			return nil, fmt.Errorf(
				"%w: query %s references no attributes", ErrBadObservation, q.ID)
		}
		if !all.ContainsAll(q.Attrs) {
			return nil, fmt.Errorf(
				"%w: query %s references %v of table %s (re-advise)",
				ErrStaleSchema, q.ID, q.Attrs, t.table.Name)
		}
		if !(q.Weight >= 0) { // negated compare also rejects NaN
			return nil, fmt.Errorf(
				"%w: query %s has invalid weight %v", ErrBadObservation, q.ID, q.Weight)
		}
		if q.Weight == 0 {
			q.Weight = 1
		}
		out = append(out, q)
	}
	return out, nil
}

// resolveNamedLocked resolves named observations against the tracker's
// current table and normalizes weights exactly like validateLocked.
// Caller holds t.mu.
func (t *Tracker) resolveNamedLocked(named []ObservedQry) ([]schema.TableQuery, error) {
	queries := make([]schema.TableQuery, 0, len(named))
	for i, oq := range named {
		if len(oq.Attrs) == 0 {
			return nil, fmt.Errorf(
				"%w: observed query %d references no columns", ErrBadObservation, i+1)
		}
		if !(oq.Weight >= 0) { // negated compare also rejects NaN
			return nil, fmt.Errorf(
				"%w: observed query %d has invalid weight %v", ErrBadObservation, i+1, oq.Weight)
		}
		attrs, err := resolveAttrs(t.table, oq.Attrs)
		if err != nil {
			return nil, fmt.Errorf(
				"%w: observed query %d: %v (re-advise)", ErrStaleSchema, i+1, err)
		}
		weight := oq.Weight
		if weight == 0 {
			weight = 1
		}
		queries = append(queries, schema.TableQuery{
			ID:     fmt.Sprintf("obs%d", i+1),
			Weight: weight,
			Attrs:  attrs,
		})
	}
	return queries, nil
}

// ingestLocked applies one validated, already-journaled batch: O(batch)
// bookkeeping only, no copies of the log and no searches — this is all the
// work the tracker lock covers on the ingest hot path. Caller holds t.mu.
func (t *Tracker) ingestLocked(queries []schema.TableQuery) {
	t.log = append(t.log, queries...)
	t.observed += int64(len(queries))
	t.trim()
	t.pricer.ingest(queries)
}

// driftInput is everything the out-of-lock drift check needs, snapshotted
// under one tracker critical section.
type driftInput struct {
	table      *schema.Table
	model      cost.Model
	advised    TableAdvice
	threshold  float64
	gen        int64
	obsAt      int64
	recomputes int64
	// pricing is the pricer's snapshot: a copy of the log (exact mode) or
	// the sketch's aggregated synthetic queries (sketch mode).
	pricing []schema.TableQuery
}

func (in driftInput) report() DriftReport {
	return DriftReport{
		Table:      in.table.Name,
		Threshold:  in.threshold,
		Observed:   in.obsAt,
		Recomputes: in.recomputes,
	}
}

// driftInputLocked snapshots the drift check's inputs. Caller holds t.mu.
func (t *Tracker) driftInputLocked() driftInput {
	return driftInput{
		table:      t.table,
		model:      t.model,
		advised:    t.advice,
		threshold:  t.threshold,
		gen:        t.gen,
		obsAt:      t.observed,
		recomputes: t.recomputes,
		pricing:    t.pricer.snapshot(t.log),
	}
}

// report returns the tracker's counters as an unchanged DriftReport — what
// an empty observation batch answers without journaling or pricing.
func (t *Tracker) report() DriftReport {
	t.mu.Lock()
	defer t.mu.Unlock()
	return DriftReport{
		Table:      t.table.Name,
		Threshold:  t.threshold,
		Observed:   t.observed,
		Recomputes: t.recomputes,
	}
}

// priceDrift runs the drift check on a snapshot, outside any lock: the O2P
// shadow prices the snapshot against the advised layout, and past the
// threshold a portfolio recompute runs over the exact current log. The
// recompute deliberately re-reads the log rather than using in.pricing: in
// sketch mode the pricing snapshot is an aggregated approximation good
// enough to DECIDE drift, but installed advice, its fingerprint, and the
// cache pairing must be computed from the same exact workload in every
// mode, so sketch and exact trackers are interchangeable beyond the
// trigger decision.
func (t *Tracker) priceDrift(ctx context.Context, in driftInput) (DriftReport, *recomputedAdvice, error) {
	rep := in.report()
	if len(in.pricing) == 0 {
		return rep, nil, nil
	}
	ptw := schema.TableWorkload{Table: in.table, Queries: in.pricing}

	// The shadow search draws from the same process-wide budget as every
	// other kernel entry point, so a burst of /observe traffic cannot
	// oversubscribe the machine — and waits under the request's deadline,
	// so it cannot strand the handler's goroutine on the gate either.
	if err := algo.AcquireSearchSlotCtx(ctx); err != nil {
		return rep, nil, err
	}
	shadow, err := o2p.New().Partition(ptw, in.model)
	algo.ReleaseSearchSlot()
	if err != nil {
		return rep, nil, err
	}
	advisedCost := cost.WorkloadCost(in.model, ptw, in.advised.Layout.Parts)
	switch {
	case shadow.Cost > 0:
		rep.Ratio = (advisedCost - shadow.Cost) / shadow.Cost
	case advisedCost > 0:
		// A zero-cost shadow layout against a positive-cost advised layout
		// is infinitely drifted, not "ratio unknown, stay put".
		rep.Ratio = math.Inf(1)
	}
	if rep.Ratio <= in.threshold {
		return rep, nil, nil
	}
	rep.Drifted = true

	// Snapshot the exact log for the recompute. If a re-registration
	// landed since the batch was ingested, the advice this check would
	// compute belongs to a dead generation: report drift, install nothing.
	t.mu.Lock()
	if t.gen != in.gen {
		t.mu.Unlock()
		return rep, nil, nil
	}
	tw := schema.TableWorkload{
		Table:   t.table,
		Queries: append([]schema.TableQuery(nil), t.log...),
	}
	obsAt := t.observed
	t.mu.Unlock()

	fresh, err := AdviseTableContext(ctx, tw, in.model)
	if err != nil {
		return rep, nil, err
	}
	t.mu.Lock()
	// Install only if (a) no re-registration (setAdvice) landed while the
	// lock was released — it may have swapped t.table for a different
	// schema, and pairing advice computed for the old geometry with the
	// new table would index out of range when priced; the generation
	// counter catches this even when the re-registration reuses the same
	// *schema.Table pointer — and (b) no sibling Observe already installed
	// advice computed from a LONGER log: within a generation the observed
	// counter is monotone, so comparing snapshot positions makes the
	// newest-log advice win regardless of which portfolio search finishes
	// last. The (fresh, snapshot) pair returned below stays valid either
	// way: the service caches it under the snapshot's own fingerprint.
	installed := t.gen == in.gen && obsAt >= t.advObserved
	var rec *recomputedAdvice
	if installed {
		snapFP := FingerprintOf(tw)
		// Journal the install before applying it. An install that loses
		// the race is never journaled, so the fold applies EvRecompute
		// unconditionally and still matches: journal order is install
		// order.
		if t.jn != nil {
			ev := statestore.Event{Type: statestore.EvRecompute, Table: t.table.Name,
				Advice: toAdviceRec(fresh), FP: [statestore.FPSize]byte(snapFP), AdvObserved: obsAt}
			if err := t.jn.append(ev); err != nil {
				t.mu.Unlock()
				return rep, nil, err
			}
		}
		t.advice = fresh
		t.advObserved = obsAt
		// The tracker now effectively tracks the observed snapshot: re-key
		// regFP so a client re-advising exactly this workload (the
		// fingerprint GET /advice reports) is recognized as identical and
		// preserves the observation state instead of resetting it. The key
		// it covered until now goes back to the service, which evicts that
		// fingerprint's replay reports — they were computed for the advice
		// this install just invalidated, and a post-drift /replay must not
		// serve a stale layout's report from cache.
		rec = &recomputedAdvice{advice: fresh, snapshot: tw, prevFP: t.regFP, modelKey: t.modelKey}
		t.regFP = snapFP
		t.recomputes++
		rep.Recomputed = true
	}
	rep.Recomputes = t.recomputes
	t.mu.Unlock()
	// When the install lost (a newer registration or sibling install
	// superseded it), report drift without claiming a recompute and hand
	// nothing back to cache.
	return rep, rec, nil
}

// Advice returns the tracker's current advice.
func (t *Tracker) Advice() TableAdvice {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.advice
}

// State returns the current advice together with a snapshot of the observed
// workload it is tracked against, consistently under one lock.
func (t *Tracker) State() (TableAdvice, schema.TableWorkload) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.advice, schema.TableWorkload{
		Table:   t.table,
		Queries: append([]schema.TableQuery(nil), t.log...),
	}
}

// setAdvice replaces the tracked advice and its reference workload; used
// when a fresh /advise request re-registers the table. The table pointer is
// replaced too: a re-registration may carry the same table name with a
// different schema or row count, and pricing the new workload against the
// old *schema.Table would at best drift against the wrong geometry and at
// worst index out of range.
// A failed journal append returns before anything mutates: the tracker
// keeps its previous registration, consistent with the journal.
func (t *Tracker) setAdvice(tw schema.TableWorkload, advice TableAdvice, fp Fingerprint, m cost.Model, mkey string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.jn != nil {
		if err := t.jn.append(commitEvent(tw, advice, fp, mkey)); err != nil {
			return err
		}
	}
	t.table = tw.Table
	t.model = m
	t.modelKey = mkey
	t.log = append([]schema.TableQuery(nil), tw.Queries...)
	t.advice = advice
	t.gen++
	// The observed/recompute counters read "since registration", so a new
	// registration starts them over (and advObserved with them).
	t.observed = 0
	t.recomputes = 0
	t.advObserved = 0
	t.regFP = fp
	// A re-registration is a client declaring a (possibly new) store laid
	// out as freshly advised, so the applied layout resets with it.
	t.applied = advice
	t.appliedFP = fp
	t.trim()
	// The pricer tracks the registration's stream, not the old table's.
	t.pricer.reset(t.table, t.log)
	return nil
}

// MigrationState returns, under one lock, everything a migration plan
// needs: the layout the store is assumed to hold (applied), the current
// advice the drift recomputes have moved to, the observed mix snapshot the
// transition is priced against, and both fingerprints.
func (t *Tracker) MigrationState() (st migrationState) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return migrationState{
		applied:   t.applied,
		appliedFP: t.appliedFP,
		current:   t.advice,
		currentFP: t.regFP,
		model:     t.model,
		modelKey:  t.modelKey,
		tw: schema.TableWorkload{
			Table:   t.table,
			Queries: append([]schema.TableQuery(nil), t.log...),
		},
	}
}

// migrationState is everything a migration plan needs, snapshotted under
// one tracker lock: the layout the store is assumed to hold (applied), the
// current advice the drift recomputes have moved to, the observed mix the
// transition is priced against, the model that prices it all, and the
// fingerprints.
type migrationState struct {
	applied, current     TableAdvice
	appliedFP, currentFP Fingerprint
	model                cost.Model
	modelKey             string
	tw                   schema.TableWorkload
}

// MarkApplied records that the store now physically holds the advice the
// tracker currently tracks — called after a migration to it executed and
// verified. The compare-and-set against currentFP makes a stale migration
// (one planned before a newer drift recompute or re-registration moved the
// advice) unable to claim application.
// The event is journaled only when the CAS will succeed — the fold
// replays the same comparison, so a stale fingerprint folds to the same
// no-op either way, without burning a journal record on it.
func (t *Tracker) MarkApplied(currentFP Fingerprint) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.regFP != currentFP {
		return false, nil
	}
	if t.jn != nil {
		ev := statestore.Event{Type: statestore.EvApplied, Table: t.table.Name,
			FP: [statestore.FPSize]byte(currentFP)}
		if err := t.jn.append(ev); err != nil {
			return false, err
		}
	}
	t.applied = t.advice
	t.appliedFP = t.regFP
	return true, nil
}

// matches reports whether fp identifies a workload the tracker already
// covers: the one it was registered with, or the currently tracked log
// (whose fingerprint GET /advice reports — these differ when the
// registration workload was wider than the drift window, or after
// observations accumulated). Re-advising either must preserve the
// observation state.
// The MODEL key must match too: re-advising the same workload under a
// different device is a new registration — its advice, drift pricing, and
// migration plans all move to the new hardware.
func (t *Tracker) matches(fp Fingerprint, mkey string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.modelKey != mkey {
		return false
	}
	if fp == t.regFP {
		return true
	}
	return fp == FingerprintOf(schema.TableWorkload{Table: t.table, Queries: t.log})
}
