package advisor

import (
	"reflect"
	"testing"
	"time"
)

// Regression: backoff jitter used to derive from the attempt number alone,
// so every client in a shed burst computed the SAME delays and the whole
// fleet re-stampeded in lockstep — the jitter jittered nothing. It must be
// seeded per client.
func TestBackoffJitterDivergesAcrossClients(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 6, BaseDelay: 100 * time.Millisecond, MaxDelay: 5 * time.Second}
	schedule := func(c *Client) []time.Duration {
		var ds []time.Duration
		for attempt := 1; attempt <= 5; attempt++ {
			ds = append(ds, p.backoffDelay(c.nonce(), attempt, 0))
		}
		return ds
	}
	a, b := NewClient("http://a"), NewClient("http://b")
	sa, sb := schedule(a), schedule(b)
	if reflect.DeepEqual(sa, sb) {
		t.Fatalf("two clients share the identical retry schedule %v; jitter is not per-client", sa)
	}
	// A single client's schedule stays reproducible: its nonce is assigned
	// once and the jitter is a pure hash of (nonce, attempt).
	if again := schedule(a); !reflect.DeepEqual(again, sa) {
		t.Errorf("one client's schedule changed between reads: %v then %v", sa, again)
	}
	// Jitter stays within ±25% of the nominal exponential step.
	for i, d := range sa {
		nominal := p.BaseDelay << i
		if lo, hi := nominal*3/4, nominal*5/4; d < lo || d > hi {
			t.Errorf("attempt %d delay %v outside [%v, %v]", i+1, d, lo, hi)
		}
	}
}

// A server Retry-After hint still anchors the delay (jitter applies around
// the hint, capped by MaxDelay).
func TestBackoffRetryAfterHint(t *testing.T) {
	p := RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: 10 * time.Second}
	c := NewClient("http://a")
	d := p.backoffDelay(c.nonce(), 1, 2)
	nominal := 2 * time.Second
	if lo, hi := nominal*3/4, nominal*5/4; d < lo || d > hi {
		t.Errorf("hinted delay %v outside [%v, %v]", d, lo, hi)
	}
	// The cap still wins over a huge hint.
	if d := p.backoffDelay(c.nonce(), 1, 3600); d > p.MaxDelay*5/4 {
		t.Errorf("hinted delay %v ignores MaxDelay %v", d, p.MaxDelay)
	}
}
