package advisor

import (
	"testing"

	"knives/internal/algorithms"
	"knives/internal/cost"
	"knives/internal/partition"
	"knives/internal/schema"
)

// adviseSequential is the pre-refactor façade loop, retained as the oracle:
// the concurrent portfolio fan-out must be indistinguishable from running
// every heuristic in order.
func adviseSequential(b *schema.Benchmark, m cost.Model) ([]TableAdvice, error) {
	var out []TableAdvice
	for _, tw := range b.TableWorkloads() {
		adv := TableAdvice{
			Table:        tw.Table,
			PerAlgorithm: make(map[string]float64),
			RowCost:      cost.WorkloadCost(m, tw, partition.Row(tw.Table).Parts),
			ColumnCost:   cost.WorkloadCost(m, tw, partition.Column(tw.Table).Parts),
		}
		adv.Algorithm = "Column"
		adv.Layout = partition.Column(tw.Table)
		adv.Cost = adv.ColumnCost
		for _, a := range algorithms.Heuristics() {
			res, err := a.Partition(tw, m)
			if err != nil {
				return nil, err
			}
			adv.PerAlgorithm[a.Name()] = res.Cost
			if res.Cost < adv.Cost {
				adv.Algorithm = a.Name()
				adv.Layout = res.Partitioning
				adv.Cost = res.Cost
			}
		}
		out = append(out, adv)
	}
	return out, nil
}

func TestAdviseMatchesSequentialReference(t *testing.T) {
	bench := schema.TPCH(1)
	m := cost.NewHDD(cost.DefaultDisk())
	got, err := Advise(bench, m)
	if err != nil {
		t.Fatal(err)
	}
	want, err := adviseSequential(bench, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d advice entries, want %d", len(got), len(want))
	}
	byName := make(map[string]TableAdvice, len(want))
	for _, w := range want {
		byName[w.Table.Name] = w
	}
	for _, g := range got {
		w, ok := byName[g.Table.Name]
		if !ok {
			t.Fatalf("unexpected table %s", g.Table.Name)
		}
		if g.Algorithm != w.Algorithm || g.Cost != w.Cost ||
			g.RowCost != w.RowCost || g.ColumnCost != w.ColumnCost {
			t.Errorf("%s: got (%s, %v), want (%s, %v)", g.Table.Name, g.Algorithm, g.Cost, w.Algorithm, w.Cost)
		}
		if !g.Layout.Equal(w.Layout) {
			t.Errorf("%s: layout %s, want %s", g.Table.Name, g.Layout, w.Layout)
		}
		for name, c := range w.PerAlgorithm {
			if g.PerAlgorithm[name] != c {
				t.Errorf("%s/%s: cost %v, want %v", g.Table.Name, name, g.PerAlgorithm[name], c)
			}
		}
	}
}

func TestAdviseIsDeterministicAcrossRuns(t *testing.T) {
	bench := schema.TPCH(1)
	m := cost.NewHDD(cost.DefaultDisk())
	first, err := Advise(bench, m)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		again, err := Advise(bench, m)
		if err != nil {
			t.Fatal(err)
		}
		for i := range first {
			if first[i].Algorithm != again[i].Algorithm || first[i].Cost != again[i].Cost ||
				!first[i].Layout.Equal(again[i].Layout) {
				t.Fatalf("trial %d: advice for %s changed across runs", trial, first[i].Table.Name)
			}
		}
	}
}

func TestAdviseValidatesInput(t *testing.T) {
	if _, err := Advise(nil, nil); err == nil {
		t.Error("Advise accepted a nil benchmark")
	}
	if _, err := AdviseTable(schema.TableWorkload{}, nil); err == nil {
		t.Error("AdviseTable accepted a nil table")
	}
}

func TestAdviseTableNilModelDefaultsToHDD(t *testing.T) {
	bench := schema.TPCH(0.01)
	tw := bench.Workload.ForTable(bench.Table("region"))
	adv, err := AdviseTable(tw, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := AdviseTable(tw, cost.NewHDD(cost.DefaultDisk()))
	if err != nil {
		t.Fatal(err)
	}
	if adv.Cost != want.Cost || !adv.Layout.Equal(want.Layout) {
		t.Errorf("nil model advice differs from default HDD advice")
	}
}
