package advisor

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"knives/internal/attrset"
	"knives/internal/partition"
	"knives/internal/schema"
)

// driftService advises the co-access workload and streams single-column
// traffic until the tracker recomputes, returning the service and the
// pre-drift advice.
func driftService(t *testing.T) (*Service, *schema.Table, TableAdvice) {
	t.Helper()
	svc := NewService(Config{DriftThreshold: 0.15, DriftWindow: 8})
	tab := wideTable(t)
	stale, _, err := svc.AdviseTable(coAccessWorkload(tab))
	if err != nil {
		t.Fatal(err)
	}
	recomputed := false
	for batch := 0; batch < 8 && !recomputed; batch++ {
		rep, err := svc.Observe(tab.Name, singleColumnBatch())
		if err != nil {
			t.Fatal(err)
		}
		recomputed = rep.Recomputed
	}
	if !recomputed {
		t.Fatal("drift never triggered")
	}
	return svc, tab, stale
}

// singleColumnBatch is the drifted traffic: a and b only ever read alone.
func singleColumnBatch() []schema.TableQuery {
	return []schema.TableQuery{
		{ID: "s1", Weight: 1, Attrs: attrset.Of(0)},
		{ID: "s2", Weight: 1, Attrs: attrset.Of(1)},
	}
}

// sameParts compares layouts possibly bound to different *Table pointers
// over the same schema.
func sameParts(a, b partition.Partitioning) bool {
	ac, bc := a.Canonical().Parts, b.Canonical().Parts
	if len(ac) != len(bc) {
		return false
	}
	for i := range ac {
		if ac[i] != bc[i] {
			return false
		}
	}
	return true
}

// TestMigrateTableClosesDriftLoop is the end-to-end story the subsystem
// exists for: advise, drift, recompute — then /migrate plans the applied ->
// advised transition, executes it on a sampled store with exact cost and
// verification, and advances the applied layout so a second call finds
// nothing to do.
func TestMigrateTableClosesDriftLoop(t *testing.T) {
	svc, tab, stale := driftService(t)
	fresh, err := svc.CurrentAdvice(tab.Name)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Layout.Equal(stale.Layout) {
		t.Fatal("precondition: drift did not move the advice")
	}

	out, cached, err := svc.MigrateTable(tab.Name, MigrateOptions{MaxRows: 2_000})
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("first migration served from cache")
	}
	p := out.Plan
	if !sameParts(p.From, stale.Layout) {
		t.Errorf("plan migrates from %s, store holds %s", p.From, stale.Layout)
	}
	if !sameParts(p.To, fresh.Layout) {
		t.Errorf("plan migrates to %s, advice says %s", p.To, fresh.Layout)
	}
	if out.Report == nil {
		t.Fatal("differing layouts did not execute")
	}
	if !out.Report.CostExact() {
		t.Errorf("measured migration cost %.18g != predicted %.18g",
			out.Report.MeasuredSeconds, out.Report.PredictedSeconds)
	}
	if !out.Report.VerifyExact() {
		t.Error("migrated store failed verification against fresh materialization")
	}
	if !p.Viable {
		t.Errorf("single-column traffic on 100-byte columns should amortize fast; refused: %s", p.Reason)
	}
	if !out.AppliedUpdated {
		t.Error("verified viable migration did not advance the applied layout")
	}

	// The loop is closed: the store now matches the advice.
	again, _, err := svc.MigrateTable(tab.Name, MigrateOptions{MaxRows: 2_000})
	if err != nil {
		t.Fatal(err)
	}
	if again.Report != nil || again.Plan.Viable {
		t.Errorf("post-migration migrate still wants to move: %+v", again.Plan)
	}
	if !strings.Contains(again.Plan.Reason, "identical") {
		t.Errorf("post-migration refusal reason = %q", again.Plan.Reason)
	}

	st := svc.Stats()
	if st.Migrations < 2 || st.CachedMigrations < 1 {
		t.Errorf("stats did not count migrations: %+v", st)
	}
}

// TestMigrateTableCachesByFingerprintPair: before the applied layout moves,
// identical requests share one execution; the cache key carries rows, seed,
// and window, so changed knobs re-execute.
func TestMigrateTableCachesByFingerprintPair(t *testing.T) {
	// A service whose drift produced differing layouts but whose migration
	// is REFUSED (huge migration cost vs tiny window) keeps the applied
	// layout in place, so repeated calls hit the same fingerprint pair.
	svc, tab, _ := driftService(t)
	opt := MigrateOptions{MaxRows: 1_000, Window: 1}
	first, cached, err := svc.MigrateTable(tab.Name, opt)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first call cached")
	}
	if first.Plan.Viable {
		t.Fatalf("window=1 plan unexpectedly viable (break-even %d)", first.Plan.BreakEven)
	}
	if first.AppliedUpdated {
		t.Fatal("refused plan advanced the applied layout")
	}
	second, cached, err := svc.MigrateTable(tab.Name, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Error("identical refused migration re-executed instead of hitting the cache")
	}
	if second.Plan.Migration.Seconds != first.Plan.Migration.Seconds {
		t.Error("cached outcome differs from the original")
	}
	// A different window is a different question.
	third, cached, err := svc.MigrateTable(tab.Name, MigrateOptions{MaxRows: 1_000, Window: MaxMigrateWindow})
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("different window served from cache")
	}
	if !third.Plan.Viable {
		t.Errorf("max-window plan refused: %s", third.Plan.Reason)
	}
	if got := svc.Stats(); got.MigrateHits != 1 {
		t.Errorf("migrate hits = %d, want 1", got.MigrateHits)
	}
}

// TestMigrateTableRekeysOnMixChange: observation batches BELOW the drift
// threshold move the amortization mix without re-keying the advice; a
// cached break-even verdict must not answer for the changed mix.
func TestMigrateTableRekeysOnMixChange(t *testing.T) {
	svc, tab, _ := driftService(t)
	opt := MigrateOptions{MaxRows: 1_000, Window: 1}
	if _, cached, err := svc.MigrateTable(tab.Name, opt); err != nil {
		t.Fatal(err)
	} else if cached {
		t.Fatal("first call cached")
	}
	// A below-threshold batch: the single-column shape the tracker already
	// converged to (no recompute), but at a different weight — so the
	// windowed log (the mix plans amortize over) genuinely changes. (An
	// identical-weight batch would trim to a byte-identical window, and an
	// unchanged mix legitimately stays cached.)
	rep, err := svc.Observe(tab.Name, []schema.TableQuery{
		{ID: "s1", Weight: 3, Attrs: attrset.Of(0)},
		{ID: "s2", Weight: 3, Attrs: attrset.Of(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recomputed {
		t.Fatal("precondition: batch unexpectedly crossed the drift threshold")
	}
	if _, cached, err := svc.MigrateTable(tab.Name, opt); err != nil {
		t.Fatal(err)
	} else if cached {
		t.Error("migrate served a cached verdict priced on a superseded mix")
	}
}

// TestMigrateTableValidation covers option limits and unregistered tables.
func TestMigrateTableValidation(t *testing.T) {
	svc := NewService(Config{})
	if _, _, err := svc.MigrateTable("nope", MigrateOptions{}); err == nil {
		t.Error("unregistered table accepted")
	}
	bad := []MigrateOptions{
		{Window: -1},
		{Window: MaxMigrateWindow + 1},
		{MaxRows: -1},
		{MaxRows: MaxReplayRows + 1},
		{Workers: -1},
		{Workers: MaxReplayWorkers + 1},
	}
	for _, opt := range bad {
		if _, _, err := svc.MigrateTable("nope", opt); err == nil || !strings.Contains(err.Error(), "invalid migrate") {
			t.Errorf("options %+v not rejected as invalid", opt)
		}
	}
}

// TestDriftEvictsStaleReplayReports is the PR's bugfix regression test: a
// replay report cached before a drift recompute must not be served after
// it — the cached report describes advice the recompute invalidated.
func TestDriftEvictsStaleReplayReports(t *testing.T) {
	svc := NewService(Config{DriftThreshold: 0.15, DriftWindow: 8})
	tab := wideTable(t)
	tw := coAccessWorkload(tab)
	if _, _, err := svc.AdviseTable(tw); err != nil {
		t.Fatal(err)
	}
	opt := ReplayOptions{MaxRows: 1_000}
	if _, _, cached, err := svc.ReplayTable(tw, opt); err != nil {
		t.Fatal(err)
	} else if cached {
		t.Fatal("first replay cached")
	}
	if _, _, cached, err := svc.ReplayTable(tw, opt); err != nil {
		t.Fatal(err)
	} else if !cached {
		t.Fatal("second replay not cached (cache broken; eviction test would be vacuous)")
	}

	recomputed := false
	for batch := 0; batch < 8 && !recomputed; batch++ {
		rep, err := svc.Observe(tab.Name, singleColumnBatch())
		if err != nil {
			t.Fatal(err)
		}
		recomputed = rep.Recomputed
	}
	if !recomputed {
		t.Fatal("drift never triggered")
	}

	// The drift recompute invalidated the advice the cached report was
	// built on; a post-drift replay of the same workload must re-execute.
	if _, _, cached, err := svc.ReplayTable(tw, opt); err != nil {
		t.Fatal(err)
	} else if cached {
		t.Error("post-drift replay served a stale layout's report from cache")
	}
}

// TestMigrateEndpoint exercises POST /migrate over the wire: 404 before
// registration, 400 on bad options, and a full drift-then-migrate flow.
func TestMigrateEndpoint(t *testing.T) {
	svc, tab, _ := driftService(t)
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()

	if _, err := c.Migrate(ctx, MigrateRequest{Table: "ghost"}); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unregistered table: err = %v, want 404", err)
	}
	if _, err := c.Migrate(ctx, MigrateRequest{Table: tab.Name, Window: -1}); err == nil || !strings.Contains(err.Error(), "400") {
		t.Errorf("bad window: err = %v, want 400", err)
	}
	// Missing table name.
	resp, err := http.Post(ts.URL+"/migrate", "application/json", bytes.NewReader([]byte(`{}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty request: status %d, want 400", resp.StatusCode)
	}
	// Unknown fields must be rejected like every other endpoint.
	resp, err = http.Post(ts.URL+"/migrate", "application/json", bytes.NewReader([]byte(`{"table":"x","bogus":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", resp.StatusCode)
	}

	wire, err := c.Migrate(ctx, MigrateRequest{Table: tab.Name, MaxRows: 2_000})
	if err != nil {
		t.Fatal(err)
	}
	if !wire.Executed || !wire.CostExact || !wire.VerifyExact {
		t.Errorf("migration wire not exact: %+v", wire)
	}
	if !wire.Viable || wire.BreakEven <= 0 {
		t.Errorf("expected a viable plan, got %+v", wire)
	}
	if !wire.AppliedUpdated {
		t.Error("wire does not report the applied layout advancing")
	}
	if wire.Model == "" || len(wire.FromLayout) == 0 || len(wire.ToLayout) == 0 {
		t.Errorf("wire missing layout rendering: %+v", wire)
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(wire); err != nil {
		t.Fatal(err)
	}

	// Converged: second call reports nothing to migrate.
	wire2, err := c.Migrate(ctx, MigrateRequest{Table: tab.Name, MaxRows: 2_000})
	if err != nil {
		t.Fatal(err)
	}
	if wire2.Executed || wire2.Viable {
		t.Errorf("post-migration call still executes: %+v", wire2)
	}
	if !wire2.CostExact || !wire2.VerifyExact {
		t.Error("no-op migration must be trivially exact")
	}
}
