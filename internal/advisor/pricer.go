package advisor

import (
	"fmt"

	"knives/internal/schema"
	"knives/internal/sketch"
)

// Drift-tracking modes for Config.DriftTracking.
const (
	// TrackExact prices drift against a copy of the tracker's full
	// observation log — the reference behavior, O(window) per batch.
	TrackExact = "exact"
	// TrackSketch prices drift against a windowed attribute-set frequency
	// sketch of the stream: O(distinct attr-sets) per batch, memory bounded
	// by the sketch capacity regardless of stream length. Layout pricing is
	// linear in query weight and additive over attribute sets, so while the
	// stream's distinct attr-sets fit the sketch the aggregated workload
	// prices any fixed layout bit-identically to the log; only the shadow
	// search's input order and the window's epoch granularity can move the
	// ratio, and the golden differential test pins the verdicts equivalent
	// on recorded streams. Drift RECOMPUTES still search over the exact
	// log, so advice, fingerprints, and cache pairing are mode-independent.
	TrackSketch = "sketch"
)

// DefaultSketchCapacity bounds the per-epoch counters of a sketch tracker.
const DefaultSketchCapacity = sketch.DefaultCapacity

// driftPricer supplies the workload the per-batch drift check prices. All
// methods are called with the tracker lock held; snapshot's result is
// handed outside the lock and must not alias mutable tracker state.
type driftPricer interface {
	// reset re-seeds the pricer from a registration workload (setAdvice,
	// recovery, construction).
	reset(table *schema.Table, queries []schema.TableQuery)
	// ingest folds one applied observation batch in.
	ingest(queries []schema.TableQuery)
	// snapshot returns the queries the drift check prices; log is the
	// tracker's current (window-trimmed) observation log.
	snapshot(log []schema.TableQuery) []schema.TableQuery
}

// exactPricer prices the log itself: the pre-sketch reference behavior.
type exactPricer struct{}

func (exactPricer) reset(*schema.Table, []schema.TableQuery) {}
func (exactPricer) ingest([]schema.TableQuery)               {}
func (exactPricer) snapshot(log []schema.TableQuery) []schema.TableQuery {
	return append([]schema.TableQuery(nil), log...)
}

// sketchPricer prices a windowed space-saving summary of the stream keyed
// by attribute bitmask. Weights are already normalized (> 0) by the
// tracker's validation before ingest.
type sketchPricer struct {
	w *sketch.Window
}

func newSketchPricer(capacity, window int) *sketchPricer {
	return &sketchPricer{w: sketch.NewWindow(capacity, window, sketch.DefaultEpochs)}
}

func (p *sketchPricer) reset(_ *schema.Table, queries []schema.TableQuery) {
	p.w.Reset()
	p.ingest(queries)
}

func (p *sketchPricer) ingest(queries []schema.TableQuery) {
	for _, q := range queries {
		p.w.Add(uint64(q.Attrs), q.Weight)
	}
}

// snapshot renders the summary as synthetic queries, one per distinct
// attribute set, sorted by bitmask — deterministic for a given summary
// state, independent of arrival order.
func (p *sketchPricer) snapshot(_ []schema.TableQuery) []schema.TableQuery {
	items := p.w.Items()
	out := make([]schema.TableQuery, 0, len(items))
	for _, it := range items {
		out = append(out, schema.TableQuery{
			ID:     fmt.Sprintf("sk%x", it.Key),
			Weight: it.Weight,
			Attrs:  schema.Set(it.Key),
		})
	}
	return out
}

// newPricer builds the drift pricer the config asks for. Validation of the
// mode string happened in OpenService.
func (cfg Config) newPricer() driftPricer {
	if cfg.DriftTracking == TrackSketch {
		return newSketchPricer(cfg.SketchCapacity, cfg.DriftWindow)
	}
	return exactPricer{}
}
