package advisor

import (
	"knives/internal/algo"
	"knives/internal/cost"
	"knives/internal/experiments"
	"knives/internal/schema"
)

// Prewarm seeds the advice cache and drift trackers for every table of a
// benchmark before the server takes traffic, so the first clients hit warm
// entries instead of racing cold searches.
//
// When the service prices with a block-priced device (HDD, SSD), Prewarm
// reuses the experiment suite's machinery: Suite.Prewarm fans the
// (algorithm x table) searches out over every core with each result
// computed exactly once, and the advice is assembled from the suite's cache
// without repeating any search. (The suite's model relabels the device
// "HDD", but the block arithmetic reads only the numeric parameters, so the
// layouts and costs are bit-identical to the service model's.) Other models
// fall back to advising each table directly — note the fallback routes
// through AdviseTable and therefore counts its tables as requests/misses in
// Stats, while the suite path only counts searches.
func (s *Service) Prewarm(b *schema.Benchmark) error {
	if b == nil {
		return nil
	}
	dm, ok := s.model.(*cost.DeviceModel)
	if !ok || dm.Device().Pricing != cost.PricingBlock {
		_, _, err := s.AdviseBenchmark(b)
		return err
	}

	suite := &experiments.Suite{Bench: b, Disk: dm.Device()}
	names := PortfolioNames()
	if err := suite.Prewarm(names...); err != nil {
		return err
	}
	perAlgo := make([][]algo.Result, len(names))
	for i, name := range names {
		rs, err := suite.Results(name)
		if err != nil {
			return err
		}
		perAlgo[i] = rs
	}
	for ti, tw := range b.TableWorkloads() {
		results := make([]algo.Result, len(names))
		for ai := range names {
			results[ai] = perAlgo[ai][ti]
		}
		advice := pickCheapest(tw, s.model, names, results)
		// One portfolio search per table really did run inside the suite
		// above — count it even if seed() finds the fingerprint already
		// cached (a repeated Prewarm re-searches through a fresh suite; the
		// counter reports kernel work done, not cache effectiveness).
		s.searches.Add(1)
		s.seed(tw, advice)
	}
	return nil
}

// seed inserts precomputed advice under the workload's fingerprint (unless
// an entry already resolved) and registers the drift tracker through the
// same helper the advise paths use — so re-running Prewarm restores
// trackers evicted past TrackerCapacity without resetting live ones.
func (s *Service) seed(tw schema.TableWorkload, advice TableAdvice) {
	fp := FingerprintOf(tw)
	e := s.lookup(adviceKey{fp: fp, model: s.modelKey})
	e.once.Do(func() { e.advice = advice })
	if e.err != nil {
		return
	}
	s.registerTracker(tw, e.advice, fp, s.model, s.modelKey)
}
