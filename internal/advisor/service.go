package advisor

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"knives/internal/cost"
	"knives/internal/migrate"
	"knives/internal/schema"
	"knives/internal/statestore"
	"knives/internal/telemetry"
)

// Config parameterizes a Service.
type Config struct {
	// Model prices layouts; nil defaults to the paper's HDD model on the
	// default disk.
	Model cost.Model
	// DriftThreshold is the relative cost divergence past which cached
	// advice is invalidated and recomputed; <= 0 uses
	// DefaultDriftThreshold.
	DriftThreshold float64
	// DriftWindow bounds how many observed queries each table's tracker
	// retains; 0 uses DefaultDriftWindow, negative keeps the whole log
	// (only sensible for bounded offline replays — the daemon should keep
	// a finite window).
	DriftWindow int
	// CacheCapacity bounds the fingerprint cache; when full, the oldest
	// entries are evicted first. 0 uses DefaultCacheCapacity, negative
	// disables eviction.
	CacheCapacity int
	// TrackerCapacity bounds how many per-table drift trackers the service
	// keeps; when full, the longest-registered tracker is evicted first
	// (its table must be re-advised to be tracked again). 0 uses
	// DefaultTrackerCapacity, negative disables eviction.
	TrackerCapacity int
	// ReplayCacheCapacity bounds the replay report cache (FIFO, like the
	// advice cache). 0 uses DefaultReplayCacheCapacity, negative disables
	// eviction.
	ReplayCacheCapacity int
	// MigrateWindow is the default break-even horizon bound (in queries of
	// the tracked mix) for migration plans whose request does not name one.
	// 0 uses migrate.DefaultWindow.
	MigrateWindow int64
	// MigrateCacheCapacity bounds the migration outcome cache (FIFO, like
	// the replay cache). 0 uses DefaultMigrateCacheCapacity, negative
	// disables eviction.
	MigrateCacheCapacity int
	// DriftTracking selects how trackers price drift per batch: TrackExact
	// (the default, "" or "exact") copies and prices the full observation
	// window; TrackSketch ("sketch") prices a windowed attribute-set
	// frequency sketch — O(distinct attr-sets) per batch with memory
	// independent of stream length, verdict-equivalent on streams whose
	// distinct attr-sets fit SketchCapacity. Recomputes, fingerprints, and
	// caching behave identically in both modes.
	DriftTracking string
	// SketchCapacity bounds the sketch tracker's per-epoch counters; 0
	// uses DefaultSketchCapacity. Ignored under TrackExact.
	SketchCapacity int
	// IngestShards is the number of observe-ingest shards; tables hash to
	// a shard, which serializes and group-commits their batches. 0 uses
	// DefaultIngestShards.
	IngestShards int
	// IngestGroup caps how many pending observation batches one shard
	// leader drains into a single group commit. 0 uses DefaultIngestGroup.
	IngestGroup int
	// Store persists tracker state across restarts. nil (or any store whose
	// Journaling() is false, like statestore.NewMem()) keeps everything
	// in-memory only — the pre-durability behavior. A journaling store
	// (statestore.Open) makes every tracker mutation journal-before-apply
	// and OpenService rebuild the trackers it recovered. The store's drift
	// window should match DriftWindow, or recovered logs are re-trimmed to
	// the smaller of the two.
	Store statestore.Store
	// Telemetry, when set, receives the service's request/ingest/drift
	// latency histograms and counter bindings (and installs the
	// process-wide search-gate wait observer). Nil disables service
	// instrumentation at the cost of one nil check per point. Share the
	// registry with statestore.Options.Metrics and the HTTP server so one
	// /metrics scrape covers the whole daemon.
	Telemetry *telemetry.Registry
}

// DefaultCacheCapacity bounds the advice cache in a long-running daemon:
// every distinct workload fingerprint (and every drift recompute) inserts
// an entry, so without a cap memory grows with the lifetime of the
// process.
const DefaultCacheCapacity = 4096

// DefaultTrackerCapacity bounds the drift trackers for the same reason the
// advice cache is bounded; each tracker holds a schema, up to a drift
// window of logged queries, and the current advice.
const DefaultTrackerCapacity = 1024

// Service is a long-running, concurrent partitioning advisor: it answers
// workload questions from a fingerprint-keyed advice cache, computes misses
// by fanning the portfolio out over the parallel search kernel, and watches
// per-table query streams for drift. All methods are safe for concurrent
// use.
// adviceKey identifies one cached advice computation: the workload
// fingerprint plus the canonical key of the model that priced it. The same
// workload priced on a different device is a different question — without
// the model key, an SSD request could be answered with HDD advice.
type adviceKey struct {
	fp    Fingerprint
	model string
}

type Service struct {
	cfg   Config
	model cost.Model
	// modelKey canonically identifies the configured model for cache
	// keying; per-request model specs resolve their own keys.
	modelKey string
	// store persists tracker state; jn is its journal-before-apply hook
	// (nil when the store does not journal, so the hot path skips event
	// construction entirely).
	store statestore.Store
	jn    *journal

	// The caches and the tracker registry are FIFO-bounded maps; the
	// caches are rebuildable from searches and deliberately NOT journaled,
	// the trackers are the durable state.
	mu             sync.Mutex
	entries        *statestore.FIFO[adviceKey, *entry]
	trackers       *statestore.FIFO[string, *Tracker]
	replayEntries  *statestore.FIFO[replayKey, *replayEntry]
	execEntries    *statestore.FIFO[execKey, *execEntry]
	migrateEntries *statestore.FIFO[migrateKey, *migrateEntry]
	// observeSeen is the redelivery-dedup window: recently applied batch
	// IDs and their outcomes, so a client retry after a lost response
	// answers the original ingest instead of double-counting.
	observeSeen *statestore.FIFO[string, *observeDedupEntry]

	// ing is the sharded observe-ingest stage: every observation batch
	// funnels through it so concurrent batches share group commits.
	ing *ingester

	// tm holds the telemetry handles; the zero value (no registry) leaves
	// them nil and every instrumentation point free.
	tm svcMetrics

	requests    atomic.Int64 // table advice requests answered
	hits        atomic.Int64 // answered from cache without searching
	searches    atomic.Int64 // portfolio searches actually run
	recomputes  atomic.Int64 // drift-triggered recomputations
	replays     atomic.Int64 // table replay requests answered
	replayHits  atomic.Int64 // replays answered from cache without executing
	migrations  atomic.Int64 // migration requests answered
	migrateHits atomic.Int64 // migrations answered from cache without executing

	// Batch-accurate observation counters: queries observed (not HTTP
	// requests), observation batches applied, and group commits — so
	// ingest and shed rates stay meaningful under batching.
	observedQueries atomic.Int64
	observeBatches  atomic.Int64
	ingestGroups    atomic.Int64
	observeDups     atomic.Int64 // batched observes answered from the dedup window
}

// entry computes one workload's advice at most once. The service mutex only
// guards the map; the expensive portfolio search runs under the entry's
// once, so different workloads compute concurrently and identical
// concurrent requests collapse into one search.
type entry struct {
	once   sync.Once
	advice TableAdvice
	err    error
}

// NewService returns an empty advisor service. It accepts only
// non-journaling stores (nil, or statestore.NewMem()); a daemon opening a
// durable store uses OpenService, whose recovery can fail.
func NewService(cfg Config) *Service {
	s, err := OpenService(cfg)
	if err != nil {
		// Unreachable without a journaling store: recovery is the only
		// error source, and a non-journaling store recovers nothing.
		panic(fmt.Sprintf("advisor: NewService with a journaling store: %v (use OpenService)", err))
	}
	return s
}

// OpenService builds an advisor service on its configured state store and
// rebuilds a drift tracker for every table the store recovered. Tables
// journaled under a different pricing model than the service now runs are
// dropped (and their reset journaled): their advice, drift pricing, and
// migration plans all belong to hardware the daemon no longer models.
func OpenService(cfg Config) (*Service, error) {
	m := cfg.Model
	if m == nil {
		m = cost.NewHDD(cost.DefaultDisk())
	}
	if !(cfg.DriftThreshold > 0) { // negated compare also catches NaN
		cfg.DriftThreshold = DefaultDriftThreshold
	}
	if cfg.DriftWindow == 0 {
		cfg.DriftWindow = DefaultDriftWindow
	}
	if cfg.CacheCapacity == 0 {
		cfg.CacheCapacity = DefaultCacheCapacity
	}
	if cfg.TrackerCapacity == 0 {
		cfg.TrackerCapacity = DefaultTrackerCapacity
	}
	if cfg.ReplayCacheCapacity == 0 {
		cfg.ReplayCacheCapacity = DefaultReplayCacheCapacity
	}
	if cfg.MigrateWindow == 0 {
		cfg.MigrateWindow = migrate.DefaultWindow
	}
	if cfg.MigrateCacheCapacity == 0 {
		cfg.MigrateCacheCapacity = DefaultMigrateCacheCapacity
	}
	switch cfg.DriftTracking {
	case "", TrackExact, TrackSketch:
	default:
		return nil, fmt.Errorf("advisor: unknown drift tracking mode %q (want %q or %q)",
			cfg.DriftTracking, TrackExact, TrackSketch)
	}
	if cfg.SketchCapacity == 0 {
		cfg.SketchCapacity = DefaultSketchCapacity
	}
	if cfg.IngestShards == 0 {
		cfg.IngestShards = DefaultIngestShards
	}
	if cfg.IngestGroup == 0 {
		cfg.IngestGroup = DefaultIngestGroup
	}
	st := cfg.Store
	if st == nil {
		st = statestore.NewMem()
	}
	s := &Service{
		cfg:            cfg,
		model:          m,
		modelKey:       modelKeyOf(m),
		store:          st,
		jn:             newJournal(st),
		entries:        statestore.NewFIFO[adviceKey, *entry](cfg.CacheCapacity),
		trackers:       statestore.NewFIFO[string, *Tracker](cfg.TrackerCapacity),
		replayEntries:  statestore.NewFIFO[replayKey, *replayEntry](cfg.ReplayCacheCapacity),
		execEntries:    statestore.NewFIFO[execKey, *execEntry](cfg.ReplayCacheCapacity),
		migrateEntries: statestore.NewFIFO[migrateKey, *migrateEntry](cfg.MigrateCacheCapacity),
		observeSeen:    statestore.NewFIFO[string, *observeDedupEntry](DefaultObserveDedupWindow),
	}
	for _, ts := range st.Recovered() {
		if ts.ModelKey != s.modelKey {
			// Best-effort: a failed reset append leaves the entry in the
			// journal, where the fold resets it at the table's next
			// EvAdviseCommit (and this same check drops it again on the
			// next restart) — it never resurrects into a live tracker.
			if s.jn != nil {
				_ = s.jn.append(statestore.Event{Type: statestore.EvReset, Table: ts.Table.Name})
			}
			continue
		}
		t, err := s.recoverTracker(ts)
		if err != nil {
			return nil, err
		}
		// A recovered set larger than TrackerCapacity (the daemon restarted
		// with a smaller bound) trims oldest-first, like live registration.
		for _, old := range s.trackers.Evictions(ts.Table.Name) {
			if s.jn != nil {
				_ = s.jn.append(statestore.Event{Type: statestore.EvReset, Table: old})
			}
			s.trackers.Drop(old)
		}
		s.trackers.Insert(ts.Table.Name, t)
	}
	s.ing = newIngester(s, cfg.IngestShards, cfg.IngestGroup)
	if cfg.Telemetry != nil {
		s.tm.bind(cfg.Telemetry, s)
	}
	return s, nil
}

// Close snapshots the state store (compacting the journal) and closes it.
// Call it on daemon shutdown, after in-flight requests drained.
func (s *Service) Close() error {
	snapErr := s.store.Snapshot()
	if err := s.store.Close(); err != nil {
		return err
	}
	return snapErr
}

// Stats is a snapshot of the service counters.
type Stats struct {
	Requests int64 `json:"requests"`
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	// Searches counts portfolio searches whose result was served, seeded,
	// or installed. O2P shadow runs and the rare drift recompute whose
	// install lost a race are kernel work this counter does not include.
	Searches   int64 `json:"searches"`
	Recomputes int64 `json:"recomputes"`
	Cached     int   `json:"cached_entries"`
	Tracked    int   `json:"tracked_tables"`
	// Replays counts replay requests answered; ReplayHits the ones served
	// from the report cache without materializing anything.
	Replays       int64 `json:"replays"`
	ReplayHits    int64 `json:"replay_hits"`
	CachedReplays int   `json:"cached_replays"`
	// Migrations counts migration requests answered; MigrateHits the ones
	// served from the outcome cache without planning or executing.
	Migrations       int64 `json:"migrations"`
	MigrateHits      int64 `json:"migrate_hits"`
	CachedMigrations int   `json:"cached_migrations"`
	// Shed counts requests refused with 429 by the server's admission gate.
	// The Service itself never sheds; the serving layer fills this in.
	Shed int64 `json:"shed"`
	// ObservedQueries counts QUERIES ingested by observation batches —
	// not HTTP requests — so ingest rates stay meaningful under batching.
	// ObserveBatches counts the applied batches, and IngestGroups the
	// group commits they coalesced into (groups <= batches; the gap is
	// the amortization the sharded ingest stage bought).
	ObservedQueries int64 `json:"observed_queries"`
	ObserveBatches  int64 `json:"observe_batches"`
	IngestGroups    int64 `json:"ingest_groups"`
	// DuplicateBatches counts batched observes answered from the dedup
	// window without re-ingesting (redeliveries of an applied batch ID).
	DuplicateBatches int64 `json:"duplicate_batches"`
	// Recovery reports what the journaling store replayed at open —
	// snapshot coverage, segments scanned, records replayed, torn-tail and
	// skip counts. Nil for an in-memory (non-journaling) service.
	Recovery *statestore.RecoveryReport `json:"recovery,omitempty"`
}

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	cached, tracked, cachedReplays, cachedMigrations := s.entries.Len(), s.trackers.Len(), s.replayEntries.Len(), s.migrateEntries.Len()
	s.mu.Unlock()
	// Load hits before requests: a request increments requests first, so
	// this order can only overcount misses, never report a negative count.
	hits := s.hits.Load()
	req := s.requests.Load()
	replayHits := s.replayHits.Load()
	replays := s.replays.Load()
	migrateHits := s.migrateHits.Load()
	migrations := s.migrations.Load()
	var recovery *statestore.RecoveryReport
	if s.store.Journaling() {
		rep := s.store.Report()
		recovery = &rep
	}
	return Stats{
		Recovery:         recovery,
		Requests:         req,
		Hits:             hits,
		Misses:           req - hits,
		Searches:         s.searches.Load(),
		Recomputes:       s.recomputes.Load(),
		Cached:           cached,
		Tracked:          tracked,
		Replays:          replays,
		ReplayHits:       replayHits,
		CachedReplays:    cachedReplays,
		Migrations:       migrations,
		MigrateHits:      migrateHits,
		CachedMigrations: cachedMigrations,
		ObservedQueries:  s.observedQueries.Load(),
		ObserveBatches:   s.observeBatches.Load(),
		IngestGroups:     s.ingestGroups.Load(),
		DuplicateBatches: s.observeDups.Load(),
	}
}

// lookup returns the cache entry for an advice key, creating it if absent.
// Hit/miss attribution is NOT decided here — it belongs to whoever wins
// the entry's once and actually runs the search. Evicted entries that a
// request is currently resolving still complete through their retained
// *entry pointer; they are simply no longer findable.
func (s *Service) lookup(k adviceKey) *entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries.Get(k)
	if !ok {
		e = &entry{}
		s.entries.Insert(k, e)
	}
	return e
}

// AdviseTable answers one table workload, from cache when the fingerprint
// has been answered before. The second return reports whether the answer
// came from cache (no search kernel invocation by this call).
func (s *Service) AdviseTable(tw schema.TableWorkload) (TableAdvice, bool, error) {
	return s.AdviseTableContext(context.Background(), tw)
}

// AdviseTableContext is AdviseTable under a request context: the deadline
// propagates through the portfolio's search-slot waits.
func (s *Service) AdviseTableContext(ctx context.Context, tw schema.TableWorkload) (TableAdvice, bool, error) {
	advice, _, hit, err := s.adviseTableAs(ctx, tw, s.model, s.modelKey)
	return advice, hit, err
}

// adviseTable is AdviseTable plus the fingerprint the answer is cached
// under, so the HTTP layer can render it without hashing the workload a
// second time.
func (s *Service) adviseTable(ctx context.Context, tw schema.TableWorkload) (TableAdvice, Fingerprint, bool, error) {
	return s.adviseTableAs(ctx, tw, s.model, s.modelKey)
}

// adviseTableAs answers one table workload under an explicit pricing model
// (a wire request's resolved ModelSpec, or the service default). Cache
// entries are scoped to (fingerprint, model key), so the same workload
// priced on different devices never shares advice.
//
// The context governs the search-slot waits of the requester that WINS the
// entry's once; a canceled winner's error entry is dropped like any failed
// computation, so a later request recomputes cleanly. Losers blocked on the
// once wait for the winner regardless of their own deadlines — the wait is
// bounded by one search, and the handler's deadline still bounds the whole
// request.
func (s *Service) adviseTableAs(ctx context.Context, tw schema.TableWorkload, m cost.Model, mkey string) (TableAdvice, Fingerprint, bool, error) {
	if tw.Table == nil {
		return TableAdvice{}, Fingerprint{}, false, fmt.Errorf("advisor: nil table")
	}
	for _, q := range tw.Queries {
		if !(q.Weight >= 0) { // negated compare also rejects NaN
			return TableAdvice{}, Fingerprint{}, false, fmt.Errorf(
				"advisor: query %s has invalid weight %v (it would corrupt the cost comparison)", q.ID, q.Weight)
		}
	}
	// Zero weights price as 1 (the ForTable convention) and fingerprint as
	// 1; searching with the raw workload would let two differently-priced
	// workloads share a cache entry.
	tw = normalizeWeights(tw)
	t0 := time.Now()
	s.requests.Add(1)
	fp := FingerprintOf(tw)
	key := adviceKey{fp: fp, model: mkey}
	e := s.lookup(key)
	ran := false
	e.once.Do(func() {
		ran = true
		s.searches.Add(1)
		sctx, sp := telemetry.StartSpan(ctx, "portfolio-search "+tw.Table.Name)
		tSearch := time.Now()
		e.advice, e.err = AdviseTableContext(sctx, tw, m)
		sp.End()
		s.tm.search.Since(tSearch)
	})
	// Attribution is by who ran the search, not who created the entry: a
	// concurrent requester can find the entry yet win the once race and do
	// the work, while the creator blocks and gets the cached result. "Hit"
	// must always mean "did not run the kernel".
	hit := !ran
	if e.err != nil {
		// Failed computations must not poison the cache key forever.
		s.mu.Lock()
		if cur, ok := s.entries.Get(key); ok && cur == e {
			s.entries.Drop(key)
		}
		s.mu.Unlock()
		return TableAdvice{}, fp, false, e.err
	}
	if hit {
		s.hits.Add(1)
	}
	// Register (for the daemon's own model): the helper preserves a live
	// tracker's observation state when the same workload is re-advised,
	// restores evicted trackers (the documented ErrNotRegistered remedy,
	// which must work even while the advice cache still answers), and
	// resets on a genuinely different registration.
	//
	// Requests priced on a per-request model are WHAT-IF questions: they
	// are answered (and cached) under their own device key but must not
	// touch the tracker — a read-shaped exploratory /advise on SSD would
	// otherwise wipe the accumulated drift log and rebind the applied
	// layout of a store the daemon tracks on its configured hardware. A
	// client that wants tracked SSD tables runs the daemon with -model ssd.
	if mkey == s.modelKey {
		// A journal-append failure surfaces as the request's error: the
		// registration was not applied (journal-before-apply), the advice
		// entry stays cached, and the client's retry re-attempts exactly
		// the registration.
		if err := s.registerTracker(tw, e.advice, fp, m, mkey); err != nil {
			return TableAdvice{}, fp, false, err
		}
	}
	if hit {
		s.tm.adviseHit.Since(t0)
	} else {
		s.tm.adviseMiss.Since(t0)
	}
	return e.advice, fp, hit, nil
}

// registerTracker creates or refreshes the drift tracker for a table after
// advice was answered. Trackers are keyed by table NAME and the last
// registration wins: a client advising a different workload under an
// existing name takes the name over, exactly like re-creating a table in a
// database. Re-advising the workload the tracker is already registered
// with (matched by fingerprint, NOT by cache residency — the advice cache
// may have evicted the entry independently) is a no-op that preserves the
// accumulated observation log and any in-flight recompute. Clients sharing
// a knivesd must own their table names; the tracker's in-lock validation
// turns the racy window into a clean ErrStaleSchema/ErrBadObservation,
// never garbage pricing.
//
// The tracker map mirrors the advice cache's FIFO bound: each tracker
// holds a schema, a query log, and advice, so an unbounded map would grow
// with every distinct table name for the life of the daemon. Like the
// cache's order slice, trackerOrder lists exactly the live tracker names,
// oldest registration first, each once.
// Every durable mutation here journals BEFORE it applies, under the same
// s.mu that orders it, so the journal's event order is the apply order:
// evictions append their EvReset and drop one at a time, then the new
// registration appends its EvAdviseCommit and inserts. A failed append
// returns with journal and memory still agreeing on everything already
// applied.
func (s *Service) registerTracker(tw schema.TableWorkload, advice TableAdvice, fp Fingerprint, m cost.Model, mkey string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.trackers.Get(tw.Table.Name)
	if !ok {
		for _, old := range s.trackers.Evictions(tw.Table.Name) {
			if s.jn != nil {
				if err := s.jn.append(statestore.Event{Type: statestore.EvReset, Table: old}); err != nil {
					return err
				}
			}
			s.trackers.Drop(old)
		}
		if s.jn != nil {
			if err := s.jn.append(commitEvent(tw, advice, fp, mkey)); err != nil {
				return err
			}
		}
		s.trackers.Insert(tw.Table.Name,
			newTracker(tw, advice, m, mkey, s.cfg.DriftThreshold, s.cfg.DriftWindow, fp, s.jn, s.cfg.newPricer()))
		return nil
	}
	// The fingerprint check and reset happen under s.mu so they always
	// apply to the LIVE tracker: with the lock released in between, an
	// eviction + re-registration could swap the map entry and this reset
	// would mutate an orphan while the live tracker kept another
	// workload's state. Tracker methods take only t.mu and never s.mu, so
	// holding s.mu across them cannot deadlock.
	if t.matches(fp, mkey) {
		return nil // an already-covered workload re-advised: keep the state
	}
	return t.setAdvice(tw, advice, fp, m, mkey)
}

// AdviseBenchmark answers every table of a benchmark, fanning tables out
// concurrently. Advice is sorted by table name; hits[i] corresponds to
// advice[i].
func (s *Service) AdviseBenchmark(b *schema.Benchmark) ([]TableAdvice, []bool, error) {
	if b == nil {
		return nil, nil, fmt.Errorf("advisor: nil benchmark")
	}
	tws := b.TableWorkloads()
	advice := make([]TableAdvice, len(tws))
	hits := make([]bool, len(tws))
	err := fanOut(len(tws), func(i int) error {
		var err error
		advice[i], hits[i], err = s.AdviseTable(tws[i])
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	// Sort advice and hit flags together by table name.
	idx := make([]int, len(advice))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool {
		return advice[idx[i]].Table.Name < advice[idx[j]].Table.Name
	})
	sortedAdvice := make([]TableAdvice, len(advice))
	sortedHits := make([]bool, len(hits))
	for i, k := range idx {
		sortedAdvice[i] = advice[k]
		sortedHits[i] = hits[k]
	}
	return sortedAdvice, sortedHits, nil
}

// Observe streams a batch of queries for a registered table into its drift
// tracker. If the advised layout has drifted past the threshold, the advice
// is recomputed from the observed log, the tracker updated, and the fresh
// advice cached under the observed workload's fingerprint.
func (s *Service) Observe(table string, queries []schema.TableQuery) (DriftReport, error) {
	return s.ObserveContext(context.Background(), table, queries)
}

// ObserveContext is Observe under a request context: the deadline covers
// the shadow search's slot wait and a drift recompute's portfolio fan-out.
// Weight 0 is coerced to 1 during the tracker's validation — the same
// convention /advise applies — so both observation endpoints agree.
// The batch rides the sharded ingest stage: concurrent batches for tables
// on the same shard coalesce into one group-committed WAL append.
func (s *Service) ObserveContext(ctx context.Context, table string, queries []schema.TableQuery) (DriftReport, error) {
	t, err := s.tracker(table)
	if err != nil {
		return DriftReport{}, err
	}
	// An empty batch changes nothing: answer the tracker's counters
	// without journaling a no-op event or entering the ingest stage.
	if len(queries) == 0 {
		return t.report(), nil
	}
	return s.ing.submit(ctx, &ingestJob{tracker: t, table: table, numeric: queries})
}

// ObserveNamed is Observe for queries carrying column names; resolution
// happens inside the tracker lock, against the table's current schema.
func (s *Service) ObserveNamed(table string, named []ObservedQry) (DriftReport, error) {
	return s.ObserveNamedContext(context.Background(), table, named)
}

// ObserveNamedContext is ObserveNamed under a request context.
func (s *Service) ObserveNamedContext(ctx context.Context, table string, named []ObservedQry) (DriftReport, error) {
	t, err := s.tracker(table)
	if err != nil {
		return DriftReport{}, err
	}
	if len(named) == 0 {
		return t.report(), nil
	}
	return s.ing.submit(ctx, &ingestJob{tracker: t, table: table, named: named})
}

// ObserveOutcome is one batch entry's result from ObserveBatch.
type ObserveOutcome struct {
	Table string
	Rep   DriftReport
	Err   error
}

// ObserveBatch ingests many tables' observation batches from one request.
// Entries fail independently — outcome i always answers batches[i].
// Distinct tables are submitted concurrently, so one request's batches
// land in the ingest stage together and coalesce into shared group
// commits; repeated entries for the SAME table are submitted in slice
// order, preserving that table's apply order.
func (s *Service) ObserveBatch(ctx context.Context, batches []TableObservation) []ObserveOutcome {
	out := make([]ObserveOutcome, len(batches))
	byTable := make(map[string][]int, len(batches))
	var tables []string // first-appearance order of distinct tables
	for i, b := range batches {
		out[i].Table = b.Table
		if _, ok := byTable[b.Table]; !ok {
			tables = append(tables, b.Table)
		}
		byTable[b.Table] = append(byTable[b.Table], i)
	}
	var wg sync.WaitGroup
	for _, tbl := range tables {
		wg.Add(1)
		go func(tbl string, idxs []int) {
			defer wg.Done()
			for _, i := range idxs {
				out[i].Rep, out[i].Err = s.ObserveNamedContext(ctx, tbl, batches[i].Queries)
			}
		}(tbl, byTable[tbl])
	}
	wg.Wait()
	return out
}

// ErrNotRegistered reports an operation on a table no drift tracker covers
// — never advised, or evicted past TrackerCapacity. The remedy is to
// advise the table (again).
var ErrNotRegistered = errors.New("advisor: table is not registered")

// tracker looks up the drift tracker of a registered table.
func (s *Service) tracker(table string) (*Tracker, error) {
	s.mu.Lock()
	t, ok := s.trackers.Get(table)
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q (advise on it first)", ErrNotRegistered, table)
	}
	return t, nil
}

// afterObserve books a drift recompute into the stats and the cache, and
// evicts the replay reports the recompute invalidated.
func (s *Service) afterObserve(rep DriftReport, rec *recomputedAdvice, err error) (DriftReport, error) {
	if err != nil {
		return rep, err
	}
	if rep.Recomputed && rec != nil {
		s.recomputes.Add(1)
		s.searches.Add(1) // the tracker ran a portfolio search
		// The advice was computed for exactly rec.snapshot under
		// rec.modelKey's device, so the pairing is safe to cache even if
		// newer batches have since moved the tracker.
		e := &entry{advice: rec.advice}
		e.once.Do(func() {}) // mark resolved
		snapFP := FingerprintOf(rec.snapshot)
		s.mu.Lock()
		s.entries.Insert(adviceKey{fp: snapFP, model: rec.modelKey}, e)
		// A recompute means the advice this tracker serves MOVED: replay
		// reports cached under the fingerprint it covered until now (and
		// under the snapshot's own key, if a client replayed it while an
		// older advice entry answered it) describe a layout the daemon no
		// longer advises. Without this eviction, a post-drift /replay
		// would serve the stale layout's report from cache.
		s.replayEntries.DropFunc(func(k replayKey) bool {
			return k.fp == rec.prevFP || k.fp == snapFP
		})
		// Executions cache the advised layout too — same staleness, same
		// eviction.
		s.execEntries.DropFunc(func(k execKey) bool {
			return k.fp == rec.prevFP || k.fp == snapFP
		})
		s.mu.Unlock()
	}
	return rep, nil
}

// CurrentAdvice returns the tracked advice for a registered table.
func (s *Service) CurrentAdvice(table string) (TableAdvice, error) {
	t, err := s.tracker(table)
	if err != nil {
		return TableAdvice{}, err
	}
	return t.Advice(), nil
}

// CurrentState returns the tracked advice for a registered table together
// with the fingerprint of the workload it currently covers.
func (s *Service) CurrentState(table string) (TableAdvice, Fingerprint, error) {
	t, err := s.tracker(table)
	if err != nil {
		return TableAdvice{}, Fingerprint{}, err
	}
	advice, tw := t.State()
	return advice, FingerprintOf(tw), nil
}

// TrackedTables returns the names of tables with drift trackers, sorted.
func (s *Service) TrackedTables() []string {
	s.mu.Lock()
	names := s.trackers.Keys()
	s.mu.Unlock()
	sort.Strings(names)
	return names
}
