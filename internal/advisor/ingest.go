package advisor

import (
	"context"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"knives/internal/schema"
	"knives/internal/statestore"
	"knives/internal/telemetry"
)

// DefaultIngestShards is how many independent ingest shards the service
// runs. Tables hash to a shard by name, so one table's batches are always
// applied in submission order while unrelated tables proceed in parallel.
const DefaultIngestShards = 8

// DefaultIngestGroup caps how many pending batches one shard leader drains
// into a single group commit — bounding both the WAL buffer one commit
// frames and the latency of the batch at the head of a long queue.
const DefaultIngestGroup = 64

// ingestJob is one observation batch riding the ingest stage: exactly one
// of numeric/named is set. The submitter blocks on done; the shard leader
// fills rep/err before closing it.
type ingestJob struct {
	tracker *Tracker
	table   string // shard routing key: the registered table name
	numeric []schema.TableQuery
	named   []ObservedQry
	ctx     context.Context

	queries []schema.TableQuery // validated batch, set by the leader
	rep     DriftReport
	err     error
	done    chan struct{}
}

// ingester is the sharded, group-committing observation ingest stage.
//
// There are no standing worker goroutines: each shard is a combining
// queue. A submitter appends its job and, if no leader is active, becomes
// the leader — draining everything pending (its own job included), group-
// committing the batches in ONE WAL append with one fsync, applying them
// under their trackers' locks, then running one coalesced drift check per
// table. Batches that arrive while a leader works queue up and are drained
// by its next round (or by their own submitter once the leader retires),
// so commit groups grow exactly when the WAL is the bottleneck — classic
// group commit — and an idle service holds no goroutines at all.
//
// Lock discipline: the leader may hold several trackers' mutexes at once
// (all tables of one group). That cannot deadlock: every other code path
// takes at most one tracker mutex, and a tracker's table name routes to
// exactly one shard, whose groups are processed by one leader at a time —
// no two goroutines ever wait on each other's tracker sets. Holding the
// locks across journal+apply keeps each table's journal order equal to its
// apply order, the invariant recovery depends on; the per-event cost under
// the lock is O(batch), never O(window), and the fsync is shared by the
// whole group.
type ingester struct {
	svc    *Service
	group  int
	shards []*ingestShard
}

type ingestShard struct {
	mu      sync.Mutex
	pending []*ingestJob
	leading bool
}

func newIngester(svc *Service, shards, group int) *ingester {
	if shards <= 0 {
		shards = DefaultIngestShards
	}
	if group <= 0 {
		group = DefaultIngestGroup
	}
	in := &ingester{svc: svc, group: group, shards: make([]*ingestShard, shards)}
	for i := range in.shards {
		in.shards[i] = &ingestShard{}
	}
	return in
}

// submit enqueues one batch and waits for its group's commit and drift
// verdict. The context bounds the drift searches, not the ingestion: once
// a job is pending its group WILL process it (at-least-once ingest), so an
// expired deadline surfaces as the drift check's error, never as a batch
// silently dropped from the queue.
func (in *ingester) submit(ctx context.Context, job *ingestJob) (DriftReport, error) {
	t0 := time.Now()
	ctx, sp := telemetry.StartSpan(ctx, "ingest "+job.table)
	job.ctx = ctx
	job.done = make(chan struct{})
	h := fnv.New32a()
	h.Write([]byte(job.table))
	sh := in.shards[h.Sum32()%uint32(len(in.shards))]

	sh.mu.Lock()
	sh.pending = append(sh.pending, job)
	lead := !sh.leading
	if lead {
		sh.leading = true
	}
	sh.mu.Unlock()
	if lead {
		in.lead(sh)
	}
	<-job.done
	sp.End()
	in.svc.tm.ingestWait.Since(t0)
	return job.rep, job.err
}

// lead drains the shard until its queue is empty, processing up to group
// jobs per round. Exactly one leader runs per shard at a time; retiring
// and the next submitter's takeover are ordered by the shard mutex.
func (in *ingester) lead(sh *ingestShard) {
	for {
		sh.mu.Lock()
		n := len(sh.pending)
		if n == 0 {
			sh.leading = false
			sh.mu.Unlock()
			return
		}
		if n > in.group {
			n = in.group
		}
		group := sh.pending[:n:n]
		sh.pending = sh.pending[n:]
		sh.mu.Unlock()
		in.process(group)
	}
}

// process commits and applies one group: validate every batch under its
// tracker's lock, journal all valid batches in ONE WAL append, apply them,
// snapshot drift inputs, release the locks, then run one coalesced drift
// check per distinct tracker. Per-batch failures (validation, or the whole
// group's journal append) surface on the owning jobs; one bad batch never
// poisons its groupmates.
func (in *ingester) process(group []*ingestJob) {
	svc := in.svc

	// Distinct trackers in first-appearance order; lock each once. Jobs
	// for the same table share a tracker, so the group's job order IS the
	// per-table apply order.
	var order []*Tracker
	locked := make(map[*Tracker]bool, len(group))
	for _, job := range group {
		if !locked[job.tracker] {
			locked[job.tracker] = true
			order = append(order, job.tracker)
			job.tracker.mu.Lock()
		}
	}

	var events []statestore.Event
	valid := group[:0:0]
	for _, job := range group {
		switch {
		case job.numeric != nil:
			job.queries, job.err = job.tracker.validateLocked(job.numeric)
		default:
			job.queries, job.err = job.tracker.resolveNamedLocked(job.named)
		}
		if job.err != nil || len(job.queries) == 0 {
			continue
		}
		valid = append(valid, job)
		if svc.jn != nil {
			events = append(events, statestore.Event{
				Type:    statestore.EvObserve,
				Table:   job.tracker.table.Name,
				Queries: toQueryRecs(job.queries),
			})
		}
	}

	// Group commit: journal-before-apply for the whole group at once. On
	// failure NOTHING is applied — journal and memory still agree — and
	// every valid job reports the retryable journal error.
	if svc.jn != nil && len(events) > 0 {
		if err := svc.jn.appendBatch(events); err != nil {
			for _, job := range valid {
				job.err = err
			}
			valid = valid[:0]
		}
	}

	byTracker := make(map[*Tracker][]*ingestJob, len(order))
	for _, job := range valid {
		job.tracker.ingestLocked(job.queries)
		svc.observedQueries.Add(int64(len(job.queries)))
		svc.observeBatches.Add(1)
		byTracker[job.tracker] = append(byTracker[job.tracker], job)
	}
	inputs := make(map[*Tracker]driftInput, len(byTracker))
	for t := range byTracker {
		inputs[t] = t.driftInputLocked()
	}
	for _, t := range order {
		t.mu.Unlock()
	}
	if len(valid) > 0 {
		svc.ingestGroups.Add(1)
		svc.tm.groupBatches.Observe(float64(len(valid)))
		nq := 0
		for _, job := range valid {
			nq += len(job.queries)
		}
		svc.tm.groupQueries.Observe(float64(nq))
	}

	// One coalesced drift check per table, fanned out across the group's
	// tables — the expensive shadow searches never serialize behind each
	// other or block the shard queue's locks.
	var wg sync.WaitGroup
	for t, jobs := range byTracker {
		wg.Add(1)
		go func(t *Tracker, jobs []*ingestJob) {
			defer wg.Done()
			ctxs := make([]context.Context, len(jobs))
			for i, job := range jobs {
				ctxs[i] = job.ctx
			}
			ctx, stop := mergeContexts(ctxs)
			tDrift := time.Now()
			rep, rec, err := t.priceDrift(ctx, inputs[t])
			drift := time.Since(tDrift).Seconds()
			svc.tm.driftCheck.Observe(drift)
			if rep.Recomputed {
				svc.tm.driftRecompute.Observe(drift)
			}
			stop()
			rep, err = svc.afterObserve(rep, rec, err)
			for _, job := range jobs {
				job.rep, job.err = rep, err
			}
		}(t, jobs)
	}
	wg.Wait()
	for _, job := range group {
		close(job.done)
	}
}

// mergeContexts returns a context canceled only when EVERY member context
// is done: a coalesced drift check keeps running while at least one of the
// batches it answers still has a live requester. The stop function
// releases the watchers (and the merged context) — call it when done.
func mergeContexts(ctxs []context.Context) (context.Context, func()) {
	if len(ctxs) == 1 {
		return ctxs[0], func() {}
	}
	merged, cancel := context.WithCancel(context.Background())
	var live atomic.Int32
	live.Store(int32(len(ctxs)))
	stops := make([]func() bool, 0, len(ctxs))
	for _, c := range ctxs {
		stops = append(stops, context.AfterFunc(c, func() {
			if live.Add(-1) == 0 {
				cancel()
			}
		}))
	}
	return merged, func() {
		for _, stop := range stops {
			stop()
		}
		cancel()
	}
}
