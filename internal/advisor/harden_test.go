package advisor

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"knives/internal/algo"
	"knives/internal/faultinject"
	"knives/internal/statestore"
	"knives/internal/vfs"
)

// holdSearchGate takes every process-wide search slot, so any advise that
// reaches the portfolio fan-out parks on the gate until release is called.
// This is the test's handle on "a request is slow": no sleeps, no fake
// workloads, the real blocking point.
func holdSearchGate(t *testing.T) (release func()) {
	t.Helper()
	slots := runtime.GOMAXPROCS(0)
	for i := 0; i < slots; i++ {
		algo.AcquireSearchSlot()
	}
	var released atomic.Bool
	release = func() {
		if released.CompareAndSwap(false, true) {
			for i := 0; i < slots; i++ {
				algo.ReleaseSearchSlot()
			}
		}
	}
	t.Cleanup(release)
	return release
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func postAdvise(ts *httptest.Server) (*http.Response, error) {
	b, err := json.Marshal(eventsRequest())
	if err != nil {
		return nil, err
	}
	return ts.Client().Post(ts.URL+"/advise", "application/json", bytes.NewReader(b))
}

// A server at MaxInFlight=1 with no queue must shed the second concurrent
// request with 429 + Retry-After while the first is parked on the search
// gate — and the first must still complete normally once unparked.
func TestServerAdmissionSheds429(t *testing.T) {
	svc, err := OpenService(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServerWith(svc, ServerConfig{
		MaxInFlight: 1, MaxQueue: 0, RetryAfter: 2 * time.Second,
	}))
	defer ts.Close()
	release := holdSearchGate(t)

	type result struct {
		status int
		err    error
	}
	first := make(chan result, 1)
	go func() {
		resp, err := postAdvise(ts)
		if err != nil {
			first <- result{0, err}
			return
		}
		resp.Body.Close()
		first <- result{resp.StatusCode, nil}
	}()
	// The request counter ticks before the fan-out parks on the gate, so
	// Requests >= 1 means the admission slot is held.
	waitFor(t, "first request to occupy the slot", func() bool { return svc.Stats().Requests >= 1 })

	resp, err := postAdvise(ts)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second concurrent request: status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", got)
	}

	release()
	if r := <-first; r.err != nil || r.status != http.StatusOK {
		t.Fatalf("in-flight request after release: status %d, err %v", r.status, r.err)
	}

	client := NewClient(ts.URL)
	client.HTTPClient = ts.Client()
	st, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Shed != 1 {
		t.Errorf("stats shed = %d, want 1", st.Shed)
	}
}

// A request that cannot finish inside the server's deadline answers 503 —
// and the GET endpoints stay reachable while it is stuck.
func TestServerRequestTimeout503(t *testing.T) {
	svc, err := OpenService(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServerWith(svc, ServerConfig{RequestTimeout: 50 * time.Millisecond}))
	defer ts.Close()
	defer holdSearchGate(t)()

	resp, err := postAdvise(ts)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("deadline-bound request: status %d, want 503", resp.StatusCode)
	}

	// Liveness is ungated: it must answer even with the gate saturated.
	hz, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Errorf("healthz during overload: status %d", hz.StatusCode)
	}
}

// A canceled request must unblock every portfolio worker parked on the
// search gate and leave no goroutines behind.
func TestAdviseContextCancelReleasesWaiters(t *testing.T) {
	b, err := eventsRequest().Materialize()
	if err != nil {
		t.Fatal(err)
	}
	tw := b.TableWorkloads()[0]
	release := holdSearchGate(t)

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := AdviseTableContext(ctx, tw, nil)
		done <- err
	}()
	waitFor(t, "fan-out workers to park on the gate", func() bool {
		return runtime.NumGoroutine() > before
	})

	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled advise returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled advise never returned while the gate was full")
	}
	// Every worker must exit without a slot ever being released to them.
	waitFor(t, "fan-out goroutines to drain", func() bool {
		return runtime.NumGoroutine() <= before
	})
	release()
}

// The retry policy's contract: transient statuses (429, 503) and transport
// errors retry with backoff, request faults (400) and plain server bugs
// (500) do not, and the zero value means exactly one attempt.
func TestClientRetryPolicy(t *testing.T) {
	newStub := func(t *testing.T, script []int) (*Client, *atomic.Int64) {
		t.Helper()
		var calls atomic.Int64
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			n := int(calls.Add(1))
			status := http.StatusOK
			if n <= len(script) {
				status = script[n-1]
			}
			if status != http.StatusOK {
				if status == http.StatusTooManyRequests {
					// A deliberately huge hint: MaxDelay must cap it, or
					// this test takes an hour.
					w.Header().Set("Retry-After", "3600")
				}
				writeError(w, status, fmt.Errorf("scripted %d", status))
				return
			}
			writeJSON(w, AdviseResponse{})
		}))
		t.Cleanup(ts.Close)
		c := NewClient(ts.URL)
		c.HTTPClient = ts.Client()
		c.Retry = RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
		return c, &calls
	}

	t.Run("503 then 429 then success", func(t *testing.T) {
		c, calls := newStub(t, []int{503, 429})
		start := time.Now()
		if _, err := c.Advise(context.Background(), AdviseRequest{}); err != nil {
			t.Fatalf("retried request failed: %v", err)
		}
		if got := calls.Load(); got != 3 {
			t.Errorf("server saw %d calls, want 3", got)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Errorf("retries took %v; MaxDelay did not cap the Retry-After hint", elapsed)
		}
	})
	t.Run("400 is final", func(t *testing.T) {
		c, calls := newStub(t, []int{400})
		if _, err := c.Advise(context.Background(), AdviseRequest{}); err == nil {
			t.Fatal("scripted 400 reported success")
		}
		if got := calls.Load(); got != 1 {
			t.Errorf("server saw %d calls for a 400, want 1", got)
		}
	})
	t.Run("500 is final", func(t *testing.T) {
		c, calls := newStub(t, []int{500})
		if _, err := c.Advise(context.Background(), AdviseRequest{}); err == nil {
			t.Fatal("scripted 500 reported success")
		}
		if got := calls.Load(); got != 1 {
			t.Errorf("server saw %d calls for a 500, want 1", got)
		}
	})
	t.Run("zero policy means one attempt", func(t *testing.T) {
		c, calls := newStub(t, []int{503})
		c.Retry = RetryPolicy{}
		if _, err := c.Advise(context.Background(), AdviseRequest{}); err == nil {
			t.Fatal("single-attempt client reported success through a 503")
		}
		if got := calls.Load(); got != 1 {
			t.Errorf("server saw %d calls, want 1", got)
		}
	})
	t.Run("exhausted attempts surface the last error", func(t *testing.T) {
		c, calls := newStub(t, []int{503, 503, 503, 503, 503, 503})
		if _, err := c.Advise(context.Background(), AdviseRequest{}); err == nil {
			t.Fatal("always-503 server reported success")
		}
		if got := calls.Load(); got != 5 {
			t.Errorf("server saw %d calls, want MaxAttempts=5", got)
		}
	})
}

// The end-to-end degradation contract: against a store whose disk fails
// scheduled writes, a retrying client finishes every request with zero
// failures, journal failures surface as 503 (not 500), and the final
// service state still equals the store's fold bit for bit.
func TestServerJournalFaultsRetriedToZeroFailures(t *testing.T) {
	dir := t.TempDir()
	fsys, err := vfs.Dir(dir)
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(fsys,
		faultinject.FailNthWrite(2),
		faultinject.FailNthWrite(5),
		faultinject.FailNthWrite(9),
		faultinject.FailNthSync(4),
	)
	st, err := statestore.Open(inj, statestore.Options{DriftWindow: 16, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := OpenService(Config{Store: st, DriftWindow: 16})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServerWith(svc, ServerConfig{}))
	defer ts.Close()
	client := NewClient(ts.URL)
	client.HTTPClient = ts.Client()
	client.Retry = RetryPolicy{MaxAttempts: 6, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}

	ctx := context.Background()
	if _, err := client.Advise(ctx, eventsRequest()); err != nil {
		t.Fatalf("advise through fault schedule: %v", err)
	}
	for i := 0; i < 8; i++ {
		if _, err := client.Observe(ctx, ObserveRequest{
			Table:   "events",
			Queries: []ObservedQry{{Attrs: []string{"a", "c"}}},
		}); err != nil {
			t.Fatalf("observe %d through fault schedule: %v", i, err)
		}
	}

	// The faults really fired (otherwise this test proves nothing) ...
	if inj.Injected() == 0 {
		t.Fatal("fault schedule never fired; widen it")
	}
	// ... and journal and memory still agree exactly.
	if !bytes.Equal(normalized(svc.ExportState()), normalized(st.Export())) {
		t.Fatal("service state diverged from store fold after retried faults")
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}
