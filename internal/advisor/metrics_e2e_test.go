package advisor

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"knives/internal/faultinject"
	"knives/internal/statestore"
	"knives/internal/telemetry"
	"knives/internal/vfs"
)

// Regression: a request whose deadline expires answered 503 WITHOUT the
// Retry-After hint, even though the client's RetryPolicy honors it on 503
// exactly like on 429. The hint must ride every 503.
func TestServer503RetryAfterOnExpiredDeadline(t *testing.T) {
	svc, err := OpenService(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServerWith(svc, ServerConfig{
		RequestTimeout: 50 * time.Millisecond,
		RetryAfter:     3 * time.Second,
	}))
	defer ts.Close()
	defer holdSearchGate(t)()

	resp, err := postAdvise(ts)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("deadline-bound request: status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Errorf("503 Retry-After = %q, want \"3\"", got)
	}
}

// Regression for the observe path: a journal append failure surfaces as 503
// through observeStatus, and that 503 must carry Retry-After too. Write #1
// is the registration's EvAdviseCommit append; write #2 — scheduled to fail
// — is the first observation batch's group commit.
func TestServer503RetryAfterOnJournalError(t *testing.T) {
	fsys, err := vfs.Dir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(fsys, faultinject.FailNthWrite(2))
	st, err := statestore.Open(inj, statestore.Options{DriftWindow: 16, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := OpenService(Config{Store: st, DriftWindow: 16})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServerWith(svc, ServerConfig{RetryAfter: 2 * time.Second}))
	defer ts.Close()

	if resp, err := postAdvise(ts); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("registering advise: status %v, err %v", resp.StatusCode, err)
	}
	body := `{"table":"events","queries":[{"attrs":["a","c"]}]}`
	resp, err := ts.Client().Post(ts.URL+"/observe", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("observe through failed append: status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("503 Retry-After = %q, want \"2\"", got)
	}
	if inj.Injected() == 0 {
		t.Fatal("journal fault never fired; the 503 came from somewhere else")
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// sampleValue finds one sample line ("name 12" or "name{labels} 12") in a
// Prometheus exposition and returns its value.
func sampleValue(t *testing.T, expo, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(expo, "\n") {
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name+" ")), 64)
			if err != nil {
				t.Fatalf("sample %s: %v", name, err)
			}
			return v
		}
	}
	t.Fatalf("no sample %q in exposition:\n%s", name, expo)
	return 0
}

// telemetryServer builds the full wired daemon the way cmd/knivesd does:
// one registry shared by the statestore (WAL metrics), the service (cache,
// search, ingest metrics), and the server (request histograms, /metrics).
func telemetryServer(t *testing.T, reg *telemetry.Registry) (*httptest.Server, *Service) {
	t.Helper()
	fsys, err := vfs.Dir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st, err := statestore.Open(fsys, statestore.Options{DriftWindow: 16, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := OpenService(Config{Store: st, DriftWindow: 16, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServerWith(svc, ServerConfig{
		Telemetry:   reg,
		EnablePprof: true,
		// Every request is "slow" at 1ns: the tracing + render path runs on
		// each request, logging into the void.
		SlowRequest: time.Nanosecond,
		SlowLog:     log.New(io.Discard, "", 0),
	}))
	t.Cleanup(ts.Close)
	return ts, svc
}

// The acceptance smoke: a fully wired daemon serves /metrics in strict
// Prometheus text format, with non-zero WAL fsync, ingest group-size, and
// request-latency histograms after an advise + a few observes — and /stats
// carries the store's recovery report.
func TestServerMetricsEndToEnd(t *testing.T) {
	reg := telemetry.NewRegistry()
	ts, svc := telemetryServer(t, reg)
	client := NewClient(ts.URL)
	client.HTTPClient = ts.Client()

	ctx := context.Background()
	if _, err := client.Advise(ctx, eventsRequest()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := client.Observe(ctx, ObserveRequest{
			Table:   "events",
			Queries: []ObservedQry{{Attrs: []string{"a", "c"}}},
		}); err != nil {
			t.Fatalf("observe %d: %v", i, err)
		}
	}
	// One vector-mode /query so the execution metrics (rows, exec-seconds,
	// batch fill ratios) carry samples in the scrape below.
	qreq := queryRequest()
	qreq.Exec = "vector"
	qreq.BatchSize = 64
	qres, err := client.Query(ctx, qreq)
	if err != nil {
		t.Fatal(err)
	}
	var queryRows int64
	for _, p := range qres.Reports[0].Pipelines {
		queryRows += p.ResultRows
	}
	if queryRows == 0 {
		t.Fatal("vector /query emitted no rows; fill-ratio samples would be vacuous")
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	expo := string(b)
	if err := telemetry.CheckExposition(expo); err != nil {
		t.Fatalf("exposition fails strict check: %v\n%s", err, expo)
	}

	for name, min := range map[string]float64{
		"knives_requests_total":                              1,
		"knives_searches_total":                              1,
		"knives_observe_batches_total":                       3,
		"knives_wal_fsync_seconds_count":                     1,
		"knives_wal_append_seconds_count":                    1,
		"knives_ingest_group_batches_count":                  1,
		"knives_ingest_wait_seconds_count":                   3,
		"knives_drift_check_seconds_count":                   1,
		"knives_advise_miss_seconds_count":                   1,
		"knives_search_seconds_count":                        1,
		`knives_http_request_seconds_count{path="/advise"}`:  1,
		`knives_http_request_seconds_count{path="/observe"}`: 3,
		`knives_http_request_seconds_count{path="/query"}`:   1,
		"knives_tracked_tables":                              1,
		// The vector /query's per-query execution telemetry: one sample per
		// pipeline in the exec histogram, the summed result rows in the
		// counter, and at least one batch-fill observation per pipeline.
		"knives_query_rows_total":               float64(queryRows),
		"knives_query_exec_seconds_count":       float64(len(qres.Reports[0].Pipelines)),
		"knives_query_batch_fill_ratio_count":   float64(len(qres.Reports[0].Pipelines)),
		`knives_operator_rows_total{op="scan"}`: 1,
	} {
		if got := sampleValue(t, expo, name); got < min {
			t.Errorf("%s = %v, want >= %v", name, got, min)
		}
	}
	// Fill ratios land in (0, 1].
	if got := sampleValue(t, expo, "knives_query_batch_fill_ratio_sum"); got <= 0 ||
		got > sampleValue(t, expo, "knives_query_batch_fill_ratio_count") {
		t.Errorf("batch fill ratio sum %v outside (0, count]", got)
	}
	// The recovery gauges exist from startup (an empty store recovered
	// nothing — the gauge is the report, zero included).
	if got := sampleValue(t, expo, "knives_recovery_records"); got != 0 {
		t.Errorf("fresh store recovered %v records", got)
	}

	// The same report rides /stats as JSON for journaling services.
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Recovery == nil {
		t.Fatal("journaling service /stats has no recovery report")
	}

	// pprof answers on its operator-enabled mount.
	pp, err := ts.Client().Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: status %d", pp.StatusCode)
	}

	if err := svc.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// The -race gate for the telemetry layer: scrapes, stats reads, and
// observation ingest hammer the same registry concurrently; every scrape
// must stay parseable under the strict checker.
func TestServerConcurrentScrapeWhileIngesting(t *testing.T) {
	reg := telemetry.NewRegistry()
	ts, svc := telemetryServer(t, reg)
	client := NewClient(ts.URL)
	client.HTTPClient = ts.Client()

	ctx := context.Background()
	if _, err := client.Advise(ctx, eventsRequest()); err != nil {
		t.Fatal(err)
	}

	const writers, scrapers, rounds = 4, 4, 8
	var wg sync.WaitGroup
	errs := make(chan error, writers+scrapers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				_, err := client.Observe(ctx, ObserveRequest{
					Table:   "events",
					Queries: []ObservedQry{{Attrs: []string{"a", "c"}, Weight: float64(w + 1)}},
				})
				if err != nil {
					errs <- fmt.Errorf("writer %d round %d: %w", w, r, err)
					return
				}
			}
		}(w)
	}
	for s := 0; s < scrapers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				resp, err := ts.Client().Get(ts.URL + "/metrics")
				if err != nil {
					errs <- fmt.Errorf("scraper %d round %d: %w", s, r, err)
					return
				}
				b, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if err := telemetry.CheckExposition(string(b)); err != nil {
					errs <- fmt.Errorf("scrape %d/%d unparseable: %w", s, r, err)
					return
				}
				if _, err := client.Stats(ctx); err != nil {
					errs <- err
					return
				}
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := sampleValue(t, reg.String(), "knives_observe_batches_total"); got != writers*rounds {
		t.Errorf("observe_batches_total = %v, want %d", got, writers*rounds)
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}
