package advisor

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"knives/internal/telemetry"
)

// Server exposes a Service over HTTP:
//
//	POST /advise   workload in, per-table advice out (fingerprint cache)
//	POST /replay   workload in -> advise, materialize, replay, report
//	POST /observe  stream queries for a registered table (drift tracking)
//	POST /migrate  plan + execute-and-verify a drift-triggered re-layout
//	               of a registered table (fingerprint-pair cache)
//	GET  /advice?table=NAME   current tracked advice for one table
//	GET  /tables   registered table names
//	GET  /stats    service counters
//	GET  /healthz  liveness
//
// The handler is safe for concurrent use; every request body is limited to
// maxBodyBytes.
type Server struct {
	svc *Service
	mux *http.ServeMux
	cfg ServerConfig
	adm *admission

	// Per-endpoint request latency and the admission wait; nil (free)
	// without ServerConfig.Telemetry.
	httpHist map[string]*telemetry.Histogram
	admWait  *telemetry.Histogram
}

const maxBodyBytes = 8 << 20

// ServerConfig bounds the work one server accepts. The zero value imposes
// no limits — exactly the pre-hardening behavior.
type ServerConfig struct {
	// RequestTimeout bounds each POST request end to end; 0 means no
	// deadline. The deadline cancels waits (admission queue, search slots),
	// not computations already running — see AdviseTableContext.
	RequestTimeout time.Duration
	// MaxInFlight caps concurrently executing POST requests; 0 means
	// unlimited (admission control off).
	MaxInFlight int
	// MaxQueue is how many requests beyond MaxInFlight may wait for a slot
	// before the server starts shedding with 429. Only meaningful when
	// MaxInFlight > 0.
	MaxQueue int
	// RetryAfter is the hint sent in the Retry-After header on 429 and 503;
	// 0 means one second.
	RetryAfter time.Duration
	// Telemetry, when set, mounts GET /metrics (Prometheus text format)
	// and records per-endpoint request latency and admission wait
	// histograms. Share the registry with the Service and statestore so
	// one scrape covers the daemon end to end.
	Telemetry *telemetry.Registry
	// EnablePprof mounts net/http/pprof under GET /debug/pprof/ on the
	// server's own mux. Off by default: profiling endpoints expose heap
	// and goroutine dumps and belong behind an operator's decision.
	EnablePprof bool
	// SlowRequest, when positive, traces every hardened request and logs a
	// span breakdown (where the budget went: admission, search-gate waits,
	// per-algorithm searches, ingest) for requests that take at least this
	// long. Zero disables tracing entirely — the untraced span fast path
	// is a single context lookup.
	SlowRequest time.Duration
	// SlowLog receives slow-request reports; nil uses log.Default().
	SlowLog *log.Logger
}

// NewServer wraps a Service in an http.Handler with no request limits.
func NewServer(svc *Service) *Server {
	return NewServerWith(svc, ServerConfig{})
}

// NewServerWith wraps a Service with overload protection: the four POST
// endpoints (the ones that search, materialize, or journal) run under the
// config's deadline and admission gate. The GET endpoints stay ungated so
// liveness and stats remain observable while the server sheds load.
func NewServerWith(svc *Service, cfg ServerConfig) *Server {
	s := &Server{svc: svc, mux: http.NewServeMux(), cfg: cfg, adm: newAdmission(cfg.MaxInFlight, cfg.MaxQueue)}
	if reg := cfg.Telemetry; reg != nil {
		reg.SetHelp("knives_http_request_seconds", "Hardened request latency end to end, by endpoint.")
		reg.SetHelp("knives_admission_wait_seconds", "Time spent acquiring an admission slot (gated servers only).")
		s.httpHist = make(map[string]*telemetry.Histogram)
		for _, path := range []string{"/advise", "/replay", "/query", "/observe", "/migrate"} {
			s.httpHist[path] = reg.Histogram(`knives_http_request_seconds{path="` + path + `"}`)
		}
		s.admWait = reg.Histogram("knives_admission_wait_seconds")
		reg.CounterFunc("knives_shed_total", s.adm.shedCount)
		s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	}
	if cfg.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	s.mux.HandleFunc("POST /advise", s.harden("/advise", s.handleAdvise))
	s.mux.HandleFunc("POST /replay", s.harden("/replay", s.handleReplay))
	s.mux.HandleFunc("POST /query", s.harden("/query", s.handleQuery))
	s.mux.HandleFunc("POST /observe", s.harden("/observe", s.handleObserve))
	s.mux.HandleFunc("POST /migrate", s.harden("/migrate", s.handleMigrate))
	s.mux.HandleFunc("GET /advice", s.handleAdvice)
	s.mux.HandleFunc("GET /tables", s.handleTables)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// harden applies the request deadline, the admission gate, and (when
// configured) latency accounting and slow-request tracing to one POST
// handler. Shed requests answer 429 with a Retry-After hint; a deadline
// that expires while still queued answers 503 (the request did no work and
// a retry is safe) — with the same Retry-After hint, since the client's
// backoff policy honors it on both statuses.
func (s *Server) harden(path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		defer s.httpHist[path].Since(t0)
		if s.cfg.SlowRequest > 0 {
			ctx, tr := telemetry.NewTrace(r.Context(), r.Method+" "+path)
			r = r.WithContext(ctx)
			defer func() {
				if d := tr.Elapsed(); d >= s.cfg.SlowRequest {
					s.slowLog().Printf("slow request: %s took %s\n%s",
						tr.Name, d.Round(time.Millisecond), tr.Render())
				}
			}()
		}
		if s.cfg.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		if s.adm != nil {
			actx, sp := telemetry.StartSpan(r.Context(), "admission-wait")
			tAdm := time.Now()
			err := s.adm.acquire(actx)
			sp.End()
			s.admWait.Since(tAdm)
			if err != nil {
				if errors.Is(err, ErrShed) {
					s.retryHint(w)
					writeError(w, http.StatusTooManyRequests, err)
					return
				}
				s.retryHint(w)
				writeError(w, http.StatusServiceUnavailable, fmt.Errorf("advisor: request expired waiting for admission: %w", err))
				return
			}
			defer s.adm.release()
		}
		h(w, r)
	}
}

// retryHint stamps the configured Retry-After pacing hint; sent on every
// 429 and 503 so a backing-off client always has a pace to follow.
func (s *Server) retryHint(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
}

// slowLog returns the slow-request logger.
func (s *Server) slowLog() *log.Logger {
	if s.cfg.SlowLog != nil {
		return s.cfg.SlowLog
	}
	return log.Default()
}

// retryAfterSeconds renders the Retry-After hint in whole seconds, at
// least 1 (a zero hint would invite an immediate stampede).
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// writeJSON renders a 200 response body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError renders an error body with the given status.
func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// writeServiceError classifies an error from the service layer: a request
// whose deadline expired (or whose client went away) answers 503 — the
// server is telling the truth about being too slow under the given budget,
// and the work-in-progress still lands in the caches for a retry. A failed
// journal append is 503 too: the mutation was not applied, the WAL
// self-heals, and a retry is exactly what ErrJournal asks for. Every 503
// carries the Retry-After pacing hint — the client's backoff honors it, and
// a shed burst retrying unpaced 503s would stampede. Anything else is a 500.
func (s *Server) writeServiceError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) || errors.Is(err, ErrJournal) {
		s.retryHint(w)
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeError(w, http.StatusInternalServerError, err)
}

// decodeBody parses a bounded JSON request body: exactly one document,
// unknown fields and trailing data rejected — a concatenated second batch
// silently dropped would read as ingested.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("advisor: bad request body: %w", err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return fmt.Errorf("advisor: bad request body: trailing data after JSON document")
	}
	return nil
}

// writeDecodeError classifies a decodeBody failure: an over-limit body is
// 413 (splitting the batch can succeed), anything else is 400 (retrying
// the same payload cannot).
func writeDecodeError(w http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		writeError(w, http.StatusRequestEntityTooLarge, err)
		return
	}
	writeError(w, http.StatusBadRequest, err)
}

func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	var req AdviseRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeDecodeError(w, err)
		return
	}
	// The model spec resolves once per request (400 on unknown names or
	// NaN/Inf/non-positive overrides) and scopes every cache the request
	// touches.
	m, mkey, err := s.svc.modelFor(req.Model)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	b, err := req.Materialize()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Fan the tables out over the parallel kernel; the response keeps the
	// request's table order.
	tws := b.TableWorkloads()
	wires := make([]TableAdviceWire, len(tws))
	err = fanOut(len(tws), func(i int) error {
		advice, fp, cached, err := s.svc.adviseTableAs(r.Context(), tws[i], m, mkey)
		if err != nil {
			return err
		}
		wires[i] = toWire(advice, fp, cached)
		return nil
	})
	if err != nil {
		s.writeServiceError(w, err)
		return
	}
	writeJSON(w, AdviseResponse{Advice: wires})
}

func (s *Server) handleReplay(w http.ResponseWriter, r *http.Request) {
	var req ReplayRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeDecodeError(w, err)
		return
	}
	opt := ReplayOptions{MaxRows: req.MaxRows, Seed: req.Seed, Workers: req.Workers}
	if err := opt.validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	m, mkey, err := s.svc.modelFor(req.Model)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	b, err := req.advise().Materialize()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Fan the tables out, as /advise does; the response keeps the request's
	// table order.
	tws := b.TableWorkloads()
	wires := make([]TableReplayWire, len(tws))
	err = fanOut(len(tws), func(i int) error {
		rep, fp, cached, err := s.svc.replayTableAs(r.Context(), tws[i], opt, m, mkey)
		if err != nil {
			return err
		}
		wires[i] = toReplayWire(rep, fp, cached)
		return nil
	})
	if err != nil {
		if errors.Is(err, ErrBadReplay) {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		s.writeServiceError(w, err)
		return
	}
	writeJSON(w, ReplayResponse{Reports: wires})
}

// handleQuery answers POST /query: advise, materialize, and EXECUTE the
// workload as σ/π/⋈ operator pipelines, decomposing each query's measured
// cost into per-operator terms. A selection, when present, applies only to
// its named table; other tables execute unfiltered.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeDecodeError(w, err)
		return
	}
	opt := ReplayOptions{
		MaxRows: req.MaxRows, Seed: req.Seed, Workers: req.Workers,
		ExecMode: req.Exec, BatchSize: req.BatchSize, ExecWorkers: req.ExecWorkers,
	}
	if err := opt.validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	m, mkey, err := s.svc.modelFor(req.Model)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	b, err := req.advise().Materialize()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	tws := b.TableWorkloads()
	if sel := req.Selection; sel != nil {
		if sel.Table == "" || sel.Column == "" {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("%w: selection needs both table and column", ErrBadReplay))
			return
		}
		found := false
		for _, tw := range tws {
			if tw.Table.Name == sel.Table {
				found = true
				break
			}
		}
		if !found {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("%w: selection table %q not in workload", ErrBadReplay, sel.Table))
			return
		}
	}
	wires := make([]TableExecWire, len(tws))
	err = fanOut(len(tws), func(i int) error {
		var sel *ExecSelection
		if req.Selection != nil && req.Selection.Table == tws[i].Table.Name {
			sel = &ExecSelection{Column: req.Selection.Column, Bound: req.Selection.Bound}
		}
		rep, fp, cached, err := s.svc.execTableAs(r.Context(), tws[i], opt, sel, m, mkey)
		if err != nil {
			return err
		}
		wires[i] = toExecWire(rep, fp, cached)
		return nil
	})
	if err != nil {
		if errors.Is(err, ErrBadReplay) {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		s.writeServiceError(w, err)
		return
	}
	writeJSON(w, QueryResponse{Reports: wires})
}

// observeStatus maps an observe-path error to the HTTP status the
// single-table path answers with: 400 for a bad observation (the same
// payload would fail again), 404 for an unregistered table (advise it
// first), 409 for a schema the observation no longer matches (the client's
// to fix by re-advising), 503 for an expired deadline or a failed journal
// append (nothing was applied; retry), 500 otherwise.
func observeStatus(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, ErrBadObservation):
		return http.StatusBadRequest
	case errors.Is(err, ErrNotRegistered):
		return http.StatusNotFound
	case errors.Is(err, ErrStaleSchema):
		return http.StatusConflict
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled), errors.Is(err, ErrJournal):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	var req ObserveRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeDecodeError(w, err)
		return
	}
	if len(req.Batches) > 0 {
		s.observeBatched(w, r, req)
		return
	}
	// Names resolve inside the tracker lock, against the table's current
	// schema — resolving here against a snapshot would race a concurrent
	// re-registration and silently rebind names to different columns. All
	// per-query validation (weights, empty attrs) lives there too, so the
	// rules have one source of truth.
	rep, err := s.svc.ObserveNamedContext(r.Context(), req.Table, req.Queries)
	if err != nil {
		status := observeStatus(err)
		if status == http.StatusServiceUnavailable {
			s.retryHint(w)
		}
		writeError(w, status, err)
		return
	}
	current, fp, err := s.svc.CurrentState(req.Table)
	if err != nil {
		// The tracker can be evicted between Observe and this read.
		if errors.Is(err, ErrNotRegistered) {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, ObserveResponse{Drift: rep, Advice: toWire(current, fp, false)})
}

// observeBatched answers the batched shape of POST /observe: every entry is
// ingested (entries fail independently), the response is 200 with one
// verdict per entry carrying the status the same failure would earn on the
// single-table path.
func (s *Server) observeBatched(w http.ResponseWriter, r *http.Request, req ObserveRequest) {
	if req.Table != "" || len(req.Queries) > 0 {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("advisor: batched observe excludes the single-table fields (table/queries)"))
		return
	}
	outs, dup, err := s.svc.ObserveBatchID(r.Context(), req.BatchID, req.Batches)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	verdicts := make([]TableObserveVerdict, len(outs))
	for i, o := range outs {
		v := TableObserveVerdict{Table: o.Table, Status: observeStatus(o.Err)}
		if o.Err != nil {
			v.Error = o.Err.Error()
			verdicts[i] = v
			continue
		}
		current, fp, err := s.svc.CurrentState(o.Table)
		if err != nil {
			// The tracker can be evicted between the ingest and this read;
			// the entry WAS applied, so report the read failure, not a 200.
			v.Status = observeStatus(err)
			v.Error = err.Error()
			verdicts[i] = v
			continue
		}
		v.Drift = o.Rep
		v.Advice = toWire(current, fp, false)
		verdicts[i] = v
	}
	writeJSON(w, ObserveResponse{Verdicts: verdicts, Duplicate: dup})
}

func (s *Server) handleMigrate(w http.ResponseWriter, r *http.Request) {
	var req MigrateRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeDecodeError(w, err)
		return
	}
	if req.Table == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("advisor: migrate request names no table"))
		return
	}
	out, cached, err := s.svc.MigrateTable(req.Table, MigrateOptions{
		Window: req.Window, MaxRows: req.MaxRows, Seed: req.Seed, Workers: req.Workers,
	})
	if err != nil {
		switch {
		case errors.Is(err, ErrBadMigrate):
			writeError(w, http.StatusBadRequest, err)
		case errors.Is(err, ErrNotRegistered):
			writeError(w, http.StatusNotFound, err)
		default:
			s.writeServiceError(w, err)
		}
		return
	}
	writeJSON(w, toMigrationWire(out, cached))
}

func (s *Server) handleAdvice(w http.ResponseWriter, r *http.Request) {
	table := r.URL.Query().Get("table")
	if table == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("advisor: missing table query parameter"))
		return
	}
	advice, fp, err := s.svc.CurrentState(table)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, toWire(advice, fp, false))
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string][]string{"tables": s.svc.TrackedTables()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.svc.Stats()
	st.Shed = s.adm.shedCount()
	writeJSON(w, st)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

// handleMetrics renders the shared registry in the Prometheus text format.
// Mounted only when ServerConfig.Telemetry is set; like the GET endpoints
// it is ungated, so a scraper keeps seeing the daemon while it sheds load.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = s.cfg.Telemetry.WritePrometheus(w)
}
