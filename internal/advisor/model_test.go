package advisor

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"knives/internal/cost"
)

// The wire-layer validation satellite: every device-parameter override a
// request can carry is validated — NaN, infinite, and non-positive values
// resolve to ErrBadModel, which the HTTP layer maps to 400.
func TestModelSpecValidation(t *testing.T) {
	svc := NewService(Config{})
	bad := []ModelSpec{
		{Name: "tape"},
		{Name: "hdd", BlockBytes: -1},
		{Name: "hdd", BufferBytes: -8},
		{Name: "hdd", CacheLine: -64},
		{Name: "ssd", ReadBW: -1},
		{Name: "ssd", ReadBW: math.NaN()},
		{Name: "ssd", ReadBW: math.Inf(1)},
		{Name: "mm", MissSeconds: math.Inf(-1)},
		{Name: "mm", SeekSeconds: math.NaN()},
		{Name: "hdd", WriteBW: -2},
	}
	for _, spec := range bad {
		spec := spec
		if _, _, err := svc.modelFor(&spec); !errors.Is(err, ErrBadModel) {
			t.Errorf("modelFor(%+v) = %v, want ErrBadModel", spec, err)
		}
	}

	// A nil or zero spec is the daemon's configured model.
	m, key, err := svc.modelFor(nil)
	if err != nil || m != svc.model || key != svc.modelKey {
		t.Errorf("nil spec resolved to %v/%q (%v)", m, key, err)
	}
	if _, _, err := svc.modelFor(&ModelSpec{}); err != nil {
		t.Errorf("zero spec rejected: %v", err)
	}

	// A named spec resolves the preset; overrides apply; overrides without
	// a name overlay the daemon's own device.
	ssd, key, err := svc.modelFor(&ModelSpec{Name: "ssd", BufferBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	dev := ssd.(*cost.DeviceModel).Device()
	if dev.Name != "SSD" || dev.BufferSize != 1<<20 {
		t.Errorf("ssd spec resolved to %+v", dev)
	}
	if key == svc.modelKey {
		t.Error("SSD spec shares the default model's cache key")
	}
	local, _, err := svc.modelFor(&ModelSpec{SeekSeconds: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if d := local.(*cost.DeviceModel).Device(); d.Name != "HDD" || d.SeekTime != 1e-3 {
		t.Errorf("nameless override resolved to %+v", d)
	}
}

// Bad model specs on the wire must answer 400, and a valid SSD spec must
// flow through /advise and /replay end to end — with the replay exact at
// zero tolerance on the SSD device, and cached separately from the same
// workload priced on the daemon's default HDD.
func TestServerModelSpecEndToEnd(t *testing.T) {
	_, svc, client := newTestServer(t, Config{})
	ctx := context.Background()

	for _, spec := range []*ModelSpec{
		{Name: "tape"},
		{Name: "hdd", BufferBytes: -1},
		{Name: "ssd", ReadBW: -5},
	} {
		req := eventsRequest()
		req.Model = spec
		_, err := client.Advise(ctx, req)
		if err == nil || !strings.Contains(err.Error(), "status 400") {
			t.Errorf("advise with bad spec %+v: err = %v, want 400", spec, err)
		}
		rreq := ReplayRequest{Tables: req.Tables, Queries: req.Queries, MaxRows: 500, Model: spec}
		if _, err := client.Replay(ctx, rreq); err == nil || !strings.Contains(err.Error(), "status 400") {
			t.Errorf("replay with bad spec %+v: err = %v, want 400", spec, err)
		}
	}

	// Advise the same workload under the default (HDD) and under SSD: both
	// succeed, and they occupy separate cache entries (an SSD answer must
	// never be served from the HDD entry or vice versa).
	if _, err := client.Advise(ctx, eventsRequest()); err != nil {
		t.Fatal(err)
	}
	ssdReq := eventsRequest()
	ssdReq.Model = &ModelSpec{Name: "ssd"}
	first, err := client.Advise(ctx, ssdReq)
	if err != nil {
		t.Fatal(err)
	}
	if first.Advice[0].Cached {
		t.Error("first SSD advise claims a cache hit — it shared the HDD entry")
	}
	again, err := client.Advise(ctx, ssdReq)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Advice[0].Cached {
		t.Error("repeated SSD advise missed its own cache entry")
	}

	// A per-request model is a what-if question: it must not register or
	// reset the drift tracker the default-model advice created. If it did,
	// the observed count would restart and the tracked advice would flip to
	// the SSD answer.
	obs := []ObservedQry{{Attrs: []string{"a", "b"}}}
	first2, err := client.Observe(ctx, ObserveRequest{Table: "events", Queries: obs})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Advise(ctx, ssdReq); err != nil {
		t.Fatal(err)
	}
	after, err := client.Observe(ctx, ObserveRequest{Table: "events", Queries: obs})
	if err != nil {
		t.Fatal(err)
	}
	if after.Drift.Observed != first2.Drift.Observed+1 {
		t.Errorf("observed count %d after SSD what-if advise, want %d — the tracker was reset",
			after.Drift.Observed, first2.Drift.Observed+1)
	}

	// The SSD replay: measured must equal predicted bit for bit on the
	// flash device too.
	rep, err := client.Replay(ctx, ReplayRequest{
		Tables:  ssdReq.Tables,
		Queries: ssdReq.Queries,
		MaxRows: 2_000,
		Model:   &ModelSpec{Name: "ssd"},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Reports[0]
	if r.Model != "SSD" {
		t.Errorf("replay priced on %s, want SSD", r.Model)
	}
	if !r.Exact {
		t.Errorf("SSD replay not exact: measured %v predicted %v", r.MeasuredSeconds, r.PredictedSeconds)
	}
	if svc.Stats().Replays == 0 {
		t.Error("replay not counted")
	}
}
