package advisor

import (
	"sync"
	"testing"

	"knives/internal/attrset"
	"knives/internal/cost"
	"knives/internal/schema"
)

// wideTable builds a table of four equally wide columns: co-access patterns
// on it translate directly into layout (and drift) decisions.
func wideTable(t *testing.T) *schema.Table {
	t.Helper()
	tab, err := schema.NewTable("events", 1_000_000, []schema.Column{
		{Name: "a", Kind: schema.KindChar, Size: 100},
		{Name: "b", Kind: schema.KindChar, Size: 100},
		{Name: "c", Kind: schema.KindChar, Size: 100},
		{Name: "d", Kind: schema.KindChar, Size: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// coAccessWorkload references a and b strictly together.
func coAccessWorkload(tab *schema.Table) schema.TableWorkload {
	return schema.TableWorkload{Table: tab, Queries: []schema.TableQuery{
		{ID: "q1", Weight: 1, Attrs: attrset.Of(0, 1)},
		{ID: "q2", Weight: 1, Attrs: attrset.Of(0, 1)},
		{ID: "q3", Weight: 1, Attrs: attrset.Of(2, 3)},
	}}
}

func TestServiceCacheHitSkipsSearchKernel(t *testing.T) {
	svc := NewService(Config{})
	tw := coAccessWorkload(wideTable(t))

	first, hit, err := svc.AdviseTable(tw)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first request reported a cache hit")
	}
	if got := svc.Stats(); got.Searches != 1 || got.Hits != 0 || got.Requests != 1 {
		t.Errorf("after miss: %+v", got)
	}

	second, hit, err := svc.AdviseTable(tw)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("identical request missed the cache")
	}
	if got := svc.Stats(); got.Searches != 1 {
		t.Errorf("cache hit ran the search kernel: %+v", got)
	}
	if first.Cost != second.Cost || !first.Layout.Equal(second.Layout) {
		t.Error("cached advice differs from computed advice")
	}

	// A different workload over the same table is a different fingerprint.
	other := schema.TableWorkload{Table: tw.Table, Queries: []schema.TableQuery{
		{ID: "q", Weight: 1, Attrs: attrset.Of(0, 2)},
	}}
	if _, hit, err = svc.AdviseTable(other); err != nil {
		t.Fatal(err)
	} else if hit {
		t.Error("different workload hit the cache")
	}
	if got := svc.Stats(); got.Searches != 2 || got.Cached != 2 {
		t.Errorf("after second workload: %+v", got)
	}
}

// Concurrent identical requests must collapse into exactly one search: the
// entry's once is claimed by a single goroutine and everyone else blocks on
// the result.
func TestServiceConcurrentIdenticalRequestsSearchOnce(t *testing.T) {
	svc := NewService(Config{})
	tw := coAccessWorkload(wideTable(t))
	const clients = 16
	advice := make([]TableAdvice, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			advice[i], _, errs[i] = svc.AdviseTable(tw)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		if advice[i].Cost != advice[0].Cost || !advice[i].Layout.Equal(advice[0].Layout) {
			t.Errorf("client %d got different advice", i)
		}
	}
	if got := svc.Stats(); got.Searches != 1 {
		t.Errorf("%d concurrent identical requests ran %d searches, want 1", clients, got.Searches)
	}
}

// Drift injection: advice computed for a co-access workload goes stale when
// the live stream starts touching a and b separately; the tracker's O2P
// shadow notices and the advice is recomputed.
func TestServiceDriftInvalidatesStaleAdvice(t *testing.T) {
	svc := NewService(Config{DriftThreshold: 0.15, DriftWindow: 8})
	tab := wideTable(t)
	tw := coAccessWorkload(tab)

	stale, _, err := svc.AdviseTable(tw)
	if err != nil {
		t.Fatal(err)
	}
	// The advised layout must keep a and b together for the drift below to
	// be a real regression (this is what the co-access workload forces).
	if got := stale.Layout.PartOf(0); !got.Has(1) {
		t.Fatalf("precondition: advice %s does not co-locate a and b", stale.Layout)
	}

	// Live traffic shifts: a and b are now only ever read alone, so every
	// query drags the other 100-byte column along for nothing (~2x cost).
	single := []schema.TableQuery{
		{ID: "s1", Weight: 1, Attrs: attrset.Of(0)},
		{ID: "s2", Weight: 1, Attrs: attrset.Of(1)},
	}
	var recomputed bool
	var last DriftReport
	for batch := 0; batch < 8 && !recomputed; batch++ {
		last, err = svc.Observe(tab.Name, single)
		if err != nil {
			t.Fatal(err)
		}
		recomputed = last.Recomputed
	}
	if !recomputed {
		t.Fatalf("advice never recomputed; last drift ratio %v (threshold %v)", last.Ratio, last.Threshold)
	}
	if got := svc.Stats(); got.Recomputes < 1 {
		t.Errorf("stats did not count the recompute: %+v", got)
	}

	fresh, err := svc.CurrentAdvice(tab.Name)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Layout.Equal(stale.Layout) {
		t.Errorf("recomputed advice kept the stale layout %s", stale.Layout)
	}
	if got := fresh.Layout.PartOf(0); got.Has(1) {
		t.Errorf("fresh advice %s still co-locates a and b under single-column traffic", fresh.Layout)
	}
}

// A drift recompute must cache the fresh advice under the fingerprint of
// the exact log snapshot it was computed from, so a later /advise for that
// workload is a hit answering with that advice.
func TestServiceDriftRecomputeCachesSnapshotWorkload(t *testing.T) {
	svc := NewService(Config{DriftThreshold: 0.15, DriftWindow: 8})
	tab := wideTable(t)
	if _, _, err := svc.AdviseTable(coAccessWorkload(tab)); err != nil {
		t.Fatal(err)
	}
	single := []schema.TableQuery{
		{ID: "s1", Weight: 1, Attrs: attrset.Of(0)},
		{ID: "s2", Weight: 1, Attrs: attrset.Of(1)},
	}
	var log []schema.TableQuery
	log = append(log, coAccessWorkload(tab).Queries...)
	recomputed := false
	for batch := 0; batch < 8 && !recomputed; batch++ {
		rep, err := svc.Observe(tab.Name, single)
		if err != nil {
			t.Fatal(err)
		}
		log = append(log, single...)
		recomputed = rep.Recomputed
	}
	if !recomputed {
		t.Fatal("drift never triggered")
	}
	// Reconstruct the windowed log the tracker recomputed from.
	if len(log) > 8 {
		log = log[len(log)-8:]
	}
	snapshot := schema.TableWorkload{Table: tab, Queries: log}
	searchesBefore := svc.Stats().Searches
	advice, hit, err := svc.AdviseTable(snapshot)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("recomputed snapshot workload missed the cache")
	}
	if got := svc.Stats().Searches; got != searchesBefore {
		t.Errorf("cache hit ran a search (%d -> %d)", searchesBefore, got)
	}
	current, err := svc.CurrentAdvice(tab.Name)
	if err != nil {
		t.Fatal(err)
	}
	if advice.Cost != current.Cost || !advice.Layout.Equal(current.Layout) {
		t.Error("cached snapshot advice differs from tracked advice")
	}
}

// Zero weights price as 1 everywhere, so a weight-0 workload and its
// weight-1 twin must share both the fingerprint and the computed advice —
// the search must run on the normalized workload, not the raw one.
func TestServiceNormalizesZeroWeightsBeforeSearching(t *testing.T) {
	svc := NewService(Config{})
	tab := wideTable(t)
	zero := schema.TableWorkload{Table: tab, Queries: []schema.TableQuery{
		{ID: "q1", Weight: 0, Attrs: attrset.Of(0, 1)},
		{ID: "q2", Weight: 1, Attrs: attrset.Of(2, 3)},
	}}
	one := schema.TableWorkload{Table: tab, Queries: []schema.TableQuery{
		{ID: "q1", Weight: 1, Attrs: attrset.Of(0, 1)},
		{ID: "q2", Weight: 1, Attrs: attrset.Of(2, 3)},
	}}
	fromZero, hit, err := svc.AdviseTable(zero)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first request hit the cache")
	}
	fromOne, hit, err := svc.AdviseTable(one)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("weight-1 twin missed the cache")
	}
	want, err := AdviseTable(one, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fromZero.Cost != want.Cost || fromOne.Cost != want.Cost {
		t.Errorf("cached advice cost %v / %v, want the weight-1 pricing %v",
			fromZero.Cost, fromOne.Cost, want.Cost)
	}
}

// The cache is bounded: past the capacity the oldest fingerprints are
// evicted, so a long-running daemon cannot grow without limit.
func TestServiceCacheCapacityEvicts(t *testing.T) {
	svc := NewService(Config{CacheCapacity: 2})
	tab := wideTable(t)
	workloads := make([]schema.TableWorkload, 4)
	for i := range workloads {
		workloads[i] = schema.TableWorkload{Table: tab, Queries: []schema.TableQuery{
			{ID: "q", Weight: float64(i + 1), Attrs: attrset.Of(0, 1)},
		}}
		if _, _, err := svc.AdviseTable(workloads[i]); err != nil {
			t.Fatal(err)
		}
	}
	if got := svc.Stats().Cached; got > 2 {
		t.Errorf("cache holds %d entries, capacity 2", got)
	}
	// The oldest workload was evicted: asking again is a miss (one more
	// search), while the newest is still a hit.
	before := svc.Stats().Searches
	if _, hit, err := svc.AdviseTable(workloads[0]); err != nil {
		t.Fatal(err)
	} else if hit {
		t.Error("evicted workload reported a cache hit")
	}
	if got := svc.Stats().Searches; got != before+1 {
		t.Errorf("evicted workload did not re-search (%d -> %d)", before, got)
	}
	if _, hit, err := svc.AdviseTable(workloads[0]); err != nil {
		t.Fatal(err)
	} else if !hit {
		t.Error("re-inserted workload missed the cache")
	}
}

func TestServiceDefaultDriftWindowIsFinite(t *testing.T) {
	svc := NewService(Config{})
	if svc.cfg.DriftWindow != DefaultDriftWindow {
		t.Errorf("default drift window = %d, want %d", svc.cfg.DriftWindow, DefaultDriftWindow)
	}
	if svc.cfg.TrackerCapacity != DefaultTrackerCapacity {
		t.Errorf("default tracker capacity = %d, want %d", svc.cfg.TrackerCapacity, DefaultTrackerCapacity)
	}
	unbounded := NewService(Config{DriftWindow: -1})
	if unbounded.cfg.DriftWindow >= 0 {
		t.Errorf("negative drift window normalized to %d, want unbounded", unbounded.cfg.DriftWindow)
	}
}

// The trackers map is bounded like the advice cache: past the capacity the
// longest-registered tables lose their trackers and must be re-advised.
func TestServiceTrackerCapacityEvicts(t *testing.T) {
	svc := NewService(Config{TrackerCapacity: 2})
	names := []string{"t1", "t2", "t3"}
	tabs := make([]*schema.Table, len(names))
	for i, name := range names {
		tab, err := schema.NewTable(name, 1000, []schema.Column{
			{Name: "a", Kind: schema.KindChar, Size: 100},
			{Name: "b", Kind: schema.KindChar, Size: 100},
		})
		if err != nil {
			t.Fatal(err)
		}
		tabs[i] = tab
		tw := schema.TableWorkload{Table: tab, Queries: []schema.TableQuery{
			{ID: "q", Weight: 1, Attrs: attrset.Of(0, 1)},
		}}
		if _, _, err := svc.AdviseTable(tw); err != nil {
			t.Fatal(err)
		}
	}
	if got := svc.Stats().Tracked; got > 2 {
		t.Errorf("%d trackers live, capacity 2", got)
	}
	if _, err := svc.CurrentAdvice("t1"); err == nil {
		t.Error("evicted tracker still answers")
	}
	if _, err := svc.CurrentAdvice("t3"); err != nil {
		t.Errorf("newest tracker evicted: %v", err)
	}
	// Re-advising the evicted table re-registers it even though the advice
	// cache still holds its fingerprint (the documented remedy works).
	tw1 := schema.TableWorkload{Table: tabs[0], Queries: []schema.TableQuery{
		{ID: "q", Weight: 1, Attrs: attrset.Of(0, 1)},
	}}
	if _, hit, err := svc.AdviseTable(tw1); err != nil {
		t.Fatal(err)
	} else if !hit {
		t.Error("re-advised workload missed the advice cache")
	}
	if _, err := svc.CurrentAdvice("t1"); err != nil {
		t.Errorf("re-advised table still unregistered: %v", err)
	}
}

// Re-advising the workload a tracker is registered with must not reset its
// accumulated observation state — matched by fingerprint, not by cache
// residency.
func TestServiceReadviseSameWorkloadPreservesObservations(t *testing.T) {
	svc := NewService(Config{})
	tab := wideTable(t)
	tw := coAccessWorkload(tab)
	if _, _, err := svc.AdviseTable(tw); err != nil {
		t.Fatal(err)
	}
	batch := []schema.TableQuery{{ID: "o", Weight: 1, Attrs: attrset.Of(0, 1)}}
	for i := 0; i < 3; i++ {
		if _, err := svc.Observe(tab.Name, batch); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := svc.AdviseTable(tw); err != nil { // identical workload
		t.Fatal(err)
	}
	rep, err := svc.Observe(tab.Name, batch)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Observed != 4 {
		t.Errorf("observed = %d after identical re-advise, want 4 (state preserved)", rep.Observed)
	}
	// A genuinely different workload DOES reset the tracker.
	other := schema.TableWorkload{Table: tab, Queries: []schema.TableQuery{
		{ID: "q", Weight: 1, Attrs: attrset.Of(2)},
	}}
	if _, _, err := svc.AdviseTable(other); err != nil {
		t.Fatal(err)
	}
	rep, err = svc.Observe(tab.Name, batch)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Observed != 1 {
		t.Errorf("observed = %d after different re-advise, want 1 (state reset)", rep.Observed)
	}
}

func TestServiceObserveUnknownTable(t *testing.T) {
	svc := NewService(Config{})
	if _, err := svc.Observe("ghost", nil); err == nil {
		t.Error("Observe accepted an unregistered table")
	}
	if _, err := svc.CurrentAdvice("ghost"); err == nil {
		t.Error("CurrentAdvice accepted an unregistered table")
	}
}

// Re-registering a table name with a smaller schema must not let observed
// queries resolved against the old schema price out-of-range attributes:
// the tracker validates against its current table and fails cleanly.
func TestServiceObserveRejectsAttrsOutsideCurrentSchema(t *testing.T) {
	svc := NewService(Config{})
	if _, _, err := svc.AdviseTable(coAccessWorkload(wideTable(t))); err != nil {
		t.Fatal(err)
	}
	small, err := schema.NewTable("events", 1000, []schema.Column{
		{Name: "a", Kind: schema.KindChar, Size: 100},
		{Name: "b", Kind: schema.KindChar, Size: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.AdviseTable(schema.TableWorkload{Table: small, Queries: []schema.TableQuery{
		{ID: "q", Weight: 1, Attrs: attrset.Of(0, 1)},
	}}); err != nil {
		t.Fatal(err)
	}
	// Attr 3 existed in the 4-column registration but not in the current
	// 2-column schema.
	if _, err := svc.Observe("events", []schema.TableQuery{
		{ID: "stale", Weight: 1, Attrs: attrset.Of(3)},
	}); err == nil {
		t.Error("Observe accepted attrs outside the re-registered schema")
	}
	// In-range observations still flow.
	if _, err := svc.Observe("events", []schema.TableQuery{
		{ID: "ok", Weight: 1, Attrs: attrset.Of(0)},
	}); err != nil {
		t.Fatal(err)
	}
}

// Prewarm must leave the cache in exactly the state organic requests would:
// every table of the benchmark answered, all follow-up requests hits, and
// the advice identical to a cold computation.
func TestServicePrewarmSeedsCache(t *testing.T) {
	bench := schema.TPCH(0.01)
	warm := NewService(Config{})
	if err := warm.Prewarm(bench); err != nil {
		t.Fatal(err)
	}
	st := warm.Stats()
	if st.Cached != len(bench.Tables) || st.Tracked != len(bench.Tables) {
		t.Fatalf("prewarm cached %d / tracked %d, want %d", st.Cached, st.Tracked, len(bench.Tables))
	}

	cold := NewService(Config{})
	for _, tw := range bench.TableWorkloads() {
		warmAdvice, hit, err := warm.AdviseTable(tw)
		if err != nil {
			t.Fatal(err)
		}
		if !hit {
			t.Errorf("%s: prewarmed request missed the cache", tw.Table.Name)
		}
		coldAdvice, _, err := cold.AdviseTable(tw)
		if err != nil {
			t.Fatal(err)
		}
		if warmAdvice.Cost != coldAdvice.Cost || warmAdvice.Algorithm != coldAdvice.Algorithm ||
			!warmAdvice.Layout.Equal(coldAdvice.Layout) {
			t.Errorf("%s: prewarmed advice (%s, %v) differs from cold advice (%s, %v)",
				tw.Table.Name, warmAdvice.Algorithm, warmAdvice.Cost, coldAdvice.Algorithm, coldAdvice.Cost)
		}
	}
	if got := warm.Stats(); got.Hits != int64(len(bench.Tables)) {
		t.Errorf("post-prewarm requests: %+v", got)
	}
}

func TestServiceMMModel(t *testing.T) {
	svc := NewService(Config{Model: cost.NewMM()})
	tw := coAccessWorkload(wideTable(t))
	adv, _, err := svc.AdviseTable(tw)
	if err != nil {
		t.Fatal(err)
	}
	// Under the MM model nothing beats full column layout (paper, Table 6).
	if adv.Cost > adv.ColumnCost {
		t.Errorf("MM advice %v worse than column %v", adv.Cost, adv.ColumnCost)
	}
}
