package advisor

import (
	"context"
	"fmt"
	"sync"
)

// Batched observes retry on lost responses, which makes delivery
// at-least-once on the wire: the server journals and applies a batch
// BEFORE answering, so a response lost in transit used to re-ingest the
// whole batch on retry and double-count every query in it. The dedup
// window closes that hole: clients stamp each logical batch with an ID,
// and a replayed ID answers the original ingest's outcomes — including
// per-entry failures, which a client's whole-request retry could not
// meaningfully re-drive anyway — without touching the trackers.

// DefaultObserveDedupWindow bounds how many recently applied batch IDs
// the service remembers. FIFO, like the other caches: a replay older than
// the window re-ingests (the pre-dedup behavior), so the window only needs
// to outlive a client's retry schedule, not its lifetime.
const DefaultObserveDedupWindow = 1024

// maxBatchIDLen caps the accepted batch ID length: the window stores IDs
// verbatim, so an unbounded ID would be an unbounded memory lever.
const maxBatchIDLen = 128

// observeDedupEntry holds one applied batch's outcomes. The once collapses
// a retry racing the original ingest into a single application — the retry
// blocks until the first attempt's outcomes exist, then answers them.
type observeDedupEntry struct {
	once sync.Once
	outs []ObserveOutcome
}

// ObserveBatchID is ObserveBatch under a client batch ID: the first call
// with an ID ingests and records its outcomes in the dedup window; every
// later call with the same ID answers those outcomes verbatim (dup=true)
// without re-ingesting. An empty ID skips dedup entirely.
func (s *Service) ObserveBatchID(ctx context.Context, batchID string, batches []TableObservation) (outs []ObserveOutcome, dup bool, err error) {
	if batchID == "" {
		return s.ObserveBatch(ctx, batches), false, nil
	}
	if len(batchID) > maxBatchIDLen {
		return nil, false, fmt.Errorf("%w: batch id longer than %d bytes", ErrBadObservation, maxBatchIDLen)
	}
	s.mu.Lock()
	e, ok := s.observeSeen.Get(batchID)
	if !ok {
		e = &observeDedupEntry{}
		s.observeSeen.Insert(batchID, e)
	}
	s.mu.Unlock()

	ran := false
	e.once.Do(func() {
		ran = true
		e.outs = s.ObserveBatch(ctx, batches)
	})
	if !ran {
		s.observeDups.Add(1)
	}
	return e.outs, !ran, nil
}
