package advisor

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"

	"knives/internal/schema"
)

// Fingerprint canonically identifies one table workload: the table's schema
// (name, row count, and every column's name, kind, and byte width) plus the
// normalized query stream (each query reduced to its weight and attribute
// bitmask — IDs are cosmetic and never affect cost).
//
// Query ORDER is part of the fingerprint. The offline algorithms are
// order-insensitive (the metamorphic tests pin this), but O2P is an online
// algorithm and intentionally order-sensitive: the same queries arriving in
// a different order can leave it a different layout. Since O2P is a
// portfolio member, only workloads with the same arrival order are
// guaranteed byte-identical advice, so only those may share a cache entry.
type Fingerprint [sha256.Size]byte

// String renders the fingerprint as lowercase hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// FingerprintOf computes the fingerprint of a table workload.
func FingerprintOf(tw schema.TableWorkload) Fingerprint {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	writeStr := func(s string) {
		writeInt(uint64(len(s)))
		h.Write([]byte(s))
	}
	t := tw.Table
	writeStr(t.Name)
	writeInt(uint64(t.Rows))
	writeInt(uint64(len(t.Columns)))
	for _, c := range t.Columns {
		writeStr(c.Name)
		writeInt(uint64(c.Kind))
		writeInt(uint64(c.Size))
	}
	writeInt(uint64(len(tw.Queries)))
	for _, q := range tw.Queries {
		// Zero weights price as 1 everywhere (schema.ForTable normalizes
		// them), so normalize here too: equal-cost workloads share advice.
		w := q.Weight
		if w == 0 {
			w = 1
		}
		writeInt(math.Float64bits(w))
		writeInt(uint64(q.Attrs))
	}
	var f Fingerprint
	h.Sum(f[:0])
	return f
}
