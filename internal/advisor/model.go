package advisor

import (
	"errors"
	"fmt"
	"math"

	"knives/internal/cost"
)

// ErrBadModel reports a model spec the service refuses: an unknown device
// name, or a NaN, infinite, or non-positive device-parameter override. The
// HTTP layer answers it with 400 — retrying the same payload cannot
// succeed.
var ErrBadModel = errors.New("advisor: invalid model spec")

// ModelSpec is the wire form of "which device should this request price
// on": a device preset name ("hdd", "ssd", "mm" — cost.DeviceByName lists
// the aliases) plus optional hardware overrides. A nil (absent) or zero
// spec means the daemon's configured model; overrides without a name apply
// over the daemon's own device.
//
// A request whose spec resolves to a DIFFERENT device than the daemon's is
// a what-if question: it is answered and cached under its own device key,
// but never registers or resets a drift tracker — exploratory pricing must
// not clobber the observation state of a table the daemon tracks on its
// configured hardware. Run the daemon with -model ssd to track tables on
// flash.
type ModelSpec struct {
	Name string `json:"name,omitempty"`

	// Hardware overrides over the named preset; absent (zero) keeps the
	// preset's value. Every present value must be finite and positive —
	// anything else is rejected before it can price garbage.
	BlockBytes  int64   `json:"block_bytes,omitempty"`
	BufferBytes int64   `json:"buffer_bytes,omitempty"`
	ReadBW      float64 `json:"read_bw,omitempty"`    // bytes/second
	WriteBW     float64 `json:"write_bw,omitempty"`   // bytes/second
	SeekSeconds float64 `json:"seek_s,omitempty"`     // seconds per refill
	CacheLine   int64   `json:"cache_line,omitempty"` // bytes
	MissSeconds float64 `json:"miss_s,omitempty"`     // seconds per miss
}

// validate rejects override values that could never describe hardware:
// negative sizes, and non-finite or non-positive rates and latencies. Zero
// means "absent" throughout (the JSON layer cannot distinguish a sent zero
// from an omitted field), so explicit zeros are not overrides.
func (ms *ModelSpec) validate() error {
	ints := []struct {
		name string
		v    int64
	}{
		{"block_bytes", ms.BlockBytes},
		{"buffer_bytes", ms.BufferBytes},
		{"cache_line", ms.CacheLine},
	}
	for _, f := range ints {
		if f.v < 0 {
			return fmt.Errorf("%w: %s %d must be positive", ErrBadModel, f.name, f.v)
		}
	}
	floats := []struct {
		name string
		v    float64
	}{
		{"read_bw", ms.ReadBW},
		{"write_bw", ms.WriteBW},
		{"seek_s", ms.SeekSeconds},
		{"miss_s", ms.MissSeconds},
	}
	for _, f := range floats {
		if f.v == 0 {
			continue
		}
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) || f.v <= 0 {
			return fmt.Errorf("%w: %s %v must be finite and positive", ErrBadModel, f.name, f.v)
		}
	}
	return nil
}

// overrides renders the spec's present values as a cost.Device overlay.
func (ms *ModelSpec) overrides() cost.Device {
	return cost.Device{
		BlockSize:      ms.BlockBytes,
		BufferSize:     ms.BufferBytes,
		ReadBandwidth:  ms.ReadBW,
		WriteBandwidth: ms.WriteBW,
		SeekTime:       ms.SeekSeconds,
		CacheLineSize:  ms.CacheLine,
		MissLatency:    ms.MissSeconds,
	}
}

// modelKeyOf canonically identifies a pricing model for cache keying. Two
// requests share advice/replay cache entries only when both the workload
// fingerprint AND this key agree — the same workload priced on different
// devices is a different question.
func modelKeyOf(m cost.Model) string {
	if dm, ok := m.(*cost.DeviceModel); ok {
		return dm.Device().Key()
	}
	return "model:" + m.Name()
}

// modelFor resolves a request's model spec to the cost model it prices
// under and that model's cache key. A nil or zero spec is the daemon's
// configured model. All spec failures are ErrBadModel (HTTP 400).
func (s *Service) modelFor(spec *ModelSpec) (cost.Model, string, error) {
	if spec == nil || *spec == (ModelSpec{}) {
		return s.model, s.modelKey, nil
	}
	if err := spec.validate(); err != nil {
		return nil, "", err
	}
	var base cost.Device
	if spec.Name != "" {
		dev, err := cost.DeviceByName(spec.Name)
		if err != nil {
			return nil, "", fmt.Errorf("%w: %v", ErrBadModel, err)
		}
		base = dev
	} else {
		dm, ok := s.model.(*cost.DeviceModel)
		if !ok {
			return nil, "", fmt.Errorf("%w: device overrides need a model name (the daemon's model %s is not device-parameterized)",
				ErrBadModel, s.model.Name())
		}
		base = dm.Device()
	}
	m, err := cost.NewDeviceModel(base.WithOverrides(spec.overrides()))
	if err != nil {
		return nil, "", fmt.Errorf("%w: %v", ErrBadModel, err)
	}
	return m, modelKeyOf(m), nil
}
