package advisor

import (
	"fmt"
	"sync"
	"testing"

	"knives/internal/attrset"
	"knives/internal/schema"
	"knives/internal/statestore"
	"knives/internal/telemetry"
	"knives/internal/vfs"
)

// benchStreamLen is the observed-query stream one benchmark iteration
// pushes through the service: fixed, so obs/sec is meaningful even at
// -benchtime 1x (the repo's baseline-recording convention).
const benchStreamLen = 4096

// benchObserve pushes benchStreamLen observed queries per iteration
// through a durable (on-disk WAL) service and reports the achieved
// observations/sec. batchSize is the queries per Observe call, workers
// the concurrent submitters — so (1, 1) is the per-request baseline (one
// query, one HTTP-equivalent call, one WAL append+fsync, one O(window)
// exact drift check each) and larger shapes exercise the batched,
// sharded, sketch-backed pipeline.
func benchObserve(b *testing.B, mode string, batchSize, workers int, reg *telemetry.Registry) {
	dir := b.TempDir()
	fs, err := vfs.Dir(dir)
	if err != nil {
		b.Fatal(err)
	}
	st, err := statestore.Open(fs, statestore.Options{DriftWindow: 1024, Metrics: reg})
	if err != nil {
		b.Fatal(err)
	}
	svc, err := OpenService(Config{
		// A threshold no workload reaches: the benchmark measures steady
		// ingest + per-batch drift pricing, not recompute searches.
		DriftThreshold: 100,
		DriftWindow:    1024,
		DriftTracking:  mode,
		Store:          st,
		Telemetry:      reg,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	tab, err := schema.NewTable("events", 1_000_000, []schema.Column{
		{Name: "a", Kind: schema.KindChar, Size: 100},
		{Name: "b", Kind: schema.KindChar, Size: 100},
		{Name: "c", Kind: schema.KindChar, Size: 100},
		{Name: "d", Kind: schema.KindChar, Size: 100},
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := svc.AdviseTable(schema.TableWorkload{Table: tab, Queries: []schema.TableQuery{
		{ID: "q1", Weight: 1, Attrs: attrset.Of(0, 1)},
		{ID: "q2", Weight: 1, Attrs: attrset.Of(0, 1)},
		{ID: "q3", Weight: 1, Attrs: attrset.Of(2, 3)},
	}}); err != nil {
		b.Fatal(err)
	}

	// Pre-build one stream's batches: 8 recurring attribute patterns,
	// weights 1..3.
	patterns := []attrset.Set{
		attrset.Of(0, 1), attrset.Of(2, 3), attrset.Of(0), attrset.Of(1),
		attrset.Of(2), attrset.Of(3), attrset.Of(0, 2), attrset.Of(1, 3),
	}
	var batches [][]schema.TableQuery
	for done := 0; done < benchStreamLen; {
		n := batchSize
		if benchStreamLen-done < n {
			n = benchStreamLen - done
		}
		batch := make([]schema.TableQuery, n)
		for j := range batch {
			id := done + j
			batch[j] = schema.TableQuery{
				ID:     fmt.Sprintf("o%d", id),
				Weight: float64(1 + id%3),
				Attrs:  patterns[id%len(patterns)],
			}
		}
		batches = append(batches, batch)
		done += n
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work := make(chan []schema.TableQuery, len(batches))
		for _, batch := range batches {
			work <- batch
		}
		close(work)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for batch := range work {
					if _, err := svc.Observe("events", batch); err != nil {
						b.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)*benchStreamLen/secs, "obs/sec")
	}
}

// BenchmarkObserveThroughput is the ingest-pipeline headline: per-request
// exact drift tracking (the pre-batching behavior: every observed query
// paid its own WAL fsync and an O(window) exact drift check) against the
// batched sketch pipeline (64 queries per batch, 4 concurrent submitters,
// group-committed WAL appends, sketch drift pricing). The committed
// BENCH_*.json records the obs/sec ratio; the acceptance floor is 10x.
// The Telemetry variant wires a live registry through both the service
// and the state store — exactly how knivesd runs — so the instrumentation
// tax is measured in the same process as the uninstrumented number; the
// acceptance bar is within 5%.
func BenchmarkObserveThroughput(b *testing.B) {
	b.Run("PerRequestExact", func(b *testing.B) { benchObserve(b, TrackExact, 1, 1, nil) })
	b.Run("BatchedSketch", func(b *testing.B) { benchObserve(b, TrackSketch, 64, 4, nil) })
	b.Run("BatchedSketchTelemetry", func(b *testing.B) {
		benchObserve(b, TrackSketch, 64, 4, telemetry.NewRegistry())
	})
}
