package advisor

import (
	"context"
	"fmt"
	"sync"

	"knives/internal/cost"
	"knives/internal/partition"
	"knives/internal/replay"
	"knives/internal/schema"
)

// The exec path answers POST /query: advise the workload (from the
// fingerprint cache), materialize the advised layout, and EXECUTE every
// query as a σ/π/⋈ operator pipeline over an epoch snapshot — returning
// per-operator accounting next to the same zero-tolerance predictions the
// replay path verifies against. Where /replay measures monolithic scans,
// /query decomposes the identical totals into plan operators, and can push
// a selection predicate into the scans.

// ExecSelection names a σ pushed into every pipeline of one table's
// execution: keep rows whose little-endian u32 column (an int or date
// column) is strictly below Bound.
type ExecSelection struct {
	Column string
	Bound  uint32
}

// execKey identifies one cached execution: the replay key plus the
// selection (the predicate changes plans, rows out, and per-query pricing).
type execKey struct {
	fp    Fingerprint
	model string
	rows  int64
	seed  int64
	sel   ExecSelection
}

// execEntry computes one execution at most once, exactly like the replay
// cache's entry.
type execEntry struct {
	once   sync.Once
	report *replay.OperatorReplay
	err    error
}

// ExecTable answers one table's advise-materialize-execute chain under the
// service's default pricing model. The bool reports whether the call
// answered from cache.
func (s *Service) ExecTable(tw schema.TableWorkload, opt ReplayOptions, sel *ExecSelection) (*replay.OperatorReplay, Fingerprint, bool, error) {
	return s.execTableAs(context.Background(), tw, opt, sel, s.model, s.modelKey)
}

// execTableAs is ExecTable under an explicit pricing model (a wire
// request's resolved ModelSpec, or the service default).
func (s *Service) execTableAs(ctx context.Context, tw schema.TableWorkload, opt ReplayOptions, sel *ExecSelection, m cost.Model, mkey string) (*replay.OperatorReplay, Fingerprint, bool, error) {
	if err := opt.validate(); err != nil {
		return nil, Fingerprint{}, false, err
	}
	cfg, err := replayConfigFor(m, opt)
	if err != nil {
		return nil, Fingerprint{}, false, err
	}
	if cfg.MaxRows == 0 {
		cfg.MaxRows = replay.DefaultMaxRows
	}
	if tw.Table == nil {
		return nil, Fingerprint{}, false, fmt.Errorf("advisor: nil table")
	}
	var opSel *replay.Selection
	var keySel ExecSelection
	if sel != nil {
		attr := tw.Table.AttrIndex(sel.Column)
		if attr < 0 {
			return nil, Fingerprint{}, false, fmt.Errorf("%w: table %s has no column %q",
				ErrBadReplay, tw.Table.Name, sel.Column)
		}
		opSel = &replay.Selection{Attr: attr, Bound: sel.Bound}
		keySel = *sel
	}
	tw = normalizeWeights(tw)
	key := execKey{fp: FingerprintOf(tw), model: mkey, rows: cfg.MaxRows, seed: cfg.Seed, sel: keySel}

	s.mu.Lock()
	e, ok := s.execEntries.Get(key)
	if !ok {
		e = &execEntry{}
		s.execEntries.Insert(key, e)
	}
	s.mu.Unlock()

	ran := false
	e.once.Do(func() {
		ran = true
		// Advice may be cached from a request whose *Table pointer differs;
		// rebind the layout onto THIS workload's table.
		advice, _, _, err := s.adviseTableAs(ctx, tw, m, mkey)
		if err != nil {
			e.err = err
			return
		}
		layout, err := partition.New(tw.Table, advice.Layout.Parts)
		if err != nil {
			e.err = err
			return
		}
		e.report, e.err = replay.Operators(tw, layout, advice.Algorithm, cfg, opSel)
		if e.err == nil {
			s.tm.recordOpStats(e.report.Ops)
			s.tm.recordExec(e.report)
		}
	})
	if e.err != nil {
		// A failed execution must not poison its cache key forever.
		s.mu.Lock()
		if cur, ok := s.execEntries.Get(key); ok && cur == e {
			s.execEntries.Drop(key)
		}
		s.mu.Unlock()
		return nil, key.fp, false, e.err
	}
	return e.report, key.fp, !ran, nil
}
