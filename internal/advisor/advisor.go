// Package advisor implements the paper's end product as a reusable layer:
// run the whole algorithm portfolio on a workload, recommend the cheapest
// layout per table, and serve that advice — one-shot (the knives CLI and
// examples), or long-running with a fingerprint cache and online drift
// tracking (the knivesd daemon).
//
// The portfolio excludes BruteForce: the paper's first lesson is that the
// heuristics already find its layouts at a fraction of the computation.
// Portfolio members fan out concurrently over the parallel search kernel,
// drawing slots from the same process-wide gate as the experiment suite so
// stacked parallelism stays bounded.
package advisor

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"knives/internal/algo"
	"knives/internal/algorithms"
	"knives/internal/cost"
	"knives/internal/partition"
	"knives/internal/schema"
	"knives/internal/telemetry"
)

// TableAdvice is the advisor's recommendation for one table.
type TableAdvice struct {
	Table *schema.Table
	// Algorithm that produced the cheapest layout.
	Algorithm string
	// Layout is the recommended partitioning.
	Layout partition.Partitioning
	// Cost is the estimated workload cost of the recommendation.
	Cost float64
	// RowCost and ColumnCost are the baseline costs for comparison.
	RowCost, ColumnCost float64
	// PerAlgorithm holds every algorithm's cost, for transparency.
	PerAlgorithm map[string]float64
}

// ImprovementOverRow returns the relative improvement over row layout.
func (a TableAdvice) ImprovementOverRow() float64 {
	if a.RowCost == 0 {
		return 0
	}
	return (a.RowCost - a.Cost) / a.RowCost
}

// ImprovementOverColumn returns the relative improvement over column layout.
func (a TableAdvice) ImprovementOverColumn() float64 {
	if a.ColumnCost == 0 {
		return 0
	}
	return (a.ColumnCost - a.Cost) / a.ColumnCost
}

// portfolio returns the heuristic algorithms the advisor races, in the
// paper's presentation order. Fresh instances every call: algorithms are
// concurrency-safe, but fresh instances make that property irrelevant.
func portfolio() []algo.Algorithm { return algorithms.Heuristics() }

// PortfolioNames returns the names of the advised algorithms in evaluation
// order.
func PortfolioNames() []string {
	ps := portfolio()
	names := make([]string, len(ps))
	for i, a := range ps {
		names[i] = a.Name()
	}
	return names
}

// fanOut runs f(0), ..., f(n-1) concurrently, waits for all of them, and
// returns the lowest-index error — the same first-error-wins semantics as a
// serial loop, shared by every fan-out in this package. A panicking worker
// is converted into that worker's error: net/http only recovers panics on
// the handler's own goroutine, so without this a single degenerate request
// could kill the whole long-running daemon instead of failing alone.
func fanOut(n int, f func(i int) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("advisor: worker %d panicked: %v", i, r)
				}
			}()
			errs[i] = f(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// normalizeWeights returns tw with zero query weights replaced by 1 — the
// system-wide pricing convention (schema.Workload.ForTable applies the same
// rule). The service normalizes before both fingerprinting and searching,
// so the cache key and the search input can never disagree about a query's
// weight.
func normalizeWeights(tw schema.TableWorkload) schema.TableWorkload {
	normalized := false
	for _, q := range tw.Queries {
		if q.Weight == 0 {
			normalized = true
			break
		}
	}
	if !normalized {
		return tw
	}
	return schema.TableWorkload{Table: tw.Table, Queries: normalizeQueryWeights(tw.Queries)}
}

// normalizeQueryWeights copies a query batch with zero weights replaced
// by 1.
func normalizeQueryWeights(queries []schema.TableQuery) []schema.TableQuery {
	qs := append([]schema.TableQuery(nil), queries...)
	for i := range qs {
		if qs[i].Weight == 0 {
			qs[i].Weight = 1
		}
	}
	return qs
}

// AdviseTable races the portfolio on one table's workload and returns the
// cheapest layout found, falling back to column layout when nothing beats
// it. The portfolio members run concurrently (each under a process-wide
// search slot); the winner is picked in portfolio order with a strict
// comparison, so the result is identical to a sequential run.
func AdviseTable(tw schema.TableWorkload, m cost.Model) (TableAdvice, error) {
	return AdviseTableContext(context.Background(), tw, m)
}

// AdviseTableContext is AdviseTable under a request context: every
// portfolio member's wait for a search slot honors the deadline, so a
// request that times out queued behind long searches releases its
// goroutines immediately instead of leaking them against the gate. A
// search already running is not interrupted — slots are held briefly
// relative to any sane deadline, and the result still populates caches
// for the client's retry.
func AdviseTableContext(ctx context.Context, tw schema.TableWorkload, m cost.Model) (TableAdvice, error) {
	if tw.Table == nil {
		return TableAdvice{}, fmt.Errorf("advisor: nil table")
	}
	if m == nil {
		m = cost.NewHDD(cost.DefaultDisk())
	}
	algos := portfolio()
	results := make([]algo.Result, len(algos))
	err := fanOut(len(algos), func(i int) error {
		_, gateSp := telemetry.StartSpan(ctx, "gate-wait "+algos[i].Name())
		err := algo.AcquireSearchSlotCtx(ctx)
		gateSp.End()
		if err != nil {
			return fmt.Errorf("advisor: %s on %s: %w", algos[i].Name(), tw.Table.Name, err)
		}
		defer algo.ReleaseSearchSlot()
		_, searchSp := telemetry.StartSpan(ctx, "search "+algos[i].Name())
		res, err := algos[i].Partition(tw, m)
		searchSp.End()
		if err != nil {
			return fmt.Errorf("advisor: %s on %s: %w", algos[i].Name(), tw.Table.Name, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return TableAdvice{}, err
	}
	names := make([]string, len(algos))
	for i, a := range algos {
		names[i] = a.Name()
	}
	return pickCheapest(tw, m, names, results), nil
}

// pickCheapest assembles advice from per-algorithm results, comparing in
// portfolio order against the Column baseline.
func pickCheapest(tw schema.TableWorkload, m cost.Model, names []string, results []algo.Result) TableAdvice {
	adv := TableAdvice{
		Table:        tw.Table,
		PerAlgorithm: make(map[string]float64, len(names)),
		RowCost:      cost.WorkloadCost(m, tw, partition.Row(tw.Table).Parts),
		ColumnCost:   cost.WorkloadCost(m, tw, partition.Column(tw.Table).Parts),
	}
	adv.Algorithm = "Column"
	adv.Layout = partition.Column(tw.Table)
	adv.Cost = adv.ColumnCost
	for i, name := range names {
		res := results[i]
		adv.PerAlgorithm[name] = res.Cost
		if res.Cost < adv.Cost {
			adv.Algorithm = name
			adv.Layout = res.Partitioning
			adv.Cost = res.Cost
		}
	}
	return adv
}

// Advise runs the portfolio on every table of the benchmark and recommends,
// per table, the cheapest layout found. Tables fan out concurrently; the
// output is sorted by table name, as the façade has always promised.
func Advise(b *schema.Benchmark, m cost.Model) ([]TableAdvice, error) {
	if b == nil {
		return nil, fmt.Errorf("advisor: nil benchmark")
	}
	if m == nil {
		m = cost.NewHDD(cost.DefaultDisk())
	}
	tws := b.TableWorkloads()
	out := make([]TableAdvice, len(tws))
	err := fanOut(len(tws), func(i int) error {
		var err error
		out[i], err = AdviseTable(tws[i], m)
		return err
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Table.Name < out[j].Table.Name })
	return out, nil
}
