package advisor

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"
)

// RetryPolicy makes a Client ride out transient failures: transport errors,
// 429 (shed by the admission gate), and 503 (deadline expired server-side)
// are retried with exponential backoff; every other status is final. The
// zero value retries nothing — one attempt, exactly the old behavior.
//
// Retries make POST /observe at-least-once on the wire, but ObserveBatch
// stamps each logical batch with a client-generated ID the server dedups
// within a window, so a response lost in transit does NOT re-ingest (and
// double-count) the applied batch on retry. Advise/replay/query/migrate
// are idempotent by cache key, so retries there are free.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first call included);
	// values < 1 mean 1.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (doubling per retry); 0 means
	// 100ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff; 0 means 5s. A server Retry-After hint
	// overrides the computed delay but is still capped here.
	MaxDelay time.Duration
}

// Client talks to a knivesd server. The zero HTTPClient uses
// http.DefaultClient; the zero Retry performs exactly one attempt.
type Client struct {
	BaseURL    string
	HTTPClient *http.Client
	Retry      RetryPolicy

	// jitterNonce seeds this client's backoff jitter so a fleet of shed
	// clients never shares a retry schedule; 0 means "not yet assigned"
	// and nonce() fills it lazily. Accessed atomically.
	jitterNonce uint64
	// batchSeq numbers this client's observe batches for the dedup IDs.
	// Accessed atomically.
	batchSeq uint64
}

// clientSeq distinguishes clients created in the same process (and the
// same nanosecond).
var clientSeq atomic.Uint64

// nonce returns this client's jitter seed, assigning it on first use. The
// seed mixes a process-wide counter with the wall clock, so clients
// diverge both within one process and across processes restarted in
// lockstep; once assigned it never changes, keeping a single client's
// schedule reproducible.
func (c *Client) nonce() uint64 {
	if n := atomic.LoadUint64(&c.jitterNonce); n != 0 {
		return n
	}
	n := splitmix64(clientSeq.Add(1) ^ uint64(time.Now().UnixNano()))
	if n == 0 {
		n = 1
	}
	atomic.CompareAndSwapUint64(&c.jitterNonce, 0, n)
	return atomic.LoadUint64(&c.jitterNonce)
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed 64-bit hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewClient returns a client for the given base URL (e.g.
// "http://localhost:7978").
func NewClient(baseURL string) *Client { return &Client{BaseURL: baseURL} }

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// httpError is a non-200 response, kept structured so the retry loop can
// branch on the status code.
type httpError struct {
	method, path string
	status       int
	msg          string
	// retryAfter is the server's Retry-After hint in seconds; 0 = none.
	retryAfter int
}

func (e *httpError) Error() string {
	if e.msg != "" {
		return fmt.Sprintf("advisor client: %s %s: %s (status %d)", e.method, e.path, e.msg, e.status)
	}
	return fmt.Sprintf("advisor client: %s %s: status %d", e.method, e.path, e.status)
}

// retryable reports whether an attempt's failure is worth retrying: any
// transport error (connection refused mid-restart, reset mid-shutdown), a
// 429 shed, or a 503 deadline. 4xx request faults and 500s are final — the
// same payload would fail the same way.
func retryable(err error) bool {
	var he *httpError
	if errors.As(err, &he) {
		return he.status == http.StatusTooManyRequests || he.status == http.StatusServiceUnavailable
	}
	return true
}

// backoffDelay computes the sleep before retry number `attempt` (1-based):
// exponential from BaseDelay, capped at MaxDelay, with jitter (±25%)
// hashed from the caller's seed AND the attempt number. A server
// Retry-After hint replaces the exponential term but still respects the
// cap.
//
// The seed matters: jitter derived from the attempt number alone is
// IDENTICAL across clients, so a burst of clients shed together computes
// the same delays and re-stampedes in lockstep — the jitter prevented
// nothing. Each Client hashes its own nonce into the seed, so a fleet's
// schedules diverge while any single client's stay reproducible.
func (p RetryPolicy) backoffDelay(seed uint64, attempt, retryAfterSecs int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxd := p.MaxDelay
	if maxd <= 0 {
		maxd = 5 * time.Second
	}
	d := base << (attempt - 1)
	if retryAfterSecs > 0 {
		d = time.Duration(retryAfterSecs) * time.Second
	}
	if d > maxd || d <= 0 {
		d = maxd
	}
	h := splitmix64(seed ^ uint64(attempt)*0x9e3779b97f4a7c15)
	frac := int64(h%512) - 256 // [-256, 255] -> [-25%, +25%]
	d += time.Duration(int64(d) * frac / 1024)
	if d <= 0 {
		d = base
	}
	return d
}

// do issues one JSON request and decodes the response into out, retrying
// per the client's RetryPolicy. The caller's ctx bounds all attempts and
// the sleeps between them.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var payload []byte
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("advisor client: encode request: %w", err)
		}
		payload = b
	}
	attempts := c.Retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		lastErr = c.doOnce(ctx, method, path, payload, out)
		if lastErr == nil {
			return nil
		}
		if ctx.Err() != nil || attempt == attempts || !retryable(lastErr) {
			return lastErr
		}
		retryAfter := 0
		var he *httpError
		if errors.As(lastErr, &he) {
			retryAfter = he.retryAfter
		}
		select {
		case <-time.After(c.Retry.backoffDelay(c.nonce(), attempt, retryAfter)):
		case <-ctx.Done():
			return lastErr
		}
	}
	return lastErr
}

// doOnce is a single request/response cycle.
func (c *Client) doOnce(ctx context.Context, method, path string, payload []byte, out any) error {
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return fmt.Errorf("advisor client: %w", err)
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("advisor client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		he := &httpError{method: method, path: path, status: resp.StatusCode}
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e) == nil && e.Error != "" {
			he.msg = e.Error
		}
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			he.retryAfter = secs
		}
		return he
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("advisor client: decode response: %w", err)
	}
	return nil
}

// Advise requests layout advice for a workload.
func (c *Client) Advise(ctx context.Context, req AdviseRequest) (AdviseResponse, error) {
	var resp AdviseResponse
	err := c.do(ctx, http.MethodPost, "/advise", req, &resp)
	return resp, err
}

// Replay requests an advise-materialize-replay-report chain for a workload.
func (c *Client) Replay(ctx context.Context, req ReplayRequest) (ReplayResponse, error) {
	var resp ReplayResponse
	err := c.do(ctx, http.MethodPost, "/replay", req, &resp)
	return resp, err
}

// Query requests an advise-materialize-EXECUTE chain for a workload: every
// query runs as a σ/π/⋈ operator pipeline over an epoch snapshot of the
// advised layout, and the response decomposes each measured cost into
// per-operator terms.
func (c *Client) Query(ctx context.Context, req QueryRequest) (QueryResponse, error) {
	var resp QueryResponse
	err := c.do(ctx, http.MethodPost, "/query", req, &resp)
	return resp, err
}

// Observe streams a batch of observed queries for a registered table.
// With retries enabled delivery is at-least-once; see RetryPolicy.
func (c *Client) Observe(ctx context.Context, req ObserveRequest) (ObserveResponse, error) {
	var resp ObserveResponse
	err := c.do(ctx, http.MethodPost, "/observe", req, &resp)
	return resp, err
}

// ObserveBatch ships many tables' observation batches in one POST /observe
// and returns the per-entry verdicts, in submission order. Entries fail
// independently server-side; the call errors only when the request itself
// does (transport, decode, non-200). The request carries a client-generated
// batch ID — every retry of this logical batch re-sends the SAME ID, so the
// server's dedup window makes redelivery after a lost response idempotent
// instead of double-counting the applied queries.
func (c *Client) ObserveBatch(ctx context.Context, batches []TableObservation) ([]TableObserveVerdict, error) {
	if len(batches) == 0 {
		return nil, nil
	}
	id := fmt.Sprintf("%016x-%x", c.nonce(), atomic.AddUint64(&c.batchSeq, 1))
	var resp ObserveResponse
	if err := c.do(ctx, http.MethodPost, "/observe", ObserveRequest{BatchID: id, Batches: batches}, &resp); err != nil {
		return nil, err
	}
	if len(resp.Verdicts) != len(batches) {
		return resp.Verdicts, fmt.Errorf("advisor client: observe batch answered %d verdicts for %d batches",
			len(resp.Verdicts), len(batches))
	}
	return resp.Verdicts, nil
}

// ObserveBuffer accumulates observations per table and flushes them as ONE
// batched request once FlushAt queries are pending (or on demand). It is
// the client-side half of the batched ingest pipeline: callers record
// queries as they see them; the buffer amortizes the HTTP and WAL cost
// across a whole batch. Not safe for concurrent use — give each producer
// goroutine its own buffer (the server's ingest stage coalesces across
// connections anyway).
type ObserveBuffer struct {
	// Client ships the flushes; required.
	Client *Client
	// FlushAt triggers an automatic flush when this many queries are
	// pending across all tables; <= 0 means DefaultObserveFlushAt.
	FlushAt int

	pending int
	order   []string // first-appearance order of tables with pending queries
	byTable map[string][]ObservedQry
}

// DefaultObserveFlushAt is the automatic flush threshold of an
// ObserveBuffer whose FlushAt is unset.
const DefaultObserveFlushAt = 256

// Add records one observed query for a table, flushing automatically when
// the buffer reaches its threshold. The returned verdicts are nil unless
// this Add triggered a flush.
func (b *ObserveBuffer) Add(ctx context.Context, table string, q ObservedQry) ([]TableObserveVerdict, error) {
	if b.byTable == nil {
		b.byTable = make(map[string][]ObservedQry)
	}
	if _, ok := b.byTable[table]; !ok {
		b.order = append(b.order, table)
	}
	b.byTable[table] = append(b.byTable[table], q)
	b.pending++
	limit := b.FlushAt
	if limit <= 0 {
		limit = DefaultObserveFlushAt
	}
	if b.pending < limit {
		return nil, nil
	}
	return b.Flush(ctx)
}

// Pending reports how many queries are buffered and not yet shipped.
func (b *ObserveBuffer) Pending() int { return b.pending }

// Flush ships everything pending as one batched observe (one entry per
// table, tables in first-appearance order) and empties the buffer. On
// error the buffer is left intact so the caller can retry the flush.
func (b *ObserveBuffer) Flush(ctx context.Context) ([]TableObserveVerdict, error) {
	if b.pending == 0 {
		return nil, nil
	}
	batches := make([]TableObservation, 0, len(b.order))
	for _, t := range b.order {
		batches = append(batches, TableObservation{Table: t, Queries: b.byTable[t]})
	}
	verdicts, err := b.Client.ObserveBatch(ctx, batches)
	if err != nil {
		return nil, err
	}
	b.pending = 0
	b.order = b.order[:0]
	b.byTable = make(map[string][]ObservedQry)
	return verdicts, nil
}

// Migrate requests a drift-triggered migration plan (and sampled
// execute-and-verify run) for a registered table.
func (c *Client) Migrate(ctx context.Context, req MigrateRequest) (MigrationWire, error) {
	var resp MigrationWire
	err := c.do(ctx, http.MethodPost, "/migrate", req, &resp)
	return resp, err
}

// Advice fetches the current tracked advice for one table.
func (c *Client) Advice(ctx context.Context, table string) (TableAdviceWire, error) {
	var resp TableAdviceWire
	err := c.do(ctx, http.MethodGet, "/advice?table="+url.QueryEscape(table), nil, &resp)
	return resp, err
}

// Stats fetches the service counters.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var resp Stats
	err := c.do(ctx, http.MethodGet, "/stats", nil, &resp)
	return resp, err
}
