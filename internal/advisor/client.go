package advisor

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
)

// Client talks to a knivesd server. The zero HTTPClient uses
// http.DefaultClient.
type Client struct {
	BaseURL    string
	HTTPClient *http.Client
}

// NewClient returns a client for the given base URL (e.g.
// "http://localhost:7978").
func NewClient(baseURL string) *Client { return &Client{BaseURL: baseURL} }

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues one JSON request and decodes the response into out.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("advisor client: encode request: %w", err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return fmt.Errorf("advisor client: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("advisor client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("advisor client: %s %s: %s (status %d)", method, path, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("advisor client: %s %s: status %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("advisor client: decode response: %w", err)
	}
	return nil
}

// Advise requests layout advice for a workload.
func (c *Client) Advise(ctx context.Context, req AdviseRequest) (AdviseResponse, error) {
	var resp AdviseResponse
	err := c.do(ctx, http.MethodPost, "/advise", req, &resp)
	return resp, err
}

// Replay requests an advise-materialize-replay-report chain for a workload.
func (c *Client) Replay(ctx context.Context, req ReplayRequest) (ReplayResponse, error) {
	var resp ReplayResponse
	err := c.do(ctx, http.MethodPost, "/replay", req, &resp)
	return resp, err
}

// Observe streams a batch of observed queries for a registered table.
func (c *Client) Observe(ctx context.Context, req ObserveRequest) (ObserveResponse, error) {
	var resp ObserveResponse
	err := c.do(ctx, http.MethodPost, "/observe", req, &resp)
	return resp, err
}

// Migrate requests a drift-triggered migration plan (and sampled
// execute-and-verify run) for a registered table.
func (c *Client) Migrate(ctx context.Context, req MigrateRequest) (MigrationWire, error) {
	var resp MigrationWire
	err := c.do(ctx, http.MethodPost, "/migrate", req, &resp)
	return resp, err
}

// Advice fetches the current tracked advice for one table.
func (c *Client) Advice(ctx context.Context, table string) (TableAdviceWire, error) {
	var resp TableAdviceWire
	err := c.do(ctx, http.MethodGet, "/advice?table="+url.QueryEscape(table), nil, &resp)
	return resp, err
}

// Stats fetches the service counters.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var resp Stats
	err := c.do(ctx, http.MethodGet, "/stats", nil, &resp)
	return resp, err
}
