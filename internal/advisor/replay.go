package advisor

import (
	"context"
	"fmt"
	"sync"

	"knives/internal/cost"
	"knives/internal/operator"
	"knives/internal/partition"
	"knives/internal/replay"
	"knives/internal/schema"
)

// Replay limits: the server materializes real pages and scans them, so the
// request must not be able to ask for unbounded work.
const (
	// MaxReplayRows caps how many rows one replay may materialize per table.
	MaxReplayRows = 1_000_000
	// MaxReplayWorkers caps the requested worker pool (the count never
	// changes a reported number, only memory and scheduling).
	MaxReplayWorkers = 256
)

// DefaultReplayCacheCapacity bounds the replay report cache. Reports carry
// per-query measurements and are an order of magnitude bigger than advice
// entries, so the bound is correspondingly smaller.
const DefaultReplayCacheCapacity = 256

// ReplayOptions are the knobs one replay request may turn. The zero value
// uses the service defaults.
type ReplayOptions struct {
	// MaxRows caps the materialized rows per table; 0 uses
	// replay.DefaultMaxRows.
	MaxRows int64
	// Seed feeds the deterministic data generator.
	Seed int64
	// Workers bounds the replay worker pool; 0 uses GOMAXPROCS. Workers
	// never affect the report's numbers, so they are NOT part of the
	// replay cache key.
	Workers int
	// ExecMode selects pipeline execution on the /query path: "" or "row"
	// (the oracle) or "vector". Like Workers, exec knobs change wall-clock
	// and never a result, so none of them join the exec cache key.
	ExecMode string
	// BatchSize is vector mode's rows per batch (0 = default).
	BatchSize int
	// ExecWorkers bounds morsel-parallel leaf scans per pipeline.
	ExecWorkers int
}

// validate enforces the request-side limits.
func (o ReplayOptions) validate() error {
	if o.MaxRows < 0 || o.MaxRows > MaxReplayRows {
		return fmt.Errorf("%w: max_rows %d out of range [0, %d]", ErrBadReplay, o.MaxRows, MaxReplayRows)
	}
	if o.Workers < 0 || o.Workers > MaxReplayWorkers {
		return fmt.Errorf("%w: workers %d out of range [0, %d]", ErrBadReplay, o.Workers, MaxReplayWorkers)
	}
	switch operator.ExecMode(o.ExecMode) {
	case "", operator.ExecRow, operator.ExecVector:
	default:
		return fmt.Errorf("%w: exec mode %q (%s or %s)", ErrBadReplay, o.ExecMode, operator.ExecRow, operator.ExecVector)
	}
	if o.BatchSize < 0 || o.BatchSize > operator.MaxBatchSize {
		return fmt.Errorf("%w: batch_size %d out of range [0, %d]", ErrBadReplay, o.BatchSize, operator.MaxBatchSize)
	}
	if o.ExecWorkers < 0 || o.ExecWorkers > MaxReplayWorkers {
		return fmt.Errorf("%w: exec_workers %d out of range [0, %d]", ErrBadReplay, o.ExecWorkers, MaxReplayWorkers)
	}
	return nil
}

// ErrBadReplay reports replay options the service refuses to execute.
var ErrBadReplay = fmt.Errorf("advisor: invalid replay request")

// replayKey identifies one cached replay report: the workload fingerprint
// (PR-2's cache key, which already covers schema, weights, and query order),
// the canonical key of the device the replay prices and measures on, plus
// the two options that change the materialized data.
type replayKey struct {
	fp    Fingerprint
	model string
	rows  int64
	seed  int64
}

// replayEntry computes one replay at most once, like the advice cache's
// entry: the service mutex only guards the map, the expensive
// materialize-and-scan runs under the once, so identical concurrent
// requests collapse into one execution.
type replayEntry struct {
	once   sync.Once
	report *replay.TableReplay
	err    error
}

// replayConfigFor translates a pricing model into a replay config: the
// model's full device becomes the config's device (replay.Config treats a
// named Disk with an empty Model as the device itself), so the engine
// materializes, measures, and prices on exactly the hardware the request
// resolved.
func replayConfigFor(m cost.Model, opt ReplayOptions) (replay.Config, error) {
	dm, ok := m.(*cost.DeviceModel)
	if !ok {
		return replay.Config{}, fmt.Errorf("advisor: cost model %s has no replay pricing", m.Name())
	}
	return replay.Config{
		Disk:        dm.Device(),
		MaxRows:     opt.MaxRows,
		Seed:        opt.Seed,
		Workers:     opt.Workers,
		ExecMode:    opt.ExecMode,
		BatchSize:   opt.BatchSize,
		ExecWorkers: opt.ExecWorkers,
	}, nil
}

// ReplayTable answers one table's advise-materialize-replay-report chain:
// the advice comes from the fingerprint cache (searching on a miss), the
// layout is materialized through the storage engine, the workload replayed,
// and the report compared against the cost model. Reports are cached under
// (fingerprint, rows, seed); the bool reports whether this call executed a
// replay (false = cache hit).
func (s *Service) ReplayTable(tw schema.TableWorkload, opt ReplayOptions) (*replay.TableReplay, Fingerprint, bool, error) {
	return s.replayTableAs(context.Background(), tw, opt, s.model, s.modelKey)
}

// replayTableAs is ReplayTable under an explicit pricing model (a wire
// request's resolved ModelSpec, or the service default). The context
// bounds the embedded advise step's search waits; the materialize-and-scan
// itself runs to completion once started.
func (s *Service) replayTableAs(ctx context.Context, tw schema.TableWorkload, opt ReplayOptions, m cost.Model, mkey string) (*replay.TableReplay, Fingerprint, bool, error) {
	if err := opt.validate(); err != nil {
		return nil, Fingerprint{}, false, err
	}
	cfg, err := replayConfigFor(m, opt)
	if err != nil {
		return nil, Fingerprint{}, false, err
	}
	if cfg.MaxRows == 0 {
		cfg.MaxRows = replay.DefaultMaxRows
	}
	if tw.Table == nil {
		return nil, Fingerprint{}, false, fmt.Errorf("advisor: nil table")
	}
	tw = normalizeWeights(tw)
	s.replays.Add(1)
	key := replayKey{fp: FingerprintOf(tw), model: mkey, rows: cfg.MaxRows, seed: cfg.Seed}

	s.mu.Lock()
	e, ok := s.replayEntries.Get(key)
	if !ok {
		e = &replayEntry{}
		s.replayEntries.Insert(key, e)
	}
	s.mu.Unlock()

	ran := false
	e.once.Do(func() {
		ran = true
		// The advice may come from the cache, computed for an earlier
		// request whose *Table pointer differs; rebind the layout onto THIS
		// workload's table (the fingerprint guarantees identical schemas).
		advice, _, _, err := s.adviseTableAs(ctx, tw, m, mkey)
		if err != nil {
			e.err = err
			return
		}
		layout, err := partition.New(tw.Table, advice.Layout.Parts)
		if err != nil {
			e.err = err
			return
		}
		e.report, e.err = replay.Layout(tw, layout, advice.Algorithm, cfg)
	})
	if e.err != nil {
		// Like a failed advice search, a failed replay must not poison its
		// cache key forever.
		s.mu.Lock()
		if cur, ok := s.replayEntries.Get(key); ok && cur == e {
			s.replayEntries.Drop(key)
		}
		s.mu.Unlock()
		return nil, key.fp, false, e.err
	}
	if !ran {
		s.replayHits.Add(1)
	}
	return e.report, key.fp, !ran, nil
}
