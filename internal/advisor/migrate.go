package advisor

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"knives/internal/migrate"
	"knives/internal/partition"
	"knives/internal/replay"
)

// The migration endpoint: a drift-triggered client asks the service to
// price, plan, and (when the layouts differ) execute-and-verify the
// transition from the layout its store HOLDS (the tracker's applied
// advice) to the layout the service now ADVISES (moved by drift
// recomputes), amortized over the tracker's observed query mix. This is
// the closing of the drift loop: PR-2's trackers detect the shift and
// recompute advice; the migration engine decides whether acting on it pays
// and proves the transition safe before anyone touches a production store.

// DefaultMigrateCacheCapacity bounds the migration outcome cache. Outcomes
// carry two replay reports plus the plan, the same weight class as replay
// entries.
const DefaultMigrateCacheCapacity = 256

// MaxMigrateWindow bounds the requestable break-even horizon so a request
// cannot make the planner accept an effectively-never horizon.
const MaxMigrateWindow = 1_000_000_000

// ErrBadMigrate reports migration options the service refuses to execute.
var ErrBadMigrate = errors.New("advisor: invalid migrate request")

// MigrateOptions are the knobs one migration request may turn. The zero
// value uses the service defaults.
type MigrateOptions struct {
	// Window bounds the acceptable break-even horizon in queries; 0 uses
	// the service's configured default.
	Window int64
	// MaxRows, Seed, Workers parameterize the sampled verification
	// execution exactly like a replay (same limits).
	MaxRows int64
	Seed    int64
	Workers int
}

// validate enforces the request-side limits (shared with replay where the
// knobs are the same knobs).
func (o MigrateOptions) validate() error {
	if o.Window < 0 || o.Window > MaxMigrateWindow {
		return fmt.Errorf("%w: window %d out of range [0, %d]", ErrBadMigrate, o.Window, MaxMigrateWindow)
	}
	if o.MaxRows < 0 || o.MaxRows > MaxReplayRows {
		return fmt.Errorf("%w: max_rows %d out of range [0, %d]", ErrBadMigrate, o.MaxRows, MaxReplayRows)
	}
	if o.Workers < 0 || o.Workers > MaxReplayWorkers {
		return fmt.Errorf("%w: workers %d out of range [0, %d]", ErrBadMigrate, o.Workers, MaxReplayWorkers)
	}
	return nil
}

// migrateKey identifies one cached migration outcome: the FINGERPRINT PAIR
// (the workload the applied layout was advised for, the workload the
// current advice covers), the fingerprint of the observed mix the plan is
// amortized over — observation batches below the drift threshold move the
// mix without re-keying the advice, and a break-even verdict priced on an
// older mix must not answer for a newer one — plus every option that
// changes the plan or the executed store.
type migrateKey struct {
	from, to Fingerprint
	mix      Fingerprint
	model    string
	window   int64
	rows     int64
	seed     int64
}

// migrateEntry computes one migration outcome at most once, with the same
// sync.Once discipline as the advice and replay caches.
type migrateEntry struct {
	once    sync.Once
	outcome *MigrationOutcome
	err     error
}

// MigrationOutcome is what one migration request resolves to.
type MigrationOutcome struct {
	Table string
	// FromFP/ToFP are the fingerprint pair the outcome is cached under.
	FromFP, ToFP Fingerprint
	// Plan is the full-scale break-even analysis (Viable=false plans carry
	// the refusal reason).
	Plan *migrate.Plan
	// Report is the sampled execute-and-verify run; nil when the layouts
	// are identical and there is nothing to execute.
	Report *migrate.Report
	// AppliedUpdated reports whether this request moved the tracker's
	// applied layout forward (the store is now considered migrated).
	AppliedUpdated bool
}

// MigrateTable plans — and, when the layouts differ, executes and verifies
// on a sampled store — the migration of a REGISTERED table from its
// applied layout to its currently tracked advice, amortized over the
// tracker's observed mix. Outcomes are cached by fingerprint pair; the
// bool reports whether this call was served from cache. After a verified,
// viable execution (or a no-op transition), the tracker's applied layout
// advances, so a repeated /migrate converges to "nothing to migrate".
func (s *Service) MigrateTable(table string, opt MigrateOptions) (*MigrationOutcome, bool, error) {
	if err := opt.validate(); err != nil {
		return nil, false, err
	}
	t, err := s.tracker(table)
	if err != nil {
		return nil, false, err
	}
	window := opt.Window
	if window == 0 {
		window = s.cfg.MigrateWindow
	}
	// The tracker prices the migration under the model that registered it —
	// a store advised for SSD is planned and verified on the SSD device.
	st := t.MigrationState()
	rcfg, err := replayConfigFor(st.model, ReplayOptions{MaxRows: opt.MaxRows, Seed: opt.Seed, Workers: opt.Workers})
	if err != nil {
		return nil, false, err
	}
	if rcfg.MaxRows == 0 {
		rcfg.MaxRows = replay.DefaultMaxRows
	}

	s.migrations.Add(1)
	key := migrateKey{
		from: st.appliedFP, to: st.currentFP, mix: FingerprintOf(st.tw), model: st.modelKey,
		window: window, rows: rcfg.MaxRows, seed: rcfg.Seed,
	}

	s.mu.Lock()
	e, ok := s.migrateEntries.Get(key)
	if !ok {
		e = &migrateEntry{}
		s.migrateEntries.Insert(key, e)
	}
	s.mu.Unlock()

	ran := false
	e.once.Do(func() {
		ran = true
		t0 := time.Now()
		e.outcome, e.err = s.migrateOnce(table, st, key, rcfg)
		if e.err == nil {
			s.tm.migrateExec.Since(t0)
		}
	})
	if e.err != nil {
		// Like a failed advice search or replay, a failed migration must
		// not poison its cache key forever.
		s.mu.Lock()
		if cur, ok := s.migrateEntries.Get(key); ok && cur == e {
			s.migrateEntries.Drop(key)
		}
		s.mu.Unlock()
		return nil, false, e.err
	}
	if !ran {
		s.migrateHits.Add(1)
	}
	// Advance the applied layout outside the once so cache hits converge
	// too: the CAS against currentFP refuses if a newer drift recompute or
	// re-registration moved the advice since this outcome was computed. A
	// journal-append failure surfaces as the request's error — the outcome
	// stays cached, so the retry re-attempts exactly this advance.
	out := *e.outcome
	if out.Plan != nil && (out.Report == nil || (out.Plan.Viable && out.Report.Exact())) {
		applied, err := t.MarkApplied(st.currentFP)
		if err != nil {
			return nil, false, err
		}
		out.AppliedUpdated = applied
	}
	return &out, !ran, nil
}

// migrateOnce computes one migration outcome: rebind both layouts onto the
// tracked table, plan at full scale, and execute-and-verify on a sampled
// in-memory store when the layouts differ.
func (s *Service) migrateOnce(table string, st migrationState, key migrateKey, rcfg migrate.Config) (*MigrationOutcome, error) {
	tw := st.tw
	from, err := partition.New(tw.Table, st.applied.Layout.Parts)
	if err != nil {
		return nil, fmt.Errorf("advisor: applied layout: %w", err)
	}
	to, err := partition.New(tw.Table, st.current.Layout.Parts)
	if err != nil {
		return nil, fmt.Errorf("advisor: advised layout: %w", err)
	}
	plan, err := migrate.New(tw, from, to, st.model, key.window)
	if err != nil {
		return nil, err
	}
	plan.FromAlgorithm, plan.ToAlgorithm = st.applied.Algorithm, st.current.Algorithm
	out := &MigrationOutcome{Table: table, FromFP: key.from, ToFP: key.to, Plan: plan}
	if plan.From.Equal(plan.To) {
		// Nothing to move; the outcome is the refusal itself (and the
		// caller advances the applied fingerprint — the store already
		// matches the advice).
		return out, nil
	}
	// Execute even when the plan was refused: a refusal backed by a
	// verified sampled run is an honest refusal, and the execution never
	// touches the client's store — it is a from-scratch sampled twin.
	out.Report, err = migrate.Execute(tw, plan, rcfg)
	if err != nil {
		return nil, err
	}
	return out, nil
}
